
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bound_test.cpp" "tests/CMakeFiles/bound_test.dir/bound_test.cpp.o" "gcc" "tests/CMakeFiles/bound_test.dir/bound_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sta/CMakeFiles/desync_sta.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/desync_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/designs/CMakeFiles/desync_designs.dir/DependInfo.cmake"
  "/root/repo/build/src/liberty/CMakeFiles/desync_liberty.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/desync_netlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
