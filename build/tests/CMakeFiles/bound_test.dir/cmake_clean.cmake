file(REMOVE_RECURSE
  "CMakeFiles/bound_test.dir/bound_test.cpp.o"
  "CMakeFiles/bound_test.dir/bound_test.cpp.o.d"
  "bound_test"
  "bound_test.pdb"
  "bound_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bound_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
