# Empty compiler generated dependencies file for netlist_fuzz_test.
# This may be replaced when dependencies are built.
