file(REMOVE_RECURSE
  "CMakeFiles/netlist_fuzz_test.dir/netlist_fuzz_test.cpp.o"
  "CMakeFiles/netlist_fuzz_test.dir/netlist_fuzz_test.cpp.o.d"
  "netlist_fuzz_test"
  "netlist_fuzz_test.pdb"
  "netlist_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netlist_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
