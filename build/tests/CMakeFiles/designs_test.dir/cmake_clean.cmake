file(REMOVE_RECURSE
  "CMakeFiles/designs_test.dir/designs_test.cpp.o"
  "CMakeFiles/designs_test.dir/designs_test.cpp.o.d"
  "designs_test"
  "designs_test.pdb"
  "designs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/designs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
