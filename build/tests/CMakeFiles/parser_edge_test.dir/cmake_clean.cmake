file(REMOVE_RECURSE
  "CMakeFiles/parser_edge_test.dir/parser_edge_test.cpp.o"
  "CMakeFiles/parser_edge_test.dir/parser_edge_test.cpp.o.d"
  "parser_edge_test"
  "parser_edge_test.pdb"
  "parser_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parser_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
