# Empty dependencies file for cell_property_test.
# This may be replaced when dependencies are built.
