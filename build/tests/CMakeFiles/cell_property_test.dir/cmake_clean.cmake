file(REMOVE_RECURSE
  "CMakeFiles/cell_property_test.dir/cell_property_test.cpp.o"
  "CMakeFiles/cell_property_test.dir/cell_property_test.cpp.o.d"
  "cell_property_test"
  "cell_property_test.pdb"
  "cell_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cell_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
