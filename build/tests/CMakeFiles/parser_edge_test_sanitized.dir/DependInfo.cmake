
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/liberty/bool_expr.cpp" "tests/CMakeFiles/parser_edge_test_sanitized.dir/__/src/liberty/bool_expr.cpp.o" "gcc" "tests/CMakeFiles/parser_edge_test_sanitized.dir/__/src/liberty/bool_expr.cpp.o.d"
  "/root/repo/src/liberty/bound.cpp" "tests/CMakeFiles/parser_edge_test_sanitized.dir/__/src/liberty/bound.cpp.o" "gcc" "tests/CMakeFiles/parser_edge_test_sanitized.dir/__/src/liberty/bound.cpp.o.d"
  "/root/repo/src/liberty/gatefile.cpp" "tests/CMakeFiles/parser_edge_test_sanitized.dir/__/src/liberty/gatefile.cpp.o" "gcc" "tests/CMakeFiles/parser_edge_test_sanitized.dir/__/src/liberty/gatefile.cpp.o.d"
  "/root/repo/src/liberty/liberty_io.cpp" "tests/CMakeFiles/parser_edge_test_sanitized.dir/__/src/liberty/liberty_io.cpp.o" "gcc" "tests/CMakeFiles/parser_edge_test_sanitized.dir/__/src/liberty/liberty_io.cpp.o.d"
  "/root/repo/src/liberty/library.cpp" "tests/CMakeFiles/parser_edge_test_sanitized.dir/__/src/liberty/library.cpp.o" "gcc" "tests/CMakeFiles/parser_edge_test_sanitized.dir/__/src/liberty/library.cpp.o.d"
  "/root/repo/src/liberty/stdlib90.cpp" "tests/CMakeFiles/parser_edge_test_sanitized.dir/__/src/liberty/stdlib90.cpp.o" "gcc" "tests/CMakeFiles/parser_edge_test_sanitized.dir/__/src/liberty/stdlib90.cpp.o.d"
  "/root/repo/src/netlist/blif.cpp" "tests/CMakeFiles/parser_edge_test_sanitized.dir/__/src/netlist/blif.cpp.o" "gcc" "tests/CMakeFiles/parser_edge_test_sanitized.dir/__/src/netlist/blif.cpp.o.d"
  "/root/repo/src/netlist/cleaning.cpp" "tests/CMakeFiles/parser_edge_test_sanitized.dir/__/src/netlist/cleaning.cpp.o" "gcc" "tests/CMakeFiles/parser_edge_test_sanitized.dir/__/src/netlist/cleaning.cpp.o.d"
  "/root/repo/src/netlist/flatten.cpp" "tests/CMakeFiles/parser_edge_test_sanitized.dir/__/src/netlist/flatten.cpp.o" "gcc" "tests/CMakeFiles/parser_edge_test_sanitized.dir/__/src/netlist/flatten.cpp.o.d"
  "/root/repo/src/netlist/names.cpp" "tests/CMakeFiles/parser_edge_test_sanitized.dir/__/src/netlist/names.cpp.o" "gcc" "tests/CMakeFiles/parser_edge_test_sanitized.dir/__/src/netlist/names.cpp.o.d"
  "/root/repo/src/netlist/netlist.cpp" "tests/CMakeFiles/parser_edge_test_sanitized.dir/__/src/netlist/netlist.cpp.o" "gcc" "tests/CMakeFiles/parser_edge_test_sanitized.dir/__/src/netlist/netlist.cpp.o.d"
  "/root/repo/src/netlist/verilog_reader.cpp" "tests/CMakeFiles/parser_edge_test_sanitized.dir/__/src/netlist/verilog_reader.cpp.o" "gcc" "tests/CMakeFiles/parser_edge_test_sanitized.dir/__/src/netlist/verilog_reader.cpp.o.d"
  "/root/repo/src/netlist/verilog_writer.cpp" "tests/CMakeFiles/parser_edge_test_sanitized.dir/__/src/netlist/verilog_writer.cpp.o" "gcc" "tests/CMakeFiles/parser_edge_test_sanitized.dir/__/src/netlist/verilog_writer.cpp.o.d"
  "/root/repo/src/sim/flow_equivalence.cpp" "tests/CMakeFiles/parser_edge_test_sanitized.dir/__/src/sim/flow_equivalence.cpp.o" "gcc" "tests/CMakeFiles/parser_edge_test_sanitized.dir/__/src/sim/flow_equivalence.cpp.o.d"
  "/root/repo/src/sim/power.cpp" "tests/CMakeFiles/parser_edge_test_sanitized.dir/__/src/sim/power.cpp.o" "gcc" "tests/CMakeFiles/parser_edge_test_sanitized.dir/__/src/sim/power.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "tests/CMakeFiles/parser_edge_test_sanitized.dir/__/src/sim/simulator.cpp.o" "gcc" "tests/CMakeFiles/parser_edge_test_sanitized.dir/__/src/sim/simulator.cpp.o.d"
  "/root/repo/src/sim/vcd.cpp" "tests/CMakeFiles/parser_edge_test_sanitized.dir/__/src/sim/vcd.cpp.o" "gcc" "tests/CMakeFiles/parser_edge_test_sanitized.dir/__/src/sim/vcd.cpp.o.d"
  "/root/repo/src/sta/sdc.cpp" "tests/CMakeFiles/parser_edge_test_sanitized.dir/__/src/sta/sdc.cpp.o" "gcc" "tests/CMakeFiles/parser_edge_test_sanitized.dir/__/src/sta/sdc.cpp.o.d"
  "/root/repo/src/sta/sta.cpp" "tests/CMakeFiles/parser_edge_test_sanitized.dir/__/src/sta/sta.cpp.o" "gcc" "tests/CMakeFiles/parser_edge_test_sanitized.dir/__/src/sta/sta.cpp.o.d"
  "/root/repo/tests/parser_edge_test.cpp" "tests/CMakeFiles/parser_edge_test_sanitized.dir/parser_edge_test.cpp.o" "gcc" "tests/CMakeFiles/parser_edge_test_sanitized.dir/parser_edge_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
