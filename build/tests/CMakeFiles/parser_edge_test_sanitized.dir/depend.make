# Empty dependencies file for parser_edge_test_sanitized.
# This may be replaced when dependencies are built.
