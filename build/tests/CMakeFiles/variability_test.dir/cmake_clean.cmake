file(REMOVE_RECURSE
  "CMakeFiles/variability_test.dir/variability_test.cpp.o"
  "CMakeFiles/variability_test.dir/variability_test.cpp.o.d"
  "variability_test"
  "variability_test.pdb"
  "variability_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/variability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
