# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/netlist_test[1]_include.cmake")
include("/root/repo/build/tests/liberty_test[1]_include.cmake")
include("/root/repo/build/tests/stg_test[1]_include.cmake")
include("/root/repo/build/tests/async_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/sta_test[1]_include.cmake")
include("/root/repo/build/tests/variability_test[1]_include.cmake")
include("/root/repo/build/tests/designs_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/dft_test[1]_include.cmake")
include("/root/repo/build/tests/pnr_test[1]_include.cmake")
include("/root/repo/build/tests/cell_property_test[1]_include.cmake")
include("/root/repo/build/tests/parser_edge_test[1]_include.cmake")
include("/root/repo/build/tests/bound_test[1]_include.cmake")
include("/root/repo/build/tests/netlist_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/parser_edge_test_sanitized[1]_include.cmake")
