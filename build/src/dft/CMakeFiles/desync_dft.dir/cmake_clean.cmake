file(REMOVE_RECURSE
  "CMakeFiles/desync_dft.dir/fault_sim.cpp.o"
  "CMakeFiles/desync_dft.dir/fault_sim.cpp.o.d"
  "CMakeFiles/desync_dft.dir/scan.cpp.o"
  "CMakeFiles/desync_dft.dir/scan.cpp.o.d"
  "libdesync_dft.a"
  "libdesync_dft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/desync_dft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
