# Empty dependencies file for desync_dft.
# This may be replaced when dependencies are built.
