file(REMOVE_RECURSE
  "libdesync_dft.a"
)
