# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("netlist")
subdirs("liberty")
subdirs("stg")
subdirs("async")
subdirs("sta")
subdirs("sim")
subdirs("variability")
subdirs("dft")
subdirs("pnr")
subdirs("designs")
subdirs("core")
