file(REMOVE_RECURSE
  "libdesync_stg.a"
)
