# Empty dependencies file for desync_stg.
# This may be replaced when dependencies are built.
