file(REMOVE_RECURSE
  "CMakeFiles/desync_stg.dir/protocols.cpp.o"
  "CMakeFiles/desync_stg.dir/protocols.cpp.o.d"
  "CMakeFiles/desync_stg.dir/si_verify.cpp.o"
  "CMakeFiles/desync_stg.dir/si_verify.cpp.o.d"
  "CMakeFiles/desync_stg.dir/stg.cpp.o"
  "CMakeFiles/desync_stg.dir/stg.cpp.o.d"
  "libdesync_stg.a"
  "libdesync_stg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/desync_stg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
