file(REMOVE_RECURSE
  "CMakeFiles/desync_async.dir/celement.cpp.o"
  "CMakeFiles/desync_async.dir/celement.cpp.o.d"
  "CMakeFiles/desync_async.dir/controllers.cpp.o"
  "CMakeFiles/desync_async.dir/controllers.cpp.o.d"
  "CMakeFiles/desync_async.dir/delay_element.cpp.o"
  "CMakeFiles/desync_async.dir/delay_element.cpp.o.d"
  "CMakeFiles/desync_async.dir/verify_adapter.cpp.o"
  "CMakeFiles/desync_async.dir/verify_adapter.cpp.o.d"
  "libdesync_async.a"
  "libdesync_async.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/desync_async.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
