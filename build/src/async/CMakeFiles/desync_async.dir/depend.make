# Empty dependencies file for desync_async.
# This may be replaced when dependencies are built.
