file(REMOVE_RECURSE
  "libdesync_async.a"
)
