# CMake generated Testfile for 
# Source directory: /root/repo/src/async
# Build directory: /root/repo/build/src/async
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
