file(REMOVE_RECURSE
  "libdesync_sta.a"
)
