file(REMOVE_RECURSE
  "CMakeFiles/desync_sta.dir/sdc.cpp.o"
  "CMakeFiles/desync_sta.dir/sdc.cpp.o.d"
  "CMakeFiles/desync_sta.dir/sta.cpp.o"
  "CMakeFiles/desync_sta.dir/sta.cpp.o.d"
  "libdesync_sta.a"
  "libdesync_sta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/desync_sta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
