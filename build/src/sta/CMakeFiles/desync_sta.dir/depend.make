# Empty dependencies file for desync_sta.
# This may be replaced when dependencies are built.
