file(REMOVE_RECURSE
  "libdesync_liberty.a"
)
