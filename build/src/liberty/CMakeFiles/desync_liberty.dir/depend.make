# Empty dependencies file for desync_liberty.
# This may be replaced when dependencies are built.
