
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/liberty/bool_expr.cpp" "src/liberty/CMakeFiles/desync_liberty.dir/bool_expr.cpp.o" "gcc" "src/liberty/CMakeFiles/desync_liberty.dir/bool_expr.cpp.o.d"
  "/root/repo/src/liberty/bound.cpp" "src/liberty/CMakeFiles/desync_liberty.dir/bound.cpp.o" "gcc" "src/liberty/CMakeFiles/desync_liberty.dir/bound.cpp.o.d"
  "/root/repo/src/liberty/gatefile.cpp" "src/liberty/CMakeFiles/desync_liberty.dir/gatefile.cpp.o" "gcc" "src/liberty/CMakeFiles/desync_liberty.dir/gatefile.cpp.o.d"
  "/root/repo/src/liberty/liberty_io.cpp" "src/liberty/CMakeFiles/desync_liberty.dir/liberty_io.cpp.o" "gcc" "src/liberty/CMakeFiles/desync_liberty.dir/liberty_io.cpp.o.d"
  "/root/repo/src/liberty/library.cpp" "src/liberty/CMakeFiles/desync_liberty.dir/library.cpp.o" "gcc" "src/liberty/CMakeFiles/desync_liberty.dir/library.cpp.o.d"
  "/root/repo/src/liberty/stdlib90.cpp" "src/liberty/CMakeFiles/desync_liberty.dir/stdlib90.cpp.o" "gcc" "src/liberty/CMakeFiles/desync_liberty.dir/stdlib90.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/desync_netlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
