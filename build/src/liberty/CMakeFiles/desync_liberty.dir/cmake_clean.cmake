file(REMOVE_RECURSE
  "CMakeFiles/desync_liberty.dir/bool_expr.cpp.o"
  "CMakeFiles/desync_liberty.dir/bool_expr.cpp.o.d"
  "CMakeFiles/desync_liberty.dir/bound.cpp.o"
  "CMakeFiles/desync_liberty.dir/bound.cpp.o.d"
  "CMakeFiles/desync_liberty.dir/gatefile.cpp.o"
  "CMakeFiles/desync_liberty.dir/gatefile.cpp.o.d"
  "CMakeFiles/desync_liberty.dir/liberty_io.cpp.o"
  "CMakeFiles/desync_liberty.dir/liberty_io.cpp.o.d"
  "CMakeFiles/desync_liberty.dir/library.cpp.o"
  "CMakeFiles/desync_liberty.dir/library.cpp.o.d"
  "CMakeFiles/desync_liberty.dir/stdlib90.cpp.o"
  "CMakeFiles/desync_liberty.dir/stdlib90.cpp.o.d"
  "libdesync_liberty.a"
  "libdesync_liberty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/desync_liberty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
