# Empty dependencies file for desync_pnr.
# This may be replaced when dependencies are built.
