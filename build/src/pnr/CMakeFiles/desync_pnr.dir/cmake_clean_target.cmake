file(REMOVE_RECURSE
  "libdesync_pnr.a"
)
