file(REMOVE_RECURSE
  "CMakeFiles/desync_pnr.dir/pnr.cpp.o"
  "CMakeFiles/desync_pnr.dir/pnr.cpp.o.d"
  "libdesync_pnr.a"
  "libdesync_pnr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/desync_pnr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
