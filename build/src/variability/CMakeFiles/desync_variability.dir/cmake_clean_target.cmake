file(REMOVE_RECURSE
  "libdesync_variability.a"
)
