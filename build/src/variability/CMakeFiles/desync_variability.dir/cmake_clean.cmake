file(REMOVE_RECURSE
  "CMakeFiles/desync_variability.dir/variability.cpp.o"
  "CMakeFiles/desync_variability.dir/variability.cpp.o.d"
  "libdesync_variability.a"
  "libdesync_variability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/desync_variability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
