# Empty compiler generated dependencies file for desync_variability.
# This may be replaced when dependencies are built.
