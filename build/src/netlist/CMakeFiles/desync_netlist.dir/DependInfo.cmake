
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/blif.cpp" "src/netlist/CMakeFiles/desync_netlist.dir/blif.cpp.o" "gcc" "src/netlist/CMakeFiles/desync_netlist.dir/blif.cpp.o.d"
  "/root/repo/src/netlist/cleaning.cpp" "src/netlist/CMakeFiles/desync_netlist.dir/cleaning.cpp.o" "gcc" "src/netlist/CMakeFiles/desync_netlist.dir/cleaning.cpp.o.d"
  "/root/repo/src/netlist/flatten.cpp" "src/netlist/CMakeFiles/desync_netlist.dir/flatten.cpp.o" "gcc" "src/netlist/CMakeFiles/desync_netlist.dir/flatten.cpp.o.d"
  "/root/repo/src/netlist/names.cpp" "src/netlist/CMakeFiles/desync_netlist.dir/names.cpp.o" "gcc" "src/netlist/CMakeFiles/desync_netlist.dir/names.cpp.o.d"
  "/root/repo/src/netlist/netlist.cpp" "src/netlist/CMakeFiles/desync_netlist.dir/netlist.cpp.o" "gcc" "src/netlist/CMakeFiles/desync_netlist.dir/netlist.cpp.o.d"
  "/root/repo/src/netlist/verilog_reader.cpp" "src/netlist/CMakeFiles/desync_netlist.dir/verilog_reader.cpp.o" "gcc" "src/netlist/CMakeFiles/desync_netlist.dir/verilog_reader.cpp.o.d"
  "/root/repo/src/netlist/verilog_writer.cpp" "src/netlist/CMakeFiles/desync_netlist.dir/verilog_writer.cpp.o" "gcc" "src/netlist/CMakeFiles/desync_netlist.dir/verilog_writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
