# Empty compiler generated dependencies file for desync_netlist.
# This may be replaced when dependencies are built.
