file(REMOVE_RECURSE
  "libdesync_netlist.a"
)
