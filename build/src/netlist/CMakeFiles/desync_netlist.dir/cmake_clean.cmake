file(REMOVE_RECURSE
  "CMakeFiles/desync_netlist.dir/blif.cpp.o"
  "CMakeFiles/desync_netlist.dir/blif.cpp.o.d"
  "CMakeFiles/desync_netlist.dir/cleaning.cpp.o"
  "CMakeFiles/desync_netlist.dir/cleaning.cpp.o.d"
  "CMakeFiles/desync_netlist.dir/flatten.cpp.o"
  "CMakeFiles/desync_netlist.dir/flatten.cpp.o.d"
  "CMakeFiles/desync_netlist.dir/names.cpp.o"
  "CMakeFiles/desync_netlist.dir/names.cpp.o.d"
  "CMakeFiles/desync_netlist.dir/netlist.cpp.o"
  "CMakeFiles/desync_netlist.dir/netlist.cpp.o.d"
  "CMakeFiles/desync_netlist.dir/verilog_reader.cpp.o"
  "CMakeFiles/desync_netlist.dir/verilog_reader.cpp.o.d"
  "CMakeFiles/desync_netlist.dir/verilog_writer.cpp.o"
  "CMakeFiles/desync_netlist.dir/verilog_writer.cpp.o.d"
  "libdesync_netlist.a"
  "libdesync_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/desync_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
