file(REMOVE_RECURSE
  "CMakeFiles/desync_core.dir/buffering.cpp.o"
  "CMakeFiles/desync_core.dir/buffering.cpp.o.d"
  "CMakeFiles/desync_core.dir/control_network.cpp.o"
  "CMakeFiles/desync_core.dir/control_network.cpp.o.d"
  "CMakeFiles/desync_core.dir/desync.cpp.o"
  "CMakeFiles/desync_core.dir/desync.cpp.o.d"
  "CMakeFiles/desync_core.dir/ff_substitution.cpp.o"
  "CMakeFiles/desync_core.dir/ff_substitution.cpp.o.d"
  "CMakeFiles/desync_core.dir/flow_report.cpp.o"
  "CMakeFiles/desync_core.dir/flow_report.cpp.o.d"
  "CMakeFiles/desync_core.dir/regions.cpp.o"
  "CMakeFiles/desync_core.dir/regions.cpp.o.d"
  "libdesync_core.a"
  "libdesync_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/desync_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
