# Empty dependencies file for desync_core.
# This may be replaced when dependencies are built.
