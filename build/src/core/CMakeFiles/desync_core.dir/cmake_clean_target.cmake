file(REMOVE_RECURSE
  "libdesync_core.a"
)
