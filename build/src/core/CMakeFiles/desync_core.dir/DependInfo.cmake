
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/buffering.cpp" "src/core/CMakeFiles/desync_core.dir/buffering.cpp.o" "gcc" "src/core/CMakeFiles/desync_core.dir/buffering.cpp.o.d"
  "/root/repo/src/core/control_network.cpp" "src/core/CMakeFiles/desync_core.dir/control_network.cpp.o" "gcc" "src/core/CMakeFiles/desync_core.dir/control_network.cpp.o.d"
  "/root/repo/src/core/desync.cpp" "src/core/CMakeFiles/desync_core.dir/desync.cpp.o" "gcc" "src/core/CMakeFiles/desync_core.dir/desync.cpp.o.d"
  "/root/repo/src/core/ff_substitution.cpp" "src/core/CMakeFiles/desync_core.dir/ff_substitution.cpp.o" "gcc" "src/core/CMakeFiles/desync_core.dir/ff_substitution.cpp.o.d"
  "/root/repo/src/core/flow_report.cpp" "src/core/CMakeFiles/desync_core.dir/flow_report.cpp.o" "gcc" "src/core/CMakeFiles/desync_core.dir/flow_report.cpp.o.d"
  "/root/repo/src/core/regions.cpp" "src/core/CMakeFiles/desync_core.dir/regions.cpp.o" "gcc" "src/core/CMakeFiles/desync_core.dir/regions.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/desync_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/liberty/CMakeFiles/desync_liberty.dir/DependInfo.cmake"
  "/root/repo/build/src/async/CMakeFiles/desync_async.dir/DependInfo.cmake"
  "/root/repo/build/src/sta/CMakeFiles/desync_sta.dir/DependInfo.cmake"
  "/root/repo/build/src/stg/CMakeFiles/desync_stg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
