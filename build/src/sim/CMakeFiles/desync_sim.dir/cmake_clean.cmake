file(REMOVE_RECURSE
  "CMakeFiles/desync_sim.dir/flow_equivalence.cpp.o"
  "CMakeFiles/desync_sim.dir/flow_equivalence.cpp.o.d"
  "CMakeFiles/desync_sim.dir/power.cpp.o"
  "CMakeFiles/desync_sim.dir/power.cpp.o.d"
  "CMakeFiles/desync_sim.dir/simulator.cpp.o"
  "CMakeFiles/desync_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/desync_sim.dir/vcd.cpp.o"
  "CMakeFiles/desync_sim.dir/vcd.cpp.o.d"
  "libdesync_sim.a"
  "libdesync_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/desync_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
