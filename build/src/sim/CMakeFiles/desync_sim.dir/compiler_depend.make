# Empty compiler generated dependencies file for desync_sim.
# This may be replaced when dependencies are built.
