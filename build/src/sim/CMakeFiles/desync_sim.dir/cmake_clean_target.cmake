file(REMOVE_RECURSE
  "libdesync_sim.a"
)
