# Empty compiler generated dependencies file for desync_designs.
# This may be replaced when dependencies are built.
