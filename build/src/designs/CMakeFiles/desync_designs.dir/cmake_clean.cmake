file(REMOVE_RECURSE
  "CMakeFiles/desync_designs.dir/cpu.cpp.o"
  "CMakeFiles/desync_designs.dir/cpu.cpp.o.d"
  "CMakeFiles/desync_designs.dir/rtlgen.cpp.o"
  "CMakeFiles/desync_designs.dir/rtlgen.cpp.o.d"
  "CMakeFiles/desync_designs.dir/small.cpp.o"
  "CMakeFiles/desync_designs.dir/small.cpp.o.d"
  "libdesync_designs.a"
  "libdesync_designs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/desync_designs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
