file(REMOVE_RECURSE
  "libdesync_designs.a"
)
