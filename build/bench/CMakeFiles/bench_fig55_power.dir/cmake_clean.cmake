file(REMOVE_RECURSE
  "CMakeFiles/bench_fig55_power.dir/bench_fig55_power.cpp.o"
  "CMakeFiles/bench_fig55_power.dir/bench_fig55_power.cpp.o.d"
  "bench_fig55_power"
  "bench_fig55_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig55_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
