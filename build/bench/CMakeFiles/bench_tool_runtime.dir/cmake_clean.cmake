file(REMOVE_RECURSE
  "CMakeFiles/bench_tool_runtime.dir/bench_tool_runtime.cpp.o"
  "CMakeFiles/bench_tool_runtime.dir/bench_tool_runtime.cpp.o.d"
  "bench_tool_runtime"
  "bench_tool_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tool_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
