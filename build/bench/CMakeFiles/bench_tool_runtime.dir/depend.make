# Empty dependencies file for bench_tool_runtime.
# This may be replaced when dependencies are built.
