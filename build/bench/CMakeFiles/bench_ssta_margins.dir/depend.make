# Empty dependencies file for bench_ssta_margins.
# This may be replaced when dependencies are built.
