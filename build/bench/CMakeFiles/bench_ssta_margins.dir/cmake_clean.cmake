file(REMOVE_RECURSE
  "CMakeFiles/bench_ssta_margins.dir/bench_ssta_margins.cpp.o"
  "CMakeFiles/bench_ssta_margins.dir/bench_ssta_margins.cpp.o.d"
  "bench_ssta_margins"
  "bench_ssta_margins.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ssta_margins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
