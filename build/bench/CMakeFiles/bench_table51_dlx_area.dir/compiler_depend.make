# Empty compiler generated dependencies file for bench_table51_dlx_area.
# This may be replaced when dependencies are built.
