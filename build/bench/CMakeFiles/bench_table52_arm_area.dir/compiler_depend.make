# Empty compiler generated dependencies file for bench_table52_arm_area.
# This may be replaced when dependencies are built.
