# Empty compiler generated dependencies file for bench_fig24_protocols.
# This may be replaced when dependencies are built.
