# Empty dependencies file for bench_fig53_timing.
# This may be replaced when dependencies are built.
