file(REMOVE_RECURSE
  "CMakeFiles/bench_fig53_timing.dir/bench_fig53_timing.cpp.o"
  "CMakeFiles/bench_fig53_timing.dir/bench_fig53_timing.cpp.o.d"
  "bench_fig53_timing"
  "bench_fig53_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig53_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
