# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_scan_test_flow "/root/repo/build/examples/scan_test_flow")
set_tests_properties(example_scan_test_flow PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_library_migration "/root/repo/build/examples/library_migration")
set_tests_properties(example_library_migration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
