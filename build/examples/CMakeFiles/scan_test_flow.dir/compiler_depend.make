# Empty compiler generated dependencies file for scan_test_flow.
# This may be replaced when dependencies are built.
