file(REMOVE_RECURSE
  "CMakeFiles/scan_test_flow.dir/scan_test_flow.cpp.o"
  "CMakeFiles/scan_test_flow.dir/scan_test_flow.cpp.o.d"
  "scan_test_flow"
  "scan_test_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scan_test_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
