file(REMOVE_RECURSE
  "CMakeFiles/dlx_flow.dir/dlx_flow.cpp.o"
  "CMakeFiles/dlx_flow.dir/dlx_flow.cpp.o.d"
  "dlx_flow"
  "dlx_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlx_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
