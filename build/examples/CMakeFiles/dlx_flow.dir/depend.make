# Empty dependencies file for dlx_flow.
# This may be replaced when dependencies are built.
