file(REMOVE_RECURSE
  "CMakeFiles/library_migration.dir/library_migration.cpp.o"
  "CMakeFiles/library_migration.dir/library_migration.cpp.o.d"
  "library_migration"
  "library_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/library_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
