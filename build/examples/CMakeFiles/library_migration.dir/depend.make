# Empty dependencies file for library_migration.
# This may be replaced when dependencies are built.
