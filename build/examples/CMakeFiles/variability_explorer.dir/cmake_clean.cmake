file(REMOVE_RECURSE
  "CMakeFiles/variability_explorer.dir/variability_explorer.cpp.o"
  "CMakeFiles/variability_explorer.dir/variability_explorer.cpp.o.d"
  "variability_explorer"
  "variability_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/variability_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
