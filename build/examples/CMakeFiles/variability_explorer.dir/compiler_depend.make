# Empty compiler generated dependencies file for variability_explorer.
# This may be replaced when dependencies are built.
