# Empty compiler generated dependencies file for drdesync.
# This may be replaced when dependencies are built.
