file(REMOVE_RECURSE
  "CMakeFiles/drdesync.dir/drdesync_main.cpp.o"
  "CMakeFiles/drdesync.dir/drdesync_main.cpp.o.d"
  "drdesync"
  "drdesync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drdesync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
