// Scan test flow: DFT before desynchronization (thesis §4.3, Fig 2.1).
//
// Inserts a scan chain into a synchronous design, extracts test vectors by
// random-pattern stuck-at fault simulation, then desynchronizes the scan
// design and shows the chain still shifts — flow-equivalence means the
// same vectors test the desynchronized part (§2.1: "all of the
// conventional synchronous testing techniques can be applied in the same
// way").
#include <cstdio>

#include "core/desync.h"
#include "designs/small.h"
#include "dft/fault_sim.h"
#include "dft/scan.h"
#include "liberty/stdlib90.h"
#include "netlist/flatten.h"
#include "sim/flow_equivalence.h"
#include "sim/simulator.h"

using namespace desync;
using sim::Val;

int main() {
  std::printf("scan test flow\n==============\n\n");
  liberty::Library library =
      liberty::makeStdLib90(liberty::LibVariant::kHighSpeed);
  liberty::Gatefile gatefile(library);

  // Synchronous design + scan insertion.
  netlist::Design d;
  designs::buildPipe2(d, gatefile, 8);
  netlist::Module& m = *d.findModule("pipe2");
  dft::ScanResult scan = dft::insertScan(m, gatefile);
  std::printf("scan chain inserted: %zu flip-flops\n", scan.chain_length);

  // Test vector extraction: random-pattern stuck-at fault simulation.
  dft::FaultSimOptions fopt;
  fopt.n_patterns = 12;
  dft::FaultSimResult faults = dft::runScanFaultSim(m, gatefile, scan, fopt);
  std::printf("fault simulation: %zu stuck-at faults, %zu detected "
              "(%.1f%% coverage) with %zu patterns\n",
              faults.total, faults.detected, faults.coverage() * 100,
              faults.patterns.size());

  // Desynchronize the scan design.
  netlist::Design sync_copy;
  netlist::cloneModule(sync_copy, m);
  sync_copy.setTop("pipe2");
  core::DesyncOptions opt;
  opt.control.reset_port = "rst_n";
  opt.control.reset_active_low = true;
  core::DesyncResult res = core::desynchronize(d, m, gatefile, opt);
  std::printf("desynchronized: %d regions (scan flip-flops became latch "
              "pairs with a scan mux, Fig 3.1a)\n",
              res.regions.n_groups);

  // Shift a pattern through both versions and compare stored sequences:
  // scan shifting is just another data flow, so flow-equivalence covers it.
  auto driveSync = [&](sim::Simulator& s) {
    const sim::Time half = sim::nsToPs(res.sync_min_period_ns);
    s.setInput("clk", Val::k0);
    s.setInput("rst_n", Val::k0);
    s.setInput("scan_en", Val::k1);
    s.setInput("scan_in", Val::k1);
    s.run(2 * half);
    s.setInput("rst_n", Val::k1);
    s.run(s.now() + half);
    for (int i = 0; i < 32; ++i) {
      s.setInput("scan_in", (i % 5 < 2) ? Val::k1 : Val::k0);
      s.setInput("clk", Val::k1);
      s.run(s.now() + half);
      s.setInput("clk", Val::k0);
      s.run(s.now() + half);
    }
  };
  sim::Simulator sync_sim(sync_copy.top(), gatefile);
  driveSync(sync_sim);

  sim::Simulator desync_sim(m, gatefile);
  desync_sim.setInput("clk", Val::k0);
  desync_sim.setInput("rst_n", Val::k0);
  desync_sim.setInput("scan_en", Val::k1);
  desync_sim.setInput("scan_in", Val::k1);
  desync_sim.run(sim::nsToPs(20));
  desync_sim.setInput("rst_n", Val::k1);
  // Feed the same scan_in stream, paced by the self-timed handshakes: a new
  // bit after each capture of the first chain element's master latch.
  const sim::CaptureLog* first = nullptr;
  for (const auto& log : desync_sim.captures()) {
    if (log.element == scan.chain.front() + "_Lm") first = &log;
  }
  int shifts = 0;
  std::size_t seen = first != nullptr ? first->values.size() : 0;
  while (shifts < 32 && desync_sim.now() < sim::nsToPs(4000)) {
    desync_sim.run(desync_sim.now() + sim::nsToPs(1));
    if (first != nullptr && first->values.size() > seen) {
      seen = first->values.size();
      ++shifts;
      desync_sim.setInput("scan_in",
                          (shifts % 5 < 2) ? Val::k1 : Val::k0);
    }
  }
  std::printf("desynchronized scan shift: %d self-timed shift cycles\n",
              shifts);

  sim::FlowEqReport fe = sim::checkFlowEquivalence(sync_sim, desync_sim);
  std::printf("scan-path flow-equivalence: %s (%zu values compared)\n",
              fe.equivalent ? "HOLDS" : "VIOLATED", fe.values_compared);
  return fe.equivalent ? 0 : 1;
}
