// Library migration: preparing a technology library for desynchronization
// (thesis §3.1 — "this has to be done once for each library migration").
//
// Walks the library-support phase: parse the vendor .lib, extract the
// gatefile (cell classification + flip-flop replacement rules), implement
// the C-Muller elements and delay elements, build the latch controllers,
// and machine-verify the controllers hazard-free against their STG specs
// under arbitrary gate delays.
#include <cstdio>

#include "async/celement.h"
#include "async/controllers.h"
#include "async/delay_element.h"
#include "async/verify_adapter.h"
#include "liberty/liberty_io.h"
#include "liberty/stdlib90.h"
#include "sta/sta.h"
#include "stg/si_verify.h"

using namespace desync;

int main() {
  std::printf("library migration for desynchronization\n");
  std::printf("=======================================\n\n");

  // 1. Parse the vendor Liberty text (here: the shipped synthetic 90nm
  //    library, through the real parser path).
  liberty::Library library = liberty::readLiberty(
      liberty::stdLib90Text(liberty::LibVariant::kHighSpeed));
  std::printf("parsed '%s': %zu cells\n", library.name.c_str(),
              library.size());

  // 2. Gatefile: classify every cell; flip-flop structure is derived from
  //    the Liberty expressions (scan muxes, sync/async controls).
  liberty::Gatefile gatefile(library);
  std::printf("\ngatefile digest (excerpt):\n");
  for (const char* cell : {"DFF", "SDFFR", "DFFSYNR", "LD", "CGL"}) {
    const liberty::SeqClass* sc = gatefile.seqClass(cell);
    if (sc == nullptr) continue;
    std::printf("  %-8s clock=%s%s data=%s%s%s\n", cell,
                sc->clock_pin.c_str(), sc->clock_inverted ? "(inv)" : "",
                sc->data_pin.c_str(),
                sc->isScan() ? " +scan" : "",
                sc->async_clear_pin.empty() ? "" : " +async-clear");
  }
  std::printf("  simplest latch for master/slave pairs: %s\n",
              gatefile.simpleLatch().c_str());

  // 3. C-Muller elements (2..10 inputs) built from standard cells.
  netlist::Design lib_design;
  for (int n : {2, 3, 4, 8, 10}) {
    netlist::Module& c =
        async::ensureCElement(lib_design, gatefile, n, async::ResetKind::kLow);
    std::printf("C%d element: %zu cells\n", n, c.numCells());
  }

  // 4. Delay elements of various depths, characterized with STA
  //    (thesis §3.1.4: "implement delay elements of variable logic depth
  //    and perform STA to measure their delay values").
  std::printf("\ndelay element characterization (asymmetric, rise):\n");
  for (int levels : {4, 16, 64}) {
    async::DelayElementSpec spec;
    spec.levels = levels;
    netlist::Module& del =
        async::ensureDelayElement(lib_design, gatefile, spec);
    sta::Sta sta(del, gatefile);
    std::printf("  %3d levels: %.3f ns\n", levels,
                sta.portToPortNs("A", "Z", true).value());
  }

  // 5. Latch controllers, verified speed-independent against their STG
  //    interface specification (thesis §3.1.3: "specially designed
  //    circuits which need to be hazard-free").
  std::printf("\ncontroller verification:\n");
  {
    netlist::Module& ctrl = async::ensureController(
        lib_design, gatefile, async::ControllerKind::kSemiDecoupled,
        async::ControllerReset::kEmpty);
    stg::SiCircuit circuit = async::toSiCircuit(ctrl, gatefile);
    stg::SiResult r =
        stg::verifySpeedIndependent(circuit, async::semiDecoupledSpec());
    std::printf("  semi-decoupled: %s (%zu states explored)\n",
                r.ok() ? "conformant, hazard-free, deadlock-free"
                       : r.violation.c_str(),
                r.states);
  }
  {
    netlist::Module& ring = async::buildControllerRing(
        lib_design, gatefile, async::ControllerKind::kSemiDecoupled, 2);
    stg::SiCircuit circuit = async::toSiCircuit(ring, gatefile);
    stg::Stg closed;
    stg::SiResult r = stg::verifySpeedIndependent(circuit, closed);
    std::printf("  master/slave ring (2 pairs): %s (%zu states)\n",
                r.ok() ? "live and hazard-free under all gate delays"
                       : r.violation.c_str(),
                r.states);
  }

  std::printf("\nthe library is ready: drdesync can now desynchronize any "
              "netlist mapped to it.\n");
  return 0;
}
