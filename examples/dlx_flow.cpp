// The full EDA flow on the DLX RISC CPU (thesis ch.4-5, Fig 5.1).
//
// Specification -> synthesis(-like netlist) -> DFT scan insertion ->
// desynchronization -> placement & routing -> simulation, producing the
// artifacts an industrial flow would: Verilog netlists, SDC constraints,
// BLIF export and area/timing reports.  Output files land in
// ./dlx_flow_out/.
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/desync.h"
#include "designs/cpu.h"
#include "dft/scan.h"
#include "liberty/liberty_io.h"
#include "liberty/stdlib90.h"
#include "netlist/blif.h"
#include "netlist/flatten.h"
#include "netlist/verilog.h"
#include "pnr/pnr.h"
#include "sim/flow_equivalence.h"
#include "sim/simulator.h"
#include "sim/vcd.h"

using namespace desync;
using sim::Val;

int main() {
  const std::filesystem::path out = "dlx_flow_out";
  std::filesystem::create_directories(out);
  std::printf("DLX desynchronization flow (artifacts in %s/)\n\n",
              out.c_str());

  liberty::Library library =
      liberty::makeStdLib90(liberty::LibVariant::kHighSpeed);
  liberty::Gatefile gatefile(library);
  liberty::writeLibertyFile(library, (out / "core9like_hs.lib").string());
  std::ofstream(out / "gatefile.txt") << gatefile.toText();

  // Synthesis: the generator emits the post-synthesis gate-level netlist.
  netlist::Design design;
  designs::buildCpu(design, gatefile, designs::dlxConfig());
  netlist::Module& dlx = *design.findModule("dlx");
  std::printf("post-synthesis: %zu cells, %zu nets\n", dlx.numCells(),
              dlx.numNets());

  // DFT: scan chain insertion (thesis §4.3), before desynchronization.
  dft::ScanResult scan = dft::insertScan(dlx, gatefile);
  std::printf("DFT: scan chain of %zu flip-flops\n", scan.chain_length);
  netlist::writeVerilogFile(design, (out / "dlx_scan.v").string());

  netlist::Design sync_copy;
  netlist::cloneModule(sync_copy, dlx);
  sync_copy.setTop("dlx");

  // Desynchronization with the paper's manual 4-stage regions.
  core::DesyncOptions opt;
  opt.control.reset_port = "rst_n";
  opt.control.reset_active_low = true;
  opt.manual_seq_groups = {{"pc_", "ifid_"},
                           {"idex_"},
                           {"exmem_", "red_"},
                           {"rf_", "dmem_"}};
  core::DesyncResult res = core::desynchronize(design, dlx, gatefile, opt);
  std::printf("desynchronization: %d regions, %zu flip-flops substituted\n",
              res.regions.n_groups, res.substitution.ffs_replaced);
  for (const core::RegionControl& rc : res.control.regions) {
    std::printf("  G%d: %-28s delay element %3d levels (cloud %.2f ns)\n",
                rc.group, rc.master_cell.c_str(), rc.delay_levels,
                rc.required_delay_ns);
  }
  netlist::writeVerilogFile(design, (out / "dlx_desync.v").string());
  netlist::writeBlifFile(design, (out / "dlx_desync.blif").string());
  std::ofstream(out / "dlx_desync.sdc") << res.sdc.toText();

  // Backend.
  pnr::PnrOptions po;
  po.clock_ports = {};
  pnr::PnrResult layout = pnr::placeAndRoute(dlx, gatefile, po);
  std::printf("backend: core %.0f um^2, utilization %.1f%%, wirelength "
              "%.0f um\n",
              layout.core_size, layout.utilization * 100,
              layout.total_hpwl_um);

  // Simulation of both versions + flow-equivalence + a waveform.
  sim::Simulator sync_sim(sync_copy.top(), gatefile);
  const sim::Time half = sim::nsToPs(res.sync_min_period_ns);
  sync_sim.setInput("clk", Val::k0);
  sync_sim.setInput("rst_n", Val::k0);
  sync_sim.setInput("scan_en", Val::k0);
  sync_sim.setInput("scan_in", Val::k0);
  sync_sim.run(2 * half);
  sync_sim.setInput("rst_n", Val::k1);
  sync_sim.run(sync_sim.now() + half);
  for (int i = 0; i < 60; ++i) {
    sync_sim.setInput("clk", Val::k1);
    sync_sim.run(sync_sim.now() + half);
    sync_sim.setInput("clk", Val::k0);
    sync_sim.run(sync_sim.now() + half);
  }

  sim::Simulator desync_sim(dlx, gatefile);
  std::vector<sim::Time> rises;
  desync_sim.watchNet("G1_gm", [&](sim::Time t, Val v) {
    if (v == Val::k1) rises.push_back(t);
  });
  {
    sim::VcdWriter vcd(desync_sim, (out / "dlx_desync.vcd").string(),
                       {"G1_gm", "G1_gs", "G2_gm", "G3_gm", "G4_gm"});
    desync_sim.setInput("clk", Val::k0);
    desync_sim.setInput("rst_n", Val::k0);
    desync_sim.setInput("scan_en", Val::k0);
    desync_sim.setInput("scan_in", Val::k0);
    desync_sim.run(sim::nsToPs(20));
    desync_sim.setInput("rst_n", Val::k1);
    desync_sim.run(desync_sim.now() + 160 * half);
  }
  double period = rises.size() > 4
                      ? static_cast<double>(rises.back() - rises[2]) /
                            static_cast<double>(rises.size() - 3) / 1000.0
                      : -1;
  std::printf("simulation: sync min period %.3f ns, desync effective period "
              "%.3f ns\n",
              res.sync_min_period_ns, period);

  sim::FlowEqReport fe = sim::checkFlowEquivalence(sync_sim, desync_sim);
  std::printf("flow-equivalence: %s (%zu elements, %zu values)\n",
              fe.equivalent ? "HOLDS" : "VIOLATED", fe.elements_compared,
              fe.values_compared);
  if (!fe.equivalent) {
    for (const std::string& d : fe.details) std::printf("  %s\n", d.c_str());
  }
  return fe.equivalent ? 0 : 1;
}
