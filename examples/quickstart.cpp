// Quickstart: desynchronize your first circuit.
//
// Takes a small synchronous counter through the whole drdesync flow —
// library digestion, region grouping, flip-flop substitution, control
// network insertion — then simulates both versions and checks
// flow-equivalence: every latch of the desynchronized circuit stores the
// exact same value sequence as its synchronous flip-flop.
#include <cstdio>

#include "core/desync.h"
#include "designs/small.h"
#include "liberty/gatefile.h"
#include "liberty/liberty_io.h"
#include "liberty/stdlib90.h"
#include "netlist/flatten.h"
#include "netlist/verilog.h"
#include "sim/flow_equivalence.h"
#include "sim/simulator.h"

using namespace desync;
using sim::Val;

int main() {
  std::printf("drdesync quickstart\n===================\n\n");

  // 1. Library support (thesis ch.3): parse the Liberty text and build the
  //    gatefile digest.  The synthetic 90nm library ships with the repo.
  liberty::Library library =
      liberty::readLiberty(liberty::stdLib90Text(liberty::LibVariant::kHighSpeed));
  liberty::Gatefile gatefile(library);
  std::printf("library '%s': %zu cells, simplest latch: %s\n",
              library.name.c_str(), library.size(),
              gatefile.simpleLatch().c_str());

  // 2. The synchronous circuit: an 8-bit counter (gate-level, as it would
  //    come out of synthesis).  Keep a pristine copy for comparison.
  netlist::Design design;
  designs::buildCounter(design, gatefile, 8);
  netlist::Design sync_copy;
  netlist::cloneModule(sync_copy, *design.findModule("counter"));
  std::printf("synchronous counter: %zu cells\n",
              design.findModule("counter")->numCells());

  // 3. Desynchronize.
  core::DesyncOptions options;
  options.control.reset_port = "rst_n";
  options.control.reset_active_low = true;
  core::DesyncResult result = core::desynchronize(
      design, *design.findModule("counter"), gatefile, options);
  std::printf("desynchronized: %d region(s), %zu flip-flops -> latch pairs, "
              "%zu cells total\n",
              result.regions.n_groups, result.substitution.ffs_replaced,
              design.findModule("counter")->numCells());
  for (const core::RegionControl& rc : result.control.regions) {
    std::printf("  region G%d: delay element %d levels (matched %.3f ns for "
                "a %.3f ns cloud)\n",
                rc.group, rc.delay_levels, rc.matched_delay_ns,
                rc.required_delay_ns);
  }

  // 4. Simulate the synchronous version (50 clock cycles)...
  sim::Simulator sync_sim(sync_copy.top(), gatefile);
  const sim::Time half = sim::nsToPs(result.sync_min_period_ns);
  sync_sim.setInput("clk", Val::k0);
  sync_sim.setInput("rst_n", Val::k0);
  sync_sim.run(2 * half);
  sync_sim.setInput("rst_n", Val::k1);
  sync_sim.run(sync_sim.now() + half);
  for (int i = 0; i < 50; ++i) {
    sync_sim.setInput("clk", Val::k1);
    sync_sim.run(sync_sim.now() + half);
    sync_sim.setInput("clk", Val::k0);
    sync_sim.run(sync_sim.now() + half);
  }

  // 5. ... and the desynchronized one: no clock at all — release reset and
  //    the controller network self-starts from the slave latches' reset
  //    data tokens.
  sim::Simulator desync_sim(*design.findModule("counter"), gatefile);
  desync_sim.setInput("clk", Val::k0);  // the old clock port is inert
  desync_sim.setInput("rst_n", Val::k0);
  desync_sim.run(sim::nsToPs(20));
  desync_sim.setInput("rst_n", Val::k1);
  desync_sim.run(desync_sim.now() + 220 * half);

  // 6. Flow-equivalence: compare the stored value sequences.
  sim::FlowEqReport report = sim::checkFlowEquivalence(sync_sim, desync_sim);
  std::printf("\nflow-equivalence: %s (%zu elements, %zu stored values "
              "compared, %zu mismatches)\n",
              report.equivalent ? "HOLDS" : "VIOLATED",
              report.elements_compared, report.values_compared,
              report.mismatches);

  // 7. The desynchronized netlist is ordinary structural Verilog plus an
  //    SDC file — ready for any backend (thesis ch.4).
  std::printf("\nbackend constraints (SDC):\n%s",
              result.sdc.toText().c_str());
  return report.equivalent ? 0 : 1;
}
