// Variability explorer: how a desynchronized circuit adapts its timing.
//
// Demonstrates the paper's core motivation (thesis ch.1, §2.5): the
// self-timed network's effective period tracks process/voltage/temperature
// conditions automatically, while a synchronous design must be signed off
// at the worst corner.  Sweeps corners and Monte-Carlo die samples on a
// desynchronized pipeline and prints the adaptive period.
#include <cstdio>

#include "core/desync.h"
#include "designs/small.h"
#include "liberty/stdlib90.h"
#include "sim/simulator.h"
#include "variability/variability.h"

using namespace desync;
using sim::Val;

namespace {

double measurePeriod(netlist::Module& m, const liberty::Gatefile& gf,
                     sim::SimOptions so) {
  sim::Simulator s(m, gf, std::move(so));
  std::vector<sim::Time> rises;
  s.watchNet("G1_gm", [&](sim::Time t, Val v) {
    if (v == Val::k1) rises.push_back(t);
  });
  s.setInput("clk", Val::k0);
  s.setInput("rst_n", Val::k0);
  s.run(sim::nsToPs(20));
  s.setInput("rst_n", Val::k1);
  s.run(s.now() + sim::nsToPs(400));
  if (rises.size() < 5) return -1;
  return static_cast<double>(rises.back() - rises[2]) /
         static_cast<double>(rises.size() - 3) / 1000.0;
}

}  // namespace

int main() {
  std::printf("variability explorer\n====================\n\n");
  liberty::Library library =
      liberty::makeStdLib90(liberty::LibVariant::kHighSpeed);
  liberty::Gatefile gatefile(library);

  netlist::Design d;
  designs::buildPipe2(d, gatefile, 16);
  core::DesyncOptions opt;
  opt.control.reset_port = "rst_n";
  opt.control.reset_active_low = true;
  core::DesyncResult res =
      core::desynchronize(d, *d.findModule("pipe2"), gatefile, opt);
  netlist::Module& m = *d.findModule("pipe2");
  std::printf("pipeline desynchronized; synchronous sign-off period would "
              "be %.3f ns at the worst corner\n\n",
              res.sync_min_period_ns *
                  variability::cornerSpec(variability::Corner::kWorst)
                      .delay_scale);

  std::printf("PVT corners (the self-timed period follows the silicon):\n");
  for (auto corner : {variability::Corner::kBest,
                      variability::Corner::kTypical,
                      variability::Corner::kWorst}) {
    variability::CornerSpec spec = variability::cornerSpec(corner);
    sim::SimOptions so;
    so.delay_scale = spec.delay_scale;
    double period = measurePeriod(m, gatefile, std::move(so));
    std::printf("  %-8s (delay x%.2f, %.2fV): effective period %.3f ns\n",
                spec.name, spec.delay_scale, spec.vdd, period);
  }

  std::printf("\nMonte-Carlo dies (inter-die + per-cell intra-die "
              "variation):\n");
  variability::VariationModel model = variability::makeSpanModel(2026);
  for (std::uint64_t die = 0; die < 8; ++die) {
    variability::ChipSample chip = variability::sampleChip(model, die);
    sim::SimOptions so;
    so.delay_scale = chip.global;
    so.cell_delay_scale = chip.cell_factor;
    double period = measurePeriod(m, gatefile, std::move(so));
    std::printf("  die %llu: global x%.3f -> effective period %.3f ns\n",
                static_cast<unsigned long long>(die), chip.global, period);
  }

  std::printf("\nEvery die runs at its own speed — no binning, no external "
              "clock to re-target (thesis ch.6).\n");
  return 0;
}
