// Failure-path reporting on degenerate netlists: which degenerate shapes
// the flow tolerates (port-only, combinational-only, empty regions), which
// throw mid-flow, and — for those that throw — that errorReportJson and the
// partial Chrome trace still tell the whole story of the passes that ran.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "core/desync.h"
#include "core/run_report.h"
#include "core/version.h"
#include "liberty/gatefile.h"
#include "liberty/stdlib90.h"
#include "netlist/verilog.h"
#include "trace/trace.h"

namespace nl = desync::netlist;
namespace lib = desync::liberty;
namespace core = desync::core;
namespace trace = desync::trace;

namespace {

const lib::Gatefile& gf() {
  static const lib::Library l = lib::makeStdLib90(lib::LibVariant::kHighSpeed);
  static const lib::Gatefile g(l);
  return g;
}

nl::Design parse(const std::string& text) {
  nl::Design d;
  nl::readVerilog(d, text, gf());
  return d;
}

// A sequential toggle whose module has no reset port at all: the control
// network pass must throw once asked to wire a reset it cannot find.
const char* kNoResetToggle = R"(
  module noreset (clk);
    input clk;
    wire q, nq;
    DFF t (.D(nq), .CP(clk), .Q(q));
    IV i (.A(q), .Z(nq));
  endmodule
)";

core::DesyncOptions withReset() {
  core::DesyncOptions opt;
  opt.control.reset_port = "rst_n";
  opt.control.reset_active_low = true;
  return opt;
}

TEST(ErrorReport, PortOnlyModuleFlowsToCompletion) {
  // The flow's tolerance boundary, pinned down: a module with ports but no
  // cells runs all seven passes (one empty region, zero substitutions,
  // zero controllers) rather than throwing.  The fuzz oracle relies on
  // this: shrunken reproducers may be arbitrarily hollowed out.
  nl::Design d = parse(
      "module empty (clk, rst_n);\n  input clk;\n  input rst_n;\n"
      "endmodule\n");
  core::DesyncResult r = core::desynchronize(d, d.top(), gf(), withReset());
  EXPECT_EQ(r.flow.passes().size(), 7u);
  EXPECT_EQ(r.substitution.ffs_replaced, 0u);
  EXPECT_TRUE(r.sdc.clocks.empty());
}

TEST(ErrorReport, DegenerateFailureCarriesPartialFlowReport) {
  nl::Design d = parse(kNoResetToggle);
  try {
    core::desynchronize(d, d.top(), gf(), withReset());
    FAIL() << "expected FlowError";
  } catch (const core::FlowError& e) {
    EXPECT_EQ(e.pass(), "control_network");
    // Five passes completed, the sixth died — all six are in the report.
    ASSERT_EQ(e.flow().passes().size(), 6u);
    EXPECT_EQ(e.flow().passes().back().name, "control_network");

    core::RunInfo info;
    info.input = "noreset.v";
    info.cells_in = 2;
    const std::string json =
        core::errorReportJson(info, e.what(), e.pass(), e.flow());
    EXPECT_NE(json.find("\"error\": \"reset port not found: rst_n\""),
              std::string::npos);
    EXPECT_NE(json.find("\"failed_pass\": \"control_network\""),
              std::string::npos);
    EXPECT_NE(json.find("\"failed_pass_ms\""), std::string::npos);
    EXPECT_NE(json.find("\"reference_sta\""), std::string::npos);
    EXPECT_NE(json.find("\"region_timing\""), std::string::npos);
    EXPECT_NE(json.find(core::kToolVersion), std::string::npos);
  }
}

TEST(ErrorReport, JsonWithoutFailedPassStillWellFormed) {
  // Errors outside any pass (parse errors, I/O) reach errorReportJson with
  // an empty pass name and an empty FlowReport: no "failed_pass" key, no
  // passes, but still a closed JSON object with the error message.
  core::RunInfo info;
  info.input = "garbage.v";
  const std::string json = core::errorReportJson(info, "boom \"quoted\"", "", {});
  EXPECT_EQ(json.find("\"failed_pass\""), std::string::npos);
  EXPECT_NE(json.find("\"error\": \"boom \\\"quoted\\\"\""),
            std::string::npos);
  EXPECT_NE(json.find("\"passes\": ["), std::string::npos);
  EXPECT_EQ(json.back(), '\n');
  EXPECT_EQ(json[json.size() - 2], '}');
}

TEST(ErrorReport, PartialTraceWrittenWhenPassThrows) {
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "error_report_partial.json";
  std::filesystem::remove(path);

  trace::start(path.string());
  nl::Design d = parse(kNoResetToggle);
  std::string failed_pass;
  try {
    core::desynchronize(d, d.top(), gf(), withReset());
  } catch (const core::FlowError& e) {
    failed_pass = e.pass();
  }
  ASSERT_EQ(failed_pass, "control_network");
  trace::Summary summary = trace::finish();
  EXPECT_TRUE(summary.enabled);

  // The trace survives the mid-flow death: a loadable Chrome trace holding
  // the spans of every pass that ran up to the failure point.
  ASSERT_TRUE(std::filesystem::exists(path));
  std::ostringstream buf;
  buf << std::ifstream(path).rdbuf();
  const std::string text = buf.str();
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("reference_sta"), std::string::npos);
  EXPECT_NE(text.find("control_network"), std::string::npos);

  // And errorReportJson (called after finish(), as drdesync does) names
  // the innermost span the exception unwound through.
  const std::string json =
      core::errorReportJson({}, "reset port not found: rst_n", failed_pass,
                            {});
  EXPECT_NE(json.find("\"last_open_span\""), std::string::npos);
  std::filesystem::remove(path);
}

}  // namespace
