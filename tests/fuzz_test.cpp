// Differential fuzzing subsystem tests: generator validity and determinism,
// the end-to-end oracle (honest and fault-injected), and the shrinker's
// convergence guarantees.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <set>
#include <string>

#include "designs/small.h"
#include "fuzz/generator.h"
#include "fuzz/oracle.h"
#include "fuzz/shrink.h"
#include "liberty/gatefile.h"
#include "liberty/stdlib90.h"
#include "netlist/netlist.h"
#include "netlist/verilog.h"

namespace nl = desync::netlist;
namespace lib = desync::liberty;
namespace fuzz = desync::fuzz;
namespace designs = desync::designs;

namespace {

const lib::Gatefile& gf() {
  static const lib::Library l = lib::makeStdLib90(lib::LibVariant::kHighSpeed);
  static const lib::Gatefile g(l);
  return g;
}

/// Oracle options for unit tests: the FlowDB check triples the flow count
/// and touches the filesystem, so only the dedicated test turns it on.
fuzz::OracleOptions fastOracle() {
  fuzz::OracleOptions o;
  o.check_flowdb = false;
  return o;
}

std::string smallDesignText(
    nl::Module& (*build)(nl::Design&, const lib::Gatefile&, int,
                         const std::string&),
    int param) {
  nl::Design d;
  return nl::writeVerilog(build(d, gf(), param, "dut"));
}

TEST(Generator, SameSeedSameNetlistDifferentSeedsDiffer) {
  const std::string a1 = fuzz::generateVerilog(gf(), 7);
  const std::string a2 = fuzz::generateVerilog(gf(), 7);
  EXPECT_EQ(a1, a2);

  std::set<std::string> texts;
  for (std::uint64_t s = 1; s <= 10; ++s) {
    texts.insert(fuzz::generateVerilog(gf(), s));
  }
  EXPECT_EQ(texts.size(), 10u) << "consecutive seeds collided";
}

TEST(Generator, ProducesValidSelfContainedDesigns) {
  for (std::uint64_t s = 1; s <= 25; ++s) {
    nl::Design d;
    nl::Module& m = fuzz::generateDesign(d, gf(), s);
    EXPECT_TRUE(m.checkInvariants().empty()) << "seed " << s;
    EXPECT_TRUE(m.findPort("clk").valid()) << "seed " << s;
    EXPECT_TRUE(m.findPort("rst_n").valid()) << "seed " << s;
    // Autonomous stimulus: clk and rst_n are the only inputs, so the
    // desynchronized version needs no clock-aligned data stimulus.
    for (const nl::Port& p : m.ports()) {
      if (p.dir != nl::PortDir::kInput) continue;
      const std::string name(d.names().str(p.name));
      EXPECT_TRUE(name == "clk" || name == "rst_n") << name;
    }
  }
}

TEST(Generator, ConfigShapesThePopulation) {
  fuzz::GeneratorConfig cfg;
  cfg.min_stages = 3;
  cfg.max_stages = 3;
  cfg.min_width = 4;
  cfg.max_width = 4;
  cfg.zero_output_percent = 0;
  for (std::uint64_t s = 1; s <= 5; ++s) {
    nl::Design d;
    nl::Module& m = fuzz::generateDesign(d, gf(), s, cfg);
    std::size_t ffs = 0;
    m.forEachCell([&](nl::CellId id) {
      if (gf().isFlipFlop(m.cellType(id))) ++ffs;
    });
    EXPECT_EQ(ffs, 12u) << "seed " << s;  // 3 stages x 4 bits
    // Multi-bit output buses come out as q[0]..q[3] (escaped identifiers
    // in the written Verilog); 1-bit stages degrade to a plain "q".
    EXPECT_TRUE(m.findPort("q[0]").valid() || m.findPort("q").valid())
        << "seed " << s;
  }
}

TEST(Oracle, HonestFlowPassesOnGeneratedPopulation) {
  for (std::uint64_t s = 1; s <= 15; ++s) {
    const std::string text = fuzz::generateVerilog(gf(), s);
    fuzz::OracleVerdict v = fuzz::runOracle(text, gf(), fastOracle());
    EXPECT_TRUE(v.ok) << "seed " << s << " failed " << v.check << ": "
                      << v.detail;
    EXPECT_GT(v.ffs_replaced, 0u) << "seed " << s;
    EXPECT_GE(v.regions, 1) << "seed " << s;
  }
}

TEST(Oracle, VerdictIsDeterministic) {
  const std::string text = fuzz::generateVerilog(gf(), 3);
  fuzz::OracleVerdict a = fuzz::runOracle(text, gf(), fastOracle());
  fuzz::OracleVerdict b = fuzz::runOracle(text, gf(), fastOracle());
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.check, b.check);
  EXPECT_EQ(a.detail, b.detail);
  EXPECT_EQ(a.values_compared, b.values_compared);
}

TEST(Oracle, FlowDbCheckPassesColdAndWarm) {
  const std::filesystem::path scratch =
      std::filesystem::temp_directory_path() / "fuzz_test_flowdb";
  std::filesystem::create_directories(scratch);
  fuzz::OracleOptions o;
  o.scratch_dir = scratch.string();
  const std::string text = fuzz::generateVerilog(gf(), 5);
  fuzz::OracleVerdict v = fuzz::runOracle(text, gf(), o);
  EXPECT_TRUE(v.ok) << v.check << ": " << v.detail;
  std::filesystem::remove_all(scratch);
}

TEST(Oracle, RejectsGarbageInput) {
  fuzz::OracleVerdict v =
      fuzz::runOracle("module broken (a; endmodule", gf(), fastOracle());
  EXPECT_FALSE(v.ok);
  EXPECT_EQ(v.check, "parse");
}

TEST(Oracle, ToleratesHollowDesignsButFlagsFlowErrors) {
  // Port-only module: the flow runs to completion with zero substitutions,
  // and every storage-dependent check (FE, STA) passes vacuously — the
  // shrinker depends on hollowed-out candidates being judged, not crashed.
  fuzz::OracleVerdict empty = fuzz::runOracle(
      "module empty (clk, rst_n);\n  input clk;\n  input rst_n;\nendmodule\n",
      gf(), fastOracle());
  EXPECT_TRUE(empty.ok) << empty.check << ": " << empty.detail;
  EXPECT_EQ(empty.ffs_replaced, 0u);

  // A sequential design without the contractual rst_n port: the control
  // network pass throws mid-flow, surfaced as the "flow" check with the
  // failing pass named in the detail.
  fuzz::OracleVerdict v = fuzz::runOracle(
      "module noreset (clk);\n  input clk;\n  wire q, nq;\n"
      "  DFF t (.D(nq), .CP(clk), .Q(q));\n  IV i (.A(q), .Z(nq));\n"
      "endmodule\n",
      gf(), fastOracle());
  EXPECT_FALSE(v.ok);
  EXPECT_EQ(v.check, "flow") << v.detail;
  EXPECT_NE(v.detail.find("control_network"), std::string::npos) << v.detail;
}

TEST(Oracle, DetectsFullyDecoupledControllerBug) {
  // Fig 2.4's warning, found differentially: the fully-decoupled
  // controller's extra concurrency breaks flow equivalence on a two-region
  // pipeline (core_test shows the same on the builder directly; here it
  // must surface through the text-level oracle).
  fuzz::OracleOptions o = fastOracle();
  o.fault = fuzz::FaultKind::kFullyDecoupled;
  o.cycles = 40;
  fuzz::OracleVerdict v =
      fuzz::runOracle(smallDesignText(designs::buildPipe2, 8), gf(), o);
  EXPECT_FALSE(v.ok);
  EXPECT_EQ(v.check, "flow-equivalence") << v.detail;
}

TEST(Oracle, DetectsTooShortMatchedDelays) {
  // Fig 5.3's dashed region: matched delays far below the logic depth
  // capture data before it settled.  The long-path design exercises its
  // full critical path every cycle, so the corruption is deterministic.
  fuzz::OracleOptions o = fastOracle();
  o.fault = fuzz::FaultKind::kShortMargin;
  o.cycles = 30;
  fuzz::OracleVerdict v =
      fuzz::runOracle(smallDesignText(designs::buildLongPath, 60), gf(), o);
  EXPECT_FALSE(v.ok);
  EXPECT_EQ(v.check, "flow-equivalence") << v.detail;
}

TEST(Oracle, FaultKindNamesRoundTrip) {
  for (fuzz::FaultKind k :
       {fuzz::FaultKind::kNone, fuzz::FaultKind::kFullyDecoupled,
        fuzz::FaultKind::kShortMargin, fuzz::FaultKind::kSelfTest}) {
    EXPECT_EQ(fuzz::parseFaultKind(fuzz::faultKindName(k)), k);
  }
  EXPECT_THROW(fuzz::parseFaultKind("bogus"), std::invalid_argument);
}

TEST(Shrink, PassingInputIsReturnedUnchanged) {
  const std::string text = fuzz::generateVerilog(gf(), 1);
  fuzz::ShrinkOptions so;
  so.oracle = fastOracle();
  fuzz::ShrinkResult r = fuzz::shrink(text, gf(), so);
  EXPECT_FALSE(r.failing);
  EXPECT_EQ(r.verilog, text);
  EXPECT_EQ(r.evals, 1);
}

TEST(Shrink, SelfTestFaultConvergesToMinimalRegister) {
  // The injected self-test failure holds as long as one latch pair exists,
  // so the reducer must reach a design of at most a few cells — well under
  // the <= 10 gate acceptance bar — and do so deterministically.
  fuzz::ShrinkOptions so;
  so.oracle = fastOracle();
  so.oracle.fault = fuzz::FaultKind::kSelfTest;
  const std::string text = fuzz::generateVerilog(gf(), 1);

  fuzz::ShrinkResult a = fuzz::shrink(text, gf(), so);
  EXPECT_TRUE(a.failing);
  EXPECT_EQ(a.check, "self-test");
  EXPECT_LE(a.final_cells, 10u);
  EXPECT_LT(a.final_cells, a.initial_cells);

  fuzz::ShrinkResult b = fuzz::shrink(text, gf(), so);
  EXPECT_EQ(a.verilog, b.verilog) << "shrinker is not deterministic";
  EXPECT_EQ(a.evals, b.evals);

  // The reproducer still fails the same check when replayed standalone.
  fuzz::OracleVerdict v = fuzz::runOracle(a.verilog, gf(), so.oracle);
  EXPECT_FALSE(v.ok);
  EXPECT_EQ(v.check, "self-test");
}

TEST(Shrink, PreservesRealFlowEquivalenceFailures) {
  // A genuine bug (fully-decoupled controller) must survive reduction: the
  // result still fails flow-equivalence and still holds >= 2 registers in
  // >= 2 regions (one register alone cannot break FE this way).
  fuzz::ShrinkOptions so;
  so.oracle = fastOracle();
  so.oracle.fault = fuzz::FaultKind::kFullyDecoupled;
  const std::string text = fuzz::generateVerilog(gf(), 2);
  fuzz::OracleVerdict before = fuzz::runOracle(text, gf(), so.oracle);
  ASSERT_FALSE(before.ok);
  ASSERT_EQ(before.check, "flow-equivalence");

  fuzz::ShrinkResult r = fuzz::shrink(text, gf(), so);
  EXPECT_TRUE(r.failing);
  EXPECT_EQ(r.check, "flow-equivalence");
  EXPECT_LT(r.final_cells, r.initial_cells);

  fuzz::OracleVerdict after = fuzz::runOracle(r.verilog, gf(), so.oracle);
  EXPECT_FALSE(after.ok);
  EXPECT_EQ(after.check, "flow-equivalence");
  EXPECT_GE(after.ffs_replaced, 2u);
  EXPECT_GE(after.regions, 2);
}

}  // namespace
