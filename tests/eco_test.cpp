// Incremental ECO recompute (docs/eco.md): table storage and
// the warm/cold lifecycle, dirtiness closures for every scripted edit
// kind (cell insertion, constant tie, net rename, fanout reroute), the
// byte-identity guarantee against cold flows of the edited design at
// --jobs 1 and 4 on the DLX and ARM-class case studies, and every
// degradation path (corrupt slot, truncated slot, guard-key mismatch,
// foreign design, --resume) falling back to a cold run — never a wrong
// one.
//
// The TSan variant (eco_test_tsan, DESYNC_ECO_TEST_LIGHT) drops the two
// CPU case studies and re-runs the whole-closure pipe2 tests with the
// flow's parallel sections race-checked.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/desync.h"
#include "core/parallel.h"
#include "designs/cpu.h"
#include "designs/small.h"
#include "liberty/stdlib90.h"
#include "netlist/netlist.h"
#include "netlist/verilog.h"

namespace core = desync::core;
namespace designs = desync::designs;
namespace lib = desync::liberty;
namespace nl = desync::netlist;
namespace fs = std::filesystem;

namespace {

const lib::Gatefile& gf() {
  static const lib::Library l = lib::makeStdLib90(lib::LibVariant::kHighSpeed);
  static const lib::Gatefile g(l);
  return g;
}

/// Fresh per-test scratch directory under the gtest temp root.
fs::path scratchDir(const std::string& name) {
  fs::path dir = fs::path(::testing::TempDir()) / ("eco_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

core::DesyncOptions ecoOptions(const std::string& cache_dir) {
  core::DesyncOptions opt;
  opt.control.reset_port = "rst_n";
  opt.control.reset_active_low = true;
  opt.flowdb.cache_dir = cache_dir;
  opt.flowdb.eco = !cache_dir.empty();
  return opt;
}

struct FlowOutput {
  std::string verilog;
  std::string sdc;
  core::DesyncResult result;
};

/// Builds pipe2, applies `edit` (may be empty) and desynchronizes.
template <typename Edit>
FlowOutput runPipe2(const core::DesyncOptions& opt, Edit&& edit) {
  nl::Design design;
  designs::buildPipe2(design, gf(), 8);
  nl::Module& m = *design.findModule("pipe2");
  edit(m);
  FlowOutput out;
  out.result = core::desynchronize(design, m, gf(), opt);
  // Whole-design output, exactly the CLI surface: helper modules (delay
  // elements, controllers) must match too, not just the top module.
  out.verilog = nl::writeVerilog(design);
  out.sdc = out.result.sdc.toText();
  return out;
}

FlowOutput runPipe2(const core::DesyncOptions& opt) {
  return runPipe2(opt, [](nl::Module&) {});
}

/// Inserts an inverter in front of the data pin of the `skip`-th eligible
/// flip-flop (single-sink D net with a combinational driver).  Returns
/// false when no such site exists.
bool insertInverter(nl::Module& m, int skip = 0) {
  const std::string tag = "eco_fix" + std::to_string(skip);
  std::vector<nl::CellId> ffs;
  m.forEachCell([&](nl::CellId c) {
    if (gf().isFlipFlop(m.cellType(c))) ffs.push_back(c);
  });
  for (nl::CellId ff : ffs) {
    const lib::SeqClass* sc = gf().seqClass(m.cellType(ff));
    if (sc == nullptr || sc->data_pin.empty()) continue;
    const nl::NetId d = m.pinNet(ff, sc->data_pin);
    if (!d.valid()) continue;
    const nl::Net& n = m.net(d);
    if (!n.driver.isCellPin() || n.sinks.size() != 1) continue;
    const nl::CellId drv = n.driver.cell();
    if (gf().kind(m.cellType(drv)) != lib::CellKind::kCombinational) {
      continue;
    }
    // An earlier inserted inverter keeps its FF eligible; don't stack
    // edits on one register across calls with increasing `skip`.
    if (m.cellName(drv).rfind("eco_fix", 0) == 0) continue;
    if (skip-- > 0) continue;
    const nl::NetId out = m.addNet(tag + "_z");
    m.addCell(tag + "_inv", "IV",
              {{"A", nl::PortDir::kInput, d},
               {"Z", nl::PortDir::kOutput, out}});
    m.connectPin(ff, m.findPin(ff, sc->data_pin), out);
    return true;
  }
  return false;
}

/// Ties the first combinational input pin found to constant `value`.
bool tieFirstCombInput(nl::Module& m, bool value) {
  bool done = false;
  m.forEachCell([&](nl::CellId c) {
    if (done ||
        gf().kind(m.cellType(c)) != lib::CellKind::kCombinational) {
      return;
    }
    const std::vector<nl::PinConn>& pins = m.cell(c).pins;
    for (std::size_t p = 0; p < pins.size(); ++p) {
      if (pins[p].dir == nl::PortDir::kInput && pins[p].net.valid()) {
        m.connectPin(c, p, m.constNet(value));
        done = true;
        return;
      }
    }
  });
  return done;
}

/// Renames the first net whose driver and sinks are all cell pins, by
/// re-homing every terminal onto a fresh net.
bool renameFirstNet(nl::Module& m) {
  nl::NetId target;
  m.forEachNet([&](nl::NetId id) {
    if (target.valid()) return;
    const nl::Net& n = m.net(id);
    if (!n.driver.isCellPin() || n.sinks.empty()) return;
    for (const nl::TermRef& s : n.sinks) {
      if (!s.isCellPin()) return;
    }
    target = id;
  });
  if (!target.valid()) return false;
  const nl::NetId fresh =
      m.addNet(std::string(m.netName(target)) + "_renamed");
  const nl::TermRef driver = m.net(target).driver;
  m.connectPin(driver.cell(), driver.pin, fresh);
  m.redistributeSinks(target,
                      std::vector<nl::NetId>(m.net(target).sinks.size(),
                                             fresh));
  m.removeNet(target);
  return true;
}

/// The design's single ECO slot file inside `dir` ("eco-<module>.tbl").
fs::path slotPath(const fs::path& dir) {
  for (const fs::directory_entry& e : fs::directory_iterator(dir)) {
    const std::string name = e.path().filename().string();
    if (name.rfind("eco-", 0) == 0) return e.path();
  }
  return {};
}

bool anyNoteContains(const core::FlowReport& flow, const std::string& what) {
  for (const std::string& n : flow.notes()) {
    if (n.find(what) != std::string::npos) return true;
  }
  return false;
}

}  // namespace

// --- lifecycle ------------------------------------------------------------

TEST(Eco, FirstRunIsColdAndStoresTheSlot) {
  const fs::path dir = scratchDir("first_cold");
  const FlowOutput run = runPipe2(ecoOptions(dir.string()));

  const core::FlowReport::EcoSection& eco = run.result.flow.eco();
  EXPECT_TRUE(eco.ran);
  EXPECT_FALSE(eco.warm);
  EXPECT_EQ(eco.regions_restored, 0);
  EXPECT_EQ(eco.registers_restored, 0);
  EXPECT_FALSE(slotPath(dir).empty())
      << "cold --eco run must store the region-table slot";

  // A cold --eco run must not change output vs the plain flow.
  const FlowOutput plain = runPipe2(ecoOptions(""));
  EXPECT_EQ(run.verilog, plain.verilog);
  EXPECT_EQ(run.sdc, plain.sdc);
}

TEST(Eco, UneditedWarmRerunRestoresEverything) {
  const fs::path dir = scratchDir("warm_unedited");
  const FlowOutput cold = runPipe2(ecoOptions(dir.string()));
  const FlowOutput warm = runPipe2(ecoOptions(dir.string()));

  EXPECT_EQ(warm.verilog, cold.verilog);
  EXPECT_EQ(warm.sdc, cold.sdc);
  const core::FlowReport::EcoSection& eco = warm.result.flow.eco();
  EXPECT_TRUE(eco.warm);
  EXPECT_EQ(eco.cells_changed, 0);
  EXPECT_EQ(eco.nets_changed, 0);
  EXPECT_EQ(eco.dirty_endpoints, 0);
  EXPECT_EQ(eco.regions_dirty, 0);
  EXPECT_GT(eco.regions_total, 0);
  EXPECT_EQ(eco.regions_restored, eco.regions_total);
  EXPECT_GT(eco.endpoints_restored, 0);
}

// --- key invalidation per edit kind ---------------------------------------

TEST(Eco, SingleCellEditDirtiesOnlyItsClosureAndMatchesCold) {
  const fs::path dir = scratchDir("cell_edit");
  runPipe2(ecoOptions(dir.string()));  // prime on the pristine design

  const auto edit = [](nl::Module& m) { ASSERT_TRUE(insertInverter(m)); };
  const FlowOutput cold = runPipe2(ecoOptions(""), edit);
  const FlowOutput warm = runPipe2(ecoOptions(dir.string()), edit);

  EXPECT_EQ(warm.verilog, cold.verilog);
  EXPECT_EQ(warm.sdc, cold.sdc);
  const core::FlowReport::EcoSection& eco = warm.result.flow.eco();
  EXPECT_TRUE(eco.warm);
  EXPECT_GT(eco.cells_changed, 0);
  EXPECT_GT(eco.dirty_endpoints, 0);
  // The edit sits in one register's input cone: most endpoints stay clean.
  EXPECT_GT(eco.endpoints_restored, 0);
}

TEST(Eco, ConstantTieEditMatchesCold) {
  const fs::path dir = scratchDir("const_tie");
  runPipe2(ecoOptions(dir.string()));

  const auto edit = [](nl::Module& m) {
    ASSERT_TRUE(tieFirstCombInput(m, true));
  };
  const FlowOutput cold = runPipe2(ecoOptions(""), edit);
  const FlowOutput warm = runPipe2(ecoOptions(dir.string()), edit);

  EXPECT_EQ(warm.verilog, cold.verilog);
  EXPECT_EQ(warm.sdc, cold.sdc);
  EXPECT_TRUE(warm.result.flow.eco().warm);
  EXPECT_GT(warm.result.flow.eco().dirty_endpoints, 0);
}

TEST(Eco, NetRenameEditMatchesCold) {
  const fs::path dir = scratchDir("net_rename");
  runPipe2(ecoOptions(dir.string()));

  const auto edit = [](nl::Module& m) { ASSERT_TRUE(renameFirstNet(m)); };
  const FlowOutput cold = runPipe2(ecoOptions(""), edit);
  const FlowOutput warm = runPipe2(ecoOptions(dir.string()), edit);

  EXPECT_EQ(warm.verilog, cold.verilog);
  EXPECT_EQ(warm.sdc, cold.sdc);
  EXPECT_TRUE(warm.result.flow.eco().warm);
  // The rename changes the net's own record plus the records of every
  // cell whose pin list names the net.
  EXPECT_GT(warm.result.flow.eco().nets_changed, 0);
  EXPECT_GT(warm.result.flow.eco().cells_changed, 0);
}

// --- degradation paths: cold, never wrong ---------------------------------

TEST(Eco, CorruptSlotFallsBackToColdThenRecovers) {
  const fs::path dir = scratchDir("corrupt");
  const FlowOutput cold = runPipe2(ecoOptions(dir.string()));

  const fs::path slot = slotPath(dir);
  ASSERT_FALSE(slot.empty());
  {
    std::fstream f(slot, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(fs::file_size(slot) / 2));
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(-1, std::ios::cur);
    byte = static_cast<char>(byte ^ 0x5a);
    f.write(&byte, 1);
  }

  const FlowOutput damaged = runPipe2(ecoOptions(dir.string()));
  EXPECT_FALSE(damaged.result.flow.eco().warm);
  EXPECT_TRUE(anyNoteContains(damaged.result.flow, "eco:"));
  EXPECT_EQ(damaged.verilog, cold.verilog);
  EXPECT_EQ(damaged.sdc, cold.sdc);

  // The damaged run rewrote the slot: the next run is warm again.
  const FlowOutput recovered = runPipe2(ecoOptions(dir.string()));
  EXPECT_TRUE(recovered.result.flow.eco().warm);
  EXPECT_EQ(recovered.verilog, cold.verilog);
}

TEST(Eco, TruncatedSlotFallsBackToCold) {
  const fs::path dir = scratchDir("truncated");
  const FlowOutput cold = runPipe2(ecoOptions(dir.string()));

  const fs::path slot = slotPath(dir);
  ASSERT_FALSE(slot.empty());
  fs::resize_file(slot, 10);

  const FlowOutput damaged = runPipe2(ecoOptions(dir.string()));
  EXPECT_FALSE(damaged.result.flow.eco().warm);
  EXPECT_TRUE(anyNoteContains(damaged.result.flow, "eco:"));
  EXPECT_EQ(damaged.verilog, cold.verilog);
  EXPECT_EQ(damaged.sdc, cold.sdc);
}

TEST(Eco, GuardKeyMismatchFallsBackToCold) {
  const fs::path dir = scratchDir("guard");
  runPipe2(ecoOptions(dir.string()));  // primed with fe.mode = sim-off

  core::DesyncOptions opt = ecoOptions(dir.string());
  opt.fe.mode = core::FeMode::kProve;  // guard covers the FE mode
  const FlowOutput mismatched = runPipe2(opt);
  EXPECT_FALSE(mismatched.result.flow.eco().warm);
  EXPECT_TRUE(anyNoteContains(mismatched.result.flow,
                              "different flow configuration"));

  core::DesyncOptions plain = ecoOptions("");
  plain.fe.mode = core::FeMode::kProve;
  const FlowOutput reference = runPipe2(plain);
  EXPECT_EQ(mismatched.verilog, reference.verilog);
  EXPECT_EQ(mismatched.sdc, reference.sdc);
}

TEST(Eco, ForeignDesignSlotIsIgnored) {
  const fs::path dir = scratchDir("foreign");
  // Prime with a different module under the same cache directory, then
  // overwrite its slot name with pipe2's: the stored module name mismatch
  // must be detected.
  runPipe2(ecoOptions(dir.string()));
  const fs::path slot = slotPath(dir);
  ASSERT_FALSE(slot.empty());

  nl::Design other;
  designs::buildPipe2(other, gf(), 4, "pipe2b");
  nl::Module& om = *other.findModule("pipe2b");
  core::desynchronize(other, om, gf(), ecoOptions(dir.string()));
  const fs::path other_slot = dir / "eco-pipe2b.tbl";
  ASSERT_TRUE(fs::exists(other_slot));
  fs::copy_file(other_slot, slot, fs::copy_options::overwrite_existing);

  const FlowOutput run = runPipe2(ecoOptions(dir.string()));
  EXPECT_FALSE(run.result.flow.eco().warm);
  EXPECT_TRUE(anyNoteContains(run.result.flow, "belong to design"));
}

TEST(Eco, ResumeIsIgnoredWithANote) {
  const fs::path dir = scratchDir("resume");
  core::DesyncOptions opt = ecoOptions(dir.string());
  opt.flowdb.resume = true;
  const FlowOutput run = runPipe2(opt);
  EXPECT_TRUE(run.result.flow.eco().ran);
  EXPECT_TRUE(anyNoteContains(run.result.flow,
                              "--resume is ignored in --eco mode"));
}

// --- jobs-independence and the CPU case studies ---------------------------
// The instrumented TSan variant (DESYNC_ECO_TEST_LIGHT) keeps the pipe2
// closure tests above — which already exercise every restore query — and
// drops the minutes-long CPU flows.

#ifndef DESYNC_ECO_TEST_LIGHT

namespace {

/// Builds the CPU `config`, applies `edits` inverter insertions and
/// desynchronizes.
FlowOutput runCpu(const designs::CpuConfig& config,
                  const core::DesyncOptions& base, int edits) {
  nl::Design design;
  designs::buildCpu(design, gf(), config);
  nl::Module& m = *design.findModule(config.name);
  for (int i = 0; i < edits; ++i) {
    EXPECT_TRUE(insertInverter(m, i)) << "edit site " << i;
  }
  FlowOutput out;
  core::DesyncOptions opt = base;
  if (config.name != "dlx") opt.manual_seq_groups = {{""}};
  out.result = core::desynchronize(design, m, gf(), opt);
  out.verilog = nl::writeVerilog(design);
  out.sdc = out.result.sdc.toText();
  return out;
}

void expectEcoIdenticalAtJobs1And4(const designs::CpuConfig& config,
                                   const std::string& tag, int edits) {
  const fs::path dir = scratchDir(tag);
  const fs::path primed = scratchDir(tag + "_primed");
  fs::remove_all(primed);

  runCpu(config, ecoOptions(dir.string()), 0);  // prime on pristine
  fs::copy(dir, primed, fs::copy_options::recursive);

  const FlowOutput cold = runCpu(config, ecoOptions(""), edits);

  core::setThreadJobs(1);
  const FlowOutput warm1 = runCpu(config, ecoOptions(dir.string()), edits);
  fs::remove_all(dir);
  fs::copy(primed, dir, fs::copy_options::recursive);
  core::setThreadJobs(4);
  const FlowOutput warm4 = runCpu(config, ecoOptions(dir.string()), edits);
  core::setThreadJobs(0);

  EXPECT_EQ(warm1.verilog, cold.verilog);
  EXPECT_EQ(warm1.sdc, cold.sdc);
  EXPECT_EQ(warm4.verilog, cold.verilog);
  EXPECT_EQ(warm4.sdc, cold.sdc);
  EXPECT_TRUE(warm1.result.flow.eco().warm);
  EXPECT_TRUE(warm4.result.flow.eco().warm);
  EXPECT_GT(warm1.result.flow.eco().regions_restored, 0);
  EXPECT_EQ(warm1.result.flow.eco().regions_restored,
            warm4.result.flow.eco().regions_restored);
  EXPECT_EQ(warm1.result.flow.eco().dirty_endpoints,
            warm4.result.flow.eco().dirty_endpoints);
}

}  // namespace

TEST(EcoCpu, DlxEditedRunByteIdenticalToColdAtJobs1And4) {
  expectEcoIdenticalAtJobs1And4(designs::dlxConfig(), "dlx_jobs", 5);
}

TEST(EcoCpu, ArmClassEditedRunByteIdenticalToColdAtJobs1And4) {
  expectEcoIdenticalAtJobs1And4(designs::armClassConfig(), "arm_jobs", 5);
}

namespace {

/// Regions reached by the forward combinational cone of `start`:
/// regions of every flip-flop fed (transitively through comb cells) by
/// the net, per the primed run's partition keyed by register name.
std::set<int> regionsInCone(const nl::Module& m, nl::NetId start,
                            const std::map<std::string, int>& region_of_ff) {
  std::set<int> regions;
  std::set<std::uint32_t> seen_cells;
  std::vector<nl::NetId> work{start};
  while (!work.empty()) {
    const nl::NetId net = work.back();
    work.pop_back();
    for (const nl::TermRef& s : m.net(net).sinks) {
      if (!s.isCellPin() || !seen_cells.insert(s.index).second) continue;
      const nl::CellId c = s.cell();
      if (gf().isFlipFlop(m.cellType(c))) {
        const auto it = region_of_ff.find(std::string(m.cellName(c)));
        if (it != region_of_ff.end()) regions.insert(it->second);
        continue;  // registers end the combinational cone
      }
      if (gf().kind(m.cellType(c)) != lib::CellKind::kCombinational) continue;
      for (const nl::PinConn& p : m.cell(c).pins) {
        if (p.dir == nl::PortDir::kOutput && p.net.valid()) {
          work.push_back(p.net);
        }
      }
    }
  }
  return regions;
}

}  // namespace

TEST(EcoCpu, CrossRegionRippleClosesOverDownstreamRegions) {
  const designs::CpuConfig config = designs::dlxConfig();
  const fs::path dir = scratchDir("ripple");

  // Prime on the pristine design and keep its latch-region partition:
  // member latches are named "<ff>_Lm", mapping every original register
  // to its region.
  std::map<std::string, int> region_of_ff;
  {
    nl::Design design;
    designs::buildCpu(design, gf(), config);
    nl::Module& m = *design.findModule(config.name);
    const core::DesyncResult r =
        core::desynchronize(design, m, gf(), ecoOptions(dir.string()));
    constexpr std::string_view kSuffix = "_Lm";
    for (int g = 0; g < r.regions.n_groups; ++g) {
      for (nl::CellId c : r.regions.seq_cells[g]) {
        if (!m.isLiveCell(c)) continue;
        const std::string_view name = m.cellName(c);
        if (name.size() <= kSuffix.size() ||
            name.substr(name.size() - kSuffix.size()) != kSuffix) {
          continue;
        }
        region_of_ff.emplace(name.substr(0, name.size() - kSuffix.size()), g);
      }
    }
  }
  ASSERT_GT(region_of_ff.size(), 0u);

  // Pick (on a fresh pristine copy, by walking the comb fanout) a
  // comb-driven net whose cone provably reaches registers in at least
  // two regions; reroute all of its sinks through a fresh inverter.
  std::string target_name;
  {
    nl::Design design;
    designs::buildCpu(design, gf(), config);
    const nl::Module& m = *design.findModule(config.name);
    m.forEachNet([&](nl::NetId id) {
      if (!target_name.empty()) return;
      const nl::Net& n = m.net(id);
      if (!n.driver.isCellPin() || n.sinks.empty()) return;
      if (gf().kind(m.cellType(n.driver.cell())) !=
          lib::CellKind::kCombinational) {
        return;
      }
      for (const nl::TermRef& s : n.sinks) {
        if (!s.isCellPin()) return;
      }
      if (regionsInCone(m, id, region_of_ff).size() >= 2) {
        target_name = std::string(m.netName(id));
      }
    });
  }
  ASSERT_FALSE(target_name.empty())
      << "DLX must have a comb net whose cone spans two regions";

  // A buffer, not an inverter: region grouping strips buffers
  // (clean_logic), so the partition itself is unchanged and the two
  // regions stay distinct — the ECO diff still sees the edit and must
  // dirty both downstream cones.
  const auto edit = [&target_name](nl::Module& m) {
    const nl::NetId target = m.findNet(target_name);
    ASSERT_TRUE(target.valid());
    const nl::NetId out = m.addNet("eco_ripple_z");
    m.redistributeSinks(target,
                        std::vector<nl::NetId>(m.net(target).sinks.size(),
                                               out));
    m.addCell("eco_ripple_buf", "BF",
              {{"A", nl::PortDir::kInput, target},
               {"Z", nl::PortDir::kOutput, out}});
  };

  nl::Design cold_design;
  designs::buildCpu(cold_design, gf(), config);
  nl::Module& cold_m = *cold_design.findModule(config.name);
  edit(cold_m);
  core::DesyncResult cold_r =
      core::desynchronize(cold_design, cold_m, gf(), ecoOptions(""));

  nl::Design warm_design;
  designs::buildCpu(warm_design, gf(), config);
  nl::Module& warm_m = *warm_design.findModule(config.name);
  edit(warm_m);
  core::DesyncResult warm_r = core::desynchronize(warm_design, warm_m, gf(),
                                                  ecoOptions(dir.string()));

  EXPECT_EQ(nl::writeVerilog(warm_design), nl::writeVerilog(cold_design));
  EXPECT_EQ(warm_r.sdc.toText(), cold_r.sdc.toText());
  const core::FlowReport::EcoSection& eco = warm_r.flow.eco();
  EXPECT_TRUE(eco.warm);
  EXPECT_GE(eco.regions_dirty, 2) << "multi-fanout edit must ripple across "
                                     "region boundaries";
  EXPECT_GT(eco.regions_restored, 0) << "the rest of the design must still "
                                        "restore";
}

#endif  // DESYNC_ECO_TEST_LIGHT
