// FlowDB: snapshot round-trips, envelope validation, pass-cache
// correctness, checkpoint/resume and the determinism guarantee (restored
// state produces byte-identical Verilog/SDC output at any --jobs).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/desync.h"
#include "core/flow_cache.h"
#include "core/parallel.h"
#include "core/run_report.h"
#include "core/version.h"
#include "designs/cpu.h"
#include "designs/small.h"
#include "flowdb/cache.h"
#include "flowdb/io.h"
#include "flowdb/snapshot.h"
#include "liberty/stdlib90.h"
#include "netlist/verilog.h"

namespace core = desync::core;
namespace designs = desync::designs;
namespace flowdb = desync::flowdb;
namespace lib = desync::liberty;
namespace nl = desync::netlist;

namespace {

const lib::Gatefile& gf() {
  static const lib::Library l = lib::makeStdLib90(lib::LibVariant::kHighSpeed);
  static const lib::Gatefile g(l);
  return g;
}

flowdb::SnapshotMeta meta() {
  flowdb::SnapshotMeta m;
  m.tool_version = std::string(core::kToolVersion);
  m.library = gf().library().name;
  m.library_fingerprint = gf().library().contentHash();
  return m;
}

/// Fresh per-test scratch directory under the gtest temp root.
std::filesystem::path scratchDir(const std::string& name) {
  std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / ("flowdb_" + name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// Desynchronized pipe2: a design with tombstoned net/cell slots (removed
/// flip-flops and merged nets), helper modules and a reset port — the
/// hardest small case for slot-exact snapshotting.
void buildDesyncPipe2(nl::Design& design, core::DesyncOptions opt = {}) {
  designs::buildPipe2(design, gf(), 8);
  nl::Module& m = *design.findModule("pipe2");
  opt.control.reset_port = "rst_n";
  opt.control.reset_active_low = true;
  core::desynchronize(design, m, gf(), opt);
}

std::string corruptMessage(const std::string& bytes) {
  nl::Design d;
  try {
    flowdb::restoreDesign(d, bytes);
  } catch (const flowdb::SnapshotError& e) {
    return e.what();
  }
  return {};
}

struct FlowOutput {
  std::string verilog;
  std::string sdc;
  core::DesyncResult result;
};

/// Builds the CPU `config` fresh and desynchronizes it with `opt`.
FlowOutput runCpuFlow(const designs::CpuConfig& config,
                      const core::DesyncOptions& opt) {
  nl::Design design;
  designs::buildCpu(design, gf(), config);
  nl::Module& m = *design.findModule(config.name);
  FlowOutput out;
  out.result = core::desynchronize(design, m, gf(), opt);
  out.verilog = nl::writeVerilog(design);
  out.sdc = out.result.sdc.toText();
  return out;
}

core::DesyncOptions cpuOptions(const std::string& cache_dir = {},
                               bool resume = false) {
  core::DesyncOptions opt;
  opt.control.reset_port = "rst_n";
  opt.control.reset_active_low = true;
  opt.flowdb.cache_dir = cache_dir;
  opt.flowdb.resume = resume;
  return opt;
}

std::string passSource(const core::FlowReport& flow, const char* pass) {
  const core::PassStat* stat = flow.find(pass);
  return stat == nullptr ? std::string("<missing>") : stat->source;
}

}  // namespace

// --- snapshot round-trip --------------------------------------------------

TEST(Snapshot, RoundTripIsByteIdenticalOnDesynchronizedDesign) {
  nl::Design design;
  buildDesyncPipe2(design);
  const std::string bytes = flowdb::serializeDesign(design, meta());

  // Restore into a completely fresh design (empty name table, no modules):
  // NameIds are re-interned, yet both the Verilog text and the
  // re-serialized snapshot must be byte-identical.
  nl::Design restored;
  const flowdb::SnapshotMeta m = flowdb::restoreDesign(restored, bytes);
  EXPECT_EQ(m.tool_version, core::kToolVersion);
  EXPECT_EQ(m.library_fingerprint, gf().library().contentHash());
  EXPECT_EQ(nl::writeVerilog(restored), nl::writeVerilog(design));
  EXPECT_EQ(flowdb::serializeDesign(restored, meta()), bytes);
}

TEST(Snapshot, RestoreReplacesExistingModuleInPlace) {
  nl::Design design;
  buildDesyncPipe2(design);
  const std::string bytes = flowdb::serializeDesign(design, meta());
  const std::string reference = nl::writeVerilog(design);

  // A design already holding a (different) pipe2 gets overwritten
  // slot-exactly, and the Module object's identity is preserved.
  nl::Design other;
  designs::buildPipe2(other, gf(), 8);
  nl::Module* before = other.findModule("pipe2");
  flowdb::restoreDesign(other, bytes);
  EXPECT_EQ(other.findModule("pipe2"), before);
  EXPECT_EQ(nl::writeVerilog(other), reference);
}

TEST(Snapshot, PeekMetaReadsProvenanceWithoutMutation) {
  nl::Design design;
  designs::buildCounter(design, gf(), 4);
  const std::string bytes = flowdb::serializeDesign(design, meta());
  const flowdb::SnapshotMeta m = flowdb::peekSnapshotMeta(bytes);
  EXPECT_EQ(m.library, gf().library().name);
  EXPECT_EQ(m.tool_version, core::kToolVersion);
}

// --- envelope validation --------------------------------------------------

TEST(Snapshot, TruncatedFileIsRejectedWithDiagnostic) {
  nl::Design design;
  designs::buildCounter(design, gf(), 4);
  const std::string bytes = flowdb::serializeDesign(design, meta());

  // Any truncation point — inside the header, the payload or the trailing
  // checksum — must produce a "truncated" diagnostic, never garbage.
  for (std::size_t keep : {std::size_t{0}, std::size_t{7}, std::size_t{15},
                           bytes.size() / 2, bytes.size() - 1}) {
    const std::string msg = corruptMessage(bytes.substr(0, keep));
    EXPECT_NE(msg.find("truncated"), std::string::npos)
        << "keep=" << keep << " msg=" << msg;
  }
}

TEST(Snapshot, FlippedByteIsRejectedAsCorruption) {
  nl::Design design;
  designs::buildCounter(design, gf(), 4);
  std::string bytes = flowdb::serializeDesign(design, meta());
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
  const std::string msg = corruptMessage(bytes);
  EXPECT_NE(msg.find("checksum mismatch"), std::string::npos) << msg;
}

TEST(Snapshot, FlippedChecksumByteIsRejectedAsCorruption) {
  nl::Design design;
  designs::buildCounter(design, gf(), 4);
  std::string bytes = flowdb::serializeDesign(design, meta());
  bytes.back() = static_cast<char>(bytes.back() ^ 0x01);
  const std::string msg = corruptMessage(bytes);
  EXPECT_NE(msg.find("checksum mismatch"), std::string::npos) << msg;
}

TEST(Snapshot, WrongFormatVersionIsRejectedWithDiagnostic) {
  nl::Design design;
  designs::buildCounter(design, gf(), 4);
  std::string bytes = flowdb::serializeDesign(design, meta());
  // The version word sits right after the 8-byte magic (little-endian).
  bytes[flowdb::kMagicSize] = static_cast<char>(99);
  const std::string msg = corruptMessage(bytes);
  EXPECT_NE(msg.find("unsupported format version 99"), std::string::npos)
      << msg;
}

TEST(Snapshot, ForeignMagicIsRejectedWithDiagnostic) {
  nl::Design design;
  designs::buildCounter(design, gf(), 4);
  std::string bytes = flowdb::serializeDesign(design, meta());
  bytes.replace(0, flowdb::kMagicSize, "NOTASNAP");
  const std::string msg = corruptMessage(bytes);
  EXPECT_NE(msg.find("bad magic"), std::string::npos) << msg;
}

// --- result codec ---------------------------------------------------------

TEST(FlowCache, ResultCodecRoundTripsEveryField) {
  nl::Design design;
  designs::buildPipe2(design, gf(), 8);
  nl::Module& m = *design.findModule("pipe2");
  core::DesyncOptions opt;
  opt.control.reset_port = "rst_n";
  opt.control.reset_active_low = true;
  core::DesyncResult result = core::desynchronize(design, m, gf(), opt);

  core::DesyncResult decoded;
  core::decodeResult(core::encodeResult(result), decoded);
  EXPECT_EQ(decoded.regions.n_groups, result.regions.n_groups);
  EXPECT_EQ(decoded.regions.group_of_cell, result.regions.group_of_cell);
  EXPECT_EQ(decoded.ddg.preds, result.ddg.preds);
  EXPECT_EQ(decoded.ddg.succs, result.ddg.succs);
  EXPECT_EQ(decoded.substitution.ffs_replaced,
            result.substitution.ffs_replaced);
  EXPECT_EQ(decoded.timing.per_level_delay_ns,
            result.timing.per_level_delay_ns);
  EXPECT_EQ(decoded.timing.required_delay_ns,
            result.timing.required_delay_ns);
  EXPECT_EQ(decoded.control.regions.size(), result.control.regions.size());
  EXPECT_EQ(decoded.control.size_only_cells, result.control.size_only_cells);
  EXPECT_EQ(decoded.sdc.toText(), result.sdc.toText());
  EXPECT_EQ(decoded.sync_min_period_ns, result.sync_min_period_ns);
  ASSERT_EQ(decoded.corner_periods.size(), result.corner_periods.size());
  for (std::size_t i = 0; i < decoded.corner_periods.size(); ++i) {
    EXPECT_EQ(decoded.corner_periods[i].corner,
              result.corner_periods[i].corner);
    EXPECT_EQ(decoded.corner_periods[i].min_period_ns,
              result.corner_periods[i].min_period_ns);
  }
}

// --- pass cache: warm == cold, byte for byte ------------------------------

TEST(FlowCache, WarmRunIsByteIdenticalToColdOnDlx) {
  const auto dir = scratchDir("dlx_warm");
  const designs::CpuConfig config = designs::dlxConfig();

  const FlowOutput plain = runCpuFlow(config, cpuOptions());
  const FlowOutput cold = runCpuFlow(config, cpuOptions(dir.string()));
  const FlowOutput warm = runCpuFlow(config, cpuOptions(dir.string()));

  // Caching must never alter output: cold-with-cache == no-cache, and the
  // warm (fully restored) run reproduces both byte-for-byte.
  EXPECT_EQ(cold.verilog, plain.verilog);
  EXPECT_EQ(cold.sdc, plain.sdc);
  EXPECT_EQ(warm.verilog, plain.verilog);
  EXPECT_EQ(warm.sdc, plain.sdc);

  const core::FlowCacheStats& cold_stats = cold.result.flow.cacheStats();
  EXPECT_TRUE(cold_stats.enabled);
  EXPECT_EQ(cold_stats.hits, 0u);
  EXPECT_EQ(cold_stats.misses, 7u);
  EXPECT_GT(cold_stats.bytes_written, 0u);

  const core::FlowCacheStats& warm_stats = warm.result.flow.cacheStats();
  EXPECT_EQ(warm_stats.hits, 7u);
  EXPECT_EQ(warm_stats.misses, 0u);
  EXPECT_GT(warm_stats.bytes_read, 0u);
  EXPECT_EQ(warm_stats.bytes_written, 0u);
  for (const core::PassStat& p : warm.result.flow.passes()) {
    EXPECT_EQ(p.source, "cache") << p.name;
  }
}

TEST(FlowCache, WarmRunIsByteIdenticalToColdOnArmClass) {
  const auto dir = scratchDir("arm_warm");
  const designs::CpuConfig config = designs::armClassConfig();

  const FlowOutput cold = runCpuFlow(config, cpuOptions(dir.string()));
  const FlowOutput warm = runCpuFlow(config, cpuOptions(dir.string()));
  EXPECT_EQ(warm.verilog, cold.verilog);
  EXPECT_EQ(warm.sdc, cold.sdc);
  EXPECT_EQ(warm.result.flow.cacheStats().hits, 7u);
}

TEST(FlowCache, RestoredStateIsIdenticalAcrossJobsSettings) {
  const auto dir = scratchDir("dlx_jobs");
  const designs::CpuConfig config = designs::dlxConfig();

  // Cold at --jobs 1, warm at --jobs 8, warm again at auto: --jobs is not
  // part of any cache key and must not change a single output byte.
  core::setThreadJobs(1);
  const FlowOutput cold = runCpuFlow(config, cpuOptions(dir.string()));
  core::setThreadJobs(8);
  const FlowOutput warm8 = runCpuFlow(config, cpuOptions(dir.string()));
  core::setThreadJobs(0);
  const FlowOutput warm_auto = runCpuFlow(config, cpuOptions(dir.string()));

  EXPECT_EQ(warm8.result.flow.cacheStats().hits, 7u);
  EXPECT_EQ(warm_auto.result.flow.cacheStats().hits, 7u);
  EXPECT_EQ(warm8.verilog, cold.verilog);
  EXPECT_EQ(warm_auto.verilog, cold.verilog);
  EXPECT_EQ(warm8.sdc, cold.sdc);
  EXPECT_EQ(warm_auto.sdc, cold.sdc);
}

TEST(FlowCache, PostSubstitutionKnobChangeReusesTimingPass) {
  const auto dir = scratchDir("dlx_margin");
  const designs::CpuConfig config = designs::dlxConfig();

  (void)runCpuFlow(config, cpuOptions(dir.string()));
  core::DesyncOptions changed = cpuOptions(dir.string());
  changed.control.margin = 1.25;
  const FlowOutput warm = runCpuFlow(config, changed);

  // The STA-heavy passes restore from cache; only the cheap construction
  // and SDC generation recompute under the new margin.
  EXPECT_EQ(passSource(warm.result.flow, "reference_sta"), "cache");
  EXPECT_EQ(passSource(warm.result.flow, "region_timing"), "cache");
  EXPECT_EQ(passSource(warm.result.flow, "control_network"), "computed");
  EXPECT_EQ(passSource(warm.result.flow, "sdc_generation"), "computed");

  // And the changed run matches a cold run at the same margin exactly.
  core::DesyncOptions reference = cpuOptions();
  reference.control.margin = 1.25;
  const FlowOutput plain = runCpuFlow(config, reference);
  EXPECT_EQ(warm.verilog, plain.verilog);
  EXPECT_EQ(warm.sdc, plain.sdc);
}

// --- corruption falls back to recomputing --------------------------------

TEST(FlowCache, CorruptEntriesFallBackToColdRunWithDiagnostics) {
  const auto dir = scratchDir("dlx_corrupt");
  const designs::CpuConfig config = designs::dlxConfig();

  const FlowOutput cold = runCpuFlow(config, cpuOptions(dir.string()));
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    if (e.path().extension() != ".entry") continue;
    std::fstream f(e.path(), std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(100);
    f.put(static_cast<char>(0xab));
  }

  const FlowOutput fallback = runCpuFlow(config, cpuOptions(dir.string()));
  EXPECT_EQ(fallback.verilog, cold.verilog);
  EXPECT_EQ(fallback.sdc, cold.sdc);
  EXPECT_EQ(fallback.result.flow.cacheStats().hits, 0u);
  EXPECT_EQ(fallback.result.flow.cacheStats().misses, 7u);
  EXPECT_FALSE(fallback.result.flow.notes().empty());
  for (const core::PassStat& p : fallback.result.flow.passes()) {
    EXPECT_EQ(p.source, "computed") << p.name;
  }

  // The fallback re-stored valid entries: the next run is warm again.
  const FlowOutput rewarm = runCpuFlow(config, cpuOptions(dir.string()));
  EXPECT_EQ(rewarm.result.flow.cacheStats().hits, 7u);
  EXPECT_EQ(rewarm.verilog, cold.verilog);
}

// --- failure reporting and checkpoint/resume ------------------------------

TEST(FlowCache, PassFailureRaisesFlowErrorWithPartialReport) {
  nl::Design design;
  designs::buildCpu(design, gf(), designs::dlxConfig());
  nl::Module& m = *design.findModule("dlx");
  core::DesyncOptions opt;
  opt.control.reset_port = "no_such_port";
  try {
    core::desynchronize(design, m, gf(), opt);
    FAIL() << "expected FlowError";
  } catch (const core::FlowError& e) {
    EXPECT_EQ(e.pass(), "control_network");
    EXPECT_NE(std::string(e.what()).find("no_such_port"), std::string::npos);
    // The report covers every pass up to and including the failing one.
    ASSERT_EQ(e.flow().passes().size(), 6u);
    EXPECT_EQ(e.flow().passes().back().name, "control_network");
    EXPECT_NE(e.flow().find("region_timing"), nullptr);
  }
}

TEST(FlowCache, ErrorReportJsonCarriesFailureAndPartialFlow) {
  nl::Design design;
  designs::buildCpu(design, gf(), designs::dlxConfig());
  nl::Module& m = *design.findModule("dlx");
  core::DesyncOptions opt;
  opt.control.reset_port = "no_such_port";
  try {
    core::desynchronize(design, m, gf(), opt);
    FAIL() << "expected FlowError";
  } catch (const core::FlowError& e) {
    core::RunInfo info;
    info.input = "dlx.v";
    info.cells_in = 42;
    const std::string json =
        core::errorReportJson(info, e.what(), e.pass(), e.flow());
    // The partial report names the failure and still lists every pass that
    // ran, stamped with the same identities that enter cache keys.
    EXPECT_NE(json.find("\"error\""), std::string::npos);
    EXPECT_NE(json.find("no_such_port"), std::string::npos);
    EXPECT_NE(json.find("\"failed_pass\": \"control_network\""),
              std::string::npos);
    EXPECT_NE(json.find(core::kToolVersion), std::string::npos);
    EXPECT_NE(json.find("\"snapshot_format_version\""), std::string::npos);
    EXPECT_NE(json.find("\"reference_sta\""), std::string::npos);
    EXPECT_NE(json.find("\"region_timing\""), std::string::npos);
  }
}

TEST(FlowCache, ResumeRestartsFromLastValidCheckpoint) {
  const auto dir = scratchDir("dlx_resume");
  const designs::CpuConfig config = designs::dlxConfig();

  // First run fails in control_network; the checkpoint then holds the
  // region_timing state (the last completed pass).
  core::DesyncOptions broken = cpuOptions(dir.string());
  broken.control.reset_port = "no_such_port";
  broken.control.reset_active_low = false;
  EXPECT_THROW(runCpuFlow(config, broken), core::FlowError);

  // Wipe the per-pass entries, keeping only the checkpoint slot: --resume
  // must restore from it even when the cache proper cannot answer.
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    if (e.path().extension() == ".entry") std::filesystem::remove(e.path());
  }

  const FlowOutput resumed =
      runCpuFlow(config, cpuOptions(dir.string(), /*resume=*/true));
  EXPECT_EQ(passSource(resumed.result.flow, "region_timing"), "checkpoint");
  EXPECT_EQ(passSource(resumed.result.flow, "control_network"), "computed");

  const FlowOutput plain = runCpuFlow(config, cpuOptions());
  EXPECT_EQ(resumed.verilog, plain.verilog);
  EXPECT_EQ(resumed.sdc, plain.sdc);
}

TEST(FlowCache, ResumeWithoutCheckpointNotesAndRunsCold) {
  const auto dir = scratchDir("dlx_resume_empty");
  const FlowOutput out =
      runCpuFlow(designs::dlxConfig(), cpuOptions(dir.string(), true));
  EXPECT_EQ(out.result.flow.cacheStats().misses, 7u);
  bool noted = false;
  for (const std::string& n : out.result.flow.notes()) {
    if (n.find("no valid checkpoint") != std::string::npos) noted = true;
  }
  EXPECT_TRUE(noted);
}

// --- PassCache unit behaviour --------------------------------------------

TEST(PassCache, StoreLoadRoundTripAndMissAccounting) {
  const auto dir = scratchDir("unit");
  flowdb::PassCache cache(dir.string());
  const flowdb::CacheKey key{0x0123456789abcdefULL, 0xfedcba9876543210ULL};

  EXPECT_FALSE(cache.load(key).has_value());
  EXPECT_TRUE(cache.store(key, "payload-bytes"));
  const auto loaded = cache.load(key);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, "payload-bytes");
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().bytes_written, 13u);
  EXPECT_EQ(cache.stats().bytes_read, 13u);

  // No temp files left behind by the atomic writes.
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    EXPECT_NE(e.path().filename().string().find(key.hex()),
              std::string::npos);
  }
}

TEST(PassCache, ForeignPayloadUnderTheWrongNameIsRejected) {
  const auto dir = scratchDir("keybind");
  flowdb::PassCache cache(dir.string());
  const flowdb::CacheKey key_a{1, 2};
  const flowdb::CacheKey key_b{3, 4};
  ASSERT_TRUE(cache.store(key_a, "payload-for-a"));

  // A validly-sealed entry sitting under another key's file name — what a
  // copied file or a temp-file write confusion between concurrent
  // sessions would produce.  The envelope checksum passes, so only the
  // embedded key can catch it: the load must miss, not restore A's
  // payload into B's flow.
  std::filesystem::copy_file(dir / (key_a.hex() + ".entry"),
                             dir / (key_b.hex() + ".entry"));
  std::string diag;
  EXPECT_FALSE(cache.load(key_b, &diag).has_value());
  EXPECT_NE(diag.find("key mismatch"), std::string::npos) << diag;
  EXPECT_NE(diag.find(key_a.hex()), std::string::npos) << diag;
  EXPECT_EQ(cache.stats().invalid, 1u);

  // The honest entry is unaffected.
  const auto loaded = cache.load(key_a);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, "payload-for-a");
}

TEST(PassCache, ConcurrentInstancesOnOneDirectoryKeepEntriesDistinct) {
  const auto dir = scratchDir("concurrent");
  // Regression: temp names used to be unique only per PassCache instance
  // (".tmp.<pid>.<n>" with a per-instance counter), so concurrent
  // sessions on one directory collided on the same temp file and could
  // publish one writer's payload under another writer's key.  Hammer the
  // directory from several instances at once and require every key to
  // read back exactly its own payload.
  constexpr int kThreads = 4;
  constexpr int kKeysPerThread = 64;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&dir, t] {
      flowdb::PassCache cache(dir.string());
      for (int k = 0; k < kKeysPerThread; ++k) {
        const flowdb::CacheKey key{static_cast<std::uint64_t>(t),
                                   static_cast<std::uint64_t>(k)};
        const std::string payload =
            "payload-" + std::to_string(t) + "-" + std::to_string(k);
        ASSERT_TRUE(cache.store(key, payload));
        const auto loaded = cache.load(key);
        ASSERT_TRUE(loaded.has_value());
        ASSERT_EQ(*loaded, payload);
      }
    });
  }
  for (std::thread& w : writers) w.join();
  flowdb::PassCache reader(dir.string());
  for (int t = 0; t < kThreads; ++t) {
    for (int k = 0; k < kKeysPerThread; ++k) {
      const flowdb::CacheKey key{static_cast<std::uint64_t>(t),
                                 static_cast<std::uint64_t>(k)};
      const auto loaded = reader.load(key);
      ASSERT_TRUE(loaded.has_value());
      EXPECT_EQ(*loaded,
                "payload-" + std::to_string(t) + "-" + std::to_string(k));
    }
  }
}

TEST(PassCache, CheckpointSlotRoundTrip) {
  const auto dir = scratchDir("ckpt");
  flowdb::PassCache cache(dir.string());
  EXPECT_FALSE(cache.loadCheckpoint().has_value());

  const flowdb::CacheKey key{42, 1337};
  EXPECT_TRUE(cache.storeCheckpoint(4, "region_timing", key, "entry-bytes"));
  const auto ck = cache.loadCheckpoint();
  ASSERT_TRUE(ck.has_value());
  EXPECT_EQ(ck->pass_index, 4u);
  EXPECT_EQ(ck->pass_name, "region_timing");
  EXPECT_EQ(ck->key, key);
  EXPECT_EQ(ck->entry, "entry-bytes");
}

// --- named slots (the ECO region tables live in one per design) -----------

TEST(PassCache, NamedSlotRoundTripAndOverwrite) {
  const auto dir = scratchDir("slot_rt");
  flowdb::PassCache cache(dir.string());
  EXPECT_FALSE(cache.loadSlot("eco-dlx.tbl", "DSYNCECO").has_value());

  EXPECT_TRUE(cache.storeSlot("eco-dlx.tbl", "DSYNCECO", "tables-v1"));
  auto got = cache.loadSlot("eco-dlx.tbl", "DSYNCECO");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "tables-v1");

  // storeSlot overwrites atomically; the reread sees only the new bytes.
  EXPECT_TRUE(cache.storeSlot("eco-dlx.tbl", "DSYNCECO", "tables-v2"));
  got = cache.loadSlot("eco-dlx.tbl", "DSYNCECO");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "tables-v2");
}

TEST(PassCache, TruncatedNamedSlotIsDiagnosedAsCorruptionNotVersion) {
  const auto dir = scratchDir("slot_trunc");
  flowdb::PassCache cache(dir.string());
  ASSERT_TRUE(cache.storeSlot("eco-dlx.tbl", "DSYNCECO",
                              std::string(256, 'x')));
  std::filesystem::resize_file(dir / "eco-dlx.tbl", 20);

  std::string diag;
  EXPECT_FALSE(cache.loadSlot("eco-dlx.tbl", "DSYNCECO", &diag).has_value());
  EXPECT_NE(diag.find("truncated"), std::string::npos) << diag;
  EXPECT_EQ(cache.stats().invalid, 1u);
  EXPECT_EQ(cache.stats().version_rejected, 0u);
}

TEST(PassCache, ForeignMagicNamedSlotIsRejected) {
  const auto dir = scratchDir("slot_magic");
  flowdb::PassCache cache(dir.string());
  ASSERT_TRUE(cache.storeSlot("eco-dlx.tbl", "DSYNCSNP", "not eco tables"));

  std::string diag;
  EXPECT_FALSE(cache.loadSlot("eco-dlx.tbl", "DSYNCECO", &diag).has_value());
  EXPECT_NE(diag.find("magic"), std::string::npos) << diag;
  EXPECT_EQ(cache.stats().version_rejected, 0u);
}

TEST(PassCache, NamedSlotFromAnotherFormatVersionIsRejectedDistinctly) {
  const auto dir = scratchDir("slot_version");
  flowdb::PassCache cache(dir.string());

  // Hand-seal an intact envelope claiming format version 2: a cache
  // directory revisited by an older build.  The reject must be counted as
  // version_rejected, not plain corruption.
  {
    const std::string sealed =
        flowdb::sealEnvelope("DSYNCECO", 2, "old-format tables");
    std::ofstream f(dir / "eco-dlx.tbl", std::ios::binary);
    f.write(sealed.data(), static_cast<std::streamsize>(sealed.size()));
  }

  std::string diag;
  EXPECT_FALSE(cache.loadSlot("eco-dlx.tbl", "DSYNCECO", &diag).has_value());
  EXPECT_NE(diag.find("version"), std::string::npos) << diag;
  EXPECT_EQ(cache.stats().version_rejected, 1u);
  EXPECT_EQ(cache.stats().invalid, 1u);
}

// --- Verilog writer/reader round-trip stability ---------------------------

// The in-memory generated designs carry escaped bus-bit port names
// (`\\acc[0] `) and output-port aliases that the reader canonicalizes
// (sanitized identifiers, folded assigns).  The first write->read->write
// trip therefore canonicalizes; the canonical text must then be a strict
// fixpoint of the round trip: read it back, write it again, byte-identical.
namespace {

std::string roundTrip(const std::string& text, std::string_view top) {
  nl::Design d;
  nl::readVerilog(d, text, gf());
  return nl::writeVerilog(*d.findModule(top));
}

}  // namespace

TEST(VerilogRoundTrip, DesynchronizedDlxTopReachesFixpointAfterOneTrip) {
  nl::Design design;
  designs::buildCpu(design, gf(), designs::dlxConfig());
  nl::Module& m = *design.findModule("dlx");
  core::DesyncOptions opt;
  opt.control.reset_port = "rst_n";
  opt.control.reset_active_low = true;
  core::desynchronize(design, m, gf(), opt);

  // Round-trip the flattened top module: after desynchronization it still
  // instantiates the generated controller/delay helper modules, which the
  // reader keeps as opaque instance types.
  const std::string v1 = nl::writeVerilog(m);
  const std::string v2 = roundTrip(v1, "dlx");
  const std::string v3 = roundTrip(v2, "dlx");
  EXPECT_EQ(v2, v3);
  // The desynchronized top must survive the trip structurally: same
  // cell/net counts on re-read.
  nl::Design d2;
  nl::readVerilog(d2, v2, gf());
  EXPECT_EQ(d2.findModule("dlx")->numCells(), m.numCells());
}

TEST(VerilogRoundTrip, SynchronousCpuReachesFixpointAfterOneTrip) {
  nl::Design design;
  designs::buildCpu(design, gf(), designs::dlxConfig());
  const std::string v1 = nl::writeVerilog(*design.findModule("dlx"));
  const std::string v2 = roundTrip(v1, "dlx");
  const std::string v3 = roundTrip(v2, "dlx");
  EXPECT_EQ(v2, v3);
  const std::string v4 = roundTrip(v3, "dlx");
  EXPECT_EQ(v3, v4);
}
