// Tests for the STA engine (levelization, unateness, loop breaking,
// endpoint queries) and the SDC reader/writer.
#include <gtest/gtest.h>

#include "async/controllers.h"
#include "async/delay_element.h"
#include "liberty/stdlib90.h"
#include "netlist/flatten.h"
#include "netlist/verilog.h"
#include "sta/sdc.h"
#include "sta/sta.h"

namespace nl = desync::netlist;
namespace lib = desync::liberty;
namespace sta = desync::sta;
namespace async = desync::async;

namespace {

const lib::Gatefile& gf() {
  static const lib::Library l = lib::makeStdLib90(lib::LibVariant::kHighSpeed);
  static const lib::Gatefile g(l);
  return g;
}

nl::Design parse(const char* src) {
  nl::Design d;
  nl::readVerilog(d, src, gf());
  return d;
}

TEST(Sta, ChainDelayAddsUp) {
  nl::Design d = parse(R"(
    module top (a, z);
      input a; output z;
      wire t1, t2;
      IV i1 (.A(a), .Z(t1));
      IV i2 (.A(t1), .Z(t2));
      IV i3 (.A(t2), .Z(z));
    endmodule
  )");
  sta::Sta sta1(d.top(), gf());
  double three = sta1.criticalPathNs();
  EXPECT_GT(three, 0.03);  // 3 inverters, >= 3x intrinsic
  EXPECT_LT(three, 0.5);

  // One more inverter strictly increases the critical path.
  nl::Design d4 = parse(R"(
    module top (a, z);
      input a; output z;
      wire t1, t2, t3;
      IV i1 (.A(a), .Z(t1));
      IV i2 (.A(t1), .Z(t2));
      IV i3 (.A(t2), .Z(t3));
      IV i4 (.A(t3), .Z(z));
    endmodule
  )");
  sta::Sta sta2(d4.top(), gf());
  EXPECT_GT(sta2.criticalPathNs(), three);
}

TEST(Sta, DelayScaleMultiplies) {
  nl::Design d = parse(R"(
    module top (a, z);
      input a; output z;
      IV i1 (.A(a), .Z(z));
    endmodule
  )");
  sta::Sta nominal(d.top(), gf());
  sta::StaOptions slow;
  slow.delay_scale = 1.3;
  sta::Sta scaled(d.top(), gf(), slow);
  EXPECT_NEAR(scaled.criticalPathNs(), nominal.criticalPathNs() * 1.3, 1e-9);
}

TEST(Sta, SequentialLaunchAndCapture) {
  nl::Design d = parse(R"(
    module top (clk, q);
      input clk; output q;
      wire qa, nqa;
      DFF ra (.D(nqa), .CP(clk), .Q(qa));
      IV i1 (.A(qa), .Z(nqa));
      DFF rb (.D(qa), .CP(clk), .Q(q));
    endmodule
  )");
  sta::Sta s(d.top(), gf());
  // Endpoint at ra.D: clk->q of ra + inverter + setup.
  auto to_ra = s.combDelayToSeq("ra");
  ASSERT_TRUE(to_ra.has_value());
  EXPECT_GT(*to_ra, 0.1);  // at least the clk->q intrinsic
  auto to_rb = s.combDelayToSeq("rb");
  ASSERT_TRUE(to_rb.has_value());
  // Path to rb.D has no inverter: shorter than the ra path.
  EXPECT_LT(*to_rb, *to_ra);
  EXPECT_GT(s.minPeriodNs(), 0.0);
  EXPECT_LT(s.worstSetupSlackNs(10.0), 10.0);
  EXPECT_GT(s.worstSetupSlackNs(10.0), 0.0);
}

TEST(Sta, CriticalPathTraceIsOrdered) {
  nl::Design d = parse(R"(
    module top (a, b, z);
      input a, b; output z;
      wire t;
      ND2 u1 (.A(a), .B(b), .Z(t));
      IV u2 (.A(t), .Z(z));
    endmodule
  )");
  sta::Sta s(d.top(), gf());
  auto path = s.criticalPath();
  ASSERT_GE(path.size(), 3u);
  for (std::size_t i = 1; i < path.size(); ++i) {
    EXPECT_GE(path[i].arrival_ns, path[i - 1].arrival_ns);
  }
  EXPECT_EQ(path.back().net, "z");
}

TEST(Sta, DelayElementRiseCharacterization) {
  nl::Design d;
  async::DelayElementSpec spec;
  spec.levels = 20;
  async::ensureDelayElement(d, gf(), spec);
  nl::Module& del = *d.findModule(async::delayElementName(spec));
  sta::Sta s(del, gf());
  auto rise = s.portToPortNs("A", "Z", true);
  ASSERT_TRUE(rise.has_value());
  // The matched (rise) delay ripples through all 20 AND stages.
  EXPECT_GT(*rise, 20 * 0.025);
  // Note: the fast fall of the asymmetric element is a *dynamic* property
  // (all stages reset simultaneously from the shared input); static
  // analysis conservatively reports the chain fall path.  The asymmetry is
  // validated in Sim.DelayElementAsymmetry.
  auto fall = s.portToPortNs("A", "Z", false);
  ASSERT_TRUE(fall.has_value());
  EXPECT_GT(*fall, 0.0);
}

TEST(Sta, DelayElementLengthIsMonotonic) {
  double prev = 0.0;
  for (int levels : {4, 8, 16, 32}) {
    nl::Design d;
    async::DelayElementSpec spec;
    spec.levels = levels;
    async::ensureDelayElement(d, gf(), spec);
    sta::Sta s(*d.findModule(async::delayElementName(spec)), gf());
    double rise = s.portToPortNs("A", "Z", true).value();
    EXPECT_GT(rise, prev);
    prev = rise;
  }
}

TEST(Sta, BreaksControllerLoopsAutomatically) {
  nl::Design d;
  async::buildControllerRing(d, gf(), async::ControllerKind::kSemiDecoupled,
                             2);
  d.setTop("DR_RING_SD_4");
  nl::flattenTop(d);
  sta::Sta s(d.top(), gf());
  EXPECT_FALSE(s.brokenArcs().empty());
  EXPECT_GT(s.criticalPathNs(), 0.0);
}

TEST(Sta, RespectsUserDisabledArcs) {
  nl::Design d = parse(R"(
    module top (a, z);
      input a; output z;
      wire t1, t2;
      IV i1 (.A(a), .Z(t1));
      IV i2 (.A(t1), .Z(t2));
      IV i3 (.A(t2), .Z(z));
    endmodule
  )");
  sta::StaOptions opt;
  opt.disabled.push_back(sta::DisabledArc{"i2", ""});
  sta::Sta s(d.top(), gf(), opt);
  // The path is cut at i2: only i1 contributes... z is unreachable, so the
  // worst endpoint falls back to t1's port-less arrivals.
  EXPECT_LT(s.criticalPathNs(), 0.1);
  EXPECT_FALSE(s.arrivalNs("z").has_value());
}

TEST(Sta, ThrowsOnLoopsWhenBreakingDisabled) {
  nl::Design d = parse(R"(
    module top (a, z);
      input a; output z;
      wire fb;
      ND2 u1 (.A(a), .B(z), .Z(fb));
      IV u2 (.A(fb), .Z(z));
    endmodule
  )");
  sta::StaOptions opt;
  opt.auto_break_loops = false;
  EXPECT_THROW(sta::Sta(d.top(), gf(), opt), sta::StaError);
}

// ------------------------------------------------------------------ SDC

TEST(Sdc, RoundTrip) {
  sta::SdcFile sdc;
  sta::SdcClock clk;
  clk.name = "ClkM";
  clk.period_ns = 2.4;
  clk.rise_at_ns = 1.0;
  clk.fall_at_ns = 2.4;
  clk.targets = {"G1_Ctrl/g", "G2_Ctrl/g"};
  clk.targets_are_pins = true;
  sdc.clocks.push_back(clk);
  sdc.disabled.push_back(sta::DisabledArc{"ctl0/u_g", "A1"});
  sdc.disabled.push_back(sta::DisabledArc{"ctl1/u_r", ""});
  sdc.size_only = {"ctl0/u_g", "ctl0/u_a"};
  sdc.path_delays.push_back(sta::SdcPathDelay{true, 1.5, "ctl0/ri", "ctl0/ro"});

  std::string text = sdc.toText();
  sta::SdcFile parsed = sta::SdcFile::parse(text);
  ASSERT_EQ(parsed.clocks.size(), 1u);
  EXPECT_EQ(parsed.clocks[0].name, "ClkM");
  EXPECT_DOUBLE_EQ(parsed.clocks[0].period_ns, 2.4);
  EXPECT_DOUBLE_EQ(parsed.clocks[0].rise_at_ns, 1.0);
  EXPECT_TRUE(parsed.clocks[0].targets_are_pins);
  ASSERT_EQ(parsed.clocks[0].targets.size(), 2u);
  ASSERT_EQ(parsed.disabled.size(), 2u);
  EXPECT_EQ(parsed.disabled[0].cell, "ctl0/u_g");
  EXPECT_EQ(parsed.disabled[0].from_pin, "A1");
  EXPECT_TRUE(parsed.disabled[1].from_pin.empty());
  EXPECT_EQ(parsed.size_only.size(), 2u);
  ASSERT_EQ(parsed.path_delays.size(), 1u);
  EXPECT_TRUE(parsed.path_delays[0].is_max);
  EXPECT_DOUBLE_EQ(parsed.path_delays[0].value_ns, 1.5);
}

TEST(Sdc, ParsesPaperStyleClock) {
  const char* text =
      "create_clock -name \"Clk\" -period 2.4 -waveform {0 1.2} "
      "[get_ports clk]\n";
  sta::SdcFile sdc = sta::SdcFile::parse(text);
  ASSERT_EQ(sdc.clocks.size(), 1u);
  EXPECT_EQ(sdc.clocks[0].name, "Clk");
  EXPECT_FALSE(sdc.clocks[0].targets_are_pins);
  ASSERT_EQ(sdc.clocks[0].targets.size(), 1u);
  EXPECT_EQ(sdc.clocks[0].targets[0], "clk");
}

TEST(Sdc, RejectsUnknownCommand) {
  EXPECT_THROW(sta::SdcFile::parse("set_load 5 [get_ports a]"),
               sta::SdcError);
}

}  // namespace
