// Tests for the in-tree CDCL solver (src/sat): verdicts against a
// brute-force reference on random small CNFs, model validity, determinism
// across runs, conflict budgets, and miters of known-equivalent circuit
// pairs built through the symfe encoder.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sat/solver.h"
#include "sim/symfe/encoder.h"

namespace sat = desync::sat;
namespace symfe = desync::sim::symfe;

namespace {

// Deterministic in-test generator (no std::random, fully reproducible).
struct Lcg {
  std::uint64_t s;
  explicit Lcg(std::uint64_t seed) : s(seed * 2654435761u + 1) {}
  std::uint64_t next() {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    return s >> 33;
  }
  std::uint32_t below(std::uint32_t n) {
    return static_cast<std::uint32_t>(next() % n);
  }
};

struct Cnf {
  int n_vars = 0;
  std::vector<std::vector<sat::Lit>> clauses;
};

Cnf randomCnf(std::uint64_t seed) {
  Lcg rng(seed);
  Cnf cnf;
  cnf.n_vars = 3 + static_cast<int>(rng.below(18));  // 3..20 vars
  const int n_clauses = 2 + static_cast<int>(
      rng.below(static_cast<std::uint32_t>(cnf.n_vars * 5)));
  for (int c = 0; c < n_clauses; ++c) {
    const int width = 1 + static_cast<int>(rng.below(3));  // 1..3 literals
    std::vector<sat::Lit> clause;
    for (int k = 0; k < width; ++k) {
      const auto v =
          static_cast<sat::Var>(rng.below(static_cast<std::uint32_t>(
              cnf.n_vars)));
      clause.push_back(sat::mkLit(v, rng.below(2) != 0));
    }
    cnf.clauses.push_back(std::move(clause));
  }
  return cnf;
}

bool clauseSatisfied(const std::vector<sat::Lit>& clause,
                     std::uint32_t assignment) {
  for (const sat::Lit l : clause) {
    const bool val = ((assignment >> sat::varOf(l)) & 1) != 0;
    if (val != sat::signOf(l)) return true;
  }
  return false;
}

/// Brute-force reference: tries all 2^n assignments (n <= 20).
bool bruteForceSat(const Cnf& cnf) {
  const std::uint32_t total = 1u << cnf.n_vars;
  for (std::uint32_t a = 0; a < total; ++a) {
    bool ok = true;
    for (const auto& clause : cnf.clauses) {
      if (!clauseSatisfied(clause, a)) {
        ok = false;
        break;
      }
    }
    if (ok) return true;
  }
  return false;
}

sat::Verdict solveCnf(const Cnf& cnf, sat::Solver& solver) {
  for (int i = 0; i < cnf.n_vars; ++i) solver.newVar();
  for (const auto& clause : cnf.clauses) solver.addClause(clause);
  return solver.solve();
}

// ------------------------------------------------------------ basics

TEST(Sat, EmptyProblemIsSat) {
  sat::Solver s;
  EXPECT_EQ(s.solve(), sat::Verdict::kSat);
}

TEST(Sat, UnitClausesPropagate) {
  sat::Solver s;
  const sat::Var a = s.newVar();
  const sat::Var b = s.newVar();
  ASSERT_TRUE(s.addClause(sat::mkLit(a)));
  ASSERT_TRUE(s.addClause(~sat::mkLit(a), sat::mkLit(b)));
  EXPECT_EQ(s.solve(), sat::Verdict::kSat);
  EXPECT_TRUE(s.modelValue(a));
  EXPECT_TRUE(s.modelValue(b));
}

TEST(Sat, ContradictoryUnitsAreUnsat) {
  sat::Solver s;
  const sat::Var a = s.newVar();
  s.addClause(sat::mkLit(a));
  s.addClause(~sat::mkLit(a));
  EXPECT_FALSE(s.okay());
  EXPECT_EQ(s.solve(), sat::Verdict::kUnsat);
}

TEST(Sat, TautologyIsDropped) {
  sat::Solver s;
  const sat::Var a = s.newVar();
  EXPECT_TRUE(s.addClause(sat::mkLit(a), ~sat::mkLit(a)));
  EXPECT_EQ(s.solve(), sat::Verdict::kSat);
}

TEST(Sat, PigeonholeThreeIntoTwoIsUnsat) {
  // p_ij: pigeon i in hole j; 3 pigeons, 2 holes.
  sat::Solver s;
  sat::Var p[3][2];
  for (auto& pi : p)
    for (sat::Var& v : pi) v = s.newVar();
  for (auto& pi : p) s.addClause(sat::mkLit(pi[0]), sat::mkLit(pi[1]));
  for (int j = 0; j < 2; ++j)
    for (int i = 0; i < 3; ++i)
      for (int k = i + 1; k < 3; ++k)
        s.addClause(~sat::mkLit(p[i][j]), ~sat::mkLit(p[k][j]));
  EXPECT_EQ(s.solve(), sat::Verdict::kUnsat);
  EXPECT_GT(s.stats().conflicts, 0u);
}

// ------------------------------------------------- reference cross-check

TEST(Sat, MatchesBruteForceOnRandomCnfs) {
  int sat_count = 0;
  int unsat_count = 0;
  for (std::uint64_t seed = 1; seed <= 300; ++seed) {
    const Cnf cnf = randomCnf(seed);
    sat::Solver solver;
    const sat::Verdict v = solveCnf(cnf, solver);
    const bool expect = bruteForceSat(cnf);
    ASSERT_EQ(v, expect ? sat::Verdict::kSat : sat::Verdict::kUnsat)
        << "seed " << seed;
    if (expect) {
      ++sat_count;
      // The model must actually satisfy every clause.
      std::uint32_t a = 0;
      for (int i = 0; i < cnf.n_vars; ++i) {
        if (solver.modelValue(i)) a |= 1u << i;
      }
      for (const auto& clause : cnf.clauses) {
        ASSERT_TRUE(clauseSatisfied(clause, a)) << "seed " << seed;
      }
    } else {
      ++unsat_count;
    }
  }
  // The generator must exercise both outcomes, or the test is vacuous.
  EXPECT_GT(sat_count, 20);
  EXPECT_GT(unsat_count, 20);
}

TEST(Sat, DeterministicAcrossRuns) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const Cnf cnf = randomCnf(seed * 7919);
    sat::Solver a, b;
    const sat::Verdict va = solveCnf(cnf, a);
    const sat::Verdict vb = solveCnf(cnf, b);
    ASSERT_EQ(va, vb) << "seed " << seed;
    ASSERT_EQ(a.stats().conflicts, b.stats().conflicts) << "seed " << seed;
    ASSERT_EQ(a.stats().decisions, b.stats().decisions) << "seed " << seed;
    if (va == sat::Verdict::kSat) {
      for (int i = 0; i < cnf.n_vars; ++i) {
        ASSERT_EQ(a.modelValue(i), b.modelValue(i)) << "seed " << seed;
      }
    }
  }
}

TEST(Sat, ConflictBudgetYieldsUnknown) {
  // A hard pigeonhole instance (6 pigeons, 5 holes) with a tiny budget
  // must give up honestly rather than mislabel.
  sat::Solver s;
  constexpr int kP = 6, kH = 5;
  sat::Var p[kP][kH];
  for (auto& pi : p)
    for (sat::Var& v : pi) v = s.newVar();
  for (auto& pi : p) {
    std::vector<sat::Lit> at_least;
    for (const sat::Var v : pi) at_least.push_back(sat::mkLit(v));
    s.addClause(at_least);
  }
  for (int j = 0; j < kH; ++j)
    for (int i = 0; i < kP; ++i)
      for (int k = i + 1; k < kP; ++k)
        s.addClause(~sat::mkLit(p[i][j]), ~sat::mkLit(p[k][j]));
  sat::Limits tiny;
  tiny.max_conflicts = 3;
  EXPECT_EQ(s.solve(tiny), sat::Verdict::kUnknown);
  // With the budget lifted the same solver finishes the proof.
  EXPECT_EQ(s.solve(), sat::Verdict::kUnsat);
}

// -------------------------------------------- equivalent-cone miters

/// Miter of two literals: SAT iff they can differ.
sat::Verdict miter(sat::Solver& s, sat::Lit a, sat::Lit b) {
  s.addClause(a, b);
  s.addClause(~a, ~b);
  return s.solve();
}

TEST(Sat, EquivalentConePairsAreUnsat) {
  {
    // Distribution: a & (b | c) == (a & b) | (a & c).
    sat::Solver s;
    symfe::Encoder e(s);
    const sat::Lit a = e.leaf("in:a"), b = e.leaf("in:b"),
                   c = e.leaf("in:c");
    const sat::Lit lhs = e.andLit(a, e.orLit(b, c));
    const sat::Lit rhs = e.orLit(e.andLit(a, b), e.andLit(a, c));
    EXPECT_EQ(miter(s, lhs, rhs), sat::Verdict::kUnsat);
  }
  {
    // XOR associativity over a 6-input chain, folded two different ways.
    sat::Solver s;
    symfe::Encoder e(s);
    std::vector<sat::Lit> in;
    for (int i = 0; i < 6; ++i) in.push_back(e.leaf("in:x" + std::to_string(i)));
    sat::Lit fold_l = in[0];
    for (int i = 1; i < 6; ++i) fold_l = e.xorLit(fold_l, in[i]);
    sat::Lit fold_r = in[5];
    for (int i = 4; i >= 0; --i) fold_r = e.xorLit(in[i], fold_r);
    EXPECT_EQ(miter(s, fold_l, fold_r), sat::Verdict::kUnsat);
  }
  {
    // De Morgan: ~(a | b) == ~a & ~b (negated literals through the
    // encoder's phase normalization).
    sat::Solver s;
    symfe::Encoder e(s);
    const sat::Lit a = e.leaf("in:a"), b = e.leaf("in:b");
    const sat::Lit lhs = ~e.orLit(a, b);
    const sat::Lit rhs = e.andLit(~a, ~b);
    // Canonicalization should collapse these to the same literal.
    EXPECT_EQ(lhs, rhs);
    EXPECT_EQ(miter(s, lhs, rhs), sat::Verdict::kUnsat);
  }
  {
    // Near-equivalent pair must stay SAT: a & b vs a | b differ at a!=b.
    sat::Solver s;
    symfe::Encoder e(s);
    const sat::Lit a = e.leaf("in:a"), b = e.leaf("in:b");
    EXPECT_EQ(miter(s, e.andLit(a, b), e.orLit(a, b)), sat::Verdict::kSat);
    const bool av = s.modelValue(sat::varOf(a)) != sat::signOf(a);
    const bool bv = s.modelValue(sat::varOf(b)) != sat::signOf(b);
    EXPECT_NE(av, bv);
  }
}

TEST(Sat, IteEncodingMatchesSemantics) {
  // Exhaustive check of the ite node against its defining table.
  for (int row = 0; row < 8; ++row) {
    sat::Solver s;
    symfe::Encoder e(s);
    const sat::Lit sl = e.leaf("in:s"), t = e.leaf("in:t"),
                   el = e.leaf("in:e");
    const sat::Lit out = e.iteLit(sl, t, el);
    const bool sv = (row & 1) != 0, tv = (row & 2) != 0, ev = (row & 4) != 0;
    s.addClause(sv ? sl : ~sl);
    s.addClause(tv ? t : ~t);
    s.addClause(ev ? el : ~el);
    ASSERT_EQ(s.solve(), sat::Verdict::kSat) << "row " << row;
    const bool expect = sv ? tv : ev;
    ASSERT_EQ(s.modelValue(sat::varOf(out)) != sat::signOf(out), expect)
        << "row " << row;
  }
}

}  // namespace
