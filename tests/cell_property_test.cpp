// Property tests over every library cell: the event simulator must agree
// with the Liberty boolean function on every input combination, for every
// combinational cell of both library variants; sequential cells must hold
// state under inactive clocks.
#include <gtest/gtest.h>

#include "core/desync.h"
#include "liberty/gatefile.h"
#include "liberty/stdlib90.h"
#include "netlist/flatten.h"
#include "netlist/netlist.h"
#include "sim/flow_equivalence.h"
#include "sim/simulator.h"

namespace nl = desync::netlist;
namespace lib = desync::liberty;
namespace sim = desync::sim;

using sim::Val;

namespace {

struct CellCase {
  lib::LibVariant variant;
  std::string cell;
};

std::vector<CellCase> combCells() {
  std::vector<CellCase> cases;
  for (lib::LibVariant v :
       {lib::LibVariant::kHighSpeed, lib::LibVariant::kLowLeakage}) {
    lib::Library l = lib::makeStdLib90(v);
    l.forEachCell([&](const lib::LibCell& c) {
      if (c.kind == lib::CellKind::kCombinational) {
        cases.push_back(CellCase{v, c.name});
      }
    });
  }
  return cases;
}

class CombCellTruth : public ::testing::TestWithParam<CellCase> {};

TEST_P(CombCellTruth, SimulatorMatchesLibertyFunction) {
  const CellCase& tc = GetParam();
  lib::Library library = lib::makeStdLib90(tc.variant);
  lib::Gatefile gatefile(library);
  const lib::LibCell& cell = library.cell(tc.cell);
  const lib::LibPin* out = cell.findPin("Z");
  ASSERT_NE(out, nullptr);
  const auto& vars = out->function.vars();
  ASSERT_LE(vars.size(), 6u);

  // One-cell module: each function variable becomes an input port.
  nl::Design d;
  nl::Module& m = d.addModule("tb");
  std::vector<nl::Module::PinInit> pins;
  for (const std::string& v : vars) {
    nl::NetId n = m.addNet(v);
    m.addPort(v, nl::PortDir::kInput, n);
    pins.push_back({v, nl::PortDir::kInput, n});
  }
  nl::NetId z = m.addNet("z");
  m.addPort("z", nl::PortDir::kOutput, z);
  pins.push_back({"Z", nl::PortDir::kOutput, z});
  m.addCell("dut", tc.cell, pins);

  sim::Simulator s(m, gatefile);
  const std::size_t rows = std::size_t{1} << vars.size();
  for (std::size_t row = 0; row < rows; ++row) {
    std::vector<bool> values(vars.size());
    for (std::size_t i = 0; i < vars.size(); ++i) {
      values[i] = ((row >> i) & 1u) != 0;
      s.setInput(vars[i], sim::fromBool(values[i]));
    }
    s.runUntilStable(s.now() + sim::nsToPs(100));
    const bool expect = out->function.eval(values);
    EXPECT_EQ(s.value("z"), sim::fromBool(expect))
        << tc.cell << " row " << row;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombCells, CombCellTruth, ::testing::ValuesIn(combCells()),
    [](const ::testing::TestParamInfo<CellCase>& info) {
      return (info.param.variant == lib::LibVariant::kHighSpeed ? "HS_"
                                                                : "LL_") +
             info.param.cell;
    });

// ---- sequential hold property -------------------------------------------

class FlipFlopHold : public ::testing::TestWithParam<std::string> {};

TEST_P(FlipFlopHold, HoldsStateWhileClockIdle) {
  lib::Library library = lib::makeStdLib90(lib::LibVariant::kHighSpeed);
  lib::Gatefile gatefile(library);
  const std::string& type = GetParam();
  const lib::SeqClass* sc = gatefile.seqClass(type);
  ASSERT_NE(sc, nullptr);

  nl::Design d;
  nl::Module& m = d.addModule("tb");
  std::vector<nl::Module::PinInit> pins;
  auto in = [&](const std::string& p) {
    if (p.empty()) return;
    nl::NetId n = m.addNet(p);
    m.addPort(p, nl::PortDir::kInput, n);
    pins.push_back({p, nl::PortDir::kInput, n});
  };
  in(sc->data_pin);
  in(sc->scan_in);
  in(sc->scan_enable);
  in(sc->sync_pin);
  in(sc->async_clear_pin);
  in(sc->async_preset_pin);
  in(sc->clock_pin);
  nl::NetId q = m.addNet("q");
  m.addPort("q", nl::PortDir::kOutput, q);
  pins.push_back({sc->q_pin, nl::PortDir::kOutput, q});
  m.addCell("dut", type, pins);

  sim::Simulator s(m, gatefile);
  auto set = [&](const std::string& p, Val v) {
    if (!p.empty()) s.setInput(p, v);
  };
  // Deassert all controls, clock in a 1.
  set(sc->clock_pin, Val::k0);
  set(sc->data_pin, Val::k1);
  set(sc->scan_enable, Val::k0);
  set(sc->scan_in, Val::k0);
  set(sc->sync_pin, sc->sync_active_low ? Val::k1 : Val::k0);
  set(sc->async_clear_pin, sc->async_clear_active_low ? Val::k1 : Val::k0);
  set(sc->async_preset_pin,
      sc->async_preset_active_low ? Val::k1 : Val::k0);
  s.runUntilStable(s.now() + sim::nsToPs(10));
  set(sc->clock_pin, Val::k1);
  s.runUntilStable(s.now() + sim::nsToPs(10));
  ASSERT_EQ(s.value("q"), Val::k1);
  // Wiggle data with the clock high and then low: no capture.
  set(sc->data_pin, Val::k0);
  s.runUntilStable(s.now() + sim::nsToPs(10));
  EXPECT_EQ(s.value("q"), Val::k1);
  set(sc->clock_pin, Val::k0);
  s.runUntilStable(s.now() + sim::nsToPs(10));
  EXPECT_EQ(s.value("q"), Val::k1);
  set(sc->data_pin, Val::k1);
  set(sc->data_pin, Val::k0);
  s.runUntilStable(s.now() + sim::nsToPs(10));
  EXPECT_EQ(s.value("q"), Val::k1);
  // Next rising edge captures the 0.
  set(sc->clock_pin, Val::k1);
  s.runUntilStable(s.now() + sim::nsToPs(10));
  EXPECT_EQ(s.value("q"), Val::k0);
}

INSTANTIATE_TEST_SUITE_P(AllFlipFlops, FlipFlopHold,
                         ::testing::Values("DFF", "DFFR", "DFFS", "DFFSYNR",
                                           "SDFF", "SDFFR"));

// ---- substitution equivalence property -----------------------------------
// For every flip-flop type: build a 1-bit circuit around it, desynchronize,
// and require flow-equivalence (covers scan, sync-reset, async set/clear
// substitution recipes of Fig 3.1 against real stimulus).

class SubstitutionEquivalence : public ::testing::TestWithParam<std::string> {
};

TEST_P(SubstitutionEquivalence, FlowEquivalentAfterDesync) {
  lib::Library library = lib::makeStdLib90(lib::LibVariant::kHighSpeed);
  lib::Gatefile gatefile(library);
  const std::string& type = GetParam();
  const lib::SeqClass* sc = gatefile.seqClass(type);
  ASSERT_NE(sc, nullptr);

  // A self-toggling bit through the flip-flop under test (D = NOR(q,
  // !rst_n), so the next value is a known 0 while reset is asserted even
  // for reset-less flip-flop types), with all control pins tied inactive
  // except clear/sync-reset wired to rst_n when present.
  nl::Design d;
  nl::Module& m = d.addModule("tb");
  nl::NetId clk = m.addNet("clk");
  m.addPort("clk", nl::PortDir::kInput, clk);
  nl::NetId rst_n = m.addNet("rst_n");
  m.addPort("rst_n", nl::PortDir::kInput, rst_n);
  nl::NetId rst_i = m.addNet("rst_i");
  m.addCell("rstinv", "IV",
            {{"A", nl::PortDir::kInput, rst_n},
             {"Z", nl::PortDir::kOutput, rst_i}});
  nl::NetId q = m.addNet("q");
  nl::NetId nq = m.addNet("nq");
  m.addCell("inv", "NR2",
            {{"A", nl::PortDir::kInput, q},
             {"B", nl::PortDir::kInput, rst_i},
             {"Z", nl::PortDir::kOutput, nq}});
  std::vector<nl::Module::PinInit> pins = {
      {sc->data_pin, nl::PortDir::kInput, nq},
      {sc->clock_pin, nl::PortDir::kInput, clk},
      {sc->q_pin, nl::PortDir::kOutput, q}};
  if (!sc->scan_enable.empty()) {
    pins.push_back({sc->scan_enable, nl::PortDir::kInput, m.constNet(false)});
    pins.push_back({sc->scan_in, nl::PortDir::kInput, m.constNet(false)});
  }
  if (!sc->sync_pin.empty()) {
    pins.push_back({sc->sync_pin, nl::PortDir::kInput, rst_n});
  }
  if (!sc->async_clear_pin.empty()) {
    pins.push_back({sc->async_clear_pin, nl::PortDir::kInput, rst_n});
  }
  if (!sc->async_preset_pin.empty()) {
    pins.push_back(
        {sc->async_preset_pin, nl::PortDir::kInput, m.constNet(false)});
    // preset is active-low in this library: tie to 1 = inactive.
    pins.back().net = m.constNet(true);
  }
  m.addCell("dut", type, pins);
  m.addPort("q", nl::PortDir::kOutput, q);

  nl::Design sync_copy;
  nl::cloneModule(sync_copy, m);

  // Separate controller reset ("rst" port created by the flow): the
  // network runs functional-reset cycles first so even reset-less
  // flip-flop types reach a defined state, mirroring a synchronous reset
  // sequence with the clock running.
  desync::core::DesyncOptions opt;
  desync::core::desynchronize(d, m, gatefile, opt);

  // Synchronous run: clock runs during functional reset.
  sim::Simulator ss(sync_copy.top(), gatefile);
  ss.setInput("clk", Val::k0);
  ss.setInput("rst_n", Val::k0);
  ss.run(sim::nsToPs(10));
  for (int i = 0; i < 6; ++i) {
    ss.setInput("clk", Val::k1);
    ss.run(ss.now() + sim::nsToPs(5));
    ss.setInput("clk", Val::k0);
    ss.run(ss.now() + sim::nsToPs(5));
  }
  ss.setInput("rst_n", Val::k1);
  for (int i = 0; i < 20; ++i) {
    ss.setInput("clk", Val::k1);
    ss.run(ss.now() + sim::nsToPs(5));
    ss.setInput("clk", Val::k0);
    ss.run(ss.now() + sim::nsToPs(5));
  }

  // Desynchronized run: release the controller reset first (self-timed
  // reset cycles with rst_n still asserted), then the functional reset.
  sim::Simulator sd(m, gatefile);
  sd.setInput("clk", Val::k0);
  sd.setInput("rst_n", Val::k0);
  sd.setInput("rst", Val::k1);
  sd.run(sim::nsToPs(10));
  sd.setInput("rst", Val::k0);
  sd.run(sd.now() + sim::nsToPs(40));
  sd.setInput("rst_n", Val::k1);
  sd.run(sd.now() + sim::nsToPs(300));

  sim::FlowEqOptions feo;
  feo.max_initial_skip = 120;  // reset-epoch cycle counts differ
  sim::FlowEqReport fe = sim::checkFlowEquivalence(ss, sd, feo);
  EXPECT_TRUE(fe.equivalent)
      << type << ": " << (fe.details.empty() ? "?" : fe.details[0]);
  EXPECT_GE(fe.values_compared, 10u);
}

INSTANTIATE_TEST_SUITE_P(AllFlipFlops, SubstitutionEquivalence,
                         ::testing::Values("DFF", "DFFR", "DFFS", "DFFSYNR",
                                           "SDFF", "SDFFR"));

}  // namespace
