// Determinism contract of the parallel execution layer: every workload
// wired onto core/parallel.h must produce byte-identical results at
// --jobs 1 (exact serial path) and at a high worker count.  These tests
// run each of the three wired sites — Monte-Carlo SSTA samples,
// multi-corner STA and flow-equivalence vector batches — under both
// settings and compare the complete result structures.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/desync.h"
#include "core/parallel.h"
#include "designs/small.h"
#include "liberty/bound.h"
#include "liberty/stdlib90.h"
#include "netlist/flatten.h"
#include "netlist/verilog.h"
#include "sim/flow_equivalence.h"
#include "sim/simulator.h"
#include "sim/stimulus.h"
#include "sta/sta.h"
#include "trace/trace.h"
#include "variability/variability.h"

namespace core = desync::core;
namespace designs = desync::designs;
namespace lib = desync::liberty;
namespace nl = desync::netlist;
namespace sim = desync::sim;
namespace sta = desync::sta;
namespace var = desync::variability;

namespace {

constexpr int kParallelJobs = 8;

const lib::Gatefile& gf() {
  static const lib::Library l = lib::makeStdLib90(lib::LibVariant::kHighSpeed);
  static const lib::Gatefile g(l);
  return g;
}

/// A desynchronized pipe2 plus its pristine synchronous clone — the small
/// shared fixture all three determinism checks run against.
struct Fixture {
  nl::Design desync_design;
  nl::Design sync_design;
  core::DesyncResult report;

  nl::Module& desyncModule() { return *desync_design.findModule("pipe2"); }
  nl::Module& syncModule() { return sync_design.top(); }
};

Fixture& fixture() {
  static Fixture* f = [] {
    auto* fx = new Fixture;
    designs::buildPipe2(fx->desync_design, gf(), 6);
    nl::cloneModule(fx->sync_design, *fx->desync_design.findModule("pipe2"));
    fx->sync_design.setTop("pipe2");
    core::DesyncOptions opt;
    opt.control.reset_port = "rst_n";
    opt.control.reset_active_low = true;
    fx->report = core::desynchronize(fx->desync_design, fx->desyncModule(),
                                     gf(), opt);
    return fx;
  }();
  return *f;
}

/// Runs `fn` with --jobs 1 and with kParallelJobs, restoring the default.
template <typename Fn>
auto runBoth(Fn&& fn) {
  core::setThreadJobs(1);
  auto serial = fn();
  core::setThreadJobs(kParallelJobs);
  auto parallel = fn();
  core::setThreadJobs(0);
  return std::make_pair(std::move(serial), std::move(parallel));
}

}  // namespace

TEST(Determinism, SstaMarginsIdenticalAcrossJobs) {
  Fixture& fx = fixture();
  const lib::BoundModule bound(fx.desyncModule(), gf());
  const var::VariationModel model = var::makeSpanModel(11);
  constexpr std::size_t kSamples = 32;

  auto run = [&] {
    std::vector<double> periods(kSamples, 0.0);
    std::vector<double> globals(kSamples, 0.0);
    var::forEachSample(model, kSamples,
                       [&](std::size_t s, const var::ChipSample& chip) {
                         sta::StaOptions so;
                         so.disabled = fx.report.sdc.disabled;
                         so.delay_scale = chip.global;
                         so.cell_scale = chip.cell_factor;
                         periods[s] = sta::Sta(bound, so).minPeriodNs();
                         globals[s] = chip.global;
                       });
    return std::make_pair(periods, globals);
  };
  auto [serial, parallel] = runBoth(run);
  // Bit-exact, not approximate: the contract is byte-identical output.
  ASSERT_EQ(serial.first.size(), parallel.first.size());
  for (std::size_t s = 0; s < serial.first.size(); ++s) {
    EXPECT_EQ(serial.first[s], parallel.first[s]) << "sample " << s;
    EXPECT_EQ(serial.second[s], parallel.second[s]) << "sample " << s;
  }
  // And the sampled periods are real analyses, not zeros.
  for (double p : serial.first) EXPECT_GT(p, 0.0);
}

TEST(Determinism, MultiCornerStaIdenticalAcrossJobs) {
  Fixture& fx = fixture();
  const lib::BoundModule bound(fx.desyncModule(), gf());

  auto run = [&] {
    std::vector<sta::StaOptions> options;
    for (double scale : {0.72, 1.0, 1.2, 1.45, 1.6, 2.0}) {
      sta::StaOptions so;
      so.disabled = fx.report.sdc.disabled;
      so.delay_scale = scale;
      options.push_back(std::move(so));
    }
    std::vector<std::unique_ptr<sta::Sta>> analyses =
        sta::analyzeCorners(bound, std::move(options));
    std::vector<double> periods;
    std::vector<double> criticals;
    for (const auto& a : analyses) {
      periods.push_back(a->minPeriodNs());
      criticals.push_back(a->criticalPathNs());
    }
    return std::make_pair(periods, criticals);
  };
  auto [serial, parallel] = runBoth(run);
  ASSERT_EQ(serial.first.size(), parallel.first.size());
  for (std::size_t i = 0; i < serial.first.size(); ++i) {
    EXPECT_EQ(serial.first[i], parallel.first[i]) << "corner " << i;
    EXPECT_EQ(serial.second[i], parallel.second[i]) << "corner " << i;
  }
  for (double p : serial.first) EXPECT_GT(p, 0.0);
}

TEST(Determinism, RegionWorstDelaysIdenticalAcrossJobs) {
  Fixture& fx = fixture();
  const lib::BoundModule bound(fx.desyncModule(), gf());
  sta::StaOptions so;
  so.disabled = fx.report.sdc.disabled;
  const sta::Sta analysis(bound, so);

  auto run = [&] {
    return analysis.regionWorstDelays(fx.report.regions.seq_cells, "_Lm");
  };
  auto [serial, parallel] = runBoth(run);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t g = 0; g < serial.size(); ++g) {
    EXPECT_EQ(serial[g], parallel[g]) << "region " << g;
  }
}

TEST(Determinism, TracingDoesNotChangeFlowOutput) {
  // The tracer's determinism contract (trace/trace.h): enabling tracing
  // must not change a single byte of flow output.  Run the full flow on a
  // fresh pipe2 with tracing off and on and compare the generated netlist
  // and SDC text.
  auto runFlow = [] {
    nl::Design design;
    designs::buildPipe2(design, gf(), 6);
    nl::Module& module = *design.findModule("pipe2");
    core::DesyncOptions opt;
    opt.control.reset_port = "rst_n";
    opt.control.reset_active_low = true;
    core::DesyncResult result =
        core::desynchronize(design, module, gf(), opt);
    return std::make_pair(nl::writeVerilog(design), result.sdc.toText());
  };
  core::setThreadJobs(kParallelJobs);
  auto plain = runFlow();
  desync::trace::start(std::string(::testing::TempDir()) +
                       "determinism_trace.json");
  auto traced = runFlow();
  desync::trace::finish();
  core::setThreadJobs(0);
  EXPECT_EQ(plain.first, traced.first);
  EXPECT_EQ(plain.second, traced.second);
  EXPECT_FALSE(plain.first.empty());
}

TEST(Determinism, FlowEquivalenceBatchesIdenticalAcrossJobs) {
  Fixture& fx = fixture();
  const double half_ns = fx.report.sync_min_period_ns;

  // Batch b: the synchronous reference runs 10+2*b clock cycles; the
  // desynchronized side free-runs a matching window.  Stimulus derives
  // from the batch index alone, per the SimFactory contract.
  auto runSyncBatch = [&](std::size_t b) {
    auto s = std::make_unique<sim::Simulator>(fx.syncModule(), gf());
    s->setInput("clk", sim::Val::k0);
    s->setInput("rst_n", sim::Val::k0);
    s->run(sim::nsToPs(10));
    s->setInput("rst_n", sim::Val::k1);
    s->run(s->now() + sim::nsToPs(half_ns));
    const int cycles = 10 + 2 * static_cast<int>(b);
    for (int i = 0; i < cycles; ++i) {
      s->setInput("clk", sim::Val::k1);
      s->run(s->now() + sim::nsToPs(half_ns));
      s->setInput("clk", sim::Val::k0);
      s->run(s->now() + sim::nsToPs(half_ns));
    }
    return s;
  };
  auto runDesyncBatch = [&](std::size_t b) {
    auto s = std::make_unique<sim::Simulator>(fx.desyncModule(), gf());
    s->setInput("clk", sim::Val::k0);
    s->setInput("rst_n", sim::Val::k0);
    s->run(sim::nsToPs(10));
    s->setInput("rst_n", sim::Val::k1);
    const int cycles = 10 + 2 * static_cast<int>(b);
    s->run(s->now() + sim::nsToPs(half_ns * 2 * (cycles + 6)));
    return s;
  };

  auto run = [&] {
    return sim::checkFlowEquivalenceBatches(4, runSyncBatch, runDesyncBatch);
  };
  auto [serial, parallel] = runBoth(run);

  EXPECT_TRUE(serial.equivalent);
  EXPECT_EQ(serial.equivalent, parallel.equivalent);
  EXPECT_EQ(serial.batches_run, parallel.batches_run);
  EXPECT_EQ(serial.elements_compared, parallel.elements_compared);
  EXPECT_EQ(serial.values_compared, parallel.values_compared);
  EXPECT_EQ(serial.mismatches, parallel.mismatches);
  ASSERT_EQ(serial.per_batch.size(), parallel.per_batch.size());
  for (std::size_t b = 0; b < serial.per_batch.size(); ++b) {
    EXPECT_EQ(serial.per_batch[b].equivalent, parallel.per_batch[b].equivalent);
    EXPECT_EQ(serial.per_batch[b].values_compared,
              parallel.per_batch[b].values_compared);
    EXPECT_EQ(serial.per_batch[b].mismatches,
              parallel.per_batch[b].mismatches);
  }
  EXPECT_GT(serial.values_compared, 0u);
}

TEST(Determinism, GoldenSyncBatchesIdenticalAcrossEnginesAndJobs) {
  // The --fe-check golden side must be byte-identical whichever engine
  // produced it (event runs batches on the parallel layer, bitsim packs 64
  // batches per pass) and at any worker count.
  Fixture& fx = fixture();
  const lib::BoundModule bound(fx.syncModule(), gf());
  sim::SyncStimulus base;
  base.half_period_ns = fx.report.sync_min_period_ns;
  base.cycles = 10;

  auto digestAll = [](const std::vector<std::vector<sim::CaptureLog>>& bs) {
    std::string d;
    for (const auto& batch : bs) {
      for (const sim::CaptureLog& log : batch) {
        d += log.element;
        d += '=';
        for (sim::Val v : log.values) d += sim::toChar(v);
        d += '\n';
      }
      d += ';';
    }
    return d;
  };
  auto run = [&] {
    return std::make_pair(
        digestAll(sim::goldenSyncBatches(bound, base, 6,
                                         sim::SyncEngine::kEvent)),
        digestAll(sim::goldenSyncBatches(bound, base, 6,
                                         sim::SyncEngine::kBitsim)));
  };
  auto [serial, parallel] = runBoth(run);
  EXPECT_FALSE(serial.first.empty());
  EXPECT_EQ(serial.first, serial.second) << "engines disagree at --jobs 1";
  EXPECT_EQ(parallel.first, parallel.second)
      << "engines disagree at --jobs " << kParallelJobs;
  EXPECT_EQ(serial.first, parallel.first) << "event digest depends on --jobs";
  EXPECT_EQ(serial.second, parallel.second)
      << "bitsim digest depends on --jobs";
}

// The incremental ECO path fans the masked re-analysis and the region
// splice out over the same parallel layer; a warm re-flow over primed
// region tables must stay byte-identical at any worker count (and both
// runs must actually take the warm path).
TEST(Determinism, EcoWarmRunIdenticalAcrossJobs) {
  namespace fs = std::filesystem;
  const fs::path primed = fs::path(::testing::TempDir()) / "det_eco_primed";
  fs::remove_all(primed);
  fs::create_directories(primed);

  const auto optionsFor = [](const fs::path& dir) {
    core::DesyncOptions opt;
    opt.control.reset_port = "rst_n";
    opt.control.reset_active_low = true;
    opt.flowdb.cache_dir = dir.string();
    opt.flowdb.eco = true;
    return opt;
  };

  {  // Prime the region tables on the pristine design.
    nl::Design d;
    designs::buildPipe2(d, gf(), 6);
    core::desynchronize(d, *d.findModule("pipe2"), gf(), optionsFor(primed));
  }

  int invocation = 0;
  const auto run = [&] {
    // Each run gets its own copy of the primed tables: the warm run
    // re-stores the slot, and both jobs settings must read identical
    // inputs.
    const fs::path dir =
        fs::path(::testing::TempDir()) /
        ("det_eco_run" + std::to_string(invocation++));
    fs::remove_all(dir);
    fs::copy(primed, dir, fs::copy_options::recursive);

    nl::Design d;
    designs::buildPipe2(d, gf(), 6);
    nl::Module& m = *d.findModule("pipe2");
    // The ECO edit: tie the first combinational input pin to constant 1.
    bool edited = false;
    m.forEachCell([&](nl::CellId c) {
      if (edited || !gf().isCombinational(std::string(m.cellType(c)))) return;
      const auto& pins = m.cell(c).pins;
      for (std::size_t p = 0; p < pins.size(); ++p) {
        if (pins[p].dir == nl::PortDir::kInput && pins[p].net.valid()) {
          m.connectPin(c, p, m.constNet(true));
          edited = true;
          return;
        }
      }
    });
    EXPECT_TRUE(edited);
    core::DesyncResult r = core::desynchronize(d, m, gf(), optionsFor(dir));
    EXPECT_TRUE(r.flow.eco().warm) << "run " << invocation;
    return nl::writeVerilog(d) + "\n====\n" + r.sdc.toText();
  };
  auto [serial, parallel] = runBoth(run);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel) << "ECO warm output depends on --jobs";
}
