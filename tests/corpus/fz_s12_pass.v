// drdesync-fuzz honest corpus entry: seed 12, expected to PASS the full oracle
// repro: drdesync-fuzz --replay fz_s12_pass.v
module fz_s12 (clk, rst_n, \q[0] , \q[1] );
  input clk;
  input rst_n;
  output \q[0] ;
  output \q[1] ;
  wire [1:0] s0_w0;
  wire const0;
  wire const1;
  wire EO_n1;
  wire EO_n3;
  wire MAJ3_n5;
  wire EO_n7;
  wire EO_n9;
  wire MAJ3_n11;
  wire AN2_n13;
  assign const0 = 1'b0;
  assign const1 = 1'b1;
  assign \q[0]  = s0_w0[0];
  assign \q[1]  = s0_w0[1];
  EO u2 (.A(s0_w0[0]), .B(const0), .Z(EO_n1));
  EO u4 (.A(EO_n1), .B(const0), .Z(EO_n3));
  MAJ3 u6 (.A(s0_w0[0]), .B(const0), .C(const0), .Z(MAJ3_n5));
  EO u8 (.A(s0_w0[1]), .B(const1), .Z(EO_n7));
  EO u10 (.A(EO_n7), .B(MAJ3_n5), .Z(EO_n9));
  MAJ3 u12 (.A(s0_w0[1]), .B(const1), .C(MAJ3_n5), .Z(MAJ3_n11));
  DFFR r0_r0 (.D(EO_n3), .CP(clk), .CDN(rst_n), .Q(s0_w0[0]));
  DFFR r0_r1 (.D(EO_n9), .CP(clk), .CDN(rst_n), .Q(s0_w0[1]));
  AN2 u14 (.A(s0_w0[1]), .B(s0_w0[1]), .Z(AN2_n13));
endmodule
