// drdesync-fuzz reproducer: seed 2, failing check "flow-equivalence"
// r1_r0 capture #5: sync=1 desync=0
// repro: drdesync-fuzz --replay fz_s2_flow-equivalence.v --fault fully-decoupled --expect-check flow-equivalence
module fz_s2 (clk, rst_n, q_0_, q_1_);
  input clk;
  input rst_n;
  output q_0_;
  output q_1_;
  wire [1:1] s0_w0;
  wire [1:1] s1_w1;
  wire const1;
  wire const0;
  wire EO_n28;
  wire EO_n36;
  wire EO_n42;
  assign const1 = 1'b1;
  assign const0 = 1'b0;
  assign q_0_ = EO_n36;
  assign q_1_ = s1_w1[1];
  DFFR r0_r1 (.D(const0), .CP(clk), .CDN(rst_n), .Q(s0_w0[1]));
  EO u29 (.A(s1_w1[1]), .B(s0_w0[1]), .Z(EO_n28));
  EO u37 (.A(const0), .B(const1), .Z(EO_n36));
  EO u43 (.A(EO_n28), .B(EO_n36), .Z(EO_n42));
  DFFR r1_r1 (.D(EO_n42), .CP(clk), .CDN(rst_n), .Q(s1_w1[1]));
endmodule
