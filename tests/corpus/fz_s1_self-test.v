// drdesync-fuzz reproducer: seed 1, failing check "self-test"
// injected self-test fault: 11 latch pair(s) present
// repro: drdesync-fuzz --replay fz_s1_self-test.v --fault self-test --expect-check self-test
module fz_s1 (clk, rst_n, q_0_, q_1_, q_2_, q_3_, q_4_, q_5_);
  input clk;
  input rst_n;
  output q_0_;
  output q_1_;
  output q_2_;
  output q_3_;
  output q_4_;
  output q_5_;
  wire [5:5] s3_w3;
  wire const0;
  assign const0 = 1'b0;
  assign q_0_ = const0;
  assign q_1_ = const0;
  assign q_2_ = const0;
  assign q_3_ = const0;
  assign q_4_ = const0;
  assign q_5_ = s3_w3[5];
  DFFR r3_r5 (.D(const0), .CP(clk), .CDN(rst_n), .Q(s3_w3[5]));
endmodule
