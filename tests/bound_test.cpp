// BoundModule: the dense library binding must agree with the string-keyed
// lookup path on a real design, and constructing the hot passes from it
// must perform zero string-keyed library lookups.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "designs/cpu.h"
#include "liberty/bound.h"
#include "liberty/stdlib90.h"
#include "netlist/netlist.h"
#include "sim/simulator.h"
#include "sta/sta.h"

namespace nl = desync::netlist;
namespace lib = desync::liberty;
namespace sim = desync::sim;
namespace sta = desync::sta;
namespace designs = desync::designs;

namespace {

const lib::Gatefile& gf() {
  static const lib::Library l = lib::makeStdLib90(lib::LibVariant::kHighSpeed);
  static const lib::Gatefile g(l);
  return g;
}

TEST(BoundModule, AgreesWithStringLookupsOnDlx) {
  nl::Design d;
  designs::buildCpu(d, gf(), designs::dlxConfig());
  nl::Module& m = *d.findModule("dlx");
  const lib::Library& l = gf().library();

  lib::BoundModule bound(m, gf());
  EXPECT_EQ(bound.numUnboundCells(), 0u);
  EXPECT_GT(bound.numTypes(), 0u);

  std::size_t checked = 0;
  m.forEachCell([&](nl::CellId cid) {
    const std::string type(m.cellType(cid));
    const lib::LibCell* lc = l.findCell(type);
    ASSERT_NE(lc, nullptr) << type;
    EXPECT_EQ(bound.libCell(cid), lc) << type;
    EXPECT_EQ(bound.seqClass(cid), gf().seqClass(type)) << type;
    EXPECT_DOUBLE_EQ(bound.area(cid), lc->area) << type;
    EXPECT_DOUBLE_EQ(bound.leakage(cid), lc->leakage) << type;
    for (std::size_t j = 0; j < lc->pins.size(); ++j) {
      EXPECT_EQ(bound.pinNet(cid, j), m.pinNet(cid, lc->pins[j].name))
          << type << "/" << lc->pins[j].name;
    }
    ++checked;
  });
  EXPECT_EQ(checked, m.numCells());
}

TEST(BoundModule, PassConstructionDoesNoStringLookups) {
  for (const bool arm : {false, true}) {
    nl::Design d;
    designs::buildCpu(d, gf(),
                      arm ? designs::armClassConfig() : designs::dlxConfig());
    nl::Module& m = *d.findModule(arm ? "armlike" : "dlx");

    lib::BoundModule bound(m, gf());
    // The binding itself did one findCell per distinct type; from here on
    // the counters must not move.
    const std::uint64_t cell_lookups = gf().library().lookupCount();
    const std::uint64_t pin_lookups = lib::detail::pinLookupCount();

    sim::Simulator s(bound);
    sta::Sta analysis(bound);

    EXPECT_EQ(gf().library().lookupCount(), cell_lookups)
        << "pass construction performed string-keyed cell lookups ("
        << (arm ? "arm" : "dlx") << ")";
    EXPECT_EQ(lib::detail::pinLookupCount(), pin_lookups)
        << "pass construction performed string-keyed pin lookups ("
        << (arm ? "arm" : "dlx") << ")";

    // Sanity: the models built from the binding are live.
    EXPECT_GT(analysis.criticalPathNs(), 0.0);
    EXPECT_EQ(&s.bound(), &bound);
    EXPECT_EQ(s.netLoads(), bound.netLoads());
  }
}

TEST(BoundModule, UnboundTypesAreReportedNotFatal) {
  nl::Design d;
  nl::Module& m = d.addModule("t");
  nl::NetId a = m.addNet("a");
  nl::NetId z = m.addNet("z");
  m.addCell("u1", "IV",
            {{"A", nl::PortDir::kInput, a}, {"Z", nl::PortDir::kOutput, z}});
  m.addCell("u2", "MYSTERY", {{"A", nl::PortDir::kInput, z}});

  lib::BoundModule bound(m, gf());
  EXPECT_EQ(bound.numUnboundCells(), 1u);
  EXPECT_NE(bound.typeOf(m.findCell("u1")), nullptr);
  EXPECT_EQ(bound.typeOf(m.findCell("u2")), nullptr);
  EXPECT_THROW((void)bound.typeOrThrow(m.findCell("u2")), lib::BindError);
  EXPECT_DOUBLE_EQ(bound.area(m.findCell("u2")), 0.0);
}

}  // namespace
