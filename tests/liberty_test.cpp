// Unit tests for boolean expressions, Liberty IO and gatefile classification.
#include <gtest/gtest.h>

#include "liberty/bool_expr.h"
#include "liberty/gatefile.h"
#include "liberty/liberty_io.h"
#include "liberty/stdlib90.h"

namespace lib = desync::liberty;

namespace {

TEST(BoolExpr, BasicOperators) {
  auto tt = [](const char* s) { return lib::BoolExpr::parse(s).truthTable(); };
  EXPECT_EQ(tt("A"), 0b10u);
  EXPECT_EQ(tt("A'"), 0b01u);
  EXPECT_EQ(tt("!A"), 0b01u);
  EXPECT_EQ(tt("(A*B)"), 0b1000u);
  EXPECT_EQ(tt("(A+B)"), 0b1110u);
  EXPECT_EQ(tt("(A^B)"), 0b0110u);
  EXPECT_EQ(tt("(A*B)'"), 0b0111u);
  EXPECT_EQ(tt("(A&B)"), 0b1000u);
  EXPECT_EQ(tt("(A|B)"), 0b1110u);
  EXPECT_EQ(tt("A B"), 0b1000u);  // juxtaposition = AND
}

TEST(BoolExpr, PrecedenceAndNesting) {
  // OR lowest, then XOR, then AND, then NOT.
  auto e = lib::BoolExpr::parse("A*B+C");
  // vars order: A,B,C; expect (A&B)|C
  std::uint64_t expect = 0;
  for (int row = 0; row < 8; ++row) {
    bool a = row & 1, b = row & 2, c = row & 4;
    if ((a && b) || c) expect |= 1ull << row;
  }
  EXPECT_EQ(e.truthTable(), expect);

  auto scan = lib::BoolExpr::parse("((SE*SI)+(SE'*D))");
  EXPECT_EQ(scan.vars().size(), 3u);
}

TEST(BoolExpr, EvalAndStr) {
  auto e = lib::BoolExpr::parse("((S*B)+(S'*A))");
  // vars: S, B, A
  EXPECT_TRUE(e.eval({true, true, false}));
  EXPECT_FALSE(e.eval({true, false, true}));
  EXPECT_TRUE(e.eval({false, false, true}));
  // str() must re-parse to the same function.
  auto e2 = lib::BoolExpr::parse(e.str());
  EXPECT_EQ(e.truthTable(), e2.truthTable());
}

TEST(BoolExpr, Literal) {
  std::string var;
  bool neg = false;
  EXPECT_TRUE(lib::BoolExpr::parse("IQ").isLiteral(&var, &neg));
  EXPECT_EQ(var, "IQ");
  EXPECT_FALSE(neg);
  EXPECT_TRUE(lib::BoolExpr::parse("CDN'").isLiteral(&var, &neg));
  EXPECT_EQ(var, "CDN");
  EXPECT_TRUE(neg);
  EXPECT_FALSE(lib::BoolExpr::parse("(A*B)").isLiteral(&var, &neg));
}

TEST(BoolExpr, Errors) {
  EXPECT_THROW(lib::BoolExpr::parse("(A*B"), lib::BoolExprError);
  EXPECT_THROW(lib::BoolExpr::parse("A )"), lib::BoolExprError);
  EXPECT_THROW(lib::BoolExpr::parse(""), lib::BoolExprError);
}

TEST(Liberty, LibraryRoundTrip) {
  lib::Library l1 = lib::makeStdLib90(lib::LibVariant::kHighSpeed);
  std::string text = lib::writeLiberty(l1);
  lib::Library l2 = lib::readLiberty(text);
  EXPECT_EQ(l2.name, l1.name);
  EXPECT_EQ(l2.size(), l1.size());

  const lib::LibCell& nd2 = l2.cell("ND2");
  EXPECT_EQ(nd2.kind, lib::CellKind::kCombinational);
  EXPECT_DOUBLE_EQ(nd2.area, 3.7);
  ASSERT_NE(nd2.findPin("Z"), nullptr);
  EXPECT_EQ(nd2.findPin("Z")->function.truthTable(),
            lib::BoolExpr::parse("(A*B)'").truthTable());
  EXPECT_EQ(nd2.findPin("Z")->arcs.size(), 2u);
  EXPECT_GT(nd2.findPin("Z")->arcs[0].intrinsic_rise, 0.0);

  const lib::LibCell& dff = l2.cell("DFF");
  EXPECT_EQ(dff.kind, lib::CellKind::kFlipFlop);
  ASSERT_TRUE(dff.seq.has_value());
  EXPECT_EQ(dff.seq->clocked_on, "CP");
  EXPECT_EQ(dff.seq->next_state, "D");

  const lib::LibCell& ld = l2.cell("LD");
  EXPECT_EQ(ld.kind, lib::CellKind::kLatch);
  EXPECT_EQ(ld.seq->enable, "G");
}

TEST(Liberty, SkipsUnknownGroupsAndComments) {
  const char* text = R"(
    /* header comment */
    library (mini) {
      operating_conditions (typ) { process : 1; temperature : 25; }
      wire_load ("small") { resistance : 0; }
      cell (INVX1) {
        area : 1.0;
        pin (A) { direction : input; capacitance : 0.002; }
        pin (Y) { direction : output; function : "A'";
          timing () { related_pin : "A"; intrinsic_rise : 0.03;
                      intrinsic_fall : 0.03; rise_resistance : 1.1;
                      fall_resistance : 1.0; }
        }
      }
    }
  )";
  lib::Library l = lib::readLiberty(text);
  EXPECT_EQ(l.name, "mini");
  EXPECT_EQ(l.size(), 1u);
  EXPECT_TRUE(l.cell("INVX1").findPin("Y")->function.isLiteral(nullptr,
                                                               nullptr));
}

TEST(Liberty, ParseErrors) {
  EXPECT_THROW(lib::readLiberty("cell (X) {}"), lib::LibertyParseError);
  EXPECT_THROW(lib::readLiberty("library (x) { cell (A) { area : oops; } }"),
               lib::LibertyParseError);
}

TEST(Liberty, LowLeakageVariantScales) {
  lib::Library hs = lib::makeStdLib90(lib::LibVariant::kHighSpeed);
  lib::Library ll = lib::makeStdLib90(lib::LibVariant::kLowLeakage);
  const lib::TimingArc& hs_arc = hs.cell("ND2").findPin("Z")->arcs[0];
  const lib::TimingArc& ll_arc = ll.cell("ND2").findPin("Z")->arcs[0];
  EXPECT_GT(ll_arc.intrinsic_rise, hs_arc.intrinsic_rise * 1.5);
  EXPECT_LT(ll.cell("ND2").leakage, hs.cell("ND2").leakage * 0.1);
  // Same footprint: area identical across variants.
  EXPECT_DOUBLE_EQ(ll.cell("ND2").area, hs.cell("ND2").area);
}

// ------------------------------------------------------------- Gatefile

const lib::Gatefile& gf() {
  static const lib::Library l = lib::makeStdLib90(lib::LibVariant::kHighSpeed);
  static const lib::Gatefile g(l);
  return g;
}

TEST(Gatefile, ClassifiesCombinational) {
  EXPECT_TRUE(gf().isCombinational("ND2"));
  EXPECT_FALSE(gf().isSequential("ND2"));
  EXPECT_TRUE(gf().isBuffer("BF"));
  EXPECT_FALSE(gf().isBuffer("IV"));
  EXPECT_TRUE(gf().isInverter("IV"));
  EXPECT_FALSE(gf().isInverter("ND2"));
}

TEST(Gatefile, ClassifiesPlainFlipFlop) {
  const lib::SeqClass* sc = gf().seqClass("DFF");
  ASSERT_NE(sc, nullptr);
  EXPECT_EQ(sc->clock_pin, "CP");
  EXPECT_FALSE(sc->clock_inverted);
  EXPECT_EQ(sc->data_pin, "D");
  EXPECT_EQ(sc->q_pin, "Q");
  EXPECT_EQ(sc->qn_pin, "QN");
  EXPECT_FALSE(sc->isScan());
  EXPECT_TRUE(sc->sync_pin.empty());
  EXPECT_TRUE(sc->async_clear_pin.empty());
}

TEST(Gatefile, ClassifiesAsyncControls) {
  const lib::SeqClass* r = gf().seqClass("DFFR");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->async_clear_pin, "CDN");
  EXPECT_TRUE(r->async_clear_active_low);
  const lib::SeqClass* s = gf().seqClass("DFFS");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->async_preset_pin, "SDN");
  EXPECT_TRUE(s->async_preset_active_low);
}

TEST(Gatefile, ClassifiesScanFlipFlopStructurally) {
  const lib::SeqClass* sc = gf().seqClass("SDFF");
  ASSERT_NE(sc, nullptr);
  EXPECT_TRUE(sc->isScan());
  EXPECT_EQ(sc->scan_enable, "SE");
  EXPECT_EQ(sc->scan_in, "SI");
  EXPECT_EQ(sc->data_pin, "D");
}

TEST(Gatefile, ClassifiesSyncReset) {
  const lib::SeqClass* sc = gf().seqClass("DFFSYNR");
  ASSERT_NE(sc, nullptr);
  EXPECT_EQ(sc->sync_pin, "RN");
  EXPECT_TRUE(sc->sync_active_low);
  EXPECT_FALSE(sc->sync_is_set);
  EXPECT_EQ(sc->data_pin, "D");
}

TEST(Gatefile, ClassifiesLatchAndClockGate) {
  const lib::SeqClass* ld = gf().seqClass("LD");
  ASSERT_NE(ld, nullptr);
  EXPECT_EQ(ld->clock_pin, "G");
  EXPECT_FALSE(ld->clock_inverted);
  EXPECT_EQ(ld->data_pin, "D");
  EXPECT_EQ(gf().simpleLatch(), "LD");

  const lib::SeqClass* cg = gf().seqClass("CGL");
  ASSERT_NE(cg, nullptr);
  EXPECT_EQ(cg->clock_pin, "CP");
  EXPECT_TRUE(cg->clock_inverted);  // enable latch transparent while CP low
  EXPECT_EQ(cg->data_pin, "E");
}

TEST(Gatefile, ProvidesPinDirections) {
  EXPECT_TRUE(gf().knownType("MUX21"));
  EXPECT_FALSE(gf().knownType("NOPE"));
  EXPECT_EQ(gf().pinDir("MUX21", "S"), desync::netlist::PortDir::kInput);
  EXPECT_EQ(gf().pinDir("MUX21", "Z"), desync::netlist::PortDir::kOutput);
  EXPECT_FALSE(gf().pinDir("MUX21", "XX").has_value());
  auto order = gf().pinOrder("ND2");
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "A");
  EXPECT_EQ(order[2], "Z");
}

TEST(Gatefile, TextDumpMentionsEveryCell) {
  std::string text = gf().toText();
  gf().library().forEachCell([&](const lib::LibCell& c) {
    EXPECT_NE(text.find("cell " + c.name + " "), std::string::npos)
        << c.name;
  });
  EXPECT_NE(text.find("scan_in=SI"), std::string::npos);
  EXPECT_NE(text.find("sync_reset=RN(low)"), std::string::npos);
}

}  // namespace

namespace {

TEST(Gatefile, TextFormatRoundTrips) {
  // The gatefile text — the artifact the original drdesync loaded — parses
  // back with identical classification for every cell.
  std::string text = gf().toText();
  lib::Gatefile::Text parsed = lib::Gatefile::parseText(text);
  EXPECT_EQ(parsed.library, gf().library().name);
  EXPECT_EQ(parsed.cells.size(), gf().library().size());
  gf().library().forEachCell([&](const lib::LibCell& c) {
    auto it = parsed.cells.find(c.name);
    ASSERT_NE(it, parsed.cells.end()) << c.name;
    EXPECT_NEAR(it->second.area, c.area, 1e-9) << c.name;
    const lib::SeqClass* sc = gf().seqClass(c.name);
    ASSERT_EQ(sc == nullptr, !it->second.seq.has_value()) << c.name;
    if (sc != nullptr) {
      const lib::SeqClass& p = *it->second.seq;
      EXPECT_EQ(p.clock_pin, sc->clock_pin) << c.name;
      EXPECT_EQ(p.clock_inverted, sc->clock_inverted) << c.name;
      EXPECT_EQ(p.data_pin, sc->data_pin) << c.name;
      EXPECT_EQ(p.scan_in, sc->scan_in) << c.name;
      EXPECT_EQ(p.scan_enable, sc->scan_enable) << c.name;
      EXPECT_EQ(p.sync_pin, sc->sync_pin) << c.name;
      EXPECT_EQ(p.sync_active_low, sc->sync_active_low) << c.name;
      EXPECT_EQ(p.async_clear_pin, sc->async_clear_pin) << c.name;
      EXPECT_EQ(p.async_clear_active_low, sc->async_clear_active_low)
          << c.name;
      EXPECT_EQ(p.async_preset_pin, sc->async_preset_pin) << c.name;
      EXPECT_EQ(p.q_pin, sc->q_pin) << c.name;
      EXPECT_EQ(p.qn_pin, sc->qn_pin) << c.name;
    }
    // Pin count and directions survive.
    EXPECT_EQ(it->second.pins.size(), c.pins.size()) << c.name;
  });
}

TEST(Gatefile, TextParserRejectsGarbage) {
  EXPECT_THROW(lib::Gatefile::parseText("pin D input\n"),
               lib::LibraryError);
  EXPECT_THROW(lib::Gatefile::parseText("cell X\n"), lib::LibraryError);
  EXPECT_THROW(lib::Gatefile::parseText("cell X comb\nbogus line here\n"),
               lib::LibraryError);
}

}  // namespace
