// Tests for C-elements, delay elements and latch controllers, including
// machine verification of hazard freedom / conformance / ring liveness.
#include <gtest/gtest.h>

#include "async/celement.h"
#include "async/controllers.h"
#include "async/delay_element.h"
#include "async/verify_adapter.h"
#include "liberty/stdlib90.h"
#include "netlist/flatten.h"
#include "stg/si_verify.h"

namespace async = desync::async;
namespace nl = desync::netlist;
namespace lib = desync::liberty;
namespace stg = desync::stg;

namespace {

const lib::Gatefile& gf() {
  static const lib::Library l = lib::makeStdLib90(lib::LibVariant::kHighSpeed);
  static const lib::Gatefile g(l);
  return g;
}

/// Closed C-element spec for n inputs: all inputs rise, output rises, all
/// fall, output falls.
stg::Stg cSpec(int n) {
  stg::Stg s;
  for (int i = 0; i < n; ++i) {
    s.addSignal("A" + std::to_string(i), stg::SignalKind::kInput);
  }
  s.addSignal("Z", stg::SignalKind::kOutput);
  for (int i = 0; i < n; ++i) {
    std::string a = "A" + std::to_string(i);
    s.connect(a + "+", "Z+", 0);
    s.connect("Z+", a + "-", 0);
    s.connect(a + "-", "Z-", 0);
    s.connect("Z-", a + "+", 1);
  }
  return s;
}

class CElementWidth : public ::testing::TestWithParam<int> {};

TEST_P(CElementWidth, TreeConformsToCSpec) {
  int n = GetParam();
  nl::Design d;
  nl::Module& m =
      async::ensureCElement(d, gf(), n, async::ResetKind::kNone);
  stg::SiCircuit c = async::toSiCircuit(m, gf());
  stg::SiResult r = stg::verifySpeedIndependent(c, cSpec(n));
  EXPECT_TRUE(r.ok()) << "C" << n << ": " << r.violation;
}

INSTANTIATE_TEST_SUITE_P(Widths, CElementWidth,
                         ::testing::Values(2, 3, 4, 5, 8, 10));

TEST(CElement, ResetLowVariantConforms) {
  nl::Design d;
  nl::Module& m = async::ensureCElement(d, gf(), 2, async::ResetKind::kLow);
  stg::SiCircuit c = async::toSiCircuit(m, gf());
  stg::SiResult r = stg::verifySpeedIndependent(c, cSpec(2));
  EXPECT_TRUE(r.ok()) << r.violation;
}

TEST(CElement, ResetHighVariantConforms) {
  // A C-element can only be stable at 1 when its inputs start high, so the
  // reset-high variant is verified against the phase-shifted spec: inputs
  // fall first, Z follows, then they rise again.
  nl::Design d;
  nl::Module& m = async::ensureCElement(d, gf(), 2, async::ResetKind::kHigh);
  stg::SiCircuit c =
      async::toSiCircuit(m, gf(), "RST", {{"A0", true}, {"A1", true}});
  stg::Stg spec;
  spec.addSignal("A0", stg::SignalKind::kInput);
  spec.addSignal("A1", stg::SignalKind::kInput);
  spec.addSignal("Z", stg::SignalKind::kOutput);
  for (const char* a : {"A0", "A1"}) {
    spec.connect(std::string(a) + "+", "Z+", 0);
    spec.connect("Z+", std::string(a) + "-", 1);  // start: inputs may fall
    spec.connect(std::string(a) + "-", "Z-", 0);
    spec.connect("Z-", std::string(a) + "+", 0);
  }
  stg::SiResult r = stg::verifySpeedIndependent(c, spec);
  EXPECT_TRUE(r.ok()) << r.violation;
}

TEST(CElement, RejectsBadFanin) {
  nl::Design d;
  EXPECT_THROW(async::ensureCElement(d, gf(), 1, async::ResetKind::kNone),
               nl::NetlistError);
  EXPECT_THROW(async::ensureCElement(d, gf(), 11, async::ResetKind::kNone),
               nl::NetlistError);
}

TEST(CElement, ModulesAreCached) {
  nl::Design d;
  nl::Module& a = async::ensureCElement(d, gf(), 3, async::ResetKind::kLow);
  nl::Module& b = async::ensureCElement(d, gf(), 3, async::ResetKind::kLow);
  EXPECT_EQ(&a, &b);
}

// ------------------------------------------------------- delay elements

TEST(DelayElement, FixedChainStructure) {
  nl::Design d;
  async::DelayElementSpec spec;
  spec.levels = 12;
  spec.mux_taps = 0;
  nl::Module& m = async::ensureDelayElement(d, gf(), spec);
  EXPECT_EQ(m.numCells(), 12u);  // one AN2 per level
  EXPECT_EQ(m.numPorts(), 2u);
  m.forEachCell(
      [&](nl::CellId id) { EXPECT_EQ(m.cellType(id), "AN2"); });
}

TEST(DelayElement, SymmetricUsesBuffers) {
  nl::Design d;
  async::DelayElementSpec spec;
  spec.levels = 5;
  spec.asymmetric = false;
  nl::Module& m = async::ensureDelayElement(d, gf(), spec);
  m.forEachCell([&](nl::CellId id) { EXPECT_EQ(m.cellType(id), "BF"); });
}

TEST(DelayElement, MuxedVariantHasSelects) {
  nl::Design d;
  async::DelayElementSpec spec;
  spec.levels = 24;
  spec.mux_taps = 8;
  nl::Module& m = async::ensureDelayElement(d, gf(), spec);
  // 24 AN2 + 7 MUX21.
  EXPECT_EQ(m.numCells(), 31u);
  EXPECT_TRUE(m.findPort("S0").valid());
  EXPECT_TRUE(m.findPort("S2").valid());
  EXPECT_TRUE(m.findPort("Z").valid());
}

TEST(DelayElement, RejectsBadSpecs) {
  nl::Design d;
  async::DelayElementSpec bad;
  bad.levels = 0;
  EXPECT_THROW(async::ensureDelayElement(d, gf(), bad), nl::NetlistError);
  bad.levels = 10;
  bad.mux_taps = 3;
  EXPECT_THROW(async::ensureDelayElement(d, gf(), bad), nl::NetlistError);
}

// --------------------------------------------------------- controllers

TEST(Controller, SemiDecoupledConformsToSpec) {
  nl::Design d;
  nl::Module& m = async::ensureController(
      d, gf(), async::ControllerKind::kSemiDecoupled,
      async::ControllerReset::kEmpty);
  stg::SiCircuit c = async::toSiCircuit(m, gf());
  stg::SiResult r = stg::verifySpeedIndependent(c, async::semiDecoupledSpec());
  EXPECT_TRUE(r.ok()) << r.violation;
  EXPECT_GT(r.states, 10u);
}

TEST(Controller, SimpleConformsToSpec) {
  nl::Design d;
  nl::Module& m =
      async::ensureController(d, gf(), async::ControllerKind::kSimple,
                              async::ControllerReset::kEmpty);
  stg::SiCircuit c = async::toSiCircuit(m, gf());
  stg::SiResult r =
      stg::verifySpeedIndependent(c, async::simpleControllerSpec());
  EXPECT_TRUE(r.ok()) << r.violation;
}

TEST(Controller, CellsAreSizeOnly) {
  nl::Design d;
  nl::Module& m = async::ensureController(
      d, gf(), async::ControllerKind::kSemiDecoupled,
      async::ControllerReset::kFull);
  m.forEachCell(
      [&](nl::CellId id) { EXPECT_TRUE(m.cell(id).size_only); });
}

/// Closed-ring verification: no spec signals; the verifier then requires
/// perpetual progress (no quiescent state) and semi-modularity throughout.
stg::SiResult verifyRing(async::ControllerKind kind, int pairs) {
  nl::Design d;
  nl::Module& ring = async::buildControllerRing(d, gf(), kind, pairs);
  stg::SiCircuit c = async::toSiCircuit(ring, gf());
  stg::Stg closed_spec;  // empty: fully closed system
  return stg::verifySpeedIndependent(c, closed_spec);
}

TEST(Controller, SemiDecoupledRingOfOnePairIsLive) {
  stg::SiResult r = verifyRing(async::ControllerKind::kSemiDecoupled, 1);
  EXPECT_TRUE(r.deadlock_free) << r.violation;
  EXPECT_TRUE(r.hazard_free) << r.violation;
}

TEST(Controller, SemiDecoupledRingOfTwoPairsIsLive) {
  stg::SiResult r = verifyRing(async::ControllerKind::kSemiDecoupled, 2);
  EXPECT_TRUE(r.deadlock_free) << r.violation;
  EXPECT_TRUE(r.hazard_free) << r.violation;
}

// Note: a 3-pair ring also verifies (≈1M product states, ~1 min); it runs in
// bench_ablation_controllers rather than in the default test suite.

TEST(Controller, SimpleRingOfOnePairDeadlocks) {
  // The classic result motivating decoupled controllers: a Muller-C ring of
  // two stages holding one token cannot advance.
  stg::SiResult r = verifyRing(async::ControllerKind::kSimple, 1);
  EXPECT_FALSE(r.deadlock_free);
}

TEST(Controller, FullyDecoupledRingsAreLiveAndHazardFree) {
  // The fully-decoupled controller is speed-independent sound as a control
  // network (its flow-equivalence failure on datapaths is a *protocol*
  // property, exercised in core_test).
  // One pair here (~1k states); the 938k-state two-pair verification runs
  // in bench_ablation_controllers.
  stg::SiResult r = verifyRing(async::ControllerKind::kFullyDecoupled, 1);
  EXPECT_TRUE(r.deadlock_free) << r.violation;
  EXPECT_TRUE(r.hazard_free) << r.violation;
}

TEST(Controller, SimpleRingWithSingleTokenIsLive) {
  // Sanity for the ablation: simple (Muller) controllers do work in rings
  // with a single data token and enough bubbles; the desync master/slave
  // occupancy pattern is what kills them.
  nl::Design d;
  nl::Module& ring = async::buildControllerRing(
      d, gf(), async::ControllerKind::kSimple,
      {false, false, false, true}, "RING_SIMPLE_1TOKEN");
  stg::SiCircuit c = async::toSiCircuit(ring, gf());
  stg::Stg closed_spec;
  stg::SiResult r = stg::verifySpeedIndependent(c, closed_spec);
  EXPECT_TRUE(r.deadlock_free) << r.violation;
}

}  // namespace
