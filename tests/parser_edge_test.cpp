// Edge-case tests for the Verilog reader/writer, Liberty parser and the
// STA/simulator cross-properties.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>

#include "liberty/gatefile.h"
#include "liberty/liberty_io.h"
#include "liberty/stdlib90.h"
#include "netlist/verilog.h"
#include "sim/simulator.h"
#include "sta/sdc.h"
#include "sta/sta.h"

namespace nl = desync::netlist;
namespace lib = desync::liberty;
namespace sim = desync::sim;
namespace sta = desync::sta;

using sim::Val;

namespace {

const lib::Gatefile& gf() {
  static const lib::Library l = lib::makeStdLib90(lib::LibVariant::kHighSpeed);
  static const lib::Gatefile g(l);
  return g;
}

// --------------------------------------------------------- verilog edges

TEST(VerilogEdge, PartSelectAndConcat) {
  const char* src = R"(
    module top (a, z);
      input [3:0] a;
      output [3:0] z;
      wire [3:0] t;
      assign t = {a[1:0], a[3:2]};
      assign z = t;
    endmodule
  )";
  nl::Design d;
  nl::readVerilog(d, src, gf());
  // z[3] <- t[3] <- a[1] (concat is MSB-first: {a[1:0], a[3:2]} puts a[1]
  // at the top).
  nl::Module& m = d.top();
  nl::PortId z3 = m.findPort("z[3]");
  ASSERT_TRUE(z3.valid());
  EXPECT_EQ(m.netName(m.port(z3).net), "a[1]");
}

TEST(VerilogEdge, PositionalConnectionToSubmodule) {
  const char* src = R"(
    module leaf (i, o);
      input i;
      output o;
      IV g (.A(i), .Z(o));
    endmodule
    module top (a, z);
      input a;
      output z;
      leaf l1 (a, z);
    endmodule
  )";
  nl::Design d;
  nl::readVerilog(d, src, gf(), {}, "top");
  nl::CellId l1 = d.top().findCell("l1");
  ASSERT_TRUE(l1.valid());
  EXPECT_EQ(d.top().pinNet(l1, "i"), d.top().findNet("a"));
  EXPECT_EQ(d.top().pinNet(l1, "o"), d.top().findNet("z"));
}

TEST(VerilogEdge, ParameterListsAreSkipped) {
  const char* src = R"(
    module leaf (i, o);
      input i; output o;
      IV g (.A(i), .Z(o));
    endmodule
    module top (a, z);
      input a; output z;
      leaf #(.WIDTH(8), .DEPTH(2)) l1 (.i(a), .o(z));
    endmodule
  )";
  nl::Design d;
  nl::readVerilog(d, src, gf(), {}, "top");
  EXPECT_TRUE(d.top().findCell("l1").valid());
}

TEST(VerilogEdge, SupplyNets) {
  const char* src = R"(
    module top (z);
      output z;
      supply1 vdd;
      supply0 gnd;
      AN2 u (.A(vdd), .B(gnd), .Z(z));
    endmodule
  )";
  nl::Design d;
  nl::readVerilog(d, src, gf());
  EXPECT_EQ(d.top().net(d.top().findNet("vdd")).driver.kind,
            nl::TermKind::kConst1);
  EXPECT_EQ(d.top().net(d.top().findNet("gnd")).driver.kind,
            nl::TermKind::kConst0);
}

TEST(VerilogEdge, MultiBitConstantInConcat) {
  const char* src = R"(
    module top (z);
      output [3:0] z;
      assign z = {2'b10, 2'b01};
    endmodule
  )";
  nl::Design d;
  nl::readVerilog(d, src, gf());
  // z = 4'b1001 (MSB-first concat).
  auto bit = [&](int i) {
    return d.top().net(d.top().port(d.top().findPort(
        "z[" + std::to_string(i) + "]")).net).driver.kind;
  };
  EXPECT_EQ(bit(3), nl::TermKind::kConst1);
  EXPECT_EQ(bit(2), nl::TermKind::kConst0);
  EXPECT_EQ(bit(1), nl::TermKind::kConst0);
  EXPECT_EQ(bit(0), nl::TermKind::kConst1);
}

TEST(VerilogEdge, CommentsAndDirectives) {
  const char* src =
      "`timescale 1ns/1ps\n"
      "/* block\n comment */\n"
      "module top (a, z); // line comment\n"
      "  input a; output z;\n"
      "  IV g (.A(a), .Z(z));\n"
      "endmodule\n";
  nl::Design d;
  nl::readVerilog(d, src, gf());
  EXPECT_EQ(d.top().numCells(), 1u);
}

TEST(VerilogEdge, UnconnectedAndImplicitNets) {
  const char* src = R"(
    module top (a, z);
      input a; output z;
      ND2 u1 (.A(a), .B(implicit_net), .Z(z));
      IV u2 (.A(a), .Z(implicit_net));
    endmodule
  )";
  nl::Design d;
  nl::readVerilog(d, src, gf());
  EXPECT_TRUE(d.top().findNet("implicit_net").valid());
  EXPECT_TRUE(d.top().checkInvariants().empty());
}

TEST(VerilogEdge, WriterEscapesHierarchicalNames) {
  nl::Design d;
  nl::Module& m = d.addModule("top");
  nl::NetId a = m.addNet("ctl0/u_g/z");  // slash needs escaping
  nl::NetId z = m.addNet("z");
  m.addPort("z", nl::PortDir::kOutput, z);
  m.addCell("ctl0/u_g", "IV",
            {{"A", nl::PortDir::kInput, z}, {"Z", nl::PortDir::kOutput, a}});
  std::string text = nl::writeVerilog(m);
  EXPECT_NE(text.find("\\ctl0/u_g "), std::string::npos);
  // Round-trips (escaped names are simplified on read by default).
  nl::Design d2;
  nl::readVerilog(d2, text, gf());
  EXPECT_EQ(d2.top().numCells(), 1u);
}

// --------------------------------------------------------- liberty edges

TEST(LibertyEdge, LineContinuationsAndEscapes) {
  const char* text =
      "library (x) {\n"
      "  cell (B1) {\n"
      "    area : 1.0;\n"
      "    pin (A) { direction : input; capacitance : 0.001; }\n"
      "    pin (Z) { direction : output; function : \"A\"; }\n"
      "  }\n"
      "}\n";
  lib::Library l = lib::readLiberty(text);
  EXPECT_EQ(l.size(), 1u);
  lib::Gatefile g(l);
  EXPECT_TRUE(g.isBuffer("B1"));
}

TEST(LibertyEdge, GatefileRoundTripsThroughLibertyText) {
  // Library -> text -> parse -> gatefile must classify identically.
  lib::Library l1 = lib::makeStdLib90(lib::LibVariant::kHighSpeed);
  lib::Library l2 = lib::readLiberty(lib::writeLiberty(l1));
  lib::Gatefile g1(l1), g2(l2);
  l1.forEachCell([&](const lib::LibCell& c) {
    EXPECT_EQ(g1.kind(c.name), g2.kind(c.name)) << c.name;
    const lib::SeqClass* s1 = g1.seqClass(c.name);
    const lib::SeqClass* s2 = g2.seqClass(c.name);
    ASSERT_EQ(s1 == nullptr, s2 == nullptr) << c.name;
    if (s1 != nullptr) {
      EXPECT_EQ(s1->clock_pin, s2->clock_pin) << c.name;
      EXPECT_EQ(s1->data_pin, s2->data_pin) << c.name;
      EXPECT_EQ(s1->scan_enable, s2->scan_enable) << c.name;
      EXPECT_EQ(s1->sync_pin, s2->sync_pin) << c.name;
      EXPECT_EQ(s1->async_clear_pin, s2->async_clear_pin) << c.name;
    }
  });
}

// ------------------------------------------- STA vs simulation property

/// Builds a pseudo-random combinational DAG over the library gates and
/// checks that the simulator's settle time never exceeds the STA critical
/// path (conservativeness property of static analysis).
class StaConservative : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StaConservative, SimSettleWithinStaBound) {
  std::uint64_t seed = GetParam();
  auto rnd = [&]() {
    seed = seed * 6364136223846793005ull + 1442695040888963407ull;
    return seed >> 33;
  };
  const std::vector<std::string> gates = {"IV", "ND2",  "NR2",   "AN2",
                                          "OR2", "EO",  "AOI21", "MUX21"};
  nl::Design d;
  nl::Module& m = d.addModule("rand");
  std::vector<nl::NetId> pool;
  for (int i = 0; i < 4; ++i) {
    nl::NetId n = m.addNet("in" + std::to_string(i));
    m.addPort("in" + std::to_string(i), nl::PortDir::kInput, n);
    pool.push_back(n);
  }
  for (int g = 0; g < 40; ++g) {
    const std::string& type = gates[rnd() % gates.size()];
    const lib::LibCell& cell = gf().library().cell(type);
    std::vector<nl::Module::PinInit> pins;
    for (const std::string& in : cell.inputPins()) {
      pins.push_back({in, nl::PortDir::kInput,
                      pool[rnd() % pool.size()]});
    }
    nl::NetId out = m.addNet("g" + std::to_string(g));
    pins.push_back({"Z", nl::PortDir::kOutput, out});
    m.addCell("u" + std::to_string(g), type, pins);
    pool.push_back(out);
  }
  m.addPort("out", nl::PortDir::kOutput, pool.back());

  sta::Sta analysis(m, gf());

  sim::Simulator s(m, gf());
  // Per-net settle instrumentation: every observed transition must respect
  // the net's static arrival time.
  std::map<std::string, sim::Time> settle;
  m.forEachNet([&](nl::NetId id) {
    std::string name(m.netName(id));
    s.watchNet(name,
               [&settle, name](sim::Time t, Val) { settle[name] = t; });
  });
  for (int i = 0; i < 4; ++i) {
    s.setInput("in" + std::to_string(i), Val::k0);
  }
  s.runUntilStable(s.now() + sim::nsToPs(1000));
  for (int trial = 0; trial < 12; ++trial) {
    settle.clear();
    sim::Time start = s.now();
    for (int i = 0; i < 4; ++i) {
      s.setInput("in" + std::to_string(i),
                 sim::fromBool((rnd() & 1) != 0));
    }
    s.runUntilStable(start + sim::nsToPs(1000));
    for (const auto& [name, t] : settle) {
      const double settle_ns = sim::psToNs(t - start);
      auto arrival = analysis.arrivalNs(name);
      ASSERT_TRUE(arrival.has_value()) << name;
      EXPECT_LE(settle_ns, *arrival + 0.01)
          << "net " << name << " settled later than its STA arrival";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StaConservative,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 42));

// ------------------------------------------------- malformed-input edges

TEST(SdcEdge, MalformedPeriodReportsSourceLine) {
  const std::string text =
      "# constraints\n"
      "create_clock -name c -period 1.2x [get_ports {clk}]\n";
  try {
    sta::SdcFile::parse(text);
    FAIL() << "expected SdcError";
  } catch (const sta::SdcError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("SDC line 2"), std::string::npos) << what;
    EXPECT_NE(what.find("1.2x"), std::string::npos) << what;
  }
}

TEST(SdcEdge, MissingPeriodValueRejected) {
  EXPECT_THROW(sta::SdcFile::parse("create_clock -name c -period\n"),
               sta::SdcError);
}

TEST(SdcEdge, WellFormedFileStillParses) {
  sta::SdcFile sdc = sta::SdcFile::parse(
      "create_clock -name c -period 2.5 [get_ports {clk}]\n");
  ASSERT_EQ(sdc.clocks.size(), 1u);
  EXPECT_DOUBLE_EQ(sdc.clocks[0].period_ns, 2.5);
}

TEST(LibertyEdge, MalformedNumericAttributeReportsSourceLine) {
  const char* text =
      "library (x) {\n"
      "  cell (B1) {\n"
      "    area : bogus;\n"
      "  }\n"
      "}\n";
  try {
    lib::readLiberty(text);
    FAIL() << "expected LibertyParseError";
  } catch (const lib::LibertyParseError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("liberty:3"), std::string::npos) << what;
    EXPECT_NE(what.find("area"), std::string::npos) << what;
  }
}

TEST(LibertyEdge, GluedUnitSuffixRejected) {
  EXPECT_THROW(lib::readLiberty("library (x) {\n"
                                "  cell (B1) { area : 1.0x; }\n"
                                "}\n"),
               lib::LibertyParseError);
}

TEST(LibertyEdge, NumericAttributeWithUnitTailAccepted) {
  lib::Library l = lib::readLiberty(
      "library (x) {\n"
      "  default_wire_load_capacitance : 0.002 pF;\n"
      "}\n");
  EXPECT_DOUBLE_EQ(l.default_wire_cap, 0.002);
}

TEST(LibertyEdge, GatefileBadAreaReportsSourceLine) {
  try {
    lib::Gatefile::parseText("# library=std90\ncell N2 ND2 area=12x\n");
    FAIL() << "expected LibraryError";
  } catch (const lib::LibraryError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("gatefile:2"), std::string::npos) << what;
    EXPECT_NE(what.find("12x"), std::string::npos) << what;
  }
}

TEST(VerilogEdge, HugeConstantWidthRejected) {
  const char* src =
      "module top (z);\n"
      "  output z;\n"
      "  assign z = 1000000'b0;\n"
      "endmodule\n";
  nl::Design d;
  try {
    nl::readVerilog(d, src, gf());
    FAIL() << "expected VerilogError";
  } catch (const nl::VerilogError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("width"), std::string::npos) << what;
    EXPECT_NE(what.find("verilog:3"), std::string::npos) << what;
  }
}

TEST(VerilogEdge, ConstantDigitOutOfRadixRejected) {
  const char* src = "module top (z); output z; assign z = 4'b2; endmodule\n";
  nl::Design d;
  EXPECT_THROW(nl::readVerilog(d, src, gf()), nl::VerilogError);
}

TEST(VerilogEdge, ConstantBadBaseRejected) {
  const char* src = "module top (z); output z; assign z = 8'q0; endmodule\n";
  nl::Design d;
  EXPECT_THROW(nl::readVerilog(d, src, gf()), nl::VerilogError);
}

TEST(VerilogEdge, ConstantMissingBaseRejected) {
  const char* src = "module top (z); output z; assign z = 8'; endmodule\n";
  nl::Design d;
  EXPECT_THROW(nl::readVerilog(d, src, gf()), nl::VerilogError);
}

TEST(VerilogEdge, ConstantValueOverflowRejected) {
  // 17 hex digits = 68 value bits: more than the 64-bit constant value the
  // gate-level reader supports, even though the declared width would fit.
  const char* src =
      "module top (z);\n"
      "  output z;\n"
      "  assign z = 72'hFFFFFFFFFFFFFFFFF;\n"
      "endmodule\n";
  nl::Design d;
  EXPECT_THROW(nl::readVerilog(d, src, gf()), nl::VerilogError);
}

TEST(VerilogEdge, GarbageWidthPrefixRejected) {
  // `x'b0` lexes as identifier `x` followed by the tick literal — it must
  // surface as a parse error, not silently read as a constant.
  const char* src = "module top (z); output z; assign z = x'b0; endmodule\n";
  nl::Design d;
  EXPECT_THROW(nl::readVerilog(d, src, gf()), nl::VerilogError);
}

TEST(VerilogEdge, WideZeroPaddedConstantParses) {
  // Widths above 64 are fine as long as the value itself fits in 64 bits;
  // the upper bits read as constant zero.
  const char* src =
      "module top (z);\n"
      "  output [69:0] z;\n"
      "  assign z = 70'h5;\n"
      "endmodule\n";
  nl::Design d;
  nl::readVerilog(d, src, gf());
  nl::Module& m = d.top();
  EXPECT_TRUE(m.findPort("z[69]").valid());
  EXPECT_TRUE(m.findPort("z[0]").valid());
}

}  // namespace
