// Tests for the drdesync core: grouping, dependency graph, flip-flop
// substitution, control network and the full desynchronization flow with
// flow-equivalence checked in simulation.
#include <gtest/gtest.h>

#include "core/desync.h"
#include "designs/cpu.h"
#include "designs/small.h"
#include "liberty/stdlib90.h"
#include "netlist/flatten.h"
#include "netlist/verilog.h"
#include "sim/flow_equivalence.h"
#include "sim/simulator.h"

namespace nl = desync::netlist;
namespace lib = desync::liberty;
namespace core = desync::core;
namespace sim = desync::sim;
namespace designs = desync::designs;

using sim::Val;

namespace {

const lib::Gatefile& gf() {
  static const lib::Library l = lib::makeStdLib90(lib::LibVariant::kHighSpeed);
  static const lib::Gatefile g(l);
  return g;
}

nl::Design parse(const char* src) {
  nl::Design d;
  nl::readVerilog(d, src, gf());
  return d;
}

// ------------------------------------------------------------- grouping

TEST(Grouping, TwoIndependentCloudsSplit) {
  nl::Design d = parse(R"(
    module top (clk, rst_n);
      input clk, rst_n;
      wire q1, nq1, q2, nq2;
      IV i1 (.A(q1), .Z(nq1));
      DFFR r1 (.D(nq1), .CP(clk), .CDN(rst_n), .Q(q1));
      IV i2 (.A(q2), .Z(nq2));
      DFFR r2 (.D(nq2), .CP(clk), .CDN(rst_n), .Q(q2));
    endmodule
  )");
  core::Regions r = core::groupRegions(d.top(), gf());
  EXPECT_EQ(r.n_groups, 3);  // group 0 + two regions
  nl::CellId r1 = d.top().findCell("r1");
  nl::CellId r2 = d.top().findCell("r2");
  EXPECT_NE(r.groupOf(r1), r.groupOf(r2));
  EXPECT_GT(r.groupOf(r1), 0);
}

TEST(Grouping, SharedCloudMerges) {
  nl::Design d = parse(R"(
    module top (clk, rst_n);
      input clk, rst_n;
      wire q1, q2, x, y;
      ND2 n1 (.A(q1), .B(q2), .Z(x));
      IV i1 (.A(x), .Z(y));
      DFFR r1 (.D(x), .CP(clk), .CDN(rst_n), .Q(q1));
      DFFR r2 (.D(y), .CP(clk), .CDN(rst_n), .Q(q2));
    endmodule
  )");
  core::Regions r = core::groupRegions(d.top(), gf());
  EXPECT_EQ(r.groupOf(d.top().findCell("r1")),
            r.groupOf(d.top().findCell("r2")));
}

TEST(Grouping, InputRegistersFallIntoGroup0) {
  nl::Design d = parse(R"(
    module top (clk, rst_n, din);
      input clk, rst_n, din;
      wire q0, q1, nq1;
      DFFR rin (.D(din), .CP(clk), .CDN(rst_n), .Q(q0));
      IV i1 (.A(q0), .Z(nq1));
      DFFR r1 (.D(nq1), .CP(clk), .CDN(rst_n), .Q(q1));
    endmodule
  )");
  core::Regions r = core::groupRegions(d.top(), gf());
  EXPECT_EQ(r.groupOf(d.top().findCell("rin")), 0);
  EXPECT_GT(r.groupOf(d.top().findCell("r1")), 0);
}

TEST(Grouping, FfChainsFollowTheirDriver) {
  // r2 stores history of r1 (no logic between): same region (step 2).
  nl::Design d = parse(R"(
    module top (clk, rst_n);
      input clk, rst_n;
      wire q1, nq1, q2;
      IV i1 (.A(q1), .Z(nq1));
      DFFR r1 (.D(nq1), .CP(clk), .CDN(rst_n), .Q(q1));
      DFFR r2 (.D(q1), .CP(clk), .CDN(rst_n), .Q(q2));
    endmodule
  )");
  core::Regions r = core::groupRegions(d.top(), gf());
  EXPECT_EQ(r.groupOf(d.top().findCell("r1")),
            r.groupOf(d.top().findCell("r2")));
}

TEST(Grouping, BusHeuristicMergesColumns) {
  // Two independent mux columns driving bits of the same bus.
  const char* src = R"(
    module top (clk, rst_n, s);
      input clk, rst_n, s;
      wire [1:0] q;
      wire m0, m1;
      MUX21 x0 (.A(q[0]), .B(rst_n), .S(s), .Z(m0));
      MUX21 x1 (.A(q[1]), .B(rst_n), .S(s), .Z(m1));
      DFFR b0 (.D(m0), .CP(clk), .CDN(rst_n), .Q(q[0]));
      DFFR b1 (.D(m1), .CP(clk), .CDN(rst_n), .Q(q[1]));
    endmodule
  )";
  {
    nl::Design d = parse(src);
    core::GroupingOptions opt;
    opt.bus_heuristic = true;
    core::Regions r = core::groupRegions(d.top(), gf(), opt);
    EXPECT_EQ(r.groupOf(d.top().findCell("b0")),
              r.groupOf(d.top().findCell("b1")));
  }
  {
    nl::Design d = parse(src);
    core::GroupingOptions opt;
    opt.bus_heuristic = false;
    core::Regions r = core::groupRegions(d.top(), gf(), opt);
    EXPECT_NE(r.groupOf(d.top().findCell("b0")),
              r.groupOf(d.top().findCell("b1")));
  }
}

TEST(Grouping, FalsePathNetsAreIgnored) {
  // A global "mode" net touching both clouds would merge them; marking it
  // as a false path keeps them separate (thesis §3.2.2 "False Paths").
  const char* src = R"(
    module top (clk, rst_n, mode);
      input clk, rst_n, mode;
      wire modeb, q1, t1, q2, t2;
      IV gm (.A(mode), .Z(modeb));
      ND2 g1 (.A(q1), .B(modeb), .Z(t1));
      DFFR r1 (.D(t1), .CP(clk), .CDN(rst_n), .Q(q1));
      ND2 g2 (.A(q2), .B(modeb), .Z(t2));
      DFFR r2 (.D(t2), .CP(clk), .CDN(rst_n), .Q(q2));
    endmodule
  )";
  {
    nl::Design d = parse(src);
    core::Regions r = core::groupRegions(d.top(), gf());
    EXPECT_EQ(r.groupOf(d.top().findCell("r1")),
              r.groupOf(d.top().findCell("r2")));
  }
  {
    nl::Design d = parse(src);
    core::GroupingOptions opt;
    opt.false_path_nets = {"modeb"};
    core::Regions r = core::groupRegions(d.top(), gf(), opt);
    EXPECT_NE(r.groupOf(d.top().findCell("r1")),
              r.groupOf(d.top().findCell("r2")));
  }
}

TEST(Grouping, CleaningPreventsFalseMerging) {
  // A shared buffer chain between two clouds (Fig 3.5): with cleaning the
  // clouds stay separate; without, the buffer ties them together.
  const char* src = R"(
    module top (clk, rst_n);
      input clk, rst_n;
      wire q1, nq1, q2, nq2, qb;
      IV i1 (.A(q1), .Z(nq1));
      DFFR r1 (.D(nq1), .CP(clk), .CDN(rst_n), .Q(q1));
      BF  b1 (.A(q1), .Z(qb));
      IV i2 (.A(qb), .Z(nq2));
      DFFR r2 (.D(nq2), .CP(clk), .CDN(rst_n), .Q(q2));
    endmodule
  )";
  nl::Design d = parse(src);
  core::GroupingOptions opt;
  opt.clean_logic = true;
  core::Regions r = core::groupRegions(d.top(), gf(), opt);
  // The buffer disappears entirely.
  EXPECT_FALSE(d.top().findCell("b1").valid());
}

TEST(Grouping, ManualPrefixGrouping) {
  nl::Design d;
  designs::buildPipe2(d, gf(), 4);
  nl::Module& m = *d.findModule("pipe2");
  core::Regions r = core::groupRegionsBySeqPrefix(
      m, gf(), {{"cnt_"}, {"acc_"}});
  EXPECT_EQ(r.n_groups, 3);
  EXPECT_EQ(r.seq_cells[1].size(), 4u);
  EXPECT_EQ(r.seq_cells[2].size(), 4u);
  // The adders landed with their registers.
  EXPECT_FALSE(r.comb_cells[1].empty());
  EXPECT_FALSE(r.comb_cells[2].empty());
}

TEST(Grouping, DlxAutoRegionsFollowPipelineStructure) {
  nl::Design d;
  designs::buildCpu(d, gf(), designs::dlxConfig());
  nl::Module& m = *d.findModule("dlx");
  core::Regions r = core::groupRegions(m, gf());
  // The generator's sharing granularity yields ~a dozen regions that
  // refine the 4 pipeline stages; pipeline registers of one stage must not
  // mix with another stage's.
  EXPECT_GE(r.n_groups, 5);
  EXPECT_LE(r.n_groups, 20);
  int g_pc = r.groupOf(m.findCell("pc_r0"));
  int g_alu = r.groupOf(m.findCell("exmem_alu_r0"));
  int g_rf = r.groupOf(m.findCell("rf_w0_r0"));
  EXPECT_NE(g_pc, g_alu);
  EXPECT_NE(g_alu, g_rf);
}

// ---------------------------------------------------------- dependency

TEST(DependencyGraph, Pipe2Edges) {
  nl::Design d;
  designs::buildPipe2(d, gf(), 4);
  nl::Module& m = *d.findModule("pipe2");
  core::Regions r =
      core::groupRegionsBySeqPrefix(m, gf(), {{"cnt_"}, {"acc_"}});
  core::DependencyGraph g = core::buildDependencyGraph(m, gf(), r);
  // counter: self-loop only; accumulator: counter + self.
  EXPECT_EQ(g.preds[1], (std::vector<int>{1}));
  EXPECT_EQ(g.preds[2], (std::vector<int>{1, 2}));
  EXPECT_EQ(g.succs[1], (std::vector<int>{1, 2}));
}

// ------------------------------------------------------- substitution

TEST(Substitution, PlainFlipFlopBecomesLatchPair) {
  nl::Design d = parse(R"(
    module top (clk, rst_n);
      input clk, rst_n;
      wire q, nq;
      IV i1 (.A(q), .Z(nq));
      DFFR r1 (.D(nq), .CP(clk), .CDN(rst_n), .Q(q));
    endmodule
  )");
  core::Regions r = core::groupRegions(d.top(), gf());
  core::SubstitutionResult s =
      core::substituteFlipFlops(d.top(), gf(), r);
  EXPECT_EQ(s.ffs_replaced, 1u);
  EXPECT_FALSE(d.top().findCell("r1").valid());
  EXPECT_TRUE(d.top().findCell("r1_Lm").valid());
  EXPECT_TRUE(d.top().findCell("r1_Ls").valid());
  EXPECT_EQ(d.top().cellType(d.top().findCell("r1_Lm")), "LD");
  EXPECT_TRUE(d.top().checkInvariants().empty());
  // Async clear produced enable-forcing glue.
  EXPECT_GT(s.glue_cells_added, 0u);
}

TEST(Substitution, ScanFlipFlopGetsMux) {
  nl::Design d = parse(R"(
    module top (clk, si, se, din);
      input clk, si, se, din;
      wire q, t;
      AN2 a1 (.A(q), .B(din), .Z(t));
      SDFF r1 (.D(t), .SI(si), .SE(se), .CP(clk), .Q(q));
    endmodule
  )");
  core::Regions r = core::groupRegions(d.top(), gf());
  core::substituteFlipFlops(d.top(), gf(), r);
  EXPECT_TRUE(d.top().findCell("r1_scmux").valid());
  EXPECT_EQ(d.top().cellType(d.top().findCell("r1_scmux")), "MUX21");
  EXPECT_TRUE(d.top().checkInvariants().empty());
}

TEST(Substitution, SyncResetGetsAndGate) {
  nl::Design d = parse(R"(
    module top (clk, rn);
      input clk, rn;
      wire q, nq;
      IV i1 (.A(q), .Z(nq));
      DFFSYNR r1 (.D(nq), .RN(rn), .CP(clk), .Q(q));
    endmodule
  )");
  core::Regions r = core::groupRegions(d.top(), gf());
  core::substituteFlipFlops(d.top(), gf(), r);
  EXPECT_TRUE(d.top().findCell("r1_syr").valid());
  EXPECT_EQ(d.top().cellType(d.top().findCell("r1_syr")), "AN2");
  EXPECT_TRUE(d.top().checkInvariants().empty());
}

TEST(Substitution, QnDrivenThroughInverter) {
  nl::Design d = parse(R"(
    module top (clk, rst_n);
      input clk, rst_n;
      wire q, qn;
      DFFR r1 (.D(qn), .CP(clk), .CDN(rst_n), .Q(q), .QN(qn));
    endmodule
  )");
  core::Regions r = core::groupRegions(d.top(), gf());
  core::substituteFlipFlops(d.top(), gf(), r);
  EXPECT_TRUE(d.top().findCell("r1_qninv").valid());
  EXPECT_TRUE(d.top().checkInvariants().empty());
}

// -------------------------------------------------------- full flow

struct FlowResult {
  core::DesyncResult desync;
  sim::FlowEqReport fe;
  double eff_period_ns = 0;
};

/// Clones, desynchronizes, simulates both versions and checks
/// flow-equivalence.  `cycles` synchronous clock cycles at 2x the minimum
/// period; the desynchronized version free-runs for a comparable span.
FlowResult runFlow(nl::Design& d, const std::string& top, int cycles,
                   core::DesyncOptions opt = {}) {
  nl::Design dsync;
  nl::cloneModule(dsync, *d.findModule(top));
  opt.control.reset_port = "rst_n";
  opt.control.reset_active_low = true;

  FlowResult out;
  out.desync = core::desynchronize(d, *d.findModule(top), gf(), opt);

  const double half_ns = out.desync.sync_min_period_ns;  // period = 2x min
  sim::Simulator ss(dsync.top(), gf());
  ss.setInput("clk", Val::k0);
  ss.setInput("rst_n", Val::k0);
  ss.run(sim::nsToPs(10));
  ss.setInput("rst_n", Val::k1);
  ss.run(ss.now() + sim::nsToPs(half_ns));
  for (int i = 0; i < cycles; ++i) {
    ss.setInput("clk", Val::k1);
    ss.run(ss.now() + sim::nsToPs(half_ns));
    ss.setInput("clk", Val::k0);
    ss.run(ss.now() + sim::nsToPs(half_ns));
  }

  sim::Simulator sd(*d.findModule(top), gf());
  std::vector<sim::Time> rises;
  sd.watchNet("G1_gm", [&](sim::Time t, Val v) {
    if (v == Val::k1) rises.push_back(t);
  });
  sd.setInput("clk", Val::k0);
  sd.setInput("rst_n", Val::k0);
  sd.run(sim::nsToPs(20));
  sd.setInput("rst_n", Val::k1);
  sd.run(sd.now() + sim::nsToPs(cycles * 4.0 * half_ns));
  if (rises.size() > 3) {
    out.eff_period_ns =
        static_cast<double>(rises.back() - rises[2]) /
        static_cast<double>(rises.size() - 3) / 1000.0;
  }
  out.fe = sim::checkFlowEquivalence(ss, sd);
  return out;
}

TEST(Desync, CounterIsFlowEquivalent) {
  nl::Design d;
  designs::buildCounter(d, gf(), 8);
  FlowResult r = runFlow(d, "counter", 30);
  EXPECT_TRUE(r.fe.equivalent) << (r.fe.details.empty()
                                       ? "?"
                                       : r.fe.details[0]);
  EXPECT_GT(r.fe.values_compared, 100u);
  EXPECT_GT(r.eff_period_ns, 0.5);
}

TEST(Desync, Pipe2IsFlowEquivalent) {
  nl::Design d;
  designs::buildPipe2(d, gf(), 8);
  FlowResult r = runFlow(d, "pipe2", 30);
  EXPECT_TRUE(r.fe.equivalent) << (r.fe.details.empty()
                                       ? "?"
                                       : r.fe.details[0]);
}

TEST(Desync, LfsrIsFlowEquivalent) {
  nl::Design d;
  designs::buildLfsr(d, gf(), 8);
  FlowResult r = runFlow(d, "lfsr", 40);
  EXPECT_TRUE(r.fe.equivalent) << (r.fe.details.empty()
                                       ? "?"
                                       : r.fe.details[0]);
}

TEST(Desync, DlxManualFourStageRegions) {
  nl::Design d;
  designs::buildCpu(d, gf(), designs::dlxConfig());
  core::DesyncOptions opt;
  opt.manual_seq_groups = {{"pc_", "ifid_"},
                           {"idex_"},
                           {"exmem_", "red_"},
                           {"rf_", "dmem_"}};
  FlowResult r = runFlow(d, "dlx", 40, opt);
  EXPECT_TRUE(r.fe.equivalent) << (r.fe.details.empty() ? "?"
                                                        : r.fe.details[0]);
  EXPECT_EQ(r.desync.regions.n_groups, 5);  // 4 stages + group 0
  EXPECT_GT(r.fe.elements_compared, 1500u);
  // Self-timed period in a sane band relative to the synchronous minimum.
  EXPECT_GT(r.eff_period_ns, r.desync.sync_min_period_ns);
  EXPECT_LT(r.eff_period_ns, r.desync.sync_min_period_ns * 4);
}

TEST(Desync, DlxAutomaticRegions) {
  nl::Design d;
  designs::buildCpu(d, gf(), designs::dlxConfig());
  FlowResult r = runFlow(d, "dlx", 25);
  EXPECT_TRUE(r.fe.equivalent) << (r.fe.details.empty() ? "?"
                                                        : r.fe.details[0]);
  EXPECT_GE(r.desync.regions.n_groups, 5);
}

TEST(Desync, TooShortDelayElementsBreakFlowEquivalence) {
  // The dashed region of Fig 5.3: when the matched delay is much shorter
  // than the logic, data is captured before it settled.  The long-path
  // design exercises its full critical path every cycle, so the corruption
  // is immediate and deterministic.
  {
    nl::Design d;
    designs::buildLongPath(d, gf(), 60);
    FlowResult ok = runFlow(d, "longpath", 30);
    EXPECT_TRUE(ok.fe.equivalent)
        << (ok.fe.details.empty() ? "?" : ok.fe.details[0]);
  }
  {
    nl::Design d;
    designs::buildLongPath(d, gf(), 60);
    core::DesyncOptions opt;
    opt.control.margin = 0.02;  // deliberately broken
    FlowResult bad = runFlow(d, "longpath", 30, opt);
    EXPECT_FALSE(bad.fe.equivalent);
  }
}

TEST(Desync, FullyDecoupledControllerBreaksFlowEquivalence) {
  // Fig 2.4's warning made concrete at gate level: the fully-decoupled
  // controller is hazard-free and live (see async tests), but its extra
  // concurrency lets a producer reopen while a consumer is still sampling,
  // and flow-equivalence is lost on multi-region designs.  The
  // semi-decoupled controller on the same design is flow-equivalent.
  {
    nl::Design d;
    designs::buildPipe2(d, gf(), 8);
    core::DesyncOptions opt;
    opt.control.controller = desync::async::ControllerKind::kFullyDecoupled;
    FlowResult r = runFlow(d, "pipe2", 40, opt);
    EXPECT_FALSE(r.fe.equivalent);
  }
  {
    nl::Design d;
    designs::buildPipe2(d, gf(), 8);
    FlowResult r = runFlow(d, "pipe2", 40);  // default: semi-decoupled
    EXPECT_TRUE(r.fe.equivalent);
  }
}

TEST(Desync, ClockGatedDesignIsFlowEquivalent) {
  // Integrated clock gates become latched gating conditions ANDed into the
  // region enables (Fig 3.1d); the gated counter must store the exact same
  // (sparser) sequence as its synchronous version.
  nl::Design d;
  designs::buildClockGated(d, gf(), 4);
  FlowResult r = runFlow(d, "cgdesign", 40);
  EXPECT_TRUE(r.fe.equivalent) << (r.fe.details.empty() ? "?"
                                                        : r.fe.details[0]);
  // The gated counter really is gated: fewer captures than the free one.
  nl::Module& m = *d.findModule("cgdesign");
  EXPECT_FALSE(m.findCell("cg").valid());        // CGL dissolved
  EXPECT_TRUE(m.findCell("cg_cenLm").valid());   // gating latches present
  EXPECT_TRUE(m.findCell("cg_cenLs").valid());
}

TEST(Desync, GeneratedSdcDescribesTheNetwork) {
  nl::Design d;
  designs::buildCounter(d, gf(), 6);
  nl::Design scratch;
  core::DesyncOptions opt;
  opt.control.reset_port = "rst_n";
  opt.control.reset_active_low = true;
  core::DesyncResult res =
      core::desynchronize(d, *d.findModule("counter"), gf(), opt);
  ASSERT_EQ(res.sdc.clocks.size(), 2u);
  EXPECT_EQ(res.sdc.clocks[0].name, "ClkM");
  EXPECT_EQ(res.sdc.clocks[1].name, "ClkS");
  EXPECT_FALSE(res.sdc.clocks[0].targets.empty());
  EXPECT_FALSE(res.sdc.disabled.empty());
  EXPECT_FALSE(res.sdc.size_only.empty());
  // Round-trips through text.
  desync::sta::SdcFile parsed = desync::sta::SdcFile::parse(res.sdc.toText());
  EXPECT_EQ(parsed.clocks.size(), 2u);
  EXPECT_EQ(parsed.disabled.size(), res.sdc.disabled.size());
}

TEST(Desync, DesynchronizedNetlistRoundTripsThroughVerilog) {
  nl::Design d;
  designs::buildCounter(d, gf(), 4);
  core::DesyncOptions opt;
  opt.control.reset_port = "rst_n";
  opt.control.reset_active_low = true;
  core::desynchronize(d, *d.findModule("counter"), gf(), opt);
  std::string text = nl::writeVerilog(*d.findModule("counter"));
  nl::Design d2;
  nl::readVerilog(d2, text, gf());
  EXPECT_EQ(d2.top().numCells(), d.findModule("counter")->numCells());
  EXPECT_TRUE(d2.top().checkInvariants().empty());
}

TEST(Desync, StaHandlesDesynchronizedCircuitWithSdcCuts) {
  nl::Design d;
  designs::buildCounter(d, gf(), 6);
  core::DesyncOptions opt;
  opt.control.reset_port = "rst_n";
  opt.control.reset_active_low = true;
  core::DesyncResult res =
      core::desynchronize(d, *d.findModule("counter"), gf(), opt);
  desync::sta::StaOptions so;
  so.disabled = res.sdc.disabled;
  desync::sta::Sta sta(*d.findModule("counter"), gf(), so);
  EXPECT_GT(sta.criticalPathNs(), 0.0);
}

}  // namespace
