// Unit tests for the deterministic parallel execution layer
// (core/parallel.h): coverage semantics, the jobs=1 exact serial path,
// exception propagation, nested sections and the jobs resolution order.
//
// This suite is also compiled under ThreadSanitizer as parallel_test_tsan
// (see tests/CMakeLists.txt), so keep it free of benign-but-racy idioms.
#include "core/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace core = desync::core;

namespace {

/// Restores the --jobs override (and thus the env/hardware default) on
/// scope exit so tests cannot leak their worker-count setting.
struct JobsGuard {
  explicit JobsGuard(int jobs) { core::setThreadJobs(jobs); }
  ~JobsGuard() { core::setThreadJobs(0); }
};

}  // namespace

TEST(ParallelFor, EveryIndexRunsExactlyOnce) {
  JobsGuard guard(8);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> counts(kN);
  core::parallelFor(kN, [&](std::size_t i) {
    counts[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(counts[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, ZeroIterationsIsANoOp) {
  for (int jobs : {1, 4}) {
    JobsGuard guard(jobs);
    core::parallelFor(0, [](std::size_t) { std::abort(); });
  }
}

TEST(ParallelFor, JobsOneRunsInIndexOrderOnCallerThread) {
  JobsGuard guard(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  core::parallelFor(100, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);  // safe: serial path, no data race
  });
  ASSERT_EQ(order.size(), 100u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelFor, SingleIterationRunsInlineEvenWithManyJobs) {
  JobsGuard guard(8);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran_on;
  core::parallelFor(1, [&](std::size_t) { ran_on = std::this_thread::get_id(); });
  EXPECT_EQ(ran_on, caller);
}

TEST(ParallelFor, ExceptionPropagatesToCaller) {
  JobsGuard guard(4);
  try {
    core::parallelFor(64, [&](std::size_t i) {
      if (i == 5) throw std::runtime_error("iteration 5 failed");
    });
    FAIL() << "expected the iteration exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "iteration 5 failed");
  }
}

TEST(ParallelFor, PoolIsReusableAfterAnException) {
  JobsGuard guard(4);
  EXPECT_THROW(core::parallelFor(
                   16, [](std::size_t) { throw std::runtime_error("boom"); }),
               std::runtime_error);
  // The failed section must leave the pool fully operational.
  std::vector<std::atomic<int>> counts(256);
  core::parallelFor(256, [&](std::size_t i) {
    counts[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < counts.size(); ++i) {
    ASSERT_EQ(counts[i].load(), 1);
  }
}

TEST(ParallelFor, NestedSectionsRunInlineOnTheSameThread) {
  JobsGuard guard(4);
  constexpr std::size_t kOuter = 8, kInner = 16;
  // Per outer index: the worker thread seen outside and inside the nested
  // section, plus the nested iteration order (inline => index order).
  std::vector<std::thread::id> outer_tid(kOuter), inner_tid(kOuter);
  std::vector<std::vector<std::size_t>> inner_order(kOuter);
  std::vector<char> was_in_section(kOuter, 0);
  EXPECT_FALSE(core::inParallelSection());
  core::parallelFor(kOuter, [&](std::size_t o) {
    outer_tid[o] = std::this_thread::get_id();
    was_in_section[o] = core::inParallelSection() ? 1 : 0;
    core::parallelFor(kInner, [&](std::size_t i) {
      inner_tid[o] = std::this_thread::get_id();
      inner_order[o].push_back(i);
    });
  });
  EXPECT_FALSE(core::inParallelSection());
  for (std::size_t o = 0; o < kOuter; ++o) {
    EXPECT_EQ(was_in_section[o], 1);
    EXPECT_EQ(inner_tid[o], outer_tid[o]) << "nested section migrated";
    ASSERT_EQ(inner_order[o].size(), kInner);
    for (std::size_t i = 0; i < kInner; ++i) EXPECT_EQ(inner_order[o][i], i);
  }
}

TEST(ParallelMap, CollectsResultsIndexAligned) {
  JobsGuard guard(8);
  const std::vector<std::size_t> squares =
      core::parallelMap(1000, [](std::size_t i) { return i * i; });
  ASSERT_EQ(squares.size(), 1000u);
  for (std::size_t i = 0; i < squares.size(); ++i) {
    ASSERT_EQ(squares[i], i * i);
  }
}

TEST(ParallelJobs, OverrideWinsAndZeroResetsToDefault) {
  core::setThreadJobs(3);
  EXPECT_EQ(core::effectiveJobs(), 3);
  core::setThreadJobs(0);
  EXPECT_GE(core::effectiveJobs(), 1);  // env or hardware default
}

TEST(ParallelJobs, EnvironmentVariableProvidesTheDefault) {
  core::setThreadJobs(0);
  ASSERT_EQ(setenv("DESYNC_JOBS", "5", 1), 0);
  core::detail::resetEnvironmentJobsForTest();
  EXPECT_EQ(core::effectiveJobs(), 5);
  // The parse is cached once per process: a later environment change is
  // invisible until the cache is reset.
  ASSERT_EQ(setenv("DESYNC_JOBS", "7", 1), 0);
  EXPECT_EQ(core::effectiveJobs(), 5);
  core::detail::resetEnvironmentJobsForTest();
  EXPECT_EQ(core::effectiveJobs(), 7);
  // An explicit override still wins over the environment.
  core::setThreadJobs(2);
  EXPECT_EQ(core::effectiveJobs(), 2);
  core::setThreadJobs(0);
  // Garbage and out-of-range values are rejected (with a stderr note) in
  // favour of the hardware default instead of being silently truncated.
  ASSERT_EQ(setenv("DESYNC_JOBS", "not-a-number", 1), 0);
  core::detail::resetEnvironmentJobsForTest();
  EXPECT_GE(core::effectiveJobs(), 1);
  ASSERT_EQ(setenv("DESYNC_JOBS", "4096", 1), 0);
  core::detail::resetEnvironmentJobsForTest();
  EXPECT_GE(core::effectiveJobs(), 1);
  EXPECT_NE(core::effectiveJobs(), 4096);
  ASSERT_EQ(unsetenv("DESYNC_JOBS"), 0);
  core::detail::resetEnvironmentJobsForTest();
}

TEST(ParallelJobs, JobsScopeNestsAndRestores) {
  core::setThreadJobs(3);
  {
    core::JobsScope outer(5);
    EXPECT_EQ(core::effectiveJobs(), 5);
    {
      core::JobsScope inner(2);
      EXPECT_EQ(core::effectiveJobs(), 2);
    }
    EXPECT_EQ(core::effectiveJobs(), 5);
  }
  EXPECT_EQ(core::effectiveJobs(), 3);
  core::setThreadJobs(0);
}

TEST(ParallelJobs, ThreadBudgetsAreIndependent) {
  core::setThreadJobs(2);
  int other_jobs = 0;
  std::thread other([&] {
    core::setThreadJobs(7);
    other_jobs = core::effectiveJobs();
  });
  other.join();
  EXPECT_EQ(other_jobs, 7);
  EXPECT_EQ(core::effectiveJobs(), 2) << "another thread's budget leaked";
  core::setThreadJobs(0);
}

TEST(PoolStats, SectionsAreCounted) {
  JobsGuard guard(2);
  const core::PoolStats process_before = core::poolStats();
  const core::PoolStats thread_before = core::threadPoolStats();
  core::parallelFor(8, [](std::size_t) {});
  const core::PoolStats process_after = core::poolStats();
  const core::PoolStats thread_after = core::threadPoolStats();
  EXPECT_EQ(process_after.sections, process_before.sections + 1);
  EXPECT_EQ(thread_after.sections, thread_before.sections + 1);
}

TEST(PoolStats, ContendedSectionIsCountedOnTheIssuingThread) {
  JobsGuard guard(2);
  core::parallelFor(2, [](std::size_t) {});  // spin the workers up
  // A second top-level caller entering a section while one is running must
  // be counted as contended on ITS thread.  The interleaving cannot be
  // forced, so retry until the collision happens (nearly always the first
  // attempt: the other thread enters the pool while this one sleeps in it).
  bool saw_contention = false;
  for (int attempt = 0; attempt < 50 && !saw_contention; ++attempt) {
    std::atomic<bool> inside{false};
    core::PoolStats other_before, other_after;
    std::thread other([&] {
      core::setThreadJobs(2);
      other_before = core::threadPoolStats();
      while (!inside.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      core::parallelFor(2, [](std::size_t) {});
      other_after = core::threadPoolStats();
    });
    core::parallelFor(2, [&](std::size_t) {
      inside.store(true, std::memory_order_release);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    });
    other.join();
    if (other_after.contended > other_before.contended) {
      saw_contention = true;
      EXPECT_GE(other_after.wait_us, other_before.wait_us);
    }
  }
  EXPECT_TRUE(saw_contention) << "no collision observed in 50 attempts";
  const core::PoolStats process = core::poolStats();
  EXPECT_GE(process.contended, 1u);
}

// Runs last in source order but in its own process under ctest discovery,
// so the joined pool cannot affect the other tests either way.
TEST(ParallelShutdown, SectionsDrainSeriallyAfterShutdown) {
  JobsGuard guard(4);
  core::parallelFor(8, [](std::size_t) {});  // spin the workers up
  core::shutdownParallel();
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  core::parallelFor(16, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);  // safe: caller-only drain
  });
  ASSERT_EQ(order.size(), 16u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
  core::shutdownParallel();  // idempotent
}
