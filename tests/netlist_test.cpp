// Unit tests for the netlist database, Verilog IO, cleaning and flattening.
#include <gtest/gtest.h>

#include "liberty/gatefile.h"
#include "liberty/stdlib90.h"
#include "netlist/blif.h"
#include "netlist/cleaning.h"
#include "netlist/flatten.h"
#include "netlist/netlist.h"
#include "netlist/verilog.h"

namespace nl = desync::netlist;
namespace lib = desync::liberty;

namespace {

/// Shared gatefile over the synthetic HS library.
const lib::Gatefile& gatefile() {
  static const lib::Library library =
      lib::makeStdLib90(lib::LibVariant::kHighSpeed);
  static const lib::Gatefile gf(library);
  return gf;
}

TEST(NameTable, InternIsIdempotent) {
  nl::NameTable t;
  nl::NameId a = t.intern("foo");
  nl::NameId b = t.intern("foo");
  EXPECT_EQ(a, b);
  EXPECT_EQ(t.str(a), "foo");
  EXPECT_FALSE(t.find("bar").valid());
}

TEST(NameTable, ManyNamesStayStable) {
  nl::NameTable t;
  std::vector<nl::NameId> ids;
  for (int i = 0; i < 5000; ++i) {
    ids.push_back(t.intern("n" + std::to_string(i)));
  }
  for (int i = 0; i < 5000; ++i) {
    EXPECT_EQ(t.str(ids[static_cast<std::size_t>(i)]),
              "n" + std::to_string(i));
  }
}

TEST(NameTable, MakeUniqueAvoidsCollision) {
  nl::NameTable t;
  t.intern("x");
  nl::NameId u = t.makeUnique("x");
  EXPECT_NE(t.str(u), "x");
  EXPECT_TRUE(t.find(t.str(u)).valid());
}

TEST(Module, ConnectivityBookkeeping) {
  nl::Design d;
  nl::Module& m = d.addModule("top");
  nl::NetId a = m.addNet("a");
  nl::NetId z = m.addNet("z");
  nl::CellId inv = m.addCell("u1", "IV",
                             {{"A", nl::PortDir::kInput, a},
                              {"Z", nl::PortDir::kOutput, z}});
  EXPECT_EQ(m.net(z).driver.cell(), inv);
  ASSERT_EQ(m.net(a).sinks.size(), 1u);
  EXPECT_EQ(m.net(a).sinks[0].cell(), inv);
  EXPECT_TRUE(m.checkInvariants().empty());

  m.removeCell(inv);
  EXPECT_EQ(m.net(z).driver.kind, nl::TermKind::kNone);
  EXPECT_TRUE(m.net(a).sinks.empty());
  EXPECT_EQ(m.numCells(), 0u);
  EXPECT_TRUE(m.checkInvariants().empty());
}

TEST(Module, DoubleDriverThrows) {
  nl::Design d;
  nl::Module& m = d.addModule("top");
  nl::NetId a = m.addNet("a");
  nl::NetId z = m.addNet("z");
  m.addCell("u1", "IV",
            {{"A", nl::PortDir::kInput, a}, {"Z", nl::PortDir::kOutput, z}});
  EXPECT_THROW(m.addCell("u2", "IV",
                         {{"A", nl::PortDir::kInput, a},
                          {"Z", nl::PortDir::kOutput, z}}),
               nl::NetlistError);
}

TEST(Module, DuplicateNamesThrow) {
  nl::Design d;
  nl::Module& m = d.addModule("top");
  m.addNet("a");
  EXPECT_THROW(m.addNet("a"), nl::NetlistError);
  m.addCell("u1", "IV", {});
  EXPECT_THROW(m.addCell("u1", "IV", {}), nl::NetlistError);
}

TEST(Module, MergeNetMovesSinksAndPorts) {
  nl::Design d;
  nl::Module& m = d.addModule("top");
  nl::NetId a = m.addNet("a");
  nl::NetId b = m.addNet("b");
  m.addCell("u1", "IV",
            {{"A", nl::PortDir::kInput, b}, {"Z", nl::PortDir::kOutput, {}}});
  m.addPort("out", nl::PortDir::kOutput, b);
  m.mergeNetInto(b, a);
  EXPECT_EQ(m.net(a).sinks.size(), 2u);
  EXPECT_EQ(m.numNets(), 1u);
  EXPECT_TRUE(m.checkInvariants().empty());
}

TEST(Module, ConstNetsAreCached) {
  nl::Design d;
  nl::Module& m = d.addModule("top");
  nl::NetId c0 = m.constNet(false);
  EXPECT_EQ(m.constNet(false), c0);
  EXPECT_NE(m.constNet(true), c0);
  EXPECT_EQ(m.net(c0).driver.kind, nl::TermKind::kConst0);
}

// ------------------------------------------------------------- Verilog

TEST(Verilog, ParsesFlatGateLevelNetlist) {
  const char* src = R"(
    // simple two-gate netlist
    module top (a, b, q, clk);
      input a, b, clk;
      output q;
      wire w;
      ND2 u1 (.A(a), .B(b), .Z(w));
      DFF r1 (.D(w), .CP(clk), .Q(q), .QN());
    endmodule
  )";
  nl::Design d;
  nl::readVerilog(d, src, gatefile());
  nl::Module& m = d.top();
  EXPECT_EQ(m.name(), "top");
  EXPECT_EQ(m.numCells(), 2u);
  EXPECT_EQ(m.numPorts(), 4u);
  EXPECT_TRUE(m.checkInvariants().empty());
  nl::CellId r1 = m.findCell("r1");
  ASSERT_TRUE(r1.valid());
  EXPECT_EQ(m.pinNet(r1, "D"), m.findNet("w"));
}

TEST(Verilog, ParsesBusesAndConcats) {
  const char* src = R"(
    module top (d, q, clk);
      input [3:0] d;
      output [3:0] q;
      input clk;
      DFF r0 (.D(d[0]), .CP(clk), .Q(q[0]));
      DFF r1 (.D(d[1]), .CP(clk), .Q(q[1]));
      DFF r2 (.D(d[2]), .CP(clk), .Q(q[2]));
      DFF r3 (.D(d[3]), .CP(clk), .Q(q[3]));
    endmodule
  )";
  nl::Design d;
  nl::readVerilog(d, src, gatefile());
  nl::Module& m = d.top();
  EXPECT_EQ(m.numCells(), 4u);
  nl::NetId d2 = m.findNet("d[2]");
  ASSERT_TRUE(d2.valid());
  EXPECT_TRUE(m.net(d2).bus.valid());
  EXPECT_EQ(m.net(d2).bus.bit, 2);
}

TEST(Verilog, ParsesConstantsAndAssigns) {
  const char* src = R"(
    module top (a, z);
      input a;
      output z;
      wire t;
      AN2 u1 (.A(a), .B(1'b1), .Z(t));
      assign z = t;
    endmodule
  )";
  nl::Design d;
  nl::readVerilog(d, src, gatefile());
  nl::Module& m = d.top();
  EXPECT_EQ(m.numCells(), 1u);
  // The assign was folded: the port 'z' must observe u1's output.
  nl::CellId u1 = m.findCell("u1");
  nl::NetId zn = m.pinNet(u1, "Z");
  bool port_on_net = false;
  for (const nl::TermRef& s : m.net(zn).sinks) {
    if (s.isPort()) port_on_net = true;
  }
  EXPECT_TRUE(port_on_net);
  EXPECT_TRUE(m.checkInvariants().empty());
}

TEST(Verilog, EscapedNamesAreSimplified) {
  const char* src =
      "module top (a, z);\n"
      "  input a;\n  output z;\n"
      "  IV \\u$1/raw (.A(a), .Z(z));\n"
      "endmodule\n";
  nl::Design d;
  nl::readVerilog(d, src, gatefile());
  nl::Module& m = d.top();
  EXPECT_EQ(m.numCells(), 1u);
  // The escaped instance name must have been replaced by a simple one.
  bool found_simple = false;
  m.forEachCell([&](nl::CellId id) {
    std::string name(m.cellName(id));
    found_simple = name.find('$') == std::string::npos &&
                   name.find('/') == std::string::npos;
  });
  EXPECT_TRUE(found_simple);
}

TEST(Verilog, RoundTripPreservesStructure) {
  const char* src = R"(
    module top (a, b, q, clk);
      input a, b, clk;
      output [1:0] q;
      wire w;
      ND2 u1 (.A(a), .B(b), .Z(w));
      DFF r0 (.D(w), .CP(clk), .Q(q[0]));
      DFF r1 (.D(q[0]), .CP(clk), .Q(q[1]));
    endmodule
  )";
  nl::Design d1;
  nl::readVerilog(d1, src, gatefile());
  std::string text = nl::writeVerilog(d1);

  nl::Design d2;
  nl::readVerilog(d2, text, gatefile());
  nl::Module& m2 = d2.top();
  EXPECT_EQ(m2.numCells(), 3u);
  EXPECT_EQ(m2.numPorts(), 5u);  // a, b, clk, q[0], q[1]
  EXPECT_TRUE(m2.checkInvariants().empty());
  nl::CellId r1 = m2.findCell("r1");
  ASSERT_TRUE(r1.valid());
  EXPECT_EQ(m2.pinNet(r1, "D"), m2.findNet("q[0]"));
}

TEST(Verilog, RejectsGarbage) {
  nl::Design d;
  EXPECT_THROW(nl::readVerilog(d, "module ; garbage", gatefile()),
               nl::VerilogError);
  nl::Design d2;
  EXPECT_THROW(
      nl::readVerilog(d2, "module t(a); input a; UNKNOWNCELL u (.X(a)); endmodule",
                      gatefile()),
      nl::VerilogError);
}

// ------------------------------------------------------------- Cleaning

nl::CleaningRules rulesFromGatefile() {
  nl::CleaningRules rules;
  rules.is_buffer = [](std::string_view t) { return gatefile().isBuffer(t); };
  rules.is_inverter = [](std::string_view t) {
    return gatefile().isInverter(t);
  };
  return rules;
}

TEST(Cleaning, RemovesBuffers) {
  const char* src = R"(
    module top (a, z);
      input a;
      output z;
      wire t1, t2;
      BF b1 (.A(a), .Z(t1));
      BF b2 (.A(t1), .Z(t2));
      IV u1 (.A(t2), .Z(z));
    endmodule
  )";
  nl::Design d;
  nl::readVerilog(d, src, gatefile());
  nl::CleaningStats stats = nl::cleanLogic(d.top(), rulesFromGatefile());
  EXPECT_EQ(stats.buffers_removed, 2u);
  EXPECT_EQ(d.top().numCells(), 1u);
  // The inverter input should now be the primary input net directly.
  nl::CellId u1 = d.top().findCell("u1");
  EXPECT_EQ(d.top().pinNet(u1, "A"), d.top().findNet("a"));
  EXPECT_TRUE(d.top().checkInvariants().empty());
}

TEST(Cleaning, RemovesInverterPairs) {
  const char* src = R"(
    module top (a, z);
      input a;
      output z;
      wire t1, t2;
      IV i1 (.A(a), .Z(t1));
      IV i2 (.A(t1), .Z(t2));
      AN2 u1 (.A(t2), .B(a), .Z(z));
    endmodule
  )";
  nl::Design d;
  nl::readVerilog(d, src, gatefile());
  nl::CleaningStats stats = nl::cleanLogic(d.top(), rulesFromGatefile());
  EXPECT_EQ(stats.inverter_pairs_removed, 1u);
  EXPECT_EQ(d.top().numCells(), 1u);
  nl::CellId u1 = d.top().findCell("u1");
  EXPECT_EQ(d.top().pinNet(u1, "A"), d.top().findNet("a"));
  EXPECT_TRUE(d.top().checkInvariants().empty());
}

TEST(Cleaning, KeepsSharedInverter) {
  // i1 output also feeds a non-inverter gate: only the pair's second stage
  // folds and i1 must survive for the remaining consumer.
  const char* src = R"(
    module top (a, y, z);
      input a;
      output y, z;
      wire t1, t2;
      IV i1 (.A(a), .Z(t1));
      IV i2 (.A(t1), .Z(t2));
      AN2 u1 (.A(t1), .B(a), .Z(y));
      AN2 u2 (.A(t2), .B(a), .Z(z));
    endmodule
  )";
  nl::Design d;
  nl::readVerilog(d, src, gatefile());
  nl::cleanLogic(d.top(), rulesFromGatefile());
  // i1 must survive because u1 still consumes t1.
  EXPECT_TRUE(d.top().findCell("i1").valid());
  // u2's A input now sees 'a' directly (the inverter pair collapsed).
  nl::CellId u2 = d.top().findCell("u2");
  EXPECT_EQ(d.top().pinNet(u2, "A"), d.top().findNet("a"));
  EXPECT_TRUE(d.top().checkInvariants().empty());
}

// ------------------------------------------------------------- Flatten

TEST(Flatten, ExpandsSubmodules) {
  const char* src = R"(
    module pair (i, o);
      input i;
      output o;
      wire m;
      IV g1 (.A(i), .Z(m));
      IV g2 (.A(m), .Z(o));
    endmodule
    module top (a, z);
      input a;
      output z;
      wire w;
      pair p1 (.i(a), .o(w));
      pair p2 (.i(w), .o(z));
    endmodule
  )";
  nl::Design d;
  nl::readVerilog(d, src, gatefile(), {}, "top");
  nl::FlattenStats stats = nl::flattenTop(d);
  EXPECT_EQ(stats.instances_flattened, 2u);
  EXPECT_EQ(d.top().numCells(), 4u);
  EXPECT_TRUE(d.top().findCell("p1/g1").valid());
  EXPECT_TRUE(d.top().checkInvariants().empty());
}

TEST(Flatten, NestedHierarchy) {
  const char* src = R"(
    module leaf (i, o);
      input i;
      output o;
      IV g (.A(i), .Z(o));
    endmodule
    module mid (i, o);
      input i;
      output o;
      wire m;
      leaf l1 (.i(i), .o(m));
      leaf l2 (.i(m), .o(o));
    endmodule
    module top (a, z);
      input a;
      output z;
      mid m1 (.i(a), .o(z));
    endmodule
  )";
  nl::Design d;
  nl::readVerilog(d, src, gatefile(), {}, "top");
  nl::flattenTop(d);
  EXPECT_EQ(d.top().numCells(), 2u);
  EXPECT_TRUE(d.top().findCell("m1/l1/g").valid());
  EXPECT_TRUE(d.top().checkInvariants().empty());
}

// ------------------------------------------------------------- BLIF

TEST(Blif, EmitsSubcktStructure) {
  const char* src = R"(
    module top (a, b, z);
      input a, b;
      output z;
      ND2 u1 (.A(a), .B(b), .Z(z));
    endmodule
  )";
  nl::Design d;
  nl::readVerilog(d, src, gatefile());
  std::string blif = nl::writeBlif(d.top());
  EXPECT_NE(blif.find(".model top"), std::string::npos);
  EXPECT_NE(blif.find(".inputs a b"), std::string::npos);
  EXPECT_NE(blif.find(".outputs z"), std::string::npos);
  EXPECT_NE(blif.find(".subckt ND2 A=a B=b Z=z"), std::string::npos);
  EXPECT_NE(blif.find(".end"), std::string::npos);
}

}  // namespace
