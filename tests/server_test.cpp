// drdesyncd server tests: the JSON wire layer, the request protocol, the
// FlowService request isolation and — the flagship — byte-identical
// replies for concurrent socket requests versus a sequential reference
// run at mixed per-request jobs budgets.
//
// This suite is also compiled under ThreadSanitizer as server_test_tsan
// (see tests/CMakeLists.txt) with DESYNC_SERVER_TEST_LIGHT defined, which
// drops the DLX design from the concurrency workload to keep the
// instrumented run bounded; keep new tests free of benign-but-racy idioms.
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "designs/cpu.h"
#include "fuzz/generator.h"
#include "netlist/verilog.h"
#include "server/client.h"
#include "server/json.h"
#include "server/protocol.h"
#include "server/server.h"
#include "server/service.h"

namespace server = desync::server;
namespace fuzz = desync::fuzz;
namespace designs = desync::designs;
namespace netlist = desync::netlist;

namespace {

std::string testSocketPath(const char* tag) {
  return "/tmp/desync-server-test-" + std::string(tag) + "-" +
         std::to_string(static_cast<long>(::getpid())) + ".sock";
}

server::ServiceOptions builtinService() {
  server::ServiceOptions opt;
  opt.lib = "builtin:hs";
  return opt;
}

/// A desync request for generator seed `seed` (rst_n active-low is the
/// generator contract), asking for the deterministic canonical report.
server::Request seedRequest(const server::FlowService& service,
                            std::uint64_t seed) {
  server::Request req;
  req.name = "seed-" + std::to_string(seed);
  req.design = fuzz::generateVerilog(service.gatefile(), seed, {});
  req.reset_port = "rst_n";
  req.reset_active_low = true;
  req.report = server::ReportMode::kCanonical;
  return req;
}

}  // namespace

// --- JSON layer ----------------------------------------------------------

TEST(ServerJson, ParseDumpRoundTrip) {
  const std::string line =
      R"({"id": 7, "ok": true, "ratio": 0.5, "tags": ["a", "b"], )"
      R"("nested": {"n": null}})";
  const server::Json v = server::Json::parse(line);
  EXPECT_EQ(v.getInt("id", -1), 7);
  EXPECT_TRUE(v.getBool("ok", false));
  EXPECT_EQ(v.getNumber("ratio", 0.0), 0.5);
  ASSERT_NE(v.find("tags"), nullptr);
  EXPECT_EQ(v.find("tags")->asArray().size(), 2u);
  EXPECT_TRUE(v.find("nested")->find("n")->isNull());
  // dump() re-parses to the same document.
  EXPECT_EQ(server::Json::parse(v.dump()).dump(), v.dump());
}

TEST(ServerJson, StringEscapesDecodeAndReEncode) {
  const server::Json v =
      server::Json::parse(R"({"s": "a\n\t\"\\ é 😀"})");
  const std::string s = v.getString("s", "");
  EXPECT_NE(s.find('\n'), std::string::npos);
  EXPECT_NE(s.find("\xC3\xA9"), std::string::npos);      // é in UTF-8
  EXPECT_NE(s.find("\xF0\x9F\x98\x80"), std::string::npos);  // emoji
  // The dump is one line even though the payload has a newline.
  EXPECT_EQ(v.dump().find('\n'), std::string::npos);
  EXPECT_EQ(server::Json::parse(v.dump()).getString("s", ""), s);
}

TEST(ServerJson, MalformedInputsThrow) {
  EXPECT_THROW(server::Json::parse("{"), server::JsonError);
  EXPECT_THROW(server::Json::parse("{} garbage"), server::JsonError);
  EXPECT_THROW(server::Json::parse(R"({"a": 1,})"), server::JsonError);
  EXPECT_THROW(server::Json::parse(R"("unterminated)"), server::JsonError);
  EXPECT_THROW(server::Json::parse(R"("\q")"), server::JsonError);
  EXPECT_THROW(server::Json::parse("1e999"), server::JsonError);
  EXPECT_THROW(server::Json::parse(R"("\ud800")"), server::JsonError);
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += '[';
  EXPECT_THROW(server::Json::parse(deep), server::JsonError);
}

TEST(ServerJson, RawFragmentsEmbedVerbatim) {
  server::Json v = server::Json::object();
  v.set("id", server::Json::number(1));
  v.setRaw("report", R"({"cells": 42})");
  const std::string line = v.dump();
  const server::Json back = server::Json::parse(line);
  EXPECT_EQ(back.find("report")->getInt("cells", -1), 42);
}

TEST(ServerJson, GetIntRejectsFractions) {
  const server::Json v = server::Json::parse(R"({"jobs": 2.5})");
  EXPECT_THROW(v.getInt("jobs", 0), server::JsonError);
}

// --- protocol ------------------------------------------------------------

TEST(ServerProtocol, RequestLineRoundTrips) {
  server::Request req;
  req.id = 12;
  req.name = "dlx-run";
  req.design = "module m(); endmodule\n";
  req.top = "m";
  req.jobs = 3;
  req.reset_port = "rst_n";
  req.reset_active_low = true;
  req.group = "pc_,ifid_;idex_";
  req.false_paths = {"scan_en", "dbg"};
  req.margin = 0.25;
  req.mux_taps = 4;
  req.bus_heuristic = false;
  req.clean_logic = false;
  req.want_verilog = false;
  req.want_sdc = false;
  req.report = server::ReportMode::kCanonical;

  const server::Message msg = server::parseMessage(server::requestLine(req));
  ASSERT_EQ(msg.cmd, "desync");
  const server::Request& back = msg.request;
  EXPECT_EQ(back.id, req.id);
  EXPECT_EQ(back.name, req.name);
  EXPECT_EQ(back.design, req.design);
  EXPECT_EQ(back.top, req.top);
  EXPECT_EQ(back.jobs, req.jobs);
  EXPECT_EQ(back.reset_port, req.reset_port);
  EXPECT_EQ(back.reset_active_low, req.reset_active_low);
  EXPECT_EQ(back.group, req.group);
  EXPECT_EQ(back.false_paths, req.false_paths);
  EXPECT_EQ(back.margin, req.margin);
  EXPECT_EQ(back.mux_taps, req.mux_taps);
  EXPECT_EQ(back.bus_heuristic, req.bus_heuristic);
  EXPECT_EQ(back.clean_logic, req.clean_logic);
  EXPECT_EQ(back.want_verilog, req.want_verilog);
  EXPECT_EQ(back.want_sdc, req.want_sdc);
  EXPECT_EQ(back.report, req.report);
}

TEST(ServerProtocol, ControlCommandsParse) {
  EXPECT_EQ(server::parseMessage(R"({"cmd": "ping", "id": 3})").cmd, "ping");
  EXPECT_EQ(server::parseMessage(R"({"cmd": "stats"})").cmd, "stats");
  EXPECT_EQ(server::parseMessage(R"({"cmd": "shutdown"})").cmd, "shutdown");
}

TEST(ServerProtocol, InvalidRequestsAreRejected) {
  using server::parseMessage;
  using server::ProtocolError;
  // Neither or both design sources.
  EXPECT_THROW(parseMessage(R"({"id": 1})"), ProtocolError);
  EXPECT_THROW(parseMessage(R"({"design": "m", "design_path": "p"})"),
               ProtocolError);
  EXPECT_THROW(parseMessage(R"({"cmd": "explode"})"), ProtocolError);
  EXPECT_THROW(parseMessage(R"({"design": "m", "jobs": -1})"),
               ProtocolError);
  EXPECT_THROW(parseMessage(R"({"design": "m", "jobs": 9999})"),
               ProtocolError);
  EXPECT_THROW(parseMessage(R"({"design": "m", "mux_taps": 3})"),
               ProtocolError);
  EXPECT_THROW(parseMessage(R"({"design": "m", "margin": -0.5})"),
               ProtocolError);
  EXPECT_THROW(parseMessage(R"({"design": "m", "report": "verbose"})"),
               ProtocolError);
  // Malformed JSON surfaces as JsonError, not ProtocolError.
  EXPECT_THROW(parseMessage("{oops"), server::JsonError);
}

TEST(ServerProtocol, FlattenJsonCollapsesPrettyOutput) {
  const std::string pretty = "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}\n";
  const std::string flat = server::flattenJson(pretty);
  EXPECT_EQ(flat.find('\n'), std::string::npos);
  EXPECT_EQ(server::Json::parse(flat).getInt("a", -1), 1);
}

// --- FlowService ---------------------------------------------------------

TEST(FlowService, HandlesAGeneratedDesign) {
  server::FlowService service(builtinService());
  server::Request req = seedRequest(service, 3);
  req.id = 9;
  const server::Json reply = service.handle(req);
  EXPECT_TRUE(reply.getBool("ok", false)) << reply.dump();
  EXPECT_EQ(reply.getInt("id", -1), 9);
  EXPECT_EQ(reply.getString("track", ""), "seed-3");
  EXPECT_GT(reply.getInt("cells_out", 0), reply.getInt("cells_in", 0));
  EXPECT_FALSE(reply.getString("verilog", "").empty());
  EXPECT_FALSE(reply.getString("sdc", "").empty());
  ASSERT_NE(reply.find("report"), nullptr);
  EXPECT_GE(reply.getNumber("service_ms", -1.0), 0.0);
  // The whole reply frames as one JSON line (raw report embedded).
  const std::string line = reply.dump();
  EXPECT_EQ(line.find('\n'), std::string::npos);
  const server::Json parsed = server::Json::parse(line);
  EXPECT_GT(parsed.find("report")->getInt("regions", -1), 0);
}

TEST(FlowService, FlowFailureBecomesAnErrorReply) {
  server::FlowService service(builtinService());
  server::Request req;
  req.id = 4;
  req.design = "this is not verilog";
  const server::Json reply = service.handle(req);
  EXPECT_FALSE(reply.getBool("ok", true));
  EXPECT_FALSE(reply.getString("error", "").empty());
  // The error report (CLI --report shape) rides along for the default
  // "full" report mode, as one line.
  ASSERT_NE(reply.find("report"), nullptr);
  EXPECT_EQ(reply.dump().find('\n'), std::string::npos);
}

TEST(FlowService, MissingTopModuleIsAReplyNotACrash) {
  server::FlowService service(builtinService());
  server::Request req = seedRequest(service, 1);
  req.top = "no_such_module";
  const server::Json reply = service.handle(req);
  EXPECT_FALSE(reply.getBool("ok", true));
  EXPECT_NE(reply.getString("error", "").find("no_such_module"),
            std::string::npos);
}

TEST(FlowService, RepliesAreIdenticalAtAnyJobsBudget) {
  server::FlowService service(builtinService());
  server::Request req = seedRequest(service, 5);
  req.jobs = 1;
  const server::Json serial = service.handle(req);
  req.jobs = 4;
  const server::Json pooled = service.handle(req);
  ASSERT_TRUE(serial.getBool("ok", false)) << serial.dump();
  ASSERT_TRUE(pooled.getBool("ok", false)) << pooled.dump();
  EXPECT_EQ(serial.getString("verilog", "a"), pooled.getString("verilog", "b"));
  EXPECT_EQ(serial.getString("sdc", "a"), pooled.getString("sdc", "b"));
  EXPECT_EQ(serial.find("report")->dump(), pooled.find("report")->dump());
}

// --- stream transport ----------------------------------------------------

TEST(ServerStream, ControlCommandsAnswerInline) {
  server::ServerOptions opt;
  opt.service = builtinService();
  opt.handlers = 1;
  server::Server srv(opt);
  srv.start();
  std::istringstream in(
      "{\"cmd\": \"ping\", \"id\": 1}\n"
      "not json at all\n"
      "{\"cmd\": \"stats\", \"id\": 2}\n"
      "{\"cmd\": \"shutdown\", \"id\": 3}\n");
  std::ostringstream out;
  srv.serveStream(in, out);
  srv.stop();

  std::istringstream replies(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(replies, line));
  EXPECT_TRUE(server::Json::parse(line).getBool("pong", false));
  ASSERT_TRUE(std::getline(replies, line));
  EXPECT_FALSE(server::Json::parse(line).getBool("ok", true));
  ASSERT_TRUE(std::getline(replies, line));
  EXPECT_EQ(server::Json::parse(line).getInt("rejected", -1), 1);
  ASSERT_TRUE(std::getline(replies, line));
  EXPECT_TRUE(server::Json::parse(line).getBool("shutting_down", false));
  EXPECT_EQ(srv.stats().rejected, 1u);
}

TEST(ServerStream, DesyncRequestsAreServedWithQueueTiming) {
  server::ServerOptions opt;
  opt.service = builtinService();
  opt.handlers = 2;
  server::Server srv(opt);
  srv.start();
  server::FlowService reference(builtinService());
  server::Request req = seedRequest(reference, 2);
  req.id = 1;
  std::istringstream in(server::requestLine(req) + "\n");
  std::ostringstream out;
  srv.serveStream(in, out);
  srv.stop();

  const server::Json reply = server::Json::parse(
      out.str().substr(0, out.str().find('\n')));
  EXPECT_TRUE(reply.getBool("ok", false)) << reply.dump();
  EXPECT_GE(reply.getNumber("queue_ms", -1.0), 0.0);
  EXPECT_EQ(srv.stats().completed, 1u);
}

// --- the determinism contract over the socket ----------------------------

TEST(ServerSocket, ConcurrentRequestsMatchSequentialReference) {
  // Reference replies, computed sequentially in-process.
  server::FlowService reference(builtinService());
  std::vector<server::Request> requests;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    requests.push_back(seedRequest(reference, seed));
  }
#ifndef DESYNC_SERVER_TEST_LIGHT
  {
    // The paper's DLX case study rides along in the full build: a real
    // multi-region pipeline, much deeper than the generator designs.
    desync::netlist::Design dlx;
    designs::buildCpu(dlx, reference.gatefile(), designs::dlxConfig());
    server::Request req;
    req.name = "dlx";
    req.design = netlist::writeVerilog(dlx);
    req.reset_port = "rst_n";
    req.reset_active_low = true;
    req.report = server::ReportMode::kCanonical;
    requests.push_back(std::move(req));
  }
#endif
  struct Expected {
    std::string verilog, sdc, report;
  };
  std::vector<Expected> expected;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    server::Request req = requests[i];
    req.id = i;
    req.jobs = 1;  // exact serial reference
    const server::Json reply = reference.handle(req);
    ASSERT_TRUE(reply.getBool("ok", false))
        << requests[i].name << ": " << reply.dump();
    // The in-process reply embeds the report as a raw pre-serialized
    // fragment; parse and re-dump it so both sides compare in dump() form.
    expected.push_back(Expected{
        reply.getString("verilog", ""), reply.getString("sdc", ""),
        server::Json::parse(reply.find("report")->asString()).dump()});
  }

  // The same workload through a live socket server: 4 handler threads,
  // 4 client connections, every request repeated at jobs 1..4 decided by
  // the global send index, all in flight at once.
  server::ServerOptions opt;
  opt.service = builtinService();
  opt.handlers = 4;
  opt.socket_path = testSocketPath("conc");
  server::Server srv(opt);
  srv.start();

  const std::size_t total = requests.size() * 2;
  std::atomic<std::size_t> cursor{0};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&] {
      server::Client client(opt.socket_path);
      for (;;) {
        const std::size_t i = cursor.fetch_add(1);
        if (i >= total) break;
        const std::size_t item = i % requests.size();
        server::Request req = requests[item];
        req.id = i;
        req.jobs = 1 + static_cast<int>(i % 4);
        client.sendLine(server::requestLine(req));
        const server::Json reply = server::Json::parse(client.recvLine());
        if (!reply.getBool("ok", false) ||
            reply.getInt("id", -1) != static_cast<int>(i) ||
            reply.getString("verilog", "") != expected[item].verilog ||
            reply.getString("sdc", "") != expected[item].sdc ||
            reply.find("report") == nullptr ||
            reply.find("report")->dump() != expected[item].report) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  const server::ServerStats stats = srv.stats();
  EXPECT_EQ(stats.received, total);
  EXPECT_EQ(stats.completed, total);
  EXPECT_EQ(stats.failed, 0u);
  srv.stop();
}
