// Tests for the event-driven simulator, power model and flow-equivalence
// checker, including self-timed controller-ring oscillation.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "async/controllers.h"
#include "async/delay_element.h"
#include "liberty/stdlib90.h"
#include "netlist/flatten.h"
#include "netlist/verilog.h"
#include "sim/flow_equivalence.h"
#include "sim/power.h"
#include "sim/simulator.h"
#include "sim/vcd.h"

namespace nl = desync::netlist;
namespace lib = desync::liberty;
namespace sim = desync::sim;
namespace async = desync::async;

using sim::Val;

namespace {

const lib::Gatefile& gf() {
  static const lib::Library l = lib::makeStdLib90(lib::LibVariant::kHighSpeed);
  static const lib::Gatefile g(l);
  return g;
}

nl::Design parse(const char* src) {
  nl::Design d;
  nl::readVerilog(d, src, gf());
  return d;
}

TEST(Sim, CombPropagationAndDelay) {
  nl::Design d = parse(R"(
    module top (a, z);
      input a; output z;
      wire t;
      IV i1 (.A(a), .Z(t));
      IV i2 (.A(t), .Z(z));
    endmodule
  )");
  sim::Simulator s(d.top(), gf());
  s.setInput("a", Val::k0);
  s.runUntilStable(sim::nsToPs(100));
  EXPECT_EQ(s.value("z"), Val::k0);
  sim::Time t0 = s.now();
  s.setInput("a", Val::k1);
  sim::Time last = s.runUntilStable(sim::nsToPs(200));
  EXPECT_EQ(s.value("z"), Val::k1);
  // Two inverter delays: each at least the library intrinsic (12ps+).
  EXPECT_GT(last - t0, 20);
  EXPECT_LT(last - t0, sim::nsToPs(1.0));
}

TEST(Sim, XPropagatesAndResolves) {
  nl::Design d = parse(R"(
    module top (a, b, z);
      input a, b; output z;
      AN2 u (.A(a), .B(b), .Z(z));
    endmodule
  )");
  sim::Simulator s(d.top(), gf());
  s.runUntilStable(sim::nsToPs(10));
  EXPECT_EQ(s.value("z"), Val::kX);  // both inputs X
  s.setInput("a", Val::k0);  // 0 AND x = 0: X resolved by controlling value
  s.runUntilStable(sim::nsToPs(20));
  EXPECT_EQ(s.value("z"), Val::k0);
  s.setInput("a", Val::k1);  // 1 AND x = x
  s.runUntilStable(sim::nsToPs(30));
  EXPECT_EQ(s.value("z"), Val::kX);
  s.setInput("b", Val::k1);
  s.runUntilStable(sim::nsToPs(40));
  EXPECT_EQ(s.value("z"), Val::k1);
}

TEST(Sim, InertialGlitchFiltering) {
  // A pulse shorter than the buffer delay must not appear at the output.
  nl::Design d = parse(R"(
    module top (a, z);
      input a; output z;
      BF u (.A(a), .Z(z));
    endmodule
  )");
  sim::Simulator s(d.top(), gf());
  s.setInput("a", Val::k0);
  s.runUntilStable(sim::nsToPs(10));
  int changes = 0;
  s.watchNet("z", [&](sim::Time, Val) { ++changes; });
  // 1ps pulse, buffer delay ~25ps.
  s.setInputAt("a", Val::k1, s.now() + 100);
  s.setInputAt("a", Val::k0, s.now() + 101);
  s.runUntilStable(sim::nsToPs(50));
  EXPECT_EQ(changes, 0);
  EXPECT_EQ(s.value("z"), Val::k0);
}

TEST(Sim, FlipFlopCapturesOnPosedge) {
  nl::Design d = parse(R"(
    module top (d, clk, q);
      input d, clk; output q;
      DFF r (.D(d), .CP(clk), .Q(q));
    endmodule
  )");
  sim::Simulator s(d.top(), gf());
  s.setInput("clk", Val::k0);
  s.setInput("d", Val::k1);
  s.runUntilStable(sim::nsToPs(10));
  EXPECT_EQ(s.value("q"), Val::kX);  // not yet clocked
  s.setInput("clk", Val::k1);
  s.runUntilStable(sim::nsToPs(20));
  EXPECT_EQ(s.value("q"), Val::k1);
  // Data change without an edge does not propagate.
  s.setInput("d", Val::k0);
  s.runUntilStable(sim::nsToPs(30));
  EXPECT_EQ(s.value("q"), Val::k1);
  // Falling edge: no capture.
  s.setInput("clk", Val::k0);
  s.runUntilStable(sim::nsToPs(40));
  EXPECT_EQ(s.value("q"), Val::k1);
  const sim::CaptureLog* log = s.captureOf("r");
  ASSERT_NE(log, nullptr);
  ASSERT_EQ(log->values.size(), 1u);
  EXPECT_EQ(log->values[0], Val::k1);
}

TEST(Sim, AsyncClearDominates) {
  nl::Design d = parse(R"(
    module top (d, clk, cdn, q);
      input d, clk, cdn; output q;
      DFFR r (.D(d), .CP(clk), .CDN(cdn), .Q(q));
    endmodule
  )");
  sim::Simulator s(d.top(), gf());
  s.setInput("clk", Val::k0);
  s.setInput("d", Val::k1);
  s.setInput("cdn", Val::k0);  // clear active (low)
  s.runUntilStable(sim::nsToPs(10));
  EXPECT_EQ(s.value("q"), Val::k0);
  // Clock edge while clear asserted: stays 0.
  s.setInput("clk", Val::k1);
  s.runUntilStable(sim::nsToPs(20));
  EXPECT_EQ(s.value("q"), Val::k0);
  // Release clear, clock in the 1.
  s.setInput("cdn", Val::k1);
  s.setInput("clk", Val::k0);
  s.runUntilStable(sim::nsToPs(30));
  s.setInput("clk", Val::k1);
  s.runUntilStable(sim::nsToPs(40));
  EXPECT_EQ(s.value("q"), Val::k1);
}

TEST(Sim, ScanMuxSelectsScanIn) {
  nl::Design d = parse(R"(
    module top (d, si, se, clk, q);
      input d, si, se, clk; output q;
      SDFF r (.D(d), .SI(si), .SE(se), .CP(clk), .Q(q));
    endmodule
  )");
  sim::Simulator s(d.top(), gf());
  s.setInput("clk", Val::k0);
  s.setInput("d", Val::k0);
  s.setInput("si", Val::k1);
  s.setInput("se", Val::k1);
  s.runUntilStable(sim::nsToPs(10));
  s.setInput("clk", Val::k1);
  s.runUntilStable(sim::nsToPs(20));
  EXPECT_EQ(s.value("q"), Val::k1);  // scan path
  s.setInput("se", Val::k0);
  s.setInput("clk", Val::k0);
  s.runUntilStable(sim::nsToPs(30));
  s.setInput("clk", Val::k1);
  s.runUntilStable(sim::nsToPs(40));
  EXPECT_EQ(s.value("q"), Val::k0);  // functional path
}

TEST(Sim, SyncResetFlipFlop) {
  nl::Design d = parse(R"(
    module top (d, rn, clk, q);
      input d, rn, clk; output q;
      DFFSYNR r (.D(d), .RN(rn), .CP(clk), .Q(q));
    endmodule
  )");
  sim::Simulator s(d.top(), gf());
  s.setInput("clk", Val::k0);
  s.setInput("d", Val::k1);
  s.setInput("rn", Val::k0);  // sync reset armed
  s.runUntilStable(sim::nsToPs(10));
  EXPECT_EQ(s.value("q"), Val::kX);  // needs a clock edge
  s.setInput("clk", Val::k1);
  s.runUntilStable(sim::nsToPs(20));
  EXPECT_EQ(s.value("q"), Val::k0);
  s.setInput("rn", Val::k1);
  s.setInput("clk", Val::k0);
  s.runUntilStable(sim::nsToPs(30));
  s.setInput("clk", Val::k1);
  s.runUntilStable(sim::nsToPs(40));
  EXPECT_EQ(s.value("q"), Val::k1);
}

TEST(Sim, LatchTransparency) {
  nl::Design d = parse(R"(
    module top (d, g, q);
      input d, g; output q;
      LD l (.D(d), .G(g), .Q(q));
    endmodule
  )");
  sim::Simulator s(d.top(), gf());
  s.setInput("g", Val::k1);
  s.setInput("d", Val::k0);
  s.runUntilStable(sim::nsToPs(10));
  EXPECT_EQ(s.value("q"), Val::k0);
  s.setInput("d", Val::k1);  // transparent: follows
  s.runUntilStable(sim::nsToPs(20));
  EXPECT_EQ(s.value("q"), Val::k1);
  s.setInput("g", Val::k0);  // close
  s.runUntilStable(sim::nsToPs(30));
  s.setInput("d", Val::k0);  // opaque: held
  s.runUntilStable(sim::nsToPs(40));
  EXPECT_EQ(s.value("q"), Val::k1);
  const sim::CaptureLog* log = s.captureOf("l");
  ASSERT_NE(log, nullptr);
  ASSERT_EQ(log->values.size(), 1u);  // one closing edge
  EXPECT_EQ(log->values[0], Val::k1);
}

TEST(Sim, ClockGateBlocksAndPasses) {
  nl::Design d = parse(R"(
    module top (e, clk, gck);
      input e, clk; output gck;
      CGL cg (.E(e), .CP(clk), .Z(gck));
    endmodule
  )");
  sim::Simulator s(d.top(), gf());
  s.setInput("clk", Val::k0);
  s.setInput("e", Val::k0);
  s.runUntilStable(sim::nsToPs(10));
  s.setInput("clk", Val::k1);
  s.runUntilStable(sim::nsToPs(20));
  EXPECT_EQ(s.value("gck"), Val::k0);  // gated off
  s.setInput("clk", Val::k0);
  s.setInput("e", Val::k1);
  s.runUntilStable(sim::nsToPs(30));
  s.setInput("clk", Val::k1);
  s.runUntilStable(sim::nsToPs(40));
  EXPECT_EQ(s.value("gck"), Val::k1);  // passes
}

TEST(Sim, DelayElementAsymmetry) {
  nl::Design d;
  async::DelayElementSpec spec;
  spec.levels = 16;
  nl::Module& del = async::ensureDelayElement(d, gf(), spec);
  nl::Module& top = d.addModule("top");
  nl::NetId a = top.addNet("a");
  nl::NetId z = top.addNet("z");
  top.addPort("a", nl::PortDir::kInput, a);
  top.addPort("z", nl::PortDir::kOutput, z);
  top.addCell("u", std::string(del.name()),
              {{"A", nl::PortDir::kInput, a}, {"Z", nl::PortDir::kOutput, z}});
  d.setTop("top");
  nl::flattenTop(d);

  sim::Simulator s(d.top(), gf());
  s.setInput("a", Val::k0);
  s.runUntilStable(sim::nsToPs(10));
  sim::Time t0 = s.now();
  s.setInput("a", Val::k1);
  sim::Time rise_done = s.runUntilStable(sim::nsToPs(1000));
  sim::Time rise = rise_done - t0;
  EXPECT_EQ(s.value("z"), Val::k1);
  t0 = s.now();
  s.setInput("a", Val::k0);
  sim::Time fall_done = s.runUntilStable(sim::nsToPs(2000));
  sim::Time fall = fall_done - t0;
  EXPECT_EQ(s.value("z"), Val::k0);
  // Slow rise (16 AND stages), fast fall (one stage, parallel reset).
  EXPECT_GT(rise, fall * 5);
}

TEST(Sim, ControllerRingOscillates) {
  nl::Design d;
  async::buildControllerRing(d, gf(), async::ControllerKind::kSemiDecoupled,
                             2);
  d.setTop("DR_RING_SD_4");
  nl::flattenTop(d);
  sim::Simulator s(d.top(), gf());
  int g0_rises = 0;
  s.watchNet("g0", [&](sim::Time, Val v) {
    if (v == Val::k1) ++g0_rises;
  });
  s.setInput("rst", Val::k1);
  s.run(sim::nsToPs(5));
  s.setInput("rst", Val::k0);
  s.run(sim::nsToPs(200));
  // The self-timed network must keep cycling without any external stimulus.
  EXPECT_GE(g0_rises, 10);
}

TEST(Sim, ControllerRingPeriodScalesWithDelays) {
  auto measure = [&](double scale) {
    nl::Design d;
    async::buildControllerRing(d, gf(),
                               async::ControllerKind::kSemiDecoupled, 2);
    d.setTop("DR_RING_SD_4");
    nl::flattenTop(d);
    sim::SimOptions opt;
    opt.delay_scale = scale;
    sim::Simulator s(d.top(), gf(), opt);
    std::vector<sim::Time> rises;
    s.watchNet("g0", [&](sim::Time t, Val v) {
      if (v == Val::k1) rises.push_back(t);
    });
    s.setInput("rst", Val::k1);
    s.run(sim::nsToPs(5));
    s.setInput("rst", Val::k0);
    s.run(sim::nsToPs(500));
    EXPECT_GE(rises.size(), 4u);
    return static_cast<double>(rises.back() - rises.front()) /
           static_cast<double>(rises.size() - 1);
  };
  double nominal = measure(1.0);
  double slow = measure(1.5);
  // Self-timed: the period tracks the gate delays (thesis §2.5).
  EXPECT_GT(slow, nominal * 1.3);
  EXPECT_LT(slow, nominal * 1.7);
}

TEST(Sim, PowerScalesWithActivity) {
  nl::Design d = parse(R"(
    module top (a, z);
      input a; output z;
      wire t1, t2, t3;
      IV i1 (.A(a), .Z(t1));
      IV i2 (.A(t1), .Z(t2));
      IV i3 (.A(t2), .Z(t3));
      IV i4 (.A(t3), .Z(z));
    endmodule
  )");
  // Same observation window, different activity: power must scale with the
  // toggle count.
  auto toggleRun = [&](int toggles) {
    sim::Simulator s(d.top(), gf());
    s.setInput("a", Val::k0);
    s.runUntilStable(sim::nsToPs(10));
    const double span_ns = 200.0;
    for (int i = 0; i < toggles; ++i) {
      s.setInputAt("a", i % 2 == 0 ? Val::k1 : Val::k0,
                   s.now() + sim::nsToPs(span_ns * (i + 1) / toggles));
    }
    sim::Time window = s.now() + sim::nsToPs(span_ns + 20.0);
    s.run(window);
    return sim::estimatePower(s, gf(), window);
  };
  sim::PowerReport low = toggleRun(4);
  sim::PowerReport high = toggleRun(40);
  EXPECT_GT(high.dynamic_mw, low.dynamic_mw * 2);
  EXPECT_DOUBLE_EQ(high.leakage_mw, low.leakage_mw);
  EXPECT_GT(low.leakage_mw, 0.0);
}

TEST(Sim, FlowEquivalenceCheckerMechanics) {
  const char* src = R"(
    module top (d, clk, q);
      input d, clk; output q;
      DFF r_Ls (.D(d), .CP(clk), .Q(q));
    endmodule
  )";
  const char* sync_src = R"(
    module stop (d, clk, q);
      input d, clk; output q;
      DFF r (.D(d), .CP(clk), .Q(q));
    endmodule
  )";
  nl::Design d1 = parse(sync_src);
  nl::Design d2 = parse(src);
  auto drive = [&](sim::Simulator& s, std::vector<int> bits) {
    s.setInput("clk", Val::k0);
    for (std::size_t i = 0; i < bits.size(); ++i) {
      s.setInput("d", bits[i] != 0 ? Val::k1 : Val::k0);
      s.run(s.now() + sim::nsToPs(5));
      s.setInput("clk", Val::k1);
      s.run(s.now() + sim::nsToPs(5));
      s.setInput("clk", Val::k0);
      s.run(s.now() + sim::nsToPs(5));
    }
  };
  {
    sim::Simulator a(d1.top(), gf()), b(d2.top(), gf());
    drive(a, {1, 0, 1, 1});
    drive(b, {1, 0, 1, 1});
    sim::FlowEqReport r = sim::checkFlowEquivalence(a, b);
    EXPECT_TRUE(r.equivalent);
    EXPECT_EQ(r.elements_compared, 1u);
    EXPECT_EQ(r.mismatches, 0u);
  }
  {
    sim::Simulator a(d1.top(), gf()), b(d2.top(), gf());
    drive(a, {1, 0, 1, 1});
    drive(b, {1, 1, 1, 1});  // diverges at capture #1
    sim::FlowEqReport r = sim::checkFlowEquivalence(a, b);
    EXPECT_FALSE(r.equivalent);
    EXPECT_GE(r.mismatches, 1u);
    ASSERT_FALSE(r.details.empty());
  }
}

TEST(Sim, VcdWriterProducesFile) {
  nl::Design d = parse(R"(
    module top (a, z);
      input a; output z;
      IV i1 (.A(a), .Z(z));
    endmodule
  )");
  sim::Simulator s(d.top(), gf());
  std::string path = ::testing::TempDir() + "/desync_test.vcd";
  {
    sim::VcdWriter vcd(s, path, {"a", "z"});
    s.setInput("a", Val::k0);
    s.runUntilStable(sim::nsToPs(10));
    s.setInput("a", Val::k1);
    s.runUntilStable(sim::nsToPs(20));
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("$enddefinitions"), std::string::npos);
  EXPECT_NE(all.find("$var wire 1"), std::string::npos);
  EXPECT_NE(all.find('#'), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
