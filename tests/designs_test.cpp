// Tests for the design generators: small circuits behave architecturally,
// and the gate-level DLX matches a cycle-accurate C++ pipeline model.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>

#include "designs/cpu.h"
#include "designs/cpu_isa.h"
#include "designs/small.h"
#include "liberty/stdlib90.h"
#include "sim/simulator.h"

namespace nl = desync::netlist;
namespace lib = desync::liberty;
namespace sim = desync::sim;
namespace designs = desync::designs;

using sim::Val;

namespace {

const lib::Gatefile& gf() {
  static const lib::Library l = lib::makeStdLib90(lib::LibVariant::kHighSpeed);
  static const lib::Gatefile g(l);
  return g;
}

/// Clock driver: applies reset, then runs `cycles` posedges.
class Tb {
 public:
  explicit Tb(sim::Simulator& s, double period_ns = 4.0)
      : s_(&s), half_(sim::nsToPs(period_ns / 2)) {
    s_->setInput("clk", Val::k0);
    s_->setInput("rst_n", Val::k0);
    s_->run(s_->now() + 2 * half_);
    s_->setInput("rst_n", Val::k1);
    s_->run(s_->now() + half_);
  }

  void cycle(int n = 1) {
    for (int i = 0; i < n; ++i) {
      s_->setInput("clk", Val::k1);
      s_->run(s_->now() + half_);
      s_->setInput("clk", Val::k0);
      s_->run(s_->now() + half_);
    }
  }

  std::uint64_t readBus(const std::string& base, int bits) {
    std::uint64_t v = 0;
    for (int i = 0; i < bits; ++i) {
      Val b = s_->value(base + "[" + std::to_string(i) + "]");
      EXPECT_NE(b, Val::kX) << base << "[" << i << "]";
      if (b == Val::k1) v |= 1ull << i;
    }
    return v;
  }

 private:
  sim::Simulator* s_;
  sim::Time half_;
};

TEST(SmallDesigns, CounterCounts) {
  nl::Design d;
  designs::buildCounter(d, gf(), 8);
  sim::Simulator s(*d.findModule("counter"), gf());
  Tb tb(s);
  tb.cycle(1);
  EXPECT_EQ(tb.readBus("q", 8), 1u);
  tb.cycle(9);
  EXPECT_EQ(tb.readBus("q", 8), 10u);
}

TEST(SmallDesigns, Pipe2Accumulates) {
  nl::Design d;
  designs::buildPipe2(d, gf(), 8);
  sim::Simulator s(*d.findModule("pipe2"), gf());
  Tb tb(s);
  // After k cycles: counter = k, acc = sum_{i<k} i = k(k-1)/2 (mod 256).
  tb.cycle(10);
  EXPECT_EQ(tb.readBus("acc", 8), 45u);
}

TEST(SmallDesigns, LfsrRunsThroughStates) {
  nl::Design d;
  designs::buildLfsr(d, gf(), 8);
  sim::Simulator s(*d.findModule("lfsr"), gf());
  Tb tb(s);
  std::array<bool, 256> seen{};
  int distinct = 0;
  for (int i = 0; i < 60; ++i) {
    tb.cycle(1);
    auto v = tb.readBus("q", 8);
    if (!seen[v]) {
      seen[v] = true;
      ++distinct;
    }
  }
  EXPECT_GT(distinct, 40);
}

// ----------------------------------------------------------- DLX vs model

/// Cycle-accurate software model of the generated 4-stage pipeline,
/// including its registered branch redirect (3 delay slots) and the lack of
/// forwarding.
class PipeModel {
 public:
  explicit PipeModel(const designs::CpuConfig& cfg) : cfg_(cfg) {
    regs_.assign(static_cast<std::size_t>(cfg.n_regs), 0);
    dmem_.assign(static_cast<std::size_t>(cfg.dmem_words), 0);
  }

  void cycle() {
    using namespace designs::isa;
    const std::uint32_t xmask =
        cfg_.xlen >= 64 ? ~0u : static_cast<std::uint32_t>((1ull << cfg_.xlen) - 1);

    // MEM stage (writeback happens at this cycle's clock edge).
    std::uint32_t wb_wen = 0, wb_waddr = 0, wb_wdata = 0;
    std::uint32_t dmem_waddr = 0, dmem_wdata = 0, dmem_wen = 0;
    {
      std::uint32_t addr = exmem_alu_ & (cfg_.dmem_words - 1u);
      std::uint32_t mem_read = dmem_[addr];
      wb_wdata = exmem_islw_ ? mem_read : exmem_alu_;
      wb_waddr = exmem_waddr_;
      wb_wen = exmem_wen_ && exmem_waddr_ != 0;
      dmem_wen = exmem_issw_;
      dmem_waddr = addr;
      dmem_wdata = exmem_b_;
    }

    // EX stage.
    std::uint32_t n_alu = 0, n_taken = 0, n_target = 0;
    {
      std::uint32_t b2 = idex_useimm_ ? idex_imm_ : idex_b_;
      std::uint32_t r = 0;
      if (idex_opadd_) r = idex_a_ + b2;
      if (idex_opsub_) r = idex_a_ - b2;
      if (idex_opand_) r = idex_a_ & b2;
      if (idex_opor_) r = idex_a_ | b2;
      if (idex_opxor_) r = idex_a_ ^ b2;
      if (idex_opslt_) r = idex_a_ < b2 ? 1 : 0;
      if (idex_opsll_) r = idex_a_ << (idex_imm_ & 31u);
      if (idex_opsrl_) r = idex_a_ >> (idex_imm_ & 31u);
      if (idex_oplui_) r = (idex_imm_ & 0xffffu) << 16;
      if (idex_opmul_) r = idex_a_ * b2;
      n_alu = r & xmask;
      bool eq = idex_a_ == idex_b_;
      n_taken = (idex_isbeq_ && eq) || (idex_isbne_ && !eq) || idex_isj_;
      const std::uint32_t pc_mask = cfg_.rom_words - 1u;
      n_target = idex_isj_ ? (idex_imm_ & pc_mask)
                           : ((idex_pc_ + 1 + idex_imm_) & pc_mask);
    }

    // ID stage.
    std::uint32_t instr = ifid_instr_;
    std::uint32_t op = instr >> 26;
    std::uint32_t rs = (instr >> 21) & (cfg_.n_regs - 1u);
    std::uint32_t rt = (instr >> 16) & (cfg_.n_regs - 1u);
    std::uint32_t rd = (instr >> 11) & (cfg_.n_regs - 1u);
    std::uint32_t imm16 = instr & 0xffffu;
    auto isop = [&](std::uint32_t o) { return op == o; };
    bool use_imm = isop(kAddi) || isop(kLui) || isop(kSlli) || isop(kSrli) ||
                   isop(kLw) || isop(kSw) || isop(kAndi) || isop(kOri) ||
                   isop(kXori);
    bool imm_zext = isop(kAndi) || isop(kOri) || isop(kXori);
    std::uint32_t imm =
        imm_zext ? imm16
                 : static_cast<std::uint32_t>(
                       static_cast<std::int32_t>(static_cast<std::int16_t>(
                           static_cast<std::uint16_t>(imm16))));
    imm &= xmask;
    bool wen = isop(kAdd) || isop(kSub) || isop(kAnd) || isop(kOr) ||
               isop(kXor) || isop(kSlt) || isop(kAddi) || isop(kLui) ||
               isop(kSlli) || isop(kSrli) || isop(kLw) || isop(kAndi) ||
               isop(kOri) || isop(kXori) ||
               (cfg_.with_multiplier && isop(kMul));

    std::uint32_t n_idex_a = regs_[rs], n_idex_b = regs_[rt];
    std::uint32_t n_waddr = use_imm ? rt : rd;

    // IF stage.
    const std::uint32_t pc_mask = cfg_.rom_words - 1u;
    std::uint32_t n_pc = red_taken_ ? red_target_ : ((pc_ + 1) & pc_mask);
    std::uint32_t fetched =
        pc_ < cfg_.program.size()
            ? static_cast<std::uint32_t>(cfg_.program[pc_])
            : 0;

    // --- clock edge: commit all state ---
    if (dmem_wen) dmem_[dmem_waddr] = dmem_wdata;
    if (wb_wen) regs_[wb_waddr] = wb_wdata;

    exmem_alu_ = n_alu;
    exmem_b_ = idex_b_;
    exmem_waddr_ = idex_waddr_;
    exmem_wen_ = idex_wen_;
    exmem_islw_ = idex_islw_;
    exmem_issw_ = idex_issw_;
    red_taken_ = n_taken;
    red_target_ = n_target;

    idex_a_ = n_idex_a;
    idex_b_ = n_idex_b;
    idex_imm_ = imm;
    idex_pc_ = ifid_pc_;
    idex_waddr_ = n_waddr;
    idex_wen_ = wen;
    idex_useimm_ = use_imm;
    idex_islw_ = isop(kLw);
    idex_issw_ = isop(kSw);
    idex_isbeq_ = isop(kBeq);
    idex_isbne_ = isop(kBne);
    idex_isj_ = isop(kJ);
    idex_opadd_ = isop(kAdd) || isop(kAddi) || isop(kLw) || isop(kSw);
    idex_opsub_ = isop(kSub);
    idex_opand_ = isop(kAnd) || isop(kAndi);
    idex_opor_ = isop(kOr) || isop(kOri);
    idex_opxor_ = isop(kXor) || isop(kXori);
    idex_opslt_ = isop(kSlt);
    idex_opsll_ = isop(kSlli);
    idex_opsrl_ = isop(kSrli);
    idex_oplui_ = isop(kLui);
    idex_opmul_ = cfg_.with_multiplier && isop(kMul);

    ifid_instr_ = fetched;
    ifid_pc_ = pc_;
    pc_ = n_pc;
  }

  [[nodiscard]] std::uint32_t pc() const { return pc_; }
  [[nodiscard]] std::uint32_t reg(int i) const {
    return regs_[static_cast<std::size_t>(i)];
  }

 private:
  designs::CpuConfig cfg_;
  std::vector<std::uint32_t> regs_;
  std::vector<std::uint32_t> dmem_;
  std::uint32_t pc_ = 0;
  std::uint32_t ifid_instr_ = 0, ifid_pc_ = 0;
  std::uint32_t idex_a_ = 0, idex_b_ = 0, idex_imm_ = 0, idex_pc_ = 0;
  std::uint32_t idex_waddr_ = 0;
  bool idex_wen_ = false, idex_useimm_ = false, idex_islw_ = false,
       idex_issw_ = false, idex_isbeq_ = false, idex_isbne_ = false,
       idex_isj_ = false;
  bool idex_opadd_ = false, idex_opsub_ = false, idex_opand_ = false,
       idex_opor_ = false, idex_opxor_ = false, idex_opslt_ = false,
       idex_opsll_ = false, idex_opsrl_ = false, idex_oplui_ = false,
       idex_opmul_ = false;
  std::uint32_t exmem_alu_ = 0, exmem_b_ = 0, exmem_waddr_ = 0;
  bool exmem_wen_ = false, exmem_islw_ = false, exmem_issw_ = false;
  std::uint32_t red_taken_ = 0, red_target_ = 0;
};

TEST(Dlx, MatchesCycleAccurateModel) {
  designs::CpuConfig cfg = designs::dlxConfig();
  nl::Design d;
  designs::buildCpu(d, gf(), cfg);
  sim::Simulator s(*d.findModule("dlx"), gf());
  Tb tb(s);
  PipeModel model(cfg);

  int pcw = 0;
  while ((1 << pcw) < cfg.rom_words) ++pcw;
  for (int cyc = 0; cyc < 120; ++cyc) {
    tb.cycle(1);
    model.cycle();
    ASSERT_EQ(tb.readBus("pc", pcw), model.pc()) << "cycle " << cyc;
    if (cyc % 10 == 9) {
      ASSERT_EQ(tb.readBus("r1", cfg.xlen), model.reg(1)) << "cycle " << cyc;
    }
  }
  // The program must actually be doing something.
  EXPECT_NE(model.reg(1), 0u);
}

TEST(Dlx, SizeIsInPaperBallpark) {
  nl::Design d;
  designs::buildCpu(d, gf(), designs::dlxConfig());
  // Paper DLX: 14855 cells post-synthesis.  Ours should be the same order
  // of magnitude (thousands to tens of thousands).
  std::size_t cells = d.findModule("dlx")->numCells();
  EXPECT_GT(cells, 3000u);
  EXPECT_LT(cells, 40000u);
}

TEST(ArmClass, BuildsAndIsBiggerThanDlx) {
  nl::Design d;
  designs::buildCpu(d, gf(), designs::dlxConfig());
  designs::buildCpu(d, gf(), designs::armClassConfig());
  std::size_t dlx = d.findModule("dlx")->numCells();
  std::size_t arm = d.findModule("armlike")->numCells();
  EXPECT_GT(arm, dlx * 3 / 2);
  EXPECT_TRUE(d.findModule("armlike")->checkInvariants().empty());
}

}  // namespace
