// Randomized round-trip property tests: random gate-level circuits survive
// Verilog write/read cycles structurally intact, and cleaning preserves
// simulation behaviour.
//
// The random source and circuit generator are the fuzzing subsystem's
// shared ones (src/fuzz): a seed printed by any harness reproduces the
// identical circuit here.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/generator.h"
#include "fuzz/rng.h"
#include "liberty/gatefile.h"
#include "liberty/stdlib90.h"
#include "netlist/cleaning.h"
#include "netlist/verilog.h"
#include "sim/simulator.h"

namespace nl = desync::netlist;
namespace lib = desync::liberty;
namespace sim = desync::sim;
namespace fuzz = desync::fuzz;

using sim::Val;

namespace {

const lib::Gatefile& gf() {
  static const lib::Library l = lib::makeStdLib90(lib::LibVariant::kHighSpeed);
  static const lib::Gatefile g(l);
  return g;
}

constexpr fuzz::CombConfig kConfig{/*n_inputs=*/5, /*n_gates=*/60,
                                   /*n_outputs=*/4};

/// Evaluates the circuit's outputs for one input vector.
std::string outputs(const nl::Module& m, const lib::Gatefile& g,
                    std::uint32_t vector, int n_inputs) {
  sim::Simulator s(m, g);
  for (int i = 0; i < n_inputs; ++i) {
    s.setInput("in" + std::to_string(i),
               sim::fromBool(((vector >> i) & 1u) != 0));
  }
  s.runUntilStable(s.now() + sim::nsToPs(1000));
  std::string out;
  for (int i = 0; i < kConfig.n_outputs; ++i) {
    out.push_back(sim::toChar(s.value("out" + std::to_string(i))));
  }
  return out;
}

class Fuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Fuzz, VerilogRoundTripPreservesStructureAndBehaviour) {
  fuzz::Rng rnd{GetParam()};
  nl::Design d1;
  fuzz::buildRandomComb(d1, gf(), rnd, kConfig);
  EXPECT_TRUE(d1.top().checkInvariants().empty());

  std::string text = nl::writeVerilog(d1);
  nl::Design d2;
  nl::readVerilog(d2, text, gf());
  EXPECT_EQ(d2.top().numCells(), d1.top().numCells());
  EXPECT_EQ(d2.top().numPorts(), d1.top().numPorts());
  EXPECT_TRUE(d2.top().checkInvariants().empty());

  // Behavioural equivalence on a handful of vectors.
  fuzz::Rng vec{GetParam() ^ 0xabcdef};
  for (int t = 0; t < 6; ++t) {
    std::uint32_t v = static_cast<std::uint32_t>(vec());
    EXPECT_EQ(outputs(d1.top(), gf(), v, kConfig.n_inputs),
              outputs(d2.top(), gf(), v, kConfig.n_inputs))
        << "vector " << v;
  }
}

TEST_P(Fuzz, CleaningPreservesBehaviour) {
  fuzz::Rng rnd{GetParam() + 17};
  nl::Design d1;
  fuzz::buildRandomComb(d1, gf(), rnd, kConfig);
  // Reference responses before cleaning.
  std::vector<std::string> before;
  fuzz::Rng vec{GetParam() ^ 0x5a5a};
  std::vector<std::uint32_t> vectors;
  for (int t = 0; t < 6; ++t) {
    vectors.push_back(static_cast<std::uint32_t>(vec()));
  }
  for (std::uint32_t v : vectors) {
    before.push_back(outputs(d1.top(), gf(), v, kConfig.n_inputs));
  }

  nl::CleaningRules rules;
  rules.is_buffer = [](std::string_view t) { return gf().isBuffer(t); };
  rules.is_inverter = [](std::string_view t) { return gf().isInverter(t); };
  nl::CleaningStats stats = nl::cleanLogic(d1.top(), rules);
  EXPECT_TRUE(d1.top().checkInvariants().empty());

  for (std::size_t i = 0; i < vectors.size(); ++i) {
    EXPECT_EQ(outputs(d1.top(), gf(), vectors[i], kConfig.n_inputs),
              before[i])
        << "vector " << vectors[i] << " after removing "
        << stats.buffers_removed << " buffers / "
        << stats.inverter_pairs_removed << " inverter pairs";
  }
}

TEST(Rng, BelowIsUnbiasedOverSmallRanges) {
  // 9 does not divide 2^64, so naive modulo would skew low residues; the
  // rejection draw must keep every bucket within a few percent of uniform.
  fuzz::Rng rnd{42};
  constexpr int kBuckets = 9;
  constexpr int kDraws = 90000;
  int count[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) {
    ++count[rnd.below(kBuckets)];
  }
  for (int b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(count[b], kDraws / kBuckets, kDraws / kBuckets / 10)
        << "bucket " << b;
  }
}

TEST(Rng, RangeCoversBothEndsInclusive) {
  fuzz::Rng rnd{7};
  bool lo = false, hi = false;
  for (int i = 0; i < 1000; ++i) {
    const int v = rnd.range(3, 5);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 5);
    lo = lo || v == 3;
    hi = hi || v == 5;
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fuzz,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88,
                                           99, 123));

}  // namespace
