// Randomized round-trip property tests: random gate-level circuits survive
// Verilog write/read cycles structurally intact, and cleaning preserves
// simulation behaviour.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "liberty/gatefile.h"
#include "liberty/stdlib90.h"
#include "netlist/cleaning.h"
#include "netlist/verilog.h"
#include "sim/simulator.h"

namespace nl = desync::netlist;
namespace lib = desync::liberty;
namespace sim = desync::sim;

using sim::Val;

namespace {

const lib::Gatefile& gf() {
  static const lib::Library l = lib::makeStdLib90(lib::LibVariant::kHighSpeed);
  static const lib::Gatefile g(l);
  return g;
}

struct Rng {
  std::uint64_t s;
  std::uint64_t operator()() {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    return s >> 33;
  }
};

/// Builds a random combinational circuit with `n_gates` gates over
/// `n_inputs` inputs (buffers and inverters included so cleaning has work).
void buildRandom(nl::Design& d, Rng& rnd, int n_inputs, int n_gates) {
  const std::vector<std::string> gates = {"IV", "BF", "ND2", "NR2",  "AN2",
                                          "OR2", "EO", "EN",  "MUX21"};
  nl::Module& m = d.addModule("fuzz");
  std::vector<nl::NetId> pool;
  for (int i = 0; i < n_inputs; ++i) {
    nl::NetId n = m.addNet("in" + std::to_string(i));
    m.addPort("in" + std::to_string(i), nl::PortDir::kInput, n);
    pool.push_back(n);
  }
  for (int g = 0; g < n_gates; ++g) {
    const std::string& type = gates[rnd() % gates.size()];
    const lib::LibCell& cell = gf().library().cell(type);
    std::vector<nl::Module::PinInit> pins;
    for (const std::string& in : cell.inputPins()) {
      pins.push_back({in, nl::PortDir::kInput, pool[rnd() % pool.size()]});
    }
    nl::NetId out = m.addNet("n" + std::to_string(g));
    pins.push_back({"Z", nl::PortDir::kOutput, out});
    m.addCell("u" + std::to_string(g), type, pins);
    pool.push_back(out);
  }
  // A few observable outputs.
  for (int i = 0; i < 4; ++i) {
    m.addPort("out" + std::to_string(i), nl::PortDir::kOutput,
              pool[pool.size() - 1 - static_cast<std::size_t>(i)]);
  }
}

/// Evaluates the circuit's outputs for one input vector.
std::string outputs(const nl::Module& m, const lib::Gatefile& g,
                    std::uint32_t vector, int n_inputs) {
  sim::Simulator s(m, g);
  for (int i = 0; i < n_inputs; ++i) {
    s.setInput("in" + std::to_string(i),
               sim::fromBool(((vector >> i) & 1u) != 0));
  }
  s.runUntilStable(s.now() + sim::nsToPs(1000));
  std::string out;
  for (int i = 0; i < 4; ++i) {
    out.push_back(sim::toChar(s.value("out" + std::to_string(i))));
  }
  return out;
}

class Fuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Fuzz, VerilogRoundTripPreservesStructureAndBehaviour) {
  Rng rnd{GetParam()};
  nl::Design d1;
  buildRandom(d1, rnd, 5, 60);
  EXPECT_TRUE(d1.top().checkInvariants().empty());

  std::string text = nl::writeVerilog(d1);
  nl::Design d2;
  nl::readVerilog(d2, text, gf());
  EXPECT_EQ(d2.top().numCells(), d1.top().numCells());
  EXPECT_EQ(d2.top().numPorts(), d1.top().numPorts());
  EXPECT_TRUE(d2.top().checkInvariants().empty());

  // Behavioural equivalence on a handful of vectors.
  Rng vec{GetParam() ^ 0xabcdef};
  for (int t = 0; t < 6; ++t) {
    std::uint32_t v = static_cast<std::uint32_t>(vec());
    EXPECT_EQ(outputs(d1.top(), gf(), v, 5), outputs(d2.top(), gf(), v, 5))
        << "vector " << v;
  }
}

TEST_P(Fuzz, CleaningPreservesBehaviour) {
  Rng rnd{GetParam() + 17};
  nl::Design d1;
  buildRandom(d1, rnd, 5, 60);
  // Reference responses before cleaning.
  std::vector<std::string> before;
  Rng vec{GetParam() ^ 0x5a5a};
  std::vector<std::uint32_t> vectors;
  for (int t = 0; t < 6; ++t) vectors.push_back(static_cast<std::uint32_t>(vec()));
  for (std::uint32_t v : vectors) {
    before.push_back(outputs(d1.top(), gf(), v, 5));
  }

  nl::CleaningRules rules;
  rules.is_buffer = [](std::string_view t) { return gf().isBuffer(t); };
  rules.is_inverter = [](std::string_view t) { return gf().isInverter(t); };
  nl::CleaningStats stats = nl::cleanLogic(d1.top(), rules);
  EXPECT_TRUE(d1.top().checkInvariants().empty());

  for (std::size_t i = 0; i < vectors.size(); ++i) {
    EXPECT_EQ(outputs(d1.top(), gf(), vectors[i], 5), before[i])
        << "vector " << vectors[i] << " after removing "
        << stats.buffers_removed << " buffers / "
        << stats.inverter_pairs_removed << " inverter pairs";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fuzz,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88,
                                           99, 123));

}  // namespace
