// Tests for the STG engine, protocol classification (thesis Fig 2.4) and the
// speed-independent verifier.
#include <gtest/gtest.h>

#include "stg/protocols.h"
#include "stg/si_verify.h"
#include "stg/stg.h"

namespace stg = desync::stg;

namespace {

// ------------------------------------------------------------ STG engine

TEST(Stg, FireAndEnable) {
  stg::Stg net;
  auto a = net.addTransition("a+");
  auto b = net.addTransition("b+");
  net.connect(a, b, 0);
  auto p0 = net.addPlace(1);
  net.arcPT(p0, a);

  const stg::Marking& m0 = net.initialMarking();
  EXPECT_TRUE(net.isEnabled(m0, a));
  EXPECT_FALSE(net.isEnabled(m0, b));
  stg::Marking m1 = net.fire(m0, a);
  EXPECT_TRUE(net.isEnabled(m1, b));
  EXPECT_THROW((void)net.fire(m0, b), stg::StgError);
}

TEST(Stg, SimpleCycleIsLive) {
  stg::Stg net;
  net.connect("a+", "a-", 0);
  net.connect("a-", "a+", 1);
  stg::Reachability r = stg::analyze(net);
  EXPECT_EQ(r.num_states, 2u);
  EXPECT_TRUE(r.live);
  EXPECT_TRUE(r.deadlock_free);
  EXPECT_TRUE(r.output_persistent);
}

TEST(Stg, DetectsDeadlock) {
  stg::Stg net;
  // a+ enabled once; b+ waits for a token that never arrives back.
  net.connect("a+", "b+", 0);
  auto p = net.addPlace(1);
  net.arcPT(p, net.transitionFor("a+"));
  stg::Reachability r = stg::analyze(net);
  EXPECT_FALSE(r.deadlock_free);
  EXPECT_FALSE(r.live);
}

TEST(Stg, DetectsNonPersistency) {
  // Two transitions share an input place: firing one disables the other.
  stg::Stg net;
  auto a = net.addTransition("a+");
  auto b = net.addTransition("b+");
  auto p = net.addPlace(1);
  net.arcPT(p, a);
  net.arcPT(p, b);
  stg::Reachability r = stg::analyze(net);
  EXPECT_FALSE(r.output_persistent);
}

TEST(Stg, BoundsStateSpace) {
  // Token generator: a+ keeps producing into an unconsumed place.
  stg::Stg net;
  auto a = net.addTransition("a+");
  auto p = net.addPlace(1);
  net.arcPT(p, a);
  net.arcTP(a, p);
  auto sink = net.addPlace(0);
  net.arcTP(a, sink);
  stg::Reachability r = stg::analyze(net);
  EXPECT_FALSE(r.bounded);
  EXPECT_FALSE(r.live);
}

// ------------------------------------------------- Fig 2.4 classification

struct Expected {
  stg::Protocol p;
  std::size_t states;
  bool live;
  bool fe;
};

class ProtocolFig24 : public ::testing::TestWithParam<Expected> {};

TEST_P(ProtocolFig24, MatchesPublishedClassification) {
  const Expected& e = GetParam();
  stg::ProtocolClass c = stg::classifyProtocol(e.p);
  EXPECT_EQ(c.pair_states, e.states) << stg::protocolName(e.p);
  EXPECT_EQ(c.pair_live, e.live) << stg::protocolName(e.p);
  if (e.live) {
    EXPECT_TRUE(c.ring_live) << stg::protocolName(e.p);
    EXPECT_EQ(c.flow_equivalent, e.fe) << stg::protocolName(e.p);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, ProtocolFig24,
    ::testing::Values(
        // Fig 2.4: concurrency-ordered; fall-decoupled live but NOT
        // flow-equivalent; the middle three live + flow-equivalent;
        // non-overlapping not live (deadlocks; its nominal square cycle
        // would have 4 states).
        Expected{stg::Protocol::kFallDecoupled, 10, true, false},
        Expected{stg::Protocol::kDesyncModel, 8, true, true},
        Expected{stg::Protocol::kSemiDecoupled, 6, true, true},
        Expected{stg::Protocol::kSimple, 5, true, true},
        Expected{stg::Protocol::kNonOverlapping, 2, false, false}));

class RingLiveness
    : public ::testing::TestWithParam<std::tuple<stg::Protocol, int>> {};

TEST_P(RingLiveness, LiveProtocolsStayLiveInRings) {
  auto [p, n] = GetParam();
  stg::Reachability r = stg::analyze(stg::makeRingStg(p, n));
  EXPECT_TRUE(r.live) << stg::protocolName(p) << " ring " << n << ": "
                      << r.violation;
}

INSTANTIATE_TEST_SUITE_P(
    Rings, RingLiveness,
    ::testing::Combine(::testing::Values(stg::Protocol::kDesyncModel,
                                         stg::Protocol::kSemiDecoupled,
                                         stg::Protocol::kSimple),
                       ::testing::Values(2, 3, 4, 5, 6)));

TEST(Protocols, FlowEquivalenceViolationIsOverwrite) {
  stg::FlowEqResult r =
      stg::checkFlowEquivalence(stg::Protocol::kFallDecoupled);
  EXPECT_FALSE(r.holds);
  EXPECT_NE(r.violation.find("skip"), std::string::npos) << r.violation;
}

TEST(Protocols, SemiDecoupledRefinesDesyncModel) {
  // Every trace of the semi-decoupled protocol must satisfy the
  // de-synchronization model's two rules; spot-check via the monitor plus
  // liveness of both.
  EXPECT_TRUE(stg::checkFlowEquivalence(stg::Protocol::kSemiDecoupled).holds);
  EXPECT_TRUE(stg::checkFlowEquivalence(stg::Protocol::kDesyncModel).holds);
  // And the concurrency ordering of Fig 2.4 holds strictly.
  EXPECT_GT(stg::classifyProtocol(stg::Protocol::kDesyncModel).pair_states,
            stg::classifyProtocol(stg::Protocol::kSemiDecoupled).pair_states);
  EXPECT_GT(stg::classifyProtocol(stg::Protocol::kSemiDecoupled).pair_states,
            stg::classifyProtocol(stg::Protocol::kSimple).pair_states);
}

// ------------------------------------------------ SI verifier

/// Canonical C-element closed spec: inputs a, b rise concurrently, output c
/// joins them, then both fall, c follows.
stg::Stg celementSpec() {
  stg::Stg spec;
  spec.addSignal("a", stg::SignalKind::kInput);
  spec.addSignal("b", stg::SignalKind::kInput);
  spec.addSignal("c", stg::SignalKind::kOutput);
  spec.connect("a+", "c+", 0);
  spec.connect("b+", "c+", 0);
  spec.connect("c+", "a-", 0);
  spec.connect("c+", "b-", 0);
  spec.connect("a-", "c-", 0);
  spec.connect("b-", "c-", 0);
  spec.connect("c-", "a+", 1);
  spec.connect("c-", "b+", 1);
  return spec;
}

stg::GateSpec majorityCElement() {
  stg::GateSpec g;
  g.output = "c";
  g.inputs = {"a", "b", "c"};
  g.eval = [](const std::vector<bool>& v) {
    return (v[0] && v[1]) || (v[0] && v[2]) || (v[1] && v[2]);
  };
  g.initial = false;
  return g;
}

TEST(SiVerify, MajorityCElementConforms) {
  stg::SiCircuit circuit;
  circuit.inputs = {"a", "b"};
  circuit.input_initial = {false, false};
  circuit.gates = {majorityCElement()};
  stg::SiResult r = stg::verifySpeedIndependent(circuit, celementSpec());
  EXPECT_TRUE(r.ok()) << r.violation;
  EXPECT_GT(r.states, 4u);
}

TEST(SiVerify, AndGateIsNotACElement) {
  stg::SiCircuit circuit;
  circuit.inputs = {"a", "b"};
  circuit.input_initial = {false, false};
  stg::GateSpec g;
  g.output = "c";
  g.inputs = {"a", "b"};
  g.eval = [](const std::vector<bool>& v) { return v[0] && v[1]; };
  circuit.gates = {g};
  stg::SiResult r = stg::verifySpeedIndependent(circuit, celementSpec());
  // The AND gate drops c as soon as one input falls -> spec violation.
  EXPECT_FALSE(r.conforms);
}

TEST(SiVerify, DetectsHazard) {
  // y = a XOR x with x = a: after a+ both x and y are excited; firing x
  // withdraws y's excitation -> classic gate-race hazard.
  stg::Stg spec;
  spec.addSignal("a", stg::SignalKind::kInput);
  // x and y are left out of the spec: internal, unconstrained signals that
  // are still subject to the semi-modularity (hazard) check.
  spec.connect("a+", "a-", 0);
  spec.connect("a-", "a+", 1);
  stg::SiCircuit circuit;
  circuit.inputs = {"a"};
  circuit.input_initial = {false};
  stg::GateSpec x;
  x.output = "x";
  x.inputs = {"a"};
  x.eval = [](const std::vector<bool>& v) { return v[0]; };
  stg::GateSpec y;
  y.output = "y";
  y.inputs = {"a", "x"};
  y.eval = [](const std::vector<bool>& v) { return v[0] != v[1]; };
  circuit.gates = {x, y};
  stg::SiResult r = stg::verifySpeedIndependent(circuit, spec);
  EXPECT_FALSE(r.hazard_free);
  EXPECT_NE(r.violation.find("hazard"), std::string::npos);
}

TEST(SiVerify, DetectsUnstableReset) {
  stg::Stg spec;
  spec.addSignal("a", stg::SignalKind::kInput);
  spec.connect("a+", "a-", 0);
  spec.connect("a-", "a+", 1);
  stg::SiCircuit circuit;
  circuit.inputs = {"a"};
  circuit.input_initial = {false};
  stg::GateSpec g;
  g.output = "x";
  g.inputs = {"a"};
  g.eval = [](const std::vector<bool>& v) { return !v[0]; };
  g.initial = false;  // wrong: should be 1 when a=0
  circuit.gates = {g};
  stg::SiResult r = stg::verifySpeedIndependent(circuit, spec);
  EXPECT_FALSE(r.stable_start);
}

}  // namespace
