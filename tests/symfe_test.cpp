// End-to-end tests of the symbolic flow-equivalence prover (sim/symfe):
// acceptance on the DLX pipeline (every replaced register proved, nothing
// skipped), determinism across --jobs, corpus replays through the fuzz
// oracle in prove/both mode, both-route agreement over generator seeds, a
// deliberately broken slave-latch cone that must be refuted with a
// counterexample replaying identically on both simulation engines, and the
// combinational-only / vacuous-report honesty paths.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/desync.h"
#include "core/parallel.h"
#include "designs/cpu.h"
#include "designs/small.h"
#include "fuzz/generator.h"
#include "fuzz/oracle.h"
#include "liberty/bound.h"
#include "liberty/stdlib90.h"
#include "netlist/flatten.h"
#include "netlist/netlist.h"
#include "netlist/verilog.h"
#include "sim/symfe/symfe.h"

namespace nl = desync::netlist;
namespace lib = desync::liberty;
namespace core = desync::core;
namespace fuzz = desync::fuzz;
namespace designs = desync::designs;
namespace symfe = desync::sim::symfe;

namespace {

#ifdef DESYNC_SYMFE_TEST_LIGHT
constexpr std::uint64_t kSeeds = 20;  // instrumented (TSan) runs
#else
constexpr std::uint64_t kSeeds = 100;
#endif

const lib::Gatefile& gf() {
  static const lib::Library l = lib::makeStdLib90(lib::LibVariant::kHighSpeed);
  static const lib::Gatefile g(l);
  return g;
}

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string corpusPath(const char* file) {
  return std::string(DESYNC_CORPUS_DIR) + "/" + file;
}

/// One flowed design pair: the pre-flow synchronous snapshot and the
/// converted module, plus the flow result (regions/DDG for the protocol
/// check).  Built once per shape; proofs are cheap, the flow is not.
struct FlowedPair {
  nl::Design sync;    ///< clone of the module before the flow
  nl::Design desync;  ///< design holding the converted module
  std::string top;
  core::DesyncResult result;
};

FlowedPair runFlow(nl::Design&& d, const std::string& top,
                   core::DesyncOptions opt = {}) {
  FlowedPair p;
  p.top = top;
  nl::cloneModule(p.sync, *d.findModule(top));
  p.desync = std::move(d);
  opt.control.reset_port = "rst_n";
  opt.control.reset_active_low = true;
  p.result = core::desynchronize(p.desync, *p.desync.findModule(top), gf(),
                                 opt);
  return p;
}

symfe::ProtocolInput protocolInput(const core::DesyncResult& r) {
  symfe::ProtocolInput pi;
  pi.n_groups = r.regions.n_groups;
  pi.active.resize(static_cast<std::size_t>(r.regions.n_groups));
  for (int g = 0; g < r.regions.n_groups; ++g) {
    pi.active[static_cast<std::size_t>(g)] =
        !r.regions.seq_cells[static_cast<std::size_t>(g)].empty();
  }
  pi.preds = r.ddg.preds;
  return pi;
}

/// The DLX pair with the four manual pipeline stages (thesis Fig 5.1) —
/// shared across tests because the flow itself dominates the runtime.
const FlowedPair& dlxPair() {
  static const FlowedPair p = [] {
    nl::Design d;
    designs::buildCpu(d, gf(), designs::dlxConfig());
    core::DesyncOptions opt;
    opt.manual_seq_groups = {{"pc_", "ifid_"},
                             {"idex_"},
                             {"exmem_", "red_"},
                             {"rf_", "dmem_"}};
    return runFlow(std::move(d), "dlx", opt);
  }();
  return p;
}

symfe::SymfeReport proveDlx() {
  const FlowedPair& p = dlxPair();
  const lib::BoundModule sb(p.sync.top(), gf());
  const lib::BoundModule db(*p.desync.findModule(p.top), gf());
  symfe::SymfeOptions so;
  so.protocol = protocolInput(p.result);
  return symfe::proveFlowEquivalence(sb, db, so);
}

// --------------------------------------------------------- acceptance

TEST(Symfe, DlxProvesEveryReplacedRegister) {
  const FlowedPair& p = dlxPair();
  const symfe::SymfeReport rep = proveDlx();
  // The PR's acceptance bar: zero refuted, zero skipped, one proof per
  // replaced flip-flop.
  for (const symfe::RegisterProof& r : rep.registers) {
    EXPECT_NE(r.verdict, symfe::RegVerdict::kRefuted)
        << r.name << ": " << r.reason;
    EXPECT_NE(r.verdict, symfe::RegVerdict::kSkipped)
        << r.name << ": " << r.reason;
  }
  EXPECT_EQ(rep.refuted, 0u);
  EXPECT_EQ(rep.skipped, 0u);
  EXPECT_EQ(rep.proved, rep.registers.size());
  EXPECT_EQ(rep.registers.size(), p.result.substitution.ffs_replaced);
  EXPECT_GT(rep.registers.size(), 100u);  // the DLX is not a toy
  EXPECT_FALSE(rep.comb_only);
  // Protocol admissibility over the 4-stage DDG.
  EXPECT_TRUE(rep.protocol.checked);
  EXPECT_TRUE(rep.protocol.admissible) << rep.protocol.violation;
  EXPECT_GT(rep.protocol.channels, 0);
  EXPECT_TRUE(rep.ok());
}

TEST(Symfe, DlxFlowPassWiresProver) {
  // The same property through the flow itself (--fe-mode prove): the
  // fe_prove pass must run, fill DesyncResult::symfe and agree with the
  // direct library call.
  nl::Design d;
  designs::buildCpu(d, gf(), designs::dlxConfig());
  core::DesyncOptions opt;
  opt.manual_seq_groups = {{"pc_", "ifid_"},
                           {"idex_"},
                           {"exmem_", "red_"},
                           {"rf_", "dmem_"}};
  opt.fe.mode = core::FeMode::kProve;
  FlowedPair p = runFlow(std::move(d), "dlx", opt);
  ASSERT_TRUE(p.result.symfe.ran);
  const symfe::SymfeReport& rep = p.result.symfe.report;
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(rep.proved, p.result.substitution.ffs_replaced);
  EXPECT_TRUE(rep.protocol.checked);
  // Vector route stays off in prove mode.
  EXPECT_FALSE(p.result.fe.ran);
}

TEST(Symfe, DlxVerdictsDeterministicAcrossJobs) {
  core::setThreadJobs(1);
  const symfe::SymfeReport a = proveDlx();
  core::setThreadJobs(4);
  const symfe::SymfeReport b = proveDlx();
  core::setThreadJobs(0);
  ASSERT_EQ(a.registers.size(), b.registers.size());
  for (std::size_t i = 0; i < a.registers.size(); ++i) {
    const symfe::RegisterProof& ra = a.registers[i];
    const symfe::RegisterProof& rb = b.registers[i];
    ASSERT_EQ(ra.name, rb.name);
    EXPECT_EQ(ra.verdict, rb.verdict) << ra.name;
    EXPECT_EQ(ra.trivial, rb.trivial) << ra.name;
    EXPECT_EQ(ra.conflicts, rb.conflicts) << ra.name;
    EXPECT_EQ(ra.decisions, rb.decisions) << ra.name;
  }
  EXPECT_EQ(a.conflicts, b.conflicts);
  EXPECT_EQ(a.decisions, b.decisions);
}

// ------------------------------------------------------ corpus replays

TEST(Symfe, CorpusPassRunsCleanInProveAndBothModes) {
  const std::string src = readFile(corpusPath("fz_s12_pass.v"));
  ASSERT_FALSE(src.empty());
  for (const core::FeMode mode : {core::FeMode::kProve, core::FeMode::kBoth}) {
    fuzz::OracleOptions oo;
    oo.check_flowdb = false;
    oo.fe_mode = mode;
    const fuzz::OracleVerdict v = fuzz::runOracle(src, gf(), oo);
    EXPECT_TRUE(v.ok) << core::feModeName(mode) << ": " << v.check << ": "
                      << v.detail;
    EXPECT_GT(v.registers_proved, 0u) << core::feModeName(mode);
    EXPECT_FALSE(v.fe_vacuous);
  }
}

TEST(Symfe, CorpusFullyDecoupledFaultRefutedByProtocol) {
  // The fully-decoupled fault is invisible to any per-register cone (the
  // logic is untouched); the prove route must still fail the
  // flow-equivalence check, via the token-flow admissibility witness.
  const std::string src = readFile(corpusPath("fz_s2_flow-equivalence.v"));
  ASSERT_FALSE(src.empty());
  fuzz::OracleOptions oo;
  oo.check_flowdb = false;
  oo.fault = fuzz::FaultKind::kFullyDecoupled;
  oo.fe_mode = core::FeMode::kProve;
  const fuzz::OracleVerdict v = fuzz::runOracle(src, gf(), oo);
  EXPECT_FALSE(v.ok);
  EXPECT_EQ(v.check, "flow-equivalence");
  EXPECT_NE(v.detail.find("not admissible"), std::string::npos) << v.detail;
  // The refutation ships a concrete firing trace, not a bare verdict.
  EXPECT_NE(v.detail.find("[trace:"), std::string::npos) << v.detail;
}

TEST(Symfe, CorpusSelfTestFaultUnaffectedByProveMode) {
  const std::string src = readFile(corpusPath("fz_s1_self-test.v"));
  ASSERT_FALSE(src.empty());
  fuzz::OracleOptions oo;
  oo.check_flowdb = false;
  oo.fault = fuzz::FaultKind::kSelfTest;
  oo.fe_mode = core::FeMode::kBoth;
  const fuzz::OracleVerdict v = fuzz::runOracle(src, gf(), oo);
  EXPECT_FALSE(v.ok);
  EXPECT_EQ(v.check, "self-test");
}

// ----------------------------------------- both-route generator sweep

TEST(Symfe, GeneratorSeedsBothRoutesNeverDisagree) {
  // `--fe-mode both` runs the sampling vector check and the symbolic
  // prover back to back; the honest oracle must pass both on every seed
  // (either route failing fails the run), at two worker counts with
  // byte-identical verdicts.
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const std::string src = fuzz::generateVerilog(gf(), seed);
    fuzz::OracleOptions oo;
    oo.check_flowdb = false;
    oo.fe_mode = core::FeMode::kBoth;
    core::setThreadJobs(1);
    const fuzz::OracleVerdict v1 = fuzz::runOracle(src, gf(), oo);
    core::setThreadJobs(4);
    const fuzz::OracleVerdict v4 = fuzz::runOracle(src, gf(), oo);
    core::setThreadJobs(0);
    ASSERT_TRUE(v1.ok) << "seed " << seed << ": " << v1.check << ": "
                       << v1.detail;
    ASSERT_EQ(v1.ok, v4.ok) << "seed " << seed;
    ASSERT_EQ(v1.check, v4.check) << "seed " << seed;
    ASSERT_EQ(v1.detail, v4.detail) << "seed " << seed;
    ASSERT_EQ(v1.registers_proved, v4.registers_proved) << "seed " << seed;
    ASSERT_EQ(v1.note, v4.note) << "seed " << seed;
    // The prover is never vacuous: every seed with replaced FFs proves
    // them, and FF-less seeds get output miters.
    if (v1.ffs_replaced > 0) {
      ASSERT_EQ(v1.registers_proved, v1.ffs_replaced) << "seed " << seed;
    } else {
      ASSERT_GT(v1.registers_proved, 0u) << "seed " << seed;
    }
  }
}

// ------------------------------------- refutation + replay round-trip

TEST(Symfe, BrokenSlaveConeIsRefutedWithReplayableCounterexample) {
  // Desynchronize a counter correctly, then corrupt exactly one slave
  // latch: an inverter spliced into its D input.  The prover must refute
  // that register — and only that register — and the decoded
  // counterexample must replay identically on the bit-parallel and the
  // event-driven engine (solver model vs simulation divergence is a hard
  // failure, satellite 2).
  nl::Design d;
  designs::buildCounter(d, gf(), 8);
  FlowedPair p = runFlow(std::move(d), "counter");
  nl::Module& m = *p.desync.findModule(p.top);

  // First slave latch in cell order, deterministically.
  nl::CellId victim;
  m.forEachCell([&](nl::CellId id) {
    if (victim.valid()) return;
    const std::string_view name = m.cellName(id);
    if (name.size() > 3 && name.substr(name.size() - 3) == "_Ls") {
      victim = id;
    }
  });
  ASSERT_TRUE(victim.valid());
  const std::string victim_reg(
      m.cellName(victim).substr(0, m.cellName(victim).size() - 3));

  const std::size_t d_pin = m.findPin(victim, "D");
  ASSERT_NE(d_pin, static_cast<std::size_t>(-1));
  const nl::NetId old_d = m.pinNet(victim, "D");
  ASSERT_TRUE(old_d.valid());
  const nl::NetId inv_out = m.addNet("symfe_break_n");
  m.addCell("symfe_break_iv", "IV",
            {{"A", nl::PortDir::kInput, old_d},
             {"Z", nl::PortDir::kOutput, inv_out}});
  m.connectPin(victim, d_pin, inv_out);

  const lib::BoundModule sb(p.sync.top(), gf());
  const lib::BoundModule db(m, gf());
  const symfe::SymfeReport rep = symfe::proveFlowEquivalence(sb, db);
  EXPECT_EQ(rep.refuted, 1u);
  EXPECT_EQ(rep.skipped, 0u);
  bool saw_victim = false;
  for (const symfe::RegisterProof& r : rep.registers) {
    // Nothing may hide behind an internal error.
    EXPECT_EQ(r.reason.find("internal:"), std::string::npos)
        << r.name << ": " << r.reason;
    if (r.verdict != symfe::RegVerdict::kRefuted) continue;
    EXPECT_EQ(r.name, victim_reg);
    saw_victim = true;
    ASSERT_TRUE(r.cex.has_value()) << r.name;
    EXPECT_NE(r.cex->sync_value, r.cex->desync_value);
    const symfe::ReplayResult rr =
        symfe::replayCounterexample(sb, r.name, *r.cex);
    ASSERT_TRUE(rr.ran) << rr.detail;
    ASSERT_TRUE(rr.matches_solver) << rr.detail;
  }
  EXPECT_TRUE(saw_victim);
}

// ------------------------------------ comb-only and vacuous honesty

const char* kCombOnly = R"(
module combo (clk, rst_n, a, b, y, z);
  input clk, rst_n, a, b;
  output y, z;
  wire t;
  ND2 g1 (.A(a), .B(b), .Z(t));
  IV  g2 (.A(t), .Z(y));
  NR2 g3 (.A(t), .B(a), .Z(z));
endmodule
)";

TEST(Symfe, CombOnlyDesignGetsOutputMiters) {
  // No registers: the prover falls back to per-output-port miters instead
  // of a vacuous pass.
  nl::Design d;
  nl::readVerilog(d, kCombOnly, gf());
  FlowedPair p = runFlow(std::move(d), "combo");
  EXPECT_EQ(p.result.substitution.ffs_replaced, 0u);
  const lib::BoundModule sb(p.sync.top(), gf());
  const lib::BoundModule db(*p.desync.findModule(p.top), gf());
  const symfe::SymfeReport rep = symfe::proveFlowEquivalence(sb, db);
  EXPECT_TRUE(rep.comb_only);
  EXPECT_FALSE(rep.note.empty());
  EXPECT_EQ(rep.refuted, 0u);
  EXPECT_EQ(rep.skipped, 0u);
  EXPECT_EQ(rep.proved, 2u);  // one miter per output port (y, z)
  EXPECT_TRUE(rep.ok());
  for (const symfe::RegisterProof& r : rep.registers) {
    EXPECT_EQ(r.name.rfind("out:", 0), 0u) << r.name;
  }
}

TEST(Symfe, VacuousVectorCheckIsReportedNotSilent) {
  // Satellite 1: in sim mode a design without replaced FFs must say so.
  fuzz::OracleOptions oo;
  oo.check_flowdb = false;
  oo.fe_mode = core::FeMode::kSim;
  const fuzz::OracleVerdict vs = fuzz::runOracle(kCombOnly, gf(), oo);
  EXPECT_TRUE(vs.ok) << vs.check << ": " << vs.detail;
  EXPECT_TRUE(vs.fe_vacuous);
  EXPECT_NE(vs.note.find("vacuous"), std::string::npos) << vs.note;
  // In prove mode the same design is checked for real (output miters).
  oo.fe_mode = core::FeMode::kProve;
  const fuzz::OracleVerdict vp = fuzz::runOracle(kCombOnly, gf(), oo);
  EXPECT_TRUE(vp.ok) << vp.check << ": " << vp.detail;
  EXPECT_FALSE(vp.fe_vacuous);
  EXPECT_GT(vp.registers_proved, 0u);
}

}  // namespace
