// Flow-equivalence checker edge cases (thesis §2.1): vacuous comparisons
// (combinational-only designs, missing counterparts), X-propagation through
// uninitialized storage, zero-output designs where the capture logs are the
// ONLY observable, and the smallest sequential loop there is.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/desync.h"
#include "fuzz/generator.h"
#include "liberty/gatefile.h"
#include "liberty/stdlib90.h"
#include "netlist/verilog.h"
#include "sim/flow_equivalence.h"
#include "sim/simulator.h"

namespace nl = desync::netlist;
namespace lib = desync::liberty;
namespace sim = desync::sim;
namespace core = desync::core;
namespace fuzz = desync::fuzz;

using sim::Val;

namespace {

const lib::Gatefile& gf() {
  static const lib::Library l = lib::makeStdLib90(lib::LibVariant::kHighSpeed);
  static const lib::Gatefile g(l);
  return g;
}

nl::Design parse(const std::string& text) {
  nl::Design d;
  nl::readVerilog(d, text, gf());
  return d;
}

/// Clocks `bits` through a DFF whose data port is "d" ("x" entries leave
/// the input undriven, i.e. X).
void drive(sim::Simulator& s, const std::vector<char>& bits) {
  s.setInput("clk", Val::k0);
  for (char b : bits) {
    if (b != 'x') s.setInput("d", b == '1' ? Val::k1 : Val::k0);
    s.run(s.now() + sim::nsToPs(5));
    s.setInput("clk", Val::k1);
    s.run(s.now() + sim::nsToPs(5));
    s.setInput("clk", Val::k0);
    s.run(s.now() + sim::nsToPs(5));
  }
}

/// Full seven-pass flow + golden-vs-desync simulation, as the oracle runs
/// it, for a design given as Verilog text.
sim::FlowEqReport runFlowAndCompare(const std::string& text, int cycles) {
  nl::Design golden = parse(text);
  nl::Design d = parse(text);
  core::DesyncOptions opt;
  opt.control.reset_port = "rst_n";
  opt.control.reset_active_low = true;
  core::DesyncResult res = core::desynchronize(d, d.top(), gf(), opt);
  const double half = res.sync_min_period_ns;

  sim::Simulator ss(golden.top(), gf());
  ss.setInput("clk", Val::k0);
  ss.setInput("rst_n", Val::k0);
  ss.run(sim::nsToPs(10));
  ss.setInput("rst_n", Val::k1);
  ss.run(ss.now() + sim::nsToPs(half));
  for (int i = 0; i < cycles; ++i) {
    ss.setInput("clk", Val::k1);
    ss.run(ss.now() + sim::nsToPs(half));
    ss.setInput("clk", Val::k0);
    ss.run(ss.now() + sim::nsToPs(half));
  }

  sim::Simulator sd(d.top(), gf());
  sd.setInput("clk", Val::k0);
  sd.setInput("rst_n", Val::k0);
  sd.run(sim::nsToPs(20));
  sd.setInput("rst_n", Val::k1);
  sd.run(sd.now() + sim::nsToPs(cycles * 4.0 * half));

  return sim::checkFlowEquivalence(ss, sd);
}

TEST(FlowEq, CombinationalOnlyComparisonIsGuardedNotCrashed) {
  // No storage elements on either side: nothing compares, and the checker
  // refuses a vacuous pass — it reports non-equivalence with an explicit
  // "no comparable sequential elements" guard.  The fuzz oracle makes the
  // comb-only case vacuous one level up instead, by skipping the FE check
  // when the flow replaced no flip-flop (src/fuzz/oracle.cpp).
  nl::Design a = parse(R"(
    module comb (a, b, z);
      input a, b; output z;
      AN2 u1 (.A(a), .B(b), .Z(z));
    endmodule
  )");
  nl::Design b = parse(R"(
    module comb2 (a, b, z);
      input a, b; output z;
      OR2 u1 (.A(a), .B(b), .Z(z));
    endmodule
  )");
  sim::Simulator sa(a.top(), gf()), sb(b.top(), gf());
  sa.setInput("a", Val::k1);
  sa.setInput("b", Val::k0);
  sa.runUntilStable(sim::nsToPs(50));
  sb.setInput("a", Val::k1);
  sb.setInput("b", Val::k0);
  sb.runUntilStable(sim::nsToPs(50));

  sim::FlowEqReport r = sim::checkFlowEquivalence(sa, sb);
  EXPECT_FALSE(r.equivalent);
  EXPECT_EQ(r.elements_compared, 0u);
  EXPECT_EQ(r.values_compared, 0u);
  EXPECT_EQ(r.skipped, 0u);
  ASSERT_FALSE(r.details.empty());
  EXPECT_EQ(r.details[0], "no comparable sequential elements");
}

TEST(FlowEq, MissingCounterpartIsSkippedAndCounted) {
  // The sync element "r" maps to "r_Ls", which the other side does not
  // have: the element is counted as skipped (not a mismatch), and since
  // nothing else compares, the zero-comparison guard then rejects the run
  // rather than passing it vacuously.
  nl::Design a = parse(R"(
    module s (d, clk, q);
      input d, clk; output q;
      DFF r (.D(d), .CP(clk), .Q(q));
    endmodule
  )");
  nl::Design b = parse(R"(
    module t (d, clk, q);
      input d, clk; output q;
      DFF other (.D(d), .CP(clk), .Q(q));
    endmodule
  )");
  sim::Simulator sa(a.top(), gf()), sb(b.top(), gf());
  drive(sa, {'1', '0', '1'});
  drive(sb, {'1', '0', '1'});
  sim::FlowEqReport r = sim::checkFlowEquivalence(sa, sb);
  EXPECT_EQ(r.skipped, 1u);
  EXPECT_EQ(r.elements_compared, 0u);
  EXPECT_EQ(r.mismatches, 0u);
  EXPECT_FALSE(r.equivalent);  // guard, not a mismatch
}

TEST(FlowEq, LeadingXFromUninitializedStorageIsSkippedOnRequest) {
  // A reset-less DFF captures X until real data arrives.  The sync side
  // logs [X, 1, 0, 1]; the desync side, aligned by one fewer cycle, logs
  // [1, 0, 1].  skip_leading_x (the default) aligns them; turning it off
  // must surface the X-vs-1 head mismatch.
  nl::Design a = parse(R"(
    module s (d, clk, q);
      input d, clk; output q;
      DFF r (.D(d), .CP(clk), .Q(q));
    endmodule
  )");
  nl::Design b = parse(R"(
    module t (d, clk, q);
      input d, clk; output q;
      DFF r_Ls (.D(d), .CP(clk), .Q(q));
    endmodule
  )");
  sim::Simulator sa(a.top(), gf()), sb(b.top(), gf());
  drive(sa, {'x', '1', '0', '1'});  // first capture stores X
  drive(sb, {'1', '0', '1'});

  sim::FlowEqReport strict = sim::checkFlowEquivalence(sa, sb, [] {
    sim::FlowEqOptions o;
    o.skip_leading_x = false;
    o.max_initial_skip = 0;
    return o;
  }());
  EXPECT_FALSE(strict.equivalent);
  EXPECT_GE(strict.mismatches, 1u);

  sim::FlowEqReport lax = sim::checkFlowEquivalence(sa, sb);
  EXPECT_TRUE(lax.equivalent) << (lax.details.empty() ? "?"
                                                      : lax.details[0]);
  EXPECT_EQ(lax.elements_compared, 1u);
  EXPECT_EQ(lax.mismatches, 0u);
}

TEST(FlowEq, ZeroOutputDesignIsCheckedThroughCaptureLogsAlone) {
  // A module with no primary output at all: the environment observes
  // nothing, flow equivalence is decided purely on the stored sequences.
  fuzz::GeneratorConfig cfg;
  cfg.min_stages = 2;
  cfg.max_stages = 2;
  cfg.zero_output_percent = 100;
  const std::string text = fuzz::generateVerilog(gf(), 11, cfg);
  {
    nl::Design probe = parse(text);
    std::size_t outputs = 0;
    for (const nl::Port& p : probe.top().ports()) {
      if (p.dir == nl::PortDir::kOutput) ++outputs;
    }
    ASSERT_EQ(outputs, 0u) << text;
  }
  sim::FlowEqReport r = runFlowAndCompare(text, 12);
  EXPECT_TRUE(r.equivalent) << (r.details.empty() ? "?" : r.details[0]);
  EXPECT_GT(r.elements_compared, 0u);
  EXPECT_GT(r.values_compared, 0u);
}

TEST(FlowEq, SingleRegisterSelfLoopSurvivesTheFlow) {
  // The smallest sequential design: one FF inverting itself.  One region,
  // whose only producer and consumer is itself — the degenerate case of
  // the dependency graph, and the shortest possible handshake ring.
  const char* toggle = R"(
    module toggle (clk, rst_n, q);
      input clk, rst_n;
      output q;
      wire nq;
      DFFR t (.D(nq), .CP(clk), .CDN(rst_n), .Q(q));
      IV i (.A(q), .Z(nq));
    endmodule
  )";
  sim::FlowEqReport r = runFlowAndCompare(toggle, 20);
  EXPECT_TRUE(r.equivalent) << (r.details.empty() ? "?" : r.details[0]);
  EXPECT_EQ(r.elements_compared, 1u);
  // The free-running handshake ring captures slower than the synchronous
  // clock drives (its cycle is a full four-phase round trip), so only a
  // prefix of the 20 synchronous captures has a desync counterpart.
  EXPECT_GE(r.values_compared, 10u);
}

}  // namespace
