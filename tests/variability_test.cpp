// Tests for the PVT corner and Monte-Carlo variability model.
#include <gtest/gtest.h>

#include <cmath>

#include "variability/variability.h"

namespace var = desync::variability;

namespace {

TEST(Variability, CornersAreOrdered) {
  auto best = var::cornerSpec(var::Corner::kBest);
  auto typ = var::cornerSpec(var::Corner::kTypical);
  auto worst = var::cornerSpec(var::Corner::kWorst);
  EXPECT_LT(best.delay_scale, typ.delay_scale);
  EXPECT_LT(typ.delay_scale, worst.delay_scale);
  EXPECT_GT(best.vdd, typ.vdd);
  EXPECT_GT(typ.vdd, worst.vdd);
  EXPECT_DOUBLE_EQ(typ.delay_scale, 1.0);
}

TEST(Variability, NormalQuantileInvertsCdf) {
  for (double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    double z = var::normalQuantile(q);
    EXPECT_NEAR(var::normalCdf(z), q, 1e-6) << q;
  }
  EXPECT_NEAR(var::normalQuantile(0.5), 0.0, 1e-9);
  EXPECT_LT(var::normalQuantile(0.1), 0.0);
}

TEST(Variability, QuantileSpansCorners) {
  // +-3 sigma of the inter-die distribution hits the corner scales.
  double low = var::interDieScaleAtQuantile(var::normalCdf(-3.0));
  double high = var::interDieScaleAtQuantile(var::normalCdf(3.0));
  EXPECT_NEAR(low, var::cornerSpec(var::Corner::kBest).delay_scale, 1e-6);
  EXPECT_NEAR(high, var::cornerSpec(var::Corner::kWorst).delay_scale, 1e-6);
  // Median sits midway.
  EXPECT_NEAR(var::interDieScaleAtQuantile(0.5),
              (low + high) / 2.0, 1e-6);
}

TEST(Variability, SamplesAreDeterministic) {
  var::VariationModel m = var::makeSpanModel(42);
  var::ChipSample a = var::sampleChip(m, 7);
  var::ChipSample b = var::sampleChip(m, 7);
  EXPECT_DOUBLE_EQ(a.global, b.global);
  EXPECT_DOUBLE_EQ(a.factor("u1/g"), b.factor("u1/g"));
  // Different die: different global factor.
  var::ChipSample c = var::sampleChip(m, 8);
  EXPECT_NE(a.global, c.global);
}

TEST(Variability, MonteCarloStatisticsMatchModel) {
  var::VariationModel m = var::makeSpanModel(1);
  const int n = 4000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    double g = var::sampleChip(m, static_cast<std::uint64_t>(i)).global;
    sum += g;
    sum2 += g * g;
  }
  double mean = sum / n;
  double stddev = std::sqrt(sum2 / n - mean * mean);
  double mu = (var::cornerSpec(var::Corner::kBest).delay_scale +
               var::cornerSpec(var::Corner::kWorst).delay_scale) /
              2.0;
  EXPECT_NEAR(mean, mu, 0.01);
  EXPECT_NEAR(stddev, m.inter_die_sigma, 0.01);
}

TEST(Variability, IntraDieFactorsVaryPerCell) {
  var::VariationModel m = var::makeSpanModel(3);
  var::ChipSample s = var::sampleChip(m, 0);
  double f1 = s.cell_factor("alu/u1");
  double f2 = s.cell_factor("alu/u2");
  EXPECT_NE(f1, f2);
  EXPECT_GT(f1, 0.5);
  EXPECT_LT(f1, 1.5);
  // Zero intra-die sigma: all cells nominal.
  m.intra_die_sigma = 0.0;
  var::ChipSample flat = var::sampleChip(m, 0);
  EXPECT_DOUBLE_EQ(flat.cell_factor("alu/u1"), 1.0);
}

}  // namespace
