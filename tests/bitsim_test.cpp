// Tests for the shared 3-valued table ops (sim/value.h) and the compiled
// 64-lane bit-parallel simulator (sim/bitsim):
//
//  * exhaustive truth-table semantics against a brute-force X-completion
//    reference, scalar and lane forms;
//  * cross-engine golden equality: the bit-parallel engine's capture
//    sequences must be byte-identical to the event-driven reference, on
//    the checked-in corpus, on generator seeds (at --jobs 1 and 4), on
//    hand-built designs covering every sequential cell family, and with
//    per-lane stuck-at forces;
//  * plan-compiler rejections (latches, combinational cycles) with silent
//    fallback in the golden-run helpers;
//  * concurrent evaluation of one shared plan (race-checked in the .tsan
//    variant of this suite).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/parallel.h"
#include "fuzz/generator.h"
#include "liberty/bound.h"
#include "liberty/gatefile.h"
#include "liberty/stdlib90.h"
#include "netlist/netlist.h"
#include "netlist/verilog.h"
#include "sim/bitsim/bitsim.h"
#include "sim/simulator.h"
#include "sim/stimulus.h"
#include "sim/value.h"

namespace core = desync::core;
namespace fuzz = desync::fuzz;
namespace lib = desync::liberty;
namespace nl = desync::netlist;
namespace sim = desync::sim;
namespace bs = desync::sim::bitsim;

using sim::LaneWord;
using sim::Val;

namespace {

#ifdef DESYNC_BITSIM_TEST_LIGHT
constexpr std::uint64_t kGeneratorSeeds = 24;
#else
constexpr std::uint64_t kGeneratorSeeds = 200;
#endif

const lib::Gatefile& gf() {
  static const lib::Library l = lib::makeStdLib90(lib::LibVariant::kHighSpeed);
  static const lib::Gatefile g(l);
  return g;
}

constexpr Val kVals[] = {Val::k0, Val::k1, Val::kX};

/// Brute-force reference for the completion semantics: the output is known
/// iff every 0/1 completion of the X inputs lands on the same table row
/// value.
Val refEval(std::uint64_t table, const std::vector<Val>& in) {
  bool can0 = false, can1 = false;
  const unsigned n = static_cast<unsigned>(in.size());
  for (unsigned row = 0; row < (1u << n); ++row) {
    bool compatible = true;
    for (unsigned i = 0; i < n; ++i) {
      const bool bit = ((row >> i) & 1u) != 0;
      if ((in[i] == Val::k1 && !bit) || (in[i] == Val::k0 && bit)) {
        compatible = false;
        break;
      }
    }
    if (!compatible) continue;
    if ((table >> row) & 1u) {
      can1 = true;
    } else {
      can0 = true;
    }
  }
  if (can0 && can1) return Val::kX;
  return can1 ? Val::k1 : Val::k0;
}

/// All 3^n input combinations, counted in base 3.
std::vector<std::vector<Val>> allCombos(unsigned n) {
  std::size_t total = 1;
  for (unsigned i = 0; i < n; ++i) total *= 3;
  std::vector<std::vector<Val>> combos;
  combos.reserve(total);
  for (std::size_t c = 0; c < total; ++c) {
    std::vector<Val> in(n);
    std::size_t rest = c;
    for (unsigned i = 0; i < n; ++i) {
      in[i] = kVals[rest % 3];
      rest /= 3;
    }
    combos.push_back(std::move(in));
  }
  return combos;
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Checks scalar and lane evaluation of one table against the reference,
/// packing up to 64 combinations per lane pass.
void checkTable(std::uint64_t table, unsigned n,
                const std::vector<std::vector<Val>>& combos) {
  for (std::size_t c0 = 0; c0 < combos.size(); c0 += sim::kLanes) {
    const unsigned cnt = static_cast<unsigned>(
        std::min<std::size_t>(sim::kLanes, combos.size() - c0));
    LaneWord in[6];
    for (unsigned i = 0; i < n; ++i) in[i] = LaneWord{};
    for (unsigned j = 0; j < cnt; ++j) {
      for (unsigned i = 0; i < n; ++i) {
        in[i] = laneSet(in[i], j, combos[c0 + j][i]);
      }
    }
    const LaneWord out = laneEvalTable(table, in, n);
    EXPECT_EQ(out.val & ~out.known, 0u)
        << "canonical invariant broken, table " << table;
    for (unsigned j = 0; j < cnt; ++j) {
      const std::vector<Val>& combo = combos[c0 + j];
      const Val want = refEval(table, combo);
      EXPECT_EQ(sim::evalTable3(table, combo.data(), n), want)
          << "table " << table << " combo " << c0 + j;
      EXPECT_EQ(laneGet(out, j), want)
          << "table " << table << " lane " << j;
    }
  }
}

std::string digest(const std::vector<sim::CaptureLog>& logs) {
  std::string d;
  for (const sim::CaptureLog& log : logs) {
    d += log.element;
    d += '=';
    for (Val v : log.values) d += sim::toChar(v);
    d += '\n';
  }
  return d;
}

std::string batchDigest(const std::vector<std::vector<sim::CaptureLog>>& b) {
  std::string d;
  for (std::size_t i = 0; i < b.size(); ++i) {
    d += "batch " + std::to_string(i) + ":\n" + digest(b[i]);
  }
  return d;
}

std::vector<std::string> corpusFiles() {
  std::vector<std::string> files;
  for (const auto& e :
       std::filesystem::directory_iterator(DESYNC_CORPUS_DIR)) {
    if (e.path().extension() == ".v") files.push_back(e.path().string());
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

}  // namespace

// --- shared 3-valued ops (sim/value.h) ------------------------------------

TEST(ValueOps, ExhaustiveTablesUpTo3Inputs) {
  for (unsigned n = 0; n <= 3; ++n) {
    const std::vector<std::vector<Val>> combos = allCombos(n);
    const std::uint64_t n_tables = 1ull << (1u << n);
    for (std::uint64_t t = 0; t < n_tables; ++t) checkTable(t, n, combos);
  }
}

TEST(ValueOps, RandomWideTables) {
  for (unsigned n = 4; n <= 6; ++n) {
    const std::vector<std::vector<Val>> combos = allCombos(n);
    const std::uint64_t mask =
        (1u << n) == 64 ? ~std::uint64_t{0} : (1ull << (1u << n)) - 1;
#ifdef DESYNC_BITSIM_TEST_LIGHT
    const int n_tables = 8;
#else
    const int n_tables = 40;
#endif
    for (int t = 0; t < n_tables; ++t) {
      const std::uint64_t table =
          splitmix64(static_cast<std::uint64_t>(t) * 97 + n) & mask;
      checkTable(table, n, combos);
    }
  }
}

TEST(ValueOps, LaneHelpersMatchScalar) {
  for (Val a : kVals) {
    EXPECT_EQ(laneGet(laneBroadcast(a), 17), a);
    EXPECT_EQ(laneGet(laneInvert(laneBroadcast(a)), 3), sim::invert(a));
    for (bool low : {false, true}) {
      EXPECT_EQ(laneGet(laneActiveLevel(laneBroadcast(a), low), 60),
                sim::activeLevel(a, low));
    }
    for (Val b : kVals) {
      const LaneWord m = laneMerge(laneBroadcast(a), laneBroadcast(b));
      EXPECT_EQ(laneGet(m, 0), sim::merge3(a, b))
          << sim::toChar(a) << sim::toChar(b);
      EXPECT_EQ(laneGet(m, 63), sim::merge3(a, b));
    }
  }
  // laneSet touches only its lane.
  LaneWord w = laneBroadcast(Val::k1);
  w = laneSet(w, 5, Val::kX);
  w = laneSet(w, 9, Val::k0);
  EXPECT_EQ(laneGet(w, 5), Val::kX);
  EXPECT_EQ(laneGet(w, 9), Val::k0);
  EXPECT_EQ(laneGet(w, 4), Val::k1);
  EXPECT_EQ(laneGet(w, 63), Val::k1);
}

TEST(ValueOps, FeBatchDerivation) {
  sim::SyncStimulus base;
  base.cycles = 10;
  base.half_period_ns = 2.0;
  for (std::size_t b : {0u, 1u, 7u}) {
    const sim::FeBatchPlan plan = sim::feBatch(base, b);
    EXPECT_EQ(plan.cycles, 10 + 2 * static_cast<int>(b));
    EXPECT_DOUBLE_EQ(plan.window_ns, 2.0 * 2.0 * (plan.cycles + 6));
  }
}

TEST(ValueOps, EngineNames) {
  EXPECT_EQ(sim::parseSyncEngine("event"), sim::SyncEngine::kEvent);
  EXPECT_EQ(sim::parseSyncEngine("bitsim"), sim::SyncEngine::kBitsim);
  EXPECT_THROW((void)sim::parseSyncEngine("fast"), std::invalid_argument);
  EXPECT_STREQ(sim::syncEngineName(sim::SyncEngine::kBitsim), "bitsim");
  EXPECT_STREQ(sim::syncEngineName(sim::SyncEngine::kEvent), "event");
}

// --- cross-engine golden equality -----------------------------------------

TEST(BitSim, CorpusCapturesMatchEventEngine) {
  const std::vector<std::string> files = corpusFiles();
  ASSERT_FALSE(files.empty());
  for (const std::string& path : files) {
    nl::Design d;
    nl::readVerilog(d, readFile(path), gf());
    const lib::BoundModule bound(d.top(), gf());
    sim::SyncStimulus st;
    st.half_period_ns = 5.0;
    st.cycles = 20;

    sim::Simulator event_sim(bound);
    sim::runSyncStimulus(event_sim, st);

    const bs::BitPlan plan = bs::compilePlan(bound);
    bs::BitSim bit_sim(plan);
    sim::runSyncStimulus(bit_sim, st);

    EXPECT_EQ(digest(event_sim.captures()), digest(bit_sim.captures(0)))
        << path;
  }
}

TEST(BitSim, GeneratorSeedsMatchEventEngineAtAnyJobs) {
  struct SeedResult {
    std::string event_digest;
    std::string bitsim_digest;
    bool compiled = false;
  };
  auto runSeed = [](std::uint64_t seed) {
    const std::string text = fuzz::generateVerilog(gf(), seed);
    nl::Design d;
    nl::readVerilog(d, text, gf());
    const lib::BoundModule bound(d.top(), gf());
    sim::SyncStimulus st;
    st.half_period_ns = 10.0;
    st.cycles = 12 + static_cast<int>(seed % 5);

    SeedResult r;
    sim::Simulator event_sim(bound);
    sim::runSyncStimulus(event_sim, st);
    r.event_digest = digest(event_sim.captures());
    try {
      const bs::BitPlan plan = bs::compilePlan(bound);
      bs::BitSim bit_sim(plan);
      sim::runSyncStimulus(bit_sim, st);
      r.bitsim_digest = digest(bit_sim.captures(0));
      r.compiled = true;
    } catch (const bs::BitSimError& e) {
      r.bitsim_digest = std::string("bitsim error: ") + e.what();
    }
    return r;
  };

  std::vector<std::vector<SeedResult>> by_jobs;
  for (int jobs : {1, 4}) {
    core::setThreadJobs(jobs);
    by_jobs.push_back(core::parallelMap(
        kGeneratorSeeds, [&](std::size_t i) { return runSeed(i + 1); }));
  }
  core::setThreadJobs(0);

  for (std::size_t i = 0; i < kGeneratorSeeds; ++i) {
    const SeedResult& r = by_jobs[0][i];
    // Every generated design is inside the cycle model (single root clock,
    // CGL gates, no latches, no combinational cycles).
    EXPECT_TRUE(r.compiled) << "seed " << i + 1 << ": " << r.bitsim_digest;
    EXPECT_EQ(r.event_digest, r.bitsim_digest) << "seed " << i + 1;
    EXPECT_EQ(by_jobs[1][i].event_digest, r.event_digest)
        << "seed " << i + 1 << " event digest depends on --jobs";
    EXPECT_EQ(by_jobs[1][i].bitsim_digest, r.bitsim_digest)
        << "seed " << i + 1 << " bitsim digest depends on --jobs";
  }
}

TEST(BitSim, GoldenBatchesIdenticalBetweenEngines) {
  // 70 batches exercise the 64-lane packing across two passes with a
  // partially filled second word.
  const std::string text = fuzz::generateVerilog(gf(), 11);
  nl::Design d;
  nl::readVerilog(d, text, gf());
  const lib::BoundModule bound(d.top(), gf());
  sim::SyncStimulus base;
  base.half_period_ns = 10.0;
  base.cycles = 8;

  const std::string event_digest = batchDigest(
      sim::goldenSyncBatches(bound, base, 70, sim::SyncEngine::kEvent));
  const std::string bitsim_digest = batchDigest(
      sim::goldenSyncBatches(bound, base, 70, sim::SyncEngine::kBitsim));
  EXPECT_EQ(event_digest, bitsim_digest);
  EXPECT_FALSE(event_digest.empty());

  const std::string single =
      digest(sim::goldenSyncRun(bound, base, sim::SyncEngine::kBitsim));
  EXPECT_EQ(single,
            digest(sim::goldenSyncRun(bound, base, sim::SyncEngine::kEvent)));
}

TEST(BitSim, AllSequentialCellFamiliesMatchEventEngine) {
  // Hand-built design covering DFFS (async preset), DFFSYNR (synchronous
  // clear), SDFF/SDFFR (scan muxes) and QN outputs, with the scan enable
  // driven from a port through known and X phases.
  nl::Design d;
  nl::Module& m = d.addModule("mixed");
  const auto in = nl::PortDir::kInput;
  const auto out = nl::PortDir::kOutput;
  const nl::NetId clk = m.addNet("clk");
  const nl::NetId rst_n = m.addNet("rst_n");
  const nl::NetId se = m.addNet("se");
  m.addPort("clk", in, clk);
  m.addPort("rst_n", in, rst_n);
  m.addPort("se", in, se);
  const nl::NetId q0 = m.addNet("q0");
  const nl::NetId qn0 = m.addNet("qn0");
  const nl::NetId q1 = m.addNet("q1");
  const nl::NetId q2 = m.addNet("q2");
  const nl::NetId q3 = m.addNet("q3");
  m.addCell("d0", "DFFS",
            {{"D", in, qn0},
             {"CP", in, clk},
             {"SDN", in, rst_n},
             {"Q", out, q0},
             {"QN", out, qn0}});
  m.addCell("d1", "DFFSYNR",
            {{"D", in, qn0}, {"RN", in, q0}, {"CP", in, clk}, {"Q", out, q1}});
  m.addCell("d2", "SDFF",
            {{"D", in, q1},
             {"SI", in, q0},
             {"SE", in, se},
             {"CP", in, clk},
             {"Q", out, q2}});
  m.addCell("d3", "SDFFR",
            {{"D", in, q2},
             {"SI", in, q1},
             {"SE", in, se},
             {"CDN", in, rst_n},
             {"CP", in, clk},
             {"Q", out, q3}});
  m.addPort("q", out, q3);
  ASSERT_TRUE(m.checkInvariants().empty());
  const lib::BoundModule bound(m, gf());

  const Val se_phases[] = {Val::k0, Val::k1, Val::kX, Val::k0};

  sim::Simulator es(bound);
  es.setInput("clk", Val::k0);
  es.setInput("rst_n", Val::k0);
  es.setInput("se", Val::k0);
  es.run(sim::nsToPs(10));
  es.setInput("rst_n", Val::k1);
  es.run(es.now() + sim::nsToPs(5));
  for (Val phase : se_phases) {
    es.setInput("se", phase);
    for (int c = 0; c < 4; ++c) {
      es.setInput("clk", Val::k1);
      es.run(es.now() + sim::nsToPs(5));
      es.setInput("clk", Val::k0);
      es.run(es.now() + sim::nsToPs(5));
    }
  }

  const bs::BitPlan plan = bs::compilePlan(bound);
  bs::BitSim ps(plan);
  ps.set("rst_n", Val::k0);
  ps.set("se", Val::k0);
  ps.settle();
  ps.set("rst_n", Val::k1);
  ps.settle();
  for (Val phase : se_phases) {
    ps.set("se", phase);
    for (int c = 0; c < 4; ++c) ps.cycle();
  }

  EXPECT_EQ(digest(es.captures()), digest(ps.captures(0)));
  EXPECT_FALSE(digest(ps.captures(0)).empty());
}

TEST(BitSim, PerLaneForcesMatchEventForces) {
  const std::string path = std::string(DESYNC_CORPUS_DIR) + "/fz_s12_pass.v";
  nl::Design d;
  nl::readVerilog(d, readFile(path), gf());
  const lib::BoundModule bound(d.top(), gf());
  sim::SyncStimulus st;
  st.half_period_ns = 5.0;
  st.cycles = 16;

  const bs::BitPlan plan = bs::compilePlan(bound);
  bs::BitSim bit_sim(plan);
  bit_sim.forceNet("EO_n1", 3, Val::k0);
  bit_sim.forceNet("EO_n1", 5, Val::k1);
  bit_sim.forceNet("MAJ3_n5", 7, Val::k1);
  sim::runSyncStimulus(bit_sim, st);

  auto eventWithForce = [&](const char* net, Val v) {
    sim::Simulator s(bound);
    if (net != nullptr) s.forceNet(net, v);
    sim::runSyncStimulus(s, st);
    return digest(s.captures());
  };
  EXPECT_EQ(digest(bit_sim.captures(0)), eventWithForce(nullptr, Val::kX));
  EXPECT_EQ(digest(bit_sim.captures(3)), eventWithForce("EO_n1", Val::k0));
  EXPECT_EQ(digest(bit_sim.captures(5)), eventWithForce("EO_n1", Val::k1));
  EXPECT_EQ(digest(bit_sim.captures(7)), eventWithForce("MAJ3_n5", Val::k1));
  EXPECT_EQ(digest(bit_sim.captures(9)), eventWithForce(nullptr, Val::kX));
  EXPECT_THROW(bit_sim.forceNet("EO_n1", 2, Val::kX), bs::BitSimError);
}

// --- plan-compiler rejections ---------------------------------------------

TEST(BitSim, RejectsLatchesAndFallsBackToEventEngine) {
  nl::Design d;
  nl::Module& m = d.addModule("latchy");
  const auto in = nl::PortDir::kInput;
  const auto out = nl::PortDir::kOutput;
  const nl::NetId clk = m.addNet("clk");
  const nl::NetId rst_n = m.addNet("rst_n");
  m.addPort("clk", in, clk);
  m.addPort("rst_n", in, rst_n);
  const nl::NetId q0 = m.addNet("q0");
  const nl::NetId nq0 = m.addNet("nq0");
  const nl::NetId lq = m.addNet("lq");
  m.addCell("i0", "IV", {{"A", in, q0}, {"Z", out, nq0}});
  m.addCell("l0", "LD", {{"D", in, nq0}, {"G", in, clk}, {"Q", out, lq}});
  m.addCell("r0", "DFFR",
            {{"D", in, lq}, {"CP", in, clk}, {"CDN", in, rst_n},
             {"Q", out, q0}});
  m.addPort("q", out, q0);
  const lib::BoundModule bound(m, gf());
  EXPECT_THROW(bs::compilePlan(bound), bs::BitSimError);

  // The golden-run helper must silently fall back to the event engine.
  sim::SyncStimulus st;
  st.half_period_ns = 5.0;
  st.cycles = 12;
  sim::Simulator es(bound);
  sim::runSyncStimulus(es, st);
  EXPECT_EQ(digest(sim::goldenSyncRun(bound, st, sim::SyncEngine::kBitsim)),
            digest(es.captures()));
}

TEST(BitSim, RejectsCombinationalCycles) {
  nl::Design d;
  nl::Module& m = d.addModule("looped");
  const auto in = nl::PortDir::kInput;
  const auto out = nl::PortDir::kOutput;
  const nl::NetId clk = m.addNet("clk");
  const nl::NetId rst_n = m.addNet("rst_n");
  m.addPort("clk", in, clk);
  m.addPort("rst_n", in, rst_n);
  const nl::NetId q0 = m.addNet("q0");
  const nl::NetId a = m.addNet("a");
  const nl::NetId b = m.addNet("b");
  // Cross-coupled NOR pair: a structural combinational cycle.
  m.addCell("n0", "NR2", {{"A", in, q0}, {"B", in, b}, {"Z", out, a}});
  m.addCell("n1", "NR2", {{"A", in, a}, {"B", in, q0}, {"Z", out, b}});
  m.addCell("r0", "DFFR",
            {{"D", in, a}, {"CP", in, clk}, {"CDN", in, rst_n},
             {"Q", out, q0}});
  const lib::BoundModule bound(m, gf());
  try {
    (void)bs::compilePlan(bound);
    FAIL() << "combinational cycle not rejected";
  } catch (const bs::BitSimError& e) {
    EXPECT_NE(std::string(e.what()).find("cycle"), std::string::npos);
  }
}

// --- shared-plan concurrency (race-checked in the .tsan variant) ----------

TEST(BitSim, SharedPlanEvaluatesConcurrently) {
  const std::string text = fuzz::generateVerilog(gf(), 7);
  nl::Design d;
  nl::readVerilog(d, text, gf());
  const lib::BoundModule bound(d.top(), gf());
  const bs::BitPlan plan = bs::compilePlan(bound);
  sim::SyncStimulus st;
  st.half_period_ns = 10.0;
  st.cycles = 10;

  bs::BitSim reference(plan);
  sim::runSyncStimulus(reference, st);
  const std::string want = digest(reference.captures(0));

  core::setThreadJobs(8);
  std::vector<std::string> got(16);
  core::parallelFor(got.size(), [&](std::size_t i) {
    bs::BitSim s(plan);
    sim::runSyncStimulus(s, st);
    got[i] = digest(s.captures(0));
  });
  core::setThreadJobs(0);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], want) << "concurrent run " << i;
  }
}

TEST(BitSim, StatsAccumulate) {
  const bs::BitsimStats before = bs::bitsimStats();
  const std::string text = fuzz::generateVerilog(gf(), 3);
  nl::Design d;
  nl::readVerilog(d, text, gf());
  const lib::BoundModule bound(d.top(), gf());
  const bs::BitPlan plan = bs::compilePlan(bound);
  bs::BitSim s(plan);
  sim::SyncStimulus st;
  st.half_period_ns = 10.0;
  st.cycles = 5;
  sim::runSyncStimulus(s, st);
  const bs::BitsimStats after = bs::bitsimStats();
  EXPECT_GE(after.compiles, before.compiles + 1);
  EXPECT_GE(after.cycles, before.cycles + 5);
  EXPECT_EQ(after.lane_vectors, after.cycles * sim::kLanes);
  EXPECT_GT(after.levels, 0u);
  EXPECT_GE(plan.compile_ms, 0.0);
}
