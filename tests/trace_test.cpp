// Tests for the src/trace flow tracer (docs/trace-format.md).
//
// One shared fixture runs the pipe2 desynchronization flow four times —
// traced and untraced, at --jobs 4 and --jobs 1 — and the tests check the
// two contracts of the tracer:
//   - the emitted file is well-formed Chrome trace_event JSON: every "B"
//     has a matching same-name "E" on the same track, timestamps are
//     monotonic per track, the worker-track count equals --jobs - 1 (the
//     caller is the "flow" track), all seven passes appear as
//     "pass"-category spans and the cache / counter events exist;
//   - tracing never changes flow output: the Verilog and SDC text is
//     byte-identical across all four runs.
//
// The traced --jobs 4 run executes FIRST in this binary: the process-wide
// pool grows but never shrinks, so running it first pins the worker count
// (and therefore the trace's worker-track count) to exactly jobs - 1.
#include <unistd.h>

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

#include "core/desync.h"
#include "core/parallel.h"
#include "designs/small.h"
#include "liberty/stdlib90.h"
#include "netlist/verilog.h"
#include "trace/trace.h"

namespace core = desync::core;
namespace designs = desync::designs;
namespace lib = desync::liberty;
namespace nl = desync::netlist;
namespace trace = desync::trace;

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON reader — enough to load a trace_event file into a tree.

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      v;

  [[nodiscard]] bool isObject() const {
    return std::holds_alternative<JsonObject>(v);
  }
  [[nodiscard]] const JsonObject& object() const {
    return std::get<JsonObject>(v);
  }
  [[nodiscard]] const JsonArray& array() const {
    return std::get<JsonArray>(v);
  }
  [[nodiscard]] const std::string& str() const {
    return std::get<std::string>(v);
  }
  [[nodiscard]] double num() const { return std::get<double>(v); }
  /// Member lookup; fails the test (and returns a null) when absent.
  [[nodiscard]] const JsonValue& at(const std::string& key) const {
    static const JsonValue null{nullptr};
    const JsonObject& o = object();
    auto it = o.find(key);
    if (it == o.end()) {
      ADD_FAILURE() << "missing JSON key: " << key;
      return null;
    }
    return it->second;
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return isObject() && object().count(key) > 0;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skipWs();
    if (pos_ != s_.size()) fail("trailing characters");
    return v;
  }

  [[nodiscard]] bool ok() const { return error_.empty(); }
  [[nodiscard]] const std::string& error() const { return error_; }

 private:
  void fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at offset " + std::to_string(pos_);
    }
    pos_ = s_.size();  // stop consuming
  }

  void skipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  char peek() { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  bool consume(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }

  JsonValue value() {
    skipWs();
    switch (peek()) {
      case '{':
        return objectValue();
      case '[':
        return arrayValue();
      case '"':
        return JsonValue{stringValue()};
      case 't':
        return literal("true", JsonValue{true});
      case 'f':
        return literal("false", JsonValue{false});
      case 'n':
        return literal("null", JsonValue{nullptr});
      default:
        return numberValue();
    }
  }

  JsonValue literal(std::string_view word, JsonValue v) {
    if (s_.substr(pos_, word.size()) != word) fail("bad literal");
    pos_ += word.size();
    return v;
  }

  JsonValue objectValue() {
    consume('{');
    JsonObject obj;
    skipWs();
    if (consume('}')) return JsonValue{std::move(obj)};
    for (;;) {
      skipWs();
      std::string key = stringValue();
      skipWs();
      if (!consume(':')) fail("expected ':'");
      obj.emplace(std::move(key), value());
      skipWs();
      if (consume(',')) continue;
      if (consume('}')) break;
      fail("expected ',' or '}'");
      break;
    }
    return JsonValue{std::move(obj)};
  }

  JsonValue arrayValue() {
    consume('[');
    JsonArray arr;
    skipWs();
    if (consume(']')) return JsonValue{std::move(arr)};
    for (;;) {
      arr.push_back(value());
      skipWs();
      if (consume(',')) continue;
      if (consume(']')) break;
      fail("expected ',' or ']'");
      break;
    }
    return JsonValue{std::move(arr)};
  }

  std::string stringValue() {
    if (!consume('"')) {
      fail("expected string");
      return {};
    }
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) break;
        char esc = s_[pos_++];
        switch (esc) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'u':
            pos_ += 4;  // tests never inspect escaped control chars
            out += '?';
            break;
          default: out += esc;
        }
      } else {
        out += c;
      }
    }
    if (!consume('"')) fail("unterminated string");
    return out;
  }

  JsonValue numberValue() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      fail("expected value");
      return JsonValue{nullptr};
    }
    return JsonValue{std::stod(std::string(s_.substr(start, pos_ - start)))};
  }

  std::string_view s_;
  std::size_t pos_ = 0;
  std::string error_;
};

// ---------------------------------------------------------------------------
// Fixture: four flow runs, one trace file per traced run.

constexpr int kJobs = 4;

const lib::Gatefile& gf() {
  static const lib::Library l = lib::makeStdLib90(lib::LibVariant::kHighSpeed);
  static const lib::Gatefile g(l);
  return g;
}

struct FlowOutput {
  std::string verilog;
  std::string sdc;
};

/// Builds a fresh pipe2 and runs the full flow under the given settings.
FlowOutput runFlow(int jobs, const std::string& cache_dir) {
  nl::Design design;
  designs::buildPipe2(design, gf(), 6);
  nl::Module& module = *design.findModule("pipe2");
  core::DesyncOptions opt;
  opt.control.reset_port = "rst_n";
  opt.control.reset_active_low = true;
  opt.flowdb.cache_dir = cache_dir;
  core::setThreadJobs(jobs);
  core::DesyncResult result = core::desynchronize(design, module, gf(), opt);
  core::setThreadJobs(0);
  return FlowOutput{nl::writeVerilog(design), result.sdc.toText()};
}

struct Fixture {
  FlowOutput traced_j4, traced_j1, plain_j4, plain_j1;
  JsonValue trace_j4;   ///< parsed trace of the --jobs 4 run
  std::string trace_j4_error;
  trace::Summary summary_j4;
};

Fixture& fixture() {
  static Fixture* f = [] {
    auto* fx = new Fixture;
    // Per-process dir: ctest discovery runs each TEST as its own process,
    // concurrently under -j, and each process rebuilds this fixture — a
    // shared path would be remove_all'd under a sibling's feet.
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        ("desync_trace_test_" +
         std::to_string(static_cast<long>(::getpid())));
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    // Traced --jobs 4 run first: pins the pool (and the trace's worker
    // tracks) to exactly kJobs - 1 workers.  A fresh cache dir makes the
    // flowdb probe/store events appear in the trace.
    const std::string trace_path = (dir / "j4.trace.json").string();
    trace::start(trace_path);
    fx->traced_j4 = runFlow(kJobs, (dir / "cache").string());
    fx->summary_j4 = trace::finish();

    trace::start((dir / "j1.trace.json").string());
    fx->traced_j1 = runFlow(1, "");
    trace::finish();

    fx->plain_j4 = runFlow(kJobs, "");
    fx->plain_j1 = runFlow(1, "");

    std::ifstream in(trace_path, std::ios::binary);
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    JsonParser parser(text);
    fx->trace_j4 = parser.parse();
    fx->trace_j4_error = parser.error();
    return fx;
  }();
  return *f;
}

/// The traceEvents array of the --jobs 4 trace.
const JsonArray& events() {
  const JsonValue& root = fixture().trace_j4;
  static const JsonArray empty;
  if (!root.isObject() || !root.has("traceEvents")) return empty;
  return root.at("traceEvents").array();
}

}  // namespace

TEST(Trace, FileIsValidJson) {
  Fixture& fx = fixture();
  EXPECT_TRUE(fx.trace_j4_error.empty()) << fx.trace_j4_error;
  ASSERT_TRUE(fx.trace_j4.isObject());
  ASSERT_TRUE(fx.trace_j4.has("traceEvents"));
  EXPECT_GT(events().size(), 0u);
}

TEST(Trace, EveryBeginHasMatchingEndPerTrack) {
  std::map<double, std::vector<std::string>> open;  // tid -> span-name stack
  for (const JsonValue& e : events()) {
    const std::string& ph = e.at("ph").str();
    const double tid = e.at("tid").num();
    if (ph == "B") {
      open[tid].push_back(e.at("name").str());
    } else if (ph == "E") {
      ASSERT_FALSE(open[tid].empty()) << "E without B on tid " << tid;
      EXPECT_EQ(open[tid].back(), e.at("name").str()) << "tid " << tid;
      open[tid].pop_back();
    }
  }
  for (const auto& [tid, stack] : open) {
    EXPECT_TRUE(stack.empty())
        << stack.size() << " unclosed span(s) on tid " << tid
        << " (innermost: " << (stack.empty() ? "" : stack.back()) << ")";
  }
}

TEST(Trace, TimestampsMonotonicPerTrack) {
  std::map<double, double> last;
  for (const JsonValue& e : events()) {
    const std::string& ph = e.at("ph").str();
    if (ph == "M") continue;  // metadata carries no meaningful timestamp
    const double tid = e.at("tid").num();
    const double ts = e.at("ts").num();
    auto it = last.find(tid);
    if (it != last.end()) {
      EXPECT_GE(ts, it->second) << "tid " << tid << " event " << e.at("name").str();
    }
    last[tid] = ts;
  }
}

TEST(Trace, WorkerTrackCountMatchesJobs) {
  int workers = 0;
  bool flow_track = false;
  for (const JsonValue& e : events()) {
    if (e.at("ph").str() != "M" || e.at("name").str() != "thread_name") {
      continue;
    }
    const std::string& name = e.at("args").at("name").str();
    if (name.rfind("worker-", 0) == 0) ++workers;
    if (name == "flow") flow_track = true;
  }
  // The caller thread is the "flow" track, so a --jobs N section executes
  // on N tracks: flow + N-1 pool workers.
  EXPECT_EQ(workers, kJobs - 1);
  EXPECT_TRUE(flow_track);
  EXPECT_EQ(fixture().summary_j4.worker_tracks, kJobs - 1);
}

TEST(Trace, AllSevenPassesTraced) {
  std::vector<std::string> passes;
  for (const JsonValue& e : events()) {
    if (e.at("ph").str() == "B" && e.has("cat") && e.at("cat").str() == "pass") {
      passes.push_back(e.at("name").str());
    }
  }
  const std::vector<std::string> expected = {
      "reference_sta",   "region_grouping", "ff_substitution",
      "dependency_graph", "region_timing",  "control_network",
      "sdc_generation"};
  EXPECT_EQ(passes, expected);
}

TEST(Trace, ParallelCacheAndCounterEventsPresent) {
  bool parallel_for = false, parallel_run = false, cache_probe = false,
       cache_store = false;
  std::vector<std::string> counters;
  for (const JsonValue& e : events()) {
    const std::string& name = e.at("name").str();
    const std::string& ph = e.at("ph").str();
    if (ph == "B" || ph == "E") {
      if (name == "parallel_for") parallel_for = true;
      if (name == "parallel_run") parallel_run = true;
      if (name == "cache_probe") cache_probe = true;
      if (name == "cache_store") cache_store = true;
    } else if (ph == "C") {
      counters.push_back(name);
    }
  }
  EXPECT_TRUE(parallel_for);
  EXPECT_TRUE(parallel_run);
  EXPECT_TRUE(cache_probe);   // fresh cache dir: probe ran (and missed)
  EXPECT_TRUE(cache_store);   // ...so every pass was stored
  auto hasCounter = [&](std::string_view n) {
    for (const std::string& c : counters) {
      if (c == n) return true;
    }
    return false;
  };
  EXPECT_TRUE(hasCounter("liberty_cell_lookups"));
  EXPECT_TRUE(hasCounter("liberty_pin_lookups"));
  EXPECT_TRUE(hasCounter("peak_rss_mb"));
  EXPECT_TRUE(hasCounter("cache_bytes_written"));
}

TEST(Trace, SummaryCountsMatchFile) {
  const trace::Summary& s = fixture().summary_j4;
  EXPECT_TRUE(s.enabled);
  std::uint64_t non_meta = 0, begins = 0, counter_events = 0;
  for (const JsonValue& e : events()) {
    const std::string& ph = e.at("ph").str();
    if (ph != "M") ++non_meta;
    if (ph == "B") ++begins;
    if (ph == "C") ++counter_events;
  }
  EXPECT_EQ(s.events, non_meta);
  EXPECT_EQ(s.spans, begins);
  EXPECT_EQ(s.counter_events, counter_events);
  EXPECT_EQ(s.pass_self_ms.size(), 7u);
}

TEST(Trace, OutputBytesIdenticalTracedVsUntraced) {
  Fixture& fx = fixture();
  // Tracing on/off and --jobs 4/1 must not change a single output byte.
  EXPECT_EQ(fx.traced_j4.verilog, fx.plain_j4.verilog);
  EXPECT_EQ(fx.traced_j1.verilog, fx.plain_j1.verilog);
  EXPECT_EQ(fx.plain_j4.verilog, fx.plain_j1.verilog);
  EXPECT_EQ(fx.traced_j4.sdc, fx.plain_j4.sdc);
  EXPECT_EQ(fx.traced_j1.sdc, fx.plain_j1.sdc);
  EXPECT_EQ(fx.plain_j4.sdc, fx.plain_j1.sdc);
  EXPECT_FALSE(fx.plain_j1.verilog.empty());
  EXPECT_FALSE(fx.plain_j1.sdc.empty());
}
