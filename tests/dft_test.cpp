// Tests for scan insertion and stuck-at fault simulation, including the key
// DFT claim of the paper: desynchronization preserves scan testability.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/desync.h"
#include "designs/small.h"
#include "dft/fault_sim.h"
#include "dft/scan.h"
#include "liberty/stdlib90.h"
#include "netlist/flatten.h"
#include "sim/flow_equivalence.h"
#include "sim/simulator.h"

namespace nl = desync::netlist;
namespace lib = desync::liberty;
namespace dft = desync::dft;
namespace sim = desync::sim;
namespace core = desync::core;
namespace designs = desync::designs;

using sim::Val;

namespace {

const lib::Gatefile& gf() {
  static const lib::Library l = lib::makeStdLib90(lib::LibVariant::kHighSpeed);
  static const lib::Gatefile g(l);
  return g;
}

TEST(Scan, InsertsChainAndPorts) {
  nl::Design d;
  designs::buildCounter(d, gf(), 6);
  nl::Module& m = *d.findModule("counter");
  dft::ScanResult s = dft::insertScan(m, gf());
  EXPECT_EQ(s.chain_length, 6u);
  EXPECT_TRUE(m.findPort("scan_in").valid());
  EXPECT_TRUE(m.findPort("scan_en").valid());
  EXPECT_TRUE(m.findPort("scan_out").valid());
  // Flip-flops became SDFFR (counter uses DFFR).
  m.forEachCell([&](nl::CellId id) {
    if (gf().isFlipFlop(std::string(m.cellType(id)))) {
      EXPECT_EQ(m.cellType(id), "SDFFR");
    }
  });
  EXPECT_TRUE(m.checkInvariants().empty());
}

TEST(Scan, ChainShiftsPatternThrough) {
  nl::Design d;
  designs::buildCounter(d, gf(), 5);
  nl::Module& m = *d.findModule("counter");
  dft::ScanResult s = dft::insertScan(m, gf());
  sim::Simulator sm(m, gf());
  auto pulse = [&]() {
    sm.setInput("clk", Val::k1);
    sm.run(sm.now() + sim::nsToPs(5));
    sm.setInput("clk", Val::k0);
    sm.run(sm.now() + sim::nsToPs(5));
  };
  sm.setInput("clk", Val::k0);
  sm.setInput("rst_n", Val::k0);
  sm.setInput("scan_en", Val::k1);
  sm.setInput("scan_in", Val::k0);
  sm.run(sim::nsToPs(10));
  sm.setInput("rst_n", Val::k1);
  sm.run(sm.now() + sim::nsToPs(5));
  // Shift pattern 10110 in, then out; it must emerge intact.
  std::vector<bool> pat = {true, false, true, true, false};
  for (bool b : pat) {
    sm.setInput("scan_in", sim::fromBool(b));
    pulse();
  }
  std::vector<bool> out;
  sm.setInput("scan_in", Val::k0);
  for (std::size_t i = 0; i < s.chain_length; ++i) {
    out.push_back(sm.value("scan_out") == Val::k1);
    pulse();
  }
  EXPECT_EQ(out, pat);
}

TEST(FaultSim, DetectsMostFaultsOnCounter) {
  nl::Design d;
  designs::buildCounter(d, gf(), 6);
  nl::Module& m = *d.findModule("counter");
  dft::ScanResult s = dft::insertScan(m, gf());
  dft::FaultSimOptions opt;
  opt.n_patterns = 8;
  dft::FaultSimResult r = dft::runScanFaultSim(m, gf(), s, opt);
  EXPECT_GT(r.total, 40u);
  EXPECT_GT(r.coverage(), 0.8) << r.detected << "/" << r.total;
  EXPECT_EQ(r.patterns.size(), 8u);
}

TEST(FaultSim, BitsimCampaignMatchesEventEngine) {
  // The bit-parallel campaign (63 forced faults + the golden machine per
  // pass) must reproduce the event-driven engine's per-fault verdicts
  // exactly — same fault list, same detected flags, same patterns.
  std::size_t max_total = 0;
  for (int width : {5, 12}) {
    nl::Design d;
    designs::buildCounter(d, gf(), width);
    nl::Module& m = *d.findModule("counter");
    dft::ScanResult s = dft::insertScan(m, gf());
    dft::FaultSimOptions opt;
    opt.n_patterns = 6;
    opt.engine = sim::SyncEngine::kEvent;
    const dft::FaultSimResult ev = dft::runScanFaultSim(m, gf(), s, opt);
    opt.engine = sim::SyncEngine::kBitsim;
    const dft::FaultSimResult bp = dft::runScanFaultSim(m, gf(), s, opt);

    EXPECT_EQ(ev.patterns, bp.patterns);
    EXPECT_EQ(ev.total, bp.total);
    EXPECT_EQ(ev.detected, bp.detected);
    ASSERT_EQ(ev.faults.size(), bp.faults.size());
    for (std::size_t i = 0; i < ev.faults.size(); ++i) {
      EXPECT_EQ(ev.faults[i].net, bp.faults[i].net) << "fault " << i;
      EXPECT_EQ(ev.faults[i].stuck1, bp.faults[i].stuck1) << "fault " << i;
      EXPECT_EQ(ev.faults[i].detected, bp.faults[i].detected)
          << "fault " << i << " on " << ev.faults[i].net
          << (ev.faults[i].stuck1 ? " SA1" : " SA0");
    }
    max_total = std::max(max_total, ev.total);
  }
  // The wide counter has more faults than one 63-fault pass holds, so the
  // bitsim campaign's lane packing across passes is exercised.
  EXPECT_GT(max_total, 64u);
}

TEST(FaultSim, UndetectableWithoutPatterns) {
  nl::Design d;
  designs::buildCounter(d, gf(), 4);
  nl::Module& m = *d.findModule("counter");
  dft::ScanResult s = dft::insertScan(m, gf());
  dft::FaultSimOptions opt;
  opt.n_patterns = 0;
  dft::FaultSimResult r = dft::runScanFaultSim(m, gf(), s, opt);
  EXPECT_EQ(r.detected, 0u);
}

TEST(Dft, DesynchronizedScanDesignStaysFlowEquivalent) {
  // The paper's central DFT argument: the desynchronized circuit runs the
  // same scan patterns because it is flow-equivalent.  Here both versions
  // run with scan_en asserted and a bit stream on scan_in; every scan
  // latch pair must store the same shift sequence as its flip-flop.
  nl::Design d;
  designs::buildPipe2(d, gf(), 4);
  nl::Module& m = *d.findModule("pipe2");
  dft::insertScan(m, gf());
  nl::Design dsync;
  nl::cloneModule(dsync, m);

  core::DesyncOptions opt;
  opt.control.reset_port = "rst_n";
  opt.control.reset_active_low = true;
  core::desynchronize(d, m, gf(), opt);

  // Synchronous shift.
  sim::Simulator ss(dsync.top(), gf());
  ss.setInput("clk", Val::k0);
  ss.setInput("rst_n", Val::k0);
  ss.setInput("scan_en", Val::k1);
  ss.setInput("scan_in", Val::k1);
  ss.run(sim::nsToPs(10));
  ss.setInput("rst_n", Val::k1);
  ss.run(ss.now() + sim::nsToPs(5));
  for (int i = 0; i < 24; ++i) {
    ss.setInput("scan_in", i % 3 == 0 ? Val::k1 : Val::k0);
    ss.setInput("clk", Val::k1);
    ss.run(ss.now() + sim::nsToPs(5));
    ss.setInput("clk", Val::k0);
    ss.run(ss.now() + sim::nsToPs(5));
  }

  // Desynchronized shift: the handshake replaces the clock; feed the same
  // bit stream by changing scan_in after each slave capture of the first
  // chain element.
  sim::Simulator sd(m, gf());
  sd.setInput("clk", Val::k0);
  sd.setInput("rst_n", Val::k0);
  sd.setInput("scan_en", Val::k1);
  sd.setInput("scan_in", Val::k1);
  sd.run(sim::nsToPs(20));
  sd.setInput("rst_n", Val::k1);
  // Drive scan_in per self-timed "cycle", watching the first chain FF's
  // master latch enable falling edges.
  int shifts = 0;
  const sim::CaptureLog* first = nullptr;
  for (const auto& log : sd.captures()) {
    if (log.element.find("_Lm") != std::string::npos) {
      first = &log;
      break;
    }
  }
  ASSERT_NE(first, nullptr);
  // Simple approach: advance in small steps; when the number of captures
  // of the reference element grows, present the next stimulus bit.
  std::size_t seen = first->values.size();
  while (shifts < 24 && sd.now() < sim::nsToPs(2000)) {
    sd.run(sd.now() + sim::nsToPs(1));
    if (first->values.size() > seen) {
      seen = first->values.size();
      ++shifts;
      sd.setInput("scan_in", shifts % 3 == 0 ? Val::k1 : Val::k0);
    }
  }
  EXPECT_EQ(shifts, 24);
  sim::FlowEqReport rep = sim::checkFlowEquivalence(ss, sd);
  EXPECT_TRUE(rep.equivalent) << (rep.details.empty() ? "?"
                                                      : rep.details[0]);
  EXPECT_GT(rep.values_compared, 50u);
}

}  // namespace
