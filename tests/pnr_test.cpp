// Tests for the backend PnR-lite: CTS, placement legality/locality, area
// accounting and the routability model.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "designs/cpu.h"
#include "designs/small.h"
#include "liberty/stdlib90.h"
#include "pnr/pnr.h"

namespace nl = desync::netlist;
namespace lib = desync::liberty;
namespace pnr = desync::pnr;
namespace designs = desync::designs;

namespace {

const lib::Gatefile& gf() {
  static const lib::Library l = lib::makeStdLib90(lib::LibVariant::kHighSpeed);
  static const lib::Gatefile g(l);
  return g;
}

TEST(Pnr, AreaStatsSplitCombAndSeq) {
  nl::Design d;
  designs::buildCounter(d, gf(), 8);
  pnr::AreaStats s = pnr::areaStats(*d.findModule("counter"), gf());
  EXPECT_EQ(s.cells, d.findModule("counter")->numCells());
  EXPECT_GT(s.comb_area, 0.0);
  EXPECT_GT(s.seq_area, 0.0);
  EXPECT_NEAR(s.cell_area, s.comb_area + s.seq_area, 1e-9);
}

TEST(Pnr, CtsBuffersTheClock) {
  nl::Design d;
  designs::buildCpu(d, gf(), designs::dlxConfig());
  nl::Module& m = *d.findModule("dlx");
  std::size_t before = m.numCells();
  pnr::PnrResult r = pnr::placeAndRoute(m, gf());
  EXPECT_GT(r.cts_buffers, 50u);
  EXPECT_EQ(r.cells_post, before + r.cts_buffers);
  // Every net (including the treed clock) now respects the fanout cap...
  // except leaf buffers with up to cts_max_fanout sinks.
  nl::NetId clk = m.port(m.findPort("clk")).net;
  EXPECT_LE(m.net(clk).sinks.size(), 12u);
  EXPECT_TRUE(m.checkInvariants().empty());
}

TEST(Pnr, PlacementCoversAllCellsWithoutOverlapPerRow) {
  nl::Design d;
  designs::buildCounter(d, gf(), 16);
  nl::Module& m = *d.findModule("counter");
  pnr::PnrResult r = pnr::placeAndRoute(m, gf());
  EXPECT_EQ(r.placement.size(), m.numCells());
  // Within each row, placements must not overlap.
  std::map<double, std::vector<std::pair<double, double>>> rows;
  const lib::Library& l = gf().library();
  for (const pnr::Placement& p : r.placement) {
    const lib::LibCell* c = l.findCell(std::string(m.cellType(p.cell)));
    double w = c->area / 2.8;
    rows[p.y].push_back({p.x, p.x + w});
  }
  for (auto& [y, spans] : rows) {
    std::sort(spans.begin(), spans.end());
    for (std::size_t i = 1; i < spans.size(); ++i) {
      EXPECT_GE(spans[i].first, spans[i - 1].second - 1e-6)
          << "overlap in row " << y;
    }
  }
}

TEST(Pnr, MinCutBeatsRandomOrderWirelength) {
  nl::Design d;
  designs::buildCpu(d, gf(), designs::dlxConfig());
  nl::Module& m = *d.findModule("dlx");
  pnr::PnrResult r = pnr::placeAndRoute(m, gf());
  // Compare against the expected wirelength of a random placement: average
  // net span ~ 2/3 the core side in each dimension.
  const double side = std::sqrt(r.core_size);
  const double random_hpwl =
      static_cast<double>(r.nets_post) * (2.0 / 3.0) * side * 2.0;
  EXPECT_LT(r.total_hpwl_um, random_hpwl * 0.5)
      << "placer should clearly beat random";
}

TEST(Pnr, UtilizationInPlausibleBand) {
  nl::Design d;
  designs::buildCpu(d, gf(), designs::dlxConfig());
  pnr::PnrResult r = pnr::placeAndRoute(*d.findModule("dlx"), gf());
  EXPECT_GT(r.utilization, 0.6);
  EXPECT_LE(r.utilization, 0.97);
  EXPECT_GT(r.core_size, r.std_cell_area);
}

TEST(Pnr, TighterRoutingSupplyGrowsCore) {
  nl::Design d1, d2;
  designs::buildCpu(d1, gf(), designs::dlxConfig());
  designs::buildCpu(d2, gf(), designs::dlxConfig());
  pnr::PnrOptions generous;
  generous.routing_supply = 30.0;
  pnr::PnrOptions tight;
  tight.routing_supply = 5.0;
  pnr::PnrResult a = pnr::placeAndRoute(*d1.findModule("dlx"), gf(), generous);
  pnr::PnrResult b = pnr::placeAndRoute(*d2.findModule("dlx"), gf(), tight);
  EXPECT_GT(b.core_size, a.core_size);
  EXPECT_LT(b.utilization, a.utilization);
}

}  // namespace

namespace {

TEST(Pnr, DeterministicAcrossRuns) {
  auto run = [] {
    nl::Design d;
    designs::buildCounter(d, gf(), 16);
    return pnr::placeAndRoute(*d.findModule("counter"), gf());
  };
  pnr::PnrResult a = run();
  pnr::PnrResult b = run();
  ASSERT_EQ(a.placement.size(), b.placement.size());
  for (std::size_t i = 0; i < a.placement.size(); ++i) {
    EXPECT_EQ(a.placement[i].cell.value, b.placement[i].cell.value);
    EXPECT_DOUBLE_EQ(a.placement[i].x, b.placement[i].x);
    EXPECT_DOUBLE_EQ(a.placement[i].y, b.placement[i].y);
  }
  EXPECT_DOUBLE_EQ(a.total_hpwl_um, b.total_hpwl_um);
  EXPECT_DOUBLE_EQ(a.core_size, b.core_size);
}

}  // namespace
