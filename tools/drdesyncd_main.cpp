// drdesyncd — the desynchronization flow as a long-running service.
//
// Loads the Liberty library once, then serves desynchronization requests
// over a JSON-lines protocol (docs/server.md): one request object per
// line, one reply per line.  Requests from every connection share the hot
// library, one FlowDB pass cache and the deterministic parallel layer;
// each request runs under its own jobs budget and trace track.
//
//   drdesyncd --lib builtin:hs --socket /tmp/drdesync.sock --workers 4
//   drdesyncd --lib builtin:hs --stdio < requests.jsonl > replies.jsonl
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/parallel.h"
#include "core/version.h"
#include "flowdb/snapshot.h"
#include "server/server.h"
#include "trace/trace.h"

using namespace desync;

namespace {

void usage() {
  // One flag per line; tools/check_docs.sh cross-checks this text and
  // docs/cli.md against the parser, so a new flag cannot ship undocumented.
  std::fputs(
      "usage: drdesyncd --lib <lib> (--socket PATH | --stdio) [options...]\n"
      "                                            (full docs: docs/server.md)\n"
      "\n"
      "service:\n"
      "  --lib <file.lib|builtin:hs|builtin:ll>  Liberty library (required)\n"
      "  --socket PATH      listen on a Unix-domain socket\n"
      "  --stdio            serve one JSON-lines session on stdin/stdout\n"
      "  --workers N        handler threads serving requests (default 2)\n"
      "  --jobs N           default per-request worker budget, 0 = auto\n"
      "  --cache-dir DIR    shared FlowDB pass cache for all requests\n"
      "\n"
      "diagnostics:\n"
      "  --trace FILE       write a Chrome trace_event JSON on exit; each\n"
      "                     request gets its own named track\n"
      "  --version          print tool and snapshot-format versions\n"
      "  --help, -h         this message\n",
      stderr);
}

volatile std::sig_atomic_t g_signal = 0;
void onSignal(int) { g_signal = 1; }

}  // namespace

int main(int argc, char** argv) {
  server::ServerOptions opt;
  bool stdio = false;
  std::string trace_path;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--lib") {
      opt.service.lib = next();
    } else if (arg == "--socket") {
      opt.socket_path = next();
    } else if (arg == "--stdio") {
      stdio = true;
    } else if (arg == "--workers") {
      opt.handlers = std::atoi(next().c_str());
      if (opt.handlers < 1 || opt.handlers > 256) {
        std::fputs("--workers must be in 1..256\n", stderr);
        return 2;
      }
    } else if (arg == "--jobs") {
      opt.service.default_jobs = std::atoi(next().c_str());
      if (opt.service.default_jobs < 0 || opt.service.default_jobs > 1024) {
        std::fputs("--jobs must be in 0..1024\n", stderr);
        return 2;
      }
    } else if (arg == "--cache-dir") {
      opt.service.cache_dir = next();
    } else if (arg == "--trace") {
      trace_path = next();
    } else if (arg == "--version") {
      std::printf("drdesyncd %s (snapshot format %u)\n",
                  std::string(core::kToolVersion).c_str(),
                  flowdb::kSnapshotFormatVersion);
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      usage();
      return 2;
    }
  }
  if (opt.socket_path.empty() && !stdio) {
    usage();
    return 2;
  }

  if (!trace_path.empty()) {
    trace::start(trace_path);
  } else {
    trace::startFromEnv();
  }

  int exit_code = 0;
  try {
    server::Server srv(opt);
    srv.start();
    if (!opt.socket_path.empty()) {
      std::fprintf(stderr, "drdesyncd: listening on %s (%d workers)\n",
                   opt.socket_path.c_str(), opt.handlers);
    }
    if (stdio) {
      srv.serveStream(std::cin, std::cout);
    } else {
      std::signal(SIGINT, onSignal);
      std::signal(SIGTERM, onSignal);
      while (g_signal == 0 &&
             !srv.waitForShutdownRequestFor(std::chrono::milliseconds(200))) {
      }
    }
    srv.stop();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "drdesyncd: error: %s\n", e.what());
    exit_code = 1;
  }
  trace::finish();
  core::shutdownParallel();  // join pool workers before static destructors
  return exit_code;
}
