// drdesync-bench — batch client and throughput benchmark for drdesyncd.
//
// Replays N designs (generator seeds and/or Verilog files) through a
// drdesyncd server — an external one via --connect, or an in-process one
// it spawns itself — from C concurrent client connections, then reports
// throughput (designs/sec) and p50/p95/p99 latency into BENCH_server.json.
// With --verify every reply is compared byte-for-byte (converted Verilog,
// SDC, canonical report) against a sequential in-process reference run,
// which is exactly the determinism contract the server promises.
//
//   drdesync-bench --designs 50 --concurrency 8 --workers 4 --verify
//   drdesync-bench --connect /tmp/drdesync.sock --designs 100
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/parallel.h"
#include "core/version.h"
#include "flowdb/snapshot.h"
#include "fuzz/generator.h"
#include "server/client.h"
#include "server/server.h"

using namespace desync;

namespace {

void usage() {
  // One flag per line; tools/check_docs.sh cross-checks this text and
  // docs/cli.md against the parser, so a new flag cannot ship undocumented.
  std::fputs(
      "usage: drdesync-bench [--connect SOCKET | --workers N] [options...]\n"
      "                                            (full docs: docs/server.md)\n"
      "\n"
      "server:\n"
      "  --connect SOCKET   replay against an already-running drdesyncd\n"
      "                     (default: spawn an in-process server)\n"
      "  --lib <file.lib|builtin:hs|builtin:ll>  Liberty library; must match\n"
      "                     the daemon's with --connect (default builtin:hs)\n"
      "  --workers N        in-process server handler threads (default 2)\n"
      "  --socket PATH      in-process server socket path (default: a\n"
      "                     per-process path under /tmp)\n"
      "  --cache-dir DIR    in-process server FlowDB pass cache\n"
      "\n"
      "workload:\n"
      "  --designs N        generator designs, seeds S..S+N-1 (default 50)\n"
      "  --seed S           first generator seed (default 1)\n"
      "  --design FILE      replay a Verilog netlist file too (repeatable)\n"
      "  --reset-port NAME  reset port for --design files (default rst_n,\n"
      "                     the generator contract)\n"
      "  --reset-active-high  reset for --design files is active-high\n"
      "  --jobs N           per-request worker budget, 0 = server default\n"
      "  --concurrency C    concurrent client connections (default 4)\n"
      "  --repeat R         send each design R times (default 1)\n"
      "  --warmup W         untimed passes over the set first (default 0)\n"
      "\n"
      "results:\n"
      "  --verify           compare every reply against a sequential\n"
      "                     in-process reference run (byte-identical\n"
      "                     Verilog, SDC and canonical report)\n"
      "  --out FILE         results JSON (default BENCH_server.json)\n"
      "  --version          print tool and snapshot-format versions\n"
      "  --help, -h         this message\n",
      stderr);
}

struct WorkItem {
  std::string name;
  server::Request request;  ///< id is assigned per send
};

struct Sample {
  std::size_t item = 0;
  double latency_ms = 0.0;
  bool ok = false;
  std::string error;
  std::string verilog, sdc, report;  ///< reply payloads (for --verify)
};

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

/// One client connection replaying items until the shared cursor runs out.
void clientLoop(const std::string& socket_path,
                const std::vector<WorkItem>& items, int repeat,
                std::atomic<std::size_t>& cursor,
                std::vector<Sample>& samples, std::mutex& samples_mutex,
                bool keep_payloads) {
  server::Client client(socket_path);
  const std::size_t total = items.size() * static_cast<std::size_t>(repeat);
  std::vector<Sample> local;
  for (;;) {
    const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
    if (i >= total) break;
    const WorkItem& item = items[i % items.size()];
    server::Request req = item.request;
    req.id = i + 1;
    Sample s;
    s.item = i % items.size();
    const auto begin = std::chrono::steady_clock::now();
    client.sendLine(server::requestLine(req));
    const std::string reply_line = client.recvLine();
    s.latency_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - begin)
                       .count();
    const server::Json reply = server::Json::parse(reply_line);
    s.ok = reply.getBool("ok", false);
    if (!s.ok) {
      s.error = reply.getString("error", "(no error message)");
    } else if (keep_payloads) {
      s.verilog = reply.getString("verilog", "");
      s.sdc = reply.getString("sdc", "");
      if (const server::Json* rep = reply.find("report")) {
        s.report = rep->dump();
      }
    }
    local.push_back(std::move(s));
  }
  std::lock_guard<std::mutex> lock(samples_mutex);
  for (Sample& s : local) samples.push_back(std::move(s));
}

}  // namespace

int main(int argc, char** argv) {
  std::string connect_path, socket_path, out_path = "BENCH_server.json";
  server::ServerOptions srv_opt;
  std::vector<std::string> design_files;
  std::string file_reset_port = "rst_n";
  bool file_reset_active_low = true;
  int n_designs = 50, concurrency = 4, repeat = 1, warmup = 0, jobs = 0;
  std::uint64_t seed = 1;
  bool verify = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--connect") {
      connect_path = next();
    } else if (arg == "--lib") {
      srv_opt.service.lib = next();
    } else if (arg == "--workers") {
      srv_opt.handlers = std::atoi(next().c_str());
    } else if (arg == "--socket") {
      socket_path = next();
    } else if (arg == "--cache-dir") {
      srv_opt.service.cache_dir = next();
    } else if (arg == "--designs") {
      n_designs = std::atoi(next().c_str());
    } else if (arg == "--seed") {
      seed = static_cast<std::uint64_t>(std::atoll(next().c_str()));
    } else if (arg == "--design") {
      design_files.push_back(next());
    } else if (arg == "--reset-port") {
      file_reset_port = next();
    } else if (arg == "--reset-active-high") {
      file_reset_active_low = false;
    } else if (arg == "--jobs") {
      jobs = std::atoi(next().c_str());
    } else if (arg == "--concurrency") {
      concurrency = std::atoi(next().c_str());
    } else if (arg == "--repeat") {
      repeat = std::atoi(next().c_str());
    } else if (arg == "--warmup") {
      warmup = std::atoi(next().c_str());
    } else if (arg == "--verify") {
      verify = true;
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--version") {
      std::printf("drdesync-bench %s (snapshot format %u)\n",
                  std::string(core::kToolVersion).c_str(),
                  flowdb::kSnapshotFormatVersion);
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      usage();
      return 2;
    }
  }
  if (n_designs < 0 || concurrency < 1 || repeat < 1 || warmup < 0) {
    std::fputs("drdesync-bench: invalid workload sizes\n", stderr);
    return 2;
  }

  try {
    // The workload is generated locally, so the bench needs its own view
    // of the library even against an external daemon (--lib must match).
    server::FlowService reference({srv_opt.service.lib, "", 0});

    std::vector<WorkItem> items;
    for (int d = 0; d < n_designs; ++d) {
      WorkItem item;
      const std::uint64_t s = seed + static_cast<std::uint64_t>(d);
      item.name = "seed-" + std::to_string(s);
      item.request.name = item.name;
      item.request.design =
          fuzz::generateVerilog(reference.gatefile(), s, {});
      item.request.reset_port = "rst_n";
      item.request.reset_active_low = true;
      items.push_back(std::move(item));
    }
    for (const std::string& path : design_files) {
      std::ifstream in(path);
      if (!in) {
        std::fprintf(stderr, "drdesync-bench: cannot read %s\n",
                     path.c_str());
        return 2;
      }
      std::ostringstream text;
      text << in.rdbuf();
      WorkItem item;
      item.name = path;
      item.request.name = path;
      item.request.design = text.str();
      item.request.reset_port = file_reset_port;
      item.request.reset_active_low = file_reset_active_low;
      items.push_back(std::move(item));
    }
    if (items.empty()) {
      std::fputs("drdesync-bench: nothing to replay\n", stderr);
      return 2;
    }
    for (WorkItem& item : items) {
      item.request.jobs = jobs;
      item.request.report = server::ReportMode::kCanonical;
    }

    // In-process server unless --connect names an external daemon.
    std::unique_ptr<server::Server> local;
    std::string target = connect_path;
    if (target.empty()) {
      if (socket_path.empty()) {
        socket_path = "/tmp/drdesync-bench-" +
                      std::to_string(static_cast<long>(::getpid())) +
                      ".sock";
      }
      srv_opt.socket_path = socket_path;
      local = std::make_unique<server::Server>(srv_opt);
      local->start();
      target = socket_path;
    }

    // Sequential reference replies, computed before the clock starts.
    std::vector<std::string> ref_verilog(items.size()), ref_sdc(items.size()),
        ref_report(items.size());
    if (verify) {
      for (std::size_t i = 0; i < items.size(); ++i) {
        server::Request req = items[i].request;
        req.id = i + 1;
        const server::Json reply = reference.handle(req);
        if (!reply.getBool("ok", false)) {
          std::fprintf(stderr,
                       "drdesync-bench: reference run of %s failed: %s\n",
                       items[i].name.c_str(),
                       reply.getString("error", "?").c_str());
          return 1;
        }
        ref_verilog[i] = reply.getString("verilog", "");
        ref_sdc[i] = reply.getString("sdc", "");
        if (const server::Json* rep = reply.find("report")) {
          // The reference report is a raw pre-serialized fragment; parse
          // and re-dump it so both sides compare in dump() form.
          ref_report[i] = server::Json::parse(rep->asString()).dump();
        }
      }
    }

    for (int w = 0; w < warmup; ++w) {
      std::atomic<std::size_t> cursor{0};
      std::vector<Sample> sink;
      std::mutex sink_mutex;
      std::vector<std::thread> threads;
      for (int c = 0; c < concurrency; ++c) {
        threads.emplace_back([&] {
          clientLoop(target, items, 1, cursor, sink, sink_mutex, false);
        });
      }
      for (std::thread& t : threads) t.join();
    }

    std::atomic<std::size_t> cursor{0};
    std::vector<Sample> samples;
    std::mutex samples_mutex;
    std::vector<std::thread> threads;
    const auto begin = std::chrono::steady_clock::now();
    for (int c = 0; c < concurrency; ++c) {
      threads.emplace_back([&] {
        clientLoop(target, items, repeat, cursor, samples, samples_mutex,
                   verify);
      });
    }
    for (std::thread& t : threads) t.join();
    const double elapsed_s = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - begin)
                                 .count();

    std::size_t failed = 0, mismatches = 0;
    std::vector<double> latencies;
    for (const Sample& s : samples) {
      latencies.push_back(s.latency_ms);
      if (!s.ok) {
        ++failed;
        std::fprintf(stderr, "drdesync-bench: %s failed: %s\n",
                     items[s.item].name.c_str(), s.error.c_str());
        continue;
      }
      if (verify && (s.verilog != ref_verilog[s.item] ||
                     s.sdc != ref_sdc[s.item] ||
                     s.report != ref_report[s.item])) {
        ++mismatches;
        std::string what;
        if (s.verilog != ref_verilog[s.item]) what += " verilog";
        if (s.sdc != ref_sdc[s.item]) what += " sdc";
        if (s.report != ref_report[s.item]) what += " report";
        std::fprintf(stderr,
                     "drdesync-bench: %s differs from the sequential "
                     "reference run in:%s\n",
                     items[s.item].name.c_str(), what.c_str());
        if (s.report != ref_report[s.item]) {
          std::fprintf(stderr, "  reference report: %s\n  server report: %s\n",
                       ref_report[s.item].c_str(), s.report.c_str());
        }
      }
    }
    std::sort(latencies.begin(), latencies.end());
    double latency_sum = 0.0;
    for (double l : latencies) latency_sum += l;

    server::Json out = server::Json::object();
    out.set("tool_version", server::Json::str(std::string(
                                core::kToolVersion)));
    out.set("designs", server::Json::number(
                           static_cast<double>(items.size())));
    out.set("requests",
            server::Json::number(static_cast<double>(samples.size())));
    out.set("failed", server::Json::number(static_cast<double>(failed)));
    out.set("concurrency", server::Json::number(concurrency));
    out.set("workers", server::Json::number(srv_opt.handlers));
    out.set("jobs", server::Json::number(jobs));
    out.set("elapsed_s", server::Json::number(elapsed_s));
    out.set("throughput_designs_per_sec",
            server::Json::number(elapsed_s > 0.0
                                     ? static_cast<double>(samples.size()) /
                                           elapsed_s
                                     : 0.0));
    server::Json lat = server::Json::object();
    lat.set("p50_ms", server::Json::number(percentile(latencies, 0.50)));
    lat.set("p95_ms", server::Json::number(percentile(latencies, 0.95)));
    lat.set("p99_ms", server::Json::number(percentile(latencies, 0.99)));
    lat.set("mean_ms",
            server::Json::number(latencies.empty()
                                     ? 0.0
                                     : latency_sum /
                                           static_cast<double>(
                                               latencies.size())));
    lat.set("max_ms", server::Json::number(
                          latencies.empty() ? 0.0 : latencies.back()));
    out.set("latency", std::move(lat));
    if (verify) {
      server::Json ver = server::Json::object();
      ver.set("checked", server::Json::number(
                             static_cast<double>(samples.size() - failed)));
      ver.set("mismatches",
              server::Json::number(static_cast<double>(mismatches)));
      out.set("verify", std::move(ver));
    }
    std::ofstream(out_path) << out.dump() << "\n";

    std::printf(
        "drdesync-bench: %zu requests in %.2fs (%.1f/s), p50 %.1fms "
        "p95 %.1fms p99 %.1fms, %zu failed%s\n",
        samples.size(), elapsed_s,
        elapsed_s > 0.0 ? static_cast<double>(samples.size()) / elapsed_s
                        : 0.0,
        percentile(latencies, 0.50), percentile(latencies, 0.95),
        percentile(latencies, 0.99), failed,
        verify ? (", " + std::to_string(mismatches) + " mismatches").c_str()
               : "");

    if (local != nullptr) local->stop();
    core::shutdownParallel();
    return (failed == 0 && mismatches == 0) ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "drdesync-bench: error: %s\n", e.what());
    core::shutdownParallel();
    return 1;
  }
}
