// drdesync — command-line desynchronization tool (thesis §3.2: "The tool
// has a command line interface and the desynchronization operation consists
// of a sequence of steps").
//
// Reads a post-synthesis gate-level Verilog netlist and a Liberty library,
// desynchronizes the top module and writes the converted netlist plus the
// backend constraints.
//
//   drdesync --lib builtin:hs --in dlx.v --top dlx
//            --reset-port rst_n --reset-active-low
//            --group "pc_,ifid_;idex_;exmem_,red_;rf_,dmem_"
//            --out dlx_desync.v --sdc dlx.sdc --blif dlx.blif --report
#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/desync.h"
#include "core/parallel.h"
#include "core/run_report.h"
#include "core/version.h"
#include "flowdb/snapshot.h"
#include "liberty/liberty_io.h"
#include "liberty/stdlib90.h"
#include "netlist/blif.h"
#include "netlist/verilog.h"
#include "trace/trace.h"

using namespace desync;

namespace {

void usage() {
  // One flag per line; tools/check_docs.sh cross-checks this text and
  // docs/cli.md against the parser, so a new flag cannot ship undocumented.
  std::fputs(
      "usage: drdesync --lib <lib> --in <netlist.v> --out <netlist.v>\n"
      "                [options...]                (full docs: docs/cli.md)\n"
      "\n"
      "inputs / outputs:\n"
      "  --lib <file.lib|builtin:hs|builtin:ll>  Liberty library (required)\n"
      "  --in FILE          gate-level Verilog netlist to read (required)\n"
      "  --top NAME         top module (default: sole module of the input)\n"
      "  --out FILE         desynchronized Verilog netlist (required)\n"
      "  --sdc FILE         write backend timing constraints (SDC)\n"
      "  --blif FILE        write the top module as BLIF\n"
      "  --gatefile FILE    write the derived gatefile (library view)\n"
      "\n"
      "flow options:\n"
      "  --reset-port NAME  controller reset port (default: none)\n"
      "  --reset-active-low reset is active-low\n"
      "  --group \"p1,p2;p3\" manual regions by cell-name prefix\n"
      "                     (';' separates regions, ',' prefixes)\n"
      "  --false-path NET   net the grouping pass ignores (repeatable)\n"
      "  --margin F         matched-delay safety margin (default 0.10)\n"
      "  --mux-taps N       delay-line calibration taps: 0, 2, 4 or 8\n"
      "  --no-bus-heuristic disable bus-name region merging\n"
      "  --no-clean         skip netlist cleaning before grouping\n"
      "  --fe-check N       after the flow, simulate N stimulus batches\n"
      "                     and check flow equivalence of the converted\n"
      "                     netlist against the input (0 = off, default)\n"
      "  --fe-engine E      golden-side simulator for --fe-check: 'bitsim'\n"
      "                     (bit-parallel, 64 batches per pass, default)\n"
      "                     or 'event' (reference); verdicts are identical\n"
      "  --fe-mode M        flow-equivalence route: 'sim' (vector batches,\n"
      "                     default), 'prove' (per-register SAT proof of\n"
      "                     projection equivalence + protocol check), or\n"
      "                     'both' (docs/symfe.md)\n"
      "\n"
      "execution:\n"
      "  --jobs N           worker threads, 0 = auto (default: DESYNC_JOBS\n"
      "                     env or hardware concurrency)\n"
      "  --cache-dir DIR    FlowDB pass cache: restore unchanged pipeline\n"
      "                     prefixes instead of recomputing\n"
      "  --resume           restart from the last valid checkpoint in\n"
      "                     --cache-dir\n"
      "  --eco              incremental recompute: diff the input against\n"
      "                     the previous run's region tables in --cache-dir\n"
      "                     and re-analyze only the dirty regions\n"
      "                     (docs/eco.md); output is byte-identical to a\n"
      "                     cold run\n"
      "  --eco-base DIR     shorthand for '--cache-dir DIR --eco': DIR holds\n"
      "                     the base run's tables and receives this run's\n"
      "                     updated ones\n"
      "\n"
      "diagnostics:\n"
      "  --report           print the run report JSON to stdout\n"
      "                     (schema: docs/report-schema.md)\n"
      "  --trace FILE       write a Chrome trace_event JSON of the run,\n"
      "                     loadable in Perfetto (docs/trace-format.md);\n"
      "                     DESYNC_TRACE env sets a default path\n"
      "  --version          print tool and snapshot-format versions\n"
      "  --help, -h         this message\n",
      stderr);
}

/// Strict full-token numeric parses for flag values: trailing garbage and
/// out-of-range values are usage errors, not silently accepted prefixes.
double parseDoubleFlag(const std::string& flag, const std::string& text) {
  const char* begin = text.c_str();
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(begin, &end);
  if (end == begin || *end != '\0' || errno == ERANGE) {
    std::fprintf(stderr, "invalid number for %s: '%s'\n", flag.c_str(),
                 text.c_str());
    std::exit(2);
  }
  return v;
}

int parseIntFlag(const std::string& flag, const std::string& text) {
  int v = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), v);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    std::fprintf(stderr, "invalid integer for %s: '%s'\n", flag.c_str(),
                 text.c_str());
    std::exit(2);
  }
  return v;
}

std::vector<std::vector<std::string>> parseGroups(const std::string& spec) {
  std::vector<std::vector<std::string>> groups;
  std::stringstream groups_in(spec);
  std::string group;
  while (std::getline(groups_in, group, ';')) {
    std::vector<std::string> prefixes;
    std::stringstream prefix_in(group);
    std::string prefix;
    while (std::getline(prefix_in, prefix, ',')) {
      if (!prefix.empty()) prefixes.push_back(prefix);
    }
    if (!prefixes.empty()) groups.push_back(std::move(prefixes));
  }
  return groups;
}

}  // namespace

int main(int argc, char** argv) {
  std::string lib_path, in_path, top, out_path, sdc_path, blif_path,
      gatefile_path, group_spec, trace_path, eco_base;
  core::DesyncOptions opt;
  bool report = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--lib") {
      lib_path = next();
    } else if (arg == "--in") {
      in_path = next();
    } else if (arg == "--top") {
      top = next();
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--sdc") {
      sdc_path = next();
    } else if (arg == "--blif") {
      blif_path = next();
    } else if (arg == "--gatefile") {
      gatefile_path = next();
    } else if (arg == "--reset-port") {
      opt.control.reset_port = next();
    } else if (arg == "--reset-active-low") {
      opt.control.reset_active_low = true;
    } else if (arg == "--group") {
      group_spec = next();
    } else if (arg == "--false-path") {
      opt.grouping.false_path_nets.push_back(next());
    } else if (arg == "--margin") {
      opt.control.margin = parseDoubleFlag(arg, next());
    } else if (arg == "--mux-taps") {
      const int taps = parseIntFlag(arg, next());
      if (taps != 0 && taps != 2 && taps != 4 && taps != 8) {
        std::fprintf(stderr, "--mux-taps must be 0, 2, 4 or 8 (got %d)\n",
                     taps);
        return 2;
      }
      opt.control.mux_taps = taps;
    } else if (arg == "--jobs") {
      const int jobs = parseIntFlag(arg, next());
      if (jobs < 0 || jobs > 1024) {
        std::fprintf(stderr, "--jobs must be in 0..1024 (got %d)\n", jobs);
        return 2;
      }
      core::setThreadJobs(jobs);  // 0 resets to the env/hardware default
    } else if (arg == "--fe-check") {
      const int batches = parseIntFlag(arg, next());
      if (batches < 0 || batches > 4096) {
        std::fprintf(stderr, "--fe-check must be in 0..4096 (got %d)\n",
                     batches);
        return 2;
      }
      opt.fe.batches = static_cast<std::size_t>(batches);
    } else if (arg == "--fe-engine") {
      try {
        opt.fe.engine = sim::parseSyncEngine(next());
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
      }
    } else if (arg == "--fe-mode") {
      try {
        opt.fe.mode = core::parseFeMode(next());
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
      }
    } else if (arg == "--no-bus-heuristic") {
      opt.grouping.bus_heuristic = false;
    } else if (arg == "--no-clean") {
      opt.grouping.clean_logic = false;
    } else if (arg == "--cache-dir") {
      opt.flowdb.cache_dir = next();
    } else if (arg == "--resume") {
      opt.flowdb.resume = true;
    } else if (arg == "--eco") {
      opt.flowdb.eco = true;
    } else if (arg == "--eco-base") {
      eco_base = next();
    } else if (arg == "--report") {
      report = true;
    } else if (arg == "--trace") {
      trace_path = next();
    } else if (arg == "--version") {
      std::printf("drdesync %s (snapshot format %u)\n",
                  std::string(core::kToolVersion).c_str(),
                  flowdb::kSnapshotFormatVersion);
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      usage();
      return 2;
    }
  }
  if (lib_path.empty() || in_path.empty() || out_path.empty()) {
    usage();
    return 2;
  }
  if (opt.flowdb.resume && opt.flowdb.cache_dir.empty()) {
    std::fputs("drdesync: --resume requires --cache-dir\n", stderr);
    return 2;
  }
  if (!eco_base.empty()) {
    if (!opt.flowdb.cache_dir.empty() && opt.flowdb.cache_dir != eco_base) {
      std::fputs("drdesync: --eco-base conflicts with --cache-dir\n", stderr);
      return 2;
    }
    opt.flowdb.cache_dir = eco_base;
    opt.flowdb.eco = true;
  }
  if (opt.flowdb.eco && opt.flowdb.cache_dir.empty()) {
    std::fputs("drdesync: --eco requires --cache-dir\n", stderr);
    return 2;
  }
  opt.manual_seq_groups = parseGroups(group_spec);

  // The command line wins over the DESYNC_TRACE environment default.
  if (!trace_path.empty()) {
    trace::start(trace_path);
  } else {
    trace::startFromEnv();
  }

  core::RunInfo info;
  info.input = in_path;
  try {
    liberty::Library library =
        lib_path == "builtin:hs"
            ? liberty::makeStdLib90(liberty::LibVariant::kHighSpeed)
        : lib_path == "builtin:ll"
            ? liberty::makeStdLib90(liberty::LibVariant::kLowLeakage)
            : liberty::readLibertyFile(lib_path);
    liberty::Gatefile gatefile(library);
    if (!gatefile_path.empty()) {
      std::ofstream(gatefile_path) << gatefile.toText();
    }

    netlist::Design design;
    netlist::readVerilogFile(design, in_path, gatefile, {}, top);
    netlist::Module& module =
        top.empty() ? design.top() : *design.findModule(top);

    info.cells_in = module.numCells();
    core::DesyncResult result =
        core::desynchronize(design, module, gatefile, opt);

    // Drain and write the trace right after the flow so the file covers
    // exactly the seven passes; the summary rides into --report JSON.
    trace::Summary trace_summary = trace::finish();
    if (trace_summary.enabled) {
      result.flow.setTraceSummary(std::move(trace_summary));
    }

    netlist::writeVerilogFile(design, out_path);
    if (!sdc_path.empty()) {
      std::ofstream(sdc_path) << result.sdc.toText();
    }
    if (!blif_path.empty()) {
      std::ofstream(blif_path) << netlist::writeBlif(module);
    }

    if (report) {
      // Machine-readable run report (schema documented in the README).
      info.cells_out = module.numCells();
      info.nets_out = module.numNets();
      std::fputs(core::runReportJson(info, result).c_str(), stdout);
    }
    bool fe_failed = false;
    if (result.fe.ran) {
      const sim::FlowEqBatchReport& fe = result.fe.report;
      fe_failed = !fe.equivalent;
      std::fprintf(stderr,
                   "drdesync: fe-check: %zu batches, %zu values compared, "
                   "%zu mismatches: %s%s\n",
                   fe.batches_run, fe.values_compared, fe.mismatches,
                   fe.equivalent ? "flow-equivalent" : "NOT flow-equivalent",
                   result.substitution.ffs_replaced == 0
                       ? " (vacuous: no flip-flops replaced)"
                       : "");
    }
    if (result.symfe.ran) {
      const sim::symfe::SymfeReport& sf = result.symfe.report;
      if (!sf.ok()) fe_failed = true;
      std::fprintf(stderr,
                   "drdesync: fe-prove: %zu registers: %zu proved, %zu "
                   "refuted, %zu skipped; protocol %s: %s\n",
                   sf.registers.size(), sf.proved, sf.refuted, sf.skipped,
                   sf.protocol.controller.c_str(),
                   sf.ok() ? "projection equivalence proved"
                           : "NOT proved");
      for (const sim::symfe::RegisterProof& p : sf.registers) {
        if (p.verdict == sim::symfe::RegVerdict::kProved) continue;
        std::fprintf(stderr, "drdesync: fe-prove:   %s %s: %s\n",
                     p.verdict == sim::symfe::RegVerdict::kRefuted
                         ? "refuted"
                         : "skipped",
                     p.name.c_str(), p.reason.c_str());
      }
      if (!sf.protocol.admissible) {
        std::fprintf(stderr, "drdesync: fe-prove:   protocol: %s\n",
                     sf.protocol.violation.c_str());
      }
    }
    core::shutdownParallel();  // join workers before static destructors
    return fe_failed ? 1 : 0;
  } catch (const core::FlowError& e) {
    // A pass failed mid-flow: still write the trace collected so far (a
    // post-mortem of where the flow died), then the partial report with
    // every pass that ran (with timings) plus the failure itself.
    trace::finish();
    if (report) {
      std::fputs(
          core::errorReportJson(info, e.what(), e.pass(), e.flow()).c_str(),
          stdout);
    }
    std::fprintf(stderr, "drdesync: error in pass %s: %s\n", e.pass().c_str(),
                 e.what());
    core::shutdownParallel();
    return 1;
  } catch (const std::exception& e) {
    trace::finish();
    if (report) {
      std::fputs(core::errorReportJson(info, e.what(), "", {}).c_str(),
                 stdout);
    }
    std::fprintf(stderr, "drdesync: error: %s\n", e.what());
    core::shutdownParallel();
    return 1;
  }
}
