#!/bin/sh
# Docs/CLI consistency checks, run by the CI "docs" job (and available as
# a ctest).  Pure grep/sed over the sources — no build needed:
#
#   1. every flag the drdesync parser accepts appears in the tool's
#      usage() text AND in docs/cli.md;
#   2. every `--flag` docs/cli.md documents is actually accepted by the
#      parser (no stale docs);
#   3. every relative markdown link in README.md and docs/*.md resolves
#      to an existing file.
#
# Exits non-zero listing every failure.
set -u

repo=$(cd "$(dirname "$0")/.." && pwd)
main="$repo/tools/drdesync_main.cpp"
cli_doc="$repo/docs/cli.md"
fail=0

# --- 1. parser flags -> usage() and docs/cli.md ---------------------------
# Flags are recognized in an if-chain of the form:  arg == "--name"
parser_flags=$(grep -o 'arg == "--[a-z-]*"' "$main" |
  sed 's/arg == "//; s/"//' | sort -u | tr '\n' ' ')
if [ -z "$parser_flags" ]; then
  echo "FAIL: could not extract any flags from $main"
  fail=1
fi

usage_text=$(sed -n '/^void usage()/,/^}/p' "$main")
if [ -z "$usage_text" ]; then
  echo "FAIL: could not locate usage() in $main"
  fail=1
fi

for flag in $parser_flags; do
  case "$usage_text" in
    *"$flag"*) ;;
    *)
      echo "FAIL: flag $flag is accepted by the parser but missing from" \
           "usage() in tools/drdesync_main.cpp"
      fail=1
      ;;
  esac
  if ! grep -q -- "\`$flag\`" "$cli_doc"; then
    echo "FAIL: flag $flag is accepted by the parser but not documented" \
         "in docs/cli.md"
    fail=1
  fi
done

# --- 2. docs/cli.md flags -> parser ---------------------------------------
doc_flags=$(grep -o '`--[a-z-]*`' "$cli_doc" | sed 's/`//g' | sort -u)
for flag in $doc_flags; do
  case " $parser_flags " in
    *" $flag "*) ;;
    *)
      echo "FAIL: docs/cli.md documents $flag but the parser does not" \
           "accept it"
      fail=1
      ;;
  esac
done

# --- 3. relative markdown links resolve -----------------------------------
for md in "$repo/README.md" "$repo"/docs/*.md; do
  dir=$(dirname "$md")
  # Extract (target) of every [text](target) link, one per line.
  links=$(grep -o '\]([^)]*)' "$md" | sed 's/^](//; s/)$//')
  for link in $links; do
    case "$link" in
      http://*|https://*|mailto:*) continue ;;
    esac
    target=${link%%#*}          # drop a #fragment, keep the file part
    [ -z "$target" ] && continue  # same-file fragment link
    if [ ! -e "$dir/$target" ]; then
      echo "FAIL: broken link '$link' in ${md#"$repo"/}"
      fail=1
    fi
  done
done

if [ "$fail" -eq 0 ]; then
  echo "check_docs: OK ($(echo "$parser_flags" | wc -w | tr -d ' ') flags," \
       "all links resolve)"
fi
exit "$fail"
