#!/bin/sh
# Docs/CLI consistency checks, run by the CI "docs" job (and available as
# a ctest).  Pure grep/sed over the sources — no build needed:
#
#   1. every flag a tool's parser accepts (drdesync, drdesync-fuzz,
#      drdesyncd, drdesync-bench) appears in that tool's usage() text
#      AND in docs/cli.md;
#   2. every `--flag` docs/cli.md documents is actually accepted by at
#      least one tool's parser (no stale docs);
#   3. every relative markdown link in README.md and docs/*.md resolves
#      to an existing file.
#
# Exits non-zero listing every failure.
set -u

repo=$(cd "$(dirname "$0")/.." && pwd)
cli_doc="$repo/docs/cli.md"
fail=0
all_parser_flags=""

# --- 1. parser flags -> usage() and docs/cli.md ---------------------------
# Flags are recognized in an if-chain of the form:  arg == "--name"
check_tool() {
  main="$repo/tools/$1"
  parser_flags=$(grep -o 'arg == "--[a-z-]*"' "$main" |
    sed 's/arg == "//; s/"//' | sort -u | tr '\n' ' ')
  if [ -z "$parser_flags" ]; then
    echo "FAIL: could not extract any flags from $main"
    fail=1
  fi
  all_parser_flags="$all_parser_flags $parser_flags"

  usage_text=$(sed -n '/^void usage()/,/^}/p' "$main")
  if [ -z "$usage_text" ]; then
    echo "FAIL: could not locate usage() in $main"
    fail=1
  fi

  for flag in $parser_flags; do
    case "$usage_text" in
      *"$flag"*) ;;
      *)
        echo "FAIL: flag $flag is accepted by the parser but missing from" \
             "usage() in tools/$1"
        fail=1
        ;;
    esac
    if ! grep -q -- "\`$flag\`" "$cli_doc"; then
      echo "FAIL: flag $flag is accepted by the tools/$1 parser but not" \
           "documented in docs/cli.md"
      fail=1
    fi
  done
}

check_tool drdesync_main.cpp
check_tool drdesync_fuzz_main.cpp
check_tool drdesyncd_main.cpp
check_tool drdesync_bench_main.cpp

# --- 2. docs/cli.md flags -> some parser ----------------------------------
doc_flags=$(grep -o '`--[a-z-]*`' "$cli_doc" | sed 's/`//g' | sort -u)
for flag in $doc_flags; do
  case " $all_parser_flags " in
    *" $flag "*) ;;
    *)
      echo "FAIL: docs/cli.md documents $flag but no tool parser" \
           "accepts it"
      fail=1
      ;;
  esac
done

# --- 3. relative markdown links resolve -----------------------------------
for md in "$repo/README.md" "$repo"/docs/*.md; do
  dir=$(dirname "$md")
  # Extract (target) of every [text](target) link, one per line.
  links=$(grep -o '\]([^)]*)' "$md" | sed 's/^](//; s/)$//')
  for link in $links; do
    case "$link" in
      http://*|https://*|mailto:*) continue ;;
    esac
    target=${link%%#*}          # drop a #fragment, keep the file part
    [ -z "$target" ] && continue  # same-file fragment link
    if [ ! -e "$dir/$target" ]; then
      echo "FAIL: broken link '$link' in ${md#"$repo"/}"
      fail=1
    fi
  done
done

if [ "$fail" -eq 0 ]; then
  echo "check_docs: OK ($(echo "$all_parser_flags" | tr ' ' '\n' |
    sort -u | grep -c .) distinct flags, all links resolve)"
fi
exit "$fail"
