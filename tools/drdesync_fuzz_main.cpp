// drdesync-fuzz — differential fuzzer for the desynchronization flow.
//
// Generates seeded random synchronous designs, pushes each through the
// complete seven-pass flow and cross-checks every invariant the repo
// guarantees (flow equivalence against the synchronous golden simulation,
// Verilog write/read fixpoint, STA/SDC sanity, FlowDB cold/warm identity).
// On a failure the netlist is delta-debugged down to a minimal reproducer
// and written to the corpus directory with its one-line repro command.
//
//   drdesync-fuzz --runs 200                        # hunt
//   drdesync-fuzz --seed 7 --fault self-test --shrink --out-dir tests/corpus
//   drdesync-fuzz --replay tests/corpus/fz_s7_self-test.v \
//                 --fault self-test --expect-check self-test
#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/parallel.h"
#include "core/version.h"
#include "fuzz/generator.h"
#include "fuzz/oracle.h"
#include "fuzz/shrink.h"
#include "liberty/stdlib90.h"

using namespace desync;

namespace {

void usage() {
  // One flag per line; tools/check_docs.sh cross-checks this text and
  // docs/cli.md against the parser, so a new flag cannot ship undocumented.
  std::fputs(
      "usage: drdesync-fuzz [--runs N] [--seed S] [options...]\n"
      "       drdesync-fuzz --replay FILE [--expect-check NAME]\n"
      "                                           (full docs: docs/cli.md)\n"
      "\n"
      "generation:\n"
      "  --seed S           first seed (default 1)\n"
      "  --runs N           number of consecutive seeds to try (default 1)\n"
      "  --lib <builtin:hs|builtin:ll>  Liberty library (default builtin:hs)\n"
      "  --emit FILE        write the --seed design's Verilog and exit\n"
      "                     (no oracle run; '-' for stdout)\n"
      "\n"
      "oracle:\n"
      "  --fault NAME       inject a known flow fault: none, fully-decoupled,\n"
      "                     short-margin or self-test (default none)\n"
      "  --cycles N         synchronous clock cycles simulated (default 16)\n"
      "  --no-flowdb        skip the FlowDB cold/warm cache cross-check\n"
      "  --no-eco           skip the incremental-ECO differential check\n"
      "  --eco-seed S       seed of the ECO check's scripted edit (default:\n"
      "                     the design seed in generation mode, 1 otherwise)\n"
      "  --fe-engine E      golden-side simulator for the flow-equivalence\n"
      "                     check: 'bitsim' (bit-parallel, default) or\n"
      "                     'event' (reference); verdicts are identical\n"
      "  --fe-mode M        flow-equivalence route: 'sim' (vector batches,\n"
      "                     default), 'prove' (per-register SAT proof), or\n"
      "                     'both' — the two routes must agree\n"
      "  --jobs N           worker threads for the main flow, 0 = auto\n"
      "\n"
      "failure handling:\n"
      "  --shrink           delta-debug a failing design to a minimal\n"
      "                     reproducer before reporting it\n"
      "  --max-evals N      shrinker oracle-evaluation budget (default 400)\n"
      "  --out-dir DIR      write reproducer .v files here (default: cwd)\n"
      "\n"
      "corpus replay:\n"
      "  --replay FILE      run the oracle on an existing netlist instead of\n"
      "                     generating one (repeatable)\n"
      "  --expect-check NAME  replay must fail exactly this check (for\n"
      "                     checked-in fault reproducers); without it a\n"
      "                     replay must pass\n"
      "\n"
      "  --version          print tool version\n"
      "  --help, -h         this message\n",
      stderr);
}

int parseIntFlag(const std::string& flag, const std::string& text) {
  int v = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), v);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    std::fprintf(stderr, "invalid integer for %s: '%s'\n", flag.c_str(),
                 text.c_str());
    std::exit(2);
  }
  return v;
}

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "drdesync-fuzz: cannot read %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string describe(const fuzz::OracleVerdict& v) {
  char buf[128];
  std::snprintf(buf, sizeof buf, "cells=%zu ffs=%zu regions=%d compared=%zu",
                v.cells, v.ffs_replaced, v.regions, v.values_compared);
  std::string out = buf;
  if (v.registers_proved > 0) {
    out += " proved=" + std::to_string(v.registers_proved);
  }
  if (!v.eco_edit.empty()) out += "; eco edit: " + v.eco_edit;
  if (!v.note.empty()) out += "; note: " + v.note;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  // Join pool workers on every exit path so they are never torn down by
  // static destructors racing other translation units (core/parallel.h).
  struct PoolJoin {
    ~PoolJoin() { core::shutdownParallel(); }
  } pool_join;
  std::uint64_t seed = 1;
  int runs = 1;
  std::string lib_name = "builtin:hs";
  std::string out_dir = ".";
  std::string emit_path;
  std::string expect_check;
  std::vector<std::string> replays;
  fuzz::OracleOptions oracle;
  fuzz::ShrinkOptions shrink_opt;
  bool do_shrink = false;
  bool eco_seed_fixed = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      seed = static_cast<std::uint64_t>(parseIntFlag(arg, next()));
    } else if (arg == "--runs") {
      runs = parseIntFlag(arg, next());
    } else if (arg == "--lib") {
      lib_name = next();
    } else if (arg == "--emit") {
      emit_path = next();
    } else if (arg == "--fault") {
      try {
        oracle.fault = fuzz::parseFaultKind(next());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "drdesync-fuzz: %s\n", e.what());
        return 2;
      }
    } else if (arg == "--cycles") {
      oracle.cycles = parseIntFlag(arg, next());
    } else if (arg == "--no-flowdb") {
      oracle.check_flowdb = false;
    } else if (arg == "--no-eco") {
      oracle.check_eco = false;
    } else if (arg == "--eco-seed") {
      oracle.eco_seed = static_cast<std::uint64_t>(parseIntFlag(arg, next()));
      eco_seed_fixed = true;
    } else if (arg == "--fe-engine") {
      try {
        oracle.fe_engine = sim::parseSyncEngine(next());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "drdesync-fuzz: %s\n", e.what());
        return 2;
      }
    } else if (arg == "--fe-mode") {
      try {
        oracle.fe_mode = core::parseFeMode(next());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "drdesync-fuzz: %s\n", e.what());
        return 2;
      }
    } else if (arg == "--jobs") {
      const int jobs = parseIntFlag(arg, next());
      if (jobs < 0 || jobs > 1024) {
        std::fprintf(stderr, "--jobs must be in 0..1024 (got %d)\n", jobs);
        return 2;
      }
      core::setThreadJobs(jobs);
      oracle.restore_jobs = jobs;  // FlowDB check restores this count
    } else if (arg == "--shrink") {
      do_shrink = true;
    } else if (arg == "--max-evals") {
      shrink_opt.max_evals = parseIntFlag(arg, next());
    } else if (arg == "--out-dir") {
      out_dir = next();
    } else if (arg == "--replay") {
      replays.push_back(next());
    } else if (arg == "--expect-check") {
      expect_check = next();
    } else if (arg == "--version") {
      std::printf("drdesync-fuzz %s\n",
                  std::string(core::kToolVersion).c_str());
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      usage();
      return 2;
    }
  }
  if (runs < 1) {
    std::fputs("drdesync-fuzz: --runs must be >= 1\n", stderr);
    return 2;
  }
  if (lib_name != "builtin:hs" && lib_name != "builtin:ll") {
    std::fputs("drdesync-fuzz: --lib must be builtin:hs or builtin:ll\n",
               stderr);
    return 2;
  }

  liberty::Library library = liberty::makeStdLib90(
      lib_name == "builtin:hs" ? liberty::LibVariant::kHighSpeed
                               : liberty::LibVariant::kLowLeakage);
  liberty::Gatefile gatefile(library);

  // --- emit mode: dump one generated design, no oracle --------------------
  if (!emit_path.empty()) {
    const std::string text = fuzz::generateVerilog(gatefile, seed);
    if (emit_path == "-") {
      std::fputs(text.c_str(), stdout);
      return 0;
    }
    std::ofstream out(emit_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "drdesync-fuzz: cannot write %s\n",
                   emit_path.c_str());
      return 1;
    }
    out << text;
    return 0;
  }

  // --- corpus replay mode ------------------------------------------------
  if (!replays.empty()) {
    for (const std::string& path : replays) {
      fuzz::OracleVerdict v;
      try {
        v = fuzz::runOracle(readFile(path), gatefile, oracle);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "drdesync-fuzz: %s: %s\n", path.c_str(),
                     e.what());
        return 1;
      }
      if (expect_check.empty()) {
        if (!v.ok) {
          std::fprintf(stderr, "FAIL %s: check %s: %s\n", path.c_str(),
                       v.check.c_str(), v.detail.c_str());
          return 1;
        }
        std::printf("ok   %s (%s)\n", path.c_str(), describe(v).c_str());
      } else {
        if (v.ok || v.check != expect_check) {
          const std::string got = v.ok ? "a pass" : "'" + v.check + "'";
          std::fprintf(stderr,
                       "FAIL %s: expected check '%s' to fail, got %s\n",
                       path.c_str(), expect_check.c_str(), got.c_str());
          return 1;
        }
        std::printf("ok   %s (still fails %s: %s)\n", path.c_str(),
                    v.check.c_str(), v.detail.c_str());
      }
    }
    return 0;
  }

  // --- generation mode ---------------------------------------------------
  fuzz::GeneratorConfig gen;
  for (int r = 0; r < runs; ++r) {
    const std::uint64_t s = seed + static_cast<std::uint64_t>(r);
    const std::string text = fuzz::generateVerilog(gatefile, s, gen);
    // The ECO edit follows the design seed so every seed exercises a
    // different edit kind/site; --eco-seed pins it for reproduction.
    if (!eco_seed_fixed) oracle.eco_seed = s;
    fuzz::OracleVerdict v = fuzz::runOracle(text, gatefile, oracle);
    if (v.ok) {
      std::printf("seed %llu: ok (%s)\n",
                  static_cast<unsigned long long>(s), describe(v).c_str());
      continue;
    }
    std::printf("seed %llu: FAIL check %s: %s\n",
                static_cast<unsigned long long>(s), v.check.c_str(),
                v.detail.c_str());

    std::string repro = text;
    std::string check = v.check;
    if (do_shrink) {
      shrink_opt.oracle = oracle;
      fuzz::ShrinkResult sr = fuzz::shrink(text, gatefile, shrink_opt);
      repro = sr.verilog;
      check = sr.check;
      std::printf("seed %llu: shrunk %zu -> %zu cells (%d oracle evals)\n",
                  static_cast<unsigned long long>(s), sr.initial_cells,
                  sr.final_cells, sr.evals);
    }

    const std::string name =
        "fz_s" + std::to_string(s) + "_" + check + ".v";
    const std::string path = out_dir + "/" + name;
    std::ofstream out(path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "drdesync-fuzz: cannot write %s\n", path.c_str());
      return 1;
    }
    out << "// drdesync-fuzz reproducer: seed "
        << static_cast<unsigned long long>(s) << ", failing check \"" << check
        << "\"\n"
        << "// " << v.detail << "\n";
    if (check == "eco") {
      // The replayed oracle must apply the identical scripted edit.
      out << "// eco edit (seed " << static_cast<unsigned long long>(
                 oracle.eco_seed) << "): " << v.eco_edit << "\n";
    }
    out << "// repro: drdesync-fuzz --replay " << name << " --fault "
        << fuzz::faultKindName(oracle.fault)
        << (oracle.fe_mode == core::FeMode::kSim
                ? std::string{}
                : std::string(" --fe-mode ") +
                      core::feModeName(oracle.fe_mode))
        << (check == "eco" ? " --eco-seed " + std::to_string(oracle.eco_seed)
                           : std::string{})
        << " --expect-check " << check << "\n"
        << repro;
    std::printf("seed %llu: reproducer written to %s\n",
                static_cast<unsigned long long>(s), path.c_str());
    return 1;
  }
  std::printf("all %d seed(s) from %llu passed\n", runs,
              static_cast<unsigned long long>(seed));
  return 0;
}
