// Pipelined RISC CPU generators: the paper's two case studies.
//
// DLX (thesis §5.2): a 4-stage (IF/ID/EX/MEM) pipelined RISC with the full
// integer ISA and no data forwarding, exactly the structure of Fig 5.2.  The
// instruction ROM and data memory are built into the netlist (gate-level
// mux-tree ROM, flip-flop RAM), so the design is closed except for clk/rst —
// which makes synchronous-vs-desynchronized flow-equivalence comparison
// direct.
//
// ARM-class (thesis §5.3): the same microarchitecture generator scaled up
// (32 registers, larger memories, an array multiplier) standing in for the
// ARM966E-S; the paper reports area only for this design, which is what the
// benches reproduce.
//
// Architectural notes: branches/jumps resolve in EX and are *registered*
// before redirecting IF, so each pipeline stage's combinational cloud only
// reads flip-flop outputs — the property that lets drdesync's automatic
// grouping recover the four pipeline stages (thesis §5.2).  Branches
// therefore have three architectural delay slots; programs schedule NOPs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "liberty/gatefile.h"
#include "netlist/netlist.h"

namespace desync::designs {

struct CpuConfig {
  std::string name = "dlx";
  int xlen = 32;        ///< datapath width
  int n_regs = 32;      ///< register-file words (power of two)
  int dmem_words = 16;  ///< data memory words (power of two)
  int rom_words = 64;   ///< instruction ROM words (power of two)
  bool with_multiplier = false;  ///< add a full array multiplier (MUL op)
  std::vector<std::uint64_t> program;  ///< instruction words (see cpu_isa.h)
};

/// Returns the paper's DLX configuration with the default busy-loop program.
[[nodiscard]] CpuConfig dlxConfig();

/// Returns the ARM-class configuration (area case study).
[[nodiscard]] CpuConfig armClassConfig();

/// Builds the CPU as a flat module named config.name.
/// Ports: clk, rst_n (inputs); pc (output bus), r1 (output bus: register 1,
/// an observable architectural result).
netlist::Module& buildCpu(netlist::Design& design,
                          const liberty::Gatefile& gatefile,
                          const CpuConfig& config);

}  // namespace desync::designs
