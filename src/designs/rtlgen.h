// Structural RTL generation kit.
//
// Builds mapped gate-level logic (the post-synthesis netlists drdesync
// consumes) directly from word-level operators: adders, muxes, comparators,
// barrel shifters, ROMs, register files.  This substitutes for the
// commercial synthesis step of the paper's flow — the output is exactly the
// kind of flat, technology-mapped netlist Design Compiler would emit.
//
// All buses are LSB-first vectors of scalar nets; generated nets carry bus
// names (name[i]) so the desynchronizer's by-name bus grouping heuristic
// (thesis §3.2.2) sees the same structure a synthesis tool would produce.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "liberty/gatefile.h"
#include "netlist/netlist.h"

namespace desync::designs {

using Bus = std::vector<netlist::NetId>;  ///< LSB first

/// Gate-level builder bound to one module.
class Rtl {
 public:
  Rtl(netlist::Module& module, const liberty::Gatefile& gatefile);

  [[nodiscard]] netlist::Module& module() { return *m_; }

  // --- ports / wires ---------------------------------------------------

  /// Declares an input port bus `name[width-1:0]` (scalar when width==1).
  Bus input(const std::string& name, int width = 1);
  /// Declares output ports driven by `bus`.
  void output(const std::string& name, const Bus& bus);
  /// Fresh named wire bus.
  Bus wire(const std::string& name, int width = 1);
  /// Constant bus.
  Bus constant(std::uint64_t value, int width);
  [[nodiscard]] netlist::NetId zero();
  [[nodiscard]] netlist::NetId one();

  // --- bit utilities -----------------------------------------------------

  static netlist::NetId bit(const Bus& b, int i) {
    return b.at(static_cast<std::size_t>(i));
  }
  /// Slice [lo, lo+len).
  static Bus slice(const Bus& b, int lo, int len);
  /// Concatenation: {hi, lo} -> lo bits first.
  static Bus cat(const Bus& lo, const Bus& hi);
  /// Zero-extends or truncates to `width`.
  Bus extend(const Bus& b, int width);
  /// Sign-extends to `width`.
  Bus signExtend(const Bus& b, int width);
  /// Replicates a single net.
  static Bus fill(netlist::NetId n, int width) {
    return Bus(static_cast<std::size_t>(width), n);
  }

  // --- combinational operators ------------------------------------------

  Bus inv(const Bus& a);
  Bus andB(const Bus& a, const Bus& b);
  Bus orB(const Bus& a, const Bus& b);
  Bus xorB(const Bus& a, const Bus& b);
  netlist::NetId and2(netlist::NetId a, netlist::NetId b);
  netlist::NetId or2(netlist::NetId a, netlist::NetId b);
  netlist::NetId xor2(netlist::NetId a, netlist::NetId b);
  netlist::NetId not1(netlist::NetId a);
  netlist::NetId nand2(netlist::NetId a, netlist::NetId b);
  /// AND/OR over all bits of a bus (balanced tree).
  netlist::NetId reduceAnd(const Bus& a);
  netlist::NetId reduceOr(const Bus& a);

  /// Ripple-carry adder; returns sum, optionally exposing carry-out.
  Bus add(const Bus& a, const Bus& b, netlist::NetId carry_in = {},
          netlist::NetId* carry_out = nullptr);
  /// a - b (two's complement).
  Bus sub(const Bus& a, const Bus& b);
  /// Equality over buses.
  netlist::NetId eq(const Bus& a, const Bus& b);
  /// Equality against a constant.
  netlist::NetId eqConst(const Bus& a, std::uint64_t value);
  /// Unsigned a < b.
  netlist::NetId ltUnsigned(const Bus& a, const Bus& b);

  /// 2:1 mux per bit: sel ? b : a.
  Bus mux(netlist::NetId sel, const Bus& a, const Bus& b);
  /// N:1 mux tree; inputs.size() must be a power of two = 2^sel.size().
  Bus muxN(const Bus& sel, const std::vector<Bus>& inputs);
  /// Logical barrel shifter (left when `left`, zero fill).
  Bus shift(const Bus& a, const Bus& amount, bool left);

  /// Combinational ROM: addr-indexed constant words (mux tree).  Shorter
  /// content is zero-padded to the next power of two.
  Bus rom(const std::string& name, const Bus& addr,
          const std::vector<std::uint64_t>& content, int width);

  /// One-hot decoder: out[i] = (a == i).
  Bus decode(const Bus& a);

  // --- sequential ---------------------------------------------------------

  /// Register bank: DFFR cells (async active-low clear) named
  /// "<name>_r<i>".  Returns the Q bus.
  Bus reg(const std::string& name, const Bus& d, netlist::NetId clk,
          netlist::NetId rst_n);
  /// Register with synchronous load enable (mux feedback).
  Bus regEn(const std::string& name, const Bus& d, netlist::NetId en,
            netlist::NetId clk, netlist::NetId rst_n);
  /// Register bank driving pre-created Q nets (for forward references in
  /// cyclic structures like pipelines).
  void regInto(const std::string& name, const Bus& d, netlist::NetId clk,
               netlist::NetId rst_n, const Bus& q);
  /// Redirects every reader of `placeholder[i]` to `actual[i]` and removes
  /// the placeholder nets.  Completes forward references.
  void alias(const Bus& placeholder, const Bus& actual);

  /// Post-build drive-strength fix-up (what a synthesis tool's buffering
  /// step does): nets with more than `max_fanout` sinks get balanced BF
  /// trees.  Nets driven directly by input ports (clock/reset, treated as
  /// ideal networks before CTS) are left alone.  Returns buffers added.
  std::size_t bufferHighFanout(int max_fanout = 16);

  /// Register file: `words` x width bits of DFFR with one write port
  /// (decoded enable muxes) and combinational read via mux trees.
  struct RegFile {
    std::vector<Bus> word_q;  ///< flip-flop outputs per word
  };
  RegFile regFile(const std::string& name, int words, int width,
                  const Bus& waddr, const Bus& wdata, netlist::NetId wen,
                  netlist::NetId clk, netlist::NetId rst_n);
  /// Read port over a register file (mux tree).
  Bus regFileRead(const RegFile& rf, const Bus& raddr);

 private:
  netlist::NetId newNet(const std::string& base);
  netlist::NetId gate1(const char* type, netlist::NetId a);
  netlist::NetId gate2(const char* type, netlist::NetId a, netlist::NetId b);
  netlist::NetId gate3(const char* type, netlist::NetId a, netlist::NetId b,
                       netlist::NetId c);

  netlist::Module* m_;
  const liberty::Gatefile* gf_;
  std::uint64_t counter_ = 0;
  /// Inverter CSE: net -> existing IV output.  Synthesis tools share
  /// complemented literals; without this every decode cone would own a
  /// private inverter and the region-grouping algorithm would see the cones
  /// as disconnected.
  std::unordered_map<std::uint32_t, netlist::NetId> inv_cache_;
};

}  // namespace desync::designs
