#include "designs/cpu.h"

#include <cmath>

#include "designs/cpu_isa.h"
#include "designs/rtlgen.h"

namespace desync::designs {

using netlist::NetId;

namespace {

int log2i(int v) {
  int bits = 0;
  while ((1 << bits) < v) ++bits;
  return bits;
}

/// Default DLX program: an endless arithmetic/memory busy loop exercising
/// every pipeline stage (loads, stores, shifts, compares, a never-taken
/// branch and a back jump with its three delay slots).
std::vector<std::uint64_t> defaultProgram() {
  using namespace isa;
  return {
      ADDI(1, 0, 0),        //  0: sum = 0
      ADDI(2, 0, 1),        //  1: i = 1
      ADDI(4, 0, 0),        //  2: ptr = 0
      LUI(10, 0xFFFF),      //  3: r10 = 0xFFFF0000
      ADDI(5, 0, 0x5555),   //  4: pattern
      NOP(),                //  5
      NOP(),                //  6
      ORI(10, 10, 0xFFFF),  //  7: r10 = 0xFFFFFFFF
      ADD(1, 1, 2),         //  8: loop: sum += i
      ADDI(2, 2, 1),        //  9: i++
      XOR(7, 1, 5),         // 10: t = sum ^ pattern
      SW(7, 4, 0),          // 11: dmem[ptr] = t
      ADDI(4, 4, 1),        // 12: ptr++
      ANDI(4, 4, 7),        // 13: ptr &= 7
      LW(6, 4, 0),          // 14: u = dmem[ptr]
      ADD(1, 1, 6),         // 15: sum += u
      ADDI(11, 10, 1),      // 16: 0xFFFFFFFF + 1: full-length carry ripple,
                            //     exercising the ALU critical path each loop
      SLLI(7, 2, 2),        // 17
      SRLI(8, 5, 1),        // 18
      SLT(9, 2, 5),         // 19
      BNE(0, 0, 2),         // 20: never taken
      SUB(1, 1, 9),         // 21
      J(8),                 // 22: loop
      NOP(),                // 23: delay slot
      NOP(),                // 24: delay slot
      NOP(),                // 25: delay slot
  };
}

}  // namespace

CpuConfig dlxConfig() {
  CpuConfig cfg;
  cfg.name = "dlx";
  cfg.xlen = 32;
  cfg.n_regs = 32;
  cfg.dmem_words = 16;
  cfg.rom_words = 64;
  cfg.with_multiplier = false;
  cfg.program = defaultProgram();
  return cfg;
}

CpuConfig armClassConfig() {
  CpuConfig cfg;
  cfg.name = "armlike";
  cfg.xlen = 32;
  cfg.n_regs = 32;
  cfg.dmem_words = 64;
  cfg.rom_words = 64;
  cfg.with_multiplier = true;
  cfg.program = defaultProgram();
  return cfg;
}

netlist::Module& buildCpu(netlist::Design& design,
                          const liberty::Gatefile& gatefile,
                          const CpuConfig& cfg) {
  netlist::Module& m = design.addModule(cfg.name);
  Rtl rtl(m, gatefile);

  const int xlen = cfg.xlen;
  const int pcw = log2i(cfg.rom_words);
  const int rbits = log2i(cfg.n_regs);
  const int dbits = log2i(cfg.dmem_words);

  NetId clk = rtl.input("clk")[0];
  NetId rst_n = rtl.input("rst_n")[0];

  // ----- forward references -------------------------------------------
  Bus pc_q = rtl.wire("pc_q", pcw);
  Bus red_taken_q = rtl.wire("red_taken_q", 1);
  Bus red_target_q = rtl.wire("red_target_q", pcw);
  Bus wb_wen_ph = rtl.wire("wb_wen_ph", 1);
  Bus wb_waddr_ph = rtl.wire("wb_waddr_ph", rbits);
  Bus wb_wdata_ph = rtl.wire("wb_wdata_ph", xlen);

  // Register file lives in the MEM (writeback) region: its flip-flops are
  // driven by the MEM cloud through the write-port muxes.
  Rtl::RegFile rf = rtl.regFile("rf", cfg.n_regs, xlen, wb_waddr_ph,
                                wb_wdata_ph, wb_wen_ph[0], clk, rst_n);

  // ----- IF --------------------------------------------------------------
  Bus pc1 = rtl.add(pc_q, rtl.constant(1, pcw));
  Bus pc_next = rtl.mux(red_taken_q[0], pc1, red_target_q);
  rtl.regInto("pc", pc_next, clk, rst_n, pc_q);
  Bus instr_w = rtl.rom("irom", pc_q, cfg.program, 32);
  Bus ifid_instr = rtl.reg("ifid_instr", instr_w, clk, rst_n);
  Bus ifid_pc = rtl.reg("ifid_pc", pc_q, clk, rst_n);

  // ----- ID --------------------------------------------------------------
  Bus opcode = Rtl::slice(ifid_instr, 26, 6);
  Bus rs = Rtl::slice(ifid_instr, 21, rbits);
  Bus rt = Rtl::slice(ifid_instr, 16, rbits);
  Bus rd = Rtl::slice(ifid_instr, 11, rbits);
  Bus imm16 = Rtl::slice(ifid_instr, 0, 16);

  auto is = [&](isa::Opcode op) { return rtl.eqConst(opcode, op); };
  NetId op_add = is(isa::kAdd), op_sub = is(isa::kSub), op_and = is(isa::kAnd);
  NetId op_or = is(isa::kOr), op_xor = is(isa::kXor), op_slt = is(isa::kSlt);
  NetId op_addi = is(isa::kAddi), op_lui = is(isa::kLui);
  NetId op_slli = is(isa::kSlli), op_srli = is(isa::kSrli);
  NetId op_lw = is(isa::kLw), op_sw = is(isa::kSw);
  NetId op_beq = is(isa::kBeq), op_bne = is(isa::kBne), op_j = is(isa::kJ);
  NetId op_andi = is(isa::kAndi), op_ori = is(isa::kOri),
        op_xori = is(isa::kXori);
  NetId op_mul = cfg.with_multiplier ? is(isa::kMul) : rtl.zero();

  NetId use_imm = rtl.reduceOr({op_addi, op_lui, op_slli, op_srli, op_lw,
                                op_sw, op_andi, op_ori, op_xori});
  NetId imm_zext = rtl.reduceOr({op_andi, op_ori, op_xori});
  NetId dest_rt = use_imm;  // immediate forms write rt
  NetId wen = rtl.reduceOr({op_add, op_sub, op_and, op_or, op_xor, op_slt,
                            op_addi, op_lui, op_slli, op_srli, op_lw, op_andi,
                            op_ori, op_xori, op_mul});

  Bus a = rtl.regFileRead(rf, rs);
  Bus b = rtl.regFileRead(rf, rt);
  Bus imm_s = rtl.signExtend(imm16, xlen);
  Bus imm_z = rtl.extend(imm16, xlen);
  Bus imm = rtl.mux(imm_zext, imm_s, imm_z);
  Bus waddr = rtl.mux(dest_rt, rd, rt);

  // ID/EX pipeline registers.
  Bus ex_a = rtl.reg("idex_a", a, clk, rst_n);
  Bus ex_b = rtl.reg("idex_b", b, clk, rst_n);
  Bus ex_imm = rtl.reg("idex_imm", imm, clk, rst_n);
  Bus ex_pc = rtl.reg("idex_pc", ifid_pc, clk, rst_n);
  Bus ex_waddr = rtl.reg("idex_waddr", waddr, clk, rst_n);
  auto pipe1 = [&](const char* n, NetId s) {
    return rtl.reg(n, Bus{s}, clk, rst_n)[0];
  };
  NetId ex_wen = pipe1("idex_wen", wen);
  NetId ex_use_imm = pipe1("idex_useimm", use_imm);
  NetId ex_is_lw = pipe1("idex_islw", op_lw);
  NetId ex_is_sw = pipe1("idex_issw", op_sw);
  NetId ex_is_beq = pipe1("idex_isbeq", op_beq);
  NetId ex_is_bne = pipe1("idex_isbne", op_bne);
  NetId ex_is_j = pipe1("idex_isj", op_j);
  NetId ex_op_add = pipe1("idex_opadd", rtl.reduceOr({op_add, op_addi, op_lw,
                                                      op_sw}));
  NetId ex_op_sub = pipe1("idex_opsub", op_sub);
  NetId ex_op_and = pipe1("idex_opand", rtl.or2(op_and, op_andi));
  NetId ex_op_or = pipe1("idex_opor", rtl.or2(op_or, op_ori));
  NetId ex_op_xor = pipe1("idex_opxor", rtl.or2(op_xor, op_xori));
  NetId ex_op_slt = pipe1("idex_opslt", op_slt);
  NetId ex_op_sll = pipe1("idex_opsll", op_slli);
  NetId ex_op_srl = pipe1("idex_opsrl", op_srli);
  NetId ex_op_lui = pipe1("idex_oplui", op_lui);
  NetId ex_op_mul =
      cfg.with_multiplier ? pipe1("idex_opmul", op_mul) : rtl.zero();

  // ----- EX --------------------------------------------------------------
  Bus alu_b = rtl.mux(ex_use_imm, ex_b, ex_imm);
  Bus r_add = rtl.add(ex_a, alu_b);
  Bus r_sub = rtl.sub(ex_a, alu_b);
  Bus r_and = rtl.andB(ex_a, alu_b);
  Bus r_or = rtl.orB(ex_a, alu_b);
  Bus r_xor = rtl.xorB(ex_a, alu_b);
  Bus r_slt = rtl.extend(Bus{rtl.ltUnsigned(ex_a, alu_b)}, xlen);
  Bus shamt = Rtl::slice(ex_imm, 0, 5);
  Bus r_sll = rtl.shift(ex_a, shamt, /*left=*/true);
  Bus r_srl = rtl.shift(ex_a, shamt, /*left=*/false);
  Bus r_lui = rtl.extend(
      Rtl::cat(rtl.constant(0, 16), Rtl::slice(ex_imm, 0, 16)), xlen);

  struct AluOp {
    NetId sel;
    Bus value;
  };
  std::vector<AluOp> ops = {{ex_op_add, r_add}, {ex_op_sub, r_sub},
                            {ex_op_and, r_and}, {ex_op_or, r_or},
                            {ex_op_xor, r_xor}, {ex_op_slt, r_slt},
                            {ex_op_sll, r_sll}, {ex_op_srl, r_srl},
                            {ex_op_lui, r_lui}};
  if (cfg.with_multiplier) {
    // Array multiplier: sum of shifted partial products.
    Bus acc = rtl.constant(0, xlen);
    for (int i = 0; i < xlen; ++i) {
      Bus pp = rtl.andB(alu_b, Rtl::fill(Rtl::bit(ex_a, i), xlen));
      Bus shifted = rtl.extend(
          Rtl::cat(rtl.constant(0, i), Rtl::slice(pp, 0, xlen - i)), xlen);
      acc = rtl.add(acc, shifted);
    }
    ops.push_back({ex_op_mul, acc});
  }
  Bus alu = rtl.constant(0, xlen);
  for (const AluOp& op : ops) {
    alu = rtl.orB(alu, rtl.andB(op.value, Rtl::fill(op.sel, xlen)));
  }

  NetId cond_eq = rtl.eq(ex_a, ex_b);
  NetId taken = rtl.reduceOr({rtl.and2(ex_is_beq, cond_eq),
                              rtl.and2(ex_is_bne, rtl.not1(cond_eq)),
                              ex_is_j});
  Bus branch_target =
      rtl.add(ex_pc, Rtl::slice(ex_imm, 0, pcw), rtl.one());
  Bus target = rtl.mux(ex_is_j, branch_target, Rtl::slice(ex_imm, 0, pcw));

  rtl.regInto("red_taken", Bus{taken}, clk, rst_n, red_taken_q);
  rtl.regInto("red_target", target, clk, rst_n, red_target_q);

  Bus mem_alu = rtl.reg("exmem_alu", alu, clk, rst_n);
  Bus mem_b = rtl.reg("exmem_b", ex_b, clk, rst_n);
  Bus mem_waddr = rtl.reg("exmem_waddr", ex_waddr, clk, rst_n);
  NetId mem_wen = pipe1("exmem_wen", ex_wen);
  NetId mem_is_lw = pipe1("exmem_islw", ex_is_lw);
  NetId mem_is_sw = pipe1("exmem_issw", ex_is_sw);

  // ----- MEM / WB --------------------------------------------------------
  Bus daddr = Rtl::slice(mem_alu, 0, dbits);
  Rtl::RegFile dmem = rtl.regFile("dmem", cfg.dmem_words, xlen, daddr, mem_b,
                                  mem_is_sw, clk, rst_n);
  Bus mem_read = rtl.regFileRead(dmem, daddr);
  Bus wb_data = rtl.mux(mem_is_lw, mem_alu, mem_read);
  NetId waddr_nz = rtl.reduceOr(mem_waddr);
  NetId wb_wen = rtl.and2(mem_wen, waddr_nz);

  rtl.alias(wb_wen_ph, Bus{wb_wen});
  rtl.alias(wb_waddr_ph, mem_waddr);
  rtl.alias(wb_wdata_ph, wb_data);

  // ----- observability -----------------------------------------------------
  rtl.output("pc", pc_q);
  rtl.output("r1", rf.word_q.at(1));

  // Drive-strength fix-up, as a synthesis tool would leave the netlist.
  rtl.bufferHighFanout(12);

  return m;
}

}  // namespace desync::designs
