// Instruction encoding helpers for the generated RISC CPUs.
//
// 32-bit words: opcode[31:26] rs[25:21] rt[20:16] rd[15:11] imm[15:0].
// Register-register ops write rd; immediate/load ops write rt.  Branches
// resolve in EX with a registered redirect: THREE delay slots, which these
// helpers do not insert — program authors add NOPs.
#pragma once

#include <cstdint>

namespace desync::designs::isa {

enum Opcode : std::uint32_t {
  kNop = 0,
  kAdd = 1,   // rd = rs + rt
  kSub = 2,   // rd = rs - rt
  kAnd = 3,
  kOr = 4,
  kXor = 5,
  kSlt = 6,   // rd = (rs < rt) unsigned
  kAddi = 8,  // rt = rs + sext(imm)
  kLui = 9,   // rt = imm << 16
  kSlli = 10,  // rt = rs << imm[4:0]
  kSrli = 11,  // rt = rs >> imm[4:0]
  kLw = 12,   // rt = dmem[rs + sext(imm)]
  kSw = 13,   // dmem[rs + sext(imm)] = rt
  kBeq = 14,  // if rs == rt: pc = pc + 1 + sext(imm)
  kBne = 15,
  kJ = 16,    // pc = imm (absolute word address)
  kAndi = 17,  // rt = rs & zext(imm)
  kOri = 18,
  kXori = 19,
  kMul = 20,  // rd = rs * rt (only with_multiplier configs)
};

constexpr std::uint32_t enc(std::uint32_t op, std::uint32_t rs,
                            std::uint32_t rt, std::uint32_t rd,
                            std::uint32_t imm) {
  return (op << 26) | ((rs & 31u) << 21) | ((rt & 31u) << 16) |
         ((rd & 31u) << 11) | (imm & 0xffffu);
}

constexpr std::uint32_t NOP() { return 0; }
constexpr std::uint32_t ADD(int rd, int rs, int rt) {
  return enc(kAdd, static_cast<std::uint32_t>(rs),
             static_cast<std::uint32_t>(rt), static_cast<std::uint32_t>(rd),
             0);
}
constexpr std::uint32_t SUB(int rd, int rs, int rt) {
  return enc(kSub, static_cast<std::uint32_t>(rs),
             static_cast<std::uint32_t>(rt), static_cast<std::uint32_t>(rd),
             0);
}
constexpr std::uint32_t AND(int rd, int rs, int rt) {
  return enc(kAnd, static_cast<std::uint32_t>(rs),
             static_cast<std::uint32_t>(rt), static_cast<std::uint32_t>(rd),
             0);
}
constexpr std::uint32_t OR(int rd, int rs, int rt) {
  return enc(kOr, static_cast<std::uint32_t>(rs),
             static_cast<std::uint32_t>(rt), static_cast<std::uint32_t>(rd),
             0);
}
constexpr std::uint32_t XOR(int rd, int rs, int rt) {
  return enc(kXor, static_cast<std::uint32_t>(rs),
             static_cast<std::uint32_t>(rt), static_cast<std::uint32_t>(rd),
             0);
}
constexpr std::uint32_t SLT(int rd, int rs, int rt) {
  return enc(kSlt, static_cast<std::uint32_t>(rs),
             static_cast<std::uint32_t>(rt), static_cast<std::uint32_t>(rd),
             0);
}
constexpr std::uint32_t MUL(int rd, int rs, int rt) {
  return enc(kMul, static_cast<std::uint32_t>(rs),
             static_cast<std::uint32_t>(rt), static_cast<std::uint32_t>(rd),
             0);
}
constexpr std::uint32_t ADDI(int rt, int rs, int imm) {
  return enc(kAddi, static_cast<std::uint32_t>(rs),
             static_cast<std::uint32_t>(rt), 0,
             static_cast<std::uint32_t>(imm));
}
constexpr std::uint32_t ANDI(int rt, int rs, int imm) {
  return enc(kAndi, static_cast<std::uint32_t>(rs),
             static_cast<std::uint32_t>(rt), 0,
             static_cast<std::uint32_t>(imm));
}
constexpr std::uint32_t ORI(int rt, int rs, int imm) {
  return enc(kOri, static_cast<std::uint32_t>(rs),
             static_cast<std::uint32_t>(rt), 0,
             static_cast<std::uint32_t>(imm));
}
constexpr std::uint32_t XORI(int rt, int rs, int imm) {
  return enc(kXori, static_cast<std::uint32_t>(rs),
             static_cast<std::uint32_t>(rt), 0,
             static_cast<std::uint32_t>(imm));
}
constexpr std::uint32_t LUI(int rt, int imm) {
  return enc(kLui, 0, static_cast<std::uint32_t>(rt), 0,
             static_cast<std::uint32_t>(imm));
}
constexpr std::uint32_t SLLI(int rt, int rs, int sh) {
  return enc(kSlli, static_cast<std::uint32_t>(rs),
             static_cast<std::uint32_t>(rt), 0,
             static_cast<std::uint32_t>(sh));
}
constexpr std::uint32_t SRLI(int rt, int rs, int sh) {
  return enc(kSrli, static_cast<std::uint32_t>(rs),
             static_cast<std::uint32_t>(rt), 0,
             static_cast<std::uint32_t>(sh));
}
constexpr std::uint32_t LW(int rt, int rs, int imm) {
  return enc(kLw, static_cast<std::uint32_t>(rs),
             static_cast<std::uint32_t>(rt), 0,
             static_cast<std::uint32_t>(imm));
}
constexpr std::uint32_t SW(int rt, int rs, int imm) {
  return enc(kSw, static_cast<std::uint32_t>(rs),
             static_cast<std::uint32_t>(rt), 0,
             static_cast<std::uint32_t>(imm));
}
constexpr std::uint32_t BEQ(int rs, int rt, int imm) {
  return enc(kBeq, static_cast<std::uint32_t>(rs),
             static_cast<std::uint32_t>(rt), 0,
             static_cast<std::uint32_t>(imm));
}
constexpr std::uint32_t BNE(int rs, int rt, int imm) {
  return enc(kBne, static_cast<std::uint32_t>(rs),
             static_cast<std::uint32_t>(rt), 0,
             static_cast<std::uint32_t>(imm));
}
constexpr std::uint32_t J(int target) {
  return enc(kJ, 0, 0, 0, static_cast<std::uint32_t>(target));
}

}  // namespace desync::designs::isa
