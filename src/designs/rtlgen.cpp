#include "designs/rtlgen.h"

#include <stdexcept>

namespace desync::designs {

using netlist::NetId;
using netlist::PortDir;

Rtl::Rtl(netlist::Module& module, const liberty::Gatefile& gatefile)
    : m_(&module), gf_(&gatefile) {}

NetId Rtl::newNet(const std::string& base) {
  std::string name = base + "_n" + std::to_string(counter_++);
  return m_->addNet(name);
}

NetId Rtl::gate1(const char* type, NetId a) {
  NetId z = newNet(type);
  m_->addCell("u" + std::to_string(counter_++), type,
              {{"A", PortDir::kInput, a}, {"Z", PortDir::kOutput, z}});
  return z;
}

NetId Rtl::gate2(const char* type, NetId a, NetId b) {
  NetId z = newNet(type);
  m_->addCell("u" + std::to_string(counter_++), type,
              {{"A", PortDir::kInput, a},
               {"B", PortDir::kInput, b},
               {"Z", PortDir::kOutput, z}});
  return z;
}

NetId Rtl::gate3(const char* type, NetId a, NetId b, NetId c) {
  NetId z = newNet(type);
  m_->addCell("u" + std::to_string(counter_++), type,
              {{"A", PortDir::kInput, a},
               {"B", PortDir::kInput, b},
               {"C", PortDir::kInput, c},
               {"Z", PortDir::kOutput, z}});
  return z;
}

Bus Rtl::input(const std::string& name, int width) {
  Bus bus;
  if (width == 1) {
    NetId n = m_->addNet(name);
    m_->addPort(name, PortDir::kInput, n);
    bus.push_back(n);
    return bus;
  }
  for (int i = 0; i < width; ++i) {
    std::string bit_name = name + "[" + std::to_string(i) + "]";
    NetId n = m_->addNet(bit_name, name, i);
    m_->addPort(bit_name, PortDir::kInput, n, name, i);
    bus.push_back(n);
  }
  return bus;
}

void Rtl::output(const std::string& name, const Bus& bus) {
  if (bus.size() == 1) {
    m_->addPort(name, PortDir::kOutput, bus[0]);
    return;
  }
  for (std::size_t i = 0; i < bus.size(); ++i) {
    std::string bit_name = name + "[" + std::to_string(i) + "]";
    m_->addPort(bit_name, PortDir::kOutput, bus[i], name,
                static_cast<std::int32_t>(i));
  }
}

Bus Rtl::wire(const std::string& name, int width) {
  Bus bus;
  if (width == 1) {
    bus.push_back(m_->addNet(name + "_w" + std::to_string(counter_++)));
    return bus;
  }
  std::string base = name + "_w" + std::to_string(counter_++);
  for (int i = 0; i < width; ++i) {
    bus.push_back(
        m_->addNet(base + "[" + std::to_string(i) + "]", base, i));
  }
  return bus;
}

Bus Rtl::constant(std::uint64_t value, int width) {
  Bus bus;
  for (int i = 0; i < width; ++i) {
    bus.push_back(m_->constNet(((value >> i) & 1u) != 0));
  }
  return bus;
}

NetId Rtl::zero() { return m_->constNet(false); }
NetId Rtl::one() { return m_->constNet(true); }

Bus Rtl::slice(const Bus& b, int lo, int len) {
  Bus out;
  for (int i = 0; i < len; ++i) {
    out.push_back(b.at(static_cast<std::size_t>(lo + i)));
  }
  return out;
}

Bus Rtl::cat(const Bus& lo, const Bus& hi) {
  Bus out = lo;
  out.insert(out.end(), hi.begin(), hi.end());
  return out;
}

Bus Rtl::extend(const Bus& b, int width) {
  Bus out = b;
  while (static_cast<int>(out.size()) < width) out.push_back(zero());
  out.resize(static_cast<std::size_t>(width));
  return out;
}

Bus Rtl::signExtend(const Bus& b, int width) {
  Bus out = b;
  NetId msb = b.back();
  while (static_cast<int>(out.size()) < width) out.push_back(msb);
  out.resize(static_cast<std::size_t>(width));
  return out;
}

Bus Rtl::inv(const Bus& a) {
  Bus out;
  for (NetId n : a) out.push_back(gate1("IV", n));
  return out;
}

Bus Rtl::andB(const Bus& a, const Bus& b) {
  Bus out;
  for (std::size_t i = 0; i < a.size(); ++i) {
    out.push_back(gate2("AN2", a[i], b.at(i)));
  }
  return out;
}

Bus Rtl::orB(const Bus& a, const Bus& b) {
  Bus out;
  for (std::size_t i = 0; i < a.size(); ++i) {
    out.push_back(gate2("OR2", a[i], b.at(i)));
  }
  return out;
}

Bus Rtl::xorB(const Bus& a, const Bus& b) {
  Bus out;
  for (std::size_t i = 0; i < a.size(); ++i) {
    out.push_back(gate2("EO", a[i], b.at(i)));
  }
  return out;
}

NetId Rtl::and2(NetId a, NetId b) { return gate2("AN2", a, b); }
NetId Rtl::or2(NetId a, NetId b) { return gate2("OR2", a, b); }
NetId Rtl::xor2(NetId a, NetId b) { return gate2("EO", a, b); }
NetId Rtl::not1(NetId a) {
  auto it = inv_cache_.find(a.value);
  if (it != inv_cache_.end()) return it->second;
  NetId z = gate1("IV", a);
  inv_cache_.emplace(a.value, z);
  return z;
}
NetId Rtl::nand2(NetId a, NetId b) { return gate2("ND2", a, b); }

NetId Rtl::reduceAnd(const Bus& a) {
  if (a.empty()) return one();
  Bus level = a;
  while (level.size() > 1) {
    Bus next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(gate2("AN2", level[i], level[i + 1]));
    }
    if (level.size() % 2 == 1) next.push_back(level.back());
    level = std::move(next);
  }
  return level[0];
}

NetId Rtl::reduceOr(const Bus& a) {
  if (a.empty()) return zero();
  Bus level = a;
  while (level.size() > 1) {
    Bus next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(gate2("OR2", level[i], level[i + 1]));
    }
    if (level.size() % 2 == 1) next.push_back(level.back());
    level = std::move(next);
  }
  return level[0];
}

Bus Rtl::add(const Bus& a, const Bus& b, NetId carry_in, NetId* carry_out) {
  if (a.size() != b.size()) throw std::invalid_argument("add width mismatch");
  Bus sum;
  NetId carry = carry_in.valid() ? carry_in : zero();
  for (std::size_t i = 0; i < a.size(); ++i) {
    NetId axb = gate2("EO", a[i], b[i]);
    sum.push_back(gate2("EO", axb, carry));
    carry = gate3("MAJ3", a[i], b[i], carry);
  }
  if (carry_out != nullptr) *carry_out = carry;
  return sum;
}

Bus Rtl::sub(const Bus& a, const Bus& b) {
  return add(a, inv(b), one(), nullptr);
}

NetId Rtl::eq(const Bus& a, const Bus& b) {
  Bus eqs;
  for (std::size_t i = 0; i < a.size(); ++i) {
    eqs.push_back(gate2("EN", a[i], b.at(i)));  // XNOR
  }
  return reduceAnd(eqs);
}

NetId Rtl::eqConst(const Bus& a, std::uint64_t value) {
  Bus terms;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const bool bit_set = ((value >> i) & 1u) != 0;
    terms.push_back(bit_set ? a[i] : not1(a[i]));
  }
  return reduceAnd(terms);
}

NetId Rtl::ltUnsigned(const Bus& a, const Bus& b) {
  // a < b  <=>  carry-out of (a + ~b + 1) is 0.
  NetId carry;
  (void)add(a, inv(b), one(), &carry);
  return gate1("IV", carry);
}

Bus Rtl::mux(NetId sel, const Bus& a, const Bus& b) {
  Bus out;
  for (std::size_t i = 0; i < a.size(); ++i) {
    NetId z = newNet("mx");
    m_->addCell("u" + std::to_string(counter_++), "MUX21",
                {{"A", PortDir::kInput, a[i]},
                 {"B", PortDir::kInput, b.at(i)},
                 {"S", PortDir::kInput, sel},
                 {"Z", PortDir::kOutput, z}});
    out.push_back(z);
  }
  return out;
}

Bus Rtl::muxN(const Bus& sel, const std::vector<Bus>& inputs) {
  if (inputs.size() != (std::size_t{1} << sel.size())) {
    throw std::invalid_argument("muxN needs 2^sel inputs");
  }
  std::vector<Bus> level = inputs;
  for (std::size_t s = 0; s < sel.size(); ++s) {
    std::vector<Bus> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(mux(sel[s], level[i], level[i + 1]));
    }
    level = std::move(next);
  }
  return level[0];
}

Bus Rtl::shift(const Bus& a, const Bus& amount, bool left) {
  Bus cur = a;
  const int width = static_cast<int>(a.size());
  for (std::size_t s = 0; s < amount.size(); ++s) {
    const int k = 1 << s;
    if (k >= width) {
      // Shifting by >= width zeroes everything when the bit is set.
      cur = mux(amount[s], cur, constant(0, width));
      continue;
    }
    Bus shifted;
    if (left) {
      shifted = cat(constant(0, k), slice(cur, 0, width - k));
    } else {
      shifted = extend(slice(cur, k, width - k), width);
    }
    cur = mux(amount[s], cur, shifted);
  }
  return cur;
}

Bus Rtl::rom(const std::string& name, const Bus& addr,
             const std::vector<std::uint64_t>& content, int width) {
  (void)name;
  std::size_t entries = std::size_t{1} << addr.size();
  std::vector<Bus> words;
  words.reserve(entries);
  for (std::size_t i = 0; i < entries; ++i) {
    std::uint64_t value = i < content.size() ? content[i] : 0;
    words.push_back(constant(value, width));
  }
  return muxN(addr, words);
}

Bus Rtl::decode(const Bus& a) {
  Bus out;
  const std::size_t n = std::size_t{1} << a.size();
  for (std::size_t i = 0; i < n; ++i) out.push_back(eqConst(a, i));
  return out;
}

Bus Rtl::reg(const std::string& name, const Bus& d, NetId clk, NetId rst_n) {
  Bus q;
  // Register outputs keep their bus identity ("name_q[i]"), exactly as a
  // synthesis tool's netlist would — the desynchronizer's bus-name grouping
  // heuristic depends on it (thesis Fig 3.6).
  std::string bus = name + "_q";
  for (std::size_t i = 0; i < d.size(); ++i) {
    NetId qn = d.size() == 1
                   ? m_->addNet(bus + "_s" + std::to_string(counter_++))
                   : m_->addNet(bus + "[" + std::to_string(i) + "]", bus,
                                static_cast<std::int32_t>(i));
    m_->addCell(name + "_r" + std::to_string(i), "DFFR",
                {{"D", PortDir::kInput, d[i]},
                 {"CP", PortDir::kInput, clk},
                 {"CDN", PortDir::kInput, rst_n},
                 {"Q", PortDir::kOutput, qn}});
    q.push_back(qn);
  }
  return q;
}

Bus Rtl::regEn(const std::string& name, const Bus& d, NetId en, NetId clk,
               NetId rst_n) {
  // q <= en ? d : q (mux feedback).
  Bus q;
  // Create the flip-flop output nets first (bus-tagged) so the feedback
  // muxes can read them.
  std::string bus = name + "_q";
  for (std::size_t i = 0; i < d.size(); ++i) {
    NetId qn = d.size() == 1
                   ? m_->addNet(bus + "_s" + std::to_string(counter_++))
                   : m_->addNet(bus + "[" + std::to_string(i) + "]", bus,
                                static_cast<std::int32_t>(i));
    q.push_back(qn);
  }
  Bus dm = mux(en, q, d);
  for (std::size_t i = 0; i < d.size(); ++i) {
    m_->addCell(name + "_r" + std::to_string(i), "DFFR",
                {{"D", PortDir::kInput, dm[i]},
                 {"CP", PortDir::kInput, clk},
                 {"CDN", PortDir::kInput, rst_n},
                 {"Q", PortDir::kOutput, q[i]}});
  }
  return q;
}

void Rtl::regInto(const std::string& name, const Bus& d, NetId clk,
                  NetId rst_n, const Bus& q) {
  if (d.size() != q.size()) {
    throw std::invalid_argument("regInto width mismatch");
  }
  for (std::size_t i = 0; i < d.size(); ++i) {
    m_->addCell(name + "_r" + std::to_string(i), "DFFR",
                {{"D", PortDir::kInput, d[i]},
                 {"CP", PortDir::kInput, clk},
                 {"CDN", PortDir::kInput, rst_n},
                 {"Q", PortDir::kOutput, q[i]}});
  }
}

void Rtl::alias(const Bus& placeholder, const Bus& actual) {
  if (placeholder.size() != actual.size()) {
    throw std::invalid_argument("alias width mismatch");
  }
  for (std::size_t i = 0; i < placeholder.size(); ++i) {
    m_->mergeNetInto(placeholder[i], actual[i]);
  }
}

Rtl::RegFile Rtl::regFile(const std::string& name, int words, int width,
                          const Bus& waddr, const Bus& wdata, NetId wen,
                          NetId clk, NetId rst_n) {
  (void)width;  // implied by wdata.size(); kept for interface symmetry
  RegFile rf;
  Bus onehot = decode(waddr);
  for (int w = 0; w < words; ++w) {
    NetId we = gate2("AN2", wen, onehot.at(static_cast<std::size_t>(w)));
    rf.word_q.push_back(
        regEn(name + "_w" + std::to_string(w), wdata, we, clk, rst_n));
  }
  return rf;
}

std::size_t Rtl::bufferHighFanout(int max_fanout) {
  std::size_t added = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (netlist::NetId id : m_->netIds()) {
      const netlist::Net& n = m_->net(id);
      if (n.driver.isPort() || n.driver.kind == netlist::TermKind::kNone ||
          n.driver.isConst()) {
        continue;
      }
      if (static_cast<int>(n.sinks.size()) <= max_fanout) continue;
      // Split the sinks into chunks, each served by one buffer.
      std::vector<netlist::TermRef> sinks = n.sinks;
      std::size_t chunk = static_cast<std::size_t>(max_fanout);
      for (std::size_t start = 0; start < sinks.size(); start += chunk) {
        NetId buf_out = newNet("fbuf");
        m_->addCell("ub" + std::to_string(counter_++), "BF",
                    {{"A", PortDir::kInput, id},
                     {"Z", PortDir::kOutput, buf_out}});
        ++added;
        const std::size_t end = std::min(start + chunk, sinks.size());
        for (std::size_t i = start; i < end; ++i) {
          const netlist::TermRef& t = sinks[i];
          if (t.isCellPin()) {
            m_->connectPin(t.cell(), t.pin, buf_out);
          }
          // Output ports keep the original net (negligible load).
        }
      }
      changed = true;  // the tree may itself need another level
    }
  }
  return added;
}

Bus Rtl::regFileRead(const RegFile& rf, const Bus& raddr) {
  std::vector<Bus> words = rf.word_q;
  // Pad to the mux tree size.
  const std::size_t need = std::size_t{1} << raddr.size();
  while (words.size() < need) {
    words.push_back(constant(0, static_cast<int>(words[0].size())));
  }
  return muxN(raddr, words);
}

}  // namespace desync::designs
