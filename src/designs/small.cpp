#include "designs/small.h"

#include "designs/rtlgen.h"

namespace desync::designs {

using netlist::NetId;

netlist::Module& buildCounter(netlist::Design& design,
                              const liberty::Gatefile& gatefile, int bits,
                              const std::string& name) {
  netlist::Module& m = design.addModule(name);
  Rtl rtl(m, gatefile);
  NetId clk = rtl.input("clk")[0];
  NetId rst_n = rtl.input("rst_n")[0];
  Bus q = rtl.wire("cnt", bits);
  Bus next = rtl.add(q, rtl.constant(1, bits));
  rtl.regInto("cnt", next, clk, rst_n, q);
  rtl.output("q", q);
  return m;
}

netlist::Module& buildPipe2(netlist::Design& design,
                            const liberty::Gatefile& gatefile, int bits,
                            const std::string& name) {
  netlist::Module& m = design.addModule(name);
  Rtl rtl(m, gatefile);
  NetId clk = rtl.input("clk")[0];
  NetId rst_n = rtl.input("rst_n")[0];
  // Stage 1: counter region.
  Bus c = rtl.wire("c", bits);
  rtl.regInto("cnt", rtl.add(c, rtl.constant(1, bits)), clk, rst_n, c);
  // Stage 2: accumulator region (reads stage-1 flip-flop outputs only).
  Bus a = rtl.wire("a", bits);
  rtl.regInto("acc", rtl.add(a, c), clk, rst_n, a);
  rtl.output("acc", a);
  return m;
}

netlist::Module& buildLfsr(netlist::Design& design,
                           const liberty::Gatefile& gatefile, int bits,
                           const std::string& name) {
  netlist::Module& m = design.addModule(name);
  Rtl rtl(m, gatefile);
  NetId clk = rtl.input("clk")[0];
  NetId rst_n = rtl.input("rst_n")[0];
  Bus q = rtl.wire("s", bits);
  // Feedback: xor of the top two bits, with an all-zero escape (inject 1
  // when the register is zero, e.g. right after reset).
  NetId fb = rtl.xor2(q.back(), q.at(q.size() - 2));
  NetId zero_state = rtl.not1(rtl.reduceOr(q));
  fb = rtl.or2(fb, zero_state);
  Bus next = Rtl::cat(Bus{fb}, Rtl::slice(q, 0, bits - 1));
  rtl.regInto("s", next, clk, rst_n, q);
  rtl.output("q", q);
  return m;
}

netlist::Module& buildLongPath(netlist::Design& design,
                               const liberty::Gatefile& gatefile, int levels,
                               const std::string& name) {
  netlist::Module& m = design.addModule(name);
  Rtl rtl(m, gatefile);
  NetId clk = rtl.input("clk")[0];
  NetId rst_n = rtl.input("rst_n")[0];
  Bus t = rtl.wire("t", 1);  // toggle source
  rtl.regInto("tog", Bus{rtl.not1(t[0])}, clk, rst_n, t);
  // XOR chain: every toggle of t ripples through all stages.
  Bus p = rtl.wire("p", 1);
  NetId x = t[0];
  for (int i = 0; i < levels; ++i) x = rtl.xor2(x, p[0]);
  rtl.regInto("par", Bus{x}, clk, rst_n, p);
  rtl.output("q", p);
  return m;
}

netlist::Module& buildClockGated(netlist::Design& design,
                                 const liberty::Gatefile& gatefile, int bits,
                                 const std::string& name) {
  netlist::Module& m = design.addModule(name);
  Rtl rtl(m, gatefile);
  NetId clk = rtl.input("clk")[0];
  NetId rst_n = rtl.input("rst_n")[0];
  Bus c = rtl.wire("c", bits);
  rtl.regInto("cnt", rtl.add(c, rtl.constant(1, bits)), clk, rst_n, c);
  NetId gclk = m.addNet("gclk");
  m.addCell("cg", "CGL",
            {{"E", netlist::PortDir::kInput, c.at(2)},
             {"CP", netlist::PortDir::kInput, clk},
             {"Z", netlist::PortDir::kOutput, gclk}});
  Bus g = rtl.wire("g", bits);
  rtl.regInto("gcnt", rtl.add(g, rtl.constant(1, bits)), gclk, rst_n, g);
  rtl.output("q", g);
  return m;
}

}  // namespace desync::designs
