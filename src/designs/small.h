// Small test designs: counters, shift registers, accumulators.
//
// Used throughout the tests and the quickstart example as bite-sized
// synchronous circuits to desynchronize.
#pragma once

#include "liberty/gatefile.h"
#include "netlist/netlist.h"

namespace desync::designs {

/// n-bit binary counter with async reset.  Ports: clk, rst_n, q[n-1:0].
/// Single region (the increment cloud drives its own flip-flops).
netlist::Module& buildCounter(netlist::Design& design,
                              const liberty::Gatefile& gatefile, int bits,
                              const std::string& name = "counter");

/// Two-stage pipeline: stage 1 increments a free-running counter, stage 2
/// accumulates it.  Two regions with a one-way dependency.
/// Ports: clk, rst_n, acc[n-1:0].
netlist::Module& buildPipe2(netlist::Design& design,
                            const liberty::Gatefile& gatefile, int bits,
                            const std::string& name = "pipe2");

/// Linear feedback shift register (Fibonacci, taps for common widths).
/// Ports: clk, rst_n, q[n-1:0].  The LFSR seeds itself with 1 via a
/// "stuck at zero" escape gate.
netlist::Module& buildLfsr(netlist::Design& design,
                           const liberty::Gatefile& gatefile, int bits,
                           const std::string& name = "lfsr");

/// Worst-case-every-cycle design: a toggle bit drives an XOR chain of
/// `levels` stages whose parity is registered, so a transition traverses
/// the full critical path on every single cycle.  Used to validate matched
/// delay margins (too-short delay elements must corrupt data immediately).
/// Ports: clk, rst_n, q.
netlist::Module& buildLongPath(netlist::Design& design,
                               const liberty::Gatefile& gatefile, int levels,
                               const std::string& name = "longpath");

/// Clock-gated design: a free-running counter whose bit 2 drives an
/// integrated clock-gating cell (CGL) that clocks a second counter.
/// Exercises the Fig 3.1(d) gating substitution.  Ports: clk, rst_n,
/// q[bits-1:0].
netlist::Module& buildClockGated(netlist::Design& design,
                                 const liberty::Gatefile& gatefile, int bits,
                                 const std::string& name = "cgdesign");

}  // namespace desync::designs
