// Bound-library view of a flat module.
//
// The flow's hot passes (simulation, STA, placement, power) all need, per
// cell instance, the library cell, its pins, areas, capacitances, function
// tables and timing arcs.  Resolving those by string (`lib.findCell(...)`,
// `findPin(...)`, `Module::pinNet(cell, "A")`) inside the per-cell loops
// repeats the same hash/scan work once per cell per pass.  A BoundModule
// performs that resolution exactly once — one string lookup per *distinct*
// cell type plus one name-id pin match per cell pin — and caches the result
// in dense arrays indexed by CellId, so every downstream pass runs on
// integer indices only.
//
// The view is a snapshot: it is valid until the module's cells/nets are
// added, removed or reconnected.  Passes that mutate the netlist re-bind
// afterwards (binding is O(cells + pins) with integer work only).
#pragma once

#include <cstdint>
#include <vector>

#include "liberty/gatefile.h"
#include "netlist/netlist.h"

namespace desync::liberty {

class BindError : public LibraryError {
 public:
  using LibraryError::LibraryError;
};

/// One combinational output function of a bound type: the output pin, its
/// truth table, and its input variables resolved to library-pin indices.
struct BoundOutput {
  std::uint16_t pin = 0;               ///< lib-pin index of the output
  std::uint64_t table = 0;             ///< truth table over `inputs`
  std::vector<std::uint16_t> inputs;   ///< lib-pin index per function var
  /// Timing arc matching each input's related_pin (index-aligned with
  /// `inputs`); nullptr when no arc names that pin (callers fall back to
  /// the worst arc of the output).
  std::vector<const TimingArc*> input_arcs;
};

/// Sequential pin roles resolved to library-pin indices (-1 = absent).
struct BoundSeqPins {
  std::int16_t clock = -1;
  std::int16_t data = -1;
  std::int16_t scan_in = -1;
  std::int16_t scan_en = -1;
  std::int16_t sync = -1;
  std::int16_t clear = -1;
  std::int16_t preset = -1;
  std::int16_t q = -1;
  std::int16_t qn = -1;
};

/// Per-distinct-type digest: everything the passes need from the library,
/// resolved once.  Shared by all instances of the type.
struct BoundType {
  const LibCell* cell = nullptr;
  const SeqClass* seq = nullptr;       ///< nullptr for combinational types
  CellKind kind = CellKind::kCombinational;
  double area = 0.0;
  double leakage = 0.0;
  std::uint16_t n_pins = 0;            ///< == cell->pins.size()
  std::vector<BoundOutput> outputs;    ///< function outputs (comb types)
  std::vector<std::uint16_t> output_pins;  ///< all output-direction pins
  BoundSeqPins seq_pins;               ///< valid when seq != nullptr
};

/// Dense binding of a flat netlist module to a technology library.
class BoundModule {
 public:
  /// Binds every live cell of `module` to `gatefile`'s library.  Unknown
  /// types (e.g. unflattened submodules) are left unbound, not rejected:
  /// area accounting skips them, sim/STA construction reports them.
  BoundModule(const netlist::Module& module, const Gatefile& gatefile);

  [[nodiscard]] const netlist::Module& module() const { return *module_; }
  [[nodiscard]] const Gatefile& gatefile() const { return *gatefile_; }
  [[nodiscard]] const Library& library() const { return gatefile_->library(); }

  // --- per-cell lookups (O(1), no strings) ---------------------------

  /// Resolved type digest of a cell; nullptr when the type is not in the
  /// library.
  [[nodiscard]] const BoundType* typeOf(netlist::CellId id) const {
    const std::int32_t t = type_of_[id.index()];
    return t < 0 ? nullptr : &types_[static_cast<std::size_t>(t)];
  }
  /// Like typeOf but throws BindError naming the type when unbound.
  [[nodiscard]] const BoundType& typeOrThrow(netlist::CellId id) const;

  [[nodiscard]] const LibCell* libCell(netlist::CellId id) const {
    const BoundType* t = typeOf(id);
    return t == nullptr ? nullptr : t->cell;
  }
  [[nodiscard]] const SeqClass* seqClass(netlist::CellId id) const {
    const BoundType* t = typeOf(id);
    return t == nullptr ? nullptr : t->seq;
  }
  /// Cell area; 0 for unbound types.
  [[nodiscard]] double area(netlist::CellId id) const {
    const BoundType* t = typeOf(id);
    return t == nullptr ? 0.0 : t->area;
  }
  /// Cell leakage (nW); 0 for unbound types.
  [[nodiscard]] double leakage(netlist::CellId id) const {
    const BoundType* t = typeOf(id);
    return t == nullptr ? 0.0 : t->leakage;
  }

  // --- per-pin lookups -----------------------------------------------

  /// Net connected to library pin `lib_pin` of `cell` (an index into the
  /// bound type's LibCell::pins), resolved at bind time.  Invalid NetId
  /// when the instance leaves that pin unconnected.  Precondition: the
  /// cell is bound and lib_pin < typeOf(cell)->n_pins.
  [[nodiscard]] netlist::NetId pinNet(netlist::CellId cell,
                                      std::size_t lib_pin) const {
    return pin_net_[pin_base_[cell.index()] + lib_pin];
  }
  /// Same for the std::int16_t role indices of BoundSeqPins (-1 = absent
  /// pin -> invalid NetId).
  [[nodiscard]] netlist::NetId rolePinNet(netlist::CellId cell,
                                          std::int16_t lib_pin) const {
    return lib_pin < 0 ? netlist::NetId{}
                       : pinNet(cell, static_cast<std::size_t>(lib_pin));
  }
  /// Library pin bound to netlist pin slot `slot` of `cell`; nullptr when
  /// the slot's name does not exist on the library cell (or the cell is
  /// unbound).
  [[nodiscard]] const LibPin* libPinOfSlot(netlist::CellId cell,
                                           std::size_t slot) const;

  // --- derived module-wide data --------------------------------------

  /// Capacitive load of every net (indexed by NetId value): sum of bound
  /// sink pin capacitances plus the library wire cap per sink.  Computed
  /// once at bind time; used by the simulator and the STA delay model.
  [[nodiscard]] const std::vector<double>& netLoads() const {
    return net_load_;
  }

  /// Number of distinct bound types (== string-keyed library lookups the
  /// binding itself performed).
  [[nodiscard]] std::size_t numTypes() const { return types_.size(); }
  /// Live cells whose type was not found in the library.
  [[nodiscard]] std::size_t numUnboundCells() const { return unbound_; }

 private:
  const netlist::Module* module_;
  const Gatefile* gatefile_;

  std::vector<BoundType> types_;
  /// CellId index -> index into types_, or -1 (unbound / tombstoned).
  std::vector<std::int32_t> type_of_;
  /// CellId index -> base offset into pin_net_ / slot_pin_ for the cell's
  /// lib pins / netlist pin slots.
  std::vector<std::uint32_t> pin_base_;
  std::vector<std::uint32_t> slot_base_;
  /// Flattened per-cell [lib-pin index -> NetId] tables.
  std::vector<netlist::NetId> pin_net_;
  /// Flattened per-cell [netlist pin slot -> lib-pin index or -1] tables.
  std::vector<std::int16_t> slot_pin_;
  std::vector<double> net_load_;
  std::size_t unbound_ = 0;
};

}  // namespace desync::liberty
