// Liberty boolean function expressions.
//
// Parses the function strings found in .lib pin groups ("(A*B)'",
// "((SE*SI)+(SE'*D))", ...) into an AST that can be evaluated against pin
// values or compiled into a truth table for the simulator.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace desync::liberty {

class BoolExprError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A parsed boolean expression over named variables.
class BoolExpr {
 public:
  enum class Op : std::uint8_t { kVar, kConst, kNot, kAnd, kOr, kXor };

  /// Parses a Liberty function string.  Supported operators, highest
  /// precedence first: postfix ' and prefix ! (NOT); * and & and juxtaposition
  /// (AND); ^ (XOR); + and | (OR); constants 0/1; parentheses.
  static BoolExpr parse(std::string_view text);

  BoolExpr() = default;

  [[nodiscard]] bool empty() const { return nodes_.empty(); }

  /// Variable names in first-appearance order.
  [[nodiscard]] const std::vector<std::string>& vars() const { return vars_; }

  /// Evaluates with `values[i]` the value of vars()[i].
  [[nodiscard]] bool eval(const std::vector<bool>& values) const;

  /// Truth table over vars() (vars()[0] is bit 0 of the row index).
  /// Requires vars().size() <= 6.
  [[nodiscard]] std::uint64_t truthTable() const;

  /// Re-serializes to a normalized Liberty-style string.
  [[nodiscard]] std::string str() const;

  /// True when the expression is exactly one (possibly negated) variable;
  /// then reports the variable and whether it is negated.
  [[nodiscard]] bool isLiteral(std::string* var, bool* negated) const;

 private:
  struct Node {
    Op op = Op::kConst;
    std::uint16_t a = 0, b = 0;  // child node indices
    std::uint16_t var = 0;       // for kVar: index into vars_
    bool value = false;          // for kConst
  };

  [[nodiscard]] bool evalNode(std::uint16_t idx,
                              const std::vector<bool>& values) const;
  void strNode(std::uint16_t idx, std::string& out) const;

  std::vector<Node> nodes_;  // nodes_.back() is the root
  std::vector<std::string> vars_;

  friend class BoolExprParser;
};

}  // namespace desync::liberty
