#include "liberty/gatefile.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <sstream>

namespace desync::liberty {
namespace {

/// A boolean function represented extensionally over a fixed variable list:
/// supports cofactoring and equivalence queries used to take flip-flop
/// next_state expressions apart.
class TruthFn {
 public:
  TruthFn(const BoolExpr& expr) : vars_(expr.vars()) {  // NOLINT(runtime/explicit)
    if (vars_.size() > 16) {
      throw LibraryError("sequential function with too many inputs");
    }
    rows_.resize(std::size_t{1} << vars_.size());
    std::vector<bool> values(vars_.size());
    for (std::size_t row = 0; row < rows_.size(); ++row) {
      for (std::size_t v = 0; v < vars_.size(); ++v) {
        values[v] = ((row >> v) & 1u) != 0;
      }
      rows_[row] = expr.eval(values);
    }
  }

  [[nodiscard]] const std::vector<std::string>& vars() const { return vars_; }

  [[nodiscard]] int varIndex(std::string_view name) const {
    for (std::size_t i = 0; i < vars_.size(); ++i) {
      if (vars_[i] == name) return static_cast<int>(i);
    }
    return -1;
  }

  /// Restricts variable `v` to `value` (function keeps the same var list;
  /// the restricted variable simply becomes irrelevant).
  [[nodiscard]] TruthFn cofactor(int v, bool value) const {
    TruthFn out(*this);
    const std::size_t mask = std::size_t{1} << v;
    for (std::size_t row = 0; row < rows_.size(); ++row) {
      const std::size_t base = value ? (row | mask) : (row & ~mask);
      out.rows_[row] = rows_[base];
    }
    return out;
  }

  [[nodiscard]] bool dependsOn(int v) const {
    const std::size_t mask = std::size_t{1} << v;
    for (std::size_t row = 0; row < rows_.size(); ++row) {
      if ((row & mask) == 0 && rows_[row] != rows_[row | mask]) return true;
    }
    return false;
  }

  [[nodiscard]] bool isConst(bool value) const {
    return std::all_of(rows_.begin(), rows_.end(),
                       [value](bool r) { return r == value; });
  }

  /// True when the function equals variable `v` (non-negated).
  [[nodiscard]] bool isVar(int v) const {
    const std::size_t mask = std::size_t{1} << v;
    for (std::size_t row = 0; row < rows_.size(); ++row) {
      if (rows_[row] != ((row & mask) != 0)) return false;
    }
    return true;
  }

  /// Index of the single variable this function equals, or -1.
  [[nodiscard]] int asSingleVar() const {
    for (std::size_t v = 0; v < vars_.size(); ++v) {
      if (isVar(static_cast<int>(v))) return static_cast<int>(v);
    }
    return -1;
  }

 private:
  std::vector<std::string> vars_;
  std::vector<bool> rows_;
};

/// Parses a Liberty control expression that must be a single (possibly
/// negated) pin, e.g. clocked_on "CP", clear "CDN'".
void literalPin(const std::string& text, std::string* pin, bool* negated,
                const char* what) {
  if (text.empty()) {
    pin->clear();
    return;
  }
  BoolExpr e = BoolExpr::parse(text);
  if (!e.isLiteral(pin, negated)) {
    throw LibraryError(std::string("unsupported ") + what +
                       " expression: " + text);
  }
}

}  // namespace

Gatefile::Gatefile(const Library& lib) : lib_(&lib) {
  double best_latch_area = 0;
  lib.forEachCell([&](const LibCell& c) {
    classifyCell(c);
    if (c.kind == CellKind::kLatch) {
      // Pick the plain latch with the fewest pins (then smallest area).
      const SeqClass& sc = seq_class_.at(c.name);
      const bool plain = !sc.isScan() && sc.sync_pin.empty() &&
                         sc.async_clear_pin.empty() &&
                         sc.async_preset_pin.empty();
      if (plain && (simple_latch_.empty() || c.area < best_latch_area)) {
        simple_latch_ = c.name;
        best_latch_area = c.area;
      }
    }
  });
}

void Gatefile::classifyCell(const LibCell& cell) {
  if (cell.kind == CellKind::kCombinational) {
    const auto inputs = cell.inputPins();
    const auto outputs = cell.outputPins();
    bool buf = false, inv = false;
    if (inputs.size() == 1 && outputs.size() == 1) {
      const LibPin* z = cell.findPin(outputs[0]);
      if (z != nullptr && !z->function.empty()) {
        std::string var;
        bool negated = false;
        if (z->function.isLiteral(&var, &negated) && var == inputs[0]) {
          buf = !negated;
          inv = negated;
        }
      }
    }
    is_buffer_[cell.name] = buf;
    is_inverter_[cell.name] = inv;
    return;
  }

  if (!cell.seq) {
    throw LibraryError("sequential cell without ff/latch group: " +
                       cell.name);
  }
  const SeqInfo& seq = *cell.seq;
  SeqClass sc;

  // Clock / enable.
  const std::string& clk_expr =
      !seq.clocked_on.empty() ? seq.clocked_on : seq.enable;
  literalPin(clk_expr, &sc.clock_pin, &sc.clock_inverted, "clock/enable");

  // Asynchronous controls: Liberty semantics are "active when expression is
  // true", so "CDN'" means clear asserted while CDN is low.
  if (!seq.clear.empty()) {
    literalPin(seq.clear, &sc.async_clear_pin, &sc.async_clear_active_low,
               "clear");
  }
  if (!seq.preset.empty()) {
    literalPin(seq.preset, &sc.async_preset_pin, &sc.async_preset_active_low,
               "preset");
  }

  // Outputs: which pin carries the state variable / its complement.
  for (const LibPin& p : cell.pins) {
    if (p.dir != PinDir::kOutput || p.function.empty()) continue;
    std::string var;
    bool negated = false;
    if (p.function.isLiteral(&var, &negated)) {
      if (var == seq.state_var && !negated) sc.q_pin = p.name;
      if ((var == seq.state_var && negated) ||
          (var == seq.state_var_n && !negated)) {
        sc.qn_pin = p.name;
      }
    } else if (cell.kind == CellKind::kClockGate) {
      sc.q_pin = p.name;  // gated-clock output (function IQ*CP)
    }
  }

  // Data function decomposition.
  const std::string& data_expr =
      !seq.next_state.empty() ? seq.next_state : seq.data_in;
  if (!data_expr.empty()) {
    BoolExpr expr = BoolExpr::parse(data_expr);
    TruthFn f(expr);

    // Iteratively peel structure until a bare data literal remains.
    for (;;) {
      int d = f.asSingleVar();
      if (d >= 0) {
        sc.data_pin = f.vars()[static_cast<std::size_t>(d)];
        break;
      }

      // Scan mux: find SE with f|SE=1 == some var SI and f|SE=0
      // independent of both SE and SI.
      bool peeled = false;
      if (sc.scan_enable.empty()) {
        for (int se = 0; se < static_cast<int>(f.vars().size()); ++se) {
          const LibPin* sepin =
              cell.findPin(f.vars()[static_cast<std::size_t>(se)]);
          if (sepin != nullptr && sepin->nextstate_type == "data") continue;
          TruthFn f1 = f.cofactor(se, true);
          int si = f1.asSingleVar();
          if (si < 0 || si == se) continue;
          TruthFn f0 = f.cofactor(se, false);
          if (f0.dependsOn(si) || f0.dependsOn(se)) continue;
          // The functional path must still carry data: a constant f0 means
          // this was a sync set/reset or gating structure, not a scan mux.
          if (f0.isConst(false) || f0.isConst(true)) continue;
          sc.scan_enable = f.vars()[static_cast<std::size_t>(se)];
          sc.scan_in = f.vars()[static_cast<std::size_t>(si)];
          f = f0;
          peeled = true;
          break;
        }
      }
      if (peeled) continue;

      // Synchronous set/reset: a var that forces the function constant while
      // the opposite cofactor still carries the data function.  A pin the
      // library marks nextstate_type:data can never be the control (this
      // breaks the inherent symmetry of e.g. "(D*RN)").
      if (sc.sync_pin.empty()) {
        for (int r = 0; r < static_cast<int>(f.vars().size()) && !peeled;
             ++r) {
          if (!f.dependsOn(r)) continue;
          const LibPin* rpin = cell.findPin(f.vars()[static_cast<std::size_t>(r)]);
          if (rpin != nullptr && rpin->nextstate_type == "data") continue;
          for (bool level : {false, true}) {
            TruthFn fr = f.cofactor(r, level);
            const bool forces0 = fr.isConst(false);
            const bool forces1 = fr.isConst(true);
            if (!forces0 && !forces1) continue;
            TruthFn rest = f.cofactor(r, !level);
            if (rest.isConst(false) || rest.isConst(true)) continue;
            sc.sync_pin = f.vars()[static_cast<std::size_t>(r)];
            sc.sync_active_low = !level;
            sc.sync_is_set = forces1;
            f = rest;
            peeled = true;
            break;
          }
        }
      }
      if (peeled) continue;

      throw LibraryError("cannot classify next_state of " + cell.name + ": " +
                         data_expr);
    }
  }

  seq_class_.emplace(cell.name, std::move(sc));
}

bool Gatefile::knownType(std::string_view type) const {
  return lib_->findCell(type) != nullptr;
}

std::optional<netlist::PortDir> Gatefile::pinDir(std::string_view type,
                                                 std::string_view pin) const {
  const LibCell* c = lib_->findCell(type);
  if (c == nullptr) return std::nullopt;
  const LibPin* p = c->findPin(pin);
  if (p == nullptr) return std::nullopt;
  return p->dir == PinDir::kInput ? netlist::PortDir::kInput
                                  : netlist::PortDir::kOutput;
}

std::vector<std::string> Gatefile::pinOrder(std::string_view type) const {
  const LibCell* c = lib_->findCell(type);
  if (c == nullptr) return {};
  std::vector<std::string> out;
  out.reserve(c->pins.size());
  for (const LibPin& p : c->pins) out.push_back(p.name);
  return out;
}

CellKind Gatefile::kind(std::string_view type) const {
  return lib_->cell(type).kind;
}

bool Gatefile::isFlipFlop(std::string_view type) const {
  const LibCell* c = lib_->findCell(type);
  return c != nullptr && c->kind == CellKind::kFlipFlop;
}

bool Gatefile::isLatch(std::string_view type) const {
  const LibCell* c = lib_->findCell(type);
  return c != nullptr && c->kind == CellKind::kLatch;
}

bool Gatefile::isSequential(std::string_view type) const {
  const LibCell* c = lib_->findCell(type);
  return c != nullptr && c->kind != CellKind::kCombinational;
}

bool Gatefile::isCombinational(std::string_view type) const {
  const LibCell* c = lib_->findCell(type);
  return c != nullptr && c->kind == CellKind::kCombinational;
}

bool Gatefile::isBuffer(std::string_view type) const {
  auto it = is_buffer_.find(type);
  return it != is_buffer_.end() && it->second;
}

bool Gatefile::isInverter(std::string_view type) const {
  auto it = is_inverter_.find(type);
  return it != is_inverter_.end() && it->second;
}

const SeqClass* Gatefile::seqClass(std::string_view type) const {
  auto it = seq_class_.find(type);
  return it == seq_class_.end() ? nullptr : &it->second;
}

std::string Gatefile::toText() const {
  std::ostringstream out;
  out << "# gatefile v1 library=" << lib_->name << "\n";
  lib_->forEachCell([&](const LibCell& c) {
    const char* kind = c.kind == CellKind::kCombinational ? "comb"
                       : c.kind == CellKind::kFlipFlop    ? "ff"
                       : c.kind == CellKind::kLatch       ? "latch"
                                                          : "clockgate";
    out << "cell " << c.name << " " << kind << " area=" << c.area << "\n";
    for (const LibPin& p : c.pins) {
      out << "  pin " << p.name << " "
          << (p.dir == PinDir::kInput ? "input" : "output");
      if (p.is_clock) out << " clock";
      if (!p.function_str.empty()) out << " func=" << p.function_str;
      out << "\n";
    }
    if (const SeqClass* sc = seqClass(c.name)) {
      out << "  class clock=" << sc->clock_pin
          << (sc->clock_inverted ? "(inv)" : "");
      if (!sc->data_pin.empty()) out << " data=" << sc->data_pin;
      if (sc->isScan()) {
        out << " scan_in=" << sc->scan_in << " scan_en=" << sc->scan_enable;
      }
      if (!sc->sync_pin.empty()) {
        out << (sc->sync_is_set ? " sync_set=" : " sync_reset=")
            << sc->sync_pin << (sc->sync_active_low ? "(low)" : "(high)");
      }
      if (!sc->async_clear_pin.empty()) {
        out << " clear=" << sc->async_clear_pin
            << (sc->async_clear_active_low ? "(low)" : "(high)");
      }
      if (!sc->async_preset_pin.empty()) {
        out << " preset=" << sc->async_preset_pin
            << (sc->async_preset_active_low ? "(low)" : "(high)");
      }
      if (!sc->q_pin.empty()) out << " q=" << sc->q_pin;
      if (!sc->qn_pin.empty()) out << " qn=" << sc->qn_pin;
      out << "\n";
    }
  });
  return out.str();
}

Gatefile::Text Gatefile::parseText(const std::string& text) {
  Text out;
  std::istringstream in(text);
  std::string line;
  TextEntry* current = nullptr;

  auto tokens = [](const std::string& s) {
    std::vector<std::string> toks;
    std::istringstream ts(s);
    std::string t;
    while (ts >> t) toks.push_back(t);
    return toks;
  };
  // Splits "key=value(mod)" into key, value, modifier.
  auto kv = [](const std::string& s, std::string* key, std::string* value,
               std::string* mod) {
    std::size_t eq = s.find('=');
    if (eq == std::string::npos) return false;
    *key = s.substr(0, eq);
    std::string rest = s.substr(eq + 1);
    std::size_t par = rest.find('(');
    if (par != std::string::npos && rest.back() == ')') {
      *value = rest.substr(0, par);
      *mod = rest.substr(par + 1, rest.size() - par - 2);
    } else {
      *value = rest;
      mod->clear();
    }
    return true;
  };

  int line_no = 0;
  auto fail = [&line_no](const std::string& msg) -> LibraryError {
    return LibraryError("gatefile:" + std::to_string(line_no) + ": " + msg);
  };
  // Strict full-token number: "12x" or "" is a parse error with line
  // context, not an accepted prefix / uncaught std::stod exception.
  auto number = [&](const std::string& v) {
    const char* begin = v.c_str();
    char* end = nullptr;
    errno = 0;
    const double d = std::strtod(begin, &end);
    if (end == begin || *end != '\0' || errno == ERANGE) {
      throw fail("bad number: '" + v + "'");
    }
    return d;
  };

  while (std::getline(in, line)) {
    ++line_no;
    std::vector<std::string> toks = tokens(line);
    if (toks.empty()) continue;
    if (toks[0] == "#") {
      for (const std::string& t : toks) {
        std::string k, v, m;
        if (kv(t, &k, &v, &m) && k == "library") out.library = v;
      }
      continue;
    }
    if (toks[0] == "cell") {
      if (toks.size() < 3) throw fail("bad cell line");
      TextEntry entry;
      entry.kind = toks[2];
      for (std::size_t i = 3; i < toks.size(); ++i) {
        std::string k, v, m;
        if (kv(toks[i], &k, &v, &m) && k == "area") entry.area = number(v);
      }
      current = &out.cells.emplace(toks[1], std::move(entry)).first->second;
      continue;
    }
    if (current == nullptr) throw fail("line outside cell");
    if (toks[0] == "pin") {
      if (toks.size() < 3) throw fail("bad pin line");
      current->pins.emplace_back(toks[1], toks[2] == "input");
      continue;
    }
    if (toks[0] == "class") {
      SeqClass sc;
      for (std::size_t i = 1; i < toks.size(); ++i) {
        std::string k, v, m;
        if (!kv(toks[i], &k, &v, &m)) continue;
        const bool low = m == "low";
        if (k == "clock") {
          sc.clock_pin = v;
          sc.clock_inverted = m == "inv";
        } else if (k == "data") {
          sc.data_pin = v;
        } else if (k == "scan_in") {
          sc.scan_in = v;
        } else if (k == "scan_en") {
          sc.scan_enable = v;
        } else if (k == "sync_reset" || k == "sync_set") {
          sc.sync_pin = v;
          sc.sync_active_low = low;
          sc.sync_is_set = k == "sync_set";
        } else if (k == "clear") {
          sc.async_clear_pin = v;
          sc.async_clear_active_low = low;
        } else if (k == "preset") {
          sc.async_preset_pin = v;
          sc.async_preset_active_low = low;
        } else if (k == "q") {
          sc.q_pin = v;
        } else if (k == "qn") {
          sc.qn_pin = v;
        }
      }
      current->seq = std::move(sc);
      continue;
    }
    throw fail("unknown line: " + line);
  }
  return out;
}

}  // namespace desync::liberty
