#include "liberty/bool_expr.h"

#include <cctype>

namespace desync::liberty {

/// Recursive-descent parser for Liberty boolean functions.
class BoolExprParser {
 public:
  explicit BoolExprParser(std::string_view text) : text_(text) {}

  BoolExpr run() {
    std::uint16_t root = parseOr();
    skipSpace();
    if (pos_ != text_.size()) {
      throw BoolExprError("trailing characters in function: " +
                          std::string(text_));
    }
    // Ensure root is last (eval/str walk from back).
    if (root != expr_.nodes_.size() - 1) {
      expr_.nodes_.push_back(expr_.nodes_[root]);
    }
    return std::move(expr_);
  }

 private:
  void skipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() {
    skipSpace();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  std::uint16_t push(BoolExpr::Node n) {
    expr_.nodes_.push_back(n);
    return static_cast<std::uint16_t>(expr_.nodes_.size() - 1);
  }

  std::uint16_t parseOr() {
    std::uint16_t lhs = parseXor();
    for (;;) {
      char c = peek();
      if (c != '+' && c != '|') return lhs;
      ++pos_;
      if (peek() == '|') ++pos_;  // tolerate '||'
      std::uint16_t rhs = parseXor();
      lhs = push({BoolExpr::Op::kOr, lhs, rhs, 0, false});
    }
  }

  std::uint16_t parseXor() {
    std::uint16_t lhs = parseAnd();
    for (;;) {
      if (peek() != '^') return lhs;
      ++pos_;
      std::uint16_t rhs = parseAnd();
      lhs = push({BoolExpr::Op::kXor, lhs, rhs, 0, false});
    }
  }

  /// AND binds by '*', '&' or juxtaposition ("A B").
  std::uint16_t parseAnd() {
    std::uint16_t lhs = parseUnary();
    for (;;) {
      char c = peek();
      if (c == '*' || c == '&') {
        ++pos_;
        if (peek() == '&') ++pos_;  // tolerate '&&'
      } else if (c == '(' || c == '!' ||
                 std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                 c == '_') {
        // juxtaposition
      } else {
        return lhs;
      }
      std::uint16_t rhs = parseUnary();
      lhs = push({BoolExpr::Op::kAnd, lhs, rhs, 0, false});
    }
  }

  std::uint16_t parseUnary() {
    if (peek() == '!') {
      ++pos_;
      std::uint16_t operand = parseUnary();
      return push({BoolExpr::Op::kNot, operand, 0, 0, false});
    }
    std::uint16_t node = parsePrimary();
    while (peek() == '\'') {
      ++pos_;
      node = push({BoolExpr::Op::kNot, node, 0, 0, false});
    }
    return node;
  }

  std::uint16_t parsePrimary() {
    char c = peek();
    if (c == '(') {
      ++pos_;
      std::uint16_t inner = parseOr();
      if (peek() != ')') throw BoolExprError("expected ')'");
      ++pos_;
      while (peek() == '\'') {
        ++pos_;
        inner = push({BoolExpr::Op::kNot, inner, 0, 0, false});
      }
      return inner;
    }
    if (c == '0' || c == '1') {
      ++pos_;
      return push({BoolExpr::Op::kConst, 0, 0, 0, c == '1'});
    }
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      std::size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) != 0 ||
              text_[pos_] == '_' || text_[pos_] == '[' ||
              text_[pos_] == ']')) {
        ++pos_;
      }
      std::string name(text_.substr(start, pos_ - start));
      std::uint16_t var_idx = 0;
      for (; var_idx < expr_.vars_.size(); ++var_idx) {
        if (expr_.vars_[var_idx] == name) break;
      }
      if (var_idx == expr_.vars_.size()) expr_.vars_.push_back(name);
      return push({BoolExpr::Op::kVar, 0, 0, var_idx, false});
    }
    throw BoolExprError("unexpected character in function: " +
                        std::string(text_));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  BoolExpr expr_;
};

BoolExpr BoolExpr::parse(std::string_view text) {
  return BoolExprParser(text).run();
}

bool BoolExpr::eval(const std::vector<bool>& values) const {
  if (nodes_.empty()) throw BoolExprError("eval of empty expression");
  return evalNode(static_cast<std::uint16_t>(nodes_.size() - 1), values);
}

bool BoolExpr::evalNode(std::uint16_t idx,
                        const std::vector<bool>& values) const {
  const Node& n = nodes_[idx];
  switch (n.op) {
    case Op::kVar:
      return values.at(n.var);
    case Op::kConst:
      return n.value;
    case Op::kNot:
      return !evalNode(n.a, values);
    case Op::kAnd:
      return evalNode(n.a, values) && evalNode(n.b, values);
    case Op::kOr:
      return evalNode(n.a, values) || evalNode(n.b, values);
    case Op::kXor:
      return evalNode(n.a, values) != evalNode(n.b, values);
  }
  return false;
}

std::uint64_t BoolExpr::truthTable() const {
  if (vars_.size() > 6) {
    throw BoolExprError("truth table limited to 6 variables");
  }
  std::uint64_t table = 0;
  const std::size_t rows = std::size_t{1} << vars_.size();
  std::vector<bool> values(vars_.size());
  for (std::size_t row = 0; row < rows; ++row) {
    for (std::size_t v = 0; v < vars_.size(); ++v) {
      values[v] = ((row >> v) & 1u) != 0;
    }
    if (eval(values)) table |= std::uint64_t{1} << row;
  }
  return table;
}

std::string BoolExpr::str() const {
  if (nodes_.empty()) return "";
  std::string out;
  strNode(static_cast<std::uint16_t>(nodes_.size() - 1), out);
  return out;
}

void BoolExpr::strNode(std::uint16_t idx, std::string& out) const {
  const Node& n = nodes_[idx];
  switch (n.op) {
    case Op::kVar:
      out += vars_[n.var];
      break;
    case Op::kConst:
      out += n.value ? '1' : '0';
      break;
    case Op::kNot:
      out += '!';
      out += '(';
      strNode(n.a, out);
      out += ')';
      break;
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor: {
      out += '(';
      strNode(n.a, out);
      out += n.op == Op::kAnd ? '*' : n.op == Op::kOr ? '+' : '^';
      strNode(n.b, out);
      out += ')';
      break;
    }
  }
}

bool BoolExpr::isLiteral(std::string* var, bool* negated) const {
  if (nodes_.empty()) return false;
  std::uint16_t idx = static_cast<std::uint16_t>(nodes_.size() - 1);
  bool neg = false;
  while (nodes_[idx].op == Op::kNot) {
    neg = !neg;
    idx = nodes_[idx].a;
  }
  if (nodes_[idx].op != Op::kVar) return false;
  if (var != nullptr) *var = vars_[nodes_[idx].var];
  if (negated != nullptr) *negated = neg;
  return true;
}

}  // namespace desync::liberty
