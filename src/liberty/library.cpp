#include "liberty/library.h"

#include <atomic>

namespace desync::liberty {

namespace detail {
namespace {
std::atomic<std::uint64_t> pin_lookups{0};
}  // namespace
void bumpPinLookup() {
  pin_lookups.fetch_add(1, std::memory_order_relaxed);
}
std::uint64_t pinLookupCount() {
  return pin_lookups.load(std::memory_order_relaxed);
}
}  // namespace detail

void Library::bumpLookup() const {
  std::atomic_ref<std::uint64_t>(lookups_).fetch_add(
      1, std::memory_order_relaxed);
}

std::uint64_t Library::lookupCount() const {
  return std::atomic_ref<std::uint64_t>(lookups_).load(
      std::memory_order_relaxed);
}

LibCell& Library::addCell(LibCell cell) {
  auto [it, inserted] = cells_.emplace(cell.name, std::move(cell));
  if (!inserted) {
    throw LibraryError("duplicate cell: " + it->first);
  }
  order_.push_back(it->first);
  return it->second;
}

const LibCell* Library::findCell(std::string_view name) const {
  bumpLookup();
  auto it = cells_.find(name);
  return it == cells_.end() ? nullptr : &it->second;
}

LibCell* Library::findCell(std::string_view name) {
  bumpLookup();
  auto it = cells_.find(name);
  return it == cells_.end() ? nullptr : &it->second;
}

const LibCell& Library::cell(std::string_view name) const {
  const LibCell* c = findCell(name);
  if (c == nullptr) {
    throw LibraryError("unknown cell: " + std::string(name));
  }
  return *c;
}

}  // namespace desync::liberty
