#include "liberty/library.h"

namespace desync::liberty {

namespace detail {
namespace {
std::uint64_t pin_lookups = 0;
}  // namespace
void bumpPinLookup() { ++pin_lookups; }
std::uint64_t pinLookupCount() { return pin_lookups; }
}  // namespace detail

LibCell& Library::addCell(LibCell cell) {
  auto [it, inserted] = cells_.emplace(cell.name, std::move(cell));
  if (!inserted) {
    throw LibraryError("duplicate cell: " + it->first);
  }
  order_.push_back(it->first);
  return it->second;
}

const LibCell* Library::findCell(std::string_view name) const {
  ++lookups_;
  auto it = cells_.find(name);
  return it == cells_.end() ? nullptr : &it->second;
}

LibCell* Library::findCell(std::string_view name) {
  ++lookups_;
  auto it = cells_.find(name);
  return it == cells_.end() ? nullptr : &it->second;
}

const LibCell& Library::cell(std::string_view name) const {
  const LibCell* c = findCell(name);
  if (c == nullptr) {
    throw LibraryError("unknown cell: " + std::string(name));
  }
  return *c;
}

}  // namespace desync::liberty
