#include "liberty/library.h"

#include <atomic>
#include <bit>

namespace desync::liberty {

namespace {

/// Minimal FNV-1a accumulator for contentHash (kept local: liberty must
/// not depend on the flowdb library that consumes the fingerprint).
struct ContentHasher {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  void bytes(std::string_view s) {
    for (char c : s) {
      h ^= static_cast<std::uint8_t>(c);
      h *= 0x100000001b3ULL;
    }
  }
  /// Length-prefixed, so adjacent strings cannot alias.
  void str(std::string_view s) {
    u64(s.size());
    bytes(s);
  }
  void u64(std::uint64_t v) {
    char b[8];
    for (int i = 0; i < 8; ++i) b[i] = static_cast<char>(v >> (8 * i));
    bytes(std::string_view(b, 8));
  }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
};

}  // namespace

namespace detail {
namespace {
std::atomic<std::uint64_t> pin_lookups{0};
}  // namespace
void bumpPinLookup() {
  pin_lookups.fetch_add(1, std::memory_order_relaxed);
}
std::uint64_t pinLookupCount() {
  return pin_lookups.load(std::memory_order_relaxed);
}
}  // namespace detail

void Library::bumpLookup() const {
  std::atomic_ref<std::uint64_t>(lookups_).fetch_add(
      1, std::memory_order_relaxed);
}

std::uint64_t Library::lookupCount() const {
  return std::atomic_ref<std::uint64_t>(lookups_).load(
      std::memory_order_relaxed);
}

LibCell& Library::addCell(LibCell cell) {
  auto [it, inserted] = cells_.emplace(cell.name, std::move(cell));
  if (!inserted) {
    throw LibraryError("duplicate cell: " + it->first);
  }
  order_.push_back(it->first);
  return it->second;
}

const LibCell* Library::findCell(std::string_view name) const {
  bumpLookup();
  auto it = cells_.find(name);
  return it == cells_.end() ? nullptr : &it->second;
}

LibCell* Library::findCell(std::string_view name) {
  bumpLookup();
  auto it = cells_.find(name);
  return it == cells_.end() ? nullptr : &it->second;
}

std::uint64_t Library::contentHash() const {
  ContentHasher hasher;
  hasher.str(name);
  hasher.f64(default_wire_cap);
  hasher.u64(order_.size());
  forEachCell([&](const LibCell& c) {
    hasher.str(c.name);
    hasher.u64(static_cast<std::uint64_t>(c.kind));
    hasher.f64(c.area);
    hasher.f64(c.leakage);
    if (c.seq.has_value()) {
      hasher.u64(1);
      hasher.str(c.seq->state_var);
      hasher.str(c.seq->state_var_n);
      hasher.str(c.seq->clocked_on);
      hasher.str(c.seq->next_state);
      hasher.str(c.seq->enable);
      hasher.str(c.seq->data_in);
      hasher.str(c.seq->clear);
      hasher.str(c.seq->preset);
    } else {
      hasher.u64(0);
    }
    hasher.u64(c.pins.size());
    for (const LibPin& p : c.pins) {
      hasher.str(p.name);
      hasher.u64(static_cast<std::uint64_t>(p.dir));
      hasher.f64(p.capacitance);
      hasher.f64(p.max_capacitance);
      hasher.u64(p.is_clock ? 1 : 0);
      hasher.str(p.nextstate_type);
      hasher.str(p.function_str);
      hasher.u64(p.arcs.size());
      for (const TimingArc& a : p.arcs) {
        hasher.str(a.related_pin);
        hasher.u64(static_cast<std::uint64_t>(a.type));
        hasher.f64(a.intrinsic_rise);
        hasher.f64(a.intrinsic_fall);
        hasher.f64(a.rise_resistance);
        hasher.f64(a.fall_resistance);
      }
    }
  });
  return hasher.h;
}

const LibCell& Library::cell(std::string_view name) const {
  const LibCell* c = findCell(name);
  if (c == nullptr) {
    throw LibraryError("unknown cell: " + std::string(name));
  }
  return *c;
}

}  // namespace desync::liberty
