// Technology library data model.
//
// Holds the subset of Liberty information the desynchronization flow needs
// (thesis §3.1.1): cell name, kind (combinational / flip-flop / latch /
// clock-gate), area, leakage, pins with direction, capacitance and function,
// sequential behaviour (clock, next-state, asynchronous set/clear) and a
// linear (intrinsic + resistance * load) timing model per arc.
#pragma once

#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "liberty/bool_expr.h"

namespace desync::liberty {

class LibraryError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {
/// Counts string-keyed pin resolutions (LibCell::findPin).  Together with
/// Library::lookupCount() this lets tests assert that the hot paths bound
/// through liberty::BoundModule perform no per-cell string lookups.
void bumpPinLookup();
[[nodiscard]] std::uint64_t pinLookupCount();
}  // namespace detail

enum class CellKind : std::uint8_t {
  kCombinational,
  kFlipFlop,
  kLatch,
  kClockGate,  ///< integrated clock-gating cell (latch + AND)
};

enum class PinDir : std::uint8_t { kInput, kOutput };

enum class ArcType : std::uint8_t {
  kCombinational,  ///< input -> output propagation
  kClockToQ,       ///< active clock/enable edge -> output
  kSetup,          ///< constraint on data vs clock
  kHold,           ///< constraint on data vs clock
};

/// One timing arc.  Delays are in library time units (ns); resistances in
/// ns per library cap unit (pF), i.e. delay = intrinsic + resistance * load.
struct TimingArc {
  std::string related_pin;
  ArcType type = ArcType::kCombinational;
  double intrinsic_rise = 0.0;
  double intrinsic_fall = 0.0;
  double rise_resistance = 0.0;
  double fall_resistance = 0.0;
};

struct LibPin {
  std::string name;
  PinDir dir = PinDir::kInput;
  double capacitance = 0.0;       ///< input pin load (pF)
  double max_capacitance = 0.0;   ///< output drive limit (pF), 0 = unlimited
  bool is_clock = false;
  /// Liberty nextstate_type attribute ("data", "scan_in", "scan_enable",
  /// ...). Disambiguates structurally symmetric next_state decompositions
  /// (e.g. "(D*RN)" cannot distinguish data from sync-reset by function
  /// alone).  Empty when the library does not annotate.
  std::string nextstate_type;
  std::string function_str;       ///< output function, may reference state vars
  BoolExpr function;              ///< parsed form of function_str
  std::vector<TimingArc> arcs;    ///< delay arcs (outputs) / constraints (inputs)
};

/// Sequential behaviour of a flip-flop or latch (Liberty ff()/latch() group).
struct SeqInfo {
  std::string state_var;       ///< e.g. "IQ"
  std::string state_var_n;     ///< e.g. "IQN" (may be empty)
  std::string clocked_on;      ///< ff: clock expression (e.g. "CP")
  std::string next_state;      ///< ff: next-state expression
  std::string enable;          ///< latch: enable expression
  std::string data_in;         ///< latch: data expression
  std::string clear;           ///< async clear expression (active when true)
  std::string preset;          ///< async preset expression (active when true)
};

struct LibCell {
  std::string name;
  CellKind kind = CellKind::kCombinational;
  double area = 0.0;            ///< um^2
  double leakage = 0.0;         ///< nW
  std::vector<LibPin> pins;
  std::optional<SeqInfo> seq;

  [[nodiscard]] const LibPin* findPin(std::string_view pin) const {
    detail::bumpPinLookup();
    for (const LibPin& p : pins) {
      if (p.name == pin) return &p;
    }
    return nullptr;
  }
  [[nodiscard]] LibPin* findPin(std::string_view pin) {
    detail::bumpPinLookup();
    for (LibPin& p : pins) {
      if (p.name == pin) return &p;
    }
    return nullptr;
  }
  /// Index of the pin named `pin` within pins, or npos.  Unlike findPin
  /// this is not counted as a string-keyed hot-path lookup: it exists for
  /// one-time binding (liberty::BoundModule).
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  [[nodiscard]] std::size_t pinIndex(std::string_view pin) const {
    for (std::size_t i = 0; i < pins.size(); ++i) {
      if (pins[i].name == pin) return i;
    }
    return npos;
  }
  /// All input pin names, in declaration order.
  [[nodiscard]] std::vector<std::string> inputPins() const {
    std::vector<std::string> out;
    for (const LibPin& p : pins) {
      if (p.dir == PinDir::kInput) out.push_back(p.name);
    }
    return out;
  }
  [[nodiscard]] std::vector<std::string> outputPins() const {
    std::vector<std::string> out;
    for (const LibPin& p : pins) {
      if (p.dir == PinDir::kOutput) out.push_back(p.name);
    }
    return out;
  }
};

/// A technology library: named cells plus global units/defaults.
class Library {
 public:
  std::string name;
  double default_wire_cap = 0.002;  ///< pF per fanout (simple wire model)

  /// Adds a cell; throws on duplicate name.
  LibCell& addCell(LibCell cell);

  [[nodiscard]] const LibCell* findCell(std::string_view name) const;
  [[nodiscard]] LibCell* findCell(std::string_view name);
  /// Like findCell but throws when absent.
  [[nodiscard]] const LibCell& cell(std::string_view name) const;

  /// Number of string-keyed cell resolutions performed so far (every
  /// findCell/cell call).  Passes that consume a BoundModule must not
  /// advance this per cell; see tests/bound_test.cpp.  Counted with a
  /// relaxed atomic_ref: parallel sections (core/parallel.h) may resolve
  /// cells from several workers at once.
  [[nodiscard]] std::uint64_t lookupCount() const;

  /// Stable 64-bit fingerprint of the library content: name, units, every
  /// cell's classification, pins, functions and timing arcs, in insertion
  /// order.  FlowDB embeds it in design snapshots and cache keys so state
  /// produced against a different (or edited) library is never reused.
  [[nodiscard]] std::uint64_t contentHash() const;

  [[nodiscard]] std::size_t size() const { return order_.size(); }
  /// Cells in insertion order.
  [[nodiscard]] const std::vector<std::string>& cellNames() const {
    return order_;
  }

  template <typename F>
  void forEachCell(F&& f) const {
    for (const std::string& n : order_) f(cells_.at(n));
  }

 private:
  void bumpLookup() const;

  std::map<std::string, LibCell, std::less<>> cells_;
  std::vector<std::string> order_;
  // Plain integer (Library must stay movable); all access goes through
  // std::atomic_ref in library.cpp.
  mutable std::uint64_t lookups_ = 0;
};

}  // namespace desync::liberty
