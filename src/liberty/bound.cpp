#include "liberty/bound.h"

#include <string>
#include <unordered_map>

namespace desync::liberty {

namespace {

/// Pin-name ids of one bound type, used only during binding.
struct TypeNameIds {
  std::vector<netlist::NameId> pins;  // aligned with LibCell::pins
};

}  // namespace

BoundModule::BoundModule(const netlist::Module& module,
                         const Gatefile& gatefile)
    : module_(&module), gatefile_(&gatefile) {
  const Library& lib = gatefile.library();
  const netlist::NameTable& names = module.design().names();
  const std::uint32_t n_cells = module.cellCapacity();

  type_of_.assign(n_cells, -1);
  pin_base_.assign(n_cells, 0);
  slot_base_.assign(n_cells, 0);

  // One string-keyed resolution per *distinct* type name.
  std::unordered_map<netlist::NameId, std::int32_t> type_index;
  std::vector<TypeNameIds> type_names;

  auto bindType = [&](netlist::NameId type_name) -> std::int32_t {
    auto [it, inserted] = type_index.try_emplace(type_name, -1);
    if (!inserted) return it->second;
    const std::string type_str(names.str(type_name));
    const LibCell* lc = lib.findCell(type_str);
    if (lc == nullptr) return -1;  // unbound (hierarchy / unknown type)

    BoundType bt;
    bt.cell = lc;
    bt.kind = lc->kind;
    bt.area = lc->area;
    bt.leakage = lc->leakage;
    bt.n_pins = static_cast<std::uint16_t>(lc->pins.size());
    bt.seq = gatefile.seqClass(type_str);

    TypeNameIds ids;
    ids.pins.reserve(lc->pins.size());
    for (const LibPin& p : lc->pins) {
      // find() (not intern): a pin name no instance ever connects may be
      // absent from the table; such pins simply bind to no net.
      ids.pins.push_back(names.find(p.name));
    }

    for (std::size_t j = 0; j < lc->pins.size(); ++j) {
      const LibPin& p = lc->pins[j];
      if (p.dir != PinDir::kOutput) continue;
      bt.output_pins.push_back(static_cast<std::uint16_t>(j));
      if (lc->kind != CellKind::kCombinational || p.function.empty()) {
        continue;
      }
      const auto& vars = p.function.vars();
      if (vars.size() > 6) {
        throw BindError("gate with >6 inputs: " + type_str);
      }
      BoundOutput out;
      out.pin = static_cast<std::uint16_t>(j);
      out.table = p.function.truthTable();
      out.inputs.reserve(vars.size());
      out.input_arcs.reserve(vars.size());
      for (const std::string& v : vars) {
        const std::size_t in_idx = lc->pinIndex(v);
        if (in_idx == LibCell::npos) {
          throw BindError("function of " + type_str + "/" + p.name +
                          " references non-pin '" + v + "'");
        }
        out.inputs.push_back(static_cast<std::uint16_t>(in_idx));
        const TimingArc* matched = nullptr;
        for (const TimingArc& a : p.arcs) {
          if (a.type != ArcType::kCombinational &&
              a.type != ArcType::kClockToQ) {
            continue;
          }
          if (a.related_pin == v) {
            matched = &a;
            break;
          }
        }
        out.input_arcs.push_back(matched);
      }
      bt.outputs.push_back(std::move(out));
    }

    if (bt.seq != nullptr) {
      auto role = [&](const std::string& pin) -> std::int16_t {
        if (pin.empty()) return -1;
        const std::size_t j = lc->pinIndex(pin);
        return j == LibCell::npos ? -1 : static_cast<std::int16_t>(j);
      };
      bt.seq_pins.clock = role(bt.seq->clock_pin);
      bt.seq_pins.data = role(bt.seq->data_pin);
      bt.seq_pins.scan_in = role(bt.seq->scan_in);
      bt.seq_pins.scan_en = role(bt.seq->scan_enable);
      bt.seq_pins.sync = role(bt.seq->sync_pin);
      bt.seq_pins.clear = role(bt.seq->async_clear_pin);
      bt.seq_pins.preset = role(bt.seq->async_preset_pin);
      bt.seq_pins.q = role(bt.seq->q_pin);
      bt.seq_pins.qn = role(bt.seq->qn_pin);
    }

    const std::int32_t idx = static_cast<std::int32_t>(types_.size());
    types_.push_back(std::move(bt));
    type_names.push_back(std::move(ids));
    it->second = idx;
    return idx;
  };

  // Per-instance pin binding: match netlist pin slots to library pins by
  // interned NameId (integer compares only).
  std::vector<bool> claimed;
  module.forEachCell([&](netlist::CellId cid) {
    const netlist::Cell& cell = module.cell(cid);
    const std::int32_t t = bindType(cell.type);
    type_of_[cid.index()] = t;
    slot_base_[cid.index()] = static_cast<std::uint32_t>(slot_pin_.size());
    pin_base_[cid.index()] = static_cast<std::uint32_t>(pin_net_.size());
    if (t < 0) {
      ++unbound_;
      slot_pin_.insert(slot_pin_.end(), cell.pins.size(), std::int16_t{-1});
      return;
    }
    const TypeNameIds& ids = type_names[static_cast<std::size_t>(t)];
    const std::size_t n_lib = ids.pins.size();
    pin_net_.insert(pin_net_.end(), n_lib, netlist::NetId{});
    const std::size_t pin_base = pin_base_[cid.index()];
    // First slot wins per library pin, matching Module::pinNet's
    // first-match semantics on (malformed) duplicate pin connections.
    claimed.assign(n_lib, false);
    for (const netlist::PinConn& pc : cell.pins) {
      std::int16_t match = -1;
      for (std::size_t j = 0; j < n_lib; ++j) {
        if (ids.pins[j] == pc.name) {
          match = static_cast<std::int16_t>(j);
          if (!claimed[j]) {
            claimed[j] = true;
            pin_net_[pin_base + j] = pc.net;
          }
          break;
        }
      }
      slot_pin_.push_back(match);
    }
  });

  // Net loads: wire cap per sink plus bound input-pin capacitances.
  net_load_.assign(module.netCapacity(), 0.0);
  module.forEachNet([&](netlist::NetId id) {
    const netlist::Net& n = module.net(id);
    double load = 0.0;
    for (const netlist::TermRef& s : n.sinks) {
      load += lib.default_wire_cap;
      if (!s.isCellPin()) continue;
      const LibPin* lp = libPinOfSlot(s.cell(), s.pin);
      if (lp != nullptr) load += lp->capacitance;
    }
    net_load_[id.value] = load;
  });
}

const BoundType& BoundModule::typeOrThrow(netlist::CellId id) const {
  const BoundType* t = typeOf(id);
  if (t == nullptr) {
    throw BindError("unknown cell type (flatten first?): " +
                    std::string(module_->cellType(id)));
  }
  return *t;
}

const LibPin* BoundModule::libPinOfSlot(netlist::CellId cell,
                                        std::size_t slot) const {
  const BoundType* t = typeOf(cell);
  if (t == nullptr) return nullptr;
  const std::int16_t j = slot_pin_[slot_base_[cell.index()] + slot];
  return j < 0 ? nullptr : &t->cell->pins[static_cast<std::size_t>(j)];
}

}  // namespace desync::liberty
