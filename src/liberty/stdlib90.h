// Synthetic 90nm-class standard-cell libraries.
//
// Stand-in for the STMicroelectronics CORE9 90nm library used in the paper
// (which is proprietary).  Two variants mirror the paper's setup: High-Speed
// (used for DLX, thesis §5.2) and Low-Leakage (used for ARM, §5.3).  Cell
// areas, input capacitances and linear-model delays are chosen to be
// plausible for a 90nm process; all flow code consumes them through the
// Liberty parser so the code path matches a real library migration.
//
// Deliberate property (thesis §3.1.2): the library contains only the
// simplest transparent latch (LD), no scan latches and no two-clock
// flip-flops, forcing the desynchronizer's "extra latches" construction.
#pragma once

#include "liberty/library.h"

namespace desync::liberty {

/// Library variant selector.
enum class LibVariant { kHighSpeed, kLowLeakage };

/// Builds the synthetic library in memory.
Library makeStdLib90(LibVariant variant);

/// Returns the Liberty text of the library (what a vendor would ship); used
/// with readLiberty() to exercise the parser end-to-end.
std::string stdLib90Text(LibVariant variant);

}  // namespace desync::liberty
