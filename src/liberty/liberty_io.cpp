#include "liberty/liberty_io.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

namespace desync::liberty {
namespace {

// ------------------------------------------------------------- AST layer

/// Generic Liberty statement: either an attribute `name : value ;` or a
/// group `name (args...) { statements }`.
struct Stmt {
  std::string name;
  std::vector<std::string> args;   // group arguments
  std::string value;               // attribute value (unquoted)
  bool is_group = false;
  int line = 0;                    // 1-based source line of the name token
  std::vector<Stmt> children;
};

class LibLexer {
 public:
  explicit LibLexer(std::string_view src) : src_(src) {}

  /// Tokens: identifiers/numbers (as text), quoted strings (unquoted), and
  /// single punctuation characters `{}():;,`.
  struct Tok {
    std::string text;
    char punct = 0;  // nonzero for punctuation
    bool eof = false;
    int line = 0;
  };

  Tok next() {
    skip();
    Tok t;
    t.line = line_;
    if (pos_ >= src_.size()) {
      t.eof = true;
      return t;
    }
    char c = src_[pos_];
    if (c == '"') {
      ++pos_;
      std::string out;
      while (pos_ < src_.size() && src_[pos_] != '"') {
        if (src_[pos_] == '\\' && pos_ + 1 < src_.size() &&
            src_[pos_ + 1] == '\n') {
          pos_ += 2;  // line continuation inside string
          ++line_;
          continue;
        }
        if (src_[pos_] == '\n') ++line_;
        out.push_back(src_[pos_++]);
      }
      if (pos_ >= src_.size()) fail("unterminated string");
      ++pos_;
      t.text = std::move(out);
      return t;
    }
    static constexpr std::string_view kPunct = "{}():;,";
    if (kPunct.find(c) != std::string_view::npos) {
      ++pos_;
      t.punct = c;
      return t;
    }
    // Bareword: identifiers, numbers (incl. scientific/negative), units.
    std::size_t start = pos_;
    while (pos_ < src_.size()) {
      char d = src_[pos_];
      if (std::isspace(static_cast<unsigned char>(d)) != 0 ||
          kPunct.find(d) != std::string_view::npos || d == '"') {
        break;
      }
      ++pos_;
    }
    if (pos_ == start) fail("unexpected character");
    t.text = std::string(src_.substr(start, pos_ - start));
    return t;
  }

  [[nodiscard]] int line() const { return line_; }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw LibertyParseError("liberty:" + std::to_string(line_) + ": " + msg);
  }

  void skip() {
    for (;;) {
      while (pos_ < src_.size() &&
             std::isspace(static_cast<unsigned char>(src_[pos_])) != 0) {
        if (src_[pos_] == '\n') ++line_;
        ++pos_;
      }
      if (pos_ + 1 < src_.size() && src_[pos_] == '/' &&
          src_[pos_ + 1] == '*') {
        pos_ += 2;
        while (pos_ + 1 < src_.size() &&
               !(src_[pos_] == '*' && src_[pos_ + 1] == '/')) {
          if (src_[pos_] == '\n') ++line_;
          ++pos_;
        }
        pos_ += 2;
        continue;
      }
      if (pos_ + 1 < src_.size() && src_[pos_] == '/' &&
          src_[pos_ + 1] == '/') {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
        continue;
      }
      if (pos_ < src_.size() && src_[pos_] == '\\' && pos_ + 1 < src_.size() &&
          src_[pos_ + 1] == '\n') {
        pos_ += 2;
        ++line_;
        continue;
      }
      break;
    }
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

class StmtParser {
 public:
  explicit StmtParser(std::string_view src) : lex_(src) { advance(); }

  /// Parses the whole file into a list of top-level statements.
  std::vector<Stmt> parseAll() {
    std::vector<Stmt> out;
    while (!cur_.eof) {
      out.push_back(parseStmt());
    }
    return out;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw LibertyParseError("liberty:" + std::to_string(cur_.line) + ": " +
                            msg);
  }

  void advance() { cur_ = lex_.next(); }

  Stmt parseStmt() {
    if (cur_.punct != 0 || cur_.eof) fail("expected statement name");
    Stmt s;
    s.name = cur_.text;
    s.line = cur_.line;
    advance();
    if (cur_.punct == '(') {
      s.is_group = true;
      advance();
      while (cur_.punct != ')') {
        if (cur_.eof) fail("unterminated group arguments");
        if (cur_.punct == ',') {
          advance();
          continue;
        }
        s.args.push_back(cur_.text);
        advance();
      }
      advance();  // ')'
      if (cur_.punct == '{') {
        advance();
        while (cur_.punct != '}') {
          if (cur_.eof) fail("unterminated group");
          s.children.push_back(parseStmt());
        }
        advance();  // '}'
      } else if (cur_.punct == ';') {
        advance();
      }
      return s;
    }
    if (cur_.punct == ':') {
      advance();
      // Attribute value: concatenate barewords until ';' (covers "1.0 ns").
      std::string value;
      while (cur_.punct != ';') {
        if (cur_.eof) fail("unterminated attribute");
        if (!value.empty()) value += ' ';
        value += cur_.text;
        advance();
      }
      advance();  // ';'
      s.value = std::move(value);
      return s;
    }
    if (cur_.punct == ';') {
      advance();
      return s;
    }
    fail("malformed statement after '" + s.name + "'");
  }

  LibLexer lex_;
  LibLexer::Tok cur_;
};

// ----------------------------------------------------- interpretation

// Strict numeric attribute parse.  The full value must be a number, except
// for an optional unit tail separated by a space ("1.0 ns" parses as 1.0);
// prefix garbage, trailing garbage glued to the digits ("1.0x") and
// out-of-range values all fail with the source line.
double toDouble(const Stmt& s) {
  const char* begin = s.value.c_str();
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(begin, &end);
  const bool ok =
      end != begin && errno != ERANGE && (*end == '\0' || *end == ' ');
  if (!ok) {
    throw LibertyParseError("liberty:" + std::to_string(s.line) +
                            ": bad numeric value for " + s.name + ": '" +
                            s.value + "'");
  }
  return v;
}

const Stmt* findChild(const Stmt& s, std::string_view name) {
  for (const Stmt& c : s.children) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

TimingArc interpretTiming(const Stmt& g) {
  TimingArc arc;
  ArcType type = ArcType::kCombinational;
  for (const Stmt& a : g.children) {
    if (a.name == "related_pin") {
      arc.related_pin = a.value;
    } else if (a.name == "intrinsic_rise") {
      arc.intrinsic_rise = toDouble(a);
    } else if (a.name == "intrinsic_fall") {
      arc.intrinsic_fall = toDouble(a);
    } else if (a.name == "rise_resistance") {
      arc.rise_resistance = toDouble(a);
    } else if (a.name == "fall_resistance") {
      arc.fall_resistance = toDouble(a);
    } else if (a.name == "timing_type") {
      if (a.value.rfind("setup", 0) == 0) {
        type = ArcType::kSetup;
      } else if (a.value.rfind("hold", 0) == 0) {
        type = ArcType::kHold;
      } else if (a.value.rfind("rising_edge", 0) == 0 ||
                 a.value.rfind("falling_edge", 0) == 0) {
        type = ArcType::kClockToQ;
      }
    }
  }
  arc.type = type;
  return arc;
}

LibPin interpretPin(const Stmt& g) {
  LibPin pin;
  if (g.args.empty()) throw LibertyParseError("pin group without name");
  pin.name = g.args[0];
  for (const Stmt& a : g.children) {
    if (a.name == "direction") {
      if (a.value == "input") {
        pin.dir = PinDir::kInput;
      } else if (a.value == "output") {
        pin.dir = PinDir::kOutput;
      } else {
        // inout/internal unsupported; treat as output to keep connectivity.
        pin.dir = PinDir::kOutput;
      }
    } else if (a.name == "capacitance") {
      pin.capacitance = toDouble(a);
    } else if (a.name == "max_capacitance") {
      pin.max_capacitance = toDouble(a);
    } else if (a.name == "clock") {
      pin.is_clock = (a.value == "true");
    } else if (a.name == "nextstate_type") {
      pin.nextstate_type = a.value;
    } else if (a.name == "function") {
      pin.function_str = a.value;
      pin.function = BoolExpr::parse(a.value);
    } else if (a.name == "timing" && a.is_group) {
      pin.arcs.push_back(interpretTiming(a));
    }
  }
  return pin;
}

LibCell interpretCell(const Stmt& g) {
  LibCell cell;
  if (g.args.empty()) throw LibertyParseError("cell group without name");
  cell.name = g.args[0];
  for (const Stmt& a : g.children) {
    if (a.name == "area") {
      cell.area = toDouble(a);
    } else if (a.name == "cell_leakage_power") {
      cell.leakage = toDouble(a);
    } else if (a.name == "clock_gating_integrated_cell") {
      cell.kind = CellKind::kClockGate;
    } else if ((a.name == "ff" || a.name == "latch") && a.is_group) {
      SeqInfo seq;
      if (!a.args.empty()) seq.state_var = a.args[0];
      if (a.args.size() > 1) seq.state_var_n = a.args[1];
      for (const Stmt& f : a.children) {
        if (f.name == "clocked_on") {
          seq.clocked_on = f.value;
        } else if (f.name == "next_state") {
          seq.next_state = f.value;
        } else if (f.name == "enable") {
          seq.enable = f.value;
        } else if (f.name == "data_in") {
          seq.data_in = f.value;
        } else if (f.name == "clear") {
          seq.clear = f.value;
        } else if (f.name == "preset") {
          seq.preset = f.value;
        }
      }
      cell.seq = std::move(seq);
      if (cell.kind != CellKind::kClockGate) {
        cell.kind = a.name == "ff" ? CellKind::kFlipFlop : CellKind::kLatch;
      }
    } else if (a.name == "pin" && a.is_group) {
      cell.pins.push_back(interpretPin(a));
    }
  }
  return cell;
}

}  // namespace

Library readLiberty(std::string_view text) {
  StmtParser parser(text);
  std::vector<Stmt> top = parser.parseAll();
  const Stmt* lib_stmt = nullptr;
  for (const Stmt& s : top) {
    if (s.name == "library") {
      lib_stmt = &s;
      break;
    }
  }
  if (lib_stmt == nullptr) {
    throw LibertyParseError("no library group found");
  }
  Library lib;
  if (!lib_stmt->args.empty()) lib.name = lib_stmt->args[0];
  for (const Stmt& s : lib_stmt->children) {
    if (s.name == "cell" && s.is_group) {
      lib.addCell(interpretCell(s));
    } else if (s.name == "default_wire_load_capacitance") {
      lib.default_wire_cap = toDouble(s);
    }
  }
  (void)findChild;  // reserved for future attribute lookups
  return lib;
}

Library readLibertyFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw LibertyParseError("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return readLiberty(ss.str());
}

std::string writeLiberty(const Library& lib) {
  std::ostringstream out;
  out << "library (" << lib.name << ") {\n";
  out << "  delay_model : generic_cmos;\n";
  out << "  time_unit : \"1ns\";\n";
  out << "  capacitive_load_unit (1, pf);\n";
  out << "  default_wire_load_capacitance : " << lib.default_wire_cap
      << ";\n";
  lib.forEachCell([&](const LibCell& c) {
    out << "  cell (" << c.name << ") {\n";
    out << "    area : " << c.area << ";\n";
    out << "    cell_leakage_power : " << c.leakage << ";\n";
    if (c.kind == CellKind::kClockGate) {
      out << "    clock_gating_integrated_cell : latch_posedge;\n";
    }
    if (c.seq) {
      const SeqInfo& s = *c.seq;
      const bool is_latch = !s.enable.empty() || !s.data_in.empty();
      out << "    " << (is_latch ? "latch" : "ff") << " (" << s.state_var;
      if (!s.state_var_n.empty()) out << ", " << s.state_var_n;
      out << ") {\n";
      if (!s.clocked_on.empty()) {
        out << "      clocked_on : \"" << s.clocked_on << "\";\n";
      }
      if (!s.next_state.empty()) {
        out << "      next_state : \"" << s.next_state << "\";\n";
      }
      if (!s.enable.empty()) out << "      enable : \"" << s.enable << "\";\n";
      if (!s.data_in.empty()) {
        out << "      data_in : \"" << s.data_in << "\";\n";
      }
      if (!s.clear.empty()) out << "      clear : \"" << s.clear << "\";\n";
      if (!s.preset.empty()) {
        out << "      preset : \"" << s.preset << "\";\n";
      }
      out << "    }\n";
    }
    for (const LibPin& p : c.pins) {
      out << "    pin (" << p.name << ") {\n";
      out << "      direction : "
          << (p.dir == PinDir::kInput ? "input" : "output") << ";\n";
      if (p.dir == PinDir::kInput) {
        out << "      capacitance : " << p.capacitance << ";\n";
        if (p.is_clock) out << "      clock : true;\n";
        if (!p.nextstate_type.empty()) {
          out << "      nextstate_type : " << p.nextstate_type << ";\n";
        }
      } else {
        if (!p.function_str.empty()) {
          out << "      function : \"" << p.function_str << "\";\n";
        }
        if (p.max_capacitance > 0) {
          out << "      max_capacitance : " << p.max_capacitance << ";\n";
        }
      }
      for (const TimingArc& a : p.arcs) {
        out << "      timing () {\n";
        out << "        related_pin : \"" << a.related_pin << "\";\n";
        switch (a.type) {
          case ArcType::kSetup:
            out << "        timing_type : setup_rising;\n";
            break;
          case ArcType::kHold:
            out << "        timing_type : hold_rising;\n";
            break;
          case ArcType::kClockToQ:
            out << "        timing_type : rising_edge;\n";
            break;
          case ArcType::kCombinational:
            break;
        }
        out << "        intrinsic_rise : " << a.intrinsic_rise << ";\n";
        out << "        intrinsic_fall : " << a.intrinsic_fall << ";\n";
        out << "        rise_resistance : " << a.rise_resistance << ";\n";
        out << "        fall_resistance : " << a.fall_resistance << ";\n";
        out << "      }\n";
      }
      out << "    }\n";
    }
    out << "  }\n";
  });
  out << "}\n";
  return out.str();
}

void writeLibertyFile(const Library& lib, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw LibertyParseError("cannot open for write: " + path);
  out << writeLiberty(lib);
}

}  // namespace desync::liberty
