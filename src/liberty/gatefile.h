// The "gatefile": drdesync's digest of a technology library (thesis §3.1.1).
//
// The original flow parsed the vendor .lib with a custom script and produced
// a gatefile holding, for each cell, its name, type (flip-flop / latch /
// combinational), its pins with name and type, plus the replacement rules
// used by flip-flop substitution.  This class computes the same digest from
// a parsed Library: it classifies every sequential cell's pins by analyzing
// the Liberty next_state / clocked_on / clear / preset expressions with
// boolean cofactoring (so scan muxes and synchronous set/reset are
// recognized structurally, not by pin-name convention), and implements the
// netlist CellTypeProvider interface so parsers and passes can resolve pin
// directions.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "liberty/library.h"
#include "netlist/cell_type_provider.h"

namespace desync::liberty {

/// Structural classification of a sequential cell's pins.
struct SeqClass {
  std::string clock_pin;        ///< ff clock / latch enable source pin
  bool clock_inverted = false;  ///< true: active on falling edge / low level
  std::string data_pin;
  std::string scan_in;          ///< empty when not a scan cell
  std::string scan_enable;
  std::string sync_pin;         ///< synchronous set/reset control (empty: none)
  bool sync_active_low = false;
  bool sync_is_set = false;     ///< true: sync set, false: sync reset
  std::string async_clear_pin;  ///< empty when none
  bool async_clear_active_low = false;
  std::string async_preset_pin;
  bool async_preset_active_low = false;
  std::string q_pin;            ///< output wired to the state variable
  std::string qn_pin;           ///< output wired to its complement (optional)

  [[nodiscard]] bool isScan() const { return !scan_enable.empty(); }
};

/// Library digest + pin-direction provider.
class Gatefile final : public netlist::CellTypeProvider {
 public:
  /// Builds the gatefile from a parsed library.  Throws LibraryError when a
  /// sequential cell's behaviour cannot be classified (e.g. >6 inputs in
  /// next_state).
  explicit Gatefile(const Library& lib);

  [[nodiscard]] const Library& library() const { return *lib_; }

  // --- CellTypeProvider ----------------------------------------------
  [[nodiscard]] bool knownType(std::string_view type) const override;
  [[nodiscard]] std::optional<netlist::PortDir> pinDir(
      std::string_view type, std::string_view pin) const override;
  [[nodiscard]] std::vector<std::string> pinOrder(
      std::string_view type) const override;

  // --- classification --------------------------------------------------
  [[nodiscard]] CellKind kind(std::string_view type) const;
  [[nodiscard]] bool isFlipFlop(std::string_view type) const;
  [[nodiscard]] bool isLatch(std::string_view type) const;
  [[nodiscard]] bool isSequential(std::string_view type) const;
  [[nodiscard]] bool isCombinational(std::string_view type) const;
  /// Single-input combinational cell computing identity.
  [[nodiscard]] bool isBuffer(std::string_view type) const;
  /// Single-input combinational cell computing complement.
  [[nodiscard]] bool isInverter(std::string_view type) const;

  /// Sequential pin classification; nullptr for combinational cells.
  [[nodiscard]] const SeqClass* seqClass(std::string_view type) const;

  /// Name of the simplest plain transparent latch in the library (fewest
  /// pins / smallest area); used as the master/slave building block.
  [[nodiscard]] const std::string& simpleLatch() const { return simple_latch_; }

  /// Serializes the digest to the gatefile text format.
  [[nodiscard]] std::string toText() const;

 public:
  /// Parsed form of the gatefile text — what the original drdesync loaded
  /// at startup instead of re-deriving everything from the .lib.  Carries
  /// the per-cell classification without timing data.
  struct TextEntry {
    std::string kind;  ///< "comb" / "ff" / "latch" / "clockgate"
    double area = 0;
    std::vector<std::pair<std::string, bool>> pins;  ///< (name, is_input)
    std::optional<SeqClass> seq;
  };
  struct Text {
    std::string library;
    std::map<std::string, TextEntry, std::less<>> cells;
  };
  /// Parses the toText() format.  Throws LibraryError on malformed input.
  static Text parseText(const std::string& text);

 private:
  void classifyCell(const LibCell& cell);

  const Library* lib_;
  std::map<std::string, SeqClass, std::less<>> seq_class_;
  std::map<std::string, bool, std::less<>> is_buffer_;    // type -> buffer?
  std::map<std::string, bool, std::less<>> is_inverter_;
  std::string simple_latch_;
};

}  // namespace desync::liberty
