#include "liberty/stdlib90.h"

#include <initializer_list>

#include "liberty/liberty_io.h"

namespace desync::liberty {
namespace {

/// Scale factors distinguishing the two variants.  The Low-Leakage flavour
/// trades ~1.7x delay for ~20x lower leakage (typical of 90nm HS vs LL
/// transistor options).
struct VariantScale {
  double delay = 1.0;
  double leakage = 1.0;
};

VariantScale scaleFor(LibVariant v) {
  if (v == LibVariant::kLowLeakage) return {1.7, 0.05};
  return {1.0, 1.0};
}

class Builder {
 public:
  explicit Builder(LibVariant variant) : s_(scaleFor(variant)) {
    lib_.name = variant == LibVariant::kHighSpeed ? "core9gp_hs_90nm"
                                                  : "core9gp_ll_90nm";
    lib_.default_wire_cap = 0.002;
  }

  Library take() { return std::move(lib_); }

  /// Adds a combinational cell: every input pin has capacitance `cap` and
  /// drives an identical arc to Z.
  void comb(const std::string& name, const std::string& function,
            std::initializer_list<const char*> inputs, double area,
            double cap, double intrinsic, double resistance,
            double leakage) {
    LibCell c;
    c.name = name;
    c.kind = CellKind::kCombinational;
    c.area = area;
    c.leakage = leakage * s_.leakage;
    for (const char* in : inputs) {
      LibPin p;
      p.name = in;
      p.dir = PinDir::kInput;
      p.capacitance = cap;
      c.pins.push_back(std::move(p));
    }
    LibPin z;
    z.name = "Z";
    z.dir = PinDir::kOutput;
    z.max_capacitance = 0.25;
    z.function_str = function;
    z.function = BoolExpr::parse(function);
    for (const char* in : inputs) {
      TimingArc arc;
      arc.related_pin = in;
      arc.type = ArcType::kCombinational;
      arc.intrinsic_rise = intrinsic * s_.delay;
      arc.intrinsic_fall = intrinsic * 0.9 * s_.delay;
      arc.rise_resistance = resistance * s_.delay;
      arc.fall_resistance = resistance * 0.85 * s_.delay;
      z.arcs.push_back(arc);
    }
    c.pins.push_back(std::move(z));
    lib_.addCell(std::move(c));
  }

  struct FfSpec {
    std::string name;
    std::string next_state;            // over data pins
    std::vector<std::string> data_pins;
    std::string clear;                 // e.g. "CDN'"
    std::string preset;
    double area = 0;
    double leakage = 0;
  };

  void ff(const FfSpec& spec) {
    LibCell c;
    c.name = spec.name;
    c.kind = CellKind::kFlipFlop;
    c.area = spec.area;
    c.leakage = spec.leakage * s_.leakage;
    SeqInfo seq;
    seq.state_var = "IQ";
    seq.state_var_n = "IQN";
    seq.clocked_on = "CP";
    seq.next_state = spec.next_state;
    seq.clear = spec.clear;
    seq.preset = spec.preset;
    c.seq = seq;

    auto input = [&](const std::string& n, double cap, bool clock = false) {
      LibPin p;
      p.name = n;
      p.dir = PinDir::kInput;
      p.capacitance = cap;
      p.is_clock = clock;
      if (n == "D") p.nextstate_type = "data";
      if (n == "SI") p.nextstate_type = "scan_in";
      if (n == "SE") p.nextstate_type = "scan_enable";
      if (!clock && (n == "D" || n == "SI" || n == "SE")) {
        TimingArc setup;
        setup.related_pin = "CP";
        setup.type = ArcType::kSetup;
        setup.intrinsic_rise = setup.intrinsic_fall = 0.08 * s_.delay;
        p.arcs.push_back(setup);
        TimingArc hold;
        hold.related_pin = "CP";
        hold.type = ArcType::kHold;
        hold.intrinsic_rise = hold.intrinsic_fall = 0.02 * s_.delay;
        p.arcs.push_back(hold);
      }
      c.pins.push_back(std::move(p));
    };
    for (const std::string& d : spec.data_pins) input(d, 0.004);
    input("CP", 0.003, /*clock=*/true);
    if (!spec.clear.empty()) input("CDN", 0.004);
    if (!spec.preset.empty()) input("SDN", 0.004);

    auto output = [&](const std::string& n, const std::string& fn) {
      LibPin p;
      p.name = n;
      p.dir = PinDir::kOutput;
      p.max_capacitance = 0.20;
      p.function_str = fn;
      p.function = BoolExpr::parse(fn);
      TimingArc arc;
      arc.related_pin = "CP";
      arc.type = ArcType::kClockToQ;
      arc.intrinsic_rise = arc.intrinsic_fall = 0.10 * s_.delay;
      arc.rise_resistance = arc.fall_resistance = 1.0 * s_.delay;
      p.arcs.push_back(arc);
      c.pins.push_back(std::move(p));
    };
    output("Q", "IQ");
    output("QN", "IQN");
    lib_.addCell(std::move(c));
  }

  void latch() {
    LibCell c;
    c.name = "LD";
    c.kind = CellKind::kLatch;
    c.area = 12.9;
    c.leakage = 310 * s_.leakage;
    SeqInfo seq;
    seq.state_var = "IQ";
    seq.state_var_n = "IQN";
    seq.enable = "G";
    seq.data_in = "D";
    c.seq = seq;

    LibPin d;
    d.name = "D";
    d.dir = PinDir::kInput;
    d.capacitance = 0.004;
    {
      TimingArc setup;
      setup.related_pin = "G";
      setup.type = ArcType::kSetup;
      setup.intrinsic_rise = setup.intrinsic_fall = 0.05 * s_.delay;
      d.arcs.push_back(setup);
      TimingArc hold;
      hold.related_pin = "G";
      hold.type = ArcType::kHold;
      hold.intrinsic_rise = hold.intrinsic_fall = 0.02 * s_.delay;
      d.arcs.push_back(hold);
    }
    c.pins.push_back(std::move(d));

    LibPin g;
    g.name = "G";
    g.dir = PinDir::kInput;
    g.capacitance = 0.003;
    g.is_clock = true;
    c.pins.push_back(std::move(g));

    LibPin q;
    q.name = "Q";
    q.dir = PinDir::kOutput;
    q.max_capacitance = 0.20;
    q.function_str = "IQ";
    q.function = BoolExpr::parse("IQ");
    {
      TimingArc en;  // enable edge -> Q
      en.related_pin = "G";
      en.type = ArcType::kClockToQ;
      en.intrinsic_rise = en.intrinsic_fall = 0.09 * s_.delay;
      en.rise_resistance = en.fall_resistance = 1.0 * s_.delay;
      q.arcs.push_back(en);
      TimingArc dq;  // transparent D -> Q
      dq.related_pin = "D";
      dq.type = ArcType::kCombinational;
      dq.intrinsic_rise = dq.intrinsic_fall = 0.06 * s_.delay;
      dq.rise_resistance = dq.fall_resistance = 1.0 * s_.delay;
      q.arcs.push_back(dq);
    }
    c.pins.push_back(std::move(q));
    lib_.addCell(std::move(c));
  }

  void clockGate() {
    LibCell c;
    c.name = "CGL";
    c.kind = CellKind::kClockGate;
    c.area = 15.7;
    c.leakage = 400 * s_.leakage;
    SeqInfo seq;  // enable latch transparent while CP low
    seq.state_var = "IQ";
    seq.enable = "CP'";
    seq.data_in = "E";
    c.seq = seq;

    LibPin e;
    e.name = "E";
    e.dir = PinDir::kInput;
    e.capacitance = 0.004;
    c.pins.push_back(std::move(e));
    LibPin cp;
    cp.name = "CP";
    cp.dir = PinDir::kInput;
    cp.capacitance = 0.003;
    cp.is_clock = true;
    c.pins.push_back(std::move(cp));
    LibPin z;
    z.name = "Z";
    z.dir = PinDir::kOutput;
    z.max_capacitance = 0.25;
    z.function_str = "(IQ*CP)";
    z.function = BoolExpr::parse("(IQ*CP)");
    TimingArc arc;
    arc.related_pin = "CP";
    arc.type = ArcType::kClockToQ;
    arc.intrinsic_rise = arc.intrinsic_fall = 0.05 * s_.delay;
    arc.rise_resistance = arc.fall_resistance = 0.9 * s_.delay;
    z.arcs.push_back(arc);
    c.pins.push_back(std::move(z));
    lib_.addCell(std::move(c));
  }

  void buildAll() {
    // name, function, inputs, area, cap, intrinsic, resistance, leakage(nW)
    comb("IV", "A'", {"A"}, 2.8, 0.0030, 0.012, 1.00, 120);
    comb("BF", "A", {"A"}, 4.2, 0.0030, 0.025, 0.70, 150);
    comb("ND2", "(A*B)'", {"A", "B"}, 3.7, 0.0035, 0.014, 1.20, 160);
    comb("ND3", "(A*B*C)'", {"A", "B", "C"}, 5.0, 0.0040, 0.018, 1.40, 200);
    comb("ND4", "(A*B*C*D)'", {"A", "B", "C", "D"}, 6.4, 0.0045, 0.022, 1.60,
         240);
    comb("NR2", "(A+B)'", {"A", "B"}, 3.7, 0.0035, 0.016, 1.40, 160);
    comb("NR3", "(A+B+C)'", {"A", "B", "C"}, 5.5, 0.0040, 0.022, 1.70, 200);
    comb("AN2", "(A*B)", {"A", "B"}, 4.6, 0.0030, 0.030, 0.90, 180);
    comb("AN3", "(A*B*C)", {"A", "B", "C"}, 5.5, 0.0035, 0.034, 1.00, 220);
    comb("AN2B1", "(A*B')", {"A", "B"}, 5.0, 0.0032, 0.032, 0.95, 190);
    comb("OR2", "(A+B)", {"A", "B"}, 4.6, 0.0030, 0.032, 0.95, 180);
    comb("OR3", "(A+B+C)", {"A", "B", "C"}, 5.5, 0.0035, 0.036, 1.05, 220);
    comb("OR2B1", "(A+B')", {"A", "B"}, 5.0, 0.0032, 0.034, 1.00, 190);
    comb("EO", "(A^B)", {"A", "B"}, 7.4, 0.0050, 0.040, 1.10, 260);
    comb("EN", "(A^B)'", {"A", "B"}, 7.4, 0.0050, 0.040, 1.10, 260);
    comb("MUX21", "((S*B)+(S'*A))", {"A", "B", "S"}, 7.4, 0.0040, 0.038, 1.00,
         280);
    comb("AOI21", "((A*B)+C)'", {"A", "B", "C"}, 4.6, 0.0038, 0.020, 1.30,
         190);
    comb("OAI21", "((A+B)*C)'", {"A", "B", "C"}, 4.6, 0.0038, 0.020, 1.30,
         190);
    comb("MAJ3", "((A*B)+(A*C)+(B*C))", {"A", "B", "C"}, 8.3, 0.0045, 0.045,
         1.10, 300);

    ff({"DFF", "D", {"D"}, "", "", 23.0, 620});
    ff({"DFFR", "D", {"D"}, "CDN'", "", 26.0, 680});
    ff({"DFFS", "D", {"D"}, "", "SDN'", 26.0, 680});
    ff({"DFFSYNR", "(D*RN)", {"D", "RN"}, "", "", 26.5, 690});
    ff({"SDFF", "((SE*SI)+(SE'*D))", {"D", "SI", "SE"}, "", "", 28.5, 740});
    ff({"SDFFR", "((SE*SI)+(SE'*D))", {"D", "SI", "SE"}, "CDN'", "", 31.2,
        800});
    latch();
    clockGate();
  }

 private:
  VariantScale s_;
  Library lib_;
};

}  // namespace

Library makeStdLib90(LibVariant variant) {
  Builder b(variant);
  b.buildAll();
  return b.take();
}

std::string stdLib90Text(LibVariant variant) {
  return writeLiberty(makeStdLib90(variant));
}

}  // namespace desync::liberty
