// Liberty (.lib) text reader and writer.
//
// The reader handles the structural subset drdesync's gatefile extraction
// needs: library / cell / pin / ff / latch / timing groups, simple
// attributes, quoted strings and the linear delay model attributes
// (intrinsic_rise/fall, rise/fall_resistance).  Unknown groups and
// attributes are skipped, so real-world .lib files parse (their NLDM tables
// are ignored).
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "liberty/library.h"

namespace desync::liberty {

class LibertyParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parses Liberty text into a Library.
Library readLiberty(std::string_view text);

/// Reads a .lib file from disk.
Library readLibertyFile(const std::string& path);

/// Serializes a Library back to Liberty text (round-trips through
/// readLiberty).
std::string writeLiberty(const Library& lib);

/// Writes the library to a file.
void writeLibertyFile(const Library& lib, const std::string& path);

}  // namespace desync::liberty
