// Speed-independent verification of gate-level asynchronous controllers.
//
// Latch controllers must be hazard-free under arbitrary gate delays (thesis
// §3.1.3: "specially designed circuits which need to be hazard-free").  This
// verifier explores the product of a gate-level circuit (every gate an
// independent speed-independent process) with an STG environment spec and
// checks:
//   - conformance: the circuit never produces an interface output edge the
//     spec does not allow;
//   - semi-modularity (hazard freedom): an excited gate is never disabled by
//     another transition before it fires;
//   - deadlock freedom of the closed system.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "stg/stg.h"

namespace desync::stg {

/// One gate of the circuit under verification.  A gate may list its own
/// output among its inputs (feedback, e.g. C-element keepers).
struct GateSpec {
  std::string output;               ///< signal this gate drives
  std::vector<std::string> inputs;  ///< consumed signals, in eval order
  std::function<bool(const std::vector<bool>&)> eval;
  bool initial = false;             ///< post-reset output value
};

/// A closed circuit: environment-driven inputs plus gates.
struct SiCircuit {
  std::vector<std::string> inputs;  ///< signals the environment drives
  std::vector<bool> input_initial;  ///< their post-reset values
  std::vector<GateSpec> gates;
};

struct SiResult {
  bool ok() const { return conforms && hazard_free && deadlock_free; }
  bool conforms = true;
  bool hazard_free = true;
  bool deadlock_free = true;
  /// Informational: false when some gate was already excited in the initial
  /// state (normal for closed self-starting networks, suspicious for open
  /// controllers verified standalone).
  bool stable_start = true;
  std::size_t states = 0;
  std::string violation;
  /// Event labels from the initial state to the state where the violation
  /// was detected (empty when ok).
  std::vector<std::string> trace;
};

/// Verifies `circuit` against `spec`.  Signals of the spec marked kInput are
/// driven by the environment (must appear in circuit.inputs); signals marked
/// kOutput must be driven by circuit gates whose edges are then checked
/// against the spec.  Gates driving signals absent from the spec are
/// internal and unconstrained (but still checked for semi-modularity).
SiResult verifySpeedIndependent(const SiCircuit& circuit, const Stg& spec,
                                std::size_t max_states = 1u << 22);

}  // namespace desync::stg
