// Desynchronization handshake protocols (thesis §2.2, Fig 2.4).
//
// A protocol constrains the enable signals A (upstream latch) and B
// (downstream latch) of two latches in sequence.  Fig 2.4 orders five
// protocols by allowed concurrency and classifies them: the most concurrent
// ("fall-decoupled", 10 states) is live but NOT flow-equivalent (data can be
// overwritten); the least concurrent ("non-overlapping", 4 states) is not
// live when composed in rings; the middle three (de-synchronization model 8,
// semi-decoupled 6, simple 5) are live and flow-equivalent.
//
// Each protocol is a set of cross-causality arcs between the A+/A-/B+/B-
// transitions, layered on top of the per-signal alternation cycle.  Flow
// equivalence is checked *semantically* here: a datum-flow monitor runs over
// every reachable trace and verifies that the sequence of values committed
// into B (at each B- closing edge) is exactly datum 1, 2, 3, ... — i.e. the
// same sequence a synchronous latch would store.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "stg/stg.h"

namespace desync::stg {

/// Protocols of thesis Fig 2.4, most concurrent first.
enum class Protocol {
  kFallDecoupled,   ///< Furber&Day fully/rise-decoupled family; 10 states
  kDesyncModel,     ///< de-synchronization model; 8 states
  kSemiDecoupled,   ///< Furber&Day semi-decoupled; 6 states
  kSimple,          ///< Furber&Day simple; 5 states
  kNonOverlapping,  ///< non-overlapping clocks; 4 states
};

[[nodiscard]] const char* protocolName(Protocol p);

/// Events of the two-latch abstraction.
enum class Evt : std::uint8_t { kAp, kAm, kBp, kBm };

/// One cross-causality arc of a protocol template.
struct ProtocolArc {
  Evt from;
  Evt to;
  /// Tokens on the arc's place in the canonical pair STG (A master first).
  std::uint8_t marked = 0;
};

/// The arc set defining each protocol.
[[nodiscard]] std::vector<ProtocolArc> protocolArcs(Protocol p);

/// Builds the canonical two-latch STG: signals "A" and "B", per-signal
/// alternation (x- -> x+ marked) plus the protocol's cross arcs.
[[nodiscard]] Stg makePairStg(Protocol p);
/// Same, from an explicit arc set (used by the protocol-lattice search).
[[nodiscard]] Stg makePairStg(const std::vector<ProtocolArc>& arcs);

/// Builds a ring of `n` latches L0 -> L1 -> ... -> L(n-1) -> L0 with the
/// protocol applied between each adjacent pair.  Forward ("data ready")
/// arcs are initially marked when the upstream latch is odd, modelling the
/// reset state in which slave latch outputs hold valid data; backward
/// ("space available") arcs are always marked.  Used for the liveness
/// classification: non-overlapping deadlocks in rings.
[[nodiscard]] Stg makeRingStg(Protocol p, int n);

/// Result of the semantic flow-equivalence check.
struct FlowEqResult {
  bool holds = true;
  std::string violation;     ///< first offending trace condition
  std::size_t states = 0;    ///< product states explored
};

/// Runs the datum-flow monitor over every reachable trace of `stg`, where
/// `a` / `b` are the upstream / downstream latch enable signals.  Initially
/// both latches are opaque and datum 0 (the reset value) sits in both.
[[nodiscard]] FlowEqResult checkFlowEquivalence(const Stg& stg, SignalIdx a,
                                                SignalIdx b);
/// Convenience overload on the canonical pair STG.
[[nodiscard]] FlowEqResult checkFlowEquivalence(Protocol p);

/// Full classification of one protocol: pair-STG state count, liveness of
/// the pair and of ring compositions, and flow-equivalence.
struct ProtocolClass {
  Protocol protocol;
  std::size_t pair_states = 0;
  bool pair_live = false;
  bool ring_live = false;  ///< live in a 4-latch ring (2 master/slave pairs)
  bool flow_equivalent = false;
};

[[nodiscard]] ProtocolClass classifyProtocol(Protocol p);

}  // namespace desync::stg
