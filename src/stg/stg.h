// Signal Transition Graphs (STGs).
//
// STGs are Petri nets whose transitions are labeled with signal edges
// ("a+" / "a-"); they specify asynchronous handshake protocols (thesis §2.2,
// Fig 2.4 and [Murata 89]).  This module provides the net model, reachability
// analysis, and the liveness / boundedness / persistency queries used to
// classify desynchronization protocols and to verify latch controllers.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace desync::stg {

class StgError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Index types (plain integers; the net is small and short-lived).
using SignalIdx = std::uint32_t;
using TransIdx = std::uint32_t;
using PlaceIdx = std::uint32_t;

enum class SignalKind : std::uint8_t { kInput, kOutput, kInternal };

/// A marking: token count per place.  Values saturate checks at kBound.
using Marking = std::vector<std::uint8_t>;

/// Petri net with signal-edge transition labels.
class Stg {
 public:
  static constexpr std::uint8_t kBound = 8;  ///< boundedness explosion guard

  /// Declares a signal; returns its index.
  SignalIdx addSignal(std::string name, SignalKind kind = SignalKind::kOutput);

  /// Adds a transition labeled `signal` +/-.  The same signal may label many
  /// transitions.
  TransIdx addTransition(SignalIdx signal, bool rising);
  /// Parses "a+" / "a-" (declares the signal as kOutput if unknown).
  TransIdx addTransition(std::string_view label);

  /// Adds an explicit place with `tokens` initial tokens.
  PlaceIdx addPlace(std::uint8_t tokens = 0);
  /// Arc place -> transition.
  void arcPT(PlaceIdx p, TransIdx t);
  /// Arc transition -> place.
  void arcTP(TransIdx t, PlaceIdx p);

  /// Convenience: implicit place between two transitions ("from causes to"),
  /// optionally holding an initial token.
  PlaceIdx connect(TransIdx from, TransIdx to, std::uint8_t tokens = 0);
  /// Convenience on labels: connect("a+", "b+", 1).  Transitions are created
  /// on first use.
  PlaceIdx connect(std::string_view from, std::string_view to,
                   std::uint8_t tokens = 0);

  /// Finds the (first) transition with this label, creating it if absent.
  TransIdx transitionFor(std::string_view label);

  [[nodiscard]] std::size_t numSignals() const { return signals_.size(); }
  [[nodiscard]] std::size_t numTransitions() const { return trans_.size(); }
  [[nodiscard]] std::size_t numPlaces() const { return place_tokens_.size(); }

  [[nodiscard]] const std::string& signalName(SignalIdx s) const {
    return signals_.at(s).name;
  }
  [[nodiscard]] SignalKind signalKind(SignalIdx s) const {
    return signals_.at(s).kind;
  }
  [[nodiscard]] SignalIdx transitionSignal(TransIdx t) const {
    return trans_.at(t).signal;
  }
  [[nodiscard]] bool transitionRising(TransIdx t) const {
    return trans_.at(t).rising;
  }
  [[nodiscard]] std::string transitionLabel(TransIdx t) const;

  [[nodiscard]] const Marking& initialMarking() const { return place_tokens_; }

  /// Transitions enabled in `m`.
  [[nodiscard]] std::vector<TransIdx> enabled(const Marking& m) const;
  /// Fires `t` (must be enabled) producing the successor marking.
  [[nodiscard]] Marking fire(const Marking& m, TransIdx t) const;
  [[nodiscard]] bool isEnabled(const Marking& m, TransIdx t) const;

 private:
  struct Signal {
    std::string name;
    SignalKind kind;
  };
  struct Transition {
    SignalIdx signal;
    bool rising;
    std::vector<PlaceIdx> pre;
    std::vector<PlaceIdx> post;
  };

  std::vector<Signal> signals_;
  std::vector<Transition> trans_;
  Marking place_tokens_;
  std::unordered_map<std::string, SignalIdx> signal_by_name_;
};

/// Result of exhaustive reachability analysis.
struct Reachability {
  std::size_t num_states = 0;
  bool bounded = true;         ///< no place exceeded Stg::kBound tokens
  bool deadlock_free = true;
  /// Live: net is deadlock-free, its reachability graph is one strongly
  /// connected component, and every transition fires somewhere (=> every
  /// transition can fire again from every reachable state).
  bool live = true;
  /// Output-persistent: no enabled non-input transition is ever disabled by
  /// firing another transition (the STG analogue of hazard-freedom).
  bool output_persistent = true;
  std::vector<bool> transition_fired;  ///< per transition: ever enabled
  std::string violation;               ///< description of first problem
};

struct ReachabilityOptions {
  std::size_t max_states = 1u << 20;
};

/// Explores the full state space.  Throws StgError when max_states is hit.
Reachability analyze(const Stg& stg, const ReachabilityOptions& opts = {});

/// Callback-driven exploration: visit(marking, enabled transition, successor)
/// for every edge of the reachability graph.  Used by trace monitors.
void forEachEdge(
    const Stg& stg,
    const std::function<void(const Marking&, TransIdx, const Marking&)>& visit,
    const ReachabilityOptions& opts = {});

}  // namespace desync::stg
