#include "stg/stg.h"

#include <algorithm>
#include <deque>

namespace desync::stg {

namespace {

/// Hash for markings (FNV-1a over bytes).
struct MarkingHash {
  std::size_t operator()(const Marking& m) const noexcept {
    std::size_t h = 1469598103934665603ull;
    for (std::uint8_t b : m) {
      h ^= b;
      h *= 1099511628211ull;
    }
    return h;
  }
};

}  // namespace

SignalIdx Stg::addSignal(std::string name, SignalKind kind) {
  auto it = signal_by_name_.find(name);
  if (it != signal_by_name_.end()) return it->second;
  SignalIdx idx = static_cast<SignalIdx>(signals_.size());
  signal_by_name_.emplace(name, idx);
  signals_.push_back(Signal{std::move(name), kind});
  return idx;
}

TransIdx Stg::addTransition(SignalIdx signal, bool rising) {
  if (signal >= signals_.size()) throw StgError("bad signal index");
  trans_.push_back(Transition{signal, rising, {}, {}});
  return static_cast<TransIdx>(trans_.size() - 1);
}

TransIdx Stg::addTransition(std::string_view label) {
  if (label.size() < 2 || (label.back() != '+' && label.back() != '-')) {
    throw StgError("bad transition label: " + std::string(label));
  }
  std::string sig(label.substr(0, label.size() - 1));
  SignalIdx s = addSignal(sig, SignalKind::kOutput);
  return addTransition(s, label.back() == '+');
}

PlaceIdx Stg::addPlace(std::uint8_t tokens) {
  place_tokens_.push_back(tokens);
  return static_cast<PlaceIdx>(place_tokens_.size() - 1);
}

void Stg::arcPT(PlaceIdx p, TransIdx t) { trans_.at(t).pre.push_back(p); }

void Stg::arcTP(TransIdx t, PlaceIdx p) { trans_.at(t).post.push_back(p); }

PlaceIdx Stg::connect(TransIdx from, TransIdx to, std::uint8_t tokens) {
  PlaceIdx p = addPlace(tokens);
  arcTP(from, p);
  arcPT(p, to);
  return p;
}

PlaceIdx Stg::connect(std::string_view from, std::string_view to,
                      std::uint8_t tokens) {
  TransIdx tf = transitionFor(from);
  TransIdx tt = transitionFor(to);
  return connect(tf, tt, tokens);
}

TransIdx Stg::transitionFor(std::string_view label) {
  if (label.size() < 2 || (label.back() != '+' && label.back() != '-')) {
    throw StgError("bad transition label: " + std::string(label));
  }
  std::string sig(label.substr(0, label.size() - 1));
  const bool rising = label.back() == '+';
  auto it = signal_by_name_.find(sig);
  if (it != signal_by_name_.end()) {
    for (TransIdx t = 0; t < trans_.size(); ++t) {
      if (trans_[t].signal == it->second && trans_[t].rising == rising) {
        return t;
      }
    }
  }
  return addTransition(label);
}

std::string Stg::transitionLabel(TransIdx t) const {
  const Transition& tr = trans_.at(t);
  return signals_.at(tr.signal).name + (tr.rising ? "+" : "-");
}

bool Stg::isEnabled(const Marking& m, TransIdx t) const {
  for (PlaceIdx p : trans_.at(t).pre) {
    if (m[p] == 0) return false;
  }
  return true;
}

std::vector<TransIdx> Stg::enabled(const Marking& m) const {
  std::vector<TransIdx> out;
  for (TransIdx t = 0; t < trans_.size(); ++t) {
    if (isEnabled(m, t)) out.push_back(t);
  }
  return out;
}

Marking Stg::fire(const Marking& m, TransIdx t) const {
  Marking next = m;
  for (PlaceIdx p : trans_.at(t).pre) {
    if (next[p] == 0) throw StgError("firing disabled transition");
    --next[p];
  }
  for (PlaceIdx p : trans_.at(t).post) {
    if (next[p] >= kBound) throw StgError("unbounded place");
    ++next[p];
  }
  return next;
}

namespace {

struct Explorer {
  const Stg& stg;
  std::size_t max_states;
  std::unordered_map<Marking, std::uint32_t, MarkingHash> id_of;
  std::vector<Marking> states;
  std::vector<std::vector<std::pair<TransIdx, std::uint32_t>>> edges;
  bool bounded = true;

  explicit Explorer(const Stg& s, std::size_t limit)
      : stg(s), max_states(limit) {}

  std::uint32_t intern(const Marking& m) {
    auto [it, inserted] =
        id_of.emplace(m, static_cast<std::uint32_t>(states.size()));
    if (inserted) {
      states.push_back(m);
      edges.emplace_back();
    }
    return it->second;
  }

  void run() {
    std::deque<std::uint32_t> work;
    work.push_back(intern(stg.initialMarking()));
    std::size_t processed = 0;
    while (!work.empty()) {
      std::uint32_t id = work.front();
      work.pop_front();
      if (processed++ > max_states) {
        throw StgError("state space exceeds max_states");
      }
      // `states` may reallocate while we expand; copy the marking.
      Marking m = states[id];
      for (TransIdx t : stg.enabled(m)) {
        Marking next;
        try {
          next = stg.fire(m, t);
        } catch (const StgError&) {
          bounded = false;
          continue;
        }
        std::size_t before = states.size();
        std::uint32_t nid = intern(next);
        edges[id].emplace_back(t, nid);
        if (states.size() > before) work.push_back(nid);
      }
    }
  }
};

/// Tarjan-free SCC count via Kosaraju (iterative) — returns true when the
/// whole graph is one SCC.
bool stronglyConnected(
    const std::vector<std::vector<std::pair<TransIdx, std::uint32_t>>>& edges) {
  const std::size_t n = edges.size();
  if (n == 0) return true;
  auto reach = [&](const auto& adj) {
    std::vector<bool> seen(n, false);
    std::vector<std::uint32_t> stack{0};
    seen[0] = true;
    std::size_t count = 1;
    while (!stack.empty()) {
      std::uint32_t v = stack.back();
      stack.pop_back();
      for (std::uint32_t w : adj[v]) {
        if (!seen[w]) {
          seen[w] = true;
          ++count;
          stack.push_back(w);
        }
      }
    }
    return count == n;
  };
  std::vector<std::vector<std::uint32_t>> fwd(n), rev(n);
  for (std::size_t v = 0; v < n; ++v) {
    for (auto [t, w] : edges[v]) {
      fwd[v].push_back(w);
      rev[w].push_back(static_cast<std::uint32_t>(v));
    }
  }
  return reach(fwd) && reach(rev);
}

}  // namespace

Reachability analyze(const Stg& stg, const ReachabilityOptions& opts) {
  Explorer ex(stg, opts.max_states);
  ex.run();

  Reachability r;
  r.num_states = ex.states.size();
  r.bounded = ex.bounded;
  r.transition_fired.assign(stg.numTransitions(), false);

  for (std::size_t id = 0; id < ex.states.size(); ++id) {
    const Marking& m = ex.states[id];
    std::vector<TransIdx> en = stg.enabled(m);
    if (en.empty()) {
      r.deadlock_free = false;
      r.live = false;
      if (r.violation.empty()) r.violation = "deadlock reached";
    }
    for (TransIdx t : en) r.transition_fired[t] = true;

    // Output persistency: firing t must not disable another enabled
    // non-input transition t2 (unless t and t2 are edges of the same
    // signal, which cannot be concurrently enabled in a consistent STG).
    for (TransIdx t : en) {
      Marking next;
      try {
        next = stg.fire(m, t);
      } catch (const StgError&) {
        continue;  // unboundedness already recorded by the explorer
      }
      for (TransIdx t2 : en) {
        if (t2 == t) continue;
        if (stg.signalKind(stg.transitionSignal(t2)) == SignalKind::kInput) {
          continue;
        }
        if (stg.transitionSignal(t2) == stg.transitionSignal(t)) continue;
        if (!stg.isEnabled(next, t2)) {
          r.output_persistent = false;
          if (r.violation.empty()) {
            r.violation = "firing " + stg.transitionLabel(t) + " disables " +
                          stg.transitionLabel(t2);
          }
        }
      }
    }
  }

  for (std::size_t t = 0; t < stg.numTransitions(); ++t) {
    if (!r.transition_fired[t]) {
      r.live = false;
      if (r.violation.empty()) {
        r.violation = "transition " +
                      stg.transitionLabel(static_cast<TransIdx>(t)) +
                      " never enabled";
      }
    }
  }
  if (r.live && !stronglyConnected(ex.edges)) {
    r.live = false;
    if (r.violation.empty()) {
      r.violation = "reachability graph not strongly connected";
    }
  }
  if (!r.bounded) {
    r.live = false;
    if (r.violation.empty()) r.violation = "net unbounded";
  }
  return r;
}

void forEachEdge(
    const Stg& stg,
    const std::function<void(const Marking&, TransIdx, const Marking&)>& visit,
    const ReachabilityOptions& opts) {
  Explorer ex(stg, opts.max_states);
  ex.run();
  for (std::size_t id = 0; id < ex.states.size(); ++id) {
    for (auto [t, nid] : ex.edges[id]) {
      visit(ex.states[id], t, ex.states[nid]);
    }
  }
}

}  // namespace desync::stg
