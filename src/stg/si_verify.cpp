#include "stg/si_verify.h"

#include <deque>
#include <unordered_map>

namespace desync::stg {
namespace {

struct State {
  std::vector<bool> values;  ///< one per circuit signal
  Marking marking;           ///< spec marking
  friend bool operator==(const State&, const State&) = default;
};

struct StateHash {
  std::size_t operator()(const State& s) const noexcept {
    std::size_t h = 1469598103934665603ull;
    for (bool b : s.values) {
      h ^= static_cast<std::size_t>(b) + 0x9e3779b9;
      h *= 1099511628211ull;
    }
    for (std::uint8_t m : s.marking) {
      h ^= m;
      h *= 1099511628211ull;
    }
    return h;
  }
};

}  // namespace

SiResult verifySpeedIndependent(const SiCircuit& circuit, const Stg& spec,
                                std::size_t max_states) {
  SiResult result;

  // --- signal table ----------------------------------------------------
  std::unordered_map<std::string, std::size_t> sig_index;
  std::vector<std::string> sig_names;
  auto internSig = [&](const std::string& n) {
    auto [it, inserted] = sig_index.emplace(n, sig_names.size());
    if (inserted) sig_names.push_back(n);
    return it->second;
  };
  for (const std::string& in : circuit.inputs) internSig(in);
  for (const GateSpec& g : circuit.gates) internSig(g.output);

  struct Gate {
    std::size_t out;
    std::vector<std::size_t> ins;
    const GateSpec* spec;
  };
  std::vector<Gate> gates;
  for (const GateSpec& g : circuit.gates) {
    Gate gg;
    gg.out = sig_index.at(g.output);
    for (const std::string& in : g.inputs) {
      auto it = sig_index.find(in);
      if (it == sig_index.end()) {
        result.stable_start = false;
        result.violation = "gate " + g.output + " reads undriven signal " + in;
        return result;
      }
      gg.ins.push_back(it->second);
    }
    gg.spec = &g;
    gates.push_back(std::move(gg));
  }

  // Map spec signals onto circuit signals.
  std::vector<int> spec_signal_of_circuit(sig_names.size(), -1);
  std::vector<bool> spec_signal_is_input(spec.numSignals(), false);
  for (std::size_t s = 0; s < spec.numSignals(); ++s) {
    const std::string& n = spec.signalName(static_cast<SignalIdx>(s));
    auto it = sig_index.find(n);
    if (it == sig_index.end()) {
      result.stable_start = false;
      result.violation = "spec signal " + n + " not present in circuit";
      return result;
    }
    spec_signal_of_circuit[it->second] = static_cast<int>(s);
    spec_signal_is_input[s] =
        spec.signalKind(static_cast<SignalIdx>(s)) == SignalKind::kInput;
  }

  // --- initial state -----------------------------------------------------
  State init;
  init.values.assign(sig_names.size(), false);
  for (std::size_t i = 0; i < circuit.inputs.size(); ++i) {
    init.values[sig_index.at(circuit.inputs[i])] =
        i < circuit.input_initial.size() && circuit.input_initial[i];
  }
  for (const Gate& g : gates) init.values[g.out] = g.spec->initial;
  init.marking = spec.initialMarking();

  auto gateTarget = [&](const Gate& g, const std::vector<bool>& values) {
    std::vector<bool> ins(g.ins.size());
    for (std::size_t i = 0; i < g.ins.size(); ++i) ins[i] = values[g.ins[i]];
    return g.spec->eval(ins);
  };
  auto excitedSet = [&](const std::vector<bool>& values) {
    std::vector<bool> ex(gates.size());
    for (std::size_t i = 0; i < gates.size(); ++i) {
      ex[i] = gateTarget(gates[i], values) != values[gates[i].out];
    }
    return ex;
  };

  // Note initial excitation (informational): gates excited at the start are
  // legitimate for closed self-starting networks — they simply fire as the
  // first exploration steps.
  {
    std::vector<bool> ex = excitedSet(init.values);
    for (std::size_t i = 0; i < gates.size(); ++i) {
      if (ex[i]) {
        result.stable_start = false;
        break;
      }
    }
  }

  // --- exploration ---------------------------------------------------------
  struct Visit {
    std::int64_t pred = -1;  ///< index of predecessor state
    std::string label;       ///< event that led here
  };
  std::unordered_map<State, std::size_t, StateHash> seen;
  std::vector<State> order;
  std::vector<Visit> visits;
  std::deque<std::size_t> work;
  seen.emplace(init, 0);
  order.push_back(init);
  visits.push_back(Visit{});
  work.push_back(0);

  std::size_t failing_state = 0;
  auto fail = [&](bool* flag, const std::string& msg) {
    *flag = false;
    if (result.violation.empty()) result.violation = msg;
  };

  while (!work.empty() && result.violation.empty()) {
    const std::size_t cur_idx = work.front();
    State cur = order[cur_idx];
    failing_state = cur_idx;
    work.pop_front();
    std::vector<bool> cur_ex = excitedSet(cur.values);

    struct Move {
      State next;
      int fired_gate = -1;  // -1 for environment moves
      std::string label;
    };
    std::vector<Move> moves;

    // Environment moves: spec input transitions.
    for (TransIdx t : spec.enabled(cur.marking)) {
      SignalIdx ss = spec.transitionSignal(t);
      if (!spec_signal_is_input[ss]) continue;
      std::size_t ci = sig_index.at(spec.signalName(ss));
      Move m;
      m.next.values = cur.values;
      m.next.values[ci] = spec.transitionRising(t);
      m.next.marking = spec.fire(cur.marking, t);
      m.fired_gate = -1;
      m.label = spec.transitionLabel(t);
      moves.push_back(std::move(m));
    }

    // Gate moves.
    for (std::size_t gi = 0; gi < gates.size(); ++gi) {
      if (!cur_ex[gi]) continue;
      const Gate& g = gates[gi];
      const bool new_value = !cur.values[g.out];
      Move m;
      m.next.values = cur.values;
      m.next.values[g.out] = new_value;
      m.fired_gate = static_cast<int>(gi);
      m.label = g.spec->output + (new_value ? "+" : "-");
      const int ss = spec_signal_of_circuit[g.out];
      if (ss >= 0 && !spec_signal_is_input[static_cast<std::size_t>(ss)]) {
        // Interface output: the spec must allow this edge now.
        bool allowed = false;
        for (TransIdx t : spec.enabled(cur.marking)) {
          if (spec.transitionSignal(t) == static_cast<SignalIdx>(ss) &&
              spec.transitionRising(t) == new_value) {
            m.next.marking = spec.fire(cur.marking, t);
            allowed = true;
            break;
          }
        }
        if (!allowed) {
          fail(&result.conforms,
               "circuit produces " + m.label + " not allowed by spec");
          break;
        }
      } else {
        m.next.marking = cur.marking;
      }
      moves.push_back(std::move(m));
    }
    if (!result.violation.empty()) break;

    if (moves.empty()) {
      // Quiescence is a deadlock when the spec expects progress — or when
      // the system is fully closed (no spec transitions at all), in which
      // case a controller network is supposed to oscillate forever.
      if (!spec.enabled(cur.marking).empty() || spec.numTransitions() == 0) {
        fail(&result.deadlock_free, "circuit deadlocks while spec can move");
      }
      continue;
    }

    // Semi-modularity: no move may withdraw another gate's excitation.
    for (const Move& m : moves) {
      std::vector<bool> next_ex = excitedSet(m.next.values);
      for (std::size_t gi = 0; gi < gates.size(); ++gi) {
        if (static_cast<int>(gi) == m.fired_gate) continue;
        if (cur_ex[gi] && !next_ex[gi]) {
          fail(&result.hazard_free,
               "hazard: " + m.label + " disables excited gate " +
                   gates[gi].spec->output);
        }
      }
      if (!result.violation.empty()) break;
    }
    if (!result.violation.empty()) break;

    for (Move& m : moves) {
      auto [it, inserted] = seen.emplace(m.next, order.size());
      if (inserted) {
        if (seen.size() > max_states) {
          throw StgError("speed-independent product too large");
        }
        order.push_back(m.next);
        visits.push_back(Visit{static_cast<std::int64_t>(cur_idx), m.label});
        work.push_back(it->second);
      }
    }
  }

  if (!result.violation.empty()) {
    // Reconstruct the event path to the failing state.
    std::vector<std::string> path;
    std::int64_t at = static_cast<std::int64_t>(failing_state);
    while (at >= 0 && !visits[static_cast<std::size_t>(at)].label.empty()) {
      path.push_back(visits[static_cast<std::size_t>(at)].label);
      at = visits[static_cast<std::size_t>(at)].pred;
    }
    result.trace.assign(path.rbegin(), path.rend());
  }
  result.states = seen.size();
  return result;
}

}  // namespace desync::stg
