#include "stg/protocols.h"

#include <deque>
#include <unordered_map>

namespace desync::stg {
namespace {

const char* evtLabel(Evt e, bool for_a_signal_named_a) {
  (void)for_a_signal_named_a;
  switch (e) {
    case Evt::kAp:
      return "A+";
    case Evt::kAm:
      return "A-";
    case Evt::kBp:
      return "B+";
    case Evt::kBm:
      return "B-";
  }
  return "?";
}

/// Is this a "forward" arc (from an A event to a B event)?  Forward arcs
/// model data readiness, backward arcs model space availability.
bool isForward(const ProtocolArc& a) {
  return (a.from == Evt::kAp || a.from == Evt::kAm) &&
         (a.to == Evt::kBp || a.to == Evt::kBm);
}

}  // namespace

const char* protocolName(Protocol p) {
  switch (p) {
    case Protocol::kFallDecoupled:
      return "fall-decoupled";
    case Protocol::kDesyncModel:
      return "de-synchronization";
    case Protocol::kSemiDecoupled:
      return "semi-decoupled";
    case Protocol::kSimple:
      return "simple";
    case Protocol::kNonOverlapping:
      return "non-overlapping";
  }
  return "?";
}

std::vector<ProtocolArc> protocolArcs(Protocol p) {
  using E = Evt;
  switch (p) {
    case Protocol::kFallDecoupled:
      // Decoupled closing edges: A may accept new data two tokens ahead of
      // B's captures.  Live but data can be overwritten (not
      // flow-equivalent), like the Furber&Day fully/rise-decoupled family.
      return {{E::kAp, E::kBp, 0}, {E::kBm, E::kAp, 2}};
    case Protocol::kDesyncModel:
      // The de-synchronization model: a latch may only close once the new
      // datum arrived (A+ -> B-) and may only reopen once the successor
      // captured (B- -> A+).  This is the maximally concurrent live +
      // flow-equivalent protocol; re-derived here by exhaustive lattice
      // search (see the ProtocolLattice test and bench_fig24_protocols).
      return {{E::kAp, E::kBm, 0}, {E::kBm, E::kAp, 1}};
    case Protocol::kSemiDecoupled:
      return {{E::kAp, E::kBp, 0}, {E::kBm, E::kAp, 1}};
    case Protocol::kSimple:
      return {{E::kAp, E::kBp, 0}, {E::kBp, E::kAm, 0}, {E::kBm, E::kAp, 1}};
    case Protocol::kNonOverlapping:
      // Simple protocol plus strict non-overlap (B may open only after A
      // closed).  Together with the 4-phase ack-before-close arc B+ -> A-
      // this forms a token-free cycle: the protocol deadlocks after the
      // first A+ — the "not live" classification of Fig 2.4.  (The figure's
      // "4 states" label counts the intended non-overlapping square cycle.)
      return {{E::kAp, E::kBp, 0},
              {E::kBp, E::kAm, 0},
              {E::kBm, E::kAp, 1},
              {E::kAm, E::kBp, 0}};
  }
  return {};
}

Stg makePairStg(Protocol p) { return makePairStg(protocolArcs(p)); }

Stg makePairStg(const std::vector<ProtocolArc>& arcs) {
  Stg stg;
  // Alternation cycles; both signals start low so x+ carries the token.
  stg.connect("A+", "A-", 0);
  stg.connect("A-", "A+", 1);
  stg.connect("B+", "B-", 0);
  stg.connect("B-", "B+", 1);
  for (const ProtocolArc& a : arcs) {
    stg.connect(evtLabel(a.from, true), evtLabel(a.to, true), a.marked);
  }
  return stg;
}

Stg makeRingStg(Protocol p, int n) {
  if (n < 2) throw StgError("ring needs at least 2 latches");
  Stg stg;
  auto label = [](int i, Evt e) {
    std::string s = "L" + std::to_string(i);
    s += (e == Evt::kAp || e == Evt::kBp) ? "+" : "-";
    return s;
  };
  for (int i = 0; i < n; ++i) {
    stg.connect(label(i, Evt::kAp), label(i, Evt::kAm), 0);
    stg.connect(label(i, Evt::kAm), label(i, Evt::kAp), 1);
  }
  const std::vector<ProtocolArc> arcs = protocolArcs(p);
  for (int i = 0; i < n; ++i) {
    const int up = i;
    const int down = (i + 1) % n;
    for (const ProtocolArc& a : arcs) {
      auto name = [&](Evt e) {
        const bool a_side = (e == Evt::kAp || e == Evt::kAm);
        const int latch = a_side ? up : down;
        std::string s = "L" + std::to_string(latch);
        s += (e == Evt::kAp || e == Evt::kBp) ? "+" : "-";
        return s;
      };
      // Forward arcs: marked iff the upstream latch is odd (slave outputs
      // hold valid reset data).  Backward arcs: keep template marking.
      std::uint8_t tokens = a.marked;
      if (isForward(a)) tokens = (up % 2 == 1) ? 1 : 0;
      stg.connect(name(a.from), name(a.to), tokens);
    }
  }
  return stg;
}

// ----------------------------------------------------- flow equivalence

namespace {

/// Monitor over a trace of A/B latch-enable edges.  Tracks relative datum
/// counters; all ids are kept relative to B's last committed datum.
struct Monitor {
  bool a_open = false;
  bool b_open = false;
  std::uint8_t n_a = 0;      ///< datum id at A's input side (relative)
  std::uint8_t a_latched = 0;  ///< datum id stored in A (relative)

  static constexpr std::uint8_t kCap = 6;

  friend bool operator==(const Monitor&, const Monitor&) = default;

  /// Datum currently visible at B's input.
  [[nodiscard]] std::uint8_t visible() const {
    return a_open ? n_a : a_latched;
  }

  /// Applies one edge; returns an error string on violation, empty if OK.
  std::string step(bool is_a, bool rising) {
    if (is_a) {
      if (rising) {
        a_open = true;
        if (n_a >= kCap) return "datum lag unbounded (A runs ahead of B)";
        ++n_a;  // a new datum enters the transparent latch
      } else {
        a_open = false;
        a_latched = n_a;
      }
      return {};
    }
    if (rising) {
      b_open = true;
      return {};
    }
    // B- : B commits the currently visible datum; the committed sequence
    // must be exactly 1, 2, 3, ... (relative: the visible id must be 1).
    b_open = false;
    const std::uint8_t commit = visible();
    if (commit == 0) {
      return "B re-latches an already committed datum (duplicate)";
    }
    if (commit > 1) {
      return "B skips a datum (overwriting): committed id " +
             std::to_string(int(commit)) + " expected 1";
    }
    // Rebase all counters on the new committed datum.
    n_a = static_cast<std::uint8_t>(n_a - 1);
    a_latched = static_cast<std::uint8_t>(a_latched - 1);
    return {};
  }
};

struct ProductState {
  Marking marking;
  Monitor mon;
  friend bool operator==(const ProductState&, const ProductState&) = default;
};

struct ProductHash {
  std::size_t operator()(const ProductState& s) const noexcept {
    std::size_t h = 1469598103934665603ull;
    for (std::uint8_t b : s.marking) {
      h ^= b;
      h *= 1099511628211ull;
    }
    h ^= static_cast<std::size_t>(s.mon.a_open) |
         (static_cast<std::size_t>(s.mon.b_open) << 1) |
         (static_cast<std::size_t>(s.mon.n_a) << 2) |
         (static_cast<std::size_t>(s.mon.a_latched) << 8);
    h *= 1099511628211ull;
    return h;
  }
};

}  // namespace

FlowEqResult checkFlowEquivalence(const Stg& stg, SignalIdx a, SignalIdx b) {
  FlowEqResult result;
  std::unordered_map<ProductState, bool, ProductHash> seen;
  std::deque<ProductState> work;
  ProductState init{stg.initialMarking(), Monitor{}};
  seen.emplace(init, true);
  work.push_back(init);

  while (!work.empty()) {
    ProductState cur = work.front();
    work.pop_front();
    for (TransIdx t : stg.enabled(cur.marking)) {
      ProductState next;
      next.marking = stg.fire(cur.marking, t);
      next.mon = cur.mon;
      const SignalIdx sig = stg.transitionSignal(t);
      if (sig == a || sig == b) {
        std::string err = next.mon.step(sig == a, stg.transitionRising(t));
        if (!err.empty()) {
          result.holds = false;
          result.violation = err;
          result.states = seen.size();
          return result;
        }
      }
      if (seen.emplace(next, true).second) {
        work.push_back(next);
        if (seen.size() > (1u << 22)) {
          throw StgError("flow-equivalence product too large");
        }
      }
    }
  }
  result.states = seen.size();
  return result;
}

FlowEqResult checkFlowEquivalence(Protocol p) {
  Stg stg = makePairStg(p);
  // Signals were created in order A, B by makePairStg.
  return checkFlowEquivalence(stg, 0, 1);
}

ProtocolClass classifyProtocol(Protocol p) {
  ProtocolClass c;
  c.protocol = p;
  Stg pair = makePairStg(p);
  Reachability pr = analyze(pair);
  c.pair_states = pr.num_states;
  c.pair_live = pr.live;
  Reachability rr = analyze(makeRingStg(p, 4));
  c.ring_live = rr.live;
  c.flow_equivalent = checkFlowEquivalence(p).holds;
  return c;
}

}  // namespace desync::stg
