#include "async/verify_adapter.h"

#include <map>
#include <unordered_map>
#include <vector>

#include "netlist/flatten.h"

namespace desync::async {

using netlist::Module;
using netlist::NetId;
using netlist::PortDir;

stg::SiCircuit toSiCircuit(const Module& module,
                           const liberty::Gatefile& gatefile,
                           const std::string& rst_name,
                           const std::map<std::string, bool>& input_init) {
  // Work on a flattened private copy.
  netlist::Design scratch;
  Module& flat = netlist::cloneModule(scratch, module);
  netlist::flatten(flat);

  stg::SiCircuit circuit;

  // Signal naming: net name, except nets bound to a port use the port name
  // (so specs can talk about "g" even when the net is "g_int").  When
  // several output ports share one driven net, the first gets the net's
  // signal and the others become identity "alias" gates so each port name
  // exists as a spec-checkable signal.
  std::unordered_map<std::uint32_t, std::string> signal_of_net;
  for (const netlist::Port& p : flat.ports()) {
    if (!p.net.valid()) continue;
    std::string pname(scratch.names().str(p.name));
    auto [it, inserted] = signal_of_net.emplace(p.net.value, pname);
    if (!inserted && p.dir == PortDir::kOutput) {
      stg::GateSpec alias;
      alias.output = pname;
      alias.inputs = {it->second};
      alias.eval = [](const std::vector<bool>& v) { return v[0]; };
      circuit.gates.push_back(std::move(alias));
    }
  }
  auto signalName = [&](NetId id) -> std::string {
    auto it = signal_of_net.find(id.value);
    if (it != signal_of_net.end()) return it->second;
    return std::string(flat.netName(id));
  };

  for (const netlist::Port& p : flat.ports()) {
    if (p.dir == PortDir::kInput && p.net.valid()) {
      std::string pname(scratch.names().str(p.name));
      auto init_it = input_init.find(pname);
      circuit.inputs.push_back(pname);
      circuit.input_initial.push_back(init_it != input_init.end() &&
                                      init_it->second);
    }
  }

  flat.forEachCell([&](netlist::CellId id) {
    std::string type(flat.cellType(id));
    const liberty::LibCell* lib = gatefile.library().findCell(type);
    if (lib == nullptr) {
      throw netlist::NetlistError("unknown cell type in controller: " + type);
    }
    if (lib->kind != liberty::CellKind::kCombinational) {
      throw netlist::NetlistError(
          "sequential cell in speed-independent circuit: " + type);
    }
    // Locate the output pin and its function.
    const liberty::LibPin* out_pin = nullptr;
    for (const liberty::LibPin& p : lib->pins) {
      if (p.dir == liberty::PinDir::kOutput) {
        out_pin = &p;
        break;
      }
    }
    if (out_pin == nullptr || out_pin->function.empty()) {
      throw netlist::NetlistError("cell without output function: " + type);
    }
    stg::GateSpec gate;
    // Output net.
    NetId out_net = flat.pinNet(id, out_pin->name);
    if (!out_net.valid()) return;  // dangling gate: ignore
    gate.output = signalName(out_net);
    // Inputs in the function's variable order.
    std::vector<std::string> vars = out_pin->function.vars();
    for (const std::string& v : vars) {
      NetId net = flat.pinNet(id, v);
      if (!net.valid()) {
        throw netlist::NetlistError("unconnected pin " + v + " on " +
                                    std::string(flat.cellName(id)));
      }
      const netlist::Net& n = flat.net(net);
      if (n.driver.isConst()) {
        // Fold constants by renaming to dedicated constant signals (added as
        // env inputs with fixed initial values below).
        gate.inputs.push_back(n.driver.kind == netlist::TermKind::kConst1
                                  ? "__const1"
                                  : "__const0");
      } else {
        gate.inputs.push_back(signalName(net));
      }
    }
    const liberty::BoolExpr* fn = &out_pin->function;
    gate.eval = [fn](const std::vector<bool>& v) { return fn->eval(v); };
    circuit.gates.push_back(std::move(gate));
  });

  // Constant rails, if referenced.
  bool need0 = false, need1 = false;
  for (const stg::GateSpec& g : circuit.gates) {
    for (const std::string& in : g.inputs) {
      need0 |= in == "__const0";
      need1 |= in == "__const1";
    }
  }
  if (need0) {
    circuit.inputs.push_back("__const0");
    circuit.input_initial.push_back(false);
  }
  if (need1) {
    circuit.inputs.push_back("__const1");
    circuit.input_initial.push_back(true);
  }

  // --- reset settling ---------------------------------------------------
  std::map<std::string, bool> values;
  for (std::size_t i = 0; i < circuit.inputs.size(); ++i) {
    values[circuit.inputs[i]] = circuit.input_initial[i];
  }
  values[rst_name] = true;  // no-op if the module has no rst port
  for (const stg::GateSpec& g : circuit.gates) values.emplace(g.output, false);

  auto sweep = [&]() {
    bool changed = false;
    for (const stg::GateSpec& g : circuit.gates) {
      std::vector<bool> ins;
      ins.reserve(g.inputs.size());
      for (const std::string& in : g.inputs) ins.push_back(values.at(in));
      bool v = g.eval(ins);
      if (values.at(g.output) != v) {
        values[g.output] = v;
        changed = true;
      }
    }
    return changed;
  };
  auto settle = [&](const char* phase) {
    for (int i = 0; i < 200; ++i) {
      if (!sweep()) return;
    }
    throw netlist::NetlistError(std::string("circuit does not settle ") +
                                phase + ": " + std::string(module.name()));
  };
  settle("under reset");
  // Release reset but do NOT re-settle: a closed controller network starts
  // oscillating at release, and those first excitations belong to the
  // verified state space.
  values[rst_name] = false;

  for (stg::GateSpec& g : circuit.gates) g.initial = values.at(g.output);
  return circuit;
}

}  // namespace desync::async
