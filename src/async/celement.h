// C-Muller element construction (thesis §2.4.3, §3.1.5).
//
// C-elements synchronize multiple requests/acknowledges: the output rises
// only when all inputs are high and falls only when all are low (Table 2.1).
// The library does not ship a C-element cell, so — exactly as the original
// flow did — they are built as composite modules out of standard cells:
// a MAJ3 gate with output feedback forms the 2-input element, wider elements
// are trees of 2-input ones, and resettable variants gate the output with
// the reset so the controller network initializes deterministically.
#pragma once

#include <string>

#include "liberty/gatefile.h"
#include "netlist/netlist.h"

namespace desync::async {

/// Reset behaviour of a generated C-element.
enum class ResetKind {
  kNone,   ///< plain C-element (state undefined at power-up)
  kLow,    ///< RST pin forces output 0
  kHigh,   ///< RST pin forces output 1
};

/// Returns the module name used for an n-input C-element with the given
/// reset kind, e.g. "DR_C2", "DR_C3_R0", "DR_C4_R1".
[[nodiscard]] std::string cElementName(int n_inputs, ResetKind reset);

/// Ensures the module for an n-input C-element exists in `design` and
/// returns it.  Ports: A0..A(n-1), Z, and RST when reset != kNone.
/// Supports 2..10 inputs (thesis §3.1.5).  Cells used: MAJ3, AN2B1, OR2.
netlist::Module& ensureCElement(netlist::Design& design,
                                const liberty::Gatefile& gatefile,
                                int n_inputs, ResetKind reset);

}  // namespace desync::async
