// Latch controllers (thesis §2.2, §3.1.3, Figs 2.3, 3.2, 4.5).
//
// A latch controller implements the 4-phase handshake that replaces the
// clock: ri/ai toward the predecessors, ro/ao toward the successors, g
// driving the region's latches and rst for initialization (Fig 2.3).
//
// Two controllers are provided:
//
//  * kSimple — the classic Muller-pipeline controller, a single C-element
//    g = C(ri, !ao) with ai = ro = g.  Minimal, but its input and output
//    handshakes are fully coupled: a master/slave ring of two stages holding
//    one data token deadlocks, which is why desynchronization needs
//    decoupled controllers (exercised as an ablation).
//
//  * kSemiDecoupled — the controller family used by the flow (after Furber &
//    Day).  The input acknowledge fires as soon as the latch opens
//    (thesis Fig 4.5: "ri+ -> ai+") and the output request is produced from
//    a separate occupancy bit, so a master/slave pair holding one token is
//    live.  Gate-level structure (d = occupancy, a = input ack, r = output
//    request):
//        g  = ri AND !d                 latch opens on request while empty
//        a  = C(g, ri)                  ai: early ack, 4-phase via ri-
//        d  = (d AND !ao) OR g          SR occupancy: set by g+, cleared by
//                                       successor's ack (AOI21 + NOR/OR)
//        r  = C(d, !ao)                 ro: request while holding and
//                                       successor free ("ao- -> ro+")
//    Hold safety relies on the latch pulse closing before new data races
//    through the previous stage, the same assumption the paper makes
//    (§4.5.1: "hold constraints are automatically satisfied ... sufficiently
//    wide pulses"); the event-driven simulator validates it with real
//    delays.
//
// Both controllers come in two reset flavours: kEmpty (no datum; used for
// master latches) and kFull (holding valid reset data and requesting
// downstream; used for slave latches, whose flip-flop reset values are the
// initial data tokens of the network).
#pragma once

#include <string>

#include "liberty/gatefile.h"
#include "netlist/netlist.h"
#include "stg/stg.h"

namespace desync::async {

enum class ControllerKind {
  kSimple,
  kSemiDecoupled,
  /// Fully-decoupled (after Furber & Day): the input-side latch cycle no
  /// longer waits for the output handshake's return-to-zero — only the
  /// *request* does (4-phase on the wire), so RTZ overlaps computation.
  /// Structure: a = C(C(g,ri), !r) (ack waits the local request RTZ),
  /// d = (d & !ao) | a as an OAI/inverter SR pair reading ao directly,
  /// g = C(ri, !d), r = C(d, !ao).
  kFullyDecoupled,
};

/// Reset occupancy of the controller.
enum class ControllerReset {
  kEmpty,  ///< master side: no datum at reset
  kFull,   ///< slave side: holds reset datum, ro asserted at reset
};

/// Module name, e.g. "DR_CTRL_SD_E", "DR_CTRL_SIMPLE_F".
[[nodiscard]] std::string controllerName(ControllerKind kind,
                                         ControllerReset reset);

/// Ensures the controller module exists in `design` and returns it.
/// Ports: ri, ao, rst (inputs); ai, ro, g (outputs).
netlist::Module& ensureController(netlist::Design& design,
                                  const liberty::Gatefile& gatefile,
                                  ControllerKind kind, ControllerReset reset);

/// Builds the interface STG specification of one semi-decoupled controller
/// for speed-independent verification: ri/ao are environment inputs, ai, ro
/// and g are checked outputs.  Models the kEmpty reset state.
[[nodiscard]] stg::Stg semiDecoupledSpec();

/// Spec of the simple (Muller C-element) controller, kEmpty reset state.
[[nodiscard]] stg::Stg simpleControllerSpec();

/// Builds a closed ring of 2*n_pairs controllers alternating kEmpty (even,
/// master) / kFull (odd, slave), each ro->ri / ai->ao wired to the next.
/// Ports: rst (input) and g0..g(2n-1) (outputs, for observability).  Used to
/// verify network liveness and hazard freedom under arbitrary gate delays.
netlist::Module& buildControllerRing(netlist::Design& design,
                                     const liberty::Gatefile& gatefile,
                                     ControllerKind kind, int n_pairs);

/// Same, with an explicit occupancy pattern: full_mask[i] selects the kFull
/// flavour for controller i.  Used by ablations exploring token placements.
netlist::Module& buildControllerRing(netlist::Design& design,
                                     const liberty::Gatefile& gatefile,
                                     ControllerKind kind,
                                     const std::vector<bool>& full_mask,
                                     const std::string& name);

}  // namespace desync::async
