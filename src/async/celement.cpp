#include "async/celement.h"

#include <vector>

namespace desync::async {

using netlist::Design;
using netlist::Module;
using netlist::NetId;
using netlist::PortDir;

std::string cElementName(int n_inputs, ResetKind reset) {
  std::string name = "DR_C" + std::to_string(n_inputs);
  if (reset == ResetKind::kLow) name += "_R0";
  if (reset == ResetKind::kHigh) name += "_R1";
  return name;
}

namespace {

/// Builds the primitive 2-input element inside `m`: a MAJ3 whose third input
/// is the (post-reset-gate) output.  Returns the output net.
NetId buildC2Core(Module& m, NetId a, NetId b, NetId rst, ResetKind reset,
                  const std::string& prefix) {
  NetId z = m.addNet(prefix + "z");
  if (reset == ResetKind::kNone) {
    m.addCell(prefix + "maj", "MAJ3",
              {{"A", PortDir::kInput, a},
               {"B", PortDir::kInput, b},
               {"C", PortDir::kInput, z},
               {"Z", PortDir::kOutput, z}});
    return z;
  }
  NetId raw = m.addNet(prefix + "raw");
  m.addCell(prefix + "maj", "MAJ3",
            {{"A", PortDir::kInput, a},
             {"B", PortDir::kInput, b},
             {"C", PortDir::kInput, z},
             {"Z", PortDir::kOutput, raw}});
  if (reset == ResetKind::kLow) {
    // z = raw & !rst : held at 0 while reset is asserted.
    m.addCell(prefix + "rstg", "AN2B1",
              {{"A", PortDir::kInput, raw},
               {"B", PortDir::kInput, rst},
               {"Z", PortDir::kOutput, z}});
  } else {
    // z = raw | rst : held at 1 while reset is asserted.
    m.addCell(prefix + "rstg", "OR2",
              {{"A", PortDir::kInput, raw},
               {"B", PortDir::kInput, rst},
               {"Z", PortDir::kOutput, z}});
  }
  return z;
}

}  // namespace

Module& ensureCElement(Design& design, const liberty::Gatefile& gatefile,
                       int n_inputs, ResetKind reset) {
  (void)gatefile;  // cell names are fixed; gatefile kept for symmetry/checks
  if (n_inputs < 2 || n_inputs > 10) {
    throw netlist::NetlistError("C-element fan-in out of range (2..10)");
  }
  std::string name = cElementName(n_inputs, reset);
  if (Module* existing = design.findModule(name)) return *existing;

  Module& m = design.addModule(name);
  std::vector<NetId> level;
  for (int i = 0; i < n_inputs; ++i) {
    NetId in = m.addNet("A" + std::to_string(i));
    m.addPort("A" + std::to_string(i), PortDir::kInput, in);
    level.push_back(in);
  }
  NetId rst;
  if (reset != ResetKind::kNone) {
    rst = m.addNet("RST");
    m.addPort("RST", PortDir::kInput, rst);
  }

  // Reduce pairwise until a single output remains.  Odd operand carried.
  int stage = 0;
  while (level.size() > 1) {
    std::vector<NetId> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      std::string prefix =
          "s" + std::to_string(stage) + "_" + std::to_string(i / 2) + "_";
      next.push_back(
          buildC2Core(m, level[i], level[i + 1], rst, reset, prefix));
    }
    if (level.size() % 2 == 1) next.push_back(level.back());
    level = std::move(next);
    ++stage;
  }

  m.addPort("Z", PortDir::kOutput, level[0]);
  return m;
}

}  // namespace desync::async
