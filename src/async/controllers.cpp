#include "async/controllers.h"

#include "async/celement.h"

namespace desync::async {

using netlist::Design;
using netlist::Module;
using netlist::NetId;
using netlist::PortDir;

std::string controllerName(ControllerKind kind, ControllerReset reset) {
  std::string name = kind == ControllerKind::kSimple ? "DR_CTRL_SIMPLE"
                     : kind == ControllerKind::kSemiDecoupled
                         ? "DR_CTRL_SD"
                         : "DR_CTRL_FD";
  name += reset == ControllerReset::kEmpty ? "_E" : "_F";
  return name;
}

namespace {

/// Common port scaffolding; returns the nets in declaration order.
struct CtrlNets {
  NetId ri, ao, rst, ai, ro, g;
};

CtrlNets addPorts(Module& m) {
  CtrlNets n;
  n.ri = m.addNet("ri");
  n.ao = m.addNet("ao");
  n.rst = m.addNet("rst");
  m.addPort("ri", PortDir::kInput, n.ri);
  m.addPort("ao", PortDir::kInput, n.ao);
  m.addPort("rst", PortDir::kInput, n.rst);
  return n;
}

void buildSimple(Design& design, const liberty::Gatefile& gatefile, Module& m,
                 ControllerReset reset) {
  CtrlNets n = addPorts(m);
  NetId aoN = m.addNet("aoN");
  m.addCell("u_aon", "IV",
            {{"A", PortDir::kInput, n.ao}, {"Z", PortDir::kOutput, aoN}});
  // g = C(ri, !ao), reset per flavour.
  ResetKind rk =
      reset == ControllerReset::kEmpty ? ResetKind::kLow : ResetKind::kHigh;
  Module& c2 = ensureCElement(design, gatefile, 2, rk);
  NetId g = m.addNet("g_int");
  m.addCell("u_c", std::string(c2.name()),
            {{"A0", PortDir::kInput, n.ri},
             {"A1", PortDir::kInput, aoN},
             {"RST", PortDir::kInput, n.rst},
             {"Z", PortDir::kOutput, g}});
  // ai and ro are buffered copies of g: distinct output nets keep the
  // module flattenable (one inner net cannot bind three outer nets) and
  // reflect real output drive buffering.
  NetId ai = m.addNet("ai_int");
  NetId ro = m.addNet("ro_int");
  m.addCell("u_ai", "BF",
            {{"A", PortDir::kInput, g}, {"Z", PortDir::kOutput, ai}});
  m.addCell("u_ro", "BF",
            {{"A", PortDir::kInput, g}, {"Z", PortDir::kOutput, ro}});
  m.addPort("ai", PortDir::kOutput, ai);
  m.addPort("ro", PortDir::kOutput, ro);
  m.addPort("g", PortDir::kOutput, g);
}

void buildSemiDecoupled(Design& design, const liberty::Gatefile& gatefile,
                        Module& m, ControllerReset reset) {
  CtrlNets n = addPorts(m);
  const bool full = reset == ControllerReset::kFull;

  NetId aoN = m.addNet("aoN");
  m.addCell("u_aon", "IV",
            {{"A", PortDir::kInput, n.ao}, {"Z", PortDir::kOutput, aoN}});

  n.g = m.addNet("g_int");
  NetId d = m.addNet("d");
  NetId dn = m.addNet("dn");
  NetId a = m.addNet("a");
  NetId e = m.addNet("e");

  // "Ready" condition: empty and successor idle (e = aoN & !d).  Sensing
  // ao- through the shared aoN inverter (rather than ao directly) keeps the
  // inverter inside the acknowledged cycle: the occupancy-clear gate dn
  // reads aoN, so a new capture may only start after aoN actually rose —
  // otherwise a stale aoN misclears the next datum (found by the
  // speed-independent verifier).
  m.addCell("u_e", "AN2B1",
            {{"A", PortDir::kInput, aoN},
             {"B", PortDir::kInput, d},
             {"Z", PortDir::kOutput, e}});

  // Latch enable as a C-element: opens on a request while ready, closes
  // only once the request withdrew AND the occupancy latched — so neither
  // edge of the pulse can be withdrawn by a faster environment (verified
  // semi-modular).
  Module& c2r0 = ensureCElement(design, gatefile, 2, ResetKind::kLow);
  m.addCell("u_g", std::string(c2r0.name()),
            {{"A0", PortDir::kInput, n.ri},
             {"A1", PortDir::kInput, e},
             {"RST", PortDir::kInput, n.rst},
             {"Z", PortDir::kOutput, n.g}});

  // Input acknowledge: a = C(g, ri).  The occupancy bit is set by a (not by
  // g) so the latch pulse cannot terminate before the acknowledge
  // C-element caught it.
  m.addCell("u_a", std::string(c2r0.name()),
            {{"A0", PortDir::kInput, n.g},
             {"A1", PortDir::kInput, n.ri},
             {"RST", PortDir::kInput, n.rst},
             {"Z", PortDir::kOutput, a}});

  // Occupancy: d = (d & !ao) | a.  AOI21 computes !((d & aoN) + a); the
  // reset gate closes the feedback loop and applies rst.  d clears only
  // once the input handshake released (a-) and the successor captured
  // (ao+), which is the overwrite protection of the protocol.
  m.addCell("u_dn", "AOI21",
            {{"A", PortDir::kInput, d},
             {"B", PortDir::kInput, aoN},
             {"C", PortDir::kInput, a},
             {"Z", PortDir::kOutput, dn}});
  if (full) {
    // d = !dn | rst
    m.addCell("u_d", "OR2B1",
              {{"A", PortDir::kInput, n.rst},
               {"B", PortDir::kInput, dn},
               {"Z", PortDir::kOutput, d}});
  } else {
    // d = !dn & !rst
    m.addCell("u_d", "NR2",
              {{"A", PortDir::kInput, dn},
               {"B", PortDir::kInput, n.rst},
               {"Z", PortDir::kOutput, d}});
  }

  // Output request: r = C(d, !ao); the full flavour requests at reset
  // ("ao- -> ro+", thesis Fig 4.5).
  Module& c2r = ensureCElement(design, gatefile, 2,
                               full ? ResetKind::kHigh : ResetKind::kLow);
  NetId r = m.addNet("r");
  m.addCell("u_r", std::string(c2r.name()),
            {{"A0", PortDir::kInput, d},
             {"A1", PortDir::kInput, aoN},
             {"RST", PortDir::kInput, n.rst},
             {"Z", PortDir::kOutput, r}});

  m.addPort("ai", PortDir::kOutput, a);
  m.addPort("ro", PortDir::kOutput, r);
  m.addPort("g", PortDir::kOutput, n.g);
}

void buildFullyDecoupled(Design& design, const liberty::Gatefile& gatefile,
                         Module& m, ControllerReset reset) {
  CtrlNets n = addPorts(m);
  const bool full = reset == ControllerReset::kFull;

  NetId aoN = m.addNet("aoN");
  m.addCell("u_aon", "IV",
            {{"A", PortDir::kInput, n.ao}, {"Z", PortDir::kOutput, aoN}});
  n.g = m.addNet("g_int");
  NetId d = m.addNet("d");
  NetId dN = m.addNet("dN");
  NetId a = m.addNet("a");
  NetId aN = m.addNet("aN");
  NetId r = m.addNet("r");
  NetId rN = m.addNet("rN");

  // Latch pulse: opens on a request while empty, closes once the occupancy
  // latched (and the request withdrew).
  Module& c2r0 = ensureCElement(design, gatefile, 2, ResetKind::kLow);
  m.addCell("u_g", std::string(c2r0.name()),
            {{"A0", PortDir::kInput, n.ri},
             {"A1", PortDir::kInput, dN},
             {"RST", PortDir::kInput, n.rst},
             {"Z", PortDir::kOutput, n.g}});

  // Input acknowledge: a = C(g, ri, !r) — the third input orders the
  // acknowledge release after the local request's return-to-zero, which is
  // what keeps d's set/clear edges acknowledged without gating the latch on
  // the *external* ao- (the fully-decoupled property).
  NetId gri = m.addNet("gri");
  m.addCell("u_a0", std::string(c2r0.name()),
            {{"A0", PortDir::kInput, n.g},
             {"A1", PortDir::kInput, n.ri},
             {"RST", PortDir::kInput, n.rst},
             {"Z", PortDir::kOutput, gri}});
  m.addCell("u_a", std::string(c2r0.name()),
            {{"A0", PortDir::kInput, gri},
             {"A1", PortDir::kInput, rN},
             {"RST", PortDir::kInput, n.rst},
             {"Z", PortDir::kOutput, a}});
  m.addCell("u_an", "IV",
            {{"A", PortDir::kInput, a}, {"Z", PortDir::kOutput, aN}});

  // Occupancy SR: d = (d & !ao) | a, built as dN = !((!d | ao) & !a)'s
  // complement pair: dN_next = (dN + ao) * aN; d = IV(dN) closes the loop
  // reading ao directly (no stale inverter in the clear path).
  if (full) {
    // Reset forces d = 1 (dN = 0): dnn = OAI21 then NOR with... use the
    // complement: d = IV(dN); force dN low with rst via AN2B1.
    NetId dnn = m.addNet("dnn");
    m.addCell("u_dn0", "OAI21",
              {{"A", PortDir::kInput, dN},
               {"B", PortDir::kInput, n.ao},
               {"C", PortDir::kInput, aN},
               {"Z", PortDir::kOutput, dnn}});
    // dN = !dnn & !rst
    NetId dnb = m.addNet("dnb");
    m.addCell("u_dn1", "IV",
              {{"A", PortDir::kInput, dnn}, {"Z", PortDir::kOutput, dnb}});
    m.addCell("u_dn2", "AN2B1",
              {{"A", PortDir::kInput, dnb},
               {"B", PortDir::kInput, n.rst},
               {"Z", PortDir::kOutput, dN}});
    m.addCell("u_d", "IV",
              {{"A", PortDir::kInput, dN}, {"Z", PortDir::kOutput, d}});
  } else {
    // dN_next = ((dN + ao) * aN) | rst  (reset forces dN = 1, d = 0).
    NetId dnn = m.addNet("dnn");
    m.addCell("u_dn0", "OAI21",
              {{"A", PortDir::kInput, dN},
               {"B", PortDir::kInput, n.ao},
               {"C", PortDir::kInput, aN},
               {"Z", PortDir::kOutput, dnn}});
    // dnn = !dN_next(no-rst); dN = !dnn | rst = OR2B1(rst, dnn)
    m.addCell("u_dn1", "OR2B1",
              {{"A", PortDir::kInput, n.rst},
               {"B", PortDir::kInput, dnn},
               {"Z", PortDir::kOutput, dN}});
    m.addCell("u_d", "IV",
              {{"A", PortDir::kInput, dN}, {"Z", PortDir::kOutput, d}});
  }

  // Output request: 4-phase on the wire (r+ waits ao-).
  Module& c2r = ensureCElement(design, gatefile, 2,
                               full ? ResetKind::kHigh : ResetKind::kLow);
  m.addCell("u_r", std::string(c2r.name()),
            {{"A0", PortDir::kInput, d},
             {"A1", PortDir::kInput, aoN},
             {"RST", PortDir::kInput, n.rst},
             {"Z", PortDir::kOutput, r}});
  m.addCell("u_rn", "IV",
            {{"A", PortDir::kInput, r}, {"Z", PortDir::kOutput, rN}});

  m.addPort("ai", PortDir::kOutput, a);
  m.addPort("ro", PortDir::kOutput, r);
  m.addPort("g", PortDir::kOutput, n.g);
}

}  // namespace

Module& ensureController(Design& design, const liberty::Gatefile& gatefile,
                         ControllerKind kind, ControllerReset reset) {
  std::string name = controllerName(kind, reset);
  if (Module* existing = design.findModule(name)) return *existing;
  Module& m = design.addModule(name);
  if (kind == ControllerKind::kSimple) {
    buildSimple(design, gatefile, m, reset);
  } else if (kind == ControllerKind::kFullyDecoupled) {
    buildFullyDecoupled(design, gatefile, m, reset);
  } else {
    buildSemiDecoupled(design, gatefile, m, reset);
  }
  // Controllers must never be resynthesized (thesis §4.6.2); backends may
  // only resize.
  m.forEachCell([&](netlist::CellId id) { m.cell(id).size_only = true; });
  return m;
}

Module& buildControllerRing(Design& design, const liberty::Gatefile& gatefile,
                            ControllerKind kind, int n_pairs) {
  if (n_pairs < 1) throw netlist::NetlistError("ring needs >= 1 pair");
  std::vector<bool> mask;
  for (int i = 0; i < 2 * n_pairs; ++i) mask.push_back(i % 2 == 1);
  std::string name = std::string("DR_RING_") +
                     (kind == ControllerKind::kSimple          ? "SIMPLE"
                      : kind == ControllerKind::kFullyDecoupled ? "FD"
                                                                 : "SD") +
                     "_" + std::to_string(2 * n_pairs);
  return buildControllerRing(design, gatefile, kind, mask, name);
}

Module& buildControllerRing(Design& design, const liberty::Gatefile& gatefile,
                            ControllerKind kind,
                            const std::vector<bool>& full_mask,
                            const std::string& name) {
  const int n = static_cast<int>(full_mask.size());
  if (n < 2) throw netlist::NetlistError("ring needs >= 2 controllers");
  if (Module* existing = design.findModule(name)) return *existing;

  Module& empty_ctrl =
      ensureController(design, gatefile, kind, ControllerReset::kEmpty);
  Module& full_ctrl =
      ensureController(design, gatefile, kind, ControllerReset::kFull);

  Module& m = design.addModule(name);
  NetId rst = m.addNet("rst");
  m.addPort("rst", PortDir::kInput, rst);

  std::vector<NetId> req(static_cast<std::size_t>(n)),
      ack(static_cast<std::size_t>(n)), g(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    req[static_cast<std::size_t>(i)] =
        m.addNet("r" + std::to_string(i));  // ro of i -> ri of i+1
    ack[static_cast<std::size_t>(i)] =
        m.addNet("k" + std::to_string(i));  // ai of i+1 -> ao of i
    g[static_cast<std::size_t>(i)] = m.addNet("g" + std::to_string(i));
  }
  for (int i = 0; i < n; ++i) {
    const int prev = (i + n - 1) % n;
    const Module& proto =
        full_mask[static_cast<std::size_t>(i)] ? full_ctrl : empty_ctrl;
    m.addCell("ctl" + std::to_string(i), std::string(proto.name()),
              {{"ri", PortDir::kInput, req[static_cast<std::size_t>(prev)]},
               {"ao", PortDir::kInput, ack[static_cast<std::size_t>(i)]},
               {"rst", PortDir::kInput, rst},
               {"ai", PortDir::kOutput, ack[static_cast<std::size_t>(prev)]},
               {"ro", PortDir::kOutput, req[static_cast<std::size_t>(i)]},
               {"g", PortDir::kOutput, g[static_cast<std::size_t>(i)]}});
  }
  for (int i = 0; i < n; ++i) {
    m.addPort("g" + std::to_string(i), PortDir::kOutput,
              g[static_cast<std::size_t>(i)]);
  }
  return m;
}

stg::Stg semiDecoupledSpec() {
  stg::Stg s;
  s.addSignal("ri", stg::SignalKind::kInput);
  s.addSignal("ao", stg::SignalKind::kInput);
  s.addSignal("ai", stg::SignalKind::kOutput);
  s.addSignal("ro", stg::SignalKind::kOutput);
  s.addSignal("g", stg::SignalKind::kOutput);

  // Latch cycle: g+ on ri+ while ready (empty, successor idle); the pulse
  // ends only after the request withdrew and the occupancy latched.
  s.connect("ri+", "g+", 0);
  s.connect("ao-", "g+", 1);
  s.connect("g+", "ai+", 0);
  s.connect("ai+", "g-", 0);   // d+ (after a+) lets the C-element fall
  s.connect("ri-", "g-", 0);
  // Input handshake: early acknowledge (thesis Fig 4.5 "ri+ -> ai+" via the
  // latch pulse); release after both ri- and the pulse ended.
  s.connect("ai+", "ri-", 0);   // environment
  s.connect("ri-", "ai-", 0);
  s.connect("g-", "ai-", 0);
  s.connect("ai-", "ri+", 1);   // environment (token: ri may rise first)
  // Output handshake from the occupancy bit (set by ai+): request once
  // holding data and the successor is free; withdraw after the successor
  // acknowledged and the occupancy cleared (needs both ao+ and ai-).
  s.connect("ai+", "ro+", 0);
  s.connect("ao-", "ro+", 1);   // "ao- -> ro+" (thesis Fig 4.5)
  s.connect("ro+", "ao+", 0);   // environment
  s.connect("ao+", "ro-", 0);
  s.connect("ai-", "ro-", 0);
  s.connect("ro-", "ao-", 0);   // environment
  s.connect("ro-", "ro+", 1);
  // Re-opening: needs the datum delivered (occupancy cleared after ai- and
  // ao+, then the full return-to-zero via the marked ao- arc above) and the
  // previous pulse/input handshake done.
  s.connect("ai-", "g+", 1);
  s.connect("g-", "g+", 1);
  return s;
}

stg::Stg simpleControllerSpec() {
  stg::Stg s;
  s.addSignal("ri", stg::SignalKind::kInput);
  s.addSignal("ao", stg::SignalKind::kInput);
  s.addSignal("ai", stg::SignalKind::kOutput);
  s.addSignal("ro", stg::SignalKind::kOutput);
  s.addSignal("g", stg::SignalKind::kOutput);
  // g = C(ri, !ao); ai = ro = g: all three outputs switch together.
  // Spec: g+ after ri+ & ao-; g- after ri- & ao+.
  s.connect("ri+", "g+", 0);
  s.connect("ao-", "g+", 1);
  s.connect("ri+", "ai+", 0);
  s.connect("ao-", "ai+", 1);
  s.connect("ri+", "ro+", 0);
  s.connect("ao-", "ro+", 1);
  // environment
  s.connect("ai+", "ri-", 0);
  s.connect("ri-", "g-", 0);
  s.connect("ri-", "ai-", 0);
  s.connect("ri-", "ro-", 0);
  s.connect("ro+", "ao+", 0);
  s.connect("ao+", "g-", 0);
  s.connect("ao+", "ai-", 0);
  s.connect("ao+", "ro-", 0);
  s.connect("ai-", "ri+", 1);
  s.connect("ro-", "ao-", 0);
  // alternation
  s.connect("g+", "g-", 0);
  s.connect("g-", "g+", 1);
  s.connect("ai+", "ai-", 0);
  s.connect("ai-", "ai+", 1);
  s.connect("ro+", "ro-", 0);
  s.connect("ro-", "ro+", 1);
  return s;
}

}  // namespace desync::async
