// Matched delay elements (thesis §2.4.4, §3.1.4, Fig 2.9).
//
// Delay elements mimic the critical-path delay of a region's combinational
// cloud on the request path.  For 4-phase handshakes they are asymmetric
// (slow rise, fast fall): a chain of AND gates where every stage also sees
// the raw input, so a rising edge ripples through the whole chain while a
// falling edge resets every stage in one gate delay.  An optional 8-input
// multiplexer exposes intermediate taps so the effective delay can be
// calibrated after layout (thesis §5.2.2, Fig 5.3's "delay selection").
#pragma once

#include <string>

#include "liberty/gatefile.h"
#include "netlist/netlist.h"

namespace desync::async {

struct DelayElementSpec {
  int levels = 8;          ///< AND/buffer stages in the chain (1..200)
  bool asymmetric = true;  ///< false: symmetric (buffer chain, 2-phase use)
  int mux_taps = 0;        ///< 0 = fixed; 8 = calibration mux with taps
};

/// Module name for a given spec, e.g. "DR_DEL_A24" / "DR_DEL_S10" /
/// "DR_DEL_A24_M8".
[[nodiscard]] std::string delayElementName(const DelayElementSpec& spec);

/// Ensures the delay element module exists and returns it.
/// Ports: A (in), Z (out), and S0..S(log2(mux_taps)-1) when muxed.
/// The muxed variant's tap k (selected by S=k) passes through
/// round(levels*(k+1)/mux_taps) chain stages, so selection 0 is the
/// shortest delay and mux_taps-1 the longest.
netlist::Module& ensureDelayElement(netlist::Design& design,
                                    const liberty::Gatefile& gatefile,
                                    const DelayElementSpec& spec);

}  // namespace desync::async
