// Bridges gate-level netlists to the speed-independent verifier.
//
// Controllers and C-elements are ordinary (combinational + feedback) netlist
// modules; this adapter flattens them, turns every cell into a GateSpec
// whose function comes from the Liberty truth table, and derives the
// post-reset initial values by actually simulating the reset: rst is held
// high, the network settles, rst is released, and the settled values become
// the verification start state.
#pragma once

#include <map>
#include <string>

#include "liberty/gatefile.h"
#include "netlist/netlist.h"
#include "stg/si_verify.h"

namespace desync::async {

/// Builds an SiCircuit from `module` (which is flattened on a copy; the
/// original is untouched).  `env_inputs` are the module ports driven by the
/// verification environment; the port named `rst_name` (if present) is used
/// for reset settling and then tied low.  Signal names are net names; the
/// environment inputs keep their port names.
///
/// Throws NetlistError when the module contains sequential cells or a gate
/// network that does not settle under reset.
stg::SiCircuit toSiCircuit(const netlist::Module& module,
                           const liberty::Gatefile& gatefile,
                           const std::string& rst_name = "rst",
                           const std::map<std::string, bool>& input_init = {});

}  // namespace desync::async
