#include "async/delay_element.h"

#include <cmath>
#include <vector>

namespace desync::async {

using netlist::Design;
using netlist::Module;
using netlist::NetId;
using netlist::PortDir;

std::string delayElementName(const DelayElementSpec& spec) {
  std::string name = "DR_DEL_";
  name += spec.asymmetric ? "A" : "S";
  name += std::to_string(spec.levels);
  if (spec.mux_taps > 0) name += "_M" + std::to_string(spec.mux_taps);
  return name;
}

Module& ensureDelayElement(Design& design, const liberty::Gatefile& gatefile,
                           const DelayElementSpec& spec) {
  (void)gatefile;
  if (spec.levels < 1 || spec.levels > 200) {
    throw netlist::NetlistError("delay element levels out of range (1..200)");
  }
  if (spec.mux_taps != 0 && spec.mux_taps != 2 && spec.mux_taps != 4 &&
      spec.mux_taps != 8) {
    throw netlist::NetlistError("mux_taps must be 0, 2, 4 or 8");
  }
  std::string name = delayElementName(spec);
  if (Module* existing = design.findModule(name)) return *existing;

  Module& m = design.addModule(name);
  NetId in = m.addNet("A");
  m.addPort("A", PortDir::kInput, in);

  // The chain.  Stage i output: asymmetric -> AN2(in, prev); symmetric ->
  // BF(prev).
  std::vector<NetId> stages;
  NetId prev = in;
  for (int i = 0; i < spec.levels; ++i) {
    NetId out = m.addNet("d" + std::to_string(i));
    if (spec.asymmetric) {
      m.addCell("u" + std::to_string(i), "AN2",
                {{"A", PortDir::kInput, in},
                 {"B", PortDir::kInput, prev},
                 {"Z", PortDir::kOutput, out}});
    } else {
      m.addCell("u" + std::to_string(i), "BF",
                {{"A", PortDir::kInput, prev},
                 {"Z", PortDir::kOutput, out}});
    }
    stages.push_back(out);
    prev = out;
  }

  if (spec.mux_taps == 0) {
    m.addPort("Z", PortDir::kOutput, stages.back());
    return m;
  }

  // Tap selection: tap k passes round(levels*(k+1)/taps) stages.
  std::vector<NetId> taps;
  for (int k = 0; k < spec.mux_taps; ++k) {
    int idx = static_cast<int>(std::lround(
                  static_cast<double>(spec.levels) * (k + 1) / spec.mux_taps)) -
              1;
    if (idx < 0) idx = 0;
    if (idx >= spec.levels) idx = spec.levels - 1;
    taps.push_back(stages[static_cast<std::size_t>(idx)]);
  }

  // Select ports S0 (LSB) .. S(n-1).
  int select_bits = spec.mux_taps == 8 ? 3 : spec.mux_taps == 4 ? 2 : 1;
  std::vector<NetId> sel;
  for (int s = 0; s < select_bits; ++s) {
    NetId n = m.addNet("S" + std::to_string(s));
    m.addPort("S" + std::to_string(s), PortDir::kInput, n);
    sel.push_back(n);
  }

  // MUX21 tree, level s selects by bit s.
  std::vector<NetId> level = taps;
  for (int s = 0; s < select_bits; ++s) {
    std::vector<NetId> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      NetId out = m.addNet("m" + std::to_string(s) + "_" +
                           std::to_string(i / 2));
      m.addCell("mx" + std::to_string(s) + "_" + std::to_string(i / 2),
                "MUX21",
                {{"A", PortDir::kInput, level[i]},
                 {"B", PortDir::kInput, level[i + 1]},
                 {"S", PortDir::kInput, sel[static_cast<std::size_t>(s)]},
                 {"Z", PortDir::kOutput, out}});
      next.push_back(out);
    }
    level = std::move(next);
  }

  m.addPort("Z", PortDir::kOutput, level[0]);
  return m;
}

}  // namespace desync::async
