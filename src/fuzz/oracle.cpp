#include "fuzz/oracle.h"

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <string_view>

#include "core/desync.h"
#include "core/parallel.h"
#include "fuzz/rng.h"
#include "netlist/verilog.h"
#include "liberty/bound.h"
#include "sim/flow_equivalence.h"
#include "sim/simulator.h"
#include "sim/stimulus.h"
#include "sim/symfe/symfe.h"
#include "sta/sta.h"

namespace desync::fuzz {

namespace fs = std::filesystem;

FaultKind parseFaultKind(const std::string& name) {
  if (name == "none") return FaultKind::kNone;
  if (name == "fully-decoupled") return FaultKind::kFullyDecoupled;
  if (name == "short-margin") return FaultKind::kShortMargin;
  if (name == "self-test") return FaultKind::kSelfTest;
  throw std::invalid_argument("unknown fault kind: " + name);
}

std::string faultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kFullyDecoupled: return "fully-decoupled";
    case FaultKind::kShortMargin: return "short-margin";
    case FaultKind::kSelfTest: return "self-test";
  }
  return "?";
}

namespace {

namespace nl = netlist;

core::DesyncOptions flowOptions(FaultKind fault) {
  core::DesyncOptions opt;
  opt.control.reset_port = "rst_n";
  opt.control.reset_active_low = true;
  if (fault == FaultKind::kFullyDecoupled) {
    opt.control.controller = async::ControllerKind::kFullyDecoupled;
  } else if (fault == FaultKind::kShortMargin) {
    opt.control.margin = 0.02;  // far below the region critical path
  }
  return opt;
}

std::size_t countSuffix(const nl::Module& m, std::string_view suffix) {
  std::size_t n = 0;
  m.forEachCell([&](nl::CellId id) {
    std::string_view name = m.cellName(id);
    if (name.size() >= suffix.size() &&
        name.substr(name.size() - suffix.size()) == suffix) {
      ++n;
    }
  });
  return n;
}

struct FlowRun {
  // Behind a pointer: modules hold a back-reference to their owning Design,
  // so the Design object must never move while `module` is alive.
  std::unique_ptr<nl::Design> design;
  nl::Module* module = nullptr;
  core::DesyncResult result;
  std::string verilog;  ///< converted module text
  std::string sdc;
};

/// Parses `text` and desynchronizes the top module.  Throws what the flow
/// throws.
FlowRun runConversion(const std::string& text,
                      const liberty::Gatefile& gatefile, FaultKind fault,
                      const std::string& cache_dir = {}, bool eco = false) {
  FlowRun run;
  run.design = std::make_unique<nl::Design>();
  nl::readVerilog(*run.design, text, gatefile);
  run.module = &run.design->top();
  core::DesyncOptions opt = flowOptions(fault);
  opt.flowdb.cache_dir = cache_dir;
  opt.flowdb.eco = eco;
  run.result = core::desynchronize(*run.design, *run.module, gatefile, opt);
  run.verilog = nl::writeVerilog(*run.module);
  run.sdc = run.result.sdc.toText();
  return run;
}

// --- check 9's scripted edit ----------------------------------------------

/// Comb gates that share the exact pin interface (A[,B] -> Z in the
/// builtin libraries), so swapping the type alone yields a valid cell.
const char* const* swapGroup(std::string_view type, std::size_t* size) {
  static const char* const k2in[] = {"ND2", "NR2", "AN2", "OR2", "EO", "EN"};
  static const char* const k1in[] = {"IV", "BF"};
  for (const char* t : k2in) {
    if (type == t) { *size = 6; return k2in; }
  }
  for (const char* t : k1in) {
    if (type == t) { *size = 2; return k1in; }
  }
  *size = 0;
  return nullptr;
}

/// Replaces cell `id` with a same-pin-interface gate of a different type
/// from its swap group.  Returns the edit description.
std::string swapCell(nl::Module& m, nl::CellId id, Rng& rng) {
  std::size_t group_size = 0;
  const char* const* group = swapGroup(m.cellType(id), &group_size);
  std::string_view new_type;
  for (;;) {
    new_type = group[rng.below(group_size)];
    if (new_type != m.cellType(id)) break;
  }
  const std::string old_name(m.cellName(id));
  const std::string old_type(m.cellType(id));
  std::vector<nl::Module::PinInit> pins;
  for (const nl::PinConn& p : m.cell(id).pins) {
    pins.push_back({std::string(m.design().names().str(p.name)), p.dir,
                    p.net});
  }
  m.removeCell(id);
  std::string name = old_name + "_ecosw";
  while (m.findCell(name).valid()) name += "x";
  m.addCell(name, new_type, pins);
  return "cell swap: " + old_name + " " + old_type + " -> " +
         std::string(new_type);
}

/// Reconnects one combinational input pin to a constant net.
std::string tiePin(nl::Module& m, nl::CellId cell, std::size_t pin_index,
                   Rng& rng) {
  const bool value = rng.chance(50);
  const std::string pin(m.design().names().str(m.cell(cell).pins[pin_index].name));
  m.connectPin(cell, pin_index, m.constNet(value));
  return "constant tie: " + std::string(m.cellName(cell)) + "." + pin +
         " = 1'b" + (value ? "1" : "0");
}

/// Renames net `id` by re-homing its driver and every sink onto a fresh
/// net, then removing the original.  Callers guarantee the driver and all
/// sinks are cell pins.
std::string renameNet(nl::Module& m, nl::NetId id) {
  const std::string old_name(m.netName(id));
  std::string name = old_name + "_ecor";
  while (m.findNet(name).valid()) name += "x";
  const nl::NetId fresh = m.addNet(name);
  const nl::TermRef driver = m.net(id).driver;
  m.connectPin(driver.cell(), driver.pin, fresh);
  const std::vector<nl::NetId> assign(m.net(id).sinks.size(), fresh);
  m.redistributeSinks(id, assign);
  m.removeNet(id);
  return "net rename: " + old_name + " -> " + name;
}

/// Applies one seeded small edit to `m` — a cell swap, a constant tie or a
/// net rename, whichever the seed picks first with a candidate available.
/// Returns the edit description, or "" when the design offers no site.
std::string applySeededEcoEdit(nl::Module& m,
                               const liberty::Gatefile& gatefile,
                               std::uint64_t seed) {
  Rng rng{seed * 0x9e3779b97f4a7c15ull + 1};
  const std::uint64_t first_kind = rng.below(3);
  for (std::uint64_t k = 0; k < 3; ++k) {
    switch ((first_kind + k) % 3) {
      case 0: {  // cell swap
        std::vector<nl::CellId> sites;
        m.forEachCell([&](nl::CellId id) {
          std::size_t n = 0;
          if (swapGroup(m.cellType(id), &n) != nullptr) sites.push_back(id);
        });
        if (sites.empty()) break;
        return swapCell(m, sites[rng.below(sites.size())], rng);
      }
      case 1: {  // constant tie
        std::vector<std::pair<nl::CellId, std::size_t>> sites;
        m.forEachCell([&](nl::CellId id) {
          if (gatefile.kind(m.cellType(id)) !=
              liberty::CellKind::kCombinational) {
            return;
          }
          const std::vector<nl::PinConn>& pins = m.cell(id).pins;
          for (std::size_t p = 0; p < pins.size(); ++p) {
            if (pins[p].dir == nl::PortDir::kInput && pins[p].net.valid()) {
              sites.push_back({id, p});
            }
          }
        });
        if (sites.empty()) break;
        const auto& [cell, pin] = sites[rng.below(sites.size())];
        return tiePin(m, cell, pin, rng);
      }
      case 2: {  // net rename
        std::vector<nl::NetId> sites;
        m.forEachNet([&](nl::NetId id) {
          const nl::Net& n = m.net(id);
          if (!n.driver.isCellPin()) return;
          for (const nl::TermRef& s : n.sinks) {
            if (!s.isCellPin()) return;
          }
          sites.push_back(id);
        });
        if (sites.empty()) break;
        return renameNet(m, sites[rng.below(sites.size())]);
      }
    }
  }
  return {};
}

}  // namespace

OracleVerdict runOracle(const std::string& verilog,
                        const liberty::Gatefile& gatefile,
                        const OracleOptions& options) {
  OracleVerdict v;
  auto fail = [&](std::string check, std::string detail) -> OracleVerdict& {
    v.ok = false;
    v.check = std::move(check);
    v.detail = std::move(detail);
    return v;
  };

  // 1. parse + input invariants -------------------------------------------
  nl::Design golden;
  try {
    nl::readVerilog(golden, verilog, gatefile);
    std::vector<std::string> problems = golden.top().checkInvariants();
    if (!problems.empty()) return fail("parse", problems.front());
  } catch (const std::exception& e) {
    return fail("parse", e.what());
  }
  v.cells = golden.top().numCells();

  // 2. the seven-pass flow -------------------------------------------------
  FlowRun flow;
  try {
    flow = runConversion(verilog, gatefile, options.fault);
  } catch (const core::FlowError& e) {
    return fail("flow", "pass " + e.pass() + ": " + e.what());
  } catch (const std::exception& e) {
    return fail("flow", e.what());
  }
  v.ffs_replaced = flow.result.substitution.ffs_replaced;
  v.regions = flow.result.regions.n_groups;

  // 3. self-test fault: fake failure that is monotone under shrinking ------
  if (options.fault == FaultKind::kSelfTest) {
    const std::size_t pairs = countSuffix(*flow.module, "_Ls");
    if (pairs >= 1) {
      return fail("self-test",
                  "injected self-test fault: " + std::to_string(pairs) +
                      " latch pair(s) present");
    }
  }

  // 4. flow equivalence against the synchronous golden run -----------------
  // Two routes (`--fe-mode`): the sampling vector route simulates both
  // sides and compares capture sequences; the symbolic route proves
  // per-register projection equivalence with the SAT core.  The vector
  // route is defined over storage elements (thesis §2.1): a design with no
  // replaced FF has nothing to compare, so it is reported *vacuous* —
  // never a silent pass (the shrinker could otherwise "preserve" an FE
  // failure by deleting every register).  The prove route is never
  // vacuous: comb-only designs get output-port miters instead.
  const bool run_vector = options.fe_mode != core::FeMode::kProve;
  const bool run_prove = options.fe_mode != core::FeMode::kSim;
  const double half_ns = std::max(flow.result.sync_min_period_ns, 0.1);
  if (run_vector && v.ffs_replaced == 0) {
    v.fe_vacuous = true;
    v.note = "flow-equivalence vector check vacuous: no flip-flops replaced";
  }
  if (run_vector && v.ffs_replaced > 0) try {
    const liberty::BoundModule bound(golden.top(), gatefile);
    sim::SyncStimulus st;
    st.half_period_ns = half_ns;
    st.cycles = options.cycles;
    const std::vector<sim::CaptureLog> sync_caps =
        sim::goldenSyncRun(bound, st, options.fe_engine);

    sim::Simulator desync_sim(*flow.module, gatefile);
    desync_sim.setInput("clk", sim::Val::k0);
    desync_sim.setInput("rst_n", sim::Val::k0);
    desync_sim.run(sim::nsToPs(20));
    desync_sim.setInput("rst_n", sim::Val::k1);
    desync_sim.run(desync_sim.now() +
                   sim::nsToPs(options.cycles * 4.0 * half_ns));

    sim::FlowEqReport fe = sim::checkFlowEquivalence(sync_caps, desync_sim);
    v.values_compared = fe.values_compared;
    if (!fe.equivalent) {
      return fail("flow-equivalence",
                  fe.details.empty() ? "mismatch" : fe.details.front());
    }
    if (v.ffs_replaced > 0 && fe.elements_compared == 0) {
      return fail("flow-equivalence",
                  "no sequential element produced comparable captures");
    }
  } catch (const std::exception& e) {
    return fail("flow-equivalence", std::string("simulation: ") + e.what());
  }

  if (run_prove) try {
    const liberty::BoundModule sync_bound(golden.top(), gatefile);
    const liberty::BoundModule desync_bound(*flow.module, gatefile);
    sim::symfe::SymfeOptions so;
    so.controller = options.fault == FaultKind::kFullyDecoupled
                        ? async::ControllerKind::kFullyDecoupled
                        : async::ControllerKind::kSemiDecoupled;
    sim::symfe::ProtocolInput pi;
    pi.n_groups = flow.result.regions.n_groups;
    for (const auto& cells : flow.result.regions.seq_cells) {
      pi.active.push_back(!cells.empty());
    }
    pi.preds = flow.result.ddg.preds;
    so.protocol = std::move(pi);
    const sim::symfe::SymfeReport rep =
        sim::symfe::proveFlowEquivalence(sync_bound, desync_bound, so);
    v.registers_proved = rep.proved;
    if (!rep.ok()) {
      for (const sim::symfe::RegisterProof& p : rep.registers) {
        if (p.verdict != sim::symfe::RegVerdict::kRefuted) continue;
        std::string detail =
            "prove: register " + p.name + " refuted: " + p.reason;
        if (p.cex) {
          // Every refutation must round-trip: the decoded vector replayed
          // on both engines must reproduce exactly the solver's verdict —
          // a divergence is an encoder/solver bug, reported as such.
          const sim::symfe::ReplayResult rr =
              sim::symfe::replayCounterexample(sync_bound, p.name, *p.cex,
                                              so);
          if (!rr.ran || !rr.matches_solver) {
            detail += " [internal: counterexample replay disagrees with "
                      "the solver model: " +
                      (rr.detail.empty() ? "no detail" : rr.detail) + "]";
          } else {
            detail += " (counterexample replayed on both engines)";
          }
        }
        return fail("flow-equivalence", detail);
      }
      for (const sim::symfe::RegisterProof& p : rep.registers) {
        if (p.verdict != sim::symfe::RegVerdict::kSkipped) continue;
        return fail("flow-equivalence",
                    "prove: register " + p.name + " skipped: " + p.reason);
      }
      std::string detail = "prove: " + rep.protocol.controller +
                           " protocol not admissible: " +
                           rep.protocol.violation;
      if (!rep.protocol.trace.empty()) {
        detail += " [trace:";
        for (const std::string& t : rep.protocol.trace) detail += " " + t;
        detail += "]";
      }
      return fail("flow-equivalence", detail);
    }
  } catch (const std::exception& e) {
    return fail("flow-equivalence", std::string("prove: ") + e.what());
  }

  // 5. converted-netlist invariants + latch bookkeeping --------------------
  {
    std::vector<std::string> problems = flow.module->checkInvariants();
    if (!problems.empty()) return fail("netlist", problems.front());
    const std::size_t masters = countSuffix(*flow.module, "_Lm");
    const std::size_t slaves = countSuffix(*flow.module, "_Ls");
    if (masters != v.ffs_replaced || slaves != v.ffs_replaced) {
      return fail("netlist",
                  "latch counts " + std::to_string(masters) + "/" +
                      std::to_string(slaves) + " do not match " +
                      std::to_string(v.ffs_replaced) + " replaced FFs");
    }
  }

  // 6. Verilog write -> read -> write fixpoint -----------------------------
  try {
    nl::Design d1;
    nl::readVerilog(d1, flow.verilog, gatefile);
    if (d1.top().numCells() != flow.module->numCells() ||
        d1.top().numPorts() != flow.module->numPorts()) {
      return fail("verilog-fixpoint", "cell/port counts changed on re-read");
    }
    const std::string w2 = nl::writeVerilog(d1.top());
    nl::Design d2;
    nl::readVerilog(d2, w2, gatefile);
    const std::string w3 = nl::writeVerilog(d2.top());
    if (w2 != w3) {
      return fail("verilog-fixpoint",
                  "write->read->write did not reach a fixpoint");
    }
    std::vector<std::string> problems = d2.top().checkInvariants();
    if (!problems.empty()) return fail("verilog-fixpoint", problems.front());
  } catch (const std::exception& e) {
    return fail("verilog-fixpoint", e.what());
  }

  // 7. STA / SDC sanity ----------------------------------------------------
  // Gated like flow equivalence: without a single substituted FF the flow
  // legitimately emits no latch clocks (and a cell-free module has no
  // reference period at all), so there is nothing to check.
  if (v.ffs_replaced > 0) try {
    const sta::SdcFile& sdc = flow.result.sdc;
    if (flow.result.sync_min_period_ns <= 0.0) {
      return fail("sta", "non-positive synchronous reference period");
    }
    if (sdc.clocks.size() != 2 || sdc.clocks[0].name != "ClkM" ||
        sdc.clocks[1].name != "ClkS") {
      return fail("sta", "expected exactly the ClkM/ClkS generated clocks");
    }
    for (const sta::SdcClock& c : sdc.clocks) {
      if (!(c.period_ns > 0.0) || c.targets.empty()) {
        return fail("sta", "generated clock " + c.name +
                               " has no period or no targets");
      }
    }
    sta::Sta sync_sta(golden.top(), gatefile);
    const double slack =
        sync_sta.worstSetupSlackNs(flow.result.sync_min_period_ns);
    if (slack < -1e-6) {
      return fail("sta", "negative synchronous slack " +
                             std::to_string(slack) +
                             " ns at the reference period");
    }
    sta::StaOptions so;
    so.disabled = sdc.disabled;
    sta::Sta desync_sta(*flow.module, gatefile, so);
    const double crit = desync_sta.criticalPathNs();
    if (!std::isfinite(crit) || crit <= 0.0) {
      return fail("sta", "converted-netlist critical path is " +
                             std::to_string(crit) + " ns");
    }
  } catch (const std::exception& e) {
    return fail("sta", e.what());
  }

  // 8. FlowDB: cold cached run and warm restored run are byte-identical ----
  if (options.check_flowdb) {
    const fs::path base = options.scratch_dir.empty()
                              ? fs::temp_directory_path()
                              : fs::path(options.scratch_dir);
    const fs::path dir =
        base / ("drdesync-fuzz-" +
                std::to_string(static_cast<unsigned long>(::getpid())) +
                "-cache");
    std::error_code ec;
    fs::remove_all(dir, ec);
    try {
      core::setThreadJobs(options.cold_jobs);
      FlowRun cold =
          runConversion(verilog, gatefile, options.fault, dir.string());
      core::setThreadJobs(options.warm_jobs);
      FlowRun warm =
          runConversion(verilog, gatefile, options.fault, dir.string());
      core::setThreadJobs(options.restore_jobs);
      const std::size_t n_passes = flow.result.flow.passes().size();
      if (cold.verilog != flow.verilog || cold.sdc != flow.sdc) {
        fail("flowdb", "cold cached run differs from the uncached run");
      } else if (warm.verilog != flow.verilog || warm.sdc != flow.sdc) {
        fail("flowdb",
             "warm restored run differs from the uncached run at --jobs " +
                 std::to_string(options.warm_jobs));
      } else if (warm.result.flow.cacheStats().hits != n_passes) {
        fail("flowdb",
             "warm run restored " +
                 std::to_string(warm.result.flow.cacheStats().hits) +
                 " of " + std::to_string(n_passes) + " passes");
      }
    } catch (const std::exception& e) {
      core::setThreadJobs(options.restore_jobs);
      fail("flowdb", e.what());
    }
    fs::remove_all(dir, ec);
    if (!v.ok) return v;
  }

  // 9. incremental ECO: a seeded small edit re-flows byte-identically ------
  // The edit (cell swap, constant tie or net rename — docs/eco.md) is
  // applied structurally and serialized once, so the cold flow and the
  // --eco flow consume the identical edited text.  The ECO tables are
  // primed on the ORIGINAL design; the warm run then diffs the edit and
  // must reproduce the cold flow of the edited design byte for byte (a
  // cold fallback inside --eco is fine — identity is the property, not
  // warmth).  When the edit makes the design un-flowable, both paths must
  // agree on failing.
  if (options.check_eco) {
    std::string edited_text;
    try {
      nl::Design edited;
      nl::readVerilog(edited, verilog, gatefile);
      v.eco_edit = applySeededEcoEdit(edited.top(), gatefile,
                                      options.eco_seed);
      if (!v.eco_edit.empty()) {
        edited_text = nl::writeVerilog(edited.top());
      } else if (v.note.empty()) {
        v.note = "eco check skipped: no applicable edit site";
      }
    } catch (const std::exception& e) {
      return fail("eco", std::string("edit application: ") + e.what());
    }
    if (!edited_text.empty()) {
      const fs::path base = options.scratch_dir.empty()
                                ? fs::temp_directory_path()
                                : fs::path(options.scratch_dir);
      const fs::path dir =
          base / ("drdesync-fuzz-" +
                  std::to_string(static_cast<unsigned long>(::getpid())) +
                  "-eco-cache");
      std::error_code ec;
      fs::remove_all(dir, ec);
      try {
        core::setThreadJobs(options.cold_jobs);
        bool cold_failed = false;
        std::string cold_error;
        FlowRun cold;
        try {
          cold = runConversion(edited_text, gatefile, options.fault);
        } catch (const std::exception& e) {
          cold_failed = true;
          cold_error = e.what();
        }
        runConversion(verilog, gatefile, options.fault, dir.string(),
                      /*eco=*/true);
        core::setThreadJobs(options.warm_jobs);
        bool eco_failed = false;
        std::string eco_error;
        FlowRun eco;
        try {
          eco = runConversion(edited_text, gatefile, options.fault,
                              dir.string(), /*eco=*/true);
        } catch (const std::exception& e) {
          eco_failed = true;
          eco_error = e.what();
        }
        core::setThreadJobs(options.restore_jobs);
        if (cold_failed != eco_failed) {
          fail("eco", cold_failed
                          ? "cold flow of the edited design failed (" +
                                cold_error + ") but the --eco re-flow "
                                "succeeded [" + v.eco_edit + "]"
                          : "--eco re-flow failed (" + eco_error +
                                ") but the cold flow of the edited design "
                                "succeeded [" + v.eco_edit + "]");
        } else if (!cold_failed &&
                   (nl::writeVerilog(*eco.design) !=
                        nl::writeVerilog(*cold.design) ||
                    eco.sdc != cold.sdc)) {
          // Whole-design comparison: --eco must also reproduce the helper
          // modules (delay elements, controllers) byte for byte, not just
          // the top — the CLI writes the full design.
          fail("eco",
               "--eco re-flow differs from the cold flow of the edited "
               "design at --jobs " + std::to_string(options.warm_jobs) +
                   " [" + v.eco_edit + "]");
        }
      } catch (const std::exception& e) {
        core::setThreadJobs(options.restore_jobs);
        fail("eco", std::string("priming run: ") + e.what() + " [" +
                        v.eco_edit + "]");
      }
      fs::remove_all(dir, ec);
      if (!v.ok) return v;
    }
  }

  return v;
}

}  // namespace desync::fuzz
