#include "fuzz/oracle.h"

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <string_view>

#include "core/desync.h"
#include "core/parallel.h"
#include "netlist/verilog.h"
#include "liberty/bound.h"
#include "sim/flow_equivalence.h"
#include "sim/simulator.h"
#include "sim/stimulus.h"
#include "sim/symfe/symfe.h"
#include "sta/sta.h"

namespace desync::fuzz {

namespace fs = std::filesystem;

FaultKind parseFaultKind(const std::string& name) {
  if (name == "none") return FaultKind::kNone;
  if (name == "fully-decoupled") return FaultKind::kFullyDecoupled;
  if (name == "short-margin") return FaultKind::kShortMargin;
  if (name == "self-test") return FaultKind::kSelfTest;
  throw std::invalid_argument("unknown fault kind: " + name);
}

std::string faultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kFullyDecoupled: return "fully-decoupled";
    case FaultKind::kShortMargin: return "short-margin";
    case FaultKind::kSelfTest: return "self-test";
  }
  return "?";
}

namespace {

namespace nl = netlist;

core::DesyncOptions flowOptions(FaultKind fault) {
  core::DesyncOptions opt;
  opt.control.reset_port = "rst_n";
  opt.control.reset_active_low = true;
  if (fault == FaultKind::kFullyDecoupled) {
    opt.control.controller = async::ControllerKind::kFullyDecoupled;
  } else if (fault == FaultKind::kShortMargin) {
    opt.control.margin = 0.02;  // far below the region critical path
  }
  return opt;
}

std::size_t countSuffix(const nl::Module& m, std::string_view suffix) {
  std::size_t n = 0;
  m.forEachCell([&](nl::CellId id) {
    std::string_view name = m.cellName(id);
    if (name.size() >= suffix.size() &&
        name.substr(name.size() - suffix.size()) == suffix) {
      ++n;
    }
  });
  return n;
}

struct FlowRun {
  // Behind a pointer: modules hold a back-reference to their owning Design,
  // so the Design object must never move while `module` is alive.
  std::unique_ptr<nl::Design> design;
  nl::Module* module = nullptr;
  core::DesyncResult result;
  std::string verilog;  ///< converted module text
  std::string sdc;
};

/// Parses `text` and desynchronizes the top module.  Throws what the flow
/// throws.
FlowRun runConversion(const std::string& text,
                      const liberty::Gatefile& gatefile, FaultKind fault,
                      const std::string& cache_dir = {}) {
  FlowRun run;
  run.design = std::make_unique<nl::Design>();
  nl::readVerilog(*run.design, text, gatefile);
  run.module = &run.design->top();
  core::DesyncOptions opt = flowOptions(fault);
  opt.flowdb.cache_dir = cache_dir;
  run.result = core::desynchronize(*run.design, *run.module, gatefile, opt);
  run.verilog = nl::writeVerilog(*run.module);
  run.sdc = run.result.sdc.toText();
  return run;
}

}  // namespace

OracleVerdict runOracle(const std::string& verilog,
                        const liberty::Gatefile& gatefile,
                        const OracleOptions& options) {
  OracleVerdict v;
  auto fail = [&](std::string check, std::string detail) -> OracleVerdict& {
    v.ok = false;
    v.check = std::move(check);
    v.detail = std::move(detail);
    return v;
  };

  // 1. parse + input invariants -------------------------------------------
  nl::Design golden;
  try {
    nl::readVerilog(golden, verilog, gatefile);
    std::vector<std::string> problems = golden.top().checkInvariants();
    if (!problems.empty()) return fail("parse", problems.front());
  } catch (const std::exception& e) {
    return fail("parse", e.what());
  }
  v.cells = golden.top().numCells();

  // 2. the seven-pass flow -------------------------------------------------
  FlowRun flow;
  try {
    flow = runConversion(verilog, gatefile, options.fault);
  } catch (const core::FlowError& e) {
    return fail("flow", "pass " + e.pass() + ": " + e.what());
  } catch (const std::exception& e) {
    return fail("flow", e.what());
  }
  v.ffs_replaced = flow.result.substitution.ffs_replaced;
  v.regions = flow.result.regions.n_groups;

  // 3. self-test fault: fake failure that is monotone under shrinking ------
  if (options.fault == FaultKind::kSelfTest) {
    const std::size_t pairs = countSuffix(*flow.module, "_Ls");
    if (pairs >= 1) {
      return fail("self-test",
                  "injected self-test fault: " + std::to_string(pairs) +
                      " latch pair(s) present");
    }
  }

  // 4. flow equivalence against the synchronous golden run -----------------
  // Two routes (`--fe-mode`): the sampling vector route simulates both
  // sides and compares capture sequences; the symbolic route proves
  // per-register projection equivalence with the SAT core.  The vector
  // route is defined over storage elements (thesis §2.1): a design with no
  // replaced FF has nothing to compare, so it is reported *vacuous* —
  // never a silent pass (the shrinker could otherwise "preserve" an FE
  // failure by deleting every register).  The prove route is never
  // vacuous: comb-only designs get output-port miters instead.
  const bool run_vector = options.fe_mode != core::FeMode::kProve;
  const bool run_prove = options.fe_mode != core::FeMode::kSim;
  const double half_ns = std::max(flow.result.sync_min_period_ns, 0.1);
  if (run_vector && v.ffs_replaced == 0) {
    v.fe_vacuous = true;
    v.note = "flow-equivalence vector check vacuous: no flip-flops replaced";
  }
  if (run_vector && v.ffs_replaced > 0) try {
    const liberty::BoundModule bound(golden.top(), gatefile);
    sim::SyncStimulus st;
    st.half_period_ns = half_ns;
    st.cycles = options.cycles;
    const std::vector<sim::CaptureLog> sync_caps =
        sim::goldenSyncRun(bound, st, options.fe_engine);

    sim::Simulator desync_sim(*flow.module, gatefile);
    desync_sim.setInput("clk", sim::Val::k0);
    desync_sim.setInput("rst_n", sim::Val::k0);
    desync_sim.run(sim::nsToPs(20));
    desync_sim.setInput("rst_n", sim::Val::k1);
    desync_sim.run(desync_sim.now() +
                   sim::nsToPs(options.cycles * 4.0 * half_ns));

    sim::FlowEqReport fe = sim::checkFlowEquivalence(sync_caps, desync_sim);
    v.values_compared = fe.values_compared;
    if (!fe.equivalent) {
      return fail("flow-equivalence",
                  fe.details.empty() ? "mismatch" : fe.details.front());
    }
    if (v.ffs_replaced > 0 && fe.elements_compared == 0) {
      return fail("flow-equivalence",
                  "no sequential element produced comparable captures");
    }
  } catch (const std::exception& e) {
    return fail("flow-equivalence", std::string("simulation: ") + e.what());
  }

  if (run_prove) try {
    const liberty::BoundModule sync_bound(golden.top(), gatefile);
    const liberty::BoundModule desync_bound(*flow.module, gatefile);
    sim::symfe::SymfeOptions so;
    so.controller = options.fault == FaultKind::kFullyDecoupled
                        ? async::ControllerKind::kFullyDecoupled
                        : async::ControllerKind::kSemiDecoupled;
    sim::symfe::ProtocolInput pi;
    pi.n_groups = flow.result.regions.n_groups;
    for (const auto& cells : flow.result.regions.seq_cells) {
      pi.active.push_back(!cells.empty());
    }
    pi.preds = flow.result.ddg.preds;
    so.protocol = std::move(pi);
    const sim::symfe::SymfeReport rep =
        sim::symfe::proveFlowEquivalence(sync_bound, desync_bound, so);
    v.registers_proved = rep.proved;
    if (!rep.ok()) {
      for (const sim::symfe::RegisterProof& p : rep.registers) {
        if (p.verdict != sim::symfe::RegVerdict::kRefuted) continue;
        std::string detail =
            "prove: register " + p.name + " refuted: " + p.reason;
        if (p.cex) {
          // Every refutation must round-trip: the decoded vector replayed
          // on both engines must reproduce exactly the solver's verdict —
          // a divergence is an encoder/solver bug, reported as such.
          const sim::symfe::ReplayResult rr =
              sim::symfe::replayCounterexample(sync_bound, p.name, *p.cex,
                                              so);
          if (!rr.ran || !rr.matches_solver) {
            detail += " [internal: counterexample replay disagrees with "
                      "the solver model: " +
                      (rr.detail.empty() ? "no detail" : rr.detail) + "]";
          } else {
            detail += " (counterexample replayed on both engines)";
          }
        }
        return fail("flow-equivalence", detail);
      }
      for (const sim::symfe::RegisterProof& p : rep.registers) {
        if (p.verdict != sim::symfe::RegVerdict::kSkipped) continue;
        return fail("flow-equivalence",
                    "prove: register " + p.name + " skipped: " + p.reason);
      }
      std::string detail = "prove: " + rep.protocol.controller +
                           " protocol not admissible: " +
                           rep.protocol.violation;
      if (!rep.protocol.trace.empty()) {
        detail += " [trace:";
        for (const std::string& t : rep.protocol.trace) detail += " " + t;
        detail += "]";
      }
      return fail("flow-equivalence", detail);
    }
  } catch (const std::exception& e) {
    return fail("flow-equivalence", std::string("prove: ") + e.what());
  }

  // 5. converted-netlist invariants + latch bookkeeping --------------------
  {
    std::vector<std::string> problems = flow.module->checkInvariants();
    if (!problems.empty()) return fail("netlist", problems.front());
    const std::size_t masters = countSuffix(*flow.module, "_Lm");
    const std::size_t slaves = countSuffix(*flow.module, "_Ls");
    if (masters != v.ffs_replaced || slaves != v.ffs_replaced) {
      return fail("netlist",
                  "latch counts " + std::to_string(masters) + "/" +
                      std::to_string(slaves) + " do not match " +
                      std::to_string(v.ffs_replaced) + " replaced FFs");
    }
  }

  // 6. Verilog write -> read -> write fixpoint -----------------------------
  try {
    nl::Design d1;
    nl::readVerilog(d1, flow.verilog, gatefile);
    if (d1.top().numCells() != flow.module->numCells() ||
        d1.top().numPorts() != flow.module->numPorts()) {
      return fail("verilog-fixpoint", "cell/port counts changed on re-read");
    }
    const std::string w2 = nl::writeVerilog(d1.top());
    nl::Design d2;
    nl::readVerilog(d2, w2, gatefile);
    const std::string w3 = nl::writeVerilog(d2.top());
    if (w2 != w3) {
      return fail("verilog-fixpoint",
                  "write->read->write did not reach a fixpoint");
    }
    std::vector<std::string> problems = d2.top().checkInvariants();
    if (!problems.empty()) return fail("verilog-fixpoint", problems.front());
  } catch (const std::exception& e) {
    return fail("verilog-fixpoint", e.what());
  }

  // 7. STA / SDC sanity ----------------------------------------------------
  // Gated like flow equivalence: without a single substituted FF the flow
  // legitimately emits no latch clocks (and a cell-free module has no
  // reference period at all), so there is nothing to check.
  if (v.ffs_replaced > 0) try {
    const sta::SdcFile& sdc = flow.result.sdc;
    if (flow.result.sync_min_period_ns <= 0.0) {
      return fail("sta", "non-positive synchronous reference period");
    }
    if (sdc.clocks.size() != 2 || sdc.clocks[0].name != "ClkM" ||
        sdc.clocks[1].name != "ClkS") {
      return fail("sta", "expected exactly the ClkM/ClkS generated clocks");
    }
    for (const sta::SdcClock& c : sdc.clocks) {
      if (!(c.period_ns > 0.0) || c.targets.empty()) {
        return fail("sta", "generated clock " + c.name +
                               " has no period or no targets");
      }
    }
    sta::Sta sync_sta(golden.top(), gatefile);
    const double slack =
        sync_sta.worstSetupSlackNs(flow.result.sync_min_period_ns);
    if (slack < -1e-6) {
      return fail("sta", "negative synchronous slack " +
                             std::to_string(slack) +
                             " ns at the reference period");
    }
    sta::StaOptions so;
    so.disabled = sdc.disabled;
    sta::Sta desync_sta(*flow.module, gatefile, so);
    const double crit = desync_sta.criticalPathNs();
    if (!std::isfinite(crit) || crit <= 0.0) {
      return fail("sta", "converted-netlist critical path is " +
                             std::to_string(crit) + " ns");
    }
  } catch (const std::exception& e) {
    return fail("sta", e.what());
  }

  // 8. FlowDB: cold cached run and warm restored run are byte-identical ----
  if (options.check_flowdb) {
    const fs::path base = options.scratch_dir.empty()
                              ? fs::temp_directory_path()
                              : fs::path(options.scratch_dir);
    const fs::path dir =
        base / ("drdesync-fuzz-" +
                std::to_string(static_cast<unsigned long>(::getpid())) +
                "-cache");
    std::error_code ec;
    fs::remove_all(dir, ec);
    try {
      core::setThreadJobs(options.cold_jobs);
      FlowRun cold =
          runConversion(verilog, gatefile, options.fault, dir.string());
      core::setThreadJobs(options.warm_jobs);
      FlowRun warm =
          runConversion(verilog, gatefile, options.fault, dir.string());
      core::setThreadJobs(options.restore_jobs);
      const std::size_t n_passes = flow.result.flow.passes().size();
      if (cold.verilog != flow.verilog || cold.sdc != flow.sdc) {
        fail("flowdb", "cold cached run differs from the uncached run");
      } else if (warm.verilog != flow.verilog || warm.sdc != flow.sdc) {
        fail("flowdb",
             "warm restored run differs from the uncached run at --jobs " +
                 std::to_string(options.warm_jobs));
      } else if (warm.result.flow.cacheStats().hits != n_passes) {
        fail("flowdb",
             "warm run restored " +
                 std::to_string(warm.result.flow.cacheStats().hits) +
                 " of " + std::to_string(n_passes) + " passes");
      }
    } catch (const std::exception& e) {
      core::setThreadJobs(options.restore_jobs);
      fail("flowdb", e.what());
    }
    fs::remove_all(dir, ec);
    if (!v.ok) return v;
  }

  return v;
}

}  // namespace desync::fuzz
