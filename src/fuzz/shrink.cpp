#include "fuzz/shrink.h"

#include <algorithm>
#include <functional>
#include <vector>

#include "netlist/netlist.h"
#include "netlist/verilog.h"

namespace desync::fuzz {

namespace {

namespace nl = netlist;

/// Deletes cells whose outputs nobody reads, then orphaned nets, to a
/// fixpoint.  Ports count as readers (they are net sinks).
void sweepDead(nl::Module& m) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (nl::CellId id : m.cellIds()) {
      bool read = false;
      std::vector<nl::NetId> outs;
      for (const nl::PinConn& p : m.cell(id).pins) {
        if (p.dir != nl::PortDir::kOutput || !p.net.valid()) continue;
        outs.push_back(p.net);
        if (!m.net(p.net).sinks.empty()) read = true;
      }
      if (read) continue;
      m.removeCell(id);
      for (nl::NetId n : outs) {
        if (m.net(n).sinks.empty()) m.removeNet(n);
      }
      changed = true;
    }
  }
  // Constant-net dedup: repeated rounds of parse -> tie-to-zero -> write
  // would otherwise pile up one fresh const net per round.
  for (const nl::TermKind kind :
       {nl::TermKind::kConst0, nl::TermKind::kConst1}) {
    std::vector<nl::NetId> consts;
    m.forEachNet([&](nl::NetId id) {
      if (m.net(id).driver.kind == kind) consts.push_back(id);
    });
    for (std::size_t i = 1; i < consts.size(); ++i) {
      m.mergeNetInto(consts[i], consts[0]);
    }
  }
  // Orphan nets: no reader, and no driver or only a constant one.
  std::vector<nl::NetId> orphans;
  m.forEachNet([&](nl::NetId id) {
    const nl::Net& n = m.net(id);
    if (n.sinks.empty() &&
        (n.driver.kind == nl::TermKind::kNone || n.driver.isConst())) {
      orphans.push_back(id);
    }
  });
  for (nl::NetId n : orphans) m.removeNet(n);
}

/// Removes cell `id`, re-pointing every net it drove at constant zero.
void tieCellLow(nl::Module& m, nl::CellId id) {
  std::vector<nl::NetId> outs;
  for (const nl::PinConn& p : m.cell(id).pins) {
    if (p.dir == nl::PortDir::kOutput && p.net.valid()) outs.push_back(p.net);
  }
  m.removeCell(id);
  for (nl::NetId n : outs) m.mergeNetInto(n, m.constNet(false));
}

/// Removes cell `id`, short-circuiting its first output net to its first
/// connected input net.  Returns false when the cell has no such pair.
bool bypassCell(nl::Module& m, nl::CellId id) {
  nl::NetId in;
  nl::NetId out;
  for (const nl::PinConn& p : m.cell(id).pins) {
    if (!p.net.valid()) continue;
    if (p.dir == nl::PortDir::kInput && !in.valid()) in = p.net;
    if (p.dir == nl::PortDir::kOutput && !out.valid()) out = p.net;
  }
  if (!in.valid() || !out.valid() || in == out) return false;
  std::vector<nl::NetId> extra;
  for (const nl::PinConn& p : m.cell(id).pins) {
    if (p.dir == nl::PortDir::kOutput && p.net.valid() && p.net != out) {
      extra.push_back(p.net);
    }
  }
  m.removeCell(id);
  m.mergeNetInto(out, in);
  for (nl::NetId n : extra) m.mergeNetInto(n, m.constNet(false));
  return true;
}

/// Parse -> mutate -> sweep -> write.  Returns "" when the mutation failed
/// or produced no change, so callers just skip the candidate.
std::string applyMutation(const std::string& text,
                          const liberty::Gatefile& gatefile,
                          const std::function<bool(nl::Module&)>& mutate) {
  try {
    nl::Design d;
    nl::readVerilog(d, text, gatefile);
    nl::Module& m = d.top();
    if (!mutate(m)) return {};
    sweepDead(m);
    std::string out = nl::writeVerilog(m);
    if (out == text) return {};
    return out;
  } catch (const std::exception&) {
    return {};
  }
}

std::size_t countCells(const std::string& text,
                       const liberty::Gatefile& gatefile) {
  nl::Design d;
  nl::readVerilog(d, text, gatefile);
  return d.top().numCells();
}

}  // namespace

ShrinkResult shrink(const std::string& verilog,
                    const liberty::Gatefile& gatefile,
                    const ShrinkOptions& options) {
  ShrinkResult r;
  r.verilog = verilog;

  OracleOptions oopt = options.oracle;
  OracleVerdict first = runOracle(verilog, gatefile, oopt);
  r.evals = 1;
  if (first.ok) return r;  // nothing to shrink
  r.failing = true;
  r.check = first.check;
  r.detail = first.detail;
  r.initial_cells = first.cells;
  // The FlowDB and ECO checks are the slowest (extra full flows each);
  // skip them while shrinking unless one is the very failure being
  // preserved.  The ECO edit seed itself is never changed, so a preserved
  // "eco" failure keeps replaying the same scripted edit.
  if (first.check != "flowdb") oopt.check_flowdb = false;
  if (first.check != "eco") oopt.check_eco = false;

  // Accepts `candidate` when it fails the same check.
  auto keeps_failure = [&](const std::string& candidate) {
    if (candidate.empty() || r.evals >= options.max_evals) return false;
    ++r.evals;
    OracleVerdict v = runOracle(candidate, gatefile, oopt);
    if (v.ok || v.check != r.check) return false;
    r.verilog = candidate;
    r.detail = v.detail;
    return true;
  };

  bool progress = true;
  while (progress && r.evals < options.max_evals) {
    progress = false;

    // Phase 1: tie0 over cell chunks, ddmin-style (chunk halves to 1).
    std::size_t n = countCells(r.verilog, gatefile);
    for (std::size_t chunk = std::max<std::size_t>(n / 2, 1); chunk >= 1;
         chunk /= 2) {
      bool chunk_hit = true;
      while (chunk_hit && r.evals < options.max_evals) {
        chunk_hit = false;
        n = countCells(r.verilog, gatefile);
        if (n == 0) break;
        for (std::size_t start = 0; start < n; start += chunk) {
          std::string candidate =
              applyMutation(r.verilog, gatefile, [&](nl::Module& m) {
                std::vector<nl::CellId> ids = m.cellIds();
                const std::size_t end = std::min(start + chunk, ids.size());
                if (start >= ids.size()) return false;
                for (std::size_t i = start; i < end; ++i) {
                  tieCellLow(m, ids[i]);
                }
                return true;
              });
          if (keeps_failure(candidate)) {
            progress = true;
            chunk_hit = true;
            break;  // cell ids shifted; re-enumerate at this chunk size
          }
          if (r.evals >= options.max_evals) break;
        }
      }
      if (chunk == 1) break;
    }

    // Phase 2: bypass single cells (keeps the through-path alive where
    // tie0 would change the preserved check).
    std::size_t i = 0;
    while (r.evals < options.max_evals) {
      n = countCells(r.verilog, gatefile);
      if (i >= n) break;
      std::string candidate =
          applyMutation(r.verilog, gatefile, [&](nl::Module& m) {
            std::vector<nl::CellId> ids = m.cellIds();
            return i < ids.size() && bypassCell(m, ids[i]);
          });
      if (keeps_failure(candidate)) {
        progress = true;  // same index now names the next cell
      } else {
        ++i;
      }
    }
  }

  r.final_cells = countCells(r.verilog, gatefile);
  return r;
}

}  // namespace desync::fuzz
