// Differential end-to-end flow oracle.
//
// One oracle run takes a synchronous gate-level netlist (as Verilog text,
// the fuzzing pipeline's exchange format), pushes it through the complete
// seven-pass desynchronization flow and cross-checks every invariant the
// repo guarantees, in a fixed order (the run stops at the first failure, so
// a verdict's `check` name is stable and the shrinker can preserve it):
//
//   1. "parse"            — the input parses and passes checkInvariants()
//   2. "flow"             — desynchronize() completes without FlowError
//   3. "self-test"        — (fault injection only, see FaultKind::kSelfTest)
//   4. "flow-equivalence" — the desynchronized circuit stores exactly the
//                           value sequences of the synchronous golden
//                           simulation (thesis §2.1); vacuous when the flow
//                           replaced no FF (a design without storage has no
//                           flow to preserve)
//   5. "netlist"          — the converted module passes checkInvariants()
//                           and latch counts match the substitution report
//   6. "verilog-fixpoint" — write -> read -> write reaches a byte-stable
//                           fixpoint and preserves cell/port counts
//   7. "sta"              — generated SDC sanity: two positive-period
//                           ClkM/ClkS clocks with targets, non-negative
//                           sync slack at the reference period, finite
//                           positive critical path through the converted
//                           netlist with the SDC loop cuts applied; vacuous
//                           when the flow replaced no FF (no latch clocks
//                           are generated then)
//   8. "flowdb"           — a cold cached run and a warm restored run (at
//                           different --jobs counts) write byte-identical
//                           Verilog + SDC, and the warm run restores every
//                           pass from the cache
//   9. "eco"              — a seeded small edit (cell swap, constant tie
//                           or net rename) is applied to the design; the
//                           incremental --eco re-flow over tables primed
//                           on the original must be byte-identical to a
//                           cold flow of the edited design (docs/eco.md)
//
// Fault injection (`drdesync-fuzz --fault`) deliberately mis-runs the flow
// so the detection and shrinking machinery can be exercised end to end on
// demand; `kNone` is the honest oracle.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/desync.h"
#include "liberty/gatefile.h"
#include "sim/stimulus.h"

namespace desync::fuzz {

enum class FaultKind {
  kNone,            ///< honest oracle
  kFullyDecoupled,  ///< fully-decoupled controllers: legal handshake, but
                    ///< flow equivalence is lost on multi-region designs
                    ///< (Fig 2.4's extra concurrency)
  kShortMargin,     ///< matched delays far below the region critical path:
                    ///< data captured before it settled (Fig 5.3's dashed
                    ///< region)
  kSelfTest,        ///< machinery check: report failure whenever the
                    ///< converted design still holds a latch pair, without
                    ///< simulating — monotone under shrinking, so the
                    ///< shrinker must converge to a minimal register
};

FaultKind parseFaultKind(const std::string& name);  ///< throws on unknown
std::string faultKindName(FaultKind kind);

struct OracleOptions {
  FaultKind fault = FaultKind::kNone;
  /// Synchronous clock cycles simulated (the desynchronized version
  /// free-runs for a comparable span).
  int cycles = 16;
  /// Worker counts for the FlowDB cold / warm runs.
  int cold_jobs = 1;
  int warm_jobs = 4;
  /// Worker count restored after the run (0 = env/hardware default).
  int restore_jobs = 0;
  /// Scratch directory for the FlowDB cache; empty = system temp.  The
  /// oracle creates and removes a per-run subdirectory inside it.
  std::string scratch_dir;
  /// Disables the (filesystem-touching) FlowDB check; the shrinker turns
  /// this off when the failure it preserves is an earlier check.
  bool check_flowdb = true;
  /// Disables the (filesystem-touching) incremental-ECO check; the
  /// shrinker turns this off when the failure it preserves is an earlier
  /// check.
  bool check_eco = true;
  /// Seed of check 9's scripted edit — it picks the edit kind (cell swap,
  /// constant tie, net rename) and the edit site.  Recorded in reproducer
  /// headers so a replay applies the identical edit; kept fixed by the
  /// shrinker so the preserved failure stays the same edit.
  std::uint64_t eco_seed = 1;
  /// Engine for the golden synchronous side of check 4 (`--fe-engine`).
  /// Verdicts are byte-identical either way; kBitsim is faster and falls
  /// back to the event engine on designs outside the cycle model.
  sim::SyncEngine fe_engine = sim::SyncEngine::kBitsim;
  /// Flow-equivalence route for check 4 (`--fe-mode`): the sampling vector
  /// route, the symbolic per-register prover, or both.  The prover is
  /// never vacuous — designs without replaced FFs get combinational
  /// output-port miters instead of a skip — but it is timing-blind, so the
  /// short-margin fault is only caught by the vector route.
  core::FeMode fe_mode = core::FeMode::kSim;
};

struct OracleVerdict {
  bool ok = true;
  std::string check;   ///< failing check name ("" when ok)
  std::string detail;  ///< first failure description
  /// Diagnostic note on a passing run (e.g. vector FE check was vacuous).
  std::string note;
  /// True when the vector FE check had nothing to compare (no FF
  /// replaced).  Reported instead of silently passing.
  bool fe_vacuous = false;
  // Design facts, for logs and shrink metrics.
  std::size_t cells = 0;        ///< synchronous input cell count
  std::size_t ffs_replaced = 0;
  int regions = 0;
  std::size_t values_compared = 0;
  std::size_t registers_proved = 0;  ///< prove route: miters proved UNSAT
  /// Check 9's applied edit, for logs ("" when the check was skipped).
  std::string eco_edit;
};

/// Runs the full oracle on one synchronous netlist.  Deterministic: the
/// same text + options always produce the same verdict.
OracleVerdict runOracle(const std::string& verilog,
                        const liberty::Gatefile& gatefile,
                        const OracleOptions& options = {});

}  // namespace desync::fuzz
