// Deterministic pseudo-random source shared by the fuzzing subsystem and
// the randomized property tests.
//
// One small PRNG, one place: the differential fuzzer (src/fuzz), the
// netlist round-trip property tests (tests/netlist_fuzz_test.cpp) and any
// future randomized harness draw from this header so that a seed printed in
// a failure message reproduces the identical byte stream everywhere.  The
// state update is the classic 64-bit LCG; outputs go through a murmur-style
// finalizer so low bits are usable too.  No global state, no time or
// hardware entropy: the same seed always yields the same sequence.
#pragma once

#include <cstdint>

namespace desync::fuzz {

struct Rng {
  std::uint64_t s;  ///< seedable state; aggregate-init: Rng{seed}

  /// Next 64-bit value (full width, all bits usable).
  std::uint64_t operator()() {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    std::uint64_t z = s;
    z ^= z >> 33;
    z *= 0xff51afd7ed558ccdull;
    z ^= z >> 33;
    return z;
  }

  /// Uniform draw in [0, n) without modulo bias: values below
  /// 2^64 mod n are rejected so every residue class is equally likely.
  /// n must be non-zero.
  std::uint64_t below(std::uint64_t n) {
    const std::uint64_t reject = (0 - n) % n;  // 2^64 mod n
    std::uint64_t v = (*this)();
    while (v < reject) v = (*this)();
    return v % n;
  }

  /// Uniform draw in [lo, hi], inclusive on both ends.
  int range(int lo, int hi) {
    return lo + static_cast<int>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// True with probability percent/100.
  bool chance(int percent) {
    return below(100) < static_cast<std::uint64_t>(percent);
  }
};

}  // namespace desync::fuzz
