#include "fuzz/generator.h"

#include <iterator>
#include <vector>

#include "designs/rtlgen.h"
#include "netlist/verilog.h"

namespace desync::fuzz {

using designs::Bus;
using designs::Rtl;
using netlist::NetId;

namespace {

/// Random bit picked from the register state buses.
NetId randomBit(Rng& rng, const std::vector<Bus>& pool) {
  const Bus& b = pool[rng.below(pool.size())];
  return b[rng.below(b.size())];
}

/// Random expression tree of at most `depth` levels over the state buses,
/// `width` bits wide.  `used_state` is set when at least one leaf reads a
/// register bus — callers re-mix a state bus in when a tree came out all
/// constant, so no register input cone is constant-only (a constant-fed
/// register would become an input register outside every region).
Bus randomExpr(Rtl& rtl, Rng& rng, const std::vector<Bus>& pool, int width,
               int depth, const GeneratorConfig& cfg, bool& used_state) {
  if (depth <= 0 || rng.chance(30)) {
    if (cfg.allow_constants && rng.chance(25)) {
      const std::uint64_t max =
          width >= 64 ? ~0ull : ((1ull << width) - 1ull);
      return rtl.constant(rng.below(max + 1ull), width);
    }
    used_state = true;
    return rtl.extend(pool[rng.below(pool.size())], width);
  }
  switch (rng.below(7)) {
    case 0:
      return rtl.add(randomExpr(rtl, rng, pool, width, depth - 1, cfg,
                                used_state),
                     randomExpr(rtl, rng, pool, width, depth - 1, cfg,
                                used_state));
    case 1:
      return rtl.sub(randomExpr(rtl, rng, pool, width, depth - 1, cfg,
                                used_state),
                     randomExpr(rtl, rng, pool, width, depth - 1, cfg,
                                used_state));
    case 2:
      return rtl.andB(randomExpr(rtl, rng, pool, width, depth - 1, cfg,
                                 used_state),
                      randomExpr(rtl, rng, pool, width, depth - 1, cfg,
                                 used_state));
    case 3:
      return rtl.orB(randomExpr(rtl, rng, pool, width, depth - 1, cfg,
                                used_state),
                     randomExpr(rtl, rng, pool, width, depth - 1, cfg,
                                used_state));
    case 4:
      return rtl.xorB(randomExpr(rtl, rng, pool, width, depth - 1, cfg,
                                 used_state),
                      randomExpr(rtl, rng, pool, width, depth - 1, cfg,
                                 used_state));
    case 5:
      return rtl.inv(randomExpr(rtl, rng, pool, width, depth - 1, cfg,
                                used_state));
    default: {
      used_state = true;
      NetId sel = randomBit(rng, pool);
      return rtl.mux(sel,
                     randomExpr(rtl, rng, pool, width, depth - 1, cfg,
                                used_state),
                     randomExpr(rtl, rng, pool, width, depth - 1, cfg,
                                used_state));
    }
  }
}

/// Like randomExpr but guarantees at least one register-bus leaf.
Bus randomStateExpr(Rtl& rtl, Rng& rng, const std::vector<Bus>& pool,
                    int width, int depth, const GeneratorConfig& cfg) {
  bool used_state = false;
  Bus e = randomExpr(rtl, rng, pool, width, depth, cfg, used_state);
  if (!used_state) {
    e = rtl.xorB(e, rtl.extend(pool[rng.below(pool.size())], width));
  }
  return e;
}

}  // namespace

netlist::Module& generateDesign(netlist::Design& design,
                                const liberty::Gatefile& gatefile,
                                std::uint64_t seed,
                                const GeneratorConfig& config) {
  netlist::Module& m =
      design.addModule("fz_s" + std::to_string(seed));
  Rtl rtl(m, gatefile);
  // Scramble the seed through the output finalizer once so consecutive
  // seeds do not start from near-identical LCG states.
  Rng rng{Rng{seed}() ^ 0x66757a7aull};

  NetId clk = rtl.input("clk")[0];
  NetId rst_n = rtl.input("rst_n")[0];

  const int stages = rng.range(config.min_stages, config.max_stages);

  // Declare every stage's register-output bus up front so next-state
  // expressions can reference *any* stage: forward edges build pipelines,
  // backward and self edges build feedback loops.
  std::vector<Bus> state;
  std::vector<int> width(static_cast<std::size_t>(stages));
  for (int i = 0; i < stages; ++i) {
    int w = rng.range(config.min_width, config.max_width);
    if (i == 0 && w < 2) w = 2;  // stage 0 is the activity source
    width[static_cast<std::size_t>(i)] = w;
    state.push_back(rtl.wire("s" + std::to_string(i), w));
  }

  // Stage 0 always toggles: a striding counter or an LFSR with a
  // stuck-at-zero escape.  Guarantees the capture logs carry real data.
  {
    const Bus& q = state[0];
    const int w = width[0];
    Bus next;
    if (rng.chance(60)) {
      next = rtl.add(q, rtl.constant(1 + rng.below(3), w));
    } else {
      NetId fb = rtl.xor2(q.back(), q[q.size() - 2]);
      fb = rtl.or2(fb, rtl.not1(rtl.reduceOr(q)));
      next = Rtl::cat(Bus{fb}, Rtl::slice(q, 0, w - 1));
    }
    rtl.regInto("r0", next, clk, rst_n, q);
  }

  // Remaining stages: random next-state function, optional load enable
  // (mux feedback) or an integrated clock gate driving the stage clock.
  for (int i = 1; i < stages; ++i) {
    const Bus& q = state[static_cast<std::size_t>(i)];
    const int w = width[static_cast<std::size_t>(i)];
    Bus next = randomStateExpr(rtl, rng, state, w, config.max_expr_depth,
                               config);
    NetId stage_clk = clk;
    if (config.allow_enables && rng.chance(30)) {
      next = rtl.mux(randomBit(rng, state), q, next);  // hold unless enabled
    } else if (config.allow_clock_gates && rng.chance(20)) {
      NetId gclk = m.addNet("gclk" + std::to_string(i));
      m.addCell("cg" + std::to_string(i), "CGL",
                {{"E", netlist::PortDir::kInput, randomBit(rng, state)},
                 {"CP", netlist::PortDir::kInput, clk},
                 {"Z", netlist::PortDir::kOutput, gclk}});
      stage_clk = gclk;
    }
    rtl.regInto("r" + std::to_string(i), next, stage_clk, rst_n, q);
  }

  // Primary outputs: the last stage, plus an optional combinational-only
  // cone over the whole state (reconvergent fanout into shared leaves).
  if (!rng.chance(config.zero_output_percent)) {
    rtl.output("q", state.back());
    if (config.allow_comb_outputs && rng.chance(60)) {
      const int w = rng.range(1, config.max_width);
      rtl.output("cout", randomStateExpr(rtl, rng, state, w,
                                         config.max_expr_depth, config));
    }
  }

  // Dangling logic: a driven net nobody reads (synthesis leftovers).
  if (config.allow_dangling && rng.chance(30)) {
    rtl.and2(randomBit(rng, state), randomBit(rng, state));
  }

  if (rng.chance(config.buffer_percent)) {
    rtl.bufferHighFanout();
  }
  return m;
}

std::string generateVerilog(const liberty::Gatefile& gatefile,
                            std::uint64_t seed,
                            const GeneratorConfig& config) {
  netlist::Design d;
  netlist::Module& m = generateDesign(d, gatefile, seed, config);
  return netlist::writeVerilog(m);
}

netlist::Module& buildRandomComb(netlist::Design& design,
                                 const liberty::Gatefile& gatefile, Rng& rng,
                                 const CombConfig& config,
                                 const std::string& name) {
  static const char* const kGates[] = {"IV",  "BF", "ND2", "NR2",   "AN2",
                                       "OR2", "EO", "EN",  "MUX21"};
  netlist::Module& m = design.addModule(name);
  std::vector<NetId> pool;
  for (int i = 0; i < config.n_inputs; ++i) {
    NetId n = m.addNet("in" + std::to_string(i));
    m.addPort("in" + std::to_string(i), netlist::PortDir::kInput, n);
    pool.push_back(n);
  }
  for (int g = 0; g < config.n_gates; ++g) {
    const std::string type = kGates[rng.below(std::size(kGates))];
    const liberty::LibCell& cell = gatefile.library().cell(type);
    std::vector<netlist::Module::PinInit> pins;
    for (const std::string& in : cell.inputPins()) {
      pins.push_back(
          {in, netlist::PortDir::kInput, pool[rng.below(pool.size())]});
    }
    NetId out = m.addNet("n" + std::to_string(g));
    pins.push_back({"Z", netlist::PortDir::kOutput, out});
    m.addCell("u" + std::to_string(g), type, pins);
    pool.push_back(out);
  }
  for (int i = 0; i < config.n_outputs; ++i) {
    m.addPort("out" + std::to_string(i), netlist::PortDir::kOutput,
              pool[pool.size() - 1 - static_cast<std::size_t>(i)]);
  }
  return m;
}

}  // namespace desync::fuzz
