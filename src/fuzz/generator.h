// Seeded random synchronous-design generation for differential fuzzing.
//
// Two generators, both fully deterministic in the seed:
//
//  * generateDesign / generateVerilog — random *sequential* designs layered
//    on the structural synthesis kit (designs/rtlgen): pipelines of
//    registered stages with cross-stage and self feedback loops, load
//    enables (mux feedback and integrated clock gates), multi-bit buses,
//    combinational-only output cones, constant operands, dangling nets and
//    reconvergent fanout.  The produced modules are the adversarial inputs
//    the differential oracle (fuzz/oracle.h) pushes through the complete
//    seven-pass desynchronization flow.
//
//  * buildRandomComb — random mapped *combinational* circuits, the workload
//    of the Verilog round-trip and cleaning property tests
//    (tests/netlist_fuzz_test.cpp).
//
// Every generated design keeps the flow's input contract: a single clock
// port "clk", an active-low asynchronous reset "rst_n", every register
// reachable from other registers (so no implicit group-0 input registers)
// and no combinational cycles (every feedback loop passes a register).
#pragma once

#include <cstdint>
#include <string>

#include "fuzz/rng.h"
#include "liberty/gatefile.h"
#include "netlist/netlist.h"

namespace desync::fuzz {

/// Knobs of the sequential-design generator.  The defaults describe the
/// standard fuzzing population; tests narrow them to force a shape (e.g.
/// min_stages = 2 to guarantee multi-region pipelines).
struct GeneratorConfig {
  int min_stages = 1;  ///< registered pipeline stages (>= 1)
  int max_stages = 4;
  int min_width = 1;   ///< register bus width per stage
  int max_width = 6;
  int max_expr_depth = 3;   ///< random next-state expression tree depth
  bool allow_enables = true;      ///< mux-feedback load enables
  bool allow_clock_gates = true;  ///< CGL-gated register stages (Fig 3.1d)
  bool allow_constants = true;    ///< constant expression operands
  bool allow_dangling = true;     ///< driven nets without any sink
  bool allow_comb_outputs = true; ///< combinational-only output cone
  /// Percent chance the module has no primary outputs at all (internal
  /// state still checked through the capture logs).
  int zero_output_percent = 5;
  /// Percent chance of a post-build high-fanout buffering pass (gives the
  /// flow's cleaning stage realistic work).
  int buffer_percent = 40;
};

/// Generates the design for `seed` into `design` and returns the module
/// (named "fz_s<seed>").  Identical seed + config => identical netlist.
netlist::Module& generateDesign(netlist::Design& design,
                                const liberty::Gatefile& gatefile,
                                std::uint64_t seed,
                                const GeneratorConfig& config = {});

/// Same design as structural Verilog text — the canonical exchange format
/// of the fuzzing pipeline: the oracle consumes text, the shrinker reduces
/// text, corpus reproducers are text files.
std::string generateVerilog(const liberty::Gatefile& gatefile,
                            std::uint64_t seed,
                            const GeneratorConfig& config = {});

/// Knobs of the combinational property-test generator.
struct CombConfig {
  int n_inputs = 5;
  int n_gates = 60;
  int n_outputs = 4;
};

/// Builds a random combinational circuit (buffers and inverters included so
/// the cleaning pass has work) as module `name`.  Gate types are drawn with
/// Rng::below, so the selection is free of modulo bias.
netlist::Module& buildRandomComb(netlist::Design& design,
                                 const liberty::Gatefile& gatefile, Rng& rng,
                                 const CombConfig& config = {},
                                 const std::string& name = "fuzz");

}  // namespace desync::fuzz
