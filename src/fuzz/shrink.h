// Delta-debugging reducer for failing oracle inputs.
//
// Given a synchronous netlist on which the oracle (fuzz/oracle.h) reports a
// failure, the shrinker searches for a smaller netlist that fails the SAME
// check.  Because the oracle stops at the first failing check of a fixed
// order, "same check name" is a stable predicate and the reduction cannot
// drift onto an unrelated bug.
//
// The reduction is ddmin-flavoured and purely structural, operating on the
// Verilog text (the corpus exchange format) via parse -> mutate -> sweep ->
// write round trips:
//
//   * tie0 chunks    — remove a run of cells, re-pointing every net they
//                      drove at constant zero (shrinks registers, narrows
//                      buses bit by bit and deletes whole pipeline stages);
//                      chunk size halves from n/2 down to single cells
//   * bypass         — remove one cell, short-circuiting its output net to
//                      its first connected input net (collapses expression
//                      trees without losing the through-path)
//   * dead sweep     — after every mutation, cells whose outputs nobody
//                      reads (and orphaned nets) are deleted to a fixpoint
//
// Every candidate is re-judged with the full oracle; a candidate is kept
// only when its failing check name matches the original.  The whole search
// is deterministic: same input text + options => same reproducer.
#pragma once

#include <string>

#include "fuzz/oracle.h"
#include "liberty/gatefile.h"

namespace desync::fuzz {

struct ShrinkOptions {
  /// Hard cap on oracle evaluations (the expensive step).
  int max_evals = 400;
  /// Oracle configuration the failure was observed under.  The shrinker
  /// disables the FlowDB check automatically unless the preserved failure
  /// IS the "flowdb" check.
  OracleOptions oracle;
};

struct ShrinkResult {
  std::string verilog;     ///< smallest failing netlist found
  std::string check;       ///< preserved failing check name
  std::string detail;      ///< failure detail on the final reproducer
  std::size_t initial_cells = 0;
  std::size_t final_cells = 0;
  int evals = 0;           ///< oracle evaluations spent
  bool failing = false;    ///< false when the input already passed
};

/// Reduces `verilog` while preserving its failing oracle check.  When the
/// input passes the oracle, returns it unchanged with failing == false.
ShrinkResult shrink(const std::string& verilog,
                    const liberty::Gatefile& gatefile,
                    const ShrinkOptions& options = {});

}  // namespace desync::fuzz
