#include "pnr/pnr.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <functional>
#include <unordered_map>

namespace desync::pnr {

using netlist::CellId;
using netlist::Module;
using netlist::NetId;
using netlist::PortDir;

AreaStats areaStats(const liberty::BoundModule& bound) {
  AreaStats stats;
  const Module& module = bound.module();
  stats.nets = module.numNets();
  module.forEachCell([&](CellId cid) {
    const liberty::BoundType* t = bound.typeOf(cid);
    if (t == nullptr) return;
    ++stats.cells;
    stats.cell_area += t->area;
    if (t->kind == liberty::CellKind::kCombinational) {
      stats.comb_area += t->area;
    } else {
      stats.seq_area += t->area;
    }
  });
  return stats;
}

AreaStats areaStats(const Module& module, const liberty::Gatefile& gatefile) {
  return areaStats(liberty::BoundModule(module, gatefile));
}

namespace {

/// Clock-tree synthesis: balanced buffer trees under each clock-like port.
std::size_t runCts(Module& module, const PnrOptions& options) {
  std::size_t added = 0;
  for (const std::string& port_name : options.clock_ports) {
    netlist::PortId pid = module.findPort(port_name);
    if (!pid.valid()) continue;
    NetId root = module.port(pid).net;
    if (!root.valid()) continue;
    // Layered chunking until every net in the tree is under the fanout cap.
    std::deque<NetId> work{root};
    while (!work.empty()) {
      NetId net = work.front();
      work.pop_front();
      const netlist::Net& n = module.net(net);
      if (static_cast<int>(n.sinks.size()) <= options.cts_max_fanout) {
        continue;
      }
      std::vector<netlist::TermRef> sinks = n.sinks;
      const std::size_t chunk =
          static_cast<std::size_t>(options.cts_max_fanout);
      for (std::size_t start = 0; start < sinks.size(); start += chunk) {
        std::string base =
            std::string(module.design().names().str(
                module.design().names().makeUnique(port_name + "_cts")));
        NetId out = module.addNet(base);
        module.addCell(base + "_b", "BF",
                       {{"A", PortDir::kInput, net},
                        {"Z", PortDir::kOutput, out}});
        ++added;
        const std::size_t end = std::min(start + chunk, sinks.size());
        for (std::size_t i = start; i < end; ++i) {
          if (sinks[i].isCellPin()) {
            module.connectPin(sinks[i].cell(), sinks[i].pin, out);
          }
        }
        work.push_back(out);
      }
      work.push_back(net);  // re-check: the buffers are new sinks
    }
  }
  return added;
}

}  // namespace

PnrResult placeAndRoute(Module& module, const liberty::Gatefile& gatefile,
                        const PnrOptions& options) {
  PnrResult result;

  // Post-synthesis accounting.
  AreaStats pre = areaStats(module, gatefile);
  result.cells_pre = pre.cells;
  result.nets_pre = pre.nets;
  result.cell_area_pre = pre.cell_area;
  result.comb_area_pre = pre.comb_area;
  result.seq_area_pre = pre.seq_area;

  // CTS.
  result.cts_buffers = runCts(module, options);

  // CTS mutated the netlist, so bind (again) now; the binding feeds the
  // post accounting and every per-cell area query in placement below.
  const liberty::BoundModule bound(module, gatefile);
  AreaStats post = areaStats(bound);
  result.cells_post = post.cells;
  result.nets_post = post.nets;
  result.std_cell_area = post.cell_area;

  // --- placement: recursive min-cut bisection into rectangles -----------
  // The cell set is split in two by greedy connectivity-gain growth (cells
  // most connected to the growing half join first) while the region
  // rectangle splits along its longer side, so tightly connected logic
  // lands in compact 2D blocks.
  std::vector<CellId> order;  // kept for deterministic iteration order
  std::unordered_map<std::uint32_t, Placement> placed;
  double core_side = 0;
  {
    // Cell adjacency over small nets (global nets carry no locality).
    constexpr std::size_t kMaxOrderingFanout = 20;
    std::vector<std::vector<std::uint32_t>> adj(module.cellCapacity());
    module.forEachNet([&](NetId nid) {
      const netlist::Net& n = module.net(nid);
      if (n.sinks.size() > kMaxOrderingFanout) return;
      std::vector<std::uint32_t> terms;
      if (n.driver.isCellPin()) terms.push_back(n.driver.cell().value);
      for (const netlist::TermRef& t : n.sinks) {
        if (t.isCellPin()) terms.push_back(t.cell().value);
      }
      for (std::size_t i = 0; i < terms.size(); ++i) {
        for (std::size_t j = i + 1; j < terms.size(); ++j) {
          adj[terms[i]].push_back(terms[j]);
          adj[terms[j]].push_back(terms[i]);
        }
      }
    });

    std::vector<std::uint32_t> all;
    module.forEachCell([&](CellId id) { all.push_back(id.value); });

    // gain[] and in_part[] reused across levels (reset lazily via epoch).
    std::vector<int> gain(module.cellCapacity(), 0);
    std::vector<std::uint32_t> epoch(module.cellCapacity(), 0);
    std::vector<std::uint8_t> state(module.cellCapacity(), 0);
    std::uint32_t cur_epoch = 0;

    const double row_h = options.row_height_um;
    core_side = std::sqrt(post.cell_area / options.target_utilization);

    struct Rect {
      double x0, y0, x1, y1;
    };
    std::function<void(std::vector<std::uint32_t>&, Rect)> bisect =
        [&](std::vector<std::uint32_t>& cells, Rect r) {
          if (cells.size() <= 16) {
            // Row fill inside the rectangle.
            double x = r.x0;
            double y = std::floor(r.y0 / row_h) * row_h;
            for (std::uint32_t cv : cells) {
              CellId id{cv};
              order.push_back(id);
              const liberty::BoundType* bt = bound.typeOf(id);
              const double w = bt == nullptr ? 1.0 : bt->area / row_h;
              if (x + w > r.x1 + 1e-9) {
                x = r.x0;
                y += row_h;
              }
              placed.emplace(cv, Placement{id, x, y});
              x += w / options.target_utilization;
            }
            return;
          }
          ++cur_epoch;
          // state: 0 = free, 1 = in A, 2 = frontier-queued.
          auto fresh = [&](std::uint32_t c) {
            if (epoch[c] != cur_epoch) {
              epoch[c] = cur_epoch;
              gain[c] = 0;
              state[c] = 0;
            }
          };
          for (std::uint32_t c : cells) fresh(c);
          // Mark membership of this partition via state==0/1/2; cells not
          // in `cells` keep a stale epoch and are ignored.
          const std::size_t half = cells.size() / 2;
          std::vector<std::uint32_t> a, b;
          // Max-gain greedy growth from the first cell.
          // Simple binary-heap of (gain, cell); stale entries skipped.
          std::vector<std::pair<int, std::uint32_t>> heap;
          auto heap_push = [&](std::uint32_t c) {
            heap.emplace_back(gain[c], c);
            std::push_heap(heap.begin(), heap.end());
          };
          state[cells[0]] = 2;
          heap_push(cells[0]);
          while (a.size() < half && !heap.empty()) {
            std::pop_heap(heap.begin(), heap.end());
            auto [g, c] = heap.back();
            heap.pop_back();
            if (state[c] == 1 || g != gain[c]) continue;  // stale
            state[c] = 1;
            a.push_back(c);
            for (std::uint32_t o : adj[c]) {
              if (epoch[o] != cur_epoch || state[o] == 1) continue;
              ++gain[o];
              state[o] = 2;
              heap_push(o);
            }
          }
          // Any shortfall (disconnected partition): fill from the rest.
          for (std::uint32_t c : cells) {
            if (state[c] == 1) continue;
            if (a.size() < half) {
              state[c] = 1;
              a.push_back(c);
            } else {
              b.push_back(c);
            }
          }
          // Split the rectangle across its longer side, area-proportional.
          const double frac =
              static_cast<double>(a.size()) / static_cast<double>(cells.size());
          Rect ra = r, rb = r;
          if (r.x1 - r.x0 >= r.y1 - r.y0) {
            const double cut = r.x0 + (r.x1 - r.x0) * frac;
            ra.x1 = cut;
            rb.x0 = cut;
          } else {
            const double cut = r.y0 + (r.y1 - r.y0) * frac;
            ra.y1 = cut;
            rb.y0 = cut;
          }
          bisect(a, ra);
          bisect(b, rb);
        };
    bisect(all, Rect{0, 0, core_side, core_side});
  }

  // Legalization ("tetris"): snap each cell to its nearest row and pack
  // left to right in desired-x order, removing any overlap the recursive
  // rectangles introduced at their seams.
  {
    const double row_h = options.row_height_um;
    std::map<int, std::vector<std::uint32_t>> rows;
    for (auto& [cv, p] : placed) {
      int row = std::max(0, static_cast<int>(std::lround(p.y / row_h)));
      rows[row].push_back(cv);
    }
    for (auto& [row, cells] : rows) {
      std::sort(cells.begin(), cells.end(),
                [&](std::uint32_t a, std::uint32_t b) {
                  const Placement& pa = placed.at(a);
                  const Placement& pb = placed.at(b);
                  if (pa.x != pb.x) return pa.x < pb.x;
                  return a < b;
                });
      // Dense pack preserving order, then spread by the whitespace factor
      // so the row occupies its share of the core width.
      double x = 0;
      for (std::uint32_t cv : cells) {
        Placement& p = placed.at(cv);
        const liberty::BoundType* bt = bound.typeOf(CellId{cv});
        const double w = bt == nullptr ? 1.0 : bt->area / row_h;
        p.x = x / options.target_utilization;
        p.y = row * row_h;
        x += w;
      }
    }
  }

  // Collect the placement in deterministic order.
  result.placement.reserve(order.size());
  for (CellId id : order) {
    result.placement.push_back(placed.at(id.value));
  }

  // HPWL over the placement.
  double hpwl = 0;
  module.forEachNet([&](NetId nid) {
    const netlist::Net& n = module.net(nid);
    double min_x = 1e18, max_x = -1e18, min_y = 1e18, max_y = -1e18;
    int terms = 0;
    auto visit = [&](const netlist::TermRef& t) {
      if (!t.isCellPin()) return;
      auto it = placed.find(t.cell().value);
      if (it == placed.end()) return;
      min_x = std::min(min_x, it->second.x);
      max_x = std::max(max_x, it->second.x);
      min_y = std::min(min_y, it->second.y);
      max_y = std::max(max_y, it->second.y);
      ++terms;
    };
    visit(n.driver);
    for (const netlist::TermRef& t : n.sinks) visit(t);
    if (terms >= 2) hpwl += (max_x - min_x) + (max_y - min_y);
  });
  result.total_hpwl_um = hpwl;

  // Core sizing: placement density target vs routing demand — whichever
  // needs more area sets the core, which is where the utilization figures
  // of Tables 5.1/5.2 come from (denser control wiring lowers
  // utilization).
  const double area_for_cells = post.cell_area / options.target_utilization;
  const double area_for_routing =
      hpwl * options.routing_detour / options.routing_supply;
  result.core_size = std::max(area_for_cells, area_for_routing);
  result.utilization = post.cell_area / result.core_size;
  return result;
}

}  // namespace desync::pnr
