// Backend "PnR-lite": placement, clock-tree synthesis and area reporting
// (thesis §4.7, §5.2.1, §5.3.1).
//
// Substitutes for the Synopsys Astro step of the paper's flow.  It performs
// the operations whose *results* the evaluation tables report:
//   - clock-tree synthesis: balanced buffer trees on the clock (synchronous
//     version) — the desynchronized version's enable trees were already
//     built by the flow — which accounts for the paper's post-layout
//     cell/net growth;
//   - row-based placement in connectivity (BFS) order with half-perimeter
//     wirelength;
//   - a routability model that grows the core until estimated routing
//     demand fits, yielding the core size and utilization figures of
//     Tables 5.1/5.2.
#pragma once

#include <string>
#include <vector>

#include "liberty/bound.h"
#include "liberty/gatefile.h"
#include "netlist/netlist.h"

namespace desync::pnr {

struct PnrOptions {
  /// Placement row target utilization before routability adjustment.
  double target_utilization = 0.96;
  /// Max sinks per clock-tree buffer.
  int cts_max_fanout = 12;
  /// Clock/enable-like input ports to tree (empty entries ignored).
  std::vector<std::string> clock_ports = {"clk"};
  /// Routing supply per um^2 of core area (um of wire per um^2): 90nm-class
  /// metal stack (4 routing layers at ~0.28um pitch, ~50% usable),
  /// calibrated so the reference synchronous DLX lands near the paper's
  /// 95% utilization.
  double routing_supply = 20.0;
  /// Average wire detour factor over HPWL.
  double routing_detour = 1.35;
  double row_height_um = 2.8;  ///< 90nm-class standard cell row height
};

/// Placement of one cell.
struct Placement {
  netlist::CellId cell;
  double x = 0, y = 0;  ///< um, cell origin
};

struct PnrResult {
  // Post-synthesis accounting (before CTS buffers).
  std::size_t cells_pre = 0;
  std::size_t nets_pre = 0;
  double cell_area_pre = 0;  ///< um^2
  double comb_area_pre = 0;
  double seq_area_pre = 0;

  // Post-layout accounting.
  std::size_t cells_post = 0;
  std::size_t nets_post = 0;
  double std_cell_area = 0;  ///< um^2 incl. CTS buffers
  double core_size = 0;      ///< um^2
  double utilization = 0;    ///< std_cell_area / core_size
  std::size_t cts_buffers = 0;

  double total_hpwl_um = 0;  ///< half-perimeter wirelength
  std::vector<Placement> placement;
};

/// Runs the backend on `module` (mutating: CTS buffers are inserted).
PnrResult placeAndRoute(netlist::Module& module,
                        const liberty::Gatefile& gatefile,
                        const PnrOptions& options = {});

/// Area accounting only (no placement, no mutation): the "post synthesis"
/// rows of Tables 5.1/5.2.
struct AreaStats {
  std::size_t cells = 0;
  std::size_t nets = 0;
  double cell_area = 0;
  double comb_area = 0;
  double seq_area = 0;
};
AreaStats areaStats(const netlist::Module& module,
                    const liberty::Gatefile& gatefile);
/// Same from an existing binding (no per-cell string lookups).
AreaStats areaStats(const liberty::BoundModule& bound);

}  // namespace desync::pnr
