#include "variability/variability.h"

#include <algorithm>
#include <cmath>

#include "core/parallel.h"
#include "trace/trace.h"

namespace desync::variability {

namespace {

/// SplitMix64: cheap, well-distributed hash/PRNG step.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t hashString(std::string_view s, std::uint64_t seed) {
  std::uint64_t h = seed ^ 1469598103934665603ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return splitmix64(h);
}

double uniform01(std::uint64_t h) {
  // 53-bit mantissa in (0,1), never exactly 0 or 1.
  return (static_cast<double>(h >> 11) + 0.5) / 9007199254740992.0;
}

}  // namespace

CornerSpec cornerSpec(Corner corner) {
  switch (corner) {
    case Corner::kBest:
      return {"best", 0.72, 1.32};
    case Corner::kTypical:
      return {"typical", 1.00, 1.20};
    case Corner::kWorst:
      return {"worst", 1.45, 1.08};
  }
  return {"typical", 1.0, 1.2};
}

VariationModel makeSpanModel(std::uint64_t seed) {
  VariationModel m;
  const double best = cornerSpec(Corner::kBest).delay_scale;
  const double worst = cornerSpec(Corner::kWorst).delay_scale;
  // +-3 sigma spans [best, worst] around their midpoint.
  m.inter_die_sigma = (worst - best) / 6.0;
  m.seed = seed;
  return m;
}

double normalQuantile(double q) {
  // Acklam's rational approximation; |relative error| < 1.15e-9.
  if (q <= 0.0 || q >= 1.0) {
    return q <= 0.0 ? -8.0 : 8.0;  // saturate
  }
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double dd[] = {7.784695709041462e-03, 3.224671290700398e-01,
                              2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  if (q < plow) {
    double u = std::sqrt(-2.0 * std::log(q));
    return (((((c[0] * u + c[1]) * u + c[2]) * u + c[3]) * u + c[4]) * u +
            c[5]) /
           ((((dd[0] * u + dd[1]) * u + dd[2]) * u + dd[3]) * u + 1.0);
  }
  if (q > 1.0 - plow) {
    double u = std::sqrt(-2.0 * std::log(1.0 - q));
    return -(((((c[0] * u + c[1]) * u + c[2]) * u + c[3]) * u + c[4]) * u +
             c[5]) /
           ((((dd[0] * u + dd[1]) * u + dd[2]) * u + dd[3]) * u + 1.0);
  }
  double u = q - 0.5;
  double t = u * u;
  return (((((a[0] * t + a[1]) * t + a[2]) * t + a[3]) * t + a[4]) * t +
          a[5]) *
         u /
         (((((b[0] * t + b[1]) * t + b[2]) * t + b[3]) * t + b[4]) * t + 1.0);
}

double normalCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double interDieScaleAtQuantile(double q) {
  const double best = cornerSpec(Corner::kBest).delay_scale;
  const double worst = cornerSpec(Corner::kWorst).delay_scale;
  const double mu = 0.5 * (best + worst);
  const double sigma = (worst - best) / 6.0;
  return mu + sigma * normalQuantile(q);
}

ChipSample sampleChip(const VariationModel& model, std::uint64_t index) {
  ChipSample sample;
  const double best = cornerSpec(Corner::kBest).delay_scale;
  const double worst = cornerSpec(Corner::kWorst).delay_scale;
  const double mu = 0.5 * (best + worst);

  const std::uint64_t h = splitmix64(model.seed ^ splitmix64(index));
  double z = normalQuantile(uniform01(h));
  z = std::clamp(z, -3.0, 3.0);
  sample.global = mu + model.inter_die_sigma * z;
  sample.global = std::max(sample.global, 0.25);

  const double intra_sigma = model.intra_die_sigma;
  const std::uint64_t seed = model.seed;
  const std::uint64_t die = index;
  sample.cell_factor = [intra_sigma, seed, die](std::string_view cell) {
    if (intra_sigma <= 0.0) return 1.0;
    std::uint64_t h2 =
        hashString(cell, splitmix64(seed ^ (die * 0x9e3779b97f4a7c15ull)));
    double z2 = std::clamp(normalQuantile(uniform01(h2)), -3.0, 3.0);
    return std::max(1.0 + intra_sigma * z2, 0.5);
  };
  return sample;
}

std::vector<ChipSample> sampleChips(const VariationModel& model,
                                    std::size_t count) {
  return core::parallelMap(count, [&](std::size_t i) {
    return sampleChip(model, static_cast<std::uint64_t>(i));
  });
}

void forEachSample(
    const VariationModel& model, std::size_t count,
    const std::function<void(std::size_t, const ChipSample&)>& fn) {
  core::parallelFor(count, [&](std::size_t i) {
    trace::Span span("mc_sample", "variability");
    fn(i, sampleChip(model, static_cast<std::uint64_t>(i)));
  });
}

}  // namespace desync::variability
