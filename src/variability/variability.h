// PVT corner and manufacturing-variability model (thesis ch.1, §2.5, §5.2.2).
//
// The paper's library ships best- and worst-case corners only (footnote in
// §5); the typical point sits between them, and the desynchronized circuit's
// effective speed across fabricated parts is modelled — exactly as the
// thesis does for Fig 5.4 — as a normal distribution spanning the two
// extreme corners ("exactly like SSTA does for variability factors").
//
// Two variability components are modelled:
//   * inter-die (global): one delay multiplier per chip sample, shared by
//     every cell — this is what delay elements track perfectly, because
//     they live on the same die as the logic they match;
//   * intra-die (local): a small per-cell multiplier, deterministic per
//     (seed, sample, cell-name) so simulations are reproducible.  This is
//     the component the delay-element margin must absorb.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace desync::variability {

enum class Corner { kBest, kTypical, kWorst };

struct CornerSpec {
  const char* name;
  double delay_scale;  ///< multiplier on nominal (typical) delays
  double vdd;          ///< supply voltage at the corner (V)
};

/// 90nm-class corner definitions (typical = 1.0x at 1.2V; best ≈ fast
/// process / high V / low T; worst ≈ slow / low V / high T).
[[nodiscard]] CornerSpec cornerSpec(Corner corner);

/// Variation magnitudes, as fractions of nominal delay.
struct VariationModel {
  double inter_die_sigma = 0.0;  ///< set from corners by makeSpanModel()
  double intra_die_sigma = 0.03;
  std::uint64_t seed = 1;
};

/// Model whose inter-die +-3 sigma spread spans exactly [best, worst]
/// corner delay scales, per the thesis Fig 5.4 construction.
[[nodiscard]] VariationModel makeSpanModel(std::uint64_t seed = 1);

/// One sampled chip: a global factor plus a per-cell local factor function.
struct ChipSample {
  double global = 1.0;  ///< inter-die delay multiplier
  /// Local multiplier for a named cell instance (deterministic).
  std::function<double(std::string_view)> cell_factor;
  /// Combined factor for a cell: global * local.
  [[nodiscard]] double factor(std::string_view cell) const {
    return global * (cell_factor ? cell_factor(cell) : 1.0);
  }
};

/// Draws chip sample `index` from the model (Monte-Carlo over dies).
[[nodiscard]] ChipSample sampleChip(const VariationModel& model,
                                    std::uint64_t index);

/// Draws samples 0..count-1, index-aligned.  Every sample derives its
/// randomness from (seed, index, cell-name) hashing alone, so the batch is
/// order-independent and identical at any --jobs setting.
[[nodiscard]] std::vector<ChipSample> sampleChips(const VariationModel& model,
                                                  std::size_t count);

/// Monte-Carlo driver: runs `fn(index, chip)` for every die sample,
/// distributing samples over the parallel layer (core/parallel.h).  `fn`
/// must write only per-index state (results are merged by the caller in
/// sample order); it may freely run STA / simulation over shared read-only
/// structures.  With --jobs 1 the samples run serially in index order.
void forEachSample(const VariationModel& model, std::size_t count,
                   const std::function<void(std::size_t, const ChipSample&)>& fn);

/// Inter-die delay scale at cumulative probability `q` in (0,1): the normal
/// quantile of the Fig 5.4 distribution.  q=0.5 gives the typical scale.
[[nodiscard]] double interDieScaleAtQuantile(double q);

/// Standard normal quantile (inverse CDF), exposed for the benches.
[[nodiscard]] double normalQuantile(double q);

/// Standard normal CDF.
[[nodiscard]] double normalCdf(double x);

}  // namespace desync::variability
