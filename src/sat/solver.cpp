// CDCL core (see solver.h for the design constraints: small, deterministic,
// miter-shaped instances).
#include "sat/solver.h"

#include <algorithm>
#include <cmath>

namespace desync::sat {

namespace {

/// Luby restart sequence: 1 1 2 1 1 2 4 ... scaled by the caller.
double luby(double y, int x) {
  int size = 1;
  int seq = 0;
  while (size < x + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != x) {
    size = (size - 1) >> 1;
    --seq;
    x = x % size;
  }
  return std::pow(y, seq);
}

constexpr double kVarActivityLimit = 1e100;
constexpr double kClaActivityLimit = 1e20;
constexpr double kVarDecay = 0.95;
constexpr double kClaDecay = 0.999;
constexpr int kRestartBase = 100;

}  // namespace

Solver::Solver() = default;

Var Solver::newVar() {
  const Var v = static_cast<Var>(assign_.size());
  assign_.push_back(kUndef);
  polarity_.push_back(1);  // first branch assigns the variable false
  activity_.push_back(0.0);
  reason_.push_back(kCrefUndef);
  level_.push_back(0);
  seen_.push_back(0);
  heap_index_.push_back(-1);
  watches_.emplace_back();
  watches_.emplace_back();
  heapInsert(v);
  return v;
}

bool Solver::addClause(const std::vector<Lit>& lits) {
  if (!ok_) return false;
  backtrack(0);

  // Canonicalize: sort, merge duplicates, drop tautologies and literals
  // already false at level 0, detect clauses already satisfied at level 0.
  std::vector<Lit> c = lits;
  std::sort(c.begin(), c.end());
  std::vector<Lit> out;
  out.reserve(c.size());
  Lit prev = kLitUndef;
  for (Lit l : c) {
    if (l == prev) continue;
    if (prev != kLitUndef && varOf(l) == varOf(prev)) return true;  // l, ~l
    const std::uint8_t val = valueLit(l);
    if (val == kTrue) return true;  // satisfied at level 0
    if (val == kFalse) {
      prev = l;
      continue;  // false at level 0: drop
    }
    out.push_back(l);
    prev = l;
  }

  if (out.empty()) {
    ok_ = false;
    return false;
  }
  if (out.size() == 1) {
    enqueue(out[0], kCrefUndef);
    if (propagate() != kCrefUndef) {
      ok_ = false;
      return false;
    }
    return true;
  }
  const Cref cr = static_cast<Cref>(clauses_.size());
  Clause cl;
  cl.lits = std::move(out);
  clauses_.push_back(std::move(cl));
  attachClause(cr);
  return true;
}

void Solver::attachClause(Cref c) {
  const Clause& cl = clauses_[c];
  watches_[(~cl.lits[0]).x].push_back(Watcher{c, cl.lits[1]});
  watches_[(~cl.lits[1]).x].push_back(Watcher{c, cl.lits[0]});
}

void Solver::enqueue(Lit l, Cref reason) {
  const Var v = varOf(l);
  assign_[v] = signOf(l) ? kFalse : kTrue;
  polarity_[v] = signOf(l) ? 1 : 0;
  level_[v] = static_cast<std::int32_t>(trail_lim_.size());
  reason_[v] = reason;
  trail_.push_back(l);
}

Solver::Cref Solver::propagate() {
  Cref confl = kCrefUndef;
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];  // p became true; visit clauses watching ~p
    ++stats_.propagations;
    std::vector<Watcher>& ws = watches_[p.x];
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < ws.size()) {
      const Watcher w = ws[i];
      if (valueLit(w.blocker) == kTrue) {
        ws[j++] = ws[i++];
        continue;
      }
      Clause& c = clauses_[w.cref];
      if (c.deleted) {
        ++i;  // drop the stale watcher
        continue;
      }
      const Lit false_lit = ~p;
      if (c.lits[0] == false_lit) std::swap(c.lits[0], c.lits[1]);
      ++i;
      const Lit first = c.lits[0];
      const Watcher nw{w.cref, first};
      if (first != w.blocker && valueLit(first) == kTrue) {
        ws[j++] = nw;
        continue;
      }
      bool moved = false;
      for (std::size_t k = 2; k < c.lits.size(); ++k) {
        if (valueLit(c.lits[k]) != kFalse) {
          std::swap(c.lits[1], c.lits[k]);
          watches_[(~c.lits[1]).x].push_back(nw);
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Clause is unit or conflicting under the current assignment.
      ws[j++] = nw;
      if (valueLit(first) == kFalse) {
        confl = w.cref;
        qhead_ = trail_.size();
        while (i < ws.size()) ws[j++] = ws[i++];
      } else {
        enqueue(first, w.cref);
      }
    }
    ws.resize(j);
  }
  return confl;
}

void Solver::analyze(Cref conflict, std::vector<Lit>& out_learnt,
                     int& out_level) {
  const int current_level = static_cast<int>(trail_lim_.size());
  int path = 0;
  Lit p = kLitUndef;
  Cref confl = conflict;
  out_learnt.clear();
  out_learnt.push_back(kLitUndef);  // slot for the asserting literal
  std::size_t index = trail_.size();

  do {
    Clause& c = clauses_[confl];
    if (c.learnt) claBumpActivity(c);
    for (std::size_t k = (p == kLitUndef ? 0 : 1); k < c.lits.size(); ++k) {
      const Lit q = c.lits[k];
      const Var v = varOf(q);
      if (seen_[v] == 0 && level_[v] > 0) {
        varBumpActivity(v);
        seen_[v] = 1;
        if (level_[v] >= current_level) {
          ++path;
        } else {
          out_learnt.push_back(q);
        }
      }
    }
    while (seen_[varOf(trail_[index - 1])] == 0) --index;
    --index;
    p = trail_[index];
    confl = reason_[varOf(p)];
    seen_[varOf(p)] = 0;
    --path;
  } while (path > 0);
  out_learnt[0] = ~p;

  if (out_learnt.size() == 1) {
    out_level = 0;
  } else {
    // Second-highest decision level becomes the backtrack level; put one of
    // its literals into slot 1 so it is watched.
    std::size_t max_i = 1;
    for (std::size_t k = 2; k < out_learnt.size(); ++k) {
      if (level_[varOf(out_learnt[k])] > level_[varOf(out_learnt[max_i])]) {
        max_i = k;
      }
    }
    std::swap(out_learnt[1], out_learnt[max_i]);
    out_level = level_[varOf(out_learnt[1])];
  }
  for (Lit l : out_learnt) seen_[varOf(l)] = 0;
}

void Solver::backtrack(int level) {
  if (static_cast<int>(trail_lim_.size()) <= level) return;
  const std::int32_t bound = trail_lim_[level];
  for (std::size_t k = trail_.size(); k > static_cast<std::size_t>(bound);
       --k) {
    const Var v = varOf(trail_[k - 1]);
    assign_[v] = kUndef;
    reason_[v] = kCrefUndef;
    if (!heapContains(v)) heapInsert(v);
  }
  trail_.resize(static_cast<std::size_t>(bound));
  trail_lim_.resize(static_cast<std::size_t>(level));
  qhead_ = trail_.size();
}

Lit Solver::pickBranchLit() {
  while (!heap_.empty()) {
    const Var v = heapRemoveMax();
    if (valueVar(v) == kUndef) return mkLit(v, polarity_[v] != 0);
  }
  return kLitUndef;
}

void Solver::varBumpActivity(Var v) {
  activity_[v] += var_inc_;
  if (activity_[v] > kVarActivityLimit) {
    for (double& a : activity_) a *= 1.0 / kVarActivityLimit;
    var_inc_ *= 1.0 / kVarActivityLimit;
  }
  if (heapContains(v)) heapSiftUp(heap_index_[v]);
}

void Solver::varDecayActivity() { var_inc_ *= 1.0 / kVarDecay; }

void Solver::claBumpActivity(Clause& c) {
  c.activity += cla_inc_;
  if (c.activity > kClaActivityLimit) {
    for (Cref cr : learnts_) {
      clauses_[cr].activity *= 1.0 / kClaActivityLimit;
    }
    cla_inc_ *= 1.0 / kClaActivityLimit;
  }
}

void Solver::claDecayActivity() { cla_inc_ *= 1.0 / kClaDecay; }

void Solver::reduceDb() {
  // Remove the lowest-activity half of the learnt clauses, keeping binary
  // clauses and clauses that are the reason of a current assignment.
  // Ties break on the clause reference, so the reduction is deterministic.
  std::vector<Cref> order = learnts_;
  std::sort(order.begin(), order.end(), [&](Cref a, Cref b) {
    const Clause& ca = clauses_[a];
    const Clause& cb = clauses_[b];
    if (ca.activity != cb.activity) return ca.activity < cb.activity;
    return a < b;
  });
  auto locked = [&](Cref cr) {
    const Clause& c = clauses_[cr];
    return reason_[varOf(c.lits[0])] == cr && valueLit(c.lits[0]) == kTrue;
  };
  std::size_t removed = 0;
  const std::size_t target = order.size() / 2;
  for (Cref cr : order) {
    if (removed >= target) break;
    Clause& c = clauses_[cr];
    if (c.lits.size() <= 2 || locked(cr)) continue;
    c.deleted = true;
    c.lits.clear();
    c.lits.shrink_to_fit();
    ++removed;
  }
  learnts_.erase(std::remove_if(learnts_.begin(), learnts_.end(),
                                [&](Cref cr) { return clauses_[cr].deleted; }),
                 learnts_.end());
}

Verdict Solver::solve(const Limits& limits) {
  if (!ok_) return Verdict::kUnsat;
  backtrack(0);
  if (propagate() != kCrefUndef) {
    ok_ = false;
    return Verdict::kUnsat;
  }
  if (max_learnts_ <= 0.0) {
    max_learnts_ =
        std::max(1000.0, static_cast<double>(clauses_.size()) / 3.0);
  }

  const std::uint64_t budget = limits.max_conflicts;
  const std::uint64_t conflicts_start = stats_.conflicts;
  int restart_iter = 0;
  for (;;) {
    const auto restart_budget = static_cast<std::uint64_t>(
        luby(2.0, restart_iter) * kRestartBase);
    std::uint64_t conflicts_here = 0;
    for (;;) {
      const Cref confl = propagate();
      if (confl != kCrefUndef) {
        ++stats_.conflicts;
        ++conflicts_here;
        if (trail_lim_.empty()) {
          ok_ = false;
          return Verdict::kUnsat;
        }
        std::vector<Lit> learnt;
        int bt_level = 0;
        analyze(confl, learnt, bt_level);
        backtrack(bt_level);
        if (learnt.size() == 1) {
          enqueue(learnt[0], kCrefUndef);
        } else {
          const Cref cr = static_cast<Cref>(clauses_.size());
          Clause cl;
          cl.lits = std::move(learnt);
          cl.learnt = true;
          cl.activity = cla_inc_;
          clauses_.push_back(std::move(cl));
          learnts_.push_back(cr);
          attachClause(cr);
          ++stats_.learned;
          enqueue(clauses_[cr].lits[0], cr);
        }
        varDecayActivity();
        claDecayActivity();
        if (budget != 0 && stats_.conflicts - conflicts_start >= budget) {
          backtrack(0);
          return Verdict::kUnknown;
        }
        continue;
      }
      if (conflicts_here >= restart_budget) {
        ++stats_.restarts;
        backtrack(0);
        break;  // next Luby segment
      }
      if (static_cast<double>(learnts_.size()) >=
          max_learnts_ + static_cast<double>(trail_.size())) {
        reduceDb();
        max_learnts_ *= 1.1;
      }
      const Lit next = pickBranchLit();
      if (next == kLitUndef) {
        model_.assign(assign_.size(), 0);
        for (std::size_t v = 0; v < assign_.size(); ++v) {
          model_[v] = assign_[v] == kTrue ? 1 : 0;
        }
        backtrack(0);
        return Verdict::kSat;
      }
      ++stats_.decisions;
      trail_lim_.push_back(static_cast<std::int32_t>(trail_.size()));
      enqueue(next, kCrefUndef);
    }
    ++restart_iter;
  }
}

bool Solver::modelValue(Var v) const {
  if (v < 0 || static_cast<std::size_t>(v) >= model_.size()) return false;
  return model_[v] != 0;
}

// --- indexed binary max-heap over (activity desc, var asc) ---------------

bool Solver::heapLt(Var a, Var b) const {
  if (activity_[a] != activity_[b]) return activity_[a] > activity_[b];
  return a < b;
}

void Solver::heapInsert(Var v) {
  heap_index_[v] = static_cast<std::int32_t>(heap_.size());
  heap_.push_back(v);
  heapSiftUp(heap_index_[v]);
}

Var Solver::heapRemoveMax() {
  const Var top = heap_[0];
  heap_[0] = heap_.back();
  heap_index_[heap_[0]] = 0;
  heap_.pop_back();
  heap_index_[top] = -1;
  if (!heap_.empty()) heapSiftDown(0);
  return top;
}

void Solver::heapSiftUp(int i) {
  const Var v = heap_[i];
  while (i > 0) {
    const int parent = (i - 1) >> 1;
    if (!heapLt(v, heap_[parent])) break;
    heap_[i] = heap_[parent];
    heap_index_[heap_[i]] = i;
    i = parent;
  }
  heap_[i] = v;
  heap_index_[v] = i;
}

void Solver::heapSiftDown(int i) {
  const Var v = heap_[i];
  const int n = static_cast<int>(heap_.size());
  for (;;) {
    const int left = 2 * i + 1;
    if (left >= n) break;
    const int right = left + 1;
    const int child =
        (right < n && heapLt(heap_[right], heap_[left])) ? right : left;
    if (!heapLt(heap_[child], v)) break;
    heap_[i] = heap_[child];
    heap_index_[heap_[i]] = i;
    i = child;
  }
  heap_[i] = v;
  heap_index_[v] = i;
}

}  // namespace desync::sat
