// Self-contained CDCL SAT solver (thesis §2.1 correctness backend).
//
// A deliberately small MiniSat-style core used by sim/symfe to prove
// per-register projection-equivalence miters UNSAT: two-watched-literal
// propagation with blockers, VSIDS-style activity with exponential decay,
// first-UIP conflict analysis, phase saving, Luby restarts and learnt-clause
// database reduction.  No external dependencies, no randomness, no
// wall-clock-dependent heuristics: every tie is broken by the lowest
// variable index, so a given CNF produces the identical search (and model)
// on every run and at every --jobs setting.
//
// The instances it is built for are shallow-circuit miters: thousands of
// variables, tens of thousands of clauses.  It is not tuned for industrial
// benchmarks and keeps no preprocessing beyond level-0 clause
// simplification.
#pragma once

#include <cstdint>
#include <vector>

namespace desync::sat {

/// Variable index, 0-based.  Negative = undefined.
using Var = std::int32_t;

constexpr Var kVarUndef = -1;

/// Literal: variable * 2 + sign (sign 1 = negated), MiniSat encoding.
struct Lit {
  std::int32_t x = -2;

  friend bool operator==(Lit a, Lit b) { return a.x == b.x; }
  friend bool operator!=(Lit a, Lit b) { return a.x != b.x; }
  friend bool operator<(Lit a, Lit b) { return a.x < b.x; }
};

constexpr Lit kLitUndef{-2};

constexpr Lit mkLit(Var v, bool sign = false) {
  return Lit{v * 2 + (sign ? 1 : 0)};
}
constexpr Lit operator~(Lit l) { return Lit{l.x ^ 1}; }
constexpr Var varOf(Lit l) { return l.x >> 1; }
constexpr bool signOf(Lit l) { return (l.x & 1) != 0; }

enum class Verdict : std::uint8_t {
  kSat,      ///< satisfying assignment found (model available)
  kUnsat,    ///< proved unsatisfiable
  kUnknown,  ///< conflict budget exhausted before a verdict
};

/// Resource limits for one solve() call.  0 = unlimited.
struct Limits {
  std::uint64_t max_conflicts = 0;
};

/// Cumulative search statistics (monotone across solve() calls).
struct Stats {
  std::uint64_t conflicts = 0;
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t restarts = 0;
  std::uint64_t learned = 0;  ///< learnt clauses added
};

class Solver {
 public:
  Solver();

  /// Allocates a fresh variable; returns its index.
  Var newVar();
  [[nodiscard]] int numVars() const { return static_cast<int>(assign_.size()); }

  /// Adds a clause (empty vector = immediate contradiction).  The clause is
  /// canonicalized: literals sorted, duplicates merged, tautologies dropped,
  /// literals already false at level 0 removed.  Returns false when the
  /// formula became trivially unsatisfiable (okay() turns false too).
  bool addClause(const std::vector<Lit>& lits);
  bool addClause(Lit a) { return addClause(std::vector<Lit>{a}); }
  bool addClause(Lit a, Lit b) { return addClause(std::vector<Lit>{a, b}); }
  bool addClause(Lit a, Lit b, Lit c) {
    return addClause(std::vector<Lit>{a, b, c});
  }

  /// Runs the CDCL search.  Repeated calls are allowed (incremental in the
  /// weak sense: clauses added between calls are honored; no assumptions).
  Verdict solve(const Limits& limits = {});

  /// Model access after solve() returned kSat.  Unconstrained variables
  /// default to false (deterministically).
  [[nodiscard]] bool modelValue(Var v) const;

  /// False once a contradiction was derived at level 0.
  [[nodiscard]] bool okay() const { return ok_; }

  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  // Truth values: 0 = true, 1 = false, 2 = undefined (MiniSat lbool trick:
  // value(lit) = assign[var] ^ sign, so 0/1 flip under negation and 2 is a
  // fixed point under ^1 ... it is not, so undefined is tested explicitly).
  static constexpr std::uint8_t kTrue = 0;
  static constexpr std::uint8_t kFalse = 1;
  static constexpr std::uint8_t kUndef = 2;

  using Cref = std::int32_t;
  static constexpr Cref kCrefUndef = -1;

  struct Clause {
    std::vector<Lit> lits;
    double activity = 0.0;
    bool learnt = false;
    bool deleted = false;
  };

  struct Watcher {
    Cref cref = kCrefUndef;
    Lit blocker = kLitUndef;
  };

  [[nodiscard]] std::uint8_t valueVar(Var v) const { return assign_[v]; }
  [[nodiscard]] std::uint8_t valueLit(Lit l) const {
    const std::uint8_t a = assign_[varOf(l)];
    return a == kUndef ? kUndef : static_cast<std::uint8_t>(a ^ (l.x & 1));
  }

  void attachClause(Cref c);
  void enqueue(Lit l, Cref reason);
  Cref propagate();
  void analyze(Cref conflict, std::vector<Lit>& out_learnt, int& out_level);
  void backtrack(int level);
  [[nodiscard]] Lit pickBranchLit();
  void varBumpActivity(Var v);
  void varDecayActivity();
  void claBumpActivity(Clause& c);
  void claDecayActivity();
  void reduceDb();

  // Indexed binary max-heap over variable activity; equal activities are
  // ordered by ascending variable index, which is what makes the whole
  // search deterministic.
  [[nodiscard]] bool heapLt(Var a, Var b) const;
  void heapDecrease(Var v);
  void heapInsert(Var v);
  Var heapRemoveMax();
  [[nodiscard]] bool heapContains(Var v) const {
    return heap_index_[v] >= 0;
  }
  void heapSiftUp(int i);
  void heapSiftDown(int i);

  bool ok_ = true;
  std::vector<Clause> clauses_;        // arena; crefs index into it
  std::vector<Cref> learnts_;          // learnt crefs, insertion order
  std::vector<std::vector<Watcher>> watches_;  // per literal index
  std::vector<std::uint8_t> assign_;   // per var
  std::vector<std::uint8_t> polarity_; // phase saving: last sign per var
  std::vector<double> activity_;       // per var
  std::vector<Cref> reason_;           // per var
  std::vector<std::int32_t> level_;    // per var
  std::vector<Lit> trail_;
  std::vector<std::int32_t> trail_lim_;
  std::size_t qhead_ = 0;

  std::vector<Var> heap_;              // binary heap of vars
  std::vector<std::int32_t> heap_index_;  // var -> heap position or -1

  std::vector<std::uint8_t> seen_;     // analyze() scratch
  std::vector<std::uint8_t> model_;    // saved assignment after kSat

  double var_inc_ = 1.0;
  double cla_inc_ = 1.0;
  double max_learnts_ = 0.0;
  Stats stats_;
};

}  // namespace desync::sat
