// Flow instrumentation: per-pass wall times and work counters.
//
// Every pass of desynchronize() runs under a ScopedPass, which records its
// wall-clock time and whatever counters the pass reports (cells, nets,
// regions, replaced flip-flops, ...).  The collected FlowReport travels in
// DesyncResult; `drdesync --report` serializes it as JSON (schema in the
// README) and bench_tool_runtime republishes the per-pass times as
// benchmark counters, so pass-level regressions show up in CI benchmarks
// without re-profiling.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "trace/trace.h"

namespace desync::core {

/// One timed pass of the flow.
struct PassStat {
  std::string name;
  double wall_ms = 0.0;
  /// Summed per-task time of the pass's parallel section (0 when the pass
  /// ran serially).  work_ms / wall_ms is the realized speedup; toJson
  /// emits both so `--report` exposes the scaling at the current --jobs.
  double work_ms = 0.0;
  /// How the pass's result was obtained: "computed" (ran), "cache"
  /// (restored from a FlowDB cache entry) or "checkpoint" (restored via
  /// `--resume`).  For restored passes wall_ms is the restore cost, so
  /// `--report` exposes per-pass restore-vs-compute time directly.
  std::string source = "computed";
  /// Pass-specific work counters, in insertion order (e.g. "cells",
  /// "nets", "ffs_replaced").
  std::vector<std::pair<std::string, std::int64_t>> counters;

  [[nodiscard]] std::int64_t counter(std::string_view key,
                                     std::int64_t fallback = -1) const {
    for (const auto& [k, v] : counters) {
      if (k == key) return v;
    }
    return fallback;
  }
};

/// FlowDB cache traffic of one flow run (zeroed / disabled when the flow
/// ran without --cache-dir).  Serialized as the top-level "cache" object.
struct FlowCacheStats {
  bool enabled = false;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  /// Total time spent restoring cached state vs computing passes.
  double restore_ms = 0.0;
  double compute_ms = 0.0;
};

/// Ordered collection of pass statistics for one flow run.
class FlowReport {
 public:
  /// Appends a pass record and returns it for filling in.  References are
  /// invalidated by further addPass calls — use the returned reference
  /// immediately (ScopedPass does this correctly).
  PassStat& addPass(std::string name);

  [[nodiscard]] const std::vector<PassStat>& passes() const {
    return passes_;
  }
  /// Worker count the flow ran with (core::effectiveJobs() at flow entry);
  /// 0 when never set.  Serialized as the top-level "jobs" field.
  void setJobs(int jobs) { jobs_ = jobs; }
  [[nodiscard]] int jobs() const { return jobs_; }
  /// First pass with the given name; nullptr when absent.
  [[nodiscard]] const PassStat* find(std::string_view name) const;
  /// Sum of all pass wall times.
  [[nodiscard]] double totalMs() const;

  /// FlowDB cache traffic; stats.enabled gates the "cache" JSON object.
  void setCacheStats(FlowCacheStats stats) { cache_ = std::move(stats); }
  [[nodiscard]] const FlowCacheStats& cacheStats() const { return cache_; }

  /// Bit-parallel simulator statistics of this run's flow-equivalence
  /// check (sim/bitsim counter deltas across the check).  Serialized as
  /// the top-level "bitsim" object when at least one plan was compiled,
  /// i.e. only when the check actually took the bit-parallel path.
  struct BitsimSection {
    std::uint64_t compiles = 0;   ///< plans compiled
    double compile_ms = 0.0;      ///< total plan-compile time
    std::int64_t levels = 0;      ///< deepest compiled plan (comb levels)
    int lanes = 0;                ///< vector lanes per pass (64)
    std::uint64_t cycles = 0;     ///< clock cycles evaluated
    std::uint64_t lane_vectors = 0;  ///< cycles * lanes
    double eval_ms = 0.0;         ///< total evaluation time
    double vectors_per_sec = 0.0;  ///< lane_vectors / eval seconds
  };
  void setBitsim(BitsimSection bitsim) { bitsim_ = bitsim; }
  [[nodiscard]] const BitsimSection& bitsim() const { return bitsim_; }

  /// Symbolic flow-equivalence prover statistics (fe_prove pass).
  /// Serialized as the top-level "symfe" object when the pass ran.
  struct SymfeSection {
    bool ran = false;
    std::int64_t registers = 0;
    std::int64_t proved = 0;
    std::int64_t refuted = 0;
    std::int64_t skipped = 0;
    std::int64_t restored = 0;    ///< subset of proved: ECO-restored
    std::int64_t conflicts = 0;   ///< total solver conflicts
    std::int64_t decisions = 0;   ///< total solver decisions
    std::int64_t protocol_states = 0;  ///< markings explored (fully dec.)
    bool protocol_admissible = true;
    bool comb_only = false;
    double ms = 0.0;
  };
  void setSymfe(SymfeSection symfe) {
    symfe_ = symfe;
    symfe_.ran = true;
  }
  [[nodiscard]] const SymfeSection& symfe() const { return symfe_; }

  /// Incremental-recompute statistics of an `--eco` run (core/eco.h).
  /// Serialized as the top-level "eco" object when the ECO layer ran.
  struct EcoSection {
    bool ran = false;   ///< gates the JSON object; set by setEco
    bool warm = false;  ///< region tables loaded and guard key matched
    std::int64_t regions_total = 0;
    std::int64_t regions_dirty = 0;     ///< regions whose key changed
    std::int64_t regions_restored = 0;  ///< timing restored, STA skipped
    std::int64_t registers_restored = 0;  ///< symfe proofs restored
    std::int64_t endpoints_restored = 0;  ///< reference-STA entries reused
    std::int64_t cells_changed = 0;  ///< diffed records (incl. removed)
    std::int64_t nets_changed = 0;
    std::int64_t dirty_endpoints = 0;  ///< forward closure of the edit
  };
  void setEco(EcoSection eco) {
    eco_ = eco;
    eco_.ran = true;
  }
  [[nodiscard]] const EcoSection& eco() const { return eco_; }

  /// Pool contention this flow experienced (core::poolStats() delta across
  /// the run): how many of its parallel sections had to wait for another
  /// top-level caller's section, and for how long.  Serialized as the
  /// top-level "pool" object when any section was contended, so serialized
  /// concurrent requests are visible in `--report` instead of silent.
  void setPoolContention(std::uint64_t contended, double wait_ms) {
    pool_contended_ = contended;
    pool_wait_ms_ = wait_ms;
  }
  [[nodiscard]] std::uint64_t poolContended() const { return pool_contended_; }

  /// Appends a free-form diagnostic note (e.g. "cache entry invalid:
  /// ...").  Serialized as the top-level "notes" array when non-empty.
  void note(std::string text) { notes_.push_back(std::move(text)); }
  [[nodiscard]] const std::vector<std::string>& notes() const {
    return notes_;
  }

  /// Post-trace statistics from trace::finish() (`--trace` runs only);
  /// serialized as the top-level "trace" object when enabled.
  void setTraceSummary(trace::Summary summary) {
    trace_ = std::move(summary);
  }
  [[nodiscard]] const std::optional<trace::Summary>& traceSummary() const {
    return trace_;
  }

  /// Serializes as a JSON object:
  ///   {"total_ms": 12.3, "jobs": 4,
  ///    "cache": {"hits": 5, "misses": 2, "bytes_read": 1024,
  ///              "bytes_written": 2048, "restore_ms": 0.8,
  ///              "compute_ms": 11.5},
  ///    "passes": [{"name": "...", "wall_ms": 1.2, "source": "computed",
  ///                "work_ms": 4.6, "speedup": 3.83, "cells": 42, ...}],
  ///    "notes": ["..."]}
  /// Counter keys become sibling fields of name/wall_ms within each pass
  /// object; work_ms/speedup appear only for passes with a parallel
  /// section; "cache"/"notes"/"trace"/"bitsim" appear only when cache
  /// stats are enabled / notes exist / a trace summary was attached / the
  /// flow-equivalence check compiled a bit-parallel plan.  The "trace"
  /// object carries the trace file path, event totals, worker-track count
  /// and utilization, and per-pass self times (docs/report-schema.md).
  /// `indent` < 0 emits a single line.
  [[nodiscard]] std::string toJson(int indent = 2) const;

 private:
  std::vector<PassStat> passes_;
  int jobs_ = 0;
  BitsimSection bitsim_;
  SymfeSection symfe_;
  EcoSection eco_;
  std::uint64_t pool_contended_ = 0;
  double pool_wait_ms_ = 0.0;
  FlowCacheStats cache_;
  std::vector<std::string> notes_;
  std::optional<trace::Summary> trace_;
};

/// RAII pass timer: measures from construction to destruction and appends
/// a PassStat (with any counters registered in between) to the report.
class ScopedPass {
 public:
  ScopedPass(FlowReport& report, std::string name);
  ~ScopedPass();
  ScopedPass(const ScopedPass&) = delete;
  ScopedPass& operator=(const ScopedPass&) = delete;

  /// Records a work counter reported with the pass.
  void counter(std::string key, std::int64_t value);
  /// Accumulates per-task time of the pass's parallel section.
  void work(double ms) { work_ms_ += ms; }
  /// Overrides the pass source ("computed" by default).
  void source(std::string s) { source_ = std::move(s); }

 private:
  FlowReport* report_;
  std::string name_;
  std::vector<std::pair<std::string, std::int64_t>> counters_;
  double work_ms_ = 0.0;
  std::string source_ = "computed";
  std::chrono::steady_clock::time_point start_;
  /// "pass"-category trace span covering the pass body (declared last so
  /// its end event is recorded as the pass scope closes).
  trace::Span span_;
};

}  // namespace desync::core
