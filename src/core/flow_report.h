// Flow instrumentation: per-pass wall times and work counters.
//
// Every pass of desynchronize() runs under a ScopedPass, which records its
// wall-clock time and whatever counters the pass reports (cells, nets,
// regions, replaced flip-flops, ...).  The collected FlowReport travels in
// DesyncResult; `drdesync --report` serializes it as JSON (schema in the
// README) and bench_tool_runtime republishes the per-pass times as
// benchmark counters, so pass-level regressions show up in CI benchmarks
// without re-profiling.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace desync::core {

/// One timed pass of the flow.
struct PassStat {
  std::string name;
  double wall_ms = 0.0;
  /// Summed per-task time of the pass's parallel section (0 when the pass
  /// ran serially).  work_ms / wall_ms is the realized speedup; toJson
  /// emits both so `--report` exposes the scaling at the current --jobs.
  double work_ms = 0.0;
  /// Pass-specific work counters, in insertion order (e.g. "cells",
  /// "nets", "ffs_replaced").
  std::vector<std::pair<std::string, std::int64_t>> counters;

  [[nodiscard]] std::int64_t counter(std::string_view key,
                                     std::int64_t fallback = -1) const {
    for (const auto& [k, v] : counters) {
      if (k == key) return v;
    }
    return fallback;
  }
};

/// Ordered collection of pass statistics for one flow run.
class FlowReport {
 public:
  /// Appends a pass record and returns it for filling in.  References are
  /// invalidated by further addPass calls — use the returned reference
  /// immediately (ScopedPass does this correctly).
  PassStat& addPass(std::string name);

  [[nodiscard]] const std::vector<PassStat>& passes() const {
    return passes_;
  }
  /// Worker count the flow ran with (core::globalJobs() at flow entry);
  /// 0 when never set.  Serialized as the top-level "jobs" field.
  void setJobs(int jobs) { jobs_ = jobs; }
  [[nodiscard]] int jobs() const { return jobs_; }
  /// First pass with the given name; nullptr when absent.
  [[nodiscard]] const PassStat* find(std::string_view name) const;
  /// Sum of all pass wall times.
  [[nodiscard]] double totalMs() const;

  /// Serializes as a JSON object:
  ///   {"total_ms": 12.3, "jobs": 4,
  ///    "passes": [{"name": "...", "wall_ms": 1.2,
  ///                "work_ms": 4.6, "speedup": 3.83, "cells": 42, ...}]}
  /// Counter keys become sibling fields of name/wall_ms within each pass
  /// object; work_ms/speedup appear only for passes with a parallel
  /// section.  `indent` < 0 emits a single line.
  [[nodiscard]] std::string toJson(int indent = 2) const;

 private:
  std::vector<PassStat> passes_;
  int jobs_ = 0;
};

/// RAII pass timer: measures from construction to destruction and appends
/// a PassStat (with any counters registered in between) to the report.
class ScopedPass {
 public:
  ScopedPass(FlowReport& report, std::string name);
  ~ScopedPass();
  ScopedPass(const ScopedPass&) = delete;
  ScopedPass& operator=(const ScopedPass&) = delete;

  /// Records a work counter reported with the pass.
  void counter(std::string key, std::int64_t value);
  /// Accumulates per-task time of the pass's parallel section.
  void work(double ms) { work_ms_ += ms; }

 private:
  FlowReport* report_;
  std::string name_;
  std::vector<std::pair<std::string, std::int64_t>> counters_;
  double work_ms_ = 0.0;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace desync::core
