#include "core/run_report.h"

#include <cstdio>
#include <sstream>

#include "core/version.h"
#include "flowdb/snapshot.h"
#include "trace/trace.h"

namespace desync::core {

namespace {

std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    // Control characters must be escaped too: error messages can carry
    // newlines, and the server embeds this JSON in single-line replies.
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Appends FlowReport::toJson (a nested multi-line object) re-indented two
/// spaces under the "flow" key.
void appendFlow(std::ostringstream& os, const FlowReport& flow) {
  std::istringstream flow_in(flow.toJson());
  os << "  \"flow\": ";
  std::string line;
  bool first = true;
  while (std::getline(flow_in, line)) {
    os << (first ? "" : "\n  ") << line;
    first = false;
  }
}

void openReport(std::ostringstream& os, const RunInfo& info) {
  os.precision(6);
  os << std::fixed;
  os << "{\n";
  os << "  \"input\": \"" << jsonEscape(info.input) << "\",\n";
  os << "  \"tool_version\": \"" << kToolVersion << "\",\n";
  os << "  \"snapshot_format_version\": " << flowdb::kSnapshotFormatVersion
     << ",\n";
}

}  // namespace

/// The deterministic design facts shared by the full and canonical
/// reports: everything here is a pure function of the input design and
/// flow options, never of timing, jobs, or cache state.
void appendDesignFacts(std::ostringstream& os, const RunInfo& info,
                       const DesyncResult& result) {
  os << "  \"cells_in\": " << info.cells_in << ",\n";
  os << "  \"cells_out\": " << info.cells_out << ",\n";
  os << "  \"nets_out\": " << info.nets_out << ",\n";
  os << "  \"regions\": " << result.regions.n_groups << ",\n";
  os << "  \"ffs_replaced\": " << result.substitution.ffs_replaced << ",\n";
  os << "  \"sync_min_period_ns\": " << result.sync_min_period_ns << ",\n";
  os << "  \"sync_min_period_by_corner\": {";
  for (std::size_t i = 0; i < result.corner_periods.size(); ++i) {
    const DesyncResult::CornerPeriod& cp = result.corner_periods[i];
    os << (i == 0 ? "" : ", ") << "\"" << jsonEscape(cp.corner)
       << "\": " << cp.min_period_ns;
  }
  os << "},\n";
  os << "  \"delay_elements\": [";
  for (std::size_t i = 0; i < result.control.regions.size(); ++i) {
    const RegionControl& rc = result.control.regions[i];
    os << (i == 0 ? "" : ",") << "\n    {\"group\": " << rc.group
       << ", \"levels\": " << rc.delay_levels
       << ", \"cloud_ns\": " << rc.required_delay_ns
       << ", \"matched_ns\": " << rc.matched_delay_ns << "}";
  }
  os << (result.control.regions.empty() ? "" : "\n  ") << "]";
}

std::string runReportJson(const RunInfo& info, const DesyncResult& result) {
  std::ostringstream os;
  openReport(os, info);
  appendDesignFacts(os, info, result);
  os << ",\n";
  if (result.fe.ran) {
    // Engine-independent by construction: both engines produce identical
    // capture sequences (tests/bitsim_test.cpp), so this object never
    // depends on --fe-engine.
    const sim::FlowEqBatchReport& fe = result.fe.report;
    // "vacuous" is the honesty bit: with no flip-flop replaced there are
    // no capture sequences to compare, and "equivalent: true" alone would
    // overstate what the vector route checked.
    const bool vacuous = result.substitution.ffs_replaced == 0;
    os << "  \"fe\": {\"equivalent\": " << (fe.equivalent ? "true" : "false")
       << ", \"vacuous\": " << (vacuous ? "true" : "false")
       << ", \"batches\": " << fe.batches_run
       << ", \"elements_compared\": " << fe.elements_compared
       << ", \"values_compared\": " << fe.values_compared
       << ", \"mismatches\": " << fe.mismatches << "},\n";
  }
  if (result.symfe.ran) {
    const sim::symfe::SymfeReport& sf = result.symfe.report;
    os << "  \"symfe\": {\"ok\": " << (sf.ok() ? "true" : "false")
       << ", \"registers\": " << sf.registers.size()
       << ", \"proved\": " << sf.proved << ", \"refuted\": " << sf.refuted
       << ", \"skipped\": " << sf.skipped
       << ", \"conflicts\": " << sf.conflicts
       << ", \"decisions\": " << sf.decisions
       << ", \"comb_only\": " << (sf.comb_only ? "true" : "false")
       << ", \"protocol\": {\"checked\": "
       << (sf.protocol.checked ? "true" : "false") << ", \"admissible\": "
       << (sf.protocol.admissible ? "true" : "false") << ", \"controller\": \""
       << jsonEscape(sf.protocol.controller)
       << "\", \"channels\": " << sf.protocol.channels
       << ", \"states_explored\": " << sf.protocol.states_explored
       << "}, \"ms\": " << sf.total_ms << "},\n";
  }
  appendFlow(os, result.flow);
  os << "\n}\n";
  return os.str();
}

std::string canonicalRunReportJson(const RunInfo& info,
                                   const DesyncResult& result) {
  std::ostringstream os;
  openReport(os, info);
  appendDesignFacts(os, info, result);
  os << "\n}\n";
  return os.str();
}

std::string errorReportJson(const RunInfo& info, std::string_view error,
                            std::string_view failed_pass,
                            const FlowReport& flow) {
  std::ostringstream os;
  openReport(os, info);
  os << "  \"error\": \"" << jsonEscape(error) << "\",\n";
  if (!failed_pass.empty()) {
    os << "  \"failed_pass\": \"" << jsonEscape(failed_pass) << "\",\n";
    // The failing pass's ScopedPass records its elapsed time during
    // unwinding, so the partial report can say how long it ran before
    // dying.
    if (const PassStat* p = flow.find(failed_pass)) {
      os << "  \"failed_pass_ms\": " << p->wall_ms << ",\n";
    }
  }
  // Innermost trace span the exception unwound through — the closest
  // instrumented scope to the failure point (`--trace` runs only).
  const std::string span = trace::lastUnwoundSpan();
  if (!span.empty()) {
    os << "  \"last_open_span\": \"" << jsonEscape(span) << "\",\n";
  }
  appendFlow(os, flow);
  os << "\n}\n";
  return os.str();
}

}  // namespace desync::core
