// Incremental ECO recompute (docs/eco.md).
//
// An engineering change order touches a handful of cells; re-running the
// whole flow repays none of the work already done for the untouched 99 %.
// The ECO layer makes `drdesync --eco` warm runs pay only for what the
// edit actually dirtied:
//
//  * The input netlist is diffed against per-object record hashes stored
//    from the previous run (no netlist snapshot is kept — only 16 bytes
//    per cell/net/port).  The changed records seed two forward closures
//    over the combinational fan-out, both stopping at sequential
//    boundaries.  The *functional* closure starts from changed nets,
//    ports and the changed cells' output nets; every sequential cell it
//    reaches (through any pin) is a dirty endpoint whose timing and
//    next-state function the edit can reach.  The *timing-only* closure
//    additionally starts from the changed cells' input nets — a cell
//    changed in place changes its input pin caps, so the loads of its
//    input nets and the arrival of every sibling sink move — but it only
//    dirties sequential sinks through timing-endpoint pins (data, scan,
//    sync), so a changed register does not functionally dirty every
//    register sharing its clock net.
//  * reference_sta re-analyzes only the backward cone of the dirty
//    endpoints (a net mask handed to sta::Sta); clean endpoints restore
//    their stored per-corner contributions, and the merged per-endpoint
//    max reproduces the full run's minimum period bit for bit.
//  * region_timing keeps two tables: the worst arrival+setup at each
//    master latch (keyed by the original register's name) and each
//    region's matched-delay requirement (keyed by a membership key over
//    the member registers' names).  A latch is clean exactly when its
//    register is not a dirty endpoint — the requirement is a pure max
//    over member-latch worsts, so a region whose membership key matches
//    and whose members are all clean restores its requirement outright,
//    and a dirty region re-times only its dirty latches' cones under a
//    mask, merging the stored worsts of its clean members.
//  * fe_prove restores the stored per-register proofs of clean registers
//    (their cones are untouched, so the verdicts still hold) and re-proves
//    only the dirty ones; the protocol admissibility check is restored
//    when the region/DDG summary is fingerprint-identical.
//
// Everything mutating the netlist (substitution, buffering, control
// network, SDC) re-runs unconditionally, so a warm ECO run writes
// byte-identical Verilog and SDC to a cold run on the same edited design.
// The tables live in one FlowDB slot per design, guarded by a
// configuration key (tool/format version, library fingerprint, pass
// options, FE mode); any mismatch or parse failure degrades to a cold run
// with a note, never an error.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/control_network.h"
#include "core/flow_report.h"
#include "core/regions.h"
#include "flowdb/cache.h"
#include "flowdb/hash.h"
#include "liberty/gatefile.h"
#include "netlist/netlist.h"
#include "sim/symfe/symfe.h"
#include "sta/sta.h"

namespace desync::core {

/// One flow run's incremental-recompute state: loads the previous run's
/// tables, diffs the input module, and serves restore queries to the
/// passes.  Constructed by FlowSession in --eco mode before any pass runs
/// (the module must still be the unmodified input); finish() stores the
/// updated tables after the FE passes complete.
class EcoContext {
 public:
  /// Fixed corner count of the reference STA (best/typical/worst).
  static constexpr std::size_t kCorners = 3;

  /// Loads the design's slot from `cache`, checks `guard` (the
  /// configuration key — see FlowSession), digests `module` and, when
  /// warm, computes the dirty-endpoint closure.  Diagnostics go to `flow`
  /// notes; the whole diff runs under an "eco_diff" trace span.
  EcoContext(flowdb::PassCache& cache, const netlist::Module& module,
             const liberty::Gatefile& gatefile, const flowdb::CacheKey& guard,
             FlowReport& flow);

  /// Tables loaded, guard matched and the edit small enough to bound: the
  /// restore queries below may return stored results.  False = cold ECO
  /// run (everything recomputes, tables are still stored at finish()).
  [[nodiscard]] bool warm() const { return warm_; }

  // --- reference_sta ------------------------------------------------------

  /// Backward-closed net mask covering the dirty endpoints' input cones on
  /// the input module; nullptr when the full analysis must run (cold, or
  /// everything dirty).  Valid until the module is mutated.
  [[nodiscard]] const std::vector<std::uint8_t>* refstaMask() const;

  /// Disables the stored reference-STA table for this run (called when the
  /// masked analysis had to break loops, so its arrivals are not
  /// comparable); referencePeriods() then uses the recomputed-only merge.
  void dropStoredRefsta() { refsta_stored_usable_ = false; }

  /// Merges stored clean-endpoint contributions with the (masked or full)
  /// recomputed ones and returns the per-corner minimum periods,
  /// bit-identical to Sta::minPeriodNs() of an unmasked run.  `analyses`
  /// must be the kCorners corner analyses in index order.
  std::vector<double> referencePeriods(
      const netlist::Module& module,
      const std::vector<std::unique_ptr<sta::Sta>>& analyses);

  // --- region keys + region_timing ----------------------------------------

  /// Captures each region's membership key on the cleaned,
  /// pre-substitution module (the grouping pass calls this at the end of
  /// its body): a sorted hash of the member registers' names.  The key
  /// deliberately covers only *membership* — a register migrating between
  /// regions re-keys both — because content validity is the dirty-endpoint
  /// closure's job: the stored requirement is a pure max over member-latch
  /// worsts, each valid exactly when its register is not dirty.  Nothing
  /// run-dependent (jobs, corner order) enters the key.
  void captureRegionKeys(const netlist::Module& module,
                         const Regions& regions);

  struct RegionTimingOutcome {
    RegionTiming timing;
    std::int64_t dirty = 0;
    std::int64_t restored = 0;
  };

  /// ECO-aware replacement for computeRegionTiming(): restores the stage
  /// delay and every clean region's requirement from the tables, always
  /// re-inserts buffer trees (output mutation), and runs a masked STA over
  /// the dirty latches' cones only, merging stored per-latch worsts for
  /// the clean members of dirty regions.  Cold runs compute everything.
  RegionTimingOutcome regionTiming(netlist::Module& module,
                                   const liberty::Gatefile& gatefile,
                                   const Regions& regions);

  // --- fe_prove -----------------------------------------------------------

  /// Stored kProved verdicts of registers that are not dirty and still
  /// exist; handed to SymfeOptions::restored_proofs.  Empty when cold.
  [[nodiscard]] const std::unordered_map<std::string, sim::symfe::RestoredProof>&
  restoredProofs() const {
    return restorable_proofs_;
  }

  /// Fingerprint of the protocol check's full input (region activity, DDG
  /// edges, controller kind); the check is pure in it.
  [[nodiscard]] static std::uint64_t protocolFingerprint(
      const sim::symfe::ProtocolInput& input, int controller_kind);

  /// True when the stored protocol report was produced from an identical
  /// input and can replace the check.
  [[nodiscard]] bool protocolRestorable(std::uint64_t fingerprint) const {
    return warm_ && has_stored_protocol_ && stored_protocol_fp_ == fingerprint;
  }
  [[nodiscard]] const sim::symfe::ProtocolReport& restoredProtocol() const {
    return stored_protocol_;
  }

  /// Records this run's proof results and protocol report for the next
  /// run's tables (call with the final SymfeReport, restored proofs
  /// included).
  void recordSymfe(const sim::symfe::SymfeReport& report,
                   std::uint64_t protocol_fingerprint);

  // ------------------------------------------------------------------------

  /// Stores the updated tables into the cache slot and publishes the "eco"
  /// report section.  Call once, after the FE passes.
  void finish(FlowReport& flow);

 private:
  void loadTables(FlowReport& flow);
  void diffAndClose(FlowReport& flow);
  [[nodiscard]] bool endpointLive(const netlist::Module& module,
                                  const std::string& name) const;
  /// True when `name`'s timing can differ from the stored run (member of
  /// either closure); symfe restores consult dirty_endpoints_ alone.
  [[nodiscard]] bool timingDirty(const std::string& name) const {
    return dirty_endpoints_.count(name) != 0 || timing_dirty_.count(name) != 0;
  }

  /// One diffed object: FNV-64 of the name (the diff key), the record
  /// digest, and — for cells — the FNV-64 of the type name (seeds the
  /// load-coupling closure; zero for nets and ports).
  struct ObjectDigest {
    std::uint64_t key = 0;
    std::uint64_t rec = 0;
    std::uint64_t type = 0;
  };

  flowdb::PassCache& cache_;
  const netlist::Module& input_module_;
  const liberty::Gatefile& gatefile_;
  flowdb::CacheKey guard_;
  std::string slot_name_;
  bool warm_ = false;
  bool refsta_stored_usable_ = true;

  // Previous run's tables (loaded; digest arrays are sorted by key for
  // binary-search lookup and dropped after the diff).
  std::vector<ObjectDigest> stored_cells_;
  std::vector<ObjectDigest> stored_nets_;
  std::vector<ObjectDigest> stored_ports_;
  std::unordered_map<std::string, std::array<double, kCorners>> stored_refsta_;
  bool has_stored_per_level_ = false;
  double stored_per_level_ = 0.0;
  std::map<std::pair<std::uint64_t, std::uint64_t>, double> stored_regions_;
  std::unordered_map<std::string, double> stored_latches_;
  std::unordered_map<std::string, sim::symfe::RestoredProof> stored_symfe_;
  bool has_stored_protocol_ = false;
  std::uint64_t stored_protocol_fp_ = 0;
  sim::symfe::ProtocolReport stored_protocol_;

  // This run's digests of the input module (stored at finish(), in module
  // iteration order).  Cells additionally carry a type hash: a cell
  // changed *in place with a new type* changes its input pin caps (a load
  // effect no net record sees), while binding changes always dirty the
  // affected nets' own records.
  std::vector<ObjectDigest> cell_digests_;
  std::vector<ObjectDigest> net_digests_;
  std::vector<ObjectDigest> port_digests_;

  // Diff products (warm runs only).  `dirty_endpoints_` is the functional
  // closure (timing + next-state function affected); `timing_dirty_` holds
  // the endpoints the load-coupling closure additionally reaches (timing
  // affected, function untouched — their symfe proofs still restore).
  std::unordered_set<std::string> dirty_endpoints_;
  std::unordered_set<std::string> timing_dirty_;
  std::vector<std::uint8_t> refsta_mask_;
  std::unordered_map<std::string, sim::symfe::RestoredProof>
      restorable_proofs_;

  // Region keys captured by the grouping pass, index-aligned with groups.
  std::vector<flowdb::CacheKey> region_keys_;

  // This run's table contents, accumulated by the restore queries.
  bool new_refsta_broken_ = false;  ///< arrivals depend on loop cuts
  std::unordered_map<std::string, std::array<double, kCorners>> new_refsta_;
  double new_per_level_ = 0.0;
  std::map<std::pair<std::uint64_t, std::uint64_t>, double> new_regions_;
  std::unordered_map<std::string, double> new_latches_;
  std::unordered_map<std::string, sim::symfe::RestoredProof> new_symfe_;
  bool new_has_protocol_ = false;
  std::uint64_t new_protocol_fp_ = 0;
  sim::symfe::ProtocolReport new_protocol_;

  FlowReport::EcoSection stats_;
};

}  // namespace desync::core
