#include "core/eco.h"

#include <algorithm>
#include <exception>
#include <optional>

#include "core/buffering.h"
#include "flowdb/io.h"
#include "trace/trace.h"

namespace desync::core {

using netlist::CellId;
using netlist::Module;
using netlist::NetId;
using netlist::PinConn;
using netlist::Port;
using netlist::PortDir;
using netlist::PortId;
using netlist::TermRef;

namespace {

constexpr std::string_view kSlotMagic = "DSYNCECO";

/// Diffing works on 64-bit FNV name hashes, never on recovered names: a
/// removed object surfaces through its neighbors' changed records, so no
/// reverse map is needed.  A cross-name collision would merge two objects'
/// diff slots (a ~1e-10 event at these sizes, see docs/eco.md);
/// the merged record then differs from both and the objects diff dirty —
/// the safe direction.
std::uint64_t nameHash(std::string_view name) {
  flowdb::Fnv64 h;
  h.update(name);
  return h.digest();
}

/// Per-NameId FNV memo.  Record digests combine 64-bit name hashes
/// instead of re-hashing the strings: a net's name is absorbed by its own
/// record and again by every neighbor's, so each unique name is hashed
/// char-by-char exactly once per diff.  The memoized value is the plain
/// FNV of the string, so digests stay stable across processes (NameId
/// numbering is not).
class NameHashes {
 public:
  explicit NameHashes(const netlist::NameTable& names) : names_(names) {}
  std::uint64_t of(netlist::NameId id) {
    const std::size_t i = id.value;
    if (i >= done_.size()) {
      const std::size_t want = std::max(names_.size(), i + 1);
      done_.resize(want, 0);
      memo_.resize(want, 0);
    }
    if (done_[i] == 0) {
      done_[i] = 1;
      memo_[i] = nameHash(names_.str(id));
    }
    return memo_[i];
  }

 private:
  const netlist::NameTable& names_;
  std::vector<std::uint64_t> memo_;
  std::vector<std::uint8_t> done_;
};

// The record helpers take the module's raw slot arrays rather than going
// through the checked accessors: the digest visits every field of every
// object, and the per-access liveness validation is measurable there.
void hashTerm(flowdb::Fnv64& h, const std::vector<netlist::Cell>& cells,
              const std::vector<Port>& ports, NameHashes& names,
              const TermRef& t) {
  h.u64(static_cast<std::uint64_t>(t.kind));
  if (t.isCellPin()) {
    h.u64(names.of(cells[t.cell().index()].name));
    h.u64(t.pin);
  } else if (t.isPort()) {
    h.u64(names.of(ports[t.port().index()].name));
  }
}

/// Everything a cell contributes to downstream passes: identity, type
/// (function, timing, sequential class), pin binding and the SDC-relevant
/// attributes.  Connected nets appear by name so a rebind dirties the cell.
std::uint64_t cellRecord(const netlist::Cell& cell,
                         const std::vector<netlist::Net>& nets,
                         NameHashes& names) {
  flowdb::Fnv64 h;
  h.u64(names.of(cell.name));
  h.u64(names.of(cell.type));
  h.u64(cell.pins.size());
  for (const PinConn& pc : cell.pins) {
    h.u64(names.of(pc.name));
    h.u64(static_cast<std::uint64_t>(pc.dir));
    if (pc.net.valid()) {
      h.u64(1);
      h.u64(names.of(nets[pc.net.index()].name));
    } else {
      h.u64(0);
    }
  }
  h.u64(cell.size_only ? 1 : 0);
  h.u64(cell.dont_touch ? 1 : 0);
  return h.digest();
}

std::uint64_t netRecord(const netlist::Net& net,
                        const std::vector<netlist::Cell>& cells,
                        const std::vector<Port>& ports, NameHashes& names) {
  flowdb::Fnv64 h;
  h.u64(names.of(net.name));
  if (net.bus.valid()) {
    h.u64(1);
    h.u64(names.of(net.bus.bus));
    h.u64(static_cast<std::uint64_t>(net.bus.bit));
  } else {
    h.u64(0);
  }
  hashTerm(h, cells, ports, names, net.driver);
  h.u64(net.sinks.size());
  for (const TermRef& s : net.sinks) hashTerm(h, cells, ports, names, s);
  h.u64(net.false_path ? 1 : 0);
  return h.digest();
}

std::uint64_t portRecord(const Port& p, const std::vector<netlist::Net>& nets,
                         NameHashes& names) {
  flowdb::Fnv64 h;
  h.u64(names.of(p.name));
  h.u64(static_cast<std::uint64_t>(p.dir));
  if (p.net.valid()) {
    h.u64(1);
    h.u64(names.of(nets[p.net.index()].name));
  } else {
    h.u64(0);
  }
  if (p.bus.valid()) {
    h.u64(1);
    h.u64(names.of(p.bus.bus));
    h.u64(static_cast<std::uint64_t>(p.bus.bit));
  } else {
    h.u64(0);
  }
  return h.digest();
}

/// One slot per design: the module name, sanitized to a plain filename.
std::string slotNameFor(std::string_view module_name) {
  std::string s = "eco-";
  for (char c : module_name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    s += ok ? c : '_';
  }
  s += ".tbl";
  return s;
}

bool isOutPortName(const std::string& name) {
  return name.rfind("out:", 0) == 0;
}

}  // namespace

EcoContext::EcoContext(flowdb::PassCache& cache, const Module& module,
                       const liberty::Gatefile& gatefile,
                       const flowdb::CacheKey& guard, FlowReport& flow)
    : cache_(cache),
      input_module_(module),
      gatefile_(gatefile),
      guard_(guard),
      slot_name_(slotNameFor(module.name())) {
  trace::Span span("eco_diff", "eco");
  loadTables(flow);
  diffAndClose(flow);
  // The loaded digest arrays are diff input only; the module's own digests
  // (stored at finish()) are kept in cell_digests_/net_digests_/....
  stored_cells_ = {};
  stored_nets_ = {};
  stored_ports_ = {};
}

void EcoContext::loadTables(FlowReport& flow) {
  trace::Span span("eco_load", "eco");
  std::string diag;
  const std::optional<std::string> payload =
      cache_.loadSlot(slot_name_, kSlotMagic, &diag);
  if (!diag.empty()) flow.note("eco: " + diag);
  if (!payload.has_value()) return;  // first run: cold, tables stored later
  try {
    flowdb::ByteReader r(*payload);
    flowdb::CacheKey stored_guard;
    stored_guard.hi = r.u64();
    stored_guard.lo = r.u64();
    const std::string stored_module(r.str());
    if (stored_guard != guard_) {
      flow.note(
          "eco: stored tables were built under a different flow "
          "configuration; running cold");
      return;
    }
    if (stored_module != input_module_.name()) {
      flow.note("eco: stored tables belong to design '" + stored_module +
                "'; running cold");
      return;
    }
    const auto byKey = [](const ObjectDigest& a, const ObjectDigest& b) {
      return a.key < b.key;
    };
    const auto readDigests = [&](std::vector<ObjectDigest>& v, bool typed) {
      const std::uint64_t n = r.u64();
      v.reserve(static_cast<std::size_t>(n));
      for (std::uint64_t i = 0; i < n; ++i) {
        ObjectDigest d;
        d.key = r.u64();
        d.rec = r.u64();
        if (typed) d.type = r.u64();
        v.push_back(d);
      }
      std::sort(v.begin(), v.end(), byKey);
    };
    readDigests(stored_cells_, /*typed=*/true);
    readDigests(stored_nets_, /*typed=*/false);
    readDigests(stored_ports_, /*typed=*/false);
    const bool refsta_broken = r.u32() != 0;
    const std::uint64_t n_refsta = r.u64();
    stored_refsta_.reserve(static_cast<std::size_t>(n_refsta) * 2);
    for (std::uint64_t i = 0; i < n_refsta; ++i) {
      const std::string name(r.str());
      std::array<double, kCorners> vals{};
      for (double& v : vals) v = r.f64();
      stored_refsta_.emplace(name, vals);
    }
    if (refsta_broken) refsta_stored_usable_ = false;
    has_stored_per_level_ = r.u32() != 0;
    stored_per_level_ = r.f64();
    const std::uint64_t n_regions = r.u64();
    for (std::uint64_t i = 0; i < n_regions; ++i) {
      const std::uint64_t hi = r.u64();
      const std::uint64_t lo = r.u64();
      stored_regions_.emplace(std::make_pair(hi, lo), r.f64());
    }
    const std::uint64_t n_latches = r.u64();
    stored_latches_.reserve(static_cast<std::size_t>(n_latches) * 2);
    for (std::uint64_t i = 0; i < n_latches; ++i) {
      const std::string name(r.str());
      stored_latches_.emplace(name, r.f64());
    }
    has_stored_protocol_ = r.u32() != 0;
    if (has_stored_protocol_) {
      stored_protocol_fp_ = r.u64();
      stored_protocol_.checked = true;
      stored_protocol_.admissible = r.u32() != 0;
      stored_protocol_.controller = std::string(r.str());
      stored_protocol_.channels = r.i32();
      stored_protocol_.states_explored =
          static_cast<std::size_t>(r.u64());
      stored_protocol_.violation = std::string(r.str());
      const std::uint64_t n_trace = r.u64();
      for (std::uint64_t i = 0; i < n_trace; ++i) {
        stored_protocol_.trace.emplace_back(r.str());
      }
    }
    const std::uint64_t n_symfe = r.u64();
    stored_symfe_.reserve(static_cast<std::size_t>(n_symfe) * 2);
    for (std::uint64_t i = 0; i < n_symfe; ++i) {
      const std::string name(r.str());
      sim::symfe::RestoredProof p;
      p.trivial = r.u32() != 0;
      p.conflicts = r.u64();
      p.decisions = r.u64();
      stored_symfe_.emplace(name, p);
    }
    if (!r.atEnd()) throw flowdb::FlowDbError("trailing bytes");
    warm_ = true;
  } catch (const flowdb::FlowDbError& e) {
    flow.note(std::string("eco: invalid region tables (") + e.what() +
              "); running cold");
    stored_cells_.clear();
    stored_nets_.clear();
    stored_ports_.clear();
    stored_refsta_.clear();
    stored_regions_.clear();
    stored_latches_.clear();
    stored_symfe_.clear();
    has_stored_per_level_ = false;
    has_stored_protocol_ = false;
    warm_ = false;
  }
}

void EcoContext::diffAndClose(FlowReport& flow) {
  const Module& m = input_module_;
  const netlist::NameTable& names = m.design().names();
  NameHashes name_hashes(names);

  std::vector<CellId> changed_cells;
  std::vector<NetId> changed_nets;
  std::vector<PortId> changed_ports;
  std::size_t matched_cells = 0;
  std::size_t matched_nets = 0;
  std::size_t matched_ports = 0;

  // Stored arrays are sorted by key (loadTables); lookups are binary
  // searches, and this run's digests accumulate in plain vectors — no
  // hash-map churn on the hot O(design) path.
  const auto findStored = [](const std::vector<ObjectDigest>& v,
                             std::uint64_t key) -> const ObjectDigest* {
    const auto it = std::lower_bound(
        v.begin(), v.end(), key,
        [](const ObjectDigest& d, std::uint64_t k) { return d.key < k; });
    return it != v.end() && it->key == key ? &*it : nullptr;
  };

  std::optional<trace::Span> digest_span;
  digest_span.emplace("eco_digest", "eco");
  const std::vector<netlist::Cell>& raw_cells = m.rawCells();
  const std::vector<netlist::Net>& raw_nets = m.rawNets();
  const std::vector<Port>& ports = m.ports();
  cell_digests_.reserve(m.numCells());
  net_digests_.reserve(m.numNets());
  for (std::uint32_t ci = 0; ci < raw_cells.size(); ++ci) {
    const netlist::Cell& cell = raw_cells[ci];
    if (!cell.valid) continue;
    const std::uint64_t key = name_hashes.of(cell.name);
    const std::uint64_t rec = cellRecord(cell, raw_nets, name_hashes);
    cell_digests_.push_back({key, rec, name_hashes.of(cell.type)});
    if (!warm_) continue;
    const ObjectDigest* stored = findStored(stored_cells_, key);
    if (stored != nullptr && stored->rec == rec) {
      ++matched_cells;
    } else {
      changed_cells.push_back(CellId{ci});
    }
  }
  for (std::uint32_t ni = 0; ni < raw_nets.size(); ++ni) {
    const netlist::Net& net = raw_nets[ni];
    if (!net.valid) continue;
    const std::uint64_t key = name_hashes.of(net.name);
    const std::uint64_t rec = netRecord(net, raw_cells, ports, name_hashes);
    net_digests_.push_back({key, rec, 0});
    if (!warm_) continue;
    const ObjectDigest* stored = findStored(stored_nets_, key);
    if (stored != nullptr && stored->rec == rec) {
      ++matched_nets;
    } else {
      changed_nets.push_back(NetId{ni});
    }
  }
  port_digests_.reserve(ports.size());
  for (std::size_t i = 0; i < ports.size(); ++i) {
    const std::uint64_t key = name_hashes.of(ports[i].name);
    const std::uint64_t rec = portRecord(ports[i], raw_nets, name_hashes);
    port_digests_.push_back({key, rec, 0});
    if (!warm_) continue;
    const ObjectDigest* stored = findStored(stored_ports_, key);
    if (stored != nullptr && stored->rec == rec) {
      ++matched_ports;
    } else {
      changed_ports.push_back(PortId{static_cast<std::uint32_t>(i)});
    }
  }
  digest_span.reset();
  if (!warm_) return;

  // Removed objects have no id to point at, but they count as changes and
  // their former neighbors' records changed with them — the closure below
  // reaches everything a removal can affect through those neighbors.
  const std::size_t removed_cells = stored_cells_.size() - matched_cells;
  const std::size_t removed_nets = stored_nets_.size() - matched_nets;
  const std::size_t removed_ports = stored_ports_.size() - matched_ports;
  stats_.cells_changed =
      static_cast<std::int64_t>(changed_cells.size() + removed_cells);
  stats_.nets_changed =
      static_cast<std::int64_t>(changed_nets.size() + removed_nets);

  const std::size_t changed = changed_cells.size() + removed_cells +
                              changed_nets.size() + removed_nets +
                              changed_ports.size() + removed_ports;
  const std::size_t total = m.numCells() + m.numNets() + ports.size();
  if (changed * 4 > total) {
    // Not an ECO anymore: the closure would dirty nearly everything and
    // the bookkeeping would only add overhead to a full recompute.
    flow.note("eco: " + std::to_string(changed) + " of " +
              std::to_string(total) +
              " objects changed; treating as a cold run");
    warm_ = false;
    return;
  }

  try {
    // Forward closure: follow the edit through combinational fan-out to
    // the sequential boundary.  Sequential sinks (and changed sequential
    // cells themselves) become dirty endpoints; clock gates are dirty
    // endpoints *and* transparent, because the registers they gate see a
    // changed capture condition.
    std::vector<std::uint8_t> net_seen(m.netCapacity(), 0);
    std::vector<std::uint32_t> work;
    const auto pushNet = [&](NetId n) {
      if (!n.valid() || net_seen[n.index()] != 0) return;
      net_seen[n.index()] = 1;
      work.push_back(n.index());
    };
    for (NetId n : changed_nets) pushNet(n);
    for (PortId p : changed_ports) {
      const Port& port = m.port(p);
      pushNet(port.net);
      if (port.dir != PortDir::kInput) {
        dirty_endpoints_.insert("out:" + std::string(names.str(port.name)));
      }
    }
    for (CellId c : changed_cells) {
      if (gatefile_.kind(m.cellType(c)) !=
          liberty::CellKind::kCombinational) {
        dirty_endpoints_.insert(std::string(m.cellName(c)));
      }
      for (const PinConn& pc : m.cell(c).pins) {
        if (pc.dir != PortDir::kInput) pushNet(pc.net);
      }
    }
    while (!work.empty()) {
      const NetId n{work.back()};
      work.pop_back();
      for (const TermRef& s : m.net(n).sinks) {
        if (s.isPort()) {
          const Port& port = m.port(s.port());
          if (port.dir != PortDir::kInput) {
            dirty_endpoints_.insert("out:" +
                                    std::string(names.str(port.name)));
          }
          continue;
        }
        if (!s.isCellPin()) continue;
        const CellId c = s.cell();
        const liberty::CellKind kind = gatefile_.kind(m.cellType(c));
        if (kind != liberty::CellKind::kCombinational) {
          dirty_endpoints_.insert(std::string(m.cellName(c)));
          if (kind != liberty::CellKind::kClockGate) continue;
        }
        for (const PinConn& pc : m.cell(c).pins) {
          if (pc.dir != PortDir::kInput) pushNet(pc.net);
        }
      }
    }

    // Timing-only closure: a cell whose *type* changed in place changes
    // its input pin caps, so the loads of its input nets move and with
    // them the delay of every arc *into* those nets — sibling sinks see
    // new arrivals even though no logic function changed.  Only type
    // swaps seed this (pin caps are a property of the type; a binding
    // change always dirties the affected nets' own records).  Clock nets
    // may enter here (a swapped register pushes its CK net), which is
    // why sequential sinks are dirtied only through timing-endpoint
    // pins: arrival at a pure clock net has no timing consumer, and
    // marking the whole net's registers functionally dirty would discard
    // their symfe proofs for an edit that cannot change their next-state
    // function.
    std::vector<std::uint8_t> timing_seen = net_seen;  // functional nets
                                                       // are already dirty
    std::vector<std::uint32_t> twork;
    const auto pushTiming = [&](NetId tn) {
      if (!tn.valid() || timing_seen[tn.index()] != 0) return;
      timing_seen[tn.index()] = 1;
      twork.push_back(tn.index());
    };
    for (CellId c : changed_cells) {
      const ObjectDigest* stored =
          findStored(stored_cells_, name_hashes.of(m.cell(c).name));
      // New cell: every net it touches has a changed sink list, so the
      // functional closure already owns the load effect.
      if (stored == nullptr) continue;
      if (stored->type == name_hashes.of(m.cell(c).type)) continue;
      for (const PinConn& pc : m.cell(c).pins) {
        if (pc.dir == PortDir::kInput) pushTiming(pc.net);
      }
    }
    const auto isEndpointPin = [&](CellId c, std::uint32_t pin) {
      const liberty::SeqClass* sc = gatefile_.seqClass(m.cellType(c));
      if (sc == nullptr) return false;
      const std::string_view pn = names.str(m.cell(c).pins[pin].name);
      return pn == sc->data_pin ||
             (!sc->scan_in.empty() && pn == sc->scan_in) ||
             (!sc->scan_enable.empty() && pn == sc->scan_enable) ||
             (!sc->sync_pin.empty() && pn == sc->sync_pin);
    };
    const auto markTiming = [&](std::string name) {
      if (dirty_endpoints_.count(name) == 0) {
        timing_dirty_.insert(std::move(name));
      }
    };
    while (!twork.empty()) {
      const NetId tn{twork.back()};
      twork.pop_back();
      for (const TermRef& s : m.net(tn).sinks) {
        if (s.isPort()) {
          const Port& port = m.port(s.port());
          if (port.dir != PortDir::kInput) {
            markTiming("out:" + std::string(names.str(port.name)));
          }
          continue;
        }
        if (!s.isCellPin()) continue;
        const CellId c = s.cell();
        if (gatefile_.kind(m.cellType(c)) ==
            liberty::CellKind::kCombinational) {
          for (const PinConn& pc : m.cell(c).pins) {
            if (pc.dir != PortDir::kInput) pushTiming(pc.net);
          }
          continue;
        }
        // Sequential sink: nothing propagates through (the STA has no
        // arcs through sequential cells), and only endpoint pins consume
        // this net's arrival.
        if (isEndpointPin(c, s.pin)) markTiming(std::string(m.cellName(c)));
      }
    }

    // Backward closure: the dirty endpoints' full combinational fan-in,
    // the mask the masked reference STA runs under.  Stops at any
    // non-combinational driver, mirroring the arcs the STA graph has.
    refsta_mask_.assign(m.netCapacity(), 0);
    std::vector<std::uint32_t> back;
    const auto pushMask = [&](NetId n) {
      if (!n.valid() || refsta_mask_[n.index()] != 0) return;
      refsta_mask_[n.index()] = 1;
      back.push_back(n.index());
    };
    const auto seedMask = [&](const std::string& name) {
      if (isOutPortName(name)) {
        const PortId p = m.findPort(std::string_view(name).substr(4));
        if (p.valid()) pushMask(m.port(p).net);
        return;
      }
      const CellId c = m.findCell(name);
      if (!c.valid()) return;
      for (const PinConn& pc : m.cell(c).pins) {
        if (pc.dir == PortDir::kInput) pushMask(pc.net);
      }
    };
    for (const std::string& name : dirty_endpoints_) seedMask(name);
    for (const std::string& name : timing_dirty_) seedMask(name);
    while (!back.empty()) {
      const NetId n{back.back()};
      back.pop_back();
      const TermRef& d = m.net(n).driver;
      if (!d.isCellPin()) continue;
      if (gatefile_.kind(m.cellType(d.cell())) !=
          liberty::CellKind::kCombinational) {
        continue;
      }
      for (const PinConn& pc : m.cell(d.cell()).pins) {
        if (pc.dir == PortDir::kInput) pushMask(pc.net);
      }
    }
  } catch (const std::exception& e) {
    flow.note(std::string("eco: dirty-closure failed (") + e.what() +
              "); running cold");
    dirty_endpoints_.clear();
    timing_dirty_.clear();
    refsta_mask_.clear();
    warm_ = false;
    return;
  }
  stats_.dirty_endpoints = static_cast<std::int64_t>(
      dirty_endpoints_.size() + timing_dirty_.size());

  // Proofs that survive the edit: stored kProved verdicts of registers
  // that still exist, are still flip-flops and are not *functionally*
  // dirty.  timing_dirty_ registers keep their proofs — load coupling
  // moves arrivals, never the next-state function the proofs are about.
  restorable_proofs_.reserve(stored_symfe_.size() * 2);
  for (const auto& [name, proof] : stored_symfe_) {
    if (dirty_endpoints_.count(name) != 0) continue;
    const CellId c = m.findCell(name);
    if (!c.valid()) continue;
    if (gatefile_.kind(m.cellType(c)) != liberty::CellKind::kFlipFlop) {
      continue;
    }
    restorable_proofs_.emplace(name, proof);
  }
}

bool EcoContext::endpointLive(const Module& m,
                              const std::string& name) const {
  if (isOutPortName(name)) {
    const PortId p = m.findPort(std::string_view(name).substr(4));
    if (!p.valid()) return false;
    const Port& port = m.port(p);
    return port.dir != PortDir::kInput && port.net.valid();
  }
  const CellId c = m.findCell(name);
  if (!c.valid()) return false;
  return gatefile_.kind(m.cellType(c)) != liberty::CellKind::kCombinational;
}

const std::vector<std::uint8_t>* EcoContext::refstaMask() const {
  if (!warm_ || !refsta_stored_usable_) return nullptr;
  return &refsta_mask_;
}

std::vector<double> EcoContext::referencePeriods(
    const Module& m,
    const std::vector<std::unique_ptr<sta::Sta>>& analyses) {
  const netlist::NameTable& names = m.design().names();
  // Broken timing loops make arrivals depend on the global cut choice;
  // per-endpoint values are then not reusable across edits, in either
  // direction (this run's table gets flagged, stored entries dropped).
  bool broken = false;
  for (const auto& a : analyses) {
    if (!a->brokenArcs().empty()) broken = true;
  }
  if (broken) {
    new_refsta_broken_ = true;
    refsta_stored_usable_ = false;
  }

  new_refsta_.clear();
  new_refsta_.reserve(stored_refsta_.size() * 2 + 64);
  std::int64_t restored = 0;
  if (warm_ && refsta_stored_usable_) {
    trace::Span span("endpoint_restore", "eco");
    for (const auto& [name, vals] : stored_refsta_) {
      if (timingDirty(name)) continue;
      if (!endpointLive(m, name)) continue;
      new_refsta_.emplace(name, vals);
      ++restored;
    }
  }
  stats_.endpoints_restored = restored;

  std::unordered_map<std::uint32_t, std::string_view> port_names;
  for (const Port& p : m.ports()) {
    if (p.dir != PortDir::kInput && p.net.valid()) {
      port_names.emplace(p.net.index(), names.str(p.name));
    }
  }
  // Fold in the recomputed endpoints (the dirty cones under a mask, or
  // everything on a cold run).  A masked analysis reports the exact
  // unmasked arrival at every masked endpoint, so max(stored, recomputed)
  // equals the full value whether an endpoint was restored, recomputed or
  // both.
  for (std::size_t c = 0; c < analyses.size() && c < kCorners; ++c) {
    for (const sta::Sta::EndpointWorst& ew : analyses[c]->endpointWorsts()) {
      std::string name;
      if (ew.is_port) {
        const auto it = port_names.find(ew.net);
        if (it == port_names.end()) continue;
        name = "out:" + std::string(it->second);
      } else {
        name = std::string(m.cellName(ew.cell));
      }
      auto [slot, inserted] = new_refsta_.try_emplace(
          std::move(name), std::array<double, kCorners>{});
      slot->second[c] = std::max(slot->second[c], ew.worst);
    }
  }
  // Per-corner max over the merged table: Sta::minPeriodNs() floors at
  // 0.0 and fp max is order-independent, so this reproduces the unmasked
  // periods bit for bit.
  std::vector<double> periods(kCorners, 0.0);
  for (const auto& [name, vals] : new_refsta_) {
    for (std::size_t c = 0; c < kCorners; ++c) {
      periods[c] = std::max(periods[c], vals[c]);
    }
  }
  return periods;
}

void EcoContext::captureRegionKeys(const Module& m, const Regions& regions) {
  trace::Span span("eco_region_keys", "eco");
  // Membership only: the requirement restored under this key is a pure
  // max over the member latches' stored worsts, and each of those is
  // valid exactly when its register is not a dirty endpoint — content
  // validity is the closure's job, the key only pins *which* registers
  // the stored max was taken over.  Comb membership is irrelevant (only
  // latch endpoints enter the max).  Sorted, so the key does not depend
  // on member iteration order; nothing run-dependent (jobs, corners)
  // enters it.
  region_keys_.assign(static_cast<std::size_t>(regions.n_groups),
                      flowdb::CacheKey{});
  std::vector<std::uint64_t> members;
  for (int g = 0; g < regions.n_groups; ++g) {
    members.clear();
    members.reserve(regions.seq_cells[g].size());
    for (CellId c : regions.seq_cells[g]) {
      members.push_back(nameHash(m.cellName(c)));
    }
    std::sort(members.begin(), members.end());
    flowdb::KeyHasher h;
    h.u64(members.size());
    for (std::uint64_t v : members) h.u64(v);
    region_keys_[static_cast<std::size_t>(g)] = h.key();
  }
}

EcoContext::RegionTimingOutcome EcoContext::regionTiming(
    Module& m, const liberty::Gatefile& gatefile, const Regions& regions) {
  RegionTimingOutcome out;
  // The stage delay is a pure function of the library, which the guard
  // key already covers.
  if (warm_ && has_stored_per_level_) {
    out.timing.per_level_delay_ns = stored_per_level_;
  } else {
    out.timing.per_level_delay_ns = characterizeDelayStageNs(gatefile);
  }
  new_per_level_ = out.timing.per_level_delay_ns;

  // Output mutation, never skipped: the emitted netlist must carry the
  // buffer trees whether or not any timing was restored.
  {
    trace::Span span("eco_rt_buffers", "eco");
    insertBufferTrees(m, gatefile);
  }

  const std::size_t n = regions.seq_cells.size();
  out.timing.required_delay_ns.assign(n, 0.0);
  stats_.regions_total = static_cast<std::int64_t>(n);

  // Member master latches per region: the live "<ff>_Lm" cells
  // substitution appended to seq_cells.  Stale ids of the replaced
  // flip-flops and the "<ff>_cenLm" glue latches fail the liveness or
  // suffix test, exactly as regionWorstDelays() skips them.  A latch is
  // dirty when its register's timing can have moved (either closure) or
  // the previous run stored no worst for it (new register, or its
  // arrival was unreached).
  constexpr std::string_view kSuffix = "_Lm";
  struct Latch {
    CellId cell;
    std::string orig;  ///< original register name (the table key)
    bool dirty = true;
  };
  std::vector<std::vector<Latch>> latches(n);
  std::vector<std::uint8_t> dirty(n, 1);
  std::size_t n_dirty = 0;
  std::size_t n_dirty_latches = 0;
  const bool keyed = warm_ && region_keys_.size() == n;
  for (std::size_t g = 0; g < n; ++g) {
    if (keyed) {
      dirty[g] = stored_regions_.count(
                     {region_keys_[g].hi, region_keys_[g].lo}) == 0
                     ? 1
                     : 0;
    }
    for (CellId c : regions.seq_cells[g]) {
      if (!m.isLiveCell(c)) continue;
      const std::string_view name = m.cellName(c);
      if (name.size() < kSuffix.size() ||
          name.substr(name.size() - kSuffix.size()) != kSuffix) {
        continue;
      }
      Latch l;
      l.cell = c;
      l.orig = std::string(name.substr(0, name.size() - kSuffix.size()));
      if (keyed) {
        l.dirty = timingDirty(l.orig) || stored_latches_.count(l.orig) == 0;
      }
      if (l.dirty) {
        dirty[g] = 1;
        ++n_dirty_latches;
      }
      latches[g].push_back(std::move(l));
    }
    n_dirty += dirty[g] != 0 ? 1 : 0;
  }

  // Worst arrival+setup per endpoint cell.  Per-cell max over a cell's
  // endpoints, then a per-region max over member latches, reproduces
  // regionWorstDelays() bit for bit: fp max is order-independent and
  // max(r,f)+setup == max(r+setup, f+setup) exactly.
  const auto cellWorsts = [](const sta::Sta& sta) {
    std::unordered_map<std::uint32_t, double> w;
    for (const sta::Sta::EndpointWorst& e : sta.endpointWorsts()) {
      if (e.is_port || !e.cell.valid()) continue;
      auto [it, inserted] = w.try_emplace(e.cell.index(), e.worst);
      if (!inserted) it->second = std::max(it->second, e.worst);
    }
    return w;
  };

  bool record_ok = region_keys_.size() == n;
  const auto computeFull = [&] {
    sta::Sta sta(m, gatefile);
    if (!sta.brokenArcs().empty()) record_ok = false;
    const std::unordered_map<std::uint32_t, double> w = cellWorsts(sta);
    for (std::size_t g = 0; g < n; ++g) {
      double req = 0.0;
      for (const Latch& l : latches[g]) {
        const auto it = w.find(l.cell.index());
        if (it == w.end()) continue;
        req = std::max(req, it->second);
        if (record_ok) new_latches_[l.orig] = it->second;
      }
      out.timing.required_delay_ns[g] = req;
    }
    n_dirty = n;
    std::fill(dirty.begin(), dirty.end(), std::uint8_t{1});
  };

  // The masked path pays off whenever most *latches* are clean — even
  // with every region dirty (one-region designs land here: a handful of
  // dirty latches re-time under a mask and the clean members merge their
  // stored worsts).  Full recompute when the edit dirtied too much for
  // the bookkeeping to win.
  std::size_t n_latches_total = 0;
  for (const std::vector<Latch>& list : latches) {
    n_latches_total += list.size();
  }
  if (!keyed || n_latches_total == 0 ||
      n_dirty_latches * 4 > n_latches_total) {
    computeFull();
  } else {
    bool masked_ok = true;
    std::unordered_map<std::uint32_t, double> recomputed;
    if (n_dirty_latches > 0) {
      // Mask: the dirty latches' fan-in only (same backward closure as
      // the reference-STA mask, on the substituted module) — the clean
      // members of a dirty region restore their stored worsts instead.
      std::vector<std::uint8_t> mask(m.netCapacity(), 0);
      std::vector<std::uint32_t> back;
      const auto push = [&](NetId nid) {
        if (!nid.valid() || mask[nid.index()] != 0) return;
        mask[nid.index()] = 1;
        back.push_back(nid.index());
      };
      for (std::size_t g = 0; g < n; ++g) {
        for (const Latch& l : latches[g]) {
          if (!l.dirty) continue;
          for (const PinConn& pc : m.cell(l.cell).pins) {
            if (pc.dir == PortDir::kInput) push(pc.net);
          }
        }
      }
      while (!back.empty()) {
        const NetId nid{back.back()};
        back.pop_back();
        const TermRef& d = m.net(nid).driver;
        if (!d.isCellPin()) continue;
        if (gatefile.kind(m.cellType(d.cell())) !=
            liberty::CellKind::kCombinational) {
          continue;
        }
        for (const PinConn& pc : m.cell(d.cell()).pins) {
          if (pc.dir == PortDir::kInput) push(pc.net);
        }
      }
      sta::StaOptions so;
      so.net_mask = &mask;
      trace::Span span("eco_rt_sta", "eco");
      sta::Sta sta(m, gatefile, so);
      if (!sta.brokenArcs().empty()) {
        // A loop threads the dirty cones; masked arrivals would depend
        // on cut choices the stored values did not see.
        masked_ok = false;
      } else {
        recomputed = cellWorsts(sta);
      }
    }
    if (masked_ok) {
      trace::Span span("region_restore", "eco");
      for (std::size_t g = 0; g < n; ++g) {
        if (dirty[g] == 0) {
          // Clean region: same member set, every member clean — the
          // stored max is this run's max.
          out.timing.required_delay_ns[g] = stored_regions_.at(
              {region_keys_[g].hi, region_keys_[g].lo});
        }
        for (const Latch& l : latches[g]) {
          // A clean latch inside a dirty cone's mask gets recomputed to
          // the same value it stored; prefer the recomputed entry, fall
          // back to the stored one.  A dirty latch missing from the
          // masked result has no reached endpoint and contributes
          // nothing, matching the full run.
          const auto rit = recomputed.find(l.cell.index());
          double v = 0.0;
          bool has = false;
          if (rit != recomputed.end()) {
            v = rit->second;
            has = true;
          } else if (!l.dirty) {
            v = stored_latches_.at(l.orig);
            has = true;
          }
          if (!has) continue;
          new_latches_[l.orig] = v;
          if (dirty[g] != 0) {
            out.timing.required_delay_ns[g] =
                std::max(out.timing.required_delay_ns[g], v);
          }
        }
      }
    } else {
      new_latches_.clear();
      computeFull();
    }
  }

  out.dirty = static_cast<std::int64_t>(n_dirty);
  out.restored = static_cast<std::int64_t>(n - n_dirty);
  stats_.regions_dirty = out.dirty;
  stats_.regions_restored = out.restored;
  if (record_ok) {
    for (std::size_t g = 0; g < n; ++g) {
      new_regions_[{region_keys_[g].hi, region_keys_[g].lo}] =
          out.timing.required_delay_ns[g];
    }
  } else {
    new_latches_.clear();
  }
  return out;
}

std::uint64_t EcoContext::protocolFingerprint(
    const sim::symfe::ProtocolInput& input, int controller_kind) {
  flowdb::Fnv64 h;
  h.u64(static_cast<std::uint64_t>(controller_kind));
  h.u64(static_cast<std::uint64_t>(input.n_groups));
  h.u64(input.active.size());
  for (const bool b : input.active) h.u64(b ? 1 : 0);
  h.u64(input.preds.size());
  for (const std::vector<int>& ps : input.preds) {
    h.u64(ps.size());
    for (const int p : ps) h.u64(static_cast<std::uint64_t>(p));
  }
  return h.digest();
}

void EcoContext::recordSymfe(const sim::symfe::SymfeReport& report,
                             std::uint64_t protocol_fingerprint) {
  stats_.registers_restored = static_cast<std::int64_t>(report.restored);
  new_symfe_.clear();
  if (!report.comb_only) {
    for (const sim::symfe::RegisterProof& p : report.registers) {
      if (p.verdict != sim::symfe::RegVerdict::kProved) continue;
      new_symfe_[p.name] =
          sim::symfe::RestoredProof{p.trivial, p.conflicts, p.decisions};
    }
  }
  if (report.protocol.checked) {
    new_has_protocol_ = true;
    new_protocol_fp_ = protocol_fingerprint;
    new_protocol_ = report.protocol;
  }
}

void EcoContext::finish(FlowReport& flow) {
  trace::Span span("eco_store", "eco");
  flowdb::ByteWriter w;
  w.u64(guard_.hi);
  w.u64(guard_.lo);
  w.str(input_module_.name());
  const auto writeDigests = [&w](const std::vector<ObjectDigest>& v,
                                 bool typed) {
    w.u64(v.size());
    for (const ObjectDigest& d : v) {
      w.u64(d.key);
      w.u64(d.rec);
      if (typed) w.u64(d.type);
    }
  };
  writeDigests(cell_digests_, /*typed=*/true);
  writeDigests(net_digests_, /*typed=*/false);
  writeDigests(port_digests_, /*typed=*/false);
  w.u32(new_refsta_broken_ ? 1 : 0);
  w.u64(new_refsta_.size());
  for (const auto& [name, vals] : new_refsta_) {
    w.str(name);
    for (const double v : vals) w.f64(v);
  }
  w.u32(1);
  w.f64(new_per_level_);
  w.u64(new_regions_.size());
  for (const auto& [key, required] : new_regions_) {
    w.u64(key.first);
    w.u64(key.second);
    w.f64(required);
  }
  w.u64(new_latches_.size());
  for (const auto& [name, worst] : new_latches_) {
    w.str(name);
    w.f64(worst);
  }
  w.u32(new_has_protocol_ ? 1 : 0);
  if (new_has_protocol_) {
    w.u64(new_protocol_fp_);
    w.u32(new_protocol_.admissible ? 1 : 0);
    w.str(new_protocol_.controller);
    w.i32(new_protocol_.channels);
    w.u64(new_protocol_.states_explored);
    w.str(new_protocol_.violation);
    w.u64(new_protocol_.trace.size());
    for (const std::string& t : new_protocol_.trace) w.str(t);
  }
  w.u64(new_symfe_.size());
  for (const auto& [name, p] : new_symfe_) {
    w.str(name);
    w.u32(p.trivial ? 1 : 0);
    w.u64(p.conflicts);
    w.u64(p.decisions);
  }
  if (!cache_.storeSlot(slot_name_, kSlotMagic, w.bytes())) {
    flow.note("eco: failed to store the region tables");
  }
  stats_.warm = warm_;
  flow.setEco(stats_);
}

}  // namespace desync::core
