#include "core/flow_report.h"

#include <cstdio>
#include <sstream>

namespace desync::core {

namespace {

/// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

PassStat& FlowReport::addPass(std::string name) {
  PassStat stat;
  stat.name = std::move(name);
  passes_.push_back(std::move(stat));
  return passes_.back();
}

const PassStat* FlowReport::find(std::string_view name) const {
  for (const PassStat& p : passes_) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

double FlowReport::totalMs() const {
  double total = 0.0;
  for (const PassStat& p : passes_) total += p.wall_ms;
  return total;
}

std::string FlowReport::toJson(int indent) const {
  const std::string nl = indent < 0 ? "" : "\n";
  const std::string pad1 = indent < 0 ? "" : std::string(indent, ' ');
  const std::string pad2 = indent < 0 ? "" : std::string(2 * indent, ' ');
  std::ostringstream os;
  os.precision(6);
  os << std::fixed;
  os << "{" << nl;
  os << pad1 << "\"total_ms\": " << totalMs() << "," << nl;
  if (jobs_ > 0) {
    os << pad1 << "\"jobs\": " << jobs_ << "," << nl;
  }
  if (pool_contended_ > 0) {
    os << pad1 << "\"pool\": {\"contended_sections\": " << pool_contended_
       << ", \"wait_ms\": " << pool_wait_ms_ << "}," << nl;
  }
  if (bitsim_.compiles > 0) {
    os << pad1 << "\"bitsim\": {\"compiles\": " << bitsim_.compiles
       << ", \"compile_ms\": " << bitsim_.compile_ms
       << ", \"levels\": " << bitsim_.levels << ", \"lanes\": "
       << bitsim_.lanes << ", \"cycles\": " << bitsim_.cycles
       << ", \"lane_vectors\": " << bitsim_.lane_vectors
       << ", \"eval_ms\": " << bitsim_.eval_ms
       << ", \"vectors_per_sec\": " << bitsim_.vectors_per_sec << "},"
       << nl;
  }
  if (symfe_.ran) {
    os << pad1 << "\"symfe\": {\"registers\": " << symfe_.registers
       << ", \"proved\": " << symfe_.proved
       << ", \"refuted\": " << symfe_.refuted
       << ", \"skipped\": " << symfe_.skipped
       << ", \"restored\": " << symfe_.restored
       << ", \"conflicts\": " << symfe_.conflicts
       << ", \"decisions\": " << symfe_.decisions
       << ", \"protocol_states\": " << symfe_.protocol_states
       << ", \"protocol_admissible\": "
       << (symfe_.protocol_admissible ? "true" : "false")
       << ", \"comb_only\": " << (symfe_.comb_only ? "true" : "false")
       << ", \"ms\": " << symfe_.ms << "}," << nl;
  }
  if (eco_.ran) {
    os << pad1 << "\"eco\": {\"warm\": " << (eco_.warm ? "true" : "false")
       << ", \"regions_total\": " << eco_.regions_total
       << ", \"regions_dirty\": " << eco_.regions_dirty
       << ", \"regions_restored\": " << eco_.regions_restored
       << ", \"registers_restored\": " << eco_.registers_restored
       << ", \"endpoints_restored\": " << eco_.endpoints_restored
       << ", \"cells_changed\": " << eco_.cells_changed
       << ", \"nets_changed\": " << eco_.nets_changed
       << ", \"dirty_endpoints\": " << eco_.dirty_endpoints << "}," << nl;
  }
  if (cache_.enabled) {
    os << pad1 << "\"cache\": {\"hits\": " << cache_.hits
       << ", \"misses\": " << cache_.misses
       << ", \"bytes_read\": " << cache_.bytes_read
       << ", \"bytes_written\": " << cache_.bytes_written
       << ", \"restore_ms\": " << cache_.restore_ms
       << ", \"compute_ms\": " << cache_.compute_ms << "}," << nl;
  }
  os << pad1 << "\"passes\": [";
  for (std::size_t i = 0; i < passes_.size(); ++i) {
    const PassStat& p = passes_[i];
    os << (i == 0 ? "" : ",") << nl << pad2 << "{\"name\": \""
       << jsonEscape(p.name) << "\", \"wall_ms\": " << p.wall_ms
       << ", \"source\": \"" << jsonEscape(p.source) << "\"";
    if (p.work_ms > 0.0) {
      os << ", \"work_ms\": " << p.work_ms;
      if (p.wall_ms > 0.0) {
        os << ", \"speedup\": " << p.work_ms / p.wall_ms;
      }
    }
    for (const auto& [k, v] : p.counters) {
      os << ", \"" << jsonEscape(k) << "\": " << v;
    }
    os << "}";
  }
  os << nl << pad1 << "]";
  if (trace_.has_value() && trace_->enabled) {
    const trace::Summary& t = *trace_;
    os << "," << nl << pad1 << "\"trace\": {\"file\": \""
       << jsonEscape(t.file) << "\", \"events\": " << t.events
       << ", \"spans\": " << t.spans
       << ", \"counter_events\": " << t.counter_events
       << ", \"worker_tracks\": " << t.worker_tracks;
    if (t.worker_utilization_pct >= 0.0) {
      os << ", \"worker_utilization_pct\": " << t.worker_utilization_pct;
    }
    os << ", \"pass_self_ms\": {";
    for (std::size_t i = 0; i < t.pass_self_ms.size(); ++i) {
      os << (i == 0 ? "" : ", ") << "\"" << jsonEscape(t.pass_self_ms[i].first)
         << "\": " << t.pass_self_ms[i].second;
    }
    os << "}}";
  }
  if (!notes_.empty()) {
    os << "," << nl << pad1 << "\"notes\": [";
    for (std::size_t i = 0; i < notes_.size(); ++i) {
      os << (i == 0 ? "" : ", ") << "\"" << jsonEscape(notes_[i]) << "\"";
    }
    os << "]";
  }
  os << nl << "}";
  return os.str();
}

ScopedPass::ScopedPass(FlowReport& report, std::string name)
    : report_(&report),
      name_(std::move(name)),
      start_(std::chrono::steady_clock::now()),
      span_(name_, "pass") {}

ScopedPass::~ScopedPass() {
  const auto end = std::chrono::steady_clock::now();
  PassStat& stat = report_->addPass(std::move(name_));
  stat.wall_ms =
      std::chrono::duration<double, std::milli>(end - start_).count();
  stat.work_ms = work_ms_;
  stat.source = std::move(source_);
  stat.counters = std::move(counters_);
}

void ScopedPass::counter(std::string key, std::int64_t value) {
  counters_.emplace_back(std::move(key), value);
}

}  // namespace desync::core
