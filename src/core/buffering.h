// Backend re-buffering (thesis §4.7: placement inserts low-skew buffer
// trees; §3.2.2: cleaning removed the synthesis buffers and the backend's
// in-place-optimization restores them).
//
// Builds balanced BF trees on every high-fanout net — most importantly the
// latch-enable nets driven by the controllers, which fan out to every latch
// of a region (the Fig 4.3 "low-skew buffer trees").
#pragma once

#include "liberty/gatefile.h"
#include "netlist/netlist.h"

namespace desync::core {

struct BufferingOptions {
  int max_fanout = 12;
  /// Buffer cell type (single input A, output Z).
  std::string buffer_cell = "BF";
};

/// Inserts buffer trees; returns the number of buffers added.  Nets driven
/// by input ports are treated as ideal (external drivers) and skipped.
std::size_t insertBufferTrees(netlist::Module& module,
                              const liberty::Gatefile& gatefile,
                              const BufferingOptions& options = {});

}  // namespace desync::core
