// Automatic region creation: the grouping algorithm (thesis §3.2.2,
// Figs 3.3-3.6).
//
// A desynchronization region is a combinational logic cloud together with
// the sequential elements it drives; clouds of different regions must be
// independent.  The algorithm:
//   1. groups combinational gates into connected components (together with
//      their directly driven sequential cells), optionally extending
//      connectivity across nets of the same named bus (the by-name bus
//      heuristic of Fig 3.6);
//   2. attaches ungrouped sequential cells that are directly driven by
//      already-grouped sequential cells to the driver's group (flip-flop
//      history chains);
//   3. collects every remaining sequential cell — registers of primary
//      inputs — into the extra Group 0.
//
// Nets marked false_path (global resets, clock-gating controls) are ignored
// when tracing connectivity, and the logic-cleaning pass (buffer and
// inverter-pair removal) should run first so that drive buffering does not
// merge unrelated clouds (Fig 3.5).
#pragma once

#include <string>
#include <vector>

#include "liberty/gatefile.h"
#include "netlist/netlist.h"

namespace desync::core {

struct GroupingOptions {
  /// Run buffer / inverter-pair cleaning before grouping (thesis: "clean
  /// logic"; ablation toggle).
  bool clean_logic = true;
  /// Merge clouds driving bits of the same named bus (Fig 3.6 heuristic;
  /// ablation toggle).
  bool bus_heuristic = true;
  /// Net names to ignore while tracing (user-marked false paths, e.g.
  /// global synchronous resets; thesis §3.2.2 "False Paths").
  std::vector<std::string> false_path_nets;
};

struct Regions {
  /// Number of groups; group 0 is the input-register group (possibly
  /// empty).  Valid group ids: 0 .. n_groups-1.
  int n_groups = 0;
  /// Group per cell slot (indexed by CellId::value); -1 for cells outside
  /// any region (e.g. pure input->output pass logic with no sequentials).
  std::vector<int> group_of_cell;
  /// Sequential cells per group.
  std::vector<std::vector<netlist::CellId>> seq_cells;
  /// Combinational cells per group.
  std::vector<std::vector<netlist::CellId>> comb_cells;

  [[nodiscard]] int groupOf(netlist::CellId id) const {
    return group_of_cell.at(id.index());
  }
};

/// Runs the grouping algorithm.  Mutates `module` only when
/// options.clean_logic is set (buffer removal).
Regions groupRegions(netlist::Module& module,
                     const liberty::Gatefile& gatefile,
                     const GroupingOptions& options = {});

/// Manual region specification (thesis §3.2.2: "the regions can be
/// specified either manually by the designer or derived automatically").
/// Sequential cells whose name starts with any prefix of
/// seq_prefix_groups[i] form group i+1; unmatched sequential cells fall
/// into Group 0.  Combinational cells are assigned to the group of the
/// sequential cells they (transitively) drive; a gate reaching two groups
/// means the clouds are not independent and is an error.
Regions groupRegionsBySeqPrefix(
    netlist::Module& module, const liberty::Gatefile& gatefile,
    const std::vector<std::vector<std::string>>& seq_prefix_groups,
    const GroupingOptions& options = {});

/// Data-dependency graph over regions (thesis §2.4.1): edge i -> j when a
/// sequential output of region i feeds the cloud (or a sequential input)
/// of region j.  Self-edges are kept: a region whose cloud reads its own
/// registers forms the classic master/slave ring.
struct DependencyGraph {
  int n_groups = 0;
  /// Adjacency: preds[j] = sorted unique region ids feeding region j.
  std::vector<std::vector<int>> preds;
  /// succs[i] = regions fed by region i.
  std::vector<std::vector<int>> succs;
};

DependencyGraph buildDependencyGraph(const netlist::Module& module,
                                     const liberty::Gatefile& gatefile,
                                     const Regions& regions);

}  // namespace desync::core
