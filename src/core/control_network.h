// Control network insertion (thesis §2.4, §3.2.5-§3.2.6, Fig 2.11).
//
// Every region gets a master/slave pair of latch controllers driving its
// latch enables.  The data-dependency graph dictates the handshake wiring:
// each predecessor's slave request joins (through a C-Muller element when
// there are several) into one matched delay element sized to the region's
// combinational critical path, and acknowledges fan back through C-elements
// likewise.  Slave controllers reset "full" — their flip-flops' reset values
// are the initial data tokens — so all requests start asserted and the
// network self-starts.
#pragma once

#include "async/controllers.h"
#include "core/ff_substitution.h"
#include "core/regions.h"
#include "sta/sdc.h"

namespace desync::core {

struct ControlNetworkOptions {
  async::ControllerKind controller = async::ControllerKind::kSemiDecoupled;
  /// Matched-delay safety margin over the region's critical path
  /// (absorbs intra-die variation; thesis §2.5).
  double margin = 1.15;
  /// 0 = fixed delay elements; 2/4/8 = calibration mux with that many taps
  /// (Fig 5.3's "delay selection"); select pins become top-level ports
  /// dsel0.. shared by every delay element, as in the paper.
  int mux_taps = 0;
  /// Tap at which the muxed delay matches margin * critical path.  -1:
  /// second-highest tap (leaving headroom above and room to shorten).
  int nominal_selection = -1;
  /// Name of an existing reset input port; empty: a new "rst" port
  /// (active-high) is created.
  std::string reset_port;
  bool reset_active_low = false;
};

struct RegionControl {
  int group = -1;
  std::string master_cell;  ///< instance name of the master controller
  std::string slave_cell;
  int delay_levels = 0;          ///< chain stages of this region's element
  double required_delay_ns = 0;  ///< region critical path (with clk-q+setup)
  double matched_delay_ns = 0;   ///< characterized element delay (nominal tap)
};

struct ControlNetworkReport {
  std::vector<RegionControl> regions;
  /// Timing-loop cuts through the controllers (thesis §4.6.1, Fig 4.5),
  /// ready to be emitted as SDC set_disable_timing.
  std::vector<sta::DisabledArc> loop_cuts;
  /// Controller cells to mark size_only (§4.6.2).
  std::vector<std::string> size_only_cells;
  double per_level_delay_ns = 0;  ///< characterized AND-stage rise delay
};

/// STA products the control network consumes, computed by the flow's
/// region_timing pass.  Split out of insertControlNetwork so the (slow)
/// timing analysis can be cached independently of the (cheap) network
/// construction: changing a post-substitution knob — margin, mux taps,
/// controller kind, reset wiring — re-runs construction from the cached
/// timing instead of re-running STA.
struct RegionTiming {
  double per_level_delay_ns = 0;  ///< characterized AND-stage rise delay
  /// Per group: worst combinational delay into the region's master latches
  /// (with clk-to-q and setup), i.e. the path the matched delay must cover.
  std::vector<double> required_delay_ns;
};

/// Characterizes the rise delay of one AND stage of the asymmetric delay
/// element under nominal conditions (thesis §3.1.4).  A pure function of
/// the library — the probe element is built and measured in a scratch
/// design so no helper module leaks into the flow output — so the ECO
/// layer (core/eco.h) restores it from the region tables instead of
/// re-characterizing on warm runs.
double characterizeDelayStageNs(const liberty::Gatefile& gatefile);

/// Runs the timing prerequisites of control-network insertion: re-buffers
/// the datapath (the cleaning pass stripped the synthesis buffers, and the
/// delay elements must be sized against the timing the backend netlist
/// will actually have), characterizes the delay-element stage delay, and
/// measures each region's critical path with the STA engine.
RegionTiming computeRegionTiming(netlist::Module& module,
                                 const liberty::Gatefile& gatefile,
                                 const Regions& regions);

/// Inserts controllers, C-elements and delay elements into `module` (which
/// already went through grouping, flip-flop substitution and
/// computeRegionTiming) and flattens them.  Delay elements are sized from
/// `timing`; this function performs no STA of its own.
ControlNetworkReport insertControlNetwork(
    netlist::Design& design, netlist::Module& module,
    const liberty::Gatefile& gatefile, const Regions& regions,
    const DependencyGraph& ddg, const SubstitutionResult& subst,
    const RegionTiming& timing, const ControlNetworkOptions& options = {});

}  // namespace desync::core
