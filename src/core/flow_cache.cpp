#include "core/flow_cache.h"

#include <chrono>
#include <utility>

#include "core/eco.h"
#include "core/version.h"
#include "flowdb/io.h"
#include "flowdb/snapshot.h"
#include "liberty/library.h"
#include "trace/trace.h"

namespace desync::core {

namespace {

using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

// --- DesyncResult codec ---------------------------------------------------
// The blob layout is implicitly versioned: it only ever travels inside
// cache entries, whose keys include kSnapshotFormatVersion — bump that
// when changing this encoding and stale blobs are simply never looked up.

void writeCellIdVec(flowdb::ByteWriter& w,
                    const std::vector<netlist::CellId>& v) {
  w.u64(v.size());
  for (netlist::CellId id : v) w.u32(id.value);
}

std::vector<netlist::CellId> readCellIdVec(flowdb::ByteReader& r) {
  std::vector<netlist::CellId> v(r.u64());
  for (netlist::CellId& id : v) id = netlist::CellId{r.u32()};
  return v;
}

void writeIntVec(flowdb::ByteWriter& w, const std::vector<int>& v) {
  w.u64(v.size());
  for (int x : v) w.i32(x);
}

std::vector<int> readIntVec(flowdb::ByteReader& r) {
  std::vector<int> v(r.u64());
  for (int& x : v) x = r.i32();
  return v;
}

void writeStrVec(flowdb::ByteWriter& w, const std::vector<std::string>& v) {
  w.u64(v.size());
  for (const std::string& s : v) w.str(s);
}

std::vector<std::string> readStrVec(flowdb::ByteReader& r) {
  std::vector<std::string> v(r.u64());
  for (std::string& s : v) s = std::string(r.str());
  return v;
}

void writeDoubleVec(flowdb::ByteWriter& w, const std::vector<double>& v) {
  w.u64(v.size());
  for (double x : v) w.f64(x);
}

std::vector<double> readDoubleVec(flowdb::ByteReader& r) {
  std::vector<double> v(r.u64());
  for (double& x : v) x = r.f64();
  return v;
}

void writeNetIdVec(flowdb::ByteWriter& w,
                   const std::vector<netlist::NetId>& v) {
  w.u64(v.size());
  for (netlist::NetId id : v) w.u32(id.value);
}

std::vector<netlist::NetId> readNetIdVec(flowdb::ByteReader& r) {
  std::vector<netlist::NetId> v(r.u64());
  for (netlist::NetId& id : v) id = netlist::NetId{r.u32()};
  return v;
}

void writeArcs(flowdb::ByteWriter& w, const std::vector<sta::DisabledArc>& v) {
  w.u64(v.size());
  for (const sta::DisabledArc& a : v) {
    w.str(a.cell);
    w.str(a.from_pin);
  }
}

std::vector<sta::DisabledArc> readArcs(flowdb::ByteReader& r) {
  std::vector<sta::DisabledArc> v(r.u64());
  for (sta::DisabledArc& a : v) {
    a.cell = std::string(r.str());
    a.from_pin = std::string(r.str());
  }
  return v;
}

/// Pass-boundary counter samples (`--trace` runs only): cumulative liberty
/// lookup totals, FlowDB cache traffic and the process's peak RSS, so the
/// trace shows which pass grew which resource (docs/trace-format.md).
void tracePassBoundaryCounters(const liberty::Gatefile& gatefile,
                               const flowdb::PassCache* cache) {
  if (!trace::enabled()) return;
  trace::counter("liberty_cell_lookups",
                 static_cast<double>(gatefile.library().lookupCount()));
  trace::counter("liberty_pin_lookups",
                 static_cast<double>(liberty::detail::pinLookupCount()));
  trace::counter("peak_rss_mb", static_cast<double>(trace::peakRssBytes()) /
                                    (1024.0 * 1024.0));
  if (cache != nullptr) {
    trace::counter("cache_bytes_read",
                   static_cast<double>(cache->stats().bytes_read));
    trace::counter("cache_bytes_written",
                   static_cast<double>(cache->stats().bytes_written));
  }
}

}  // namespace

std::string encodeResult(const DesyncResult& result) {
  flowdb::ByteWriter w;

  w.i32(result.regions.n_groups);
  writeIntVec(w, result.regions.group_of_cell);
  w.u64(result.regions.seq_cells.size());
  for (const auto& g : result.regions.seq_cells) writeCellIdVec(w, g);
  w.u64(result.regions.comb_cells.size());
  for (const auto& g : result.regions.comb_cells) writeCellIdVec(w, g);

  w.i32(result.ddg.n_groups);
  w.u64(result.ddg.preds.size());
  for (const auto& p : result.ddg.preds) writeIntVec(w, p);
  w.u64(result.ddg.succs.size());
  for (const auto& s : result.ddg.succs) writeIntVec(w, s);

  writeNetIdVec(w, result.substitution.master_enable);
  writeNetIdVec(w, result.substitution.slave_enable);
  w.u64(result.substitution.ffs_replaced);
  w.u64(result.substitution.glue_cells_added);

  w.f64(result.timing.per_level_delay_ns);
  writeDoubleVec(w, result.timing.required_delay_ns);

  w.u64(result.control.regions.size());
  for (const RegionControl& rc : result.control.regions) {
    w.i32(rc.group);
    w.str(rc.master_cell);
    w.str(rc.slave_cell);
    w.i32(rc.delay_levels);
    w.f64(rc.required_delay_ns);
    w.f64(rc.matched_delay_ns);
  }
  writeArcs(w, result.control.loop_cuts);
  writeStrVec(w, result.control.size_only_cells);
  w.f64(result.control.per_level_delay_ns);

  w.u64(result.sdc.clocks.size());
  for (const sta::SdcClock& c : result.sdc.clocks) {
    w.str(c.name);
    w.f64(c.period_ns);
    w.f64(c.rise_at_ns);
    w.f64(c.fall_at_ns);
    writeStrVec(w, c.targets);
    w.u8(c.targets_are_pins ? 1 : 0);
  }
  writeArcs(w, result.sdc.disabled);
  writeStrVec(w, result.sdc.size_only);
  w.u64(result.sdc.path_delays.size());
  for (const sta::SdcPathDelay& d : result.sdc.path_delays) {
    w.u8(d.is_max ? 1 : 0);
    w.f64(d.value_ns);
    w.str(d.from);
    w.str(d.to);
  }

  w.f64(result.sync_min_period_ns);
  w.u64(result.corner_periods.size());
  for (const DesyncResult::CornerPeriod& c : result.corner_periods) {
    w.str(c.corner);
    w.f64(c.delay_scale);
    w.f64(c.min_period_ns);
  }

  return w.take();
}

void decodeResult(std::string_view blob, DesyncResult& result) {
  flowdb::ByteReader r(blob);

  result.regions.n_groups = r.i32();
  result.regions.group_of_cell = readIntVec(r);
  result.regions.seq_cells.resize(r.u64());
  for (auto& g : result.regions.seq_cells) g = readCellIdVec(r);
  result.regions.comb_cells.resize(r.u64());
  for (auto& g : result.regions.comb_cells) g = readCellIdVec(r);

  result.ddg.n_groups = r.i32();
  result.ddg.preds.resize(r.u64());
  for (auto& p : result.ddg.preds) p = readIntVec(r);
  result.ddg.succs.resize(r.u64());
  for (auto& s : result.ddg.succs) s = readIntVec(r);

  result.substitution.master_enable = readNetIdVec(r);
  result.substitution.slave_enable = readNetIdVec(r);
  result.substitution.ffs_replaced = r.u64();
  result.substitution.glue_cells_added = r.u64();

  result.timing.per_level_delay_ns = r.f64();
  result.timing.required_delay_ns = readDoubleVec(r);

  result.control.regions.resize(r.u64());
  for (RegionControl& rc : result.control.regions) {
    rc.group = r.i32();
    rc.master_cell = std::string(r.str());
    rc.slave_cell = std::string(r.str());
    rc.delay_levels = r.i32();
    rc.required_delay_ns = r.f64();
    rc.matched_delay_ns = r.f64();
  }
  result.control.loop_cuts = readArcs(r);
  result.control.size_only_cells = readStrVec(r);
  result.control.per_level_delay_ns = r.f64();

  result.sdc.clocks.resize(r.u64());
  for (sta::SdcClock& c : result.sdc.clocks) {
    c.name = std::string(r.str());
    c.period_ns = r.f64();
    c.rise_at_ns = r.f64();
    c.fall_at_ns = r.f64();
    c.targets = readStrVec(r);
    c.targets_are_pins = r.u8() != 0;
  }
  result.sdc.disabled = readArcs(r);
  result.sdc.size_only = readStrVec(r);
  result.sdc.path_delays.resize(r.u64());
  for (sta::SdcPathDelay& d : result.sdc.path_delays) {
    d.is_max = r.u8() != 0;
    d.value_ns = r.f64();
    d.from = std::string(r.str());
    d.to = std::string(r.str());
  }

  result.sync_min_period_ns = r.f64();
  result.corner_periods.resize(r.u64());
  for (DesyncResult::CornerPeriod& c : result.corner_periods) {
    c.corner = std::string(r.str());
    c.delay_scale = r.f64();
    c.min_period_ns = r.f64();
  }

  if (!r.atEnd()) {
    throw flowdb::FlowDbError("flowdb: trailing bytes in result blob");
  }
}

// --- FlowSession ----------------------------------------------------------

FlowSession::~FlowSession() = default;

FlowSession::FlowSession(netlist::Design& design, netlist::Module& module,
                         const liberty::Gatefile& gatefile,
                         const DesyncOptions& options, DesyncResult& result)
    : design_(design),
      module_(module),
      gatefile_(gatefile),
      options_(options),
      result_(result) {
  if (options.flowdb.cache_dir.empty()) return;
  try {
    cache_ = std::make_unique<flowdb::PassCache>(options.flowdb.cache_dir);
  } catch (const flowdb::FlowDbError& e) {
    result_.flow.note(std::string("flowdb disabled: ") + e.what());
    return;
  }

  // Base key: format + tool identity, library binding, and the full input
  // design state.  --jobs is deliberately absent: the flow is deterministic
  // across worker counts, so cached state is valid at any --jobs.
  library_fingerprint_ = gatefile.library().contentHash();
  flowdb::KeyHasher h;
  h.u32(flowdb::kSnapshotFormatVersion);
  h.str(kToolVersion);
  h.str(gatefile.library().name);
  h.u64(library_fingerprint_);
  if (options.flowdb.eco) {
    // ECO mode never serializes the design: the input is diffed against
    // per-object record tables instead (core/eco.h), so the key chain
    // carries configuration only and acts as the tables' guard.
    eco_mode_ = true;
    if (options.flowdb.resume) {
      result_.flow.note("--resume is ignored in --eco mode");
    }
  } else {
    flowdb::SnapshotMeta meta;
    meta.tool_version = std::string(kToolVersion);
    meta.library = gatefile.library().name;
    meta.library_fingerprint = library_fingerprint_;
    h.str(flowdb::serializeDesign(design, meta));
  }
  key_ = h.key();

  if (options.flowdb.resume && !eco_mode_) {
    std::string diag;
    checkpoint_ = cache_->loadCheckpoint(&diag);
    if (!diag.empty()) result_.flow.note(diag);
    if (!checkpoint_.has_value()) {
      result_.flow.note("resume requested but no valid checkpoint found");
    }
  }
}

void FlowSession::addPass(
    const char* name,
    const std::function<void(flowdb::KeyHasher&)>& fingerprint,
    const std::function<void(ScopedPass&)>& body) {
  flowdb::KeyHasher h;
  h.absorb(key_);
  h.str(name);
  if (fingerprint) fingerprint(h);
  key_ = h.key();
  passes_.push_back(Pass{name, body, key_});
}

int FlowSession::findRestorePoint() {
  trace::Span span("cache_probe", "flowdb");
  for (int i = static_cast<int>(passes_.size()) - 1; i >= 0; --i) {
    const flowdb::CacheKey& key = passes_[static_cast<std::size_t>(i)].key;
    if (checkpoint_.has_value() &&
        checkpoint_->pass_index == static_cast<std::uint32_t>(i) &&
        checkpoint_->key == key) {
      pending_entry_ = std::move(checkpoint_->entry);
      checkpoint_.reset();
      restore_source_ = "checkpoint";
      return i;
    }
    std::string diag;
    std::optional<std::string> entry = cache_->load(key, &diag);
    if (!diag.empty()) result_.flow.note(diag);
    if (entry.has_value()) {
      pending_entry_ = std::move(*entry);
      restore_source_ = "cache";
      return i;
    }
  }
  return -1;
}

void FlowSession::applyPending(const char* pass) {
  if (!pending_entry_.has_value()) return;
  trace::Span span("cache_restore", "flowdb");
  try {
    flowdb::ByteReader r(*pending_entry_);
    const std::string_view snapshot = r.str();
    const std::string_view blob = r.str();
    flowdb::restoreDesign(design_, snapshot);
    decodeResult(blob, result_);
  } catch (const std::exception& e) {
    pending_entry_.reset();
    throw flowdb::FlowDbError(std::string("flowdb: cannot apply state of ") +
                              pass + ": " + e.what());
  }
  pending_entry_.reset();
}

void FlowSession::computePass(const Pass& pass, std::uint32_t index) {
  try {
    ScopedPass scoped(result_.flow, pass.name);
    pass.body(scoped);
  } catch (const FlowError&) {
    throw;
  } catch (const std::exception& e) {
    // ~ScopedPass already appended the failing pass's stat.
    throw FlowError(pass.name, result_.flow, e.what());
  }
  if (!result_.flow.passes().empty()) {
    compute_ms_ += result_.flow.passes().back().wall_ms;
  }

  if (cacheActive() && !eco_mode_) {
    trace::Span span("cache_store", "flowdb");
    flowdb::SnapshotMeta meta;
    meta.tool_version = std::string(kToolVersion);
    meta.library = gatefile_.library().name;
    meta.library_fingerprint = library_fingerprint_;
    flowdb::ByteWriter entry;
    entry.str(flowdb::serializeDesign(design_, meta));
    entry.str(encodeResult(result_));
    cache_->store(pass.key, entry.bytes());
    cache_->storeCheckpoint(index, pass.name, pass.key, entry.bytes());
  }
  tracePassBoundaryCounters(gatefile_, cache_.get());
}

void FlowSession::run() {
  int restored = -1;
  if (cacheActive() && eco_mode_) {
    // The guard key chains every registered pass plus the FE options the
    // post-session checks depend on; any configuration drift makes the
    // stored tables unreachable (cold ECO run) instead of subtly stale.
    const auto t0 = Clock::now();
    flowdb::KeyHasher h;
    h.absorb(key_);
    h.u64(static_cast<std::uint64_t>(options_.fe.mode));
    h.u64(options_.fe.prove_max_conflicts);
    eco_ = std::make_unique<EcoContext>(*cache_, module_, gatefile_, h.key(),
                                        result_.flow);
    restore_ms_ = msSince(t0);
  }
  if (cacheActive() && !eco_mode_) {
    const auto t0 = Clock::now();
    restored = findRestorePoint();
    if (restored >= 0) {
      const char* name = passes_[static_cast<std::size_t>(restored)].name;
      try {
        applyPending(name);
      } catch (const flowdb::FlowDbError& e) {
        // A validated envelope whose body still fails to decode: fall all
        // the way back to a cold run rather than giving up.
        result_.flow.note(e.what());
        restored = -1;
      }
    }
    restore_ms_ = msSince(t0);
    // One report row per restored pass; the whole probe+restore cost is
    // charged to the restore point itself.
    for (int i = 0; i <= restored; ++i) {
      PassStat& stat =
          result_.flow.addPass(passes_[static_cast<std::size_t>(i)].name);
      stat.source = restore_source_;
      if (i == restored) stat.wall_ms = restore_ms_;
    }
    if (restored >= 0) tracePassBoundaryCounters(gatefile_, cache_.get());
  }

  for (std::size_t i = static_cast<std::size_t>(restored + 1);
       i < passes_.size(); ++i) {
    computePass(passes_[i], static_cast<std::uint32_t>(i));
  }

  if (!cacheActive()) return;
  const flowdb::CacheStats& cs = cache_->stats();
  FlowCacheStats stats;
  stats.enabled = true;
  // ECO mode reads no whole-design entries; restore_ms is the table
  // load + diff cost and the restore detail lives in the "eco" section.
  stats.hits = eco_mode_ ? 0 : static_cast<std::uint64_t>(restored + 1);
  stats.misses = eco_mode_ ? 0 : passes_.size() - stats.hits;
  stats.bytes_read = cs.bytes_read;
  stats.bytes_written = cs.bytes_written;
  stats.restore_ms = restore_ms_;
  stats.compute_ms = compute_ms_;
  result_.flow.setCacheStats(stats);
}

void FlowSession::ecoFinish() {
  if (eco_ != nullptr) eco_->finish(result_.flow);
}

}  // namespace desync::core
