#include "core/control_network.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "async/celement.h"
#include "async/delay_element.h"
#include "core/buffering.h"
#include "netlist/flatten.h"
#include "sta/sta.h"

namespace desync::core {

using netlist::Design;
using netlist::Module;
using netlist::NetId;
using netlist::PortDir;

double characterizeDelayStageNs(const liberty::Gatefile& gatefile) {
  // Elements of 1..100 levels are implemented and measured with STA
  // (thesis §3.1.4); one 16-level probe gives the per-stage rise delay.
  // The probe lives in a scratch design: it is a measurement artifact,
  // and building it in the flow design would emit a dead helper module
  // (and make cold vs ECO-warm output differ, since warm runs restore
  // the characterized delay without re-measuring).
  async::DelayElementSpec probe;
  probe.levels = 16;
  Design scratch;
  Module& del = async::ensureDelayElement(scratch, gatefile, probe);
  sta::Sta sta(del, gatefile);
  double total = sta.portToPortNs("A", "Z", /*rising_out=*/true).value();
  return total / probe.levels;
}

RegionTiming computeRegionTiming(Module& m, const liberty::Gatefile& gatefile,
                                 const Regions& regions) {
  RegionTiming timing;
  timing.per_level_delay_ns = characterizeDelayStageNs(gatefile);

  // Re-buffer the datapath first (the cleaning pass stripped the synthesis
  // buffers): the delay elements must be sized against the timing the
  // backend netlist will actually have, otherwise buffer delay added later
  // silently eats the matching margin.
  insertBufferTrees(m, gatefile);

  // Region critical paths (post-substitution STA).  The matched delay
  // covers paths into each region's master latches; the per-region queries
  // are independent and run concurrently (the analysis itself is read-only
  // after construction).
  sta::Sta sta(m, gatefile);
  timing.required_delay_ns = sta.regionWorstDelays(regions.seq_cells, "_Lm");
  return timing;
}

ControlNetworkReport insertControlNetwork(
    Design& design, Module& m, const liberty::Gatefile& gatefile,
    const Regions& regions, const DependencyGraph& ddg,
    const SubstitutionResult& subst, const RegionTiming& timing,
    const ControlNetworkOptions& options) {
  ControlNetworkReport report;
  report.per_level_delay_ns = timing.per_level_delay_ns;
  const std::vector<double>& required = timing.required_delay_ns;

  // --- reset --------------------------------------------------------------
  NetId rst;
  if (options.reset_port.empty()) {
    rst = m.addNet("rst");
    m.addPort("rst", PortDir::kInput, rst);
  } else {
    netlist::PortId p = m.findPort(options.reset_port);
    if (!p.valid()) {
      throw netlist::NetlistError("reset port not found: " +
                                  options.reset_port);
    }
    NetId src = m.port(p).net;
    if (options.reset_active_low) {
      rst = m.addNet("drst");
      m.addCell("u_drst_inv", "IV",
                {{"A", PortDir::kInput, src}, {"Z", PortDir::kOutput, rst}});
    } else {
      rst = src;
    }
  }

  // --- mux select ports ----------------------------------------------------
  std::vector<NetId> dsel;
  if (options.mux_taps > 0) {
    int bits = options.mux_taps == 8 ? 3 : options.mux_taps == 4 ? 2 : 1;
    for (int i = 0; i < bits; ++i) {
      NetId n = m.addNet("dsel" + std::to_string(i));
      m.addPort("dsel" + std::to_string(i), PortDir::kInput, n);
      dsel.push_back(n);
    }
  }

  // --- controllers per active region ---------------------------------------
  Module& ctrl_e = async::ensureController(design, gatefile, options.controller,
                                           async::ControllerReset::kEmpty);
  Module& ctrl_f = async::ensureController(design, gatefile, options.controller,
                                           async::ControllerReset::kFull);

  std::vector<bool> active(static_cast<std::size_t>(regions.n_groups), false);
  for (int g = 0; g < regions.n_groups; ++g) {
    active[static_cast<std::size_t>(g)] =
        !regions.seq_cells[static_cast<std::size_t>(g)].empty();
  }

  struct Nets {
    NetId m_ri, m_ai, m_ro, m_ao, s_ri_unused, s_ai, s_ro, s_ao;
  };
  std::vector<Nets> nets(static_cast<std::size_t>(regions.n_groups));

  for (int g = 0; g < regions.n_groups; ++g) {
    if (!active[static_cast<std::size_t>(g)]) continue;
    auto gi = static_cast<std::size_t>(g);
    std::string base = "G" + std::to_string(g);
    Nets& n = nets[gi];
    n.m_ri = m.addNet(base + "_m_ri");
    n.m_ai = m.addNet(base + "_m_ai");
    n.m_ro = m.addNet(base + "_m_ro");  // master ro -> slave ri
    n.s_ai = m.addNet(base + "_s_ai");  // slave ai -> master ao
    n.s_ro = m.addNet(base + "_s_ro");
    n.s_ao = m.addNet(base + "_s_ao");

    // Ensure the enable nets exist even if the region had no flip-flops to
    // substitute (possible when a region only has latches already).
    NetId gm = subst.master_enable[gi];
    NetId gs = subst.slave_enable[gi];
    if (!gm.valid()) {
      gm = m.addNet(base + "_gm_nc");
      gs = m.addNet(base + "_gs_nc");
    }

    m.addCell(base + "_M", std::string(ctrl_e.name()),
              {{"ri", PortDir::kInput, n.m_ri},
               {"ao", PortDir::kInput, n.s_ai},
               {"rst", PortDir::kInput, rst},
               {"ai", PortDir::kOutput, n.m_ai},
               {"ro", PortDir::kOutput, n.m_ro},
               {"g", PortDir::kOutput, gm}});
    m.addCell(base + "_S", std::string(ctrl_f.name()),
              {{"ri", PortDir::kInput, n.m_ro},
               {"ao", PortDir::kInput, n.s_ao},
               {"rst", PortDir::kInput, rst},
               {"ai", PortDir::kOutput, n.s_ai},
               {"ro", PortDir::kOutput, n.s_ro},
               {"g", PortDir::kOutput, gs}});
    report.size_only_cells.push_back(base + "_M");
    report.size_only_cells.push_back(base + "_S");
  }

  // --- request paths: C-join of predecessors -> delay element -> m_ri ----
  for (int g = 0; g < regions.n_groups; ++g) {
    auto gi = static_cast<std::size_t>(g);
    if (!active[gi]) continue;
    std::string base = "G" + std::to_string(g);
    std::vector<int> preds;
    for (int p : ddg.preds[gi]) {
      if (active[static_cast<std::size_t>(p)]) preds.push_back(p);
    }

    NetId req_src;
    if (preds.empty()) {
      // Environment-fed region: expose a request input port.
      req_src = m.addNet(base + "_ri_ext");
      m.addPort(base + "_ri_ext", PortDir::kInput, req_src);
    } else if (preds.size() == 1) {
      req_src = nets[static_cast<std::size_t>(preds[0])].s_ro;
    } else {
      // Multiple input requests: C-Muller join (thesis §2.4.3).  All
      // requests start high at reset (slaves are full), so reset-high.
      Module& cj = async::ensureCElement(design, gatefile,
                                         static_cast<int>(preds.size()),
                                         async::ResetKind::kHigh);
      req_src = m.addNet(base + "_jr");
      std::vector<Module::PinInit> pins;
      for (std::size_t i = 0; i < preds.size(); ++i) {
        pins.push_back({"A" + std::to_string(i), PortDir::kInput,
                        nets[static_cast<std::size_t>(preds[i])].s_ro});
      }
      pins.push_back({"RST", PortDir::kInput, rst});
      pins.push_back({"Z", PortDir::kOutput, req_src});
      m.addCell(base + "_CJR", std::string(cj.name()), pins);
      report.size_only_cells.push_back(base + "_CJR");
    }

    // Delay element sized to the region's combinational critical path.
    double target = required[gi] * options.margin;
    int levels = std::max(
        1, static_cast<int>(std::ceil(target / report.per_level_delay_ns)));
    if (options.mux_taps > 0) {
      int sel = options.nominal_selection >= 0 ? options.nominal_selection
                                               : options.mux_taps - 2;
      sel = std::clamp(sel, 0, options.mux_taps - 1);
      // Tap `sel` passes ~levels stages: total chain length accordingly.
      levels = std::max(
          levels, static_cast<int>(std::ceil(
                      static_cast<double>(levels) * options.mux_taps /
                      (sel + 1))));
    }
    levels = std::min(levels, 200);

    async::DelayElementSpec spec;
    spec.levels = levels;
    spec.mux_taps = options.mux_taps;
    Module& del = async::ensureDelayElement(design, gatefile, spec);
    std::vector<Module::PinInit> pins = {{"A", PortDir::kInput, req_src},
                                         {"Z", PortDir::kOutput, nets[gi].m_ri}};
    for (std::size_t i = 0; i < dsel.size(); ++i) {
      pins.push_back({"S" + std::to_string(i), PortDir::kInput, dsel[i]});
    }
    m.addCell(base + "_DE", std::string(del.name()), pins);

    RegionControl rc;
    rc.group = g;
    rc.master_cell = base + "_M";
    rc.slave_cell = base + "_S";
    rc.delay_levels = levels;
    rc.required_delay_ns = required[gi];
    rc.matched_delay_ns = levels * report.per_level_delay_ns;
    report.regions.push_back(rc);
  }

  // --- acknowledge paths: slave ao = C-join of successors' master ai -----
  for (int g = 0; g < regions.n_groups; ++g) {
    auto gi = static_cast<std::size_t>(g);
    if (!active[gi]) continue;
    std::string base = "G" + std::to_string(g);
    std::vector<int> succs;
    for (int s : ddg.succs[gi]) {
      if (active[static_cast<std::size_t>(s)]) succs.push_back(s);
    }
    if (succs.empty()) {
      // Environment-consumed region: loop the acknowledge back from our own
      // request so the region free-runs (the slave's data is simply always
      // "consumed"); also expose the request for observation.
      m.addPort(base + "_ro_ext", PortDir::kOutput, nets[gi].s_ro);
      m.mergeNetInto(nets[gi].s_ao, nets[gi].s_ro);
      continue;
    }
    if (succs.size() == 1) {
      m.mergeNetInto(nets[gi].s_ao,
                     nets[static_cast<std::size_t>(succs[0])].m_ai);
      continue;
    }
    Module& cj = async::ensureCElement(design, gatefile,
                                       static_cast<int>(succs.size()),
                                       async::ResetKind::kLow);
    std::vector<Module::PinInit> pins;
    for (std::size_t i = 0; i < succs.size(); ++i) {
      pins.push_back({"A" + std::to_string(i), PortDir::kInput,
                      nets[static_cast<std::size_t>(succs[i])].m_ai});
    }
    pins.push_back({"RST", PortDir::kInput, rst});
    NetId join = m.addNet(base + "_ja");
    pins.push_back({"Z", PortDir::kOutput, join});
    m.addCell(base + "_CJA", std::string(cj.name()), pins);
    report.size_only_cells.push_back(base + "_CJA");
    m.mergeNetInto(nets[gi].s_ao, join);
  }

  // --- flatten the inserted controller/C-element/delay modules ------------
  netlist::flatten(m);

  // Backend re-buffering: balanced enable trees (CTS-lite, thesis §4.7)
  // plus restoration of the drive buffers the cleaning pass removed.
  insertBufferTrees(m, gatefile);

  // --- loop cuts for STA (thesis §4.6.1): every C-element keeper feedback
  // and every controller occupancy feedback, by flattened cell name.
  m.forEachCell([&](netlist::CellId cid) {
    std::string name(m.cellName(cid));
    std::string type(m.cellType(cid));
    if (type == "MAJ3" && name.find("_maj") != std::string::npos) {
      report.loop_cuts.push_back(sta::DisabledArc{name, "C"});
    }
    if (type == "AOI21" && name.size() > 5 &&
        name.substr(name.size() - 5) == "/u_dn") {
      report.loop_cuts.push_back(sta::DisabledArc{name, "A"});
    }
  });

  return report;
}

}  // namespace desync::core
