// Deterministic parallel execution layer.
//
// A small fixed-size thread pool shared by the flow's embarrassingly
// parallel workloads: Monte-Carlo chip samples (SSTA), multi-corner /
// per-region STA and flow-equivalence vector batches.  The design follows
// the work-queue style of parallel commercial timers (cf. OpenTimer):
// workers pull iteration indices from a shared atomic counter, so load
// balances dynamically, but every iteration writes only state owned by its
// index and callers merge results in index order — making the final output
// byte-identical to the serial (`--jobs 1`) run regardless of scheduling.
//
// Concurrency contract for callers:
//   * fn(i) must touch only shared *read-only* state (const Module,
//     Gatefile, BoundModule, ...) plus per-index slots;
//   * floating-point reductions are performed by the caller, serially, in
//     index order (never with an order-dependent parallel accumulation);
//   * nested parallelFor calls run inline on the calling worker (no
//     deadlock, no oversubscription).
//
// Worker count resolution: setGlobalJobs() (the `--jobs` CLI flag) >
// DESYNC_JOBS environment variable > std::thread::hardware_concurrency().
// jobs == 1 is an exact serial fast path: fn runs on the caller's thread
// and no pool thread is ever created or woken.
//
// With tracing active (trace/trace.h), each section records a
// `parallel_for` span on the caller's track, a `parallel_run` span per
// participating thread and `queue_wait` spans on idle workers
// (docs/trace-format.md); each pool worker is its own named trace track.
#pragma once

#include <cstddef>
#include <functional>
#include <type_traits>
#include <vector>

namespace desync::core {

/// Effective worker count (>= 1) used by subsequent parallel sections.
[[nodiscard]] int globalJobs();

/// Overrides the worker count (the `--jobs N` flag).  `jobs <= 0` resets
/// to the environment/hardware default (DESYNC_JOBS, then
/// hardware_concurrency).  Existing pool threads are kept; the pool grows
/// lazily when a later section asks for more workers.
void setGlobalJobs(int jobs);

/// True while the calling thread is executing inside a parallel section
/// (worker or participating caller).  Nested sections run serially.
[[nodiscard]] bool inParallelSection();

/// Runs fn(0), ..., fn(n-1), distributing iterations over the pool.
/// Blocks until every iteration finished.  If any iteration throws, the
/// remaining un-started iterations are skipped and the exception thrown by
/// the lowest-indexed failing iteration is rethrown on the caller.
/// With jobs == 1, n <= 1, or from inside a parallel section, iterations
/// run inline on the calling thread in index order (exact serial path).
void parallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

/// parallelFor that collects fn's results index-aligned: out[i] = fn(i).
/// The result type must be default-constructible and movable.
template <typename Fn>
[[nodiscard]] auto parallelMap(std::size_t n, Fn&& fn) {
  using R = std::decay_t<decltype(fn(std::size_t{0}))>;
  static_assert(std::is_default_constructible_v<R>,
                "parallelMap results are pre-allocated by index");
  std::vector<R> out(n);
  parallelFor(n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace desync::core
