// Deterministic parallel execution layer.
//
// A small fixed-size thread pool shared by the flow's embarrassingly
// parallel workloads: Monte-Carlo chip samples (SSTA), multi-corner /
// per-region STA and flow-equivalence vector batches.  The design follows
// the work-queue style of parallel commercial timers (cf. OpenTimer):
// workers pull iteration indices from a shared atomic counter, so load
// balances dynamically, but every iteration writes only state owned by its
// index and callers merge results in index order — making the final output
// byte-identical to the serial (`--jobs 1`) run regardless of scheduling.
//
// Concurrency contract for callers:
//   * fn(i) must touch only shared *read-only* state (const Module,
//     Gatefile, BoundModule, ...) plus per-index slots;
//   * floating-point reductions are performed by the caller, serially, in
//     index order (never with an order-dependent parallel accumulation);
//   * nested parallelFor calls run inline on the calling worker (no
//     deadlock, no oversubscription).
//
// Worker-count resolution is PER CALLING THREAD, so concurrent library
// callers (the drdesyncd request handlers, tests driving flows from
// several threads) cannot change each other's parallelism:
//   innermost JobsScope on this thread > setThreadJobs() (the `--jobs`
//   CLI flag) > DESYNC_JOBS environment variable (parsed once per
//   process) > std::thread::hardware_concurrency().
// jobs == 1 is an exact serial fast path: fn runs on the caller's thread
// and no pool thread is ever created or woken.
//
// The pool itself executes one section at a time: a second top-level
// caller waits in Pool::run behind the first.  That wait is *visible* —
// it records a `pool_wait` trace span on the waiting caller's track and
// increments the contention counters returned by poolStats(), which the
// flow surfaces per run as the report's "pool" object.
//
// With tracing active (trace/trace.h), each section records a
// `parallel_for` span on the caller's track, a `parallel_run` span per
// participating thread and `queue_wait` spans on idle workers
// (docs/trace-format.md); each pool worker is its own named trace track.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <type_traits>
#include <vector>

namespace desync::core {

/// Effective worker count (>= 1) used by parallel sections issued from the
/// calling thread: innermost JobsScope > setThreadJobs > DESYNC_JOBS >
/// hardware_concurrency.
[[nodiscard]] int effectiveJobs();

/// Sets the calling thread's base worker count (the `--jobs N` flag).
/// `jobs <= 0` resets to the environment/hardware default (DESYNC_JOBS,
/// then hardware_concurrency).  Scoped to the calling thread: concurrent
/// library callers each carry their own budget.  Existing pool threads are
/// kept; the pool grows lazily when a later section asks for more workers.
void setThreadJobs(int jobs);

/// RAII per-request jobs budget: overrides the calling thread's worker
/// count for the scope's lifetime and restores the previous value on exit
/// (nests).  The drdesyncd request handlers wrap each request in one of
/// these, so one request's `--jobs` can never leak into another.
class JobsScope {
 public:
  explicit JobsScope(int jobs);
  ~JobsScope();
  JobsScope(const JobsScope&) = delete;
  JobsScope& operator=(const JobsScope&) = delete;

 private:
  int saved_;
};

/// True while the calling thread is executing inside a parallel section
/// (worker or participating caller).  Nested sections run serially.
[[nodiscard]] bool inParallelSection();

/// Runs fn(0), ..., fn(n-1), distributing iterations over the pool.
/// Blocks until every iteration finished.  If any iteration throws, the
/// remaining un-started iterations are skipped and the exception thrown by
/// the lowest-indexed failing iteration is rethrown on the caller.
/// With jobs == 1, n <= 1, or from inside a parallel section, iterations
/// run inline on the calling thread in index order (exact serial path).
void parallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

/// parallelFor that collects fn's results index-aligned: out[i] = fn(i).
/// The result type must be default-constructible and movable.
template <typename Fn>
[[nodiscard]] auto parallelMap(std::size_t n, Fn&& fn) {
  using R = std::decay_t<decltype(fn(std::size_t{0}))>;
  static_assert(std::is_default_constructible_v<R>,
                "parallelMap results are pre-allocated by index");
  std::vector<R> out(n);
  parallelFor(n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

/// Process-lifetime pool section counters (monotonic).  `contended` counts
/// the sections that found another top-level section already running and
/// had to wait `wait_us` (total) for it — the signal that concurrent flow
/// requests are being serialized on the shared pool.
struct PoolStats {
  std::uint64_t sections = 0;
  std::uint64_t contended = 0;
  double wait_us = 0.0;
};
[[nodiscard]] PoolStats poolStats();

/// Same counters restricted to sections issued by the CALLING thread —
/// the wait always happens on the issuing thread, so this attributes
/// contention to exactly one request even when many run concurrently.
/// The flow snapshots it around each run for the report's "pool" object.
[[nodiscard]] PoolStats threadPoolStats();

/// Joins and discards the pool's worker threads.  Call once before process
/// exit (the tools and drdesyncd do) so workers are never torn down by a
/// static destructor racing other translation units' statics; the tracer's
/// registry intentionally outlives them either way.  Parallel sections
/// issued after shutdown run serially on the caller — safe no-ops, never
/// an error — so late library calls during teardown still complete.
void shutdownParallel();

namespace detail {
/// Test hook: forget the cached DESYNC_JOBS parse so the next
/// effectiveJobs() re-reads the environment.  Not for production use.
void resetEnvironmentJobsForTest();
}  // namespace detail

}  // namespace desync::core
