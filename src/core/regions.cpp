#include "core/regions.h"

#include <algorithm>
#include <functional>
#include <map>
#include <unordered_set>

#include "netlist/cleaning.h"

namespace desync::core {

using netlist::CellId;
using netlist::Module;
using netlist::NetId;

namespace {

/// Union-find over cell slots.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = static_cast<int>(i);
  }
  int find(int x) {
    while (parent_[static_cast<std::size_t>(x)] != x) {
      parent_[static_cast<std::size_t>(x)] =
          parent_[static_cast<std::size_t>(
              parent_[static_cast<std::size_t>(x)])];
      x = parent_[static_cast<std::size_t>(x)];
    }
    return x;
  }
  void unite(int a, int b) {
    a = find(a);
    b = find(b);
    if (a != b) parent_[static_cast<std::size_t>(b)] = a;
  }

 private:
  std::vector<int> parent_;
};

}  // namespace

Regions groupRegions(Module& module, const liberty::Gatefile& gatefile,
                     const GroupingOptions& options) {
  if (options.clean_logic) {
    netlist::CleaningRules rules;
    rules.is_buffer = [&](std::string_view t) {
      return gatefile.isBuffer(t);
    };
    rules.is_inverter = [&](std::string_view t) {
      return gatefile.isInverter(t);
    };
    netlist::cleanLogic(module, rules);
  }

  // False-path nets by id.
  std::unordered_set<std::uint32_t> skip_nets;
  for (const std::string& name : options.false_path_nets) {
    NetId id = module.findNet(name);
    if (id.valid()) skip_nets.insert(id.value);
  }
  module.forEachNet([&](NetId id) {
    if (module.net(id).false_path) skip_nets.insert(id.value);
  });
  auto usable = [&](NetId id) {
    return id.valid() && skip_nets.count(id.value) == 0;
  };

  const std::uint32_t n_slots = module.cellCapacity();
  UnionFind uf(n_slots);

  auto isComb = [&](CellId id) {
    return gatefile.isCombinational(std::string(module.cellType(id)));
  };
  auto isSeq = [&](CellId id) {
    return gatefile.isSequential(std::string(module.cellType(id)));
  };
  /// Data output nets of a sequential cell (Q/QN); its non-clock inputs are
  /// "data side" for dependency purposes.
  auto driverCell = [&](NetId net) -> CellId {
    const netlist::TermRef& d = module.net(net).driver;
    return d.isCellPin() ? d.cell() : CellId{};
  };

  // ---- Step 1: connected components of combinational gates, extended by
  // directly driven sequential cells.
  module.forEachCell([&](CellId cid) {
    if (!isComb(cid)) return;
    const netlist::Cell& c = module.cell(cid);
    for (const netlist::PinConn& pin : c.pins) {
      if (!usable(pin.net)) continue;
      if (pin.dir == netlist::PortDir::kInput) {
        // Combinational source cells merge into this cloud.
        CellId src = driverCell(pin.net);
        if (src.valid() && isComb(src)) {
          uf.unite(static_cast<int>(cid.value), static_cast<int>(src.value));
        }
      } else {
        // Combinational and sequential targets.
        for (const netlist::TermRef& t : module.net(pin.net).sinks) {
          if (!t.isCellPin()) continue;
          CellId dst = t.cell();
          if (isComb(dst) || isSeq(dst)) {
            uf.unite(static_cast<int>(cid.value),
                     static_cast<int>(dst.value));
          }
        }
      }
    }
  });

  // Bus heuristic: cells driving bits of the same bus group together.
  if (options.bus_heuristic) {
    std::map<std::uint32_t, CellId> bus_rep;  // bus NameId -> representative
    module.forEachNet([&](NetId nid) {
      const netlist::Net& n = module.net(nid);
      if (!n.bus.valid() || !usable(nid)) return;
      CellId drv = driverCell(nid);
      if (!drv.valid()) return;
      auto [it, inserted] = bus_rep.emplace(n.bus.bus.value, drv);
      if (!inserted) {
        uf.unite(static_cast<int>(it->second.value),
                 static_cast<int>(drv.value));
      }
    });
  }

  // ---- Step 2: sequential cells directly driven by grouped sequential
  // cells join the driver's group (signal-history chains).
  // "Grouped" after step 1 = in a component that contains >= 1 comb cell.
  std::vector<bool> grouped(n_slots, false);
  module.forEachCell([&](CellId cid) {
    if (isComb(cid)) grouped[uf.find(static_cast<int>(cid.value))] = true;
  });
  auto isGrouped = [&](CellId cid) {
    return grouped[static_cast<std::size_t>(
        uf.find(static_cast<int>(cid.value)))];
  };
  bool changed = true;
  while (changed) {
    changed = false;
    module.forEachCell([&](CellId cid) {
      if (!isSeq(cid) || isGrouped(cid)) return;
      const netlist::Cell& c = module.cell(cid);
      for (const netlist::PinConn& pin : c.pins) {
        if (pin.dir != netlist::PortDir::kInput || !usable(pin.net)) continue;
        CellId src = driverCell(pin.net);
        if (src.valid() && isSeq(src) && isGrouped(src)) {
          uf.unite(static_cast<int>(src.value),
                   static_cast<int>(cid.value));
          grouped[static_cast<std::size_t>(
              uf.find(static_cast<int>(cid.value)))] = true;
          changed = true;
          return;
        }
      }
    });
  }

  // ---- Step 3 + numbering.  Group 0 collects the remaining sequential
  // cells (input registers).  Components containing sequential cells get
  // ids 1..n; pure-combinational components keep -1 (no region: nothing to
  // clock).
  Regions regions;
  regions.group_of_cell.assign(n_slots, -1);
  std::map<int, int> id_of_root;
  // First pass: find components that contain at least one sequential cell.
  std::unordered_set<int> seq_roots;
  module.forEachCell([&](CellId cid) {
    if (isSeq(cid) && isGrouped(cid)) {
      seq_roots.insert(uf.find(static_cast<int>(cid.value)));
    }
  });
  int next_id = 1;
  module.forEachCell([&](CellId cid) {
    const int root = uf.find(static_cast<int>(cid.value));
    if (isSeq(cid) && !isGrouped(cid)) {
      regions.group_of_cell[cid.index()] = 0;  // Group 0
      return;
    }
    if (seq_roots.count(root) == 0) return;  // region-less combinational
    auto [it, inserted] = id_of_root.emplace(root, next_id);
    if (inserted) ++next_id;
    regions.group_of_cell[cid.index()] = it->second;
  });
  regions.n_groups = next_id;

  regions.seq_cells.assign(static_cast<std::size_t>(regions.n_groups), {});
  regions.comb_cells.assign(static_cast<std::size_t>(regions.n_groups), {});
  module.forEachCell([&](CellId cid) {
    int g = regions.group_of_cell[cid.index()];
    if (g < 0) return;
    if (isSeq(cid)) {
      regions.seq_cells[static_cast<std::size_t>(g)].push_back(cid);
    } else {
      regions.comb_cells[static_cast<std::size_t>(g)].push_back(cid);
    }
  });
  return regions;
}

Regions groupRegionsBySeqPrefix(
    Module& module, const liberty::Gatefile& gatefile,
    const std::vector<std::vector<std::string>>& seq_prefix_groups,
    const GroupingOptions& options) {
  if (options.clean_logic) {
    netlist::CleaningRules rules;
    rules.is_buffer = [&](std::string_view t) {
      return gatefile.isBuffer(t);
    };
    rules.is_inverter = [&](std::string_view t) {
      return gatefile.isInverter(t);
    };
    netlist::cleanLogic(module, rules);
  }

  Regions regions;
  regions.n_groups = static_cast<int>(seq_prefix_groups.size()) + 1;
  regions.group_of_cell.assign(module.cellCapacity(), -1);
  regions.seq_cells.assign(static_cast<std::size_t>(regions.n_groups), {});
  regions.comb_cells.assign(static_cast<std::size_t>(regions.n_groups), {});

  auto isSeq = [&](CellId id) {
    return gatefile.isSequential(std::string(module.cellType(id)));
  };

  // Sequential cells by prefix.
  module.forEachCell([&](CellId cid) {
    if (!isSeq(cid)) return;
    std::string name(module.cellName(cid));
    int group = 0;
    for (std::size_t g = 0; g < seq_prefix_groups.size() && group == 0; ++g) {
      for (const std::string& prefix : seq_prefix_groups[g]) {
        if (name.rfind(prefix, 0) == 0) {
          group = static_cast<int>(g) + 1;
          break;
        }
      }
    }
    regions.group_of_cell[cid.index()] = group;
    regions.seq_cells[static_cast<std::size_t>(group)].push_back(cid);
  });

  // Combinational cells: group of the sequential cells they reach.
  // Memoized DFS over the fanout toward sequential inputs.
  std::vector<int> reach(module.cellCapacity(), -2);  // -2 = unvisited
  std::function<int(CellId)> reachGroup = [&](CellId cid) -> int {
    int& memo = reach[cid.index()];
    if (memo != -2) return memo;
    memo = -1;  // cycle guard / default
    if (isSeq(cid)) {
      memo = regions.group_of_cell[cid.index()];
      return memo;
    }
    int found = -1;
    const netlist::Cell& c = module.cell(cid);
    for (const netlist::PinConn& pin : c.pins) {
      if (pin.dir != netlist::PortDir::kOutput || !pin.net.valid()) continue;
      for (const netlist::TermRef& t : module.net(pin.net).sinks) {
        if (!t.isCellPin()) continue;
        int g = reachGroup(t.cell());
        if (g < 0) continue;
        if (found >= 0 && g != found) {
          throw netlist::NetlistError(
              "manual grouping: cell " + std::string(module.cellName(cid)) +
              " drives sequentials of groups " + std::to_string(found) +
              " and " + std::to_string(g) +
              " — clouds are not independent");
        }
        found = g;
      }
    }
    memo = found;
    return memo;
  };
  module.forEachCell([&](CellId cid) {
    if (isSeq(cid)) return;
    int g = reachGroup(cid);
    regions.group_of_cell[cid.index()] = g;
    if (g >= 0) {
      regions.comb_cells[static_cast<std::size_t>(g)].push_back(cid);
    }
  });
  return regions;
}

DependencyGraph buildDependencyGraph(const Module& module,
                                     const liberty::Gatefile& gatefile,
                                     const Regions& regions) {
  DependencyGraph g;
  g.n_groups = regions.n_groups;
  std::vector<std::unordered_set<int>> pred_sets(
      static_cast<std::size_t>(regions.n_groups));

  auto isSeq = [&](CellId id) {
    return gatefile.isSequential(std::string(module.cellType(id)));
  };

  module.forEachCell([&](CellId cid) {
    const int dst_group = regions.group_of_cell[cid.index()];
    if (dst_group < 0) return;
    const netlist::Cell& c = module.cell(cid);
    for (const netlist::PinConn& pin : c.pins) {
      if (pin.dir != netlist::PortDir::kInput || !pin.net.valid()) continue;
      const netlist::Net& net = module.net(pin.net);
      if (net.false_path) continue;
      if (!net.driver.isCellPin()) continue;
      CellId src = net.driver.cell();
      if (!isSeq(src)) continue;  // only sequential outputs launch data
      const int src_group = regions.group_of_cell[src.index()];
      if (src_group < 0) continue;
      pred_sets[static_cast<std::size_t>(dst_group)].insert(src_group);
    }
  });

  g.preds.resize(static_cast<std::size_t>(g.n_groups));
  g.succs.resize(static_cast<std::size_t>(g.n_groups));
  for (int j = 0; j < g.n_groups; ++j) {
    auto& set = pred_sets[static_cast<std::size_t>(j)];
    g.preds[static_cast<std::size_t>(j)].assign(set.begin(), set.end());
    std::sort(g.preds[static_cast<std::size_t>(j)].begin(),
              g.preds[static_cast<std::size_t>(j)].end());
    for (int i : g.preds[static_cast<std::size_t>(j)]) {
      g.succs[static_cast<std::size_t>(i)].push_back(j);
    }
  }
  for (auto& s : g.succs) std::sort(s.begin(), s.end());
  return g;
}

}  // namespace desync::core
