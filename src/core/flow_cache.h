// FlowDB integration of the desynchronization flow.
//
// A FlowSession wraps one desynchronize() run.  It maintains the chained
// content-address of the flow state: the base key hashes the snapshot
// format version, the tool version, the library fingerprint and the input
// design snapshot; each pass then extends the chain with its name and the
// fingerprint of the options it actually depends on.  Because the pipeline
// is deterministic, "same chain key" == "same state after this pass", so a
// cache entry stored under the key of pass i can be restored verbatim.
//
// Passes are *registered* first (addPass) and executed by run().  The key
// chain is a pure function of the input + options — no entry has to be
// read to compute it — so run() derives every pass key up front, probes
// the cache (and the --resume checkpoint) deepest-first for the latest
// restorable state, applies that single entry, and computes only the
// passes after it.  A warm run therefore reads exactly one entry no
// matter how long the restored prefix is, and a corrupt entry simply
// makes the probe fall back to the next-shallower candidate (ultimately a
// cold run), with a diagnostic note in the report.
//
// --jobs never enters any key, and restored results are byte-identical to
// computed ones, preserving the flow's determinism guarantee.  After
// every computed pass run() stores a cache entry *and* overwrites the
// checkpoint slot, so an interrupted run restarts from its last completed
// pass via `--resume`.
//
// In --eco mode (FlowDbOptions::eco) the whole-design machinery above is
// bypassed: the base key carries configuration only (no input snapshot),
// no entries or checkpoints are probed or stored, and run() instead
// constructs an EcoContext (core/eco.h) that diffs the input against
// per-object record tables and serves region-level restores to the pass
// bodies.  Every pass executes — the incrementality lives *inside* the
// passes, which skip the analysis work for clean regions.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/desync.h"
#include "flowdb/cache.h"
#include "flowdb/hash.h"

namespace desync::core {

class EcoContext;

/// Encodes every DesyncResult field except `flow` as a FlowDB byte blob.
[[nodiscard]] std::string encodeResult(const DesyncResult& result);
/// Inverse of encodeResult; throws flowdb::FlowDbError on malformed input.
void decodeResult(std::string_view blob, DesyncResult& result);

/// One desynchronize() run's view of the FlowDB cache.  With an empty
/// cache_dir the session is inert: run() just times and runs the bodies.
class FlowSession {
 public:
  FlowSession(netlist::Design& design, netlist::Module& module,
              const liberty::Gatefile& gatefile, const DesyncOptions& options,
              DesyncResult& result);
  ~FlowSession();  // out of line: EcoContext is incomplete here

  /// Registers a pass: `name`, the key-chain `fingerprint` (options the
  /// pass depends on; may be null) and the `body` that computes it.  The
  /// body runs inside run(), in registration order.
  void addPass(const char* name,
               const std::function<void(flowdb::KeyHasher&)>& fingerprint,
               const std::function<void(ScopedPass&)>& body);

  /// Executes the registered pipeline: restores the deepest cached state,
  /// computes the remaining passes, publishes FlowCacheStats.  Exceptions
  /// from a body are rethrown as FlowError carrying the partial
  /// FlowReport.
  void run();

  /// The incremental-recompute context of an --eco run; nullptr otherwise
  /// (plain runs, no cache directory, or run() not yet entered).  Pass
  /// bodies use it for region keys and restore queries.
  [[nodiscard]] EcoContext* eco() { return eco_.get(); }

  /// Stores the updated ECO tables and publishes the "eco" report section;
  /// call after the flow-equivalence checks.  No-op outside --eco mode.
  void ecoFinish();

 private:
  struct Pass {
    const char* name;
    std::function<void(ScopedPass&)> body;
    flowdb::CacheKey key;
  };

  /// Deepest-first probe for a restorable state; returns the index of the
  /// restored pass (-1 = none) and leaves its entry in pending_entry_.
  [[nodiscard]] int findRestorePoint();
  void applyPending(const char* pass);
  void computePass(const Pass& pass, std::uint32_t index);
  [[nodiscard]] bool cacheActive() const { return cache_ != nullptr; }

  netlist::Design& design_;
  netlist::Module& module_;
  const liberty::Gatefile& gatefile_;
  const DesyncOptions& options_;
  DesyncResult& result_;

  std::vector<Pass> passes_;
  std::unique_ptr<flowdb::PassCache> cache_;
  bool eco_mode_ = false;
  std::unique_ptr<EcoContext> eco_;
  flowdb::CacheKey key_;
  std::uint64_t library_fingerprint_ = 0;
  std::optional<std::string> pending_entry_;
  std::optional<flowdb::PassCache::Checkpoint> checkpoint_;
  std::string restore_source_;
  double restore_ms_ = 0.0;
  double compute_ms_ = 0.0;
};

}  // namespace desync::core
