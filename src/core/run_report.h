// `drdesync --report` JSON assembly.
//
// Two shapes, both stamped with the tool version and the FlowDB snapshot
// format version (the identities that also participate in cache keys):
//   - runReportJson: the full report of a successful run — design totals,
//     per-region delay elements, per-corner reference periods and the
//     nested FlowReport (per-pass timings, sources and cache traffic);
//   - errorReportJson: the partial report of a failed run — an "error"
//     message, the "failed_pass" name, how long that pass ran before the
//     failure ("failed_pass_ms"), the innermost trace span the exception
//     unwound through ("last_open_span", `--trace` runs only) and the
//     FlowReport of every pass that ran before (and including) the
//     failure, so a mid-flow crash still tells the caller how far the
//     flow got and what it cost.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "core/desync.h"

namespace desync::core {

/// Design-level facts of one drdesync invocation.
struct RunInfo {
  std::string input;          ///< input netlist path
  std::size_t cells_in = 0;   ///< top-module cells before the flow
  std::size_t cells_out = 0;  ///< after
  std::size_t nets_out = 0;
};

/// Full report of a successful run (schema in docs/report-schema.md).
[[nodiscard]] std::string runReportJson(const RunInfo& info,
                                        const DesyncResult& result);

/// Deterministic projection of the run report: the design facts only
/// (cells, nets, regions, replaced FFs, reference periods, delay
/// elements) with every timing-, cache- and scheduling-dependent field
/// (the "flow" object) omitted.  Byte-identical for byte-identical flow
/// results — at any jobs budget, cold or warm cache, CLI or drdesyncd —
/// which is exactly the comparison the server determinism tests and
/// `drdesync-bench --verify` perform.
[[nodiscard]] std::string canonicalRunReportJson(const RunInfo& info,
                                                 const DesyncResult& result);

/// Partial report of a failed run: "error" + "failed_pass" (with its
/// elapsed "failed_pass_ms" and, when tracing, the "last_open_span") +
/// the passes completed before the failure.
[[nodiscard]] std::string errorReportJson(const RunInfo& info,
                                          std::string_view error,
                                          std::string_view failed_pass,
                                          const FlowReport& flow);

}  // namespace desync::core
