#include "core/desync.h"

#include <algorithm>
#include <chrono>

#include "core/eco.h"
#include "core/flow_cache.h"
#include "core/parallel.h"
#include "netlist/flatten.h"
#include "sim/bitsim/bitsim.h"
#include "sta/sta.h"
#include "trace/trace.h"
#include "variability/variability.h"

namespace desync::core {

FeMode parseFeMode(const std::string& text) {
  if (text == "sim") return FeMode::kSim;
  if (text == "prove") return FeMode::kProve;
  if (text == "both") return FeMode::kBoth;
  throw std::invalid_argument("unknown --fe-mode \"" + text +
                              "\" (expected sim, prove or both)");
}

const char* feModeName(FeMode mode) {
  switch (mode) {
    case FeMode::kSim:
      return "sim";
    case FeMode::kProve:
      return "prove";
    case FeMode::kBoth:
      return "both";
  }
  return "unknown";
}

namespace {

/// Post-flow flow-equivalence self-check (`--fe-check`): golden batches
/// from the pristine synchronous snapshot, desynchronized side free-running
/// on the event engine, stored-value sequences compared per batch.
void runFeCheck(const netlist::Module& sync_top, const netlist::Module& module,
                const liberty::Gatefile& gatefile,
                const DesyncOptions& options, DesyncResult& result) {
  ScopedPass pass(result.flow, "fe_check");
  const sim::bitsim::BitsimStats before = sim::bitsim::bitsimStats();

  sim::SyncStimulus st;
  st.clock_port = options.clock_port;
  st.reset_port = options.control.reset_port;
  st.reset_active_low = options.control.reset_active_low;
  st.half_period_ns = std::max(result.sync_min_period_ns, 0.1);
  st.cycles = options.fe.base_cycles;

  const liberty::BoundModule sync_bound(sync_top, gatefile);
  const std::vector<std::vector<sim::CaptureLog>> sync_batches =
      sim::goldenSyncBatches(sync_bound, st, options.fe.batches,
                             options.fe.engine);

  const liberty::BoundModule desync_bound(module, gatefile);
  auto run_desync = [&](std::size_t b) {
    auto s = std::make_unique<sim::Simulator>(desync_bound);
    const sim::Val active = st.reset_active_low ? sim::Val::k0 : sim::Val::k1;
    const sim::Val inactive = st.reset_active_low ? sim::Val::k1 : sim::Val::k0;
    s->setInput(st.clock_port, sim::Val::k0);
    if (!st.reset_port.empty()) s->setInput(st.reset_port, active);
    s->run(s->now() + sim::nsToPs(2 * st.reset_ns));
    if (!st.reset_port.empty()) s->setInput(st.reset_port, inactive);
    s->run(s->now() + sim::nsToPs(sim::feBatch(st, b).window_ns));
    return s;
  };
  result.fe.report = sim::checkFlowEquivalenceBatches(sync_batches, run_desync);
  result.fe.ran = true;
  if (result.substitution.ffs_replaced == 0) {
    result.flow.note(
        "fe: vector check is vacuous (no flip-flops were replaced; no "
        "capture sequences to compare)");
  }

  const sim::FlowEqBatchReport& fe = result.fe.report;
  pass.counter("batches", static_cast<std::int64_t>(fe.batches_run));
  pass.counter("elements", static_cast<std::int64_t>(fe.elements_compared));
  pass.counter("values", static_cast<std::int64_t>(fe.values_compared));
  pass.counter("mismatches", static_cast<std::int64_t>(fe.mismatches));
  pass.counter("equivalent", fe.equivalent ? 1 : 0);

  const sim::bitsim::BitsimStats after = sim::bitsim::bitsimStats();
  FlowReport::BitsimSection bs;
  bs.compiles = after.compiles - before.compiles;
  bs.compile_ms =
      static_cast<double>(after.compile_us - before.compile_us) / 1000.0;
  bs.levels = static_cast<std::int64_t>(after.levels);
  bs.lanes = static_cast<int>(sim::kLanes);
  bs.cycles = after.cycles - before.cycles;
  bs.lane_vectors = after.lane_vectors - before.lane_vectors;
  bs.eval_ms = static_cast<double>(after.eval_us - before.eval_us) / 1000.0;
  if (after.eval_us > before.eval_us) {
    bs.vectors_per_sec = static_cast<double>(bs.lane_vectors) /
                         (static_cast<double>(after.eval_us - before.eval_us) /
                          1e6);
  }
  if (bs.compiles > 0) result.flow.setBitsim(bs);
}

/// Post-flow symbolic route (`--fe-mode prove|both`): per-register
/// projection-equivalence miters over the pristine snapshot plus the
/// token-flow protocol admissibility check (sim/symfe).
void runFeProve(const netlist::Module& sync_top, const netlist::Module& module,
                const liberty::Gatefile& gatefile,
                const DesyncOptions& options, DesyncResult& result,
                EcoContext* eco) {
  ScopedPass pass(result.flow, "fe_prove");

  const liberty::BoundModule sync_bound(sync_top, gatefile);
  const liberty::BoundModule desync_bound(module, gatefile);

  sim::symfe::SymfeOptions so;
  so.clock_port = options.clock_port;
  so.max_conflicts = options.fe.prove_max_conflicts;
  so.controller = options.control.controller;
  sim::symfe::ProtocolInput pi;
  pi.n_groups = result.regions.n_groups;
  for (const auto& cells : result.regions.seq_cells) {
    pi.active.push_back(!cells.empty());
  }
  pi.preds = result.ddg.preds;
  so.protocol = std::move(pi);

  // ECO: clean registers reuse their stored proofs; the protocol check is
  // skipped when its whole input (regions, DDG, controller) is
  // fingerprint-identical to the stored report's.
  const std::uint64_t protocol_fp = EcoContext::protocolFingerprint(
      *so.protocol, static_cast<int>(so.controller));
  bool protocol_restored = false;
  if (eco != nullptr) {
    so.restored_proofs = &eco->restoredProofs();
    if (eco->protocolRestorable(protocol_fp)) {
      so.check_protocol = false;
      protocol_restored = true;
    }
  }

  result.symfe.report = sim::symfe::proveFlowEquivalence(sync_bound,
                                                         desync_bound, so);
  result.symfe.ran = true;
  if (protocol_restored) {
    result.symfe.report.protocol = eco->restoredProtocol();
  }
  if (eco != nullptr) eco->recordSymfe(result.symfe.report, protocol_fp);

  const sim::symfe::SymfeReport& rep = result.symfe.report;
  pass.counter("registers", static_cast<std::int64_t>(rep.registers.size()));
  pass.counter("proved", static_cast<std::int64_t>(rep.proved));
  pass.counter("refuted", static_cast<std::int64_t>(rep.refuted));
  pass.counter("skipped", static_cast<std::int64_t>(rep.skipped));
  pass.counter("restored", static_cast<std::int64_t>(rep.restored));
  pass.counter("conflicts", static_cast<std::int64_t>(rep.conflicts));
  pass.counter("decisions", static_cast<std::int64_t>(rep.decisions));
  pass.counter("protocol_admissible", rep.protocol.admissible ? 1 : 0);

  FlowReport::SymfeSection ss;
  ss.registers = static_cast<std::int64_t>(rep.registers.size());
  ss.proved = static_cast<std::int64_t>(rep.proved);
  ss.refuted = static_cast<std::int64_t>(rep.refuted);
  ss.skipped = static_cast<std::int64_t>(rep.skipped);
  ss.restored = static_cast<std::int64_t>(rep.restored);
  ss.conflicts = static_cast<std::int64_t>(rep.conflicts);
  ss.decisions = static_cast<std::int64_t>(rep.decisions);
  ss.protocol_states =
      static_cast<std::int64_t>(rep.protocol.states_explored);
  ss.protocol_admissible = rep.protocol.admissible;
  ss.comb_only = rep.comb_only;
  ss.ms = rep.total_ms;
  result.flow.setSymfe(ss);
}

}  // namespace

DesyncResult desynchronize(netlist::Design& design, netlist::Module& module,
                           const liberty::Gatefile& gatefile,
                           const DesyncOptions& options) {
  DesyncResult result;
  result.flow.setJobs(effectiveJobs());
  const PoolStats pool_before = threadPoolStats();

  // Pristine synchronous snapshot for the post-flow flow-equivalence check
  // (the flow mutates `module` in place); taken only when the check is on.
  netlist::Design sync_snapshot;
  const netlist::Module* sync_top = nullptr;
  const bool want_vector = options.fe.batches > 0 &&
                           options.fe.mode != FeMode::kProve;
  const bool want_prove = options.fe.mode != FeMode::kSim;
  if (want_vector || want_prove) {
    trace::Span span("sync_snapshot", "flow");
    sync_top = &netlist::snapshotModule(sync_snapshot, module);
  }

  FlowSession session(design, module, gatefile, options, result);

  // Reference periods of the synchronous circuit (before any mutation):
  // one STA per PVT corner, built concurrently over a shared binding.  The
  // typical corner (delay_scale 1.0) is the flow's reference period.
  session.addPass("reference_sta", nullptr, [&](ScopedPass& pass) {
    const liberty::BoundModule bound(module, gatefile);
    const variability::Corner corners[] = {variability::Corner::kBest,
                                           variability::Corner::kTypical,
                                           variability::Corner::kWorst};
    std::vector<sta::StaOptions> corner_opts;
    for (variability::Corner c : corners) {
      sta::StaOptions so;
      so.delay_scale = variability::cornerSpec(c).delay_scale;
      corner_opts.push_back(std::move(so));
    }
    std::vector<double> task_ms(corner_opts.size(), 0.0);
    std::vector<std::unique_ptr<sta::Sta>> analyses(corner_opts.size());
    auto buildAll = [&](const std::vector<std::uint8_t>* mask) {
      parallelFor(corner_opts.size(), [&](std::size_t i) {
        trace::Span span("sta_corner", "sta");
        const auto t0 = std::chrono::steady_clock::now();
        sta::StaOptions so = corner_opts[i];
        so.net_mask = mask;
        analyses[i] = std::make_unique<sta::Sta>(bound, std::move(so));
        task_ms[i] += std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
      });
    };
    EcoContext* eco = session.eco();
    const std::vector<std::uint8_t>* mask =
        eco != nullptr ? eco->refstaMask() : nullptr;
    buildAll(mask);
    if (mask != nullptr) {
      // A masked analysis that had to cut loops is not comparable with the
      // stored full-run arrivals; redo the pass unmasked (still exact).
      bool broken = false;
      for (const auto& a : analyses) {
        if (!a->brokenArcs().empty()) broken = true;
      }
      if (broken) {
        eco->dropStoredRefsta();
        buildAll(nullptr);
      }
    }
    if (eco != nullptr) {
      const std::vector<double> periods =
          eco->referencePeriods(module, analyses);
      for (std::size_t i = 0; i < analyses.size(); ++i) {
        const variability::CornerSpec spec =
            variability::cornerSpec(corners[i]);
        result.corner_periods.push_back(DesyncResult::CornerPeriod{
            spec.name, spec.delay_scale, periods[i]});
        pass.work(task_ms[i]);
      }
    } else {
      for (std::size_t i = 0; i < analyses.size(); ++i) {
        const variability::CornerSpec spec =
            variability::cornerSpec(corners[i]);
        result.corner_periods.push_back(DesyncResult::CornerPeriod{
            spec.name, spec.delay_scale, analyses[i]->minPeriodNs()});
        pass.work(task_ms[i]);
      }
    }
    result.sync_min_period_ns = result.corner_periods[1].min_period_ns;
    pass.counter("corners",
                 static_cast<std::int64_t>(result.corner_periods.size()));
    pass.counter("jobs", effectiveJobs());
    pass.counter("cells", static_cast<std::int64_t>(module.numCells()));
    pass.counter("nets", static_cast<std::int64_t>(module.numNets()));
  });

  // 1+2. Cleaning + region creation (automatic or designer-specified).
  auto grouping_fp = [&](flowdb::KeyHasher& h) {
    h.u64(options.grouping.clean_logic ? 1 : 0);
    h.u64(options.grouping.bus_heuristic ? 1 : 0);
    h.u64(options.grouping.false_path_nets.size());
    for (const std::string& s : options.grouping.false_path_nets) h.str(s);
    h.str(options.clock_port);
    h.u64(options.manual_seq_groups.size());
    for (const auto& group : options.manual_seq_groups) {
      h.u64(group.size());
      for (const std::string& s : group) h.str(s);
    }
  };
  session.addPass("region_grouping", grouping_fp, [&](ScopedPass& pass) {
    if (options.manual_seq_groups.empty()) {
      result.regions = groupRegions(module, gatefile, options.grouping);
    } else {
      result.regions = groupRegionsBySeqPrefix(
          module, gatefile, options.manual_seq_groups, options.grouping);
    }
    if (EcoContext* eco = session.eco()) {
      eco->captureRegionKeys(module, result.regions);
    }
    pass.counter("regions", result.regions.n_groups);
    pass.counter("cells", static_cast<std::int64_t>(module.numCells()));
  });

  // 3. Flip-flop substitution (latch pairs + extra-latch glue).
  session.addPass("ff_substitution", nullptr, [&](ScopedPass& pass) {
    result.substitution =
        substituteFlipFlops(module, gatefile, result.regions);
    pass.counter("ffs_replaced",
                 static_cast<std::int64_t>(result.substitution.ffs_replaced));
    pass.counter(
        "glue_cells",
        static_cast<std::int64_t>(result.substitution.glue_cells_added));
  });

  // 4. Data-dependency graph over the regions.
  session.addPass("dependency_graph", nullptr, [&](ScopedPass& pass) {
    result.ddg = buildDependencyGraph(module, gatefile, result.regions);
    std::int64_t edges = 0;
    for (const auto& preds : result.ddg.preds) {
      edges += static_cast<std::int64_t>(preds.size());
    }
    pass.counter("edges", edges);
  });

  // 5a. Region timing: datapath re-buffering, delay-element stage
  // characterization and per-region critical paths.  Deliberately keyed
  // without the control knobs (margin, mux taps, controller kind, reset):
  // changing any of those reuses this pass's cached STA results and only
  // recomputes the cheap network construction below.
  session.addPass("region_timing", nullptr, [&](ScopedPass& pass) {
    if (EcoContext* eco = session.eco()) {
      EcoContext::RegionTimingOutcome out =
          eco->regionTiming(module, gatefile, result.regions);
      result.timing = std::move(out.timing);
      pass.counter("regions_dirty", out.dirty);
      pass.counter("regions_restored", out.restored);
    } else {
      result.timing = computeRegionTiming(module, gatefile, result.regions);
    }
    pass.counter("regions", static_cast<std::int64_t>(
                                result.timing.required_delay_ns.size()));
    pass.counter("cells", static_cast<std::int64_t>(module.numCells()));
  });

  // 5b+6. Delay elements and control network.
  auto control_fp = [&](flowdb::KeyHasher& h) {
    h.u64(static_cast<std::uint64_t>(options.control.controller));
    h.f64(options.control.margin);
    h.u64(static_cast<std::uint64_t>(options.control.mux_taps));
    h.u64(static_cast<std::uint64_t>(options.control.nominal_selection));
    h.str(options.control.reset_port);
    h.u64(options.control.reset_active_low ? 1 : 0);
  };
  session.addPass("control_network", control_fp, [&](ScopedPass& pass) {
    result.control = insertControlNetwork(
        design, module, gatefile, result.regions, result.ddg,
        result.substitution, result.timing, options.control);
    pass.counter("controllers",
                 static_cast<std::int64_t>(result.control.regions.size()));
    pass.counter("loop_cuts",
                 static_cast<std::int64_t>(result.control.loop_cuts.size()));
    pass.counter("cells", static_cast<std::int64_t>(module.numCells()));
    pass.counter("nets", static_cast<std::int64_t>(module.numNets()));
  });

  // 7. Backend constraints (thesis §4.5, Fig 4.2): the original clock
  // becomes two non-overlapping latch-enable clocks sourced at the
  // controllers' g drivers; the falling edge of the master coincides with
  // the rising edge of the slave at the original capture instant.
  session.addPass("sdc_generation", nullptr, [&](ScopedPass& pass) {
    const double period = result.sync_min_period_ns;
    sta::SdcClock clk_m, clk_s;
    clk_m.name = "ClkM";
    clk_m.period_ns = period;
    clk_m.rise_at_ns = period * 5.0 / 12.0;
    clk_m.fall_at_ns = period;
    clk_m.targets_are_pins = true;
    clk_s.name = "ClkS";
    clk_s.period_ns = period;
    clk_s.rise_at_ns = period;
    clk_s.fall_at_ns = period * 7.0 / 6.0;
    clk_s.targets_are_pins = true;
    for (int g = 0; g < result.regions.n_groups; ++g) {
      auto gi = static_cast<std::size_t>(g);
      auto addTarget = [&](netlist::NetId en, sta::SdcClock& clock) {
        if (!en.valid()) return;
        const netlist::Net& n = module.net(en);
        if (!n.driver.isCellPin()) return;
        clock.targets.push_back(
            std::string(module.cellName(n.driver.cell())) + "/Z");
      };
      if (gi < result.substitution.master_enable.size()) {
        addTarget(result.substitution.master_enable[gi], clk_m);
        addTarget(result.substitution.slave_enable[gi], clk_s);
      }
    }
    if (!clk_m.targets.empty()) result.sdc.clocks.push_back(clk_m);
    if (!clk_s.targets.empty()) result.sdc.clocks.push_back(clk_s);
    result.sdc.disabled = result.control.loop_cuts;
    result.sdc.size_only = result.control.size_only_cells;
    pass.counter("clocks", static_cast<std::int64_t>(result.sdc.clocks.size()));
    pass.counter("disabled_arcs",
                 static_cast<std::int64_t>(result.sdc.disabled.size()));
  });

  session.run();
  if (want_vector) {
    runFeCheck(*sync_top, module, gatefile, options, result);
  }
  if (want_prove) {
    runFeProve(*sync_top, module, gatefile, options, result, session.eco());
  }
  session.ecoFinish();
  // Contention delta across the run: non-zero when another top-level
  // caller's parallel section serialized one of ours on the shared pool.
  // Thread-scoped, so the delta is exactly this run's waits even with
  // concurrent requests in flight.
  const PoolStats pool_after = threadPoolStats();
  if (pool_after.contended > pool_before.contended) {
    result.flow.setPoolContention(
        pool_after.contended - pool_before.contended,
        (pool_after.wait_us - pool_before.wait_us) / 1000.0);
  }
  return result;
}

}  // namespace desync::core
