#include "core/ff_substitution.h"

#include <map>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

namespace desync::core {

using netlist::CellId;
using netlist::Module;
using netlist::NetId;
using netlist::PortDir;

namespace {

/// Book-keeping helper: registers a new cell in the regions structure.
void track(Regions& regions, Module& m, CellId id, int group, bool seq) {
  if (regions.group_of_cell.size() < m.cellCapacity()) {
    regions.group_of_cell.resize(m.cellCapacity(), -1);
  }
  regions.group_of_cell[id.index()] = group;
  if (group < 0) return;
  auto& list = seq ? regions.seq_cells[static_cast<std::size_t>(group)]
                   : regions.comb_cells[static_cast<std::size_t>(group)];
  list.push_back(id);
}

struct Builder {
  Module& m;
  const liberty::Gatefile& gf;
  Regions& regions;
  SubstitutionResult& result;
  std::uint64_t counter = 0;

  NetId newNet(const std::string& base) {
    return m.addNet(base + "_ds" + std::to_string(counter++));
  }

  CellId comb(const std::string& name, const char* type, int group,
              std::initializer_list<Module::PinInit> pins) {
    CellId id = m.addCell(name, type, pins);
    track(regions, m, id, group, /*seq=*/false);
    ++result.glue_cells_added;
    return id;
  }

  NetId gate2(const std::string& name, const char* type, int group, NetId a,
              NetId b) {
    NetId z = newNet(name);
    comb(name, type, group,
         {{"A", PortDir::kInput, a},
          {"B", PortDir::kInput, b},
          {"Z", PortDir::kOutput, z}});
    return z;
  }

  CellId latch(const std::string& name, int group, NetId d, NetId g,
               NetId q) {
    CellId id = m.addCell(name, gf.simpleLatch(),
                          {{"D", PortDir::kInput, d},
                           {"G", PortDir::kInput, g},
                           {"Q", PortDir::kOutput, q}});
    track(regions, m, id, group, /*seq=*/true);
    return id;
  }
};

}  // namespace

SubstitutionResult substituteFlipFlops(Module& module,
                                       const liberty::Gatefile& gatefile,
                                       Regions& regions) {
  SubstitutionResult result;
  result.master_enable.assign(static_cast<std::size_t>(regions.n_groups),
                              NetId{});
  result.slave_enable.assign(static_cast<std::size_t>(regions.n_groups),
                             NetId{});
  Builder b{module, gatefile, regions, result};

  // The enable-forcing gates for asynchronous controls (Fig 3.1c) depend
  // only on (region enable, control net, polarity) — share them across all
  // flip-flops of a region instead of duplicating per bit, as a synthesis
  // tool would.
  std::map<std::tuple<std::uint32_t, std::uint32_t, bool>, NetId>
      forced_enable_cache;
  auto forcedEnable = [&](int group, NetId enable, NetId ctrl,
                          bool active_low, const char* tag) {
    auto key = std::make_tuple(enable.value, ctrl.value, active_low);
    auto it = forced_enable_cache.find(key);
    if (it != forced_enable_cache.end()) return it->second;
    NetId out = b.gate2("G" + std::to_string(group) + "_" + tag + "_" +
                            std::to_string(b.counter++),
                        active_low ? "OR2B1" : "OR2", group, enable, ctrl);
    forced_enable_cache.emplace(key, out);
    return out;
  };

  auto enables = [&](int g) -> std::pair<NetId, NetId> {
    auto gi = static_cast<std::size_t>(g);
    if (!result.master_enable[gi].valid()) {
      result.master_enable[gi] =
          module.addNet("G" + std::to_string(g) + "_gm");
      result.slave_enable[gi] =
          module.addNet("G" + std::to_string(g) + "_gs");
    }
    return {result.master_enable[gi], result.slave_enable[gi]};
  };

  // Pre-pass: integrated clock gates.  Each CGL becomes a latched gating
  // condition ANDed into the enables of the flip-flops it clocks
  // (Fig 3.1d); record gating nets per (CGL output net).
  struct Gating {
    NetId cen_master;  ///< AND term for the master enable
    NetId cen_slave;   ///< AND term for the slave enable (re-latched so it
                       ///< is stable throughout the slave pulse)
  };
  std::unordered_map<std::uint32_t, Gating> gated_clock_nets;
  std::vector<CellId> removed_gates;
  std::vector<CellId> clock_gates;
  module.forEachCell([&](CellId cid) {
    if (gatefile.kind(module.cellType(cid)) == liberty::CellKind::kClockGate) {
      clock_gates.push_back(cid);
    }
  });
  for (CellId cg : clock_gates) {
    const liberty::SeqClass* sc = gatefile.seqClass(module.cellType(cg));
    NetId e_net = module.pinNet(cg, sc->data_pin);
    NetId z_net = module.pinNet(cg, sc->q_pin);
    // Which group do the gated flip-flops live in?  Take the group of the
    // first sequential sink.
    int group = -1;
    if (z_net.valid()) {
      for (const netlist::TermRef& t : module.net(z_net).sinks) {
        if (t.isCellPin()) {
          int g = regions.group_of_cell[t.cell().index()];
          if (g >= 0) {
            group = g;
            break;
          }
        }
      }
    }
    if (group < 0 || !e_net.valid()) continue;
    auto [gm, gs] = enables(group);
    std::string base = std::string(module.cellName(cg));
    // Fig 3.1(d): the gating condition is latched while the master enable
    // is low (mirror of the integrated clock gate's low-phase latch), and
    // re-latched against the slave enable so each AND term is stable for
    // the whole duration of the pulse it gates.
    NetId gmn = b.newNet(base + "_gmn");
    b.comb(base + "_minv", "IV", group,
           {{"A", PortDir::kInput, gm}, {"Z", PortDir::kOutput, gmn}});
    NetId cen_m = b.newNet(base + "_cenm");
    b.latch(base + "_cenLm", group, e_net, gmn, cen_m);
    NetId gsn = b.newNet(base + "_gsn");
    b.comb(base + "_sinv", "IV", group,
           {{"A", PortDir::kInput, gs}, {"Z", PortDir::kOutput, gsn}});
    NetId cen_s = b.newNet(base + "_cens");
    b.latch(base + "_cenLs", group, cen_m, gsn, cen_s);
    gated_clock_nets.emplace(z_net.value, Gating{cen_m, cen_s});
    removed_gates.push_back(cg);
  }
  module.removeCells(removed_gates);
  auto gatingFor = [&](NetId clock_net) -> const Gating* {
    if (!clock_net.valid()) return nullptr;
    auto it = gated_clock_nets.find(clock_net.value);
    return it == gated_clock_nets.end() ? nullptr : &it->second;
  };

  // Snapshot flip-flops before mutating.
  std::vector<CellId> ffs;
  module.forEachCell([&](CellId cid) {
    if (gatefile.isFlipFlop(module.cellType(cid))) {
      ffs.push_back(cid);
    }
  });

  // The SeqClass names pins as strings; resolving them through findPin()
  // re-hashes each string once per flip-flop.  Resolve them to interned
  // NameIds once per flip-flop *type* and match pins by integer compare.
  struct SeqPinIds {
    netlist::NameId d, si, se, sync, clear, preset, clock, q, qn;
  };
  std::unordered_map<std::uint32_t, SeqPinIds> seq_pin_ids;
  const netlist::NameTable& names = module.design().names();
  auto pinIdsFor = [&](netlist::NameId type,
                       const liberty::SeqClass* sc) -> const SeqPinIds& {
    auto [it, fresh] = seq_pin_ids.try_emplace(type.value);
    if (fresh) {
      auto find = [&](const std::string& p) {
        return p.empty() ? netlist::NameId{} : names.find(p);
      };
      it->second = SeqPinIds{find(sc->data_pin),         find(sc->scan_in),
                             find(sc->scan_enable),      find(sc->sync_pin),
                             find(sc->async_clear_pin),
                             find(sc->async_preset_pin), find(sc->clock_pin),
                             find(sc->q_pin),            find(sc->qn_pin)};
    }
    return it->second;
  };

  // Gather every flip-flop's pin bindings first, then tombstone them all
  // in one removeCells sweep: per-cell removal pays one scan of the shared
  // clock/reset nets' sinks per flip-flop — quadratic in register count.
  struct FfInfo {
    const liberty::SeqClass* sc;
    int group;
    std::string name;
    NetId d, si, se, sync, clear, preset, clock, q, qn;
  };
  std::vector<FfInfo> infos;
  infos.reserve(ffs.size());
  for (CellId ff : ffs) {
    const netlist::NameId type = module.cell(ff).type;
    const liberty::SeqClass* sc = gatefile.seqClass(module.cellType(ff));
    const int group = regions.group_of_cell[ff.index()];
    if (group < 0) {
      throw netlist::NetlistError("flip-flop outside any region: " +
                                  std::string(module.cellName(ff)));
    }
    const SeqPinIds& ids = pinIdsFor(type, sc);
    const netlist::Cell& cell = module.cell(ff);
    auto pin = [&](netlist::NameId pid) -> NetId {
      if (!pid.valid()) return NetId{};
      for (const netlist::PinConn& pc : cell.pins) {
        if (pc.name == pid) return pc.net;
      }
      return NetId{};
    };
    infos.push_back(FfInfo{sc, group, std::string(module.cellName(ff)),
                           pin(ids.d), pin(ids.si), pin(ids.se),
                           pin(ids.sync), pin(ids.clear), pin(ids.preset),
                           pin(ids.clock), pin(ids.q), pin(ids.qn)});
  }
  // Remove the flip-flops; their nets stay.  Drop the group memberships
  // of the removed slots.
  module.removeCells(ffs);
  for (CellId ff : ffs) {
    regions.group_of_cell[ff.index()] = -1;
  }

  for (const FfInfo& info : infos) {
    const liberty::SeqClass* sc = info.sc;
    const int group = info.group;
    auto [gm, gs] = enables(group);
    const std::string& name = info.name;
    NetId d = info.d;
    const NetId si = info.si;
    const NetId se = info.se;
    const NetId sync = info.sync;
    const NetId clear = info.clear;
    const NetId preset = info.preset;
    NetId q = info.q;
    const NetId qn = info.qn;
    const bool sync_low = sc->sync_active_low;
    const bool sync_set = sc->sync_is_set;
    const bool clear_low = sc->async_clear_active_low;
    const bool preset_low = sc->async_preset_active_low;
    const Gating* gating = gatingFor(info.clock);

    // --- master data chain -------------------------------------------
    if (!d.valid()) d = module.constNet(false);
    if (se.valid()) {
      // Scan mux (Fig 3.1a): D when SE=0, SI when SE=1.
      NetId z = b.newNet(name + "_scm");
      b.comb(name + "_scmux", "MUX21", group,
             {{"A", PortDir::kInput, d},
              {"B", PortDir::kInput, si},
              {"S", PortDir::kInput, se},
              {"Z", PortDir::kOutput, z}});
      d = z;
    }
    if (sync.valid()) {
      // Synchronous set/reset (Fig 3.1b).
      if (sync_set) {
        d = b.gate2(name + "_sys", sync_low ? "OR2B1" : "OR2", group, d,
                    sync);
      } else {
        d = b.gate2(name + "_syr", sync_low ? "AN2" : "AN2B1", group, d,
                    sync);
      }
    }

    NetId gm_eff = gm;
    NetId gs_eff = gs;
    if (gating != nullptr) {
      gm_eff = b.gate2(name + "_cgm", "AN2", group, gm, gating->cen_master);
      gs_eff = b.gate2(name + "_cgs", "AN2", group, gs, gating->cen_slave);
    }

    // Async controls (Fig 3.1c): force the latches transparent while the
    // control is asserted and gate the data so the forced value flows.
    NetId slave_gate_clear, slave_gate_preset;
    if (clear.valid()) {
      d = b.gate2(name + "_acm", clear_low ? "AN2" : "AN2B1", group, d,
                  clear);
      gm_eff = forcedEnable(group, gm_eff, clear, clear_low, "agm");
      gs_eff = forcedEnable(group, gs_eff, clear, clear_low, "ags");
      slave_gate_clear = clear;
    }
    if (preset.valid()) {
      d = b.gate2(name + "_apm", preset_low ? "OR2B1" : "OR2", group, d,
                  preset);
      gm_eff = forcedEnable(group, gm_eff, preset, preset_low, "apgm");
      gs_eff = forcedEnable(group, gs_eff, preset, preset_low, "apgs");
      slave_gate_preset = preset;
    }

    // --- the latch pair ------------------------------------------------
    NetId mq = b.newNet(name + "_mq");
    b.latch(name + "_Lm", group, d, gm_eff, mq);
    NetId sd = mq;
    if (slave_gate_clear.valid()) {
      sd = b.gate2(name + "_acs", clear_low ? "AN2" : "AN2B1", group, sd,
                   slave_gate_clear);
    }
    if (slave_gate_preset.valid()) {
      sd = b.gate2(name + "_aps", preset_low ? "OR2B1" : "OR2", group, sd,
                   slave_gate_preset);
    }
    if (!q.valid()) q = b.newNet(name + "_q");
    b.latch(name + "_Ls", group, sd, gs_eff, q);
    if (qn.valid()) {
      b.comb(name + "_qninv", "IV", group,
             {{"A", PortDir::kInput, q}, {"Z", PortDir::kOutput, qn}});
    }
    ++result.ffs_replaced;
  }

  // Drop the removed flip-flops from the region membership lists.
  for (auto& list : regions.seq_cells) {
    std::erase_if(list,
                  [&](CellId id) { return !module.isLiveCell(id); });
  }
  for (auto& list : regions.comb_cells) {
    std::erase_if(list,
                  [&](CellId id) { return !module.isLiveCell(id); });
  }

  return result;
}

}  // namespace desync::core
