#include "core/buffering.h"

namespace desync::core {

using netlist::Module;
using netlist::NetId;
using netlist::PortDir;

std::size_t insertBufferTrees(Module& module,
                              const liberty::Gatefile& gatefile,
                              const BufferingOptions& options) {
  (void)gatefile;
  std::size_t added = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (NetId id : module.netIds()) {
      const netlist::Net& n = module.net(id);
      if (n.driver.isPort() || n.driver.kind == netlist::TermKind::kNone ||
          n.driver.isConst()) {
        continue;
      }
      if (static_cast<int>(n.sinks.size()) <= options.max_fanout) continue;
      std::vector<netlist::TermRef> sinks = n.sinks;
      const std::size_t chunk = static_cast<std::size_t>(options.max_fanout);
      for (std::size_t start = 0; start < sinks.size(); start += chunk) {
        std::string base = std::string(module.netName(id));
        NetId out = module.addNet(
            module.design().names().str(module.design().names().makeUnique(
                base + "_bt")));
        module.addCell(
            std::string(module.design().names().str(
                module.design().names().makeUnique(base + "_btb"))),
            options.buffer_cell,
            {{"A", PortDir::kInput, id}, {"Z", PortDir::kOutput, out}});
        ++added;
        const std::size_t end = std::min(start + chunk, sinks.size());
        for (std::size_t i = start; i < end; ++i) {
          const netlist::TermRef& t = sinks[i];
          if (t.isCellPin()) module.connectPin(t.cell(), t.pin, out);
        }
      }
      changed = true;
    }
  }
  return added;
}

}  // namespace desync::core
