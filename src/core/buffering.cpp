#include "core/buffering.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace desync::core {

using netlist::Module;
using netlist::NetId;
using netlist::PortDir;

std::size_t insertBufferTrees(Module& module,
                              const liberty::Gatefile& gatefile,
                              const BufferingOptions& options) {
  (void)gatefile;
  std::size_t added = 0;
  netlist::NameTable& names = module.design().names();
  // Per-base counters keep name uniquification O(1): makeUnique() would
  // probe "_1", "_2", ... for every buffer sharing a base name, which is
  // quadratic on the enable nets (hundreds of buffers per base).
  std::unordered_map<std::string, std::uint64_t> serial;
  const auto unique = [&](const std::string& base) {
    std::uint64_t& next = serial[base];
    std::string cand = base + std::to_string(next++);
    while (names.find(cand).valid()) {
      cand = base + std::to_string(next++);
    }
    return cand;
  };
  // Worklist of nets that may exceed the fanout bound.  Chunking a net
  // leaves it with one sink per chunk, which can still exceed the bound on
  // very wide nets, so the net re-enters the list until it fits; the new
  // "_bt" nets are created at or below the bound and never enter.
  std::vector<NetId> work;
  work.reserve(module.numNets());
  module.forEachNet([&](NetId id) { work.push_back(id); });
  for (std::size_t w = 0; w < work.size(); ++w) {
    const NetId id = work[w];
    {
      const netlist::Net& n = module.net(id);
      if (n.driver.isPort() || n.driver.kind == netlist::TermKind::kNone ||
          n.driver.isConst()) {
        continue;
      }
      if (static_cast<int>(n.sinks.size()) <= options.max_fanout) continue;
    }
    const std::size_t n_sinks = module.net(id).sinks.size();
    const std::size_t chunk = static_cast<std::size_t>(options.max_fanout);
    const std::string base = std::string(module.netName(id));
    // Assign sink index ranges to the new buffer outputs, then rewire in
    // one redistributeSinks pass: connectPin per sink re-scans the
    // over-fanout net's sinks on every disconnect — quadratic.  The new
    // buffers' own A pins land past `assign` and stay on the net.
    std::vector<NetId> assign(n_sinks);
    for (std::size_t start = 0; start < n_sinks; start += chunk) {
      NetId out = module.addNet(unique(base + "_bt"));
      module.addCell(unique(base + "_btb"), options.buffer_cell,
                     {{"A", PortDir::kInput, id}, {"Z", PortDir::kOutput, out}});
      ++added;
      const std::size_t end = std::min(start + chunk, n_sinks);
      for (std::size_t i = start; i < end; ++i) assign[i] = out;
    }
    module.redistributeSinks(id, assign);
    work.push_back(id);
  }
  return added;
}

}  // namespace desync::core
