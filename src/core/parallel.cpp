#include "core/parallel.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "trace/trace.h"

namespace desync::core {

namespace {

thread_local bool tls_in_parallel = false;

/// One parallelFor invocation: an index range consumed through an atomic
/// counter by the pool workers and the calling thread together.
struct Job {
  std::size_t n = 0;
  const std::function<void(std::size_t)>* fn = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::atomic<bool> cancelled{false};

  std::mutex err_mutex;
  std::exception_ptr error;
  std::size_t error_index = std::numeric_limits<std::size_t>::max();

  std::mutex done_mutex;
  std::condition_variable done_cv;

  /// Pulls and runs iterations until the range is exhausted (or an earlier
  /// iteration failed).  Called from workers and from the issuing thread.
  void work() {
    tls_in_parallel = true;
    const bool tracing = trace::enabled();
    const double run_begin = tracing ? trace::timestampUs() : 0.0;
    std::size_t claimed = 0;
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      ++claimed;
      if (!cancelled.load(std::memory_order_relaxed)) {
        try {
          (*fn)(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(err_mutex);
          // Keep the lowest-indexed failure so the surfaced exception does
          // not depend on scheduling.
          if (i < error_index) {
            error_index = i;
            error = std::current_exception();
          }
          cancelled.store(true, std::memory_order_relaxed);
        }
      }
    }
    // The run span is recorded BEFORE the claimed iterations are published:
    // waitFinished()'s acquire of `done` then guarantees the drain sees
    // every event this thread buffered during the section (trace/trace.h).
    if (tracing) {
      trace::completedSpan("parallel_run", "parallel", run_begin,
                           trace::timestampUs());
    }
    if (claimed > 0 &&
        done.fetch_add(claimed, std::memory_order_acq_rel) + claimed == n) {
      std::lock_guard<std::mutex> lock(done_mutex);
      done_cv.notify_all();
    }
    tls_in_parallel = false;
  }

  void waitFinished() {
    std::unique_lock<std::mutex> lock(done_mutex);
    done_cv.wait(lock,
                 [&] { return done.load(std::memory_order_acquire) >= n; });
  }
};

/// The process-wide pool.  Threads are created lazily on first parallel
/// use and grow (never shrink) when a later section requests more workers;
/// idle workers block on a condition variable.
class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  void run(std::size_t n, const std::function<void(std::size_t)>& fn,
           int jobs) {
    // One section at a time: concurrent top-level callers queue up here
    // (the flow itself is single-threaded; this guards library misuse).
    std::lock_guard<std::mutex> run_lock(run_mutex_);
    trace::Span section("parallel_for", "parallel");
    auto job = std::make_shared<Job>();
    job->n = n;
    job->fn = &fn;

    ensureWorkers(jobs - 1);  // the caller is worker #0
    {
      std::lock_guard<std::mutex> lock(mutex_);
      job_ = job;
      ++job_serial_;
    }
    wake_cv_.notify_all();

    job->work();          // participate until the range is drained
    job->waitFinished();  // then wait for workers still inside fn

    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (job_ == job) job_.reset();
    }
    if (job->error) std::rethrow_exception(job->error);
  }

 private:
  Pool() = default;

  ~Pool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      shutdown_ = true;
    }
    wake_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  void ensureWorkers(int count) {
    std::lock_guard<std::mutex> lock(mutex_);
    while (static_cast<int>(workers_.size()) < count) {
      const int index = static_cast<int>(workers_.size()) + 1;
      workers_.emplace_back([this, index] { workerLoop(index); });
    }
  }

  void workerLoop(int index) {
    // One trace track per pool worker; the issuing thread is "flow", so a
    // section at --jobs N shows N executing tracks (flow + N-1 workers).
    trace::setThreadName("worker-" + std::to_string(index));
    std::uint64_t seen_serial = 0;
    for (;;) {
      std::shared_ptr<Job> job;
      const double wait_begin = trace::enabled() ? trace::timestampUs() : 0.0;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_cv_.wait(lock, [&] {
          return shutdown_ || (job_ != nullptr && job_serial_ != seen_serial);
        });
        if (shutdown_) return;
        job = job_;
        seen_serial = job_serial_;
      }
      // Queue-wait spans are recorded only once the wait ended, so a
      // worker parked in the condition wait never leaves an open span in
      // its buffer at drain time.
      if (wait_begin != 0.0 && trace::enabled()) {
        trace::completedSpan("queue_wait", "parallel", wait_begin,
                             trace::timestampUs());
      }
      job->work();
    }
  }

  std::mutex run_mutex_;
  std::mutex mutex_;
  std::condition_variable wake_cv_;
  std::vector<std::thread> workers_;
  std::shared_ptr<Job> job_;
  std::uint64_t job_serial_ = 0;
  bool shutdown_ = false;
};

/// Default job count from the environment / hardware (computed once).
int environmentJobs() {
  if (const char* env = std::getenv("DESYNC_JOBS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= 1024) {
      return static_cast<int>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

std::atomic<int> g_jobs_override{0};  // 0 = use environmentJobs()

}  // namespace

int globalJobs() {
  const int over = g_jobs_override.load(std::memory_order_relaxed);
  return over > 0 ? over : environmentJobs();
}

void setGlobalJobs(int jobs) {
  g_jobs_override.store(jobs > 0 ? jobs : 0, std::memory_order_relaxed);
}

bool inParallelSection() { return tls_in_parallel; }

void parallelFor(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const int jobs = globalJobs();
  if (jobs <= 1 || n == 1 || tls_in_parallel) {
    // Exact serial path: index order, caller's thread, pool untouched.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  Pool::instance().run(n, fn, jobs);
}

}  // namespace desync::core
