#include "core/parallel.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>

namespace desync::core {

namespace {

thread_local bool tls_in_parallel = false;

/// One parallelFor invocation: an index range consumed through an atomic
/// counter by the pool workers and the calling thread together.
struct Job {
  std::size_t n = 0;
  const std::function<void(std::size_t)>* fn = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::atomic<bool> cancelled{false};

  std::mutex err_mutex;
  std::exception_ptr error;
  std::size_t error_index = std::numeric_limits<std::size_t>::max();

  std::mutex done_mutex;
  std::condition_variable done_cv;

  /// Pulls and runs iterations until the range is exhausted (or an earlier
  /// iteration failed).  Called from workers and from the issuing thread.
  void work() {
    tls_in_parallel = true;
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      if (!cancelled.load(std::memory_order_relaxed)) {
        try {
          (*fn)(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(err_mutex);
          // Keep the lowest-indexed failure so the surfaced exception does
          // not depend on scheduling.
          if (i < error_index) {
            error_index = i;
            error = std::current_exception();
          }
          cancelled.store(true, std::memory_order_relaxed);
        }
      }
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
        std::lock_guard<std::mutex> lock(done_mutex);
        done_cv.notify_all();
      }
    }
    tls_in_parallel = false;
  }

  void waitFinished() {
    std::unique_lock<std::mutex> lock(done_mutex);
    done_cv.wait(lock,
                 [&] { return done.load(std::memory_order_acquire) >= n; });
  }
};

/// The process-wide pool.  Threads are created lazily on first parallel
/// use and grow (never shrink) when a later section requests more workers;
/// idle workers block on a condition variable.
class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  void run(std::size_t n, const std::function<void(std::size_t)>& fn,
           int jobs) {
    // One section at a time: concurrent top-level callers queue up here
    // (the flow itself is single-threaded; this guards library misuse).
    std::lock_guard<std::mutex> run_lock(run_mutex_);
    auto job = std::make_shared<Job>();
    job->n = n;
    job->fn = &fn;

    ensureWorkers(jobs - 1);  // the caller is worker #0
    {
      std::lock_guard<std::mutex> lock(mutex_);
      job_ = job;
      ++job_serial_;
    }
    wake_cv_.notify_all();

    job->work();          // participate until the range is drained
    job->waitFinished();  // then wait for workers still inside fn

    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (job_ == job) job_.reset();
    }
    if (job->error) std::rethrow_exception(job->error);
  }

 private:
  Pool() = default;

  ~Pool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      shutdown_ = true;
    }
    wake_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  void ensureWorkers(int count) {
    std::lock_guard<std::mutex> lock(mutex_);
    while (static_cast<int>(workers_.size()) < count) {
      workers_.emplace_back([this] { workerLoop(); });
    }
  }

  void workerLoop() {
    std::uint64_t seen_serial = 0;
    for (;;) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_cv_.wait(lock, [&] {
          return shutdown_ || (job_ != nullptr && job_serial_ != seen_serial);
        });
        if (shutdown_) return;
        job = job_;
        seen_serial = job_serial_;
      }
      job->work();
    }
  }

  std::mutex run_mutex_;
  std::mutex mutex_;
  std::condition_variable wake_cv_;
  std::vector<std::thread> workers_;
  std::shared_ptr<Job> job_;
  std::uint64_t job_serial_ = 0;
  bool shutdown_ = false;
};

/// Default job count from the environment / hardware (computed once).
int environmentJobs() {
  if (const char* env = std::getenv("DESYNC_JOBS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= 1024) {
      return static_cast<int>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

std::atomic<int> g_jobs_override{0};  // 0 = use environmentJobs()

}  // namespace

int globalJobs() {
  const int over = g_jobs_override.load(std::memory_order_relaxed);
  return over > 0 ? over : environmentJobs();
}

void setGlobalJobs(int jobs) {
  g_jobs_override.store(jobs > 0 ? jobs : 0, std::memory_order_relaxed);
}

bool inParallelSection() { return tls_in_parallel; }

void parallelFor(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const int jobs = globalJobs();
  if (jobs <= 1 || n == 1 || tls_in_parallel) {
    // Exact serial path: index order, caller's thread, pool untouched.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  Pool::instance().run(n, fn, jobs);
}

}  // namespace desync::core
