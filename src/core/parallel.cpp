#include "core/parallel.h"

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "trace/trace.h"

namespace desync::core {

namespace {

thread_local bool tls_in_parallel = false;

/// This thread's jobs override (JobsScope / setThreadJobs); 0 = use the
/// process environment default.  Thread-local on purpose: concurrent
/// library callers (drdesyncd request handlers) each carry their own
/// budget, so nobody can change another request's parallelism.
thread_local int tls_jobs_override = 0;

/// Per-issuing-thread section counters (threadPoolStats()); the pool also
/// keeps process-wide atomics for poolStats().
thread_local PoolStats tls_pool_stats;

/// One parallelFor invocation: an index range consumed through an atomic
/// counter by the pool workers and the calling thread together.
struct Job {
  std::size_t n = 0;
  const std::function<void(std::size_t)>* fn = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::atomic<bool> cancelled{false};

  std::mutex err_mutex;
  std::exception_ptr error;
  std::size_t error_index = std::numeric_limits<std::size_t>::max();

  std::mutex done_mutex;
  std::condition_variable done_cv;

  /// Pulls and runs iterations until the range is exhausted (or an earlier
  /// iteration failed).  Called from workers and from the issuing thread.
  void work() {
    tls_in_parallel = true;
    const bool tracing = trace::enabled();
    const double run_begin = tracing ? trace::timestampUs() : 0.0;
    std::size_t claimed = 0;
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      ++claimed;
      if (!cancelled.load(std::memory_order_relaxed)) {
        try {
          (*fn)(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(err_mutex);
          // Keep the lowest-indexed failure so the surfaced exception does
          // not depend on scheduling.
          if (i < error_index) {
            error_index = i;
            error = std::current_exception();
          }
          cancelled.store(true, std::memory_order_relaxed);
        }
      }
    }
    // The run span is recorded BEFORE the claimed iterations are published:
    // waitFinished()'s acquire of `done` then guarantees the drain sees
    // every event this thread buffered during the section (trace/trace.h).
    if (tracing) {
      trace::completedSpan("parallel_run", "parallel", run_begin,
                           trace::timestampUs());
    }
    if (claimed > 0 &&
        done.fetch_add(claimed, std::memory_order_acq_rel) + claimed == n) {
      std::lock_guard<std::mutex> lock(done_mutex);
      done_cv.notify_all();
    }
    tls_in_parallel = false;
  }

  void waitFinished() {
    std::unique_lock<std::mutex> lock(done_mutex);
    done_cv.wait(lock,
                 [&] { return done.load(std::memory_order_acquire) >= n; });
  }
};

/// The process-wide pool.  Threads are created lazily on first parallel
/// use and grow (never shrink) when a later section requests more workers;
/// idle workers block on a condition variable.  The instance is leaked on
/// purpose: joining workers from a static destructor races the teardown of
/// other translation units' statics (the trace registry among them), so
/// the only join is the explicit shutdownParallel() the tools call before
/// exit.  Un-joined workers at process exit sit parked in the wake wait
/// and touch nothing.
class Pool {
 public:
  static Pool& instance() {
    static Pool* pool = new Pool;  // leaked: see class comment
    return *pool;
  }

  void run(std::size_t n, const std::function<void(std::size_t)>& fn,
           int jobs) {
    sections_.fetch_add(1, std::memory_order_relaxed);
    ++tls_pool_stats.sections;
    // One section at a time: a concurrent top-level caller (a second
    // drdesyncd request, a second library thread) queues up here.  The
    // wait is counted and traced so serialized requests show up in
    // --report ("pool" object) and on the waiting caller's trace track
    // instead of as silent latency.
    std::unique_lock<std::mutex> run_lock(run_mutex_, std::try_to_lock);
    if (!run_lock.owns_lock()) {
      const double wait_begin = trace::timestampUs();
      run_lock.lock();
      const double wait_end = trace::timestampUs();
      contended_.fetch_add(1, std::memory_order_relaxed);
      wait_us_.fetch_add(static_cast<std::uint64_t>(wait_end - wait_begin),
                         std::memory_order_relaxed);
      ++tls_pool_stats.contended;
      tls_pool_stats.wait_us += wait_end - wait_begin;
      trace::completedSpan("pool_wait", "parallel", wait_begin, wait_end);
    }
    trace::Span section("parallel_for", "parallel");
    auto job = std::make_shared<Job>();
    job->n = n;
    job->fn = &fn;

    ensureWorkers(jobs - 1);  // the caller is worker #0
    {
      std::lock_guard<std::mutex> lock(mutex_);
      job_ = job;
      ++job_serial_;
    }
    wake_cv_.notify_all();

    job->work();          // participate until the range is drained
    job->waitFinished();  // then wait for workers still inside fn

    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (job_ == job) job_.reset();
    }
    if (job->error) std::rethrow_exception(job->error);
  }

  PoolStats stats() const {
    PoolStats s;
    s.sections = sections_.load(std::memory_order_relaxed);
    s.contended = contended_.load(std::memory_order_relaxed);
    s.wait_us = static_cast<double>(wait_us_.load(std::memory_order_relaxed));
    return s;
  }

  /// Joins every worker.  Later sections find a stopped pool (ensureWorkers
  /// refuses to spawn) and drain their range on the calling thread alone.
  void shutdownNow() {
    std::vector<std::thread> workers;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      shutdown_ = true;
      workers.swap(workers_);
    }
    wake_cv_.notify_all();
    for (std::thread& t : workers) t.join();
  }

 private:
  Pool() = default;

  void ensureWorkers(int count) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) return;  // after shutdownParallel(): caller-only drain
    while (static_cast<int>(workers_.size()) < count) {
      const int index = static_cast<int>(workers_.size()) + 1;
      workers_.emplace_back([this, index] { workerLoop(index); });
    }
  }

  void workerLoop(int index) {
    // One trace track per pool worker; the issuing thread is "flow", so a
    // section at --jobs N shows N executing tracks (flow + N-1 workers).
    trace::setThreadName("worker-" + std::to_string(index));
    std::uint64_t seen_serial = 0;
    for (;;) {
      std::shared_ptr<Job> job;
      const double wait_begin = trace::enabled() ? trace::timestampUs() : 0.0;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_cv_.wait(lock, [&] {
          return shutdown_ || (job_ != nullptr && job_serial_ != seen_serial);
        });
        if (shutdown_) return;
        job = job_;
        seen_serial = job_serial_;
      }
      // Queue-wait spans are recorded only once the wait ended, so a
      // worker parked in the condition wait never leaves an open span in
      // its buffer at drain time.
      if (wait_begin != 0.0 && trace::enabled()) {
        trace::completedSpan("queue_wait", "parallel", wait_begin,
                             trace::timestampUs());
      }
      job->work();
    }
  }

  std::mutex run_mutex_;
  std::mutex mutex_;
  std::condition_variable wake_cv_;
  std::vector<std::thread> workers_;
  std::shared_ptr<Job> job_;
  std::uint64_t job_serial_ = 0;
  bool shutdown_ = false;

  std::atomic<std::uint64_t> sections_{0};
  std::atomic<std::uint64_t> contended_{0};
  std::atomic<std::uint64_t> wait_us_{0};
};

/// Parses DESYNC_JOBS (or falls back to the hardware default).  Malformed
/// or out-of-range values are rejected WITH a note on stderr — once, when
/// first parsed — instead of silently ignored.
int parseEnvironmentJobs() {
  if (const char* env = std::getenv("DESYNC_JOBS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= 1024) {
      return static_cast<int>(v);
    }
    std::fprintf(stderr,
                 "desync: ignoring DESYNC_JOBS='%s' (expected an integer in "
                 "1..1024); using the hardware default\n",
                 env);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// Cached DESYNC_JOBS parse; 0 = not parsed yet.  effectiveJobs() sits
/// under hot loops, so the environment is read once per process (a benign
/// first-use race re-parses to the same value).
std::atomic<int> g_env_jobs{0};

int environmentJobs() {
  int v = g_env_jobs.load(std::memory_order_acquire);
  if (v == 0) {
    v = parseEnvironmentJobs();
    g_env_jobs.store(v, std::memory_order_release);
  }
  return v;
}

}  // namespace

int effectiveJobs() {
  return tls_jobs_override > 0 ? tls_jobs_override : environmentJobs();
}

void setThreadJobs(int jobs) { tls_jobs_override = jobs > 0 ? jobs : 0; }

JobsScope::JobsScope(int jobs) : saved_(tls_jobs_override) {
  tls_jobs_override = jobs > 0 ? jobs : 0;
}

JobsScope::~JobsScope() { tls_jobs_override = saved_; }

bool inParallelSection() { return tls_in_parallel; }

void parallelFor(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const int jobs = effectiveJobs();
  if (jobs <= 1 || n == 1 || tls_in_parallel) {
    // Exact serial path: index order, caller's thread, pool untouched.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  Pool::instance().run(n, fn, jobs);
}

PoolStats poolStats() { return Pool::instance().stats(); }

PoolStats threadPoolStats() { return tls_pool_stats; }

void shutdownParallel() { Pool::instance().shutdownNow(); }

namespace detail {
void resetEnvironmentJobsForTest() {
  g_env_jobs.store(0, std::memory_order_release);
}
}  // namespace detail

}  // namespace desync::core
