// Flip-flop substitution (thesis §2.3, §3.1.2, §3.2.3, Fig 3.1).
//
// Every flip-flop is replaced by a master/slave pair of transparent latches
// driven by the region's two latch-enable nets.  The library only ships the
// simplest latch (LD), so the "extra latches" of §3.1.2 are synthesized as
// glue gates around the pair, derived generically from the gatefile's
// structural classification:
//   - scan flip-flops: a MUX21 in front of the master (Fig 3.1a);
//   - synchronous set/reset: an AND/OR gate in front (Fig 3.1b);
//   - asynchronous set/clear: data gating on both latches plus OR-forced
//     enables so the value propagates while the async control is asserted
//     (Fig 3.1c);
//   - clock gating (integrated clock-gate cells): the gating condition is
//     re-latched and ANDed into both enables (Fig 3.1d).
//
// Naming: flip-flop "ff" becomes latches "ff_Lm" and "ff_Ls"; the slave
// drives the original Q net, so the datapath is untouched and the
// flow-equivalence checker can pair "ff" with "ff_Ls".
#pragma once

#include "core/regions.h"
#include "liberty/gatefile.h"
#include "netlist/netlist.h"

namespace desync::core {

struct SubstitutionResult {
  /// Per group id: the master / slave latch enable nets (undriven
  /// placeholders until the control network is inserted).
  std::vector<netlist::NetId> master_enable;
  std::vector<netlist::NetId> slave_enable;
  std::size_t ffs_replaced = 0;
  std::size_t glue_cells_added = 0;
};

/// Replaces every flip-flop of every region with a latch pair.  The
/// regions' group_of_cell entries stay valid for untouched cells; new latch
/// and glue cells are appended to regions.seq_cells/comb_cells.
SubstitutionResult substituteFlipFlops(netlist::Module& module,
                                       const liberty::Gatefile& gatefile,
                                       Regions& regions);

}  // namespace desync::core
