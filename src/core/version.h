// Tool version identity.
//
// Stamped into `--report` JSON, printed by `drdesync --version`, embedded
// in every FlowDB snapshot's provenance header and mixed into every FlowDB
// cache key — so state produced by a different build of the tool is never
// reused, it is recomputed and re-cached.
#pragma once

#include <string_view>

namespace desync::core {

inline constexpr std::string_view kToolVersion = "0.3.0";

}  // namespace desync::core
