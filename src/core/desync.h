// drdesync: the desynchronization tool (thesis chapters 3-4).
//
// Converts a post-synthesis synchronous gate-level netlist into its
// flow-equivalent desynchronized counterpart, in place:
//
//   1. design import / logic cleaning           (§3.2.1, §3.2.2)
//   2. automatic region creation                (§3.2.2, Figs 3.3-3.6)
//   3. flip-flop substitution                   (§3.2.3, Fig 3.1)
//   4. data-dependency graph                    (§3.2.4, Fig 2.6)
//   5. delay element creation (STA-sized)       (§3.2.5)
//   6. control network insertion                (§3.2.6, Fig 2.11)
//   7. backend constraint generation (SDC)      (§4.4-§4.6, Figs 4.2, 4.5)
//
// The resulting module has no functional clock; the original clock input
// port remains but is disconnected, and a reset drives the controller
// network, which self-starts from the slave latches' reset data tokens.
#pragma once

#include <stdexcept>

#include "core/control_network.h"
#include "core/ff_substitution.h"
#include "core/flow_report.h"
#include "core/regions.h"
#include "sim/flow_equivalence.h"
#include "sim/stimulus.h"
#include "sim/symfe/symfe.h"
#include "sta/sdc.h"

namespace desync::core {

/// Which flow-equivalence route(s) the post-flow self-check runs
/// (`--fe-mode`): the sampling vector route (sim/flow_equivalence), the
/// exhaustive per-register symbolic route (sim/symfe), or both as
/// complementary checks (the prover is timing-blind; the vector route
/// samples but sees real delays).
enum class FeMode : std::uint8_t { kSim, kProve, kBoth };

/// Parses "sim" / "prove" / "both"; throws std::invalid_argument otherwise.
FeMode parseFeMode(const std::string& text);
const char* feModeName(FeMode mode);

/// Post-flow flow-equivalence self-check knobs (`--fe-check`,
/// `--fe-engine`): after the seven passes, the converted module is
/// simulated against a pristine snapshot of the synchronous input over
/// independent stimulus batches (sim/stimulus.h's feBatch derivation) and
/// the stored-value sequences are compared (thesis §2.1).
struct FeCheckOptions {
  /// Number of stimulus batches; 0 disables the check entirely (no
  /// snapshot is taken, zero overhead).
  std::size_t batches = 0;
  /// Batch-0 synchronous cycle count (batch b adds 2*b cycles).
  int base_cycles = 10;
  /// Golden-side engine: the bit-parallel simulator packs 64 batches per
  /// pass; verdicts are byte-identical to the event engine.
  sim::SyncEngine engine = sim::SyncEngine::kBitsim;
  /// Route selection: kSim runs the vector check gated on `batches`; kProve
  /// runs the symbolic prover (fe_prove pass) regardless of `batches`;
  /// kBoth runs whichever of the two are enabled plus the prover.
  FeMode mode = FeMode::kSim;
  /// Per-register conflict budget for the prover.
  std::uint64_t prove_max_conflicts = 200000;
};

/// FlowDB persistence knobs (`--cache-dir`, `--resume`, `--eco`).
struct FlowDbOptions {
  /// Content-addressed pass cache directory; empty disables FlowDB
  /// entirely (no snapshots, no checkpoints, zero overhead).
  std::string cache_dir;
  /// Restore the last valid checkpoint found in cache_dir instead of
  /// recomputing the passes leading up to it (`drdesync --resume`).
  bool resume = false;
  /// Incremental ECO recompute (`drdesync --eco`, docs/eco.md):
  /// diff the input against the previous run's per-object record tables in
  /// cache_dir and re-analyze only the dirty regions/endpoints/registers.
  /// Output stays byte-identical to a cold run; requires cache_dir.
  /// Supersedes whole-design caching and `resume` for the run.
  bool eco = false;
};

struct DesyncOptions {
  GroupingOptions grouping;
  ControlNetworkOptions control;
  /// Clock input port name; its loads are expected to disappear with the
  /// flip-flops.  Only single-clock designs are supported (thesis §4.1).
  std::string clock_port = "clk";
  /// Manual region specification (thesis §3.2.2): when non-empty, regions
  /// come from these sequential-cell name-prefix groups instead of the
  /// automatic algorithm (group i+1 = prefixes[i]).
  std::vector<std::vector<std::string>> manual_seq_groups;
  /// Pass caching and checkpoint/resume.
  FlowDbOptions flowdb;
  /// Post-flow flow-equivalence self-check (disabled by default).
  FeCheckOptions fe;
};

struct DesyncResult {
  Regions regions;
  DependencyGraph ddg;
  SubstitutionResult substitution;
  /// STA products of the region_timing pass (delay-element stage delay,
  /// per-region critical paths); cached independently of the control knobs.
  RegionTiming timing;
  ControlNetworkReport control;
  /// Backend constraints: ClkM/ClkS latch-enable clocks (Fig 4.2),
  /// controller loop cuts (Fig 4.5) and size_only markers.
  sta::SdcFile sdc;
  /// Minimum clock period of the original synchronous circuit (worst path
  /// + setup), used as the reference period for the generated clocks and
  /// for the synchronous-version comparisons.
  double sync_min_period_ns = 0.0;
  /// Synchronous reference period at each PVT corner (best/typical/worst,
  /// in that order), from the multi-corner reference_sta pass.  The three
  /// analyses run concurrently on the parallel layer (core/parallel.h).
  struct CornerPeriod {
    std::string corner;         ///< variability corner name
    double delay_scale = 1.0;   ///< the corner's delay multiplier
    double min_period_ns = 0.0;
  };
  std::vector<CornerPeriod> corner_periods;
  /// Post-flow flow-equivalence self-check outcome; `ran` is false when
  /// FeCheckOptions::batches was 0.
  struct FeCheck {
    bool ran = false;
    sim::FlowEqBatchReport report;
  };
  FeCheck fe;
  /// Symbolic per-register proof outcome (fe_prove pass); `ran` is false
  /// unless FeCheckOptions::mode included the prover.
  struct SymfeCheck {
    bool ran = false;
    sim::symfe::SymfeReport report;
  };
  SymfeCheck symfe;
  /// Per-pass wall times and work counters (`drdesync --report`).
  FlowReport flow;
};

/// Raised when a flow pass fails: carries the failing pass's name and the
/// FlowReport as of the failure (completed passes plus the failing one),
/// so `drdesync --report` can still emit a partial report with an "error"
/// field instead of losing all pass statistics.
class FlowError : public std::runtime_error {
 public:
  FlowError(std::string pass, FlowReport flow, const std::string& message)
      : std::runtime_error(message),
        pass_(std::move(pass)),
        flow_(std::move(flow)) {}

  /// Name of the pass that failed.
  [[nodiscard]] const std::string& pass() const { return pass_; }
  /// Pass statistics collected up to (and including) the failing pass.
  [[nodiscard]] const FlowReport& flow() const { return flow_; }

 private:
  std::string pass_;
  FlowReport flow_;
};

/// Desynchronizes `module` in place.  `design` receives the helper modules
/// (controllers, C-elements, delay elements) before they are flattened in.
/// A pass failure is reported as FlowError.  With options.flowdb.cache_dir
/// set, every pass first consults the FlowDB cache (and, under
/// options.flowdb.resume, the checkpoint written by a previous run);
/// restored and computed runs produce byte-identical results.
DesyncResult desynchronize(netlist::Design& design, netlist::Module& module,
                           const liberty::Gatefile& gatefile,
                           const DesyncOptions& options = {});

}  // namespace desync::core
