// drdesyncd server core: fair scheduling of concurrent flow requests.
//
// One Server owns one FlowService (one hot library + one FlowDB cache) and
// a pool of handler threads draining a single FIFO queue.  Every transport
// feeds the same queue, so requests are served strictly in arrival order
// regardless of which connection they came in on — a client opening ten
// connections gets no more than its share of the handlers.
//
// Transports:
//   - Unix-domain socket (options.socket_path): an accept loop spawns one
//     reader thread per connection; replies go back on the connection the
//     request arrived on, serialized by a per-connection write mutex, and
//     may be out of order (match them by `id`).
//   - stdio (serveStream): the calling thread reads the stream and replies
//     go to the paired output stream.  Used by `drdesyncd --stdio` and the
//     in-process tests.
//
// Control commands ("ping", "stats", "shutdown") are answered directly on
// the reader thread — they never queue behind flow work.  A "shutdown"
// request (or requestShutdown()) stops intake; stop() then drains the
// queue and joins every thread, so accepted work is always answered.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/service.h"

namespace desync::server {

struct ServerOptions {
  ServiceOptions service;
  /// Handler threads draining the request queue (>= 1).  Each runs one
  /// request at a time; the per-request `jobs` budget governs the
  /// parallelism *inside* a request.
  int handlers = 2;
  /// Unix-domain socket path to listen on; empty = stdio/in-process only.
  std::string socket_path;
};

/// Intake/completion counters (the "stats" command's payload).
struct ServerStats {
  std::uint64_t received = 0;   ///< well-formed desync requests accepted
  std::uint64_t completed = 0;  ///< replies with ok=true
  std::uint64_t failed = 0;     ///< replies with ok=false
  std::uint64_t rejected = 0;   ///< lines that failed to parse
};

class Server {
 public:
  /// Resolves the library (throws on a bad spec); does not start threads.
  explicit Server(const ServerOptions& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Starts the handler threads and, when a socket path is configured,
  /// binds the socket and starts accepting.  Throws on bind failure.
  void start();

  /// Stops intake, drains the queue, joins every thread and unlinks the
  /// socket.  Idempotent; also run by the destructor.
  void stop();

  /// Asks the server to shut down without blocking (reader threads and
  /// signal handlers use this); wake waitForShutdownRequest() callers.
  void requestShutdown();

  /// Blocks until requestShutdown() is called (daemon main loop).
  void waitForShutdownRequest();

  /// Bounded wait; returns true once shutdown has been requested.  The
  /// daemon polls with this so a signal flag set by SIGINT/SIGTERM (whose
  /// handler cannot safely touch condition variables) is noticed.
  bool waitForShutdownRequestFor(std::chrono::milliseconds timeout);

  /// Serves one JSON-lines stream on the calling thread: reads requests
  /// from `in`, writes replies to `out` (out-of-order, matched by id).
  /// Returns once `in` hits EOF or a "shutdown" command arrives, after
  /// every request read from this stream has been answered.
  void serveStream(std::istream& in, std::ostream& out);

  [[nodiscard]] ServerStats stats() const;
  [[nodiscard]] const FlowService& service() const { return *service_; }

 private:
  struct Job;

  /// Parses `line` and either answers it inline (control commands, parse
  /// errors) or enqueues it; `write` must be thread-safe.
  void submitLine(const std::string& line,
                  const std::function<void(const std::string&)>& write);
  void handlerLoop();
  void acceptLoop();
  void connectionLoop(int fd);
  [[nodiscard]] std::string statsReplyLine(std::uint64_t id) const;

  ServerOptions options_;
  std::unique_ptr<FlowService> service_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Job> queue_;
  bool stopping_ = false;  ///< guarded by queue_mutex_

  std::mutex shutdown_mutex_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;

  std::vector<std::thread> handlers_;
  std::thread acceptor_;
  int listen_fd_ = -1;

  std::mutex readers_mutex_;
  std::vector<std::thread> readers_;
  std::vector<int> reader_fds_;  ///< open connection fds, for stop()

  std::atomic<std::uint64_t> received_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> rejected_{0};
};

}  // namespace desync::server
