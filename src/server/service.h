// FlowService: the part of drdesyncd that actually runs the flow.
//
// One FlowService holds the daemon's shared hot state — the resolved
// Liberty library/gatefile and the FlowDB cache directory — and turns one
// parsed Request into one reply object.  Requests are isolated through
// scoped state only:
//
//   - trace::TrackScope gives the request its own named trace track, so a
//     trace written by the daemon shows per-request lanes instead of an
//     interleaved soup;
//   - core::JobsScope applies the request's `jobs` budget to exactly the
//     handling thread for exactly the request's duration (the bug the old
//     process-wide jobs override made impossible to fix);
//   - the Design/Module being desynchronized are request-local; the
//     library, gatefile and pass cache are shared and concurrent-safe.
//
// handle() never throws for request-level failures: parse and flow errors
// come back as ok=false replies carrying errorReportJson, exactly like the
// CLI's --report output on failure.
#pragma once

#include <cstdint>
#include <string>

#include "liberty/gatefile.h"
#include "liberty/library.h"
#include "server/json.h"
#include "server/protocol.h"

namespace desync::server {

struct ServiceOptions {
  /// Liberty library spec: a .lib path, "builtin:hs" or "builtin:ll".
  std::string lib = "builtin:hs";
  /// Shared FlowDB pass-cache directory; empty disables caching.
  std::string cache_dir;
  /// Default per-request worker budget when a request does not set `jobs`
  /// (0 = environment/hardware default).
  int default_jobs = 0;
};

class FlowService {
 public:
  /// Resolves the library once; throws on an unreadable spec.
  explicit FlowService(const ServiceOptions& options);

  FlowService(const FlowService&) = delete;
  FlowService& operator=(const FlowService&) = delete;

  /// Runs one desynchronization request to completion on the calling
  /// thread and returns the reply object (without queue timing, which only
  /// the scheduler knows — the server sets "queue_ms" before writing).
  [[nodiscard]] Json handle(const Request& req);

  [[nodiscard]] const liberty::Gatefile& gatefile() const {
    return gatefile_;
  }

 private:
  liberty::Library library_;  ///< must outlive gatefile_
  liberty::Gatefile gatefile_;
  std::string cache_dir_;
  int default_jobs_ = 0;
};

}  // namespace desync::server
