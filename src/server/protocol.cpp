#include "server/protocol.h"

namespace desync::server {

namespace {

[[noreturn]] void bad(const std::string& what) { throw ProtocolError(what); }

ReportMode parseReportMode(const std::string& text) {
  if (text == "none") return ReportMode::kNone;
  if (text == "full") return ReportMode::kFull;
  if (text == "canonical") return ReportMode::kCanonical;
  bad("unknown report mode '" + text +
      "' (expected \"none\", \"full\" or \"canonical\")");
}

const char* reportModeName(ReportMode mode) {
  switch (mode) {
    case ReportMode::kNone: return "none";
    case ReportMode::kFull: return "full";
    case ReportMode::kCanonical: return "canonical";
  }
  return "?";
}

}  // namespace

Message parseMessage(const std::string& line) {
  const Json doc = Json::parse(line);
  if (!doc.isObject()) bad("request must be a JSON object");

  Message msg;
  msg.cmd = doc.getString("cmd", "desync");
  if (msg.cmd == "ping" || msg.cmd == "stats" || msg.cmd == "shutdown") {
    msg.request.id = static_cast<std::uint64_t>(doc.getNumber("id", 0));
    return msg;
  }
  if (msg.cmd != "desync") bad("unknown cmd '" + msg.cmd + "'");

  Request& req = msg.request;
  const double id = doc.getNumber("id", 0);
  if (id < 0) bad("'id' must be non-negative");
  req.id = static_cast<std::uint64_t>(id);
  req.name = doc.getString("name", "");
  req.design = doc.getString("design", "");
  req.design_path = doc.getString("design_path", "");
  if (req.design.empty() == req.design_path.empty()) {
    bad("exactly one of 'design' (inline Verilog) or 'design_path' is "
        "required");
  }
  req.top = doc.getString("top", "");
  req.jobs = doc.getInt("jobs", 0);
  if (req.jobs < 0 || req.jobs > 1024) {
    bad("'jobs' must be in 0..1024");
  }

  req.reset_port = doc.getString("reset_port", "");
  req.reset_active_low = doc.getBool("reset_active_low", false);
  req.group = doc.getString("group", "");
  if (const Json* fp = doc.find("false_paths")) {
    for (const Json& net : fp->asArray()) {
      req.false_paths.push_back(net.asString());
    }
  }
  req.margin = doc.getNumber("margin", req.margin);
  if (!(req.margin >= 0.0)) bad("'margin' must be non-negative");
  req.mux_taps = doc.getInt("mux_taps", 0);
  if (req.mux_taps != 0 && req.mux_taps != 2 && req.mux_taps != 4 &&
      req.mux_taps != 8) {
    bad("'mux_taps' must be 0, 2, 4 or 8");
  }
  req.bus_heuristic = doc.getBool("bus_heuristic", true);
  req.clean_logic = doc.getBool("clean_logic", true);
  req.eco = doc.getBool("eco", false);

  req.want_verilog = doc.getBool("verilog", true);
  req.want_sdc = doc.getBool("sdc", true);
  req.report = parseReportMode(doc.getString("report", "full"));
  return msg;
}

std::string requestLine(const Request& req) {
  Json doc = Json::object();
  doc.set("id", Json::number(static_cast<double>(req.id)));
  if (!req.name.empty()) doc.set("name", Json::str(req.name));
  if (!req.design.empty()) doc.set("design", Json::str(req.design));
  if (!req.design_path.empty()) {
    doc.set("design_path", Json::str(req.design_path));
  }
  if (!req.top.empty()) doc.set("top", Json::str(req.top));
  if (req.jobs != 0) doc.set("jobs", Json::number(req.jobs));
  if (!req.reset_port.empty()) {
    doc.set("reset_port", Json::str(req.reset_port));
  }
  if (req.reset_active_low) doc.set("reset_active_low", Json::boolean(true));
  if (!req.group.empty()) doc.set("group", Json::str(req.group));
  if (!req.false_paths.empty()) {
    Json nets = Json::array();
    for (const std::string& net : req.false_paths) nets.push(Json::str(net));
    doc.set("false_paths", std::move(nets));
  }
  if (req.margin != 0.10) doc.set("margin", Json::number(req.margin));
  if (req.mux_taps != 0) doc.set("mux_taps", Json::number(req.mux_taps));
  if (!req.bus_heuristic) doc.set("bus_heuristic", Json::boolean(false));
  if (!req.clean_logic) doc.set("clean_logic", Json::boolean(false));
  if (req.eco) doc.set("eco", Json::boolean(true));
  if (!req.want_verilog) doc.set("verilog", Json::boolean(false));
  if (!req.want_sdc) doc.set("sdc", Json::boolean(false));
  if (req.report != ReportMode::kFull) {
    doc.set("report", Json::str(reportModeName(req.report)));
  }
  return doc.dump();
}

std::string flattenJson(const std::string& pretty) {
  std::string out;
  out.reserve(pretty.size());
  std::size_t i = 0;
  while (i < pretty.size()) {
    const char c = pretty[i];
    if (c == '\n') {
      ++i;
      while (i < pretty.size() && pretty[i] == ' ') ++i;
      continue;
    }
    out += c;
    ++i;
  }
  return out;
}

}  // namespace desync::server
