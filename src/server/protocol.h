// drdesyncd wire protocol: JSON-lines request/reply framing.
//
// One request object per line in, one reply object per line out (replies
// carry the request's `id` and may arrive out of order when the daemon
// runs several handler threads).  The full field reference lives in
// docs/server.md; this header is the single in-code source of truth both
// the daemon and the drdesync-bench client compile against.
//
//   {"id": 7, "design": "module m(...); ... endmodule", "jobs": 2,
//    "reset_port": "rst_n", "reset_active_low": true, "report": "canonical"}
//   -> {"id": 7, "ok": true, "verilog": "...", "sdc": "...",
//       "canonical_report": {...}, "queue_ms": 0.1, "service_ms": 42.0}
//
// Control commands ride the same framing: {"cmd": "ping"} /
// {"cmd": "stats"} / {"cmd": "shutdown"}.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "server/json.h"

namespace desync::server {

/// How much of the run report the reply should embed.
enum class ReportMode {
  kNone,       ///< no report object
  kFull,       ///< runReportJson: design facts + per-pass flow statistics
  kCanonical,  ///< canonicalRunReportJson: deterministic design facts only
};

/// One desynchronization request (cmd == "desync", the default).
struct Request {
  std::uint64_t id = 0;     ///< echoed in the reply (client-chosen)
  std::string name;         ///< report/trace label (default "req-<id>")
  std::string design;       ///< inline gate-level Verilog text...
  std::string design_path;  ///< ...or a server-readable file path
  std::string top;          ///< top module (default: last module parsed)
  int jobs = 0;             ///< per-request worker budget (0 = server default)

  // Flow options (mirroring the drdesync flags of the same names).
  std::string reset_port;
  bool reset_active_low = false;
  std::string group;  ///< manual region spec "p1,p2;p3"
  std::vector<std::string> false_paths;
  double margin = 0.10;
  int mux_taps = 0;
  bool bus_heuristic = true;
  bool clean_logic = true;
  /// Incremental recompute against the daemon's cache directory (mirrors
  /// `drdesync --eco`); ignored when the daemon runs without --cache-dir.
  bool eco = false;

  // Reply shaping.
  bool want_verilog = true;
  bool want_sdc = true;
  ReportMode report = ReportMode::kFull;
};

/// Parsed wire message: either a desync Request or a control command.
struct Message {
  std::string cmd;  ///< "desync", "ping", "stats" or "shutdown"
  Request request;  ///< valid when cmd == "desync"
};

/// Parses one request line.  Throws JsonError (malformed JSON or fields of
/// the wrong type) or ProtocolError (well-formed JSON violating the
/// protocol: unknown cmd, missing design, bad ranges).
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};
[[nodiscard]] Message parseMessage(const std::string& line);

/// Serializes a Request as its wire line (used by drdesync-bench).
[[nodiscard]] std::string requestLine(const Request& req);

/// Collapses pretty-printed JSON (the report serializers emit multi-line
/// objects) onto one line so it can be embedded in a JSON-lines reply:
/// removes every newline plus its following indentation.  Safe because the
/// report serializers escape control characters inside strings.
[[nodiscard]] std::string flattenJson(const std::string& pretty);

}  // namespace desync::server
