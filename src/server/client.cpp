#include "server/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace desync::server {

Client::Client(const std::string& socket_path) {
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    ::close(fd_);
    throw std::runtime_error("socket path too long: " + socket_path);
  }
  std::strncpy(addr.sun_path, socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string detail = std::strerror(errno);
    ::close(fd_);
    throw std::runtime_error("connect " + socket_path + ": " + detail);
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), buf_(std::move(other.buf_)) {
  other.fd_ = -1;
}

void Client::sendLine(const std::string& line) {
  std::string framed = line;
  framed += '\n';
  const char* p = framed.data();
  std::size_t left = framed.size();
  while (left > 0) {
    const ssize_t n = ::write(fd_, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("send: ") + std::strerror(errno));
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
}

std::string Client::recvLine() {
  for (;;) {
    const std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buf_.substr(0, nl);
      buf_.erase(0, nl + 1);
      return line;
    }
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof chunk);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) {
      throw std::runtime_error(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) {
      throw std::runtime_error("recv: connection closed by the server");
    }
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace desync::server
