#include "server/server.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "core/parallel.h"

namespace desync::server {

namespace {

/// Writes `line` + '\n' to `fd`, retrying short writes.  Errors (peer gone)
/// are swallowed: the request was already served, there is no one to tell.
void writeLineFd(int fd, const std::string& line) {
  std::string framed = line;
  framed += '\n';
  const char* p = framed.data();
  std::size_t left = framed.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
}

/// One accepted connection.  Jobs hold a shared_ptr, so the fd stays open
/// until the last queued reply for it has been written.
struct SocketWriter {
  explicit SocketWriter(int fd) : fd(fd) {}
  ~SocketWriter() { ::close(fd); }
  void write(const std::string& line) {
    std::lock_guard<std::mutex> lock(mutex);
    writeLineFd(fd, line);
  }
  int fd;
  std::mutex mutex;
};

}  // namespace

struct Server::Job {
  Request request;
  std::function<void(const std::string&)> write;
  std::chrono::steady_clock::time_point arrival;
};

Server::Server(const ServerOptions& options)
    : options_(options),
      service_(std::make_unique<FlowService>(options.service)) {
  if (options_.handlers < 1) options_.handlers = 1;
}

Server::~Server() { stop(); }

void Server::start() {
  if (!options_.socket_path.empty()) {
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      throw std::runtime_error(std::string("socket: ") +
                               std::strerror(errno));
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw std::runtime_error("socket path too long: " +
                               options_.socket_path);
    }
    std::strncpy(addr.sun_path, options_.socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(options_.socket_path.c_str());
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 64) != 0) {
      const std::string detail = std::strerror(errno);
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw std::runtime_error("bind/listen " + options_.socket_path + ": " +
                               detail);
    }
    acceptor_ = std::thread([this] { acceptLoop(); });
  }
  for (int i = 0; i < options_.handlers; ++i) {
    handlers_.emplace_back([this] { handlerLoop(); });
  }
}

void Server::requestShutdown() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
    shutdown_requested_ = true;
  }
  shutdown_cv_.notify_all();
}

void Server::waitForShutdownRequest() {
  std::unique_lock<std::mutex> lock(shutdown_mutex_);
  shutdown_cv_.wait(lock, [this] { return shutdown_requested_; });
}

bool Server::waitForShutdownRequestFor(std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(shutdown_mutex_);
  return shutdown_cv_.wait_for(lock, timeout,
                               [this] { return shutdown_requested_; });
}

void Server::stop() {
  requestShutdown();
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (stopping_) return;  // second caller: destructor after explicit stop
    stopping_ = true;
  }
  queue_cv_.notify_all();

  // Wake the acceptor (shutdown() on a listening socket fails accept()
  // with EINVAL on Linux) and every blocked connection reader.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lock(readers_mutex_);
    for (int fd : reader_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (acceptor_.joinable()) acceptor_.join();
  {
    std::lock_guard<std::mutex> lock(readers_mutex_);
    for (std::thread& t : readers_) {
      if (t.joinable()) t.join();
    }
    readers_.clear();
    reader_fds_.clear();
  }
  // Handlers drain whatever was accepted before intake stopped, then exit.
  for (std::thread& t : handlers_) {
    if (t.joinable()) t.join();
  }
  handlers_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(options_.socket_path.c_str());
  }
}

std::string Server::statsReplyLine(std::uint64_t id) const {
  const ServerStats s = stats();
  const core::PoolStats pool = core::poolStats();
  Json reply = Json::object();
  reply.set("id", Json::number(static_cast<double>(id)));
  reply.set("ok", Json::boolean(true));
  reply.set("received", Json::number(static_cast<double>(s.received)));
  reply.set("completed", Json::number(static_cast<double>(s.completed)));
  reply.set("failed", Json::number(static_cast<double>(s.failed)));
  reply.set("rejected", Json::number(static_cast<double>(s.rejected)));
  Json pool_obj = Json::object();
  pool_obj.set("sections", Json::number(static_cast<double>(pool.sections)));
  pool_obj.set("contended_sections",
               Json::number(static_cast<double>(pool.contended)));
  pool_obj.set("wait_ms", Json::number(pool.wait_us / 1000.0));
  reply.set("pool", std::move(pool_obj));
  return reply.dump();
}

void Server::submitLine(
    const std::string& line,
    const std::function<void(const std::string&)>& write) {
  Message msg;
  try {
    msg = parseMessage(line);
  } catch (const std::exception& e) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    Json reply = Json::object();
    reply.set("ok", Json::boolean(false));
    reply.set("error", Json::str(e.what()));
    write(reply.dump());
    return;
  }

  // Control commands answer inline: they must not queue behind flow work.
  if (msg.cmd == "ping") {
    Json reply = Json::object();
    reply.set("id", Json::number(static_cast<double>(msg.request.id)));
    reply.set("ok", Json::boolean(true));
    reply.set("pong", Json::boolean(true));
    write(reply.dump());
    return;
  }
  if (msg.cmd == "stats") {
    write(statsReplyLine(msg.request.id));
    return;
  }
  if (msg.cmd == "shutdown") {
    Json reply = Json::object();
    reply.set("id", Json::number(static_cast<double>(msg.request.id)));
    reply.set("ok", Json::boolean(true));
    reply.set("shutting_down", Json::boolean(true));
    write(reply.dump());
    requestShutdown();
    return;
  }

  received_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (stopping_) {
      // Intake has closed; tell the client instead of dropping the line.
      Json reply = Json::object();
      reply.set("id", Json::number(static_cast<double>(msg.request.id)));
      reply.set("ok", Json::boolean(false));
      reply.set("error", Json::str("server is shutting down"));
      failed_.fetch_add(1, std::memory_order_relaxed);
      write(reply.dump());
      return;
    }
    queue_.push_back(Job{std::move(msg.request), write,
                         std::chrono::steady_clock::now()});
  }
  queue_cv_.notify_one();
}

void Server::handlerLoop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    const double queue_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() -
                                job.arrival)
                                .count();
    Json reply = service_->handle(job.request);
    reply.set("queue_ms", Json::number(queue_ms));
    if (reply.getBool("ok", false)) {
      completed_.fetch_add(1, std::memory_order_relaxed);
    } else {
      failed_.fetch_add(1, std::memory_order_relaxed);
    }
    job.write(reply.dump());
  }
}

void Server::acceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listen socket shut down (stop()) or fatal
    }
    std::lock_guard<std::mutex> lock(readers_mutex_);
    reader_fds_.push_back(fd);
    readers_.emplace_back([this, fd] { connectionLoop(fd); });
  }
}

void Server::connectionLoop(int fd) {
  auto writer = std::make_shared<SocketWriter>(fd);
  const auto write = [writer](const std::string& line) {
    writer->write(line);
  };
  std::string buf;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return;  // EOF, error, or stop()'s shutdown()
    buf.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = buf.find('\n', start);
      if (nl == std::string::npos) break;
      const std::string line = buf.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty()) submitLine(line, write);
    }
    buf.erase(0, start);
  }
}

void Server::serveStream(std::istream& in, std::ostream& out) {
  // Replies outlive the read loop (handlers finish after EOF), so the
  // writer state is shared and the loop waits for the last reply.
  struct StreamWriter {
    explicit StreamWriter(std::ostream& out) : out(out) {}
    std::ostream& out;
    std::mutex mutex;
    std::condition_variable cv;
    std::size_t outstanding = 0;
  };
  auto writer = std::make_shared<StreamWriter>(out);
  const auto write = [writer](const std::string& line) {
    std::lock_guard<std::mutex> lock(writer->mutex);
    writer->out << line << '\n';
    writer->out.flush();
    if (writer->outstanding > 0) --writer->outstanding;
    writer->cv.notify_all();
  };

  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    {
      std::lock_guard<std::mutex> lock(writer->mutex);
      ++writer->outstanding;
    }
    submitLine(line, write);
    {
      // A "shutdown" line stops the stream too.
      std::lock_guard<std::mutex> lock(shutdown_mutex_);
      if (shutdown_requested_) break;
    }
  }
  std::unique_lock<std::mutex> lock(writer->mutex);
  writer->cv.wait(lock, [&writer] { return writer->outstanding == 0; });
}

ServerStats Server::stats() const {
  ServerStats s;
  s.received = received_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace desync::server
