// Minimal JSON value for the drdesyncd wire protocol (docs/server.md).
//
// The daemon speaks JSON lines: one request object per line in, one reply
// object per line out.  This parser covers exactly what that needs —
// objects, arrays, strings (with \uXXXX escapes decoded to UTF-8),
// numbers, booleans and null — with strict full-input validation: trailing
// garbage, unterminated strings and malformed escapes are JsonError, never
// a silently-truncated value.  Object member order is preserved so dumps
// are deterministic.
//
// Deliberately not a general-purpose library: no comments, no NaN/Inf, no
// integer/double distinction beyond what a double holds (wire ids are
// sequence numbers well below 2^53).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace desync::server {

class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One JSON value (tagged union).  Cheap to move, expensive to copy.
class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;
  static Json null() { return Json(); }
  static Json boolean(bool b);
  static Json number(double v);
  static Json str(std::string s);
  static Json array();
  static Json object();

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool isNull() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool isObject() const { return kind_ == Kind::kObject; }

  // --- typed reads (throw JsonError on kind mismatch) -----------------
  [[nodiscard]] bool asBool() const;
  [[nodiscard]] double asNumber() const;
  [[nodiscard]] const std::string& asString() const;
  [[nodiscard]] const std::vector<Json>& asArray() const;
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& asObject()
      const;

  // --- object access --------------------------------------------------
  /// Member lookup; nullptr when absent (or not an object).
  [[nodiscard]] const Json* find(std::string_view key) const;
  /// Convenience typed lookups with defaults, for optional request fields.
  [[nodiscard]] bool getBool(std::string_view key, bool fallback) const;
  [[nodiscard]] double getNumber(std::string_view key,
                                 double fallback) const;
  [[nodiscard]] int getInt(std::string_view key, int fallback) const;
  [[nodiscard]] std::string getString(std::string_view key,
                                      std::string_view fallback) const;

  // --- building -------------------------------------------------------
  /// Appends/overwrites an object member (object kind required).
  Json& set(std::string key, Json value);
  /// Appends an array element (array kind required).
  Json& push(Json value);
  /// Sets a member holding a pre-serialized JSON fragment; dump() emits it
  /// verbatim.  Used to embed report JSON without re-parsing it.
  Json& setRaw(std::string key, std::string json_fragment);

  /// Parses a complete JSON document; the entire input must be consumed
  /// (surrounding whitespace allowed).  Throws JsonError with a byte
  /// offset on malformed input.
  static Json parse(std::string_view text);

  /// Serializes on one line (no newlines — JSON-lines framing safe, since
  /// string escapes cover \n).  Deterministic: member order is preserved.
  [[nodiscard]] std::string dump() const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  bool raw_ = false;  ///< string kind: str_ is a verbatim JSON fragment
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;

  void dumpTo(std::string& out) const;
};

/// Escapes `s` as the *contents* of a JSON string literal (no quotes).
[[nodiscard]] std::string jsonEscape(std::string_view s);

}  // namespace desync::server
