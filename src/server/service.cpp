#include "server/service.h"

#include <chrono>
#include <sstream>
#include <utility>

#include "core/desync.h"
#include "core/parallel.h"
#include "core/run_report.h"
#include "liberty/liberty_io.h"
#include "liberty/stdlib90.h"
#include "netlist/verilog.h"
#include "trace/trace.h"

namespace desync::server {

namespace {

liberty::Library loadLibrary(const std::string& spec) {
  if (spec == "builtin:hs") {
    return liberty::makeStdLib90(liberty::LibVariant::kHighSpeed);
  }
  if (spec == "builtin:ll") {
    return liberty::makeStdLib90(liberty::LibVariant::kLowLeakage);
  }
  return liberty::readLibertyFile(spec);
}

/// "p1,p2;p3" -> {{p1,p2},{p3}}, same grammar as drdesync --group.
std::vector<std::vector<std::string>> parseGroups(const std::string& spec) {
  std::vector<std::vector<std::string>> groups;
  std::stringstream groups_in(spec);
  std::string group;
  while (std::getline(groups_in, group, ';')) {
    std::vector<std::string> prefixes;
    std::stringstream prefix_in(group);
    std::string prefix;
    while (std::getline(prefix_in, prefix, ',')) {
      if (!prefix.empty()) prefixes.push_back(prefix);
    }
    if (!prefixes.empty()) groups.push_back(std::move(prefixes));
  }
  return groups;
}

core::DesyncOptions flowOptions(const Request& req,
                                const std::string& cache_dir) {
  core::DesyncOptions opt;
  opt.control.reset_port = req.reset_port;
  opt.control.reset_active_low = req.reset_active_low;
  opt.control.margin = req.margin;
  opt.control.mux_taps = req.mux_taps;
  opt.grouping.bus_heuristic = req.bus_heuristic;
  opt.grouping.clean_logic = req.clean_logic;
  opt.grouping.false_path_nets = req.false_paths;
  opt.manual_seq_groups = parseGroups(req.group);
  opt.flowdb.cache_dir = cache_dir;
  if (!cache_dir.empty()) opt.flowdb.eco = req.eco;
  return opt;
}

double msSince(std::chrono::steady_clock::time_point begin) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - begin)
      .count();
}

}  // namespace

FlowService::FlowService(const ServiceOptions& options)
    : library_(loadLibrary(options.lib)),
      gatefile_(library_),
      cache_dir_(options.cache_dir),
      default_jobs_(options.default_jobs) {}

Json FlowService::handle(const Request& req) {
  const auto begin = std::chrono::steady_clock::now();
  const std::string track =
      req.name.empty() ? "req-" + std::to_string(req.id) : req.name;

  Json reply = Json::object();
  reply.set("id", Json::number(static_cast<double>(req.id)));
  reply.set("track", Json::str(track));

  // Request-scoped state: its own trace track and its own jobs budget.
  trace::TrackScope track_scope(track);
  core::JobsScope jobs_scope(req.jobs != 0 ? req.jobs : default_jobs_);

  core::RunInfo info;
  info.input = req.design_path.empty() ? track : req.design_path;

  auto fail = [&](const std::string& error, const std::string& failed_pass,
                  const core::FlowReport& flow) {
    reply.set("ok", Json::boolean(false));
    reply.set("error", Json::str(error));
    if (!failed_pass.empty()) {
      reply.set("failed_pass", Json::str(failed_pass));
    }
    if (req.report != ReportMode::kNone) {
      reply.setRaw("report", flattenJson(core::errorReportJson(
                                 info, error, failed_pass, flow)));
    }
    reply.set("service_ms", Json::number(msSince(begin)));
    return reply;
  };

  try {
    netlist::Design design;
    if (!req.design_path.empty()) {
      netlist::readVerilogFile(design, req.design_path, gatefile_, {},
                               req.top);
    } else {
      netlist::readVerilog(design, req.design, gatefile_, {}, req.top);
    }
    netlist::Module* module = &design.top();
    if (!req.top.empty()) {
      netlist::Module* named = design.findModule(req.top);
      if (named == nullptr) {
        return fail("top module '" + req.top + "' not found", "", {});
      }
      module = named;
    }

    info.cells_in = module->numCells();
    core::DesyncResult result = core::desynchronize(
        design, *module, gatefile_, flowOptions(req, cache_dir_));
    info.cells_out = module->numCells();
    info.nets_out = module->numNets();

    reply.set("ok", Json::boolean(true));
    reply.set("cells_in", Json::number(static_cast<double>(info.cells_in)));
    reply.set("cells_out",
              Json::number(static_cast<double>(info.cells_out)));
    reply.set("regions",
              Json::number(static_cast<double>(result.regions.n_groups)));
    reply.set("ffs_replaced", Json::number(static_cast<double>(
                                  result.substitution.ffs_replaced)));
    if (req.want_verilog) {
      reply.set("verilog", Json::str(netlist::writeVerilog(design)));
    }
    if (req.want_sdc) {
      reply.set("sdc", Json::str(result.sdc.toText()));
    }
    if (req.report == ReportMode::kFull) {
      reply.setRaw("report",
                   flattenJson(core::runReportJson(info, result)));
    } else if (req.report == ReportMode::kCanonical) {
      reply.setRaw("report",
                   flattenJson(core::canonicalRunReportJson(info, result)));
    }
    reply.set("service_ms", Json::number(msSince(begin)));
    return reply;
  } catch (const core::FlowError& e) {
    return fail(e.what(), e.pass(), e.flow());
  } catch (const std::exception& e) {
    return fail(e.what(), "", {});
  }
}

}  // namespace desync::server
