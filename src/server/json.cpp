#include "server/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace desync::server {

namespace {

[[noreturn]] void fail(std::size_t at, const std::string& what) {
  throw JsonError("json: at byte " + std::to_string(at) + ": " + what);
}

/// Recursive-descent parser over a bounded view.  Depth-limited so a
/// hostile request cannot overflow the stack.
struct Parser {
  std::string_view in;
  std::size_t pos = 0;
  int depth = 0;
  static constexpr int kMaxDepth = 64;

  void skipWs() {
    while (pos < in.size() && (in[pos] == ' ' || in[pos] == '\t' ||
                               in[pos] == '\n' || in[pos] == '\r')) {
      ++pos;
    }
  }

  char peek() {
    if (pos >= in.size()) fail(pos, "unexpected end of input");
    return in[pos];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(pos, std::string("expected '") + c + "', got '" + in[pos] + "'");
    }
    ++pos;
  }

  bool consume(std::string_view word) {
    if (in.substr(pos, word.size()) != word) return false;
    pos += word.size();
    return true;
  }

  Json value() {
    if (++depth > kMaxDepth) fail(pos, "nesting too deep");
    skipWs();
    Json v;
    switch (peek()) {
      case '{': v = object(); break;
      case '[': v = array(); break;
      case '"': v = Json::str(string()); break;
      case 't':
        if (!consume("true")) fail(pos, "invalid literal");
        v = Json::boolean(true);
        break;
      case 'f':
        if (!consume("false")) fail(pos, "invalid literal");
        v = Json::boolean(false);
        break;
      case 'n':
        if (!consume("null")) fail(pos, "invalid literal");
        break;
      default: v = number(); break;
    }
    --depth;
    return v;
  }

  Json object() {
    expect('{');
    Json v = Json::object();
    skipWs();
    if (peek() == '}') {
      ++pos;
      return v;
    }
    for (;;) {
      skipWs();
      std::string key = string();
      skipWs();
      expect(':');
      v.set(std::move(key), value());
      skipWs();
      if (peek() == ',') {
        ++pos;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Json array() {
    expect('[');
    Json v = Json::array();
    skipWs();
    if (peek() == ']') {
      ++pos;
      return v;
    }
    for (;;) {
      v.push(value());
      skipWs();
      if (peek() == ',') {
        ++pos;
        continue;
      }
      expect(']');
      return v;
    }
  }

  /// Appends the UTF-8 encoding of `cp` to out.
  static void utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  unsigned hex4() {
    if (pos + 4 > in.size()) fail(pos, "truncated \\u escape");
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = in[pos++];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<unsigned>(c - 'A' + 10);
      else fail(pos - 1, "invalid \\u escape digit");
    }
    return v;
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos >= in.size()) fail(pos, "unterminated string");
      const char c = in[pos++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail(pos - 1, "unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos >= in.size()) fail(pos, "truncated escape");
      const char e = in[pos++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = hex4();
          // Surrogate pair: a high surrogate must be followed by \uDC00..
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            if (pos + 2 <= in.size() && in[pos] == '\\' && in[pos + 1] == 'u') {
              pos += 2;
              const unsigned lo = hex4();
              if (lo < 0xDC00 || lo > 0xDFFF) {
                fail(pos, "invalid low surrogate");
              }
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else {
              fail(pos, "unpaired high surrogate");
            }
          }
          utf8(out, cp);
          break;
        }
        default: fail(pos - 1, "invalid escape character");
      }
    }
  }

  Json number() {
    const std::size_t start = pos;
    if (pos < in.size() && in[pos] == '-') ++pos;
    while (pos < in.size() &&
           ((in[pos] >= '0' && in[pos] <= '9') || in[pos] == '.' ||
            in[pos] == 'e' || in[pos] == 'E' || in[pos] == '+' ||
            in[pos] == '-')) {
      ++pos;
    }
    if (pos == start) fail(pos, "expected a value");
    const std::string text(in.substr(start, pos - start));
    char* end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size() || !std::isfinite(v)) {
      fail(start, "malformed number '" + text + "'");
    }
    return Json::number(v);
  }
};

}  // namespace

Json Json::boolean(bool b) {
  Json v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

Json Json::number(double n) {
  Json v;
  v.kind_ = Kind::kNumber;
  v.num_ = n;
  return v;
}

Json Json::str(std::string s) {
  Json v;
  v.kind_ = Kind::kString;
  v.str_ = std::move(s);
  return v;
}

Json Json::array() {
  Json v;
  v.kind_ = Kind::kArray;
  return v;
}

Json Json::object() {
  Json v;
  v.kind_ = Kind::kObject;
  return v;
}

bool Json::asBool() const {
  if (kind_ != Kind::kBool) throw JsonError("json: not a boolean");
  return bool_;
}

double Json::asNumber() const {
  if (kind_ != Kind::kNumber) throw JsonError("json: not a number");
  return num_;
}

const std::string& Json::asString() const {
  if (kind_ != Kind::kString) throw JsonError("json: not a string");
  return str_;
}

const std::vector<Json>& Json::asArray() const {
  if (kind_ != Kind::kArray) throw JsonError("json: not an array");
  return arr_;
}

const std::vector<std::pair<std::string, Json>>& Json::asObject() const {
  if (kind_ != Kind::kObject) throw JsonError("json: not an object");
  return obj_;
}

const Json* Json::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool Json::getBool(std::string_view key, bool fallback) const {
  const Json* v = find(key);
  return v == nullptr ? fallback : v->asBool();
}

double Json::getNumber(std::string_view key, double fallback) const {
  const Json* v = find(key);
  return v == nullptr ? fallback : v->asNumber();
}

int Json::getInt(std::string_view key, int fallback) const {
  const Json* v = find(key);
  if (v == nullptr) return fallback;
  const double d = v->asNumber();
  const int i = static_cast<int>(d);
  if (static_cast<double>(i) != d) {
    throw JsonError("json: '" + std::string(key) + "' is not an integer");
  }
  return i;
}

std::string Json::getString(std::string_view key,
                            std::string_view fallback) const {
  const Json* v = find(key);
  return v == nullptr ? std::string(fallback) : v->asString();
}

Json& Json::set(std::string key, Json value) {
  if (kind_ != Kind::kObject) throw JsonError("json: set on non-object");
  for (auto& [k, v] : obj_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  obj_.emplace_back(std::move(key), std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  if (kind_ != Kind::kArray) throw JsonError("json: push on non-array");
  arr_.push_back(std::move(value));
  return *this;
}

Json& Json::setRaw(std::string key, std::string json_fragment) {
  Json v = Json::str(std::move(json_fragment));
  v.raw_ = true;
  return set(std::move(key), std::move(v));
}

Json Json::parse(std::string_view text) {
  Parser p{text};
  Json v = p.value();
  p.skipWs();
  if (p.pos != text.size()) fail(p.pos, "trailing garbage after document");
  return v;
}

std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Json::dumpTo(std::string& out) const {
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kNumber: {
      // Shortest round-trip-safe form; integers print without a fraction.
      char buf[32];
      if (num_ == static_cast<double>(static_cast<long long>(num_))) {
        std::snprintf(buf, sizeof buf, "%lld",
                      static_cast<long long>(num_));
      } else {
        std::snprintf(buf, sizeof buf, "%.17g", num_);
      }
      out += buf;
      break;
    }
    case Kind::kString:
      if (raw_) {
        out += str_;  // pre-serialized fragment, embedded verbatim
      } else {
        out += '"';
        out += jsonEscape(str_);
        out += '"';
      }
      break;
    case Kind::kArray:
      out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i > 0) out += ", ";
        arr_[i].dumpTo(out);
      }
      out += ']';
      break;
    case Kind::kObject:
      out += '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i > 0) out += ", ";
        out += '"';
        out += jsonEscape(obj_[i].first);
        out += "\": ";
        obj_[i].second.dumpTo(out);
      }
      out += '}';
      break;
  }
}

std::string Json::dump() const {
  std::string out;
  dumpTo(out);
  return out;
}

}  // namespace desync::server
