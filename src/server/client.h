// Minimal blocking client for the drdesyncd Unix-domain socket.
//
// One Client is one connection.  sendLine()/recvLine() frame whole JSON
// lines; replies may come back out of order relative to requests (match
// them by `id`).  Not thread-safe: use one Client per thread, which is
// exactly what drdesync-bench's in-flight workers do.
#pragma once

#include <string>

namespace desync::server {

class Client {
 public:
  /// Connects to the daemon's socket.  Throws std::runtime_error when the
  /// socket is absent or refuses the connection.
  explicit Client(const std::string& socket_path);
  ~Client();

  Client(Client&& other) noexcept;
  Client& operator=(Client&&) = delete;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Writes one request line (the newline is appended here).
  void sendLine(const std::string& line);

  /// Reads the next reply line; throws on EOF or a read error.
  [[nodiscard]] std::string recvLine();

 private:
  int fd_ = -1;
  std::string buf_;  ///< bytes read past the last returned line
};

}  // namespace desync::server
